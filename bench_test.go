// Package flatnet_bench is the paper's benchmark harness: one testing.B
// benchmark per table and figure, each regenerating the corresponding
// experiment end to end over the shared synthetic environment.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks report domain metrics via b.ReportMetric alongside timing so
// that the headline numbers (reachability percentages, detour fractions,
// FDR/FNR) appear in the bench output.
package flatnet_bench

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
	"flatnet/internal/experiments"
)

// defaultBenchScale keeps a full -bench=. run in the minutes range; set the
// FLATNET_BENCH_SCALE env var (e.g. FLATNET_BENCH_SCALE=1.0) to run every
// benchmark at the paper's full 69,488-AS topology without editing source.
// The headline benchmarks additionally have dedicated FullScale variants in
// fullscale_bench_test.go that are always pinned at scale 1.0.
const defaultBenchScale = 0.02138

var benchScale = func() float64 {
	if s := os.Getenv("FLATNET_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return defaultBenchScale
}()

var (
	envOnce sync.Once
	env     *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = experiments.NewEnv(benchScale)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// reportNsPerAS normalises a benchmark's wall time by the 2020 topology
// size. The headline experiments are (near-)linear in AS count, so ns/AS
// is the scale-independent figure of merit: it should stay flat between
// the scaled-down suite and the FullScale variants, and a rise flags a
// stage that stopped scaling linearly.
func reportNsPerAS(b *testing.B, nASes int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nASes), "ns/AS")
}

func BenchmarkFig2Reachability(b *testing.B) {
	e := benchEnv(b)
	var googlePct float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(e)
		if err != nil {
			b.Fatal(err)
		}
		total := float64(e.In2020.Graph.NumASes() - 1)
		for _, r := range rows {
			if r.Name == "Google" {
				googlePct = 100 * float64(r.HierarchyFree) / total
			}
		}
	}
	b.ReportMetric(googlePct, "google-hf-%")
}

func BenchmarkTable1TopReachability(b *testing.B) {
	e := benchEnv(b)
	var amazonRank float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(e, 20)
		if err != nil {
			b.Fatal(err)
		}
		amazonRank = float64(res.CloudRanks2020["Amazon"].Rank)
	}
	b.ReportMetric(amazonRank, "amazon-2020-rank")
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

func BenchmarkFig3ReachVsCone(b *testing.B) {
	e := benchEnv(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.HighReach) / float64(max(res.HighCone, 1))
	}
	b.ReportMetric(ratio, "highreach/highcone")
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

func BenchmarkFig4Unreachable(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Reliance(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2TopReliance(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7LeakCDFs(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(e); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

func BenchmarkFig8GoogleLeak(b *testing.B) {
	e := benchEnv(b)
	var meanAll float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range fig.Curves {
			if c.Scenario == bgpsim.AnnounceAll {
				meanAll = c.MeanDetoured
			}
		}
	}
	b.ReportMetric(meanAll, "mean-detoured")
}

func BenchmarkFig9UserWeighted(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10LeakOverTime(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11PoPMap(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12PopulationCoverage(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13PathLengths(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3RDNS(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppASimVsTraced(b *testing.B) {
	e := benchEnv(b)
	var amazonContained float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AppA(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Cloud == "Amazon" {
				amazonContained = r.Contained
			}
		}
	}
	b.ReportMetric(100*amazonContained, "amazon-contained-%")
}

func BenchmarkAppBTier1Reliance(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AppB(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec41PeerVisibility(b *testing.B) {
	e := benchEnv(b)
	var googleMissed float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec41(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Cloud == "Google" {
				googleMissed = 100 * r.MissedFrac
			}
		}
	}
	b.ReportMetric(googleMissed, "google-feed-missed-%")
}

func BenchmarkSec5Validation(b *testing.B) {
	e := benchEnv(b)
	var finalFNR float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec5(e)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			finalFNR = 100 * r.FNR
		}
	}
	b.ReportMetric(finalFNR, "last-FNR-%")
}

func BenchmarkAblationAugmentation(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(e); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the core engine, for performance tracking rather than
// paper reproduction.

func BenchmarkPropagationSingleOrigin(b *testing.B) {
	e := benchEnv(b)
	sim := bgpsim.New(e.In2020.Graph)
	google := e.In2020.Clouds["Google"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReachabilityCount(bgpsim.Config{Origin: google}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPropagationWithNextHops(b *testing.B) {
	e := benchEnv(b)
	sim := bgpsim.New(e.In2020.Graph)
	google := e.In2020.Clouds["Google"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(bgpsim.Config{Origin: google, TrackNextHops: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchyFreeReachability(b *testing.B) {
	e := benchEnv(b)
	google := e.In2020.Clouds["Google"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.M2020.Reachability(google, core.HierarchyFree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReachabilityAll measures one whole-Internet hierarchy-free
// sweep — the bit-parallel batch engine behind Table 1, Fig. 3, and the
// sensitivity analysis. FLATNET_SCALAR_SWEEP=1 pins the scalar fallback
// for comparison.
func BenchmarkReachabilityAll(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.M2020.ReachabilityAll(core.HierarchyFree); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

// BenchmarkReachabilityAllClassed measures the steady-state class-collapsed
// sweep with the origin equivalence-class index pre-built, isolating the
// propagation cost from the one-time index construction that
// BenchmarkReachabilityAll's first iteration pays. The collapse ratio
// (ASes per swept class) is reported alongside timing.
func BenchmarkReachabilityAllClassed(b *testing.B) {
	e := benchEnv(b)
	ci := e.M2020.Classes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.M2020.ReachabilityAll(core.HierarchyFree); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ci.CollapseRatio(), "collapse-ratio")
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

// BenchmarkClassIndexBuild measures a from-scratch equivalence-class index
// build over the 2020 topology — the one-time cost a fresh world pays
// before its first collapsed sweep (evolved worlds carry the index
// incrementally instead).
func BenchmarkClassIndexBuild(b *testing.B) {
	e := benchEnv(b)
	in := e.In2020
	var ci *bgpsim.ClassIndex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ci = bgpsim.NewClassIndex(in.Graph, in.Tier1, in.Tier2, nil)
	}
	b.ReportMetric(ci.CollapseRatio(), "collapse-ratio")
	reportNsPerAS(b, in.Graph.NumASes())
}

// BenchmarkLeakSweep measures one steady-state leak trial against a cached
// pre-pass — the inner loop of Figs. 7–10. allocs/op should be ~0.
func BenchmarkLeakSweep(b *testing.B) {
	e := benchEnv(b)
	g := e.In2020.Graph
	google := e.In2020.Clouds["Google"]
	leakers := bgpsim.SampleLeakers(g, google, 256, 7)
	sweep, err := bgpsim.NewLeakSweep(g, bgpsim.Config{Origin: google})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the dial queue and arena high-water marks.
	if _, err := sweep.Trial(leakers[0], nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Trial(leakers[i%len(leakers)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakTrialsBatch measures the word-parallel leak-trial engine: a
// full BatchLanes-wide block of leakers replayed in ONE propagation against
// a cached pre-pass — the §8 hot path behind Figs. 7–10 and the serving
// layer's /v1/leak batches. One op here covers BatchLanes leakers, so the
// scalar-equivalent cost is BenchmarkLeakSweep × BatchLanes.
// FLATNET_SCALAR_LEAK=1 pins LeakSweep.Trials to the scalar fallback for
// comparison. allocs/op should be ~0.
func BenchmarkLeakTrialsBatch(b *testing.B) {
	e := benchEnv(b)
	g := e.In2020.Graph
	google := e.In2020.Clouds["Google"]
	leakers := bgpsim.SampleLeakers(g, google, bgpsim.BatchLanes, 7)
	sweep, err := bgpsim.NewLeakSweep(g, bgpsim.Config{Origin: google})
	if err != nil {
		b.Fatal(err)
	}
	bl := bgpsim.NewBatchLeak(g)
	out := make([]bgpsim.LeakTrial, len(leakers))
	// Warm the dial-queue buckets and scratch high-water marks.
	if err := bl.Trials(sweep, leakers, nil, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bl.Trials(sweep, leakers, nil, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagateNoAlloc measures one steady-state reachability
// propagation with buffer reuse. allocs/op should be ~0.
func BenchmarkPropagateNoAlloc(b *testing.B) {
	e := benchEnv(b)
	sim := bgpsim.New(e.In2020.Graph)
	google := e.In2020.Clouds["Google"]
	if _, err := sim.ReachabilityCount(bgpsim.Config{Origin: google}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReachabilityCount(bgpsim.Config{Origin: google}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTiesAblation(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TiesAblation(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivity(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sensitivity(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHijackVsLeak(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Hijack(e); err != nil {
			b.Fatal(err)
		}
	}
}
