package flatnet_bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/serve"
)

// BenchmarkClusterSweep measures the sharded full-scale all-AS sweep
// through a coordinator Pool fanning out to N in-process flatnetd workers
// over real loopback HTTP — the whole cluster path: shard partitioning,
// JSON wire round-trips, and merge. Workers run with MaxConcurrent=1 (one
// shard per slot, the cluster's backpressure contract) and CacheSize=1 so
// every iteration recomputes its shards instead of replaying the result
// cache. On a multi-core host the ns/AS metric drops roughly with worker
// count; on a single-core host the series instead prices the coordination
// overhead, since all workers share one CPU.
func BenchmarkClusterSweep(b *testing.B) {
	e := fullScaleEnv(b)
	ds := core.Dataset{Graph: e.In2020.Graph, Tier1: e.In2020.Tier1, Tier2: e.In2020.Tier2}
	n := ds.Graph.NumASes()

	var wantOnce sync.Once
	var want []int
	expected := func(b *testing.B) []int {
		wantOnce.Do(func() {
			var err error
			want, err = e.M2020.ReachabilityAll(core.HierarchyFree)
			if err != nil {
				b.Fatal(err)
			}
		})
		return want
	}

	for _, nWorkers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", nWorkers), func(b *testing.B) {
			// Hedging stays effectively off: it exists for straggler
			// tolerance, and duplicate shards would distort a throughput
			// measurement on shared CPUs. Health probing is pinned off for
			// the same reason: with 4–8 workers saturating a shared CPU, a
			// 1s probe can time out and demote a perfectly alive worker,
			// and a demotion mid-fan-out permanently parks that worker's
			// puller goroutines for the rest of the sweep — the workers=4/8
			// runs used to swing 1.2–5.7s from exactly that collapse.
			pool := cluster.NewPool(cluster.PoolConfig{
				World:          "bench",
				HedgeDelay:     30 * time.Second,
				HealthInterval: time.Hour,
				ProbeTimeout:   30 * time.Second,
			})
			defer pool.Close()
			for i := 0; i < nWorkers; i++ {
				w, err := serve.New(serve.Config{Dataset: ds, MaxConcurrent: 1, CacheSize: 1})
				if err != nil {
					b.Fatal(err)
				}
				addr, err := w.Start("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					_ = w.Shutdown(ctx)
				}()
				pool.Register("http://"+addr.String(), 1)
			}
			ctx := context.Background()
			counts, err := pool.SweepCounts(ctx, core.HierarchyFree.String(), n)
			if err != nil {
				b.Fatal(err)
			}
			for i, c := range expected(b) {
				if counts[i] != c {
					b.Fatalf("cluster sweep diverges at index %d: %d != %d", i, counts[i], c)
				}
			}
			// Second warm pass: the verification sweep above built each
			// worker's lazy state (engine pools, class index, HTTP
			// keep-alives) on first touch, so only a second full fan-out
			// runs every shard at steady state. A GC fence then keeps the
			// warmup's garbage from being collected inside the timed loop —
			// the two together pin the per-op work to exactly one
			// steady-state sweep and stop the first iterations from
			// dominating short -benchtime runs.
			if _, err := pool.SweepCounts(ctx, core.HierarchyFree.String(), n); err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.SweepCounts(ctx, core.HierarchyFree.String(), n); err != nil {
					b.Fatal(err)
				}
			}
			reportNsPerAS(b, n)
		})
	}
}
