package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpfeed"
	"flatnet/internal/geo"
	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// cmdCollect simulates route collectors over a generated preset and writes
// the RIB snapshot in MRT TABLE_DUMP_V2 format — the same file shape real
// RouteViews collectors publish.
func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year")
	vps := fs.Int("vps", 40, "number of vantage points")
	out := fs.String("o", "rib.mrt", "output MRT file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := genPreset(*scale, *year)
	if err != nil {
		return err
	}
	var cands []astopo.ASN
	for i, a := range in.Graph.ASes() {
		switch in.ClassAt(i) {
		case topogen.ClassTransit, topogen.ClassTier2, topogen.ClassTier1:
			cands = append(cands, a)
		}
	}
	view, err := bgpfeed.Collect(in.Graph, bgpfeed.SampleVPs(cands, *vps, 11))
	if err != nil {
		return err
	}
	plan, err := netdb.Build(in)
	if err != nil {
		return err
	}
	if err := writeToFile(*out, func(f *os.File) error {
		return bgpfeed.WriteMRT(f, view, func(o astopo.ASN) (netip.Prefix, bool) {
			p, ok := plan.ASPrefix[o]
			return p, ok
		}, uint32(in.Spec.Seed))
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d paths from %d vantage points to %s (MRT TABLE_DUMP_V2)\n",
		len(view.Paths), len(view.VPs), *out)
	return nil
}

// cmdTrace runs the cloud traceroute campaign for one provider and writes
// the measurements as scamper-style JSON lines.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year")
	cloud := fs.String("cloud", "Google", "cloud provider (Google|Microsoft|IBM|Amazon)")
	vms := fs.Int("vms", 0, "VM count (0 = the paper's §4.1 deployment)")
	out := fs.String("o", "traces.json", "output JSON-lines file")
	aspop := fs.String("aspop", "", "also write APNIC-style population estimates to this file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := genPreset(*scale, *year)
	if err != nil {
		return err
	}
	plan, err := netdb.Build(in)
	if err != nil {
		return err
	}
	engine := tracesim.New(plan, tracesim.DefaultOptions(int64(*year)))
	vmList, err := engine.VMs(*cloud, *vms)
	if err != nil {
		return err
	}
	groups, err := engine.TraceAll(vmList)
	if err != nil {
		return err
	}
	n := 0
	if err := writeToFile(*out, func(f *os.File) error {
		for _, g := range groups {
			if err := tracesim.WriteJSON(f, g); err != nil {
				return err
			}
			n += len(g)
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d traceroutes from %d %s VMs to %s\n", n, len(vmList), *cloud, *out)
	if *aspop != "" {
		model := population.Build(in, 1.1)
		cities := geo.Cities()
		cc := func(a astopo.ASN) string {
			if city, ok := in.HomeCityOf(a); ok {
				return cities[city].Country
			}
			return "ZZ"
		}
		if err := writeToFile(*aspop, func(f *os.File) error {
			return population.WriteASPop(f, model.Export(cc))
		}); err != nil {
			return err
		}
		fmt.Printf("wrote population estimates to %s\n", *aspop)
	}
	return nil
}
