package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
)

// cmdLeaks runs the §8.2 route-leak scenario table for one origin AS.
func cmdLeaks(args []string) error {
	fs := flag.NewFlagSet("leaks", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year")
	asn := fs.String("as", "15169", "origin ASN")
	trials := fs.Int("trials", 300, "random leakers per scenario")
	hijack := fs.Bool("hijack", false, "simulate forged originations (prefix hijacks) instead of leaks")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	v, err := strconv.ParseUint(*asn, 10, 32)
	if err != nil {
		return fmt.Errorf("leaks: bad ASN %q", *asn)
	}
	origin := astopo.ASN(v)
	in, err := genPreset(*scale, *year)
	if err != nil {
		return err
	}
	if _, ok := in.Graph.Index(origin); !ok {
		return fmt.Errorf("leaks: AS%d not in the generated topology", origin)
	}
	leakers := bgpsim.SampleLeakers(in.Graph, origin, *trials, int64(origin))
	kind := "route-leak"
	if *hijack {
		kind = "prefix-hijack"
	}
	fmt.Printf("%s exposure of %s (AS%d), %d random misconfigured ASes per scenario:\n\n",
		kind, in.NameOf(origin), origin, len(leakers))
	fmt.Printf("%-40s %12s %12s %14s\n", "scenario", "mean detour", "p95 detour", "worst detour")
	// One explicit LeakSweep per scenario: the leak-free pre-pass runs once
	// per configuration and all trials replay against it (the batch engines
	// behind Trials are pooled across scenarios).
	for _, scen := range bgpsim.LeakScenarios() {
		cfg := bgpsim.ScenarioConfig(in.Graph, origin, in.Tier1, in.Tier2, scen)
		cfg.Hijack = *hijack
		sweep, err := bgpsim.NewLeakSweep(in.Graph, cfg)
		if err != nil {
			return err
		}
		res, err := sweep.Trials(context.Background(), leakers, nil)
		if err != nil {
			return err
		}
		var mean, worst float64
		fracs := make([]float64, 0, len(res))
		for _, tr := range res {
			mean += tr.DetouredFrac
			fracs = append(fracs, tr.DetouredFrac)
			if tr.DetouredFrac > worst {
				worst = tr.DetouredFrac
			}
		}
		mean /= float64(len(res))
		p95 := percentile(fracs, 0.95)
		fmt.Printf("%-40s %11.2f%% %11.2f%% %13.2f%%\n", scen, 100*mean, 100*p95, 100*worst)
	}
	fmt.Fprintln(os.Stdout, "\n(detour = fraction of ASes with a tied-best route toward the leaker; erratum semantics)")
	return nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
