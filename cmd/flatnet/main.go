// Command flatnet reproduces the experiments of "Cloud Provider
// Connectivity in the Flat Internet" (IMC 2020) over synthetic Internet
// topologies, and provides utilities for inspecting and exporting them.
//
// Usage:
//
//	flatnet list
//	flatnet run [-scale 0.04987] [-snapshot file] [-j n] <experiment-id>... | all
//	flatnet gen [-scale 0.04987] [-year 2020] [-o topology.txt]
//	flatnet stats [-scale 0.04987] [-year 2020]
//	flatnet reach [-scale 0.04987] [-year 2020] -as 15169 [-kind hierarchy-free]
//	flatnet snapshot build [-scale 0.04987] [-traces all|none] [-o flatnet.snap]
//	flatnet snapshot info <flatnet.snap>
//	flatnet timeline report [-scale 0.04987] [-snapshot file]
//	flatnet timeline build -year 2016 [-scale 0.04987] [-o y2016.snap]
//	flatnet timeline delta -base y2016.snap [-o step.snapd]
//	flatnet timeline apply -base y2016.snap -delta step.snapd [-o y2017.snap]
//	flatnet serve [-addr 127.0.0.1:8080] [-snapshot flatnet.snap]
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage mistakes
// (unknown subcommands, bad flags, missing required arguments).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
	"flatnet/internal/experiments"
	"flatnet/internal/population"
	"flatnet/internal/serve"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks an error as a usage mistake, mapped to exit code 2.
// printed records that the message already reached the user (FlagSets with
// ContinueOnError write their own diagnostics), so run does not repeat it.
type usageError struct {
	err     error
	printed bool
}

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// parseFlags parses with uniform error handling: -h surfaces the FlagSet's
// own help (exit 0), anything else becomes a usage error (exit 2).
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &usageError{err: err, printed: true}
	}
	return nil
}

// run dispatches the subcommand and maps its error to an exit code; main
// is only the os.Exit shim so tests can drive the full CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList(stdout)
	case "run":
		err = cmdRun(args[1:])
	case "gen":
		err = cmdGen(args[1:])
	case "stats":
		err = cmdStats(args[1:])
	case "reach":
		err = cmdReach(args[1:])
	case "leaks":
		err = cmdLeaks(args[1:])
	case "audit":
		err = cmdAudit(args[1:])
	case "collect":
		err = cmdCollect(args[1:])
	case "trace":
		err = cmdTrace(args[1:])
	case "snapshot":
		err = cmdSnapshot(args[1:], os.Stdout)
	case "timeline":
		err = cmdTimeline(args[1:], stdout)
	case "serve":
		err = cmdServe(args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "flatnet: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		var ue *usageError
		if errors.As(err, &ue) {
			if !ue.printed {
				fmt.Fprintln(stderr, "flatnet:", err)
			}
			fmt.Fprintln(stderr, "run 'flatnet help' for usage")
			return 2
		}
		fmt.Fprintln(stderr, "flatnet:", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  flatnet list                                  list experiments
  flatnet run [-scale f] <id>... | all          run experiments
  flatnet gen [-scale f] [-year y] [-o file]    export topology (CAIDA serial-1)
  flatnet stats [-scale f] [-year y]            topology statistics
  flatnet reach [-scale f] [-year y] -as n      reachability of one AS
  flatnet leaks [-scale f] [-year y] -as n      route-leak scenario table
  flatnet audit [-f file | -scale f -year y]    structural topology checks
  flatnet collect [-vps n] [-o rib.mrt]         simulate collectors, write MRT
  flatnet trace [-cloud C] [-o traces.json]     cloud traceroute campaign
  flatnet snapshot build [-scale f] [-o file]   freeze a prebuilt world to a binary snapshot
  flatnet snapshot info <file>                  list a snapshot's sections
  flatnet timeline report [-scale f]            per-cloud reachability, 2015-2025
  flatnet timeline build -year y [-o file]      freeze one timeline year to a snapshot
  flatnet timeline delta -base file [-o file]   derive the next year's growth delta
  flatnet timeline apply -base f -delta f       apply a delta (hash-verified)
  flatnet serve [-addr host:port]               HTTP query daemon (see flatnetd)`)
}

func cmdList(stdout io.Writer) error {
	for _, r := range experiments.Registry {
		fmt.Fprintf(stdout, "%-10s %s\n", r.ID, r.Title)
	}
	return nil
}

// cmdServe is `flatnetd` mounted as a subcommand; both share serve.RunCLI.
func cmdServe(args []string, stdout, stderr io.Writer) error {
	err := serve.RunCLI(args, stdout, stderr)
	if err != nil && serve.IsUsageError(err) {
		return &usageError{err: err, printed: true}
	}
	return err
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	outdir := fs.String("outdir", "", "also write machine-readable CSV artifacts to this directory")
	snap := fs.String("snapshot", "", "load the environment from a binary snapshot instead of generating (see 'flatnet snapshot build')")
	verify := fs.Bool("verify", false, "with -snapshot: checksum every section, including the mmap-served hot arrays, before running")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "experiments run concurrently; output stays in registry order")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return usagef("run: no experiment ids given (try 'flatnet list' or 'flatnet run all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, r := range experiments.Registry {
			ids = append(ids, r.ID)
		}
	}
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		r, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("run: unknown experiment %q", id)
		}
		runners[i] = r
	}
	start := time.Now()
	var env *experiments.Env
	if *snap != "" {
		var err error
		if env, err = loadSnapshotEnv(*snap, *verify); err != nil {
			return err
		}
		kind := "decoded"
		if env.Mapped() {
			kind = "mapped"
		}
		fmt.Printf("# %s snapshot %s: 2020 (%d ASes, %d links) and 2015 (%d ASes, %d links) at scale %g in %v\n",
			kind, *snap, env.In2020.Graph.NumASes(), env.In2020.Graph.NumLinks(),
			env.In2015.Graph.NumASes(), env.In2015.Graph.NumLinks(),
			env.Scale, time.Since(start).Round(time.Millisecond))
	} else {
		var err error
		if env, err = experiments.NewEnv(*scale); err != nil {
			return err
		}
		fmt.Printf("# generated 2020 (%d ASes, %d links) and 2015 (%d ASes, %d links) presets in %v\n",
			env.In2020.Graph.NumASes(), env.In2020.Graph.NumLinks(),
			env.In2015.Graph.NumASes(), env.In2015.Graph.NumLinks(),
			time.Since(start).Round(time.Millisecond))
	}

	// Experiments run concurrently (bounded by -j); each renders into its
	// own buffer and results stream to stdout in registry order as they
	// finish, so the output is byte-identical to a serial run. Lazy env
	// artifacts are safe to demand concurrently: builds coalesce per key.
	type result struct {
		out   bytes.Buffer
		notes []string
		took  time.Duration
		err   error
	}
	results := make([]result, len(runners))
	done := make([]chan struct{}, len(runners))
	for i := range done {
		done[i] = make(chan struct{})
	}
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	for i := range runners {
		go func(i int) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			r, res := runners[i], &results[i]
			t0 := time.Now()
			if err := r.Run(env, &res.out); err != nil {
				res.err = fmt.Errorf("%s: %w", r.ID, err)
				return
			}
			if *outdir != "" && experiments.HasTables(r.ID) {
				tables, err := experiments.Tables(env, r.ID)
				if err != nil {
					res.err = fmt.Errorf("%s: CSV: %w", r.ID, err)
					return
				}
				for _, tbl := range tables {
					tbl := tbl
					path := fmt.Sprintf("%s/%s.csv", *outdir, tbl.Name)
					if err := writeToFile(path, func(f *os.File) error { return tbl.WriteCSV(f) }); err != nil {
						res.err = err
						return
					}
					res.notes = append(res.notes, fmt.Sprintf("-- wrote %s", path))
				}
			}
			res.took = time.Since(t0)
		}(i)
	}
	for i, r := range runners {
		<-done[i]
		res := &results[i]
		if res.err != nil {
			return res.err
		}
		fmt.Printf("\n== %s — %s ==\n", r.ID, r.Title)
		os.Stdout.Write(res.out.Bytes())
		for _, n := range res.notes {
			fmt.Println(n)
		}
		fmt.Printf("-- %s done in %v\n", r.ID, res.took.Round(time.Millisecond))
	}
	return nil
}

// loadSnapshotEnv opens a snapshot on the zero-copy mmap path, falling
// back to the eager legacy decoder for v1 files. The Reader (when used)
// stays open for the life of the process: the environment borrows its
// memory. verify forces a full checksum pass over every section, including
// the hot arrays the mmap path otherwise only CRCs via this flag.
func loadSnapshotEnv(path string, verify bool) (*experiments.Env, error) {
	rd, oerr := snapshot.Open(path)
	if oerr == nil {
		if verify {
			if err := rd.Verify(); err != nil {
				return nil, err
			}
		}
		return experiments.NewEnvFromSnapshot(rd)
	}
	// Not a v2 file: try the legacy eager decoder, which checksums
	// everything up front. If that fails too, report the v2 error.
	world, rerr := snapshot.ReadFile(path)
	if rerr != nil {
		return nil, oerr
	}
	return experiments.NewEnvFromWorld(world)
}

func genPreset(scale float64, year int) (*topogen.Internet, error) {
	switch year {
	case 2020:
		return topogen.Generate(topogen.Internet2020(scale))
	case 2015:
		return topogen.Generate(topogen.Internet2015(scale))
	}
	return nil, fmt.Errorf("unknown year %d (want 2015 or 2020)", year)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year (2015 or 2020)")
	out := fs.String("o", "", "relationship output file (default stdout, CAIDA serial-1)")
	cones := fs.String("cones", "", "also write customer cones (CAIDA ppdc-ases format)")
	types := fs.String("types", "", "also write AS types (CAIDA as2type format)")
	orgs := fs.String("orgs", "", "also write AS organizations (CAIDA as-org2info format)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := genPreset(*scale, *year)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := astopo.WriteRelationships(w, in.Graph); err != nil {
		return err
	}
	if *cones != "" {
		coneMap := make(map[astopo.ASN][]astopo.ASN, in.Graph.NumASes())
		for _, a := range in.Graph.ASes() {
			coneMap[a] = in.Graph.CustomerCone(a)
		}
		if err := writeToFile(*cones, func(f *os.File) error {
			return astopo.WritePPDCAses(f, coneMap)
		}); err != nil {
			return err
		}
	}
	if *types != "" {
		model := population.Build(in, 1.1)
		records := make(map[astopo.ASN]astopo.AS2TypeRecord, in.Graph.NumASes())
		for _, a := range in.Graph.ASes() {
			var label astopo.ASTypeLabel
			switch model.Type(a) {
			case population.TypeContent:
				label = astopo.TypeLabelContent
			case population.TypeEnterprise:
				label = astopo.TypeLabelEnterprise
			default:
				label = astopo.TypeLabelTransitAccess
			}
			records[a] = astopo.AS2TypeRecord{AS: a, Type: label}
		}
		if err := writeToFile(*types, func(f *os.File) error {
			return astopo.WriteAS2Type(f, records)
		}); err != nil {
			return err
		}
	}
	if *orgs != "" {
		db := &astopo.OrgDB{Orgs: map[string]astopo.Org{}, ByAS: map[astopo.ASN]astopo.ASOrg{}}
		for _, a := range in.Graph.ASes() {
			id := fmt.Sprintf("ORG-AS%d", a)
			db.Orgs[id] = astopo.Org{ID: id, Name: in.NameOf(a), Country: "ZZ", Source: "synthetic"}
			db.ByAS[a] = astopo.ASOrg{AS: a, Name: in.NameOf(a), OrgID: id}
		}
		if err := writeToFile(*orgs, func(f *os.File) error {
			return astopo.WriteASOrg(f, db)
		}); err != nil {
			return err
		}
	}
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	file := fs.String("f", "", "CAIDA serial-1/serial-2 relationship file (default: generated preset)")
	scale := fs.Float64("scale", 0.04987, "topology scale when generating (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year (when generating)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var g *astopo.Graph
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		if g, err = astopo.ReadRelationships(f); err != nil {
			return err
		}
	} else {
		in, err := genPreset(*scale, *year)
		if err != nil {
			return err
		}
		g = in.Graph
	}
	issues := astopo.Audit(g)
	fmt.Printf("audited %d ASes, %d links: %d issue(s)\n", g.NumASes(), g.NumLinks(), len(issues))
	for _, i := range issues {
		fmt.Printf("  [%s] %s", i.Kind, i.Detail)
		if len(i.ASes) > 0 && len(i.ASes) <= 8 {
			fmt.Printf(" %v", i.ASes)
		}
		fmt.Println()
	}
	if len(issues) > 0 {
		return fmt.Errorf("audit: %d issue(s) found", len(issues))
	}
	return nil
}

func writeToFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	in, err := genPreset(*scale, *year)
	if err != nil {
		return err
	}
	g := in.Graph
	p2p, p2c := 0, 0
	for _, l := range g.Links() {
		if l.Rel == astopo.P2P {
			p2p++
		} else {
			p2c++
		}
	}
	fmt.Printf("preset %d at scale %.2f\n", *year, *scale)
	fmt.Printf("ASes:  %d\n", g.NumASes())
	fmt.Printf("links: %d (p2c %d, p2p %d)\n", g.NumLinks(), p2c, p2p)
	fmt.Printf("tier1: %d, tier2: %d, IXPs: %d\n", len(in.Tier1), len(in.Tier2), len(in.IXPs))
	byClass := map[topogen.ASClass]int{}
	for i := range g.ASes() {
		byClass[in.ClassAt(i)]++
	}
	for _, c := range []topogen.ASClass{topogen.ClassTier1, topogen.ClassTier2, topogen.ClassTransit,
		topogen.ClassAccess, topogen.ClassContent, topogen.ClassEnterprise, topogen.ClassCloud} {
		fmt.Printf("  %-12s %6d\n", c, byClass[c])
	}
	for _, name := range experiments.Clouds() {
		a := in.Clouds[name]
		fmt.Printf("%-10s AS%-7d providers=%d peers=%d PoPs=%d\n",
			name, a, len(g.Providers(a)), len(g.Peers(a)), len(in.PoPsOf(a)))
	}
	return nil
}

func cmdReach(args []string) error {
	fs := flag.NewFlagSet("reach", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year")
	asn := fs.String("as", "", "origin ASN (required)")
	kind := fs.String("kind", "hierarchy-free", "full | provider-free | tier1-free | hierarchy-free")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *asn == "" {
		return usagef("reach: -as is required")
	}
	v, err := strconv.ParseUint(*asn, 10, 32)
	if err != nil {
		return usagef("reach: bad ASN %q", *asn)
	}
	k, err := core.KindFromString(*kind)
	if err != nil {
		return usagef("reach: unknown kind %q", *kind)
	}
	in, err := genPreset(*scale, *year)
	if err != nil {
		return err
	}
	m := core.New(core.Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2})
	n, err := m.Reachability(astopo.ASN(v), k)
	if err != nil {
		return err
	}
	total := in.Graph.NumASes() - 1
	fmt.Printf("%s reachability of %s (AS%d): %d / %d ASes (%.1f%%)\n",
		k, in.NameOf(astopo.ASN(v)), v, n, total, 100*float64(n)/float64(total))
	return nil
}
