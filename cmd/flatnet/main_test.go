package main

import (
	"testing"
)

func TestGenPreset(t *testing.T) {
	for _, year := range []int{2015, 2020} {
		in, err := genPreset(0.1, year)
		if err != nil {
			t.Fatalf("year %d: %v", year, err)
		}
		if in.Graph.NumASes() < 500 {
			t.Errorf("year %d: only %d ASes", year, in.Graph.NumASes())
		}
	}
	if _, err := genPreset(0.1, 1999); err == nil {
		t.Error("unknown year accepted")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 0.1},
		{0.5, 0.5},
		{1, 0.9},
	}
	for _, c := range cases {
		if got := percentile(xs, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 0.5 {
		t.Error("percentile sorted its input in place")
	}
}
