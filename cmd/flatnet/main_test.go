package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCLI drives the full CLI in-process and returns the exit code plus
// captured stdout/stderr. Subcommand FlagSets write their own diagnostics
// to os.Stderr, so these tests assert on codes and on run's output only.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown command", []string{"frobnicate"}, 2},
		{"help", []string{"help"}, 0},
		{"list", []string{"list"}, 0},
		{"run without ids", []string{"run"}, 2},
		{"run unknown flag", []string{"run", "-no-such-flag"}, 2},
		{"reach missing as", []string{"reach"}, 2},
		{"reach bad asn", []string{"reach", "-as", "nope"}, 2},
		{"serve unknown flag", []string{"serve", "-no-such-flag"}, 2},
		{"serve extra arg", []string{"serve", "surprise"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, _ := runCLI(c.args...)
			if code != c.want {
				t.Errorf("run(%q) = %d, want %d", c.args, code, c.want)
			}
		})
	}
}

func TestRunUnknownCommandMessage(t *testing.T) {
	_, _, stderr := runCLI("frobnicate")
	if !strings.Contains(stderr, `unknown command "frobnicate"`) {
		t.Errorf("stderr = %q, want the unknown command named", stderr)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Errorf("stderr = %q, want usage text", stderr)
	}
}

func TestRunUsageErrorPointsAtHelp(t *testing.T) {
	code, _, stderr := runCLI("run")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no experiment ids") || !strings.Contains(stderr, "flatnet help") {
		t.Errorf("stderr = %q, want the error plus a help pointer", stderr)
	}
}

func TestHelpGoesToStdout(t *testing.T) {
	code, stdout, stderr := runCLI("help")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "usage:") || stderr != "" {
		t.Errorf("help wrote stdout=%q stderr=%q; usage belongs on stdout", stdout, stderr)
	}
}

func TestListOutput(t *testing.T) {
	code, stdout, _ := runCLI("list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "fig4") {
		t.Errorf("list output %q does not mention fig4", stdout)
	}
}

func TestRuntimeErrorExitsOne(t *testing.T) {
	// A year no preset exists for fails at runtime, after flag parsing.
	code, _, stderr := runCLI("stats", "-year", "1800")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "unknown year") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestGenPreset(t *testing.T) {
	for _, year := range []int{2015, 2020} {
		in, err := genPreset(0.01425, year)
		if err != nil {
			t.Fatalf("year %d: %v", year, err)
		}
		if in.Graph.NumASes() < 500 {
			t.Errorf("year %d: only %d ASes", year, in.Graph.NumASes())
		}
	}
	if _, err := genPreset(0.01425, 1999); err == nil {
		t.Error("unknown year accepted")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 0.1},
		{0.5, 0.5},
		{1, 0.9},
	}
	for _, c := range cases {
		if got := percentile(xs, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 0.5 {
		t.Error("percentile sorted its input in place")
	}
}
