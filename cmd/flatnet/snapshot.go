package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flatnet/internal/experiments"
	"flatnet/internal/par"
	"flatnet/internal/snapshot"
)

// cmdSnapshot dispatches the snapshot subcommands: `build` freezes a fully
// prewarmed environment into a binary snapshot, `info` lists a snapshot's
// sections without decoding payloads.
func cmdSnapshot(args []string, stdout *os.File) error {
	if len(args) == 0 {
		return usagef("snapshot: missing subcommand (build or info)")
	}
	switch args[0] {
	case "build":
		return cmdSnapshotBuild(args[1:])
	case "info":
		return cmdSnapshotInfo(args[1:], stdout)
	}
	return usagef("snapshot: unknown subcommand %q (want build or info)", args[0])
}

func cmdSnapshotBuild(args []string) error {
	fs := flag.NewFlagSet("snapshot build", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.35, "topology scale (1.0 = ~9,900 ASes)")
	out := fs.String("o", "flatnet.snap", "output snapshot file")
	traces := fs.String("traces", "all", "trace corpora to include: all (every paper cloud, 2020) or none")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("snapshot build: unexpected argument %q", fs.Arg(0))
	}
	switch *traces {
	case "all", "none":
	default:
		return usagef("snapshot build: -traces must be all or none, got %q", *traces)
	}
	start := time.Now()
	env, err := experiments.NewEnv(*scale)
	if err != nil {
		return err
	}
	if *traces == "all" {
		err = env.Prewarm()
	} else {
		// Plans and rDNS only: still useful for the daemon and the
		// metric experiments, and much faster to build.
		tasks := []func() error{
			func() error { _, err := env.RDNS2020(); return err },
			func() error { _, err := env.Plan2015(); return err },
		}
		err = par.For(len(tasks), len(tasks), func(w int) func(i int) error {
			return func(i int) error { return tasks[i]() }
		})
	}
	if err != nil {
		return err
	}
	built := time.Since(start)
	if err := snapshot.WriteFile(*out, env.World()); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.1f MiB, scale %g, built in %v\n",
		*out, float64(st.Size())/(1<<20), *scale, built.Round(time.Millisecond))
	return nil
}

func cmdSnapshotInfo(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("snapshot info", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("snapshot info: exactly one snapshot file expected")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := snapshot.ReadInfo(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: version %d, scale %g, %d sections\n",
		path, info.Version, info.Scale, len(info.Sections))
	for _, s := range info.Sections {
		switch s.Kind {
		case snapshot.KindTraces:
			fmt.Fprintf(stdout, "  %-10s %4d  %-10s %2d VM groups  %8.1f KiB\n",
				s.Kind, s.Year, s.Cloud, s.VMs, float64(s.Length)/1024)
		default:
			fmt.Fprintf(stdout, "  %-10s %4d  %24s  %8.1f KiB\n",
				s.Kind, s.Year, "", float64(s.Length)/1024)
		}
	}
	return nil
}
