package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flatnet/internal/experiments"
	"flatnet/internal/par"
	"flatnet/internal/snapshot"
)

// fileSHA256 streams one file through sha256; the hex digest is the
// snapshot's content address (what a sharded cluster will key worker sync
// on).
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// cmdSnapshot dispatches the snapshot subcommands: `build` freezes a fully
// prewarmed environment into a binary snapshot, `info` lists a snapshot's
// sections without decoding payloads.
func cmdSnapshot(args []string, stdout *os.File) error {
	if len(args) == 0 {
		return usagef("snapshot: missing subcommand (build or info)")
	}
	switch args[0] {
	case "build":
		return cmdSnapshotBuild(args[1:])
	case "info":
		return cmdSnapshotInfo(args[1:], stdout)
	}
	return usagef("snapshot: unknown subcommand %q (want build or info)", args[0])
}

func cmdSnapshotBuild(args []string) error {
	fs := flag.NewFlagSet("snapshot build", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	out := fs.String("o", "flatnet.snap", "output snapshot file")
	traces := fs.String("traces", "all", "trace corpora to include: all (every paper cloud, 2020) or none")
	bare := fs.Bool("bare", false, "topologies and population only — no plans, rDNS, or traces (required for stress scales past the address plan's /18 capacity, e.g. -scale 20)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("snapshot build: unexpected argument %q", fs.Arg(0))
	}
	switch *traces {
	case "all", "none":
	default:
		return usagef("snapshot build: -traces must be all or none, got %q", *traces)
	}
	if *bare && *traces == "all" {
		return usagef("snapshot build: -bare requires -traces none")
	}
	start := time.Now()
	env, err := experiments.NewEnv(*scale)
	if err != nil {
		return err
	}
	switch {
	case *bare:
		// Nothing beyond what NewEnv built: topologies and population.
	case *traces == "all":
		err = env.Prewarm()
	default:
		// Plans and rDNS only: still useful for the daemon and the
		// metric experiments, and much faster to build.
		tasks := []func() error{
			func() error { _, err := env.RDNS2020(); return err },
			func() error { _, err := env.Plan2015(); return err },
		}
		err = par.For(len(tasks), len(tasks), func(w int) func(i int) error {
			return func(i int) error { return tasks[i]() }
		})
	}
	if err != nil {
		return err
	}
	built := time.Since(start)
	if err := snapshot.WriteFile(*out, env.World()); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	sum, err := fileSHA256(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.1f MiB, scale %g, built in %v\n",
		*out, float64(st.Size())/(1<<20), *scale, built.Round(time.Millisecond))
	fmt.Printf("sha256 %s\n", sum)
	return nil
}

func cmdSnapshotInfo(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("snapshot info", flag.ContinueOnError)
	verify := fs.Bool("verify", false, "fully decode and checksum every section, including the mmap-served hot arrays")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("snapshot info: exactly one snapshot file expected")
	}
	path := fs.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := snapshot.ReadInfo(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: version %d, scale %g, %d sections\n",
		path, info.Version, info.Scale, len(info.Sections))
	fmt.Fprintf(stdout, "sha256 %x\n", sha256.Sum256(raw))
	for _, s := range info.Sections {
		if s.Cloud != "" {
			fmt.Fprintf(stdout, "  %-12s %4d  %-10s %2d VM groups  %12d B\n",
				s.Label, s.Year, s.Cloud, s.VMs, s.Length)
		} else {
			fmt.Fprintf(stdout, "  %-12s %4d  %24s  %12d B\n",
				s.Label, s.Year, "", s.Length)
		}
	}
	if info.Delta != nil {
		// Delta files carry lineage instead of worlds: print the base→result
		// chain so operators can line up a delta against `timeline build`
		// output (the world hashes) before applying it.
		fmt.Fprintf(stdout, "delta  %d→%d\n", info.Delta.FromYear, info.Delta.ToYear)
		fmt.Fprintf(stdout, "base   %s\n", info.Delta.BaseHash)
		fmt.Fprintf(stdout, "result %s\n", info.Delta.ResultHash)
	}
	if *verify {
		if info.Delta != nil {
			if _, err := snapshot.DecodeDelta(raw); err != nil {
				return fmt.Errorf("snapshot info: verify: %w", err)
			}
		} else if _, err := snapshot.Decode(raw); err != nil {
			return fmt.Errorf("snapshot info: verify: %w", err)
		}
		fmt.Fprintln(stdout, "verified: every section checksum OK")
	}
	return nil
}
