package main

// `flatnet timeline` is the longitudinal toolchain: walk the 2015–2025
// preset series, freeze single years to snapshots, derive the growth
// delta between adjacent years, and apply a delta to a base snapshot.
// Everything is deterministic and hash-verified, so
//
//	timeline build -year N  →  timeline delta  →  timeline apply
//
// produces a snapshot byte-identical to `timeline build -year N+1` — the
// equivalence CI's timeline-smoke job enforces.

import (
	"flag"
	"fmt"
	"io"
	"time"

	"flatnet/internal/cluster"
	"flatnet/internal/experiments"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
)

func cmdTimeline(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return usagef("timeline: missing subcommand (report, build, delta, or apply)")
	}
	switch args[0] {
	case "report":
		return cmdTimelineReport(args[1:], stdout)
	case "build":
		return cmdTimelineBuild(args[1:], stdout)
	case "delta":
		return cmdTimelineDelta(args[1:], stdout)
	case "apply":
		return cmdTimelineApply(args[1:], stdout)
	}
	return usagef("timeline: unknown subcommand %q (want report, build, delta, or apply)", args[0])
}

// worldHash is the content address the serving and delta layers key on.
func worldHash(in *topogen.Internet) string {
	return cluster.DatasetHash(in.Graph, in.Tier1, in.Tier2)
}

// openTimelineSnap opens a world snapshot holding exactly one year — the
// shape `timeline build` and `timeline apply` write.
func openTimelineSnap(path string) (*snapshot.Reader, int, *topogen.Internet, error) {
	rd, err := snapshot.Open(path)
	if err != nil {
		return nil, 0, nil, err
	}
	years := rd.Years()
	if len(years) != 1 {
		rd.Close()
		return nil, 0, nil, fmt.Errorf("timeline: %s holds %d internet sections, want exactly one year", path, len(years))
	}
	in := rd.Internet(years[0])
	if in == nil {
		rd.Close()
		return nil, 0, nil, fmt.Errorf("timeline: %s has no internet section for %d", path, years[0])
	}
	return rd, years[0], in, nil
}

func cmdTimelineReport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("timeline report", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	snap := fs.String("snapshot", "", "print this snapshot's world(s) instead of folding the whole series")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("timeline report: unexpected argument %q", fs.Arg(0))
	}
	if *snap != "" {
		rd, err := snapshot.Open(*snap)
		if err != nil {
			return err
		}
		defer rd.Close()
		experiments.PrintTimelineHeader(stdout)
		for _, year := range rd.Years() {
			row, err := experiments.TimelineRowFor(year, rd.Internet(year))
			if err != nil {
				return err
			}
			experiments.PrintTimelineRow(stdout, row)
		}
		return nil
	}
	res, err := experiments.TimelineAt(*scale)
	if err != nil {
		return err
	}
	experiments.PrintTimelineHeader(stdout)
	for _, row := range res.Rows {
		experiments.PrintTimelineRow(stdout, row)
	}
	fmt.Fprintf(stdout, "incremental fold: %d/%d origins re-propagated across %d steps (%d full-sweep fallbacks)\n",
		res.Dirty, res.Origins, len(res.Rows)-1, res.FullSweeps)
	return nil
}

func cmdTimelineBuild(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("timeline build", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.04987, "topology scale (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", topogen.TimelineFirstYear, fmt.Sprintf("timeline year (%d–%d)", topogen.TimelineFirstYear, topogen.TimelineLastYear))
	out := fs.String("o", "timeline.snap", "output snapshot file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("timeline build: unexpected argument %q", fs.Arg(0))
	}
	start := time.Now()
	in, err := topogen.GenerateYear(*year, *scale)
	if err != nil {
		return err
	}
	world := &snapshot.World{Scale: *scale, Internets: map[int]*topogen.Internet{*year: in}}
	if err := snapshot.WriteFile(*out, world); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: year %d at scale %g, %d ASes, %d links, built in %v\n",
		*out, *year, *scale, in.Graph.NumASes(), in.Graph.NumLinks(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "world %s\n", worldHash(in))
	return nil
}

func cmdTimelineDelta(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("timeline delta", flag.ContinueOnError)
	base := fs.String("base", "", "base world snapshot (required; from 'timeline build')")
	out := fs.String("o", "step.snapd", "output delta file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *base == "" {
		return usagef("timeline delta: -base is required")
	}
	if fs.NArg() > 0 {
		return usagef("timeline delta: unexpected argument %q", fs.Arg(0))
	}
	rd, year, in, err := openTimelineSnap(*base)
	if err != nil {
		return err
	}
	defer rd.Close()
	scale := rd.Scale()
	g, err := topogen.EvolveStep(in, year+1, scale)
	if err != nil {
		return err
	}
	// The recorded result hash is what makes application fail closed, so
	// derive it by actually applying the delta, not by trusting the step.
	next, err := topogen.ApplyDelta(in, g)
	if err != nil {
		return err
	}
	d := &snapshot.Delta{
		FromYear: g.FromYear, ToYear: g.ToYear, Scale: g.Scale,
		BaseHash: worldHash(in), ResultHash: worldHash(next),
		Growth: g,
	}
	if err := snapshot.WriteDeltaFile(*out, d); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: delta %d→%d at scale %g (%d new ASes, +%d/-%d links)\n",
		*out, d.FromYear, d.ToYear, d.Scale, len(g.NewASes), len(g.AddedLinks), len(g.RemovedLinks))
	fmt.Fprintf(stdout, "base   %s\nresult %s\n", d.BaseHash, d.ResultHash)
	return nil
}

func cmdTimelineApply(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("timeline apply", flag.ContinueOnError)
	base := fs.String("base", "", "base world snapshot (required)")
	deltaPath := fs.String("delta", "", "delta file to apply (required; from 'timeline delta')")
	out := fs.String("o", "evolved.snap", "output snapshot file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *base == "" || *deltaPath == "" {
		return usagef("timeline apply: -base and -delta are required")
	}
	if fs.NArg() > 0 {
		return usagef("timeline apply: unexpected argument %q", fs.Arg(0))
	}
	d, err := snapshot.ReadDeltaFile(*deltaPath)
	if err != nil {
		return err
	}
	rd, year, in, err := openTimelineSnap(*base)
	if err != nil {
		return err
	}
	defer rd.Close()
	if h := worldHash(in); h != d.BaseHash {
		return fmt.Errorf("timeline apply: delta applies to world %.12s…, but %s (year %d) is %.12s…", d.BaseHash, *base, year, h)
	}
	next, err := topogen.ApplyDelta(in, d.Growth)
	if err != nil {
		return err
	}
	if h := worldHash(next); h != d.ResultHash {
		return fmt.Errorf("timeline apply: applied delta produced world %.12s…, but the delta promised %.12s…", h, d.ResultHash)
	}
	world := &snapshot.World{Scale: d.Scale, Internets: map[int]*topogen.Internet{d.ToYear: next}}
	if err := snapshot.WriteFile(*out, world); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: year %d, %d ASes, %d links\n",
		*out, d.ToYear, next.Graph.NumASes(), next.Graph.NumLinks())
	fmt.Fprintf(stdout, "world %s (verified against the delta's recorded result hash)\n", d.ResultHash)
	return nil
}
