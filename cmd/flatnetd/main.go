// Command flatnetd is the long-running query daemon over the paper's
// metrics: it loads or generates one topology, precomputes the shared
// simulator state, and serves reachability, reliance, and route-leak
// queries as HTTP/JSON until SIGINT/SIGTERM (see internal/serve for the
// endpoint reference). `flatnet serve` is the same daemon mounted as a
// subcommand.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage mistakes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"flatnet/internal/serve"
)

func main() {
	err := serve.RunCLI(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
	case serve.IsUsageError(err):
		fmt.Fprintln(os.Stderr, "run 'flatnetd -h' for usage")
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "flatnetd:", err)
		os.Exit(1)
	}
}
