package flatnet_bench

import (
	"os"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/experiments"
	"flatnet/internal/snapshot"
)

// BenchmarkEnvColdStart measures the full cold-start path of the default
// environment: generate both presets and prewarm every lazy artifact the
// experiment registry consumes (plans, rDNS, all four clouds' 2020 trace
// corpora). The trace corpora dominate; the parallel path pays one shared
// propagation sweep for all clouds.
func BenchmarkEnvColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.NewEnv(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Prewarm(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvColdStartSerial is the same cold start over the serial
// reference environment (one artifact at a time, one cloud at a time, no
// shared propagation) — the baseline BenchmarkEnvColdStart's speedup is
// quoted against.
func BenchmarkEnvColdStartSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.NewEnvSerial(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Prewarm(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures time-to-first-query from a snapshot of
// the paper's full-scale world (scale 1.0: 69,488 + 51,801 ASes),
// regardless of FLATNET_BENCH_SCALE — the `flatnet run -snapshot` /
// `flatnetd -snapshot` cold-start path, with the file page-cached as on
// any warm machine. Each iteration opens the file, wires an
// experiments.Env, and answers one hierarchy-free reachability query:
//
//	mmap    zero-copy Reader (snapshot.Open + NewEnvFromSnapshot); the
//	        topology arenas are served straight from the mapping
//	decode  eager full decode (snapshot.ReadFile + NewEnvFromWorld),
//	        the v1-era path kept as the comparison baseline
//
// The snapshot carries both years' peering plans and the 2020 rDNS corpus
// alongside the topologies, as a production `flatnet snapshot build` file
// does. The decode path parses all of it up front; the mmap path leaves
// the pointer-shaped cold sections untouched in the mapping, since a
// reachability query never needs them.
func BenchmarkSnapshotLoad(b *testing.B) {
	e := fullScaleEnv(b)
	if _, err := e.Plan2020(); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Plan2015(); err != nil {
		b.Fatal(err)
	}
	if _, err := e.RDNS2020(); err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/world.snap"
	if err := snapshot.WriteFile(path, e.World()); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	nASes := e.In2020.Graph.NumASes()
	google := e.In2020.Clouds["Google"]
	firstQuery := func(b *testing.B, env *experiments.Env) {
		if _, err := env.M2020.Reachability(google, core.HierarchyFree); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("mmap", func(b *testing.B) {
		b.SetBytes(st.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rd, err := snapshot.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			env, err := experiments.NewEnvFromSnapshot(rd)
			if err != nil {
				b.Fatal(err)
			}
			firstQuery(b, env)
			rd.Close()
		}
		reportNsPerAS(b, nASes)
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(st.Size())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := snapshot.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			env, err := experiments.NewEnvFromWorld(w)
			if err != nil {
				b.Fatal(err)
			}
			firstQuery(b, env)
		}
		reportNsPerAS(b, nASes)
	})
}
