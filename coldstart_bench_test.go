package flatnet_bench

import (
	"os"
	"testing"

	"flatnet/internal/experiments"
	"flatnet/internal/snapshot"
)

// BenchmarkEnvColdStart measures the full cold-start path of the default
// environment: generate both presets and prewarm every lazy artifact the
// experiment registry consumes (plans, rDNS, all four clouds' 2020 trace
// corpora). The trace corpora dominate; the parallel path pays one shared
// propagation sweep for all clouds.
func BenchmarkEnvColdStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.NewEnv(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Prewarm(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvColdStartSerial is the same cold start over the serial
// reference environment (one artifact at a time, one cloud at a time, no
// shared propagation) — the baseline BenchmarkEnvColdStart's speedup is
// quoted against.
func BenchmarkEnvColdStartSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := experiments.NewEnvSerial(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Prewarm(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures restoring a fully prewarmed environment
// from a snapshot file — the `flatnet run -snapshot` / `flatnetd -snapshot`
// cold-start path (the file is page-cached, as on any warm machine).
func BenchmarkSnapshotLoad(b *testing.B) {
	e, err := experiments.NewEnv(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Prewarm(); err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/world.snap"
	if err := snapshot.WriteFile(path, e.World()); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := snapshot.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.NewEnvFromWorld(w); err != nil {
			b.Fatal(err)
		}
	}
}
