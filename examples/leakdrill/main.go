// Leakdrill: a route-leak resilience drill for a network operator.
//
// The example attaches a synthetic "your network" AS to a generated
// Internet with a configurable peering strategy, then measures — exactly as
// the paper's §8 does for the clouds — what fraction of the Internet would
// detour to a randomly misconfigured AS leaking your prefix, under each
// announcement / peer-locking posture. It shows the paper's two findings
// in an operator-facing form: rich peering is itself a defense, and peer
// locking at your biggest neighbors caps even the worst leaks.
package main

import (
	"flag"
	"fmt"
	"log"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/topogen"
)

func main() {
	peers := flag.Int("peers", 150, "number of settlement-free peers for your network")
	providers := flag.Int("providers", 2, "number of transit providers")
	trials := flag.Int("trials", 300, "random leakers to simulate per scenario")
	flag.Parse()

	in, err := topogen.Generate(topogen.Internet2020(0.0285))
	if err != nil {
		log.Fatal(err)
	}
	g := in.Graph.Clone()

	// Attach "your network": transit from Tier-2s, peering spread over
	// the biggest regional transit and access networks.
	const you = astopo.ASN(64512)
	t2 := in.Tier2.Slice()
	for i := 0; i < *providers && i < len(t2); i++ {
		g.MustAddLink(t2[i], you, astopo.P2C)
	}
	// Settlement-free peering with a few Tier-1s and Tier-2s (these are
	// also where peer locking can be deployed for your prefixes)...
	added := 0
	for _, a := range in.Tier1.Slice()[:4] {
		if g.AddPeerIfAbsent(you, a) {
			added++
		}
	}
	for _, a := range t2[len(t2)-4:] {
		if g.AddPeerIfAbsent(you, a) {
			added++
		}
	}
	// ...and with regional transit and access networks up to the budget.
	for _, a := range g.ASes() {
		if added >= *peers {
			break
		}
		switch in.ClassOf(a) {
		case topogen.ClassTransit, topogen.ClassAccess:
			if g.AddPeerIfAbsent(you, a) {
				added++
			}
		}
	}
	g.Freeze()
	fmt.Printf("your network: AS%d with %d providers and %d peers on a %d-AS Internet\n\n",
		you, *providers, added, g.NumASes())

	leakers := bgpsim.SampleLeakers(g, you, *trials, 1)
	fmt.Printf("%-40s %12s %12s\n", "posture", "mean detour", "worst detour")
	for _, scen := range bgpsim.LeakScenarios() {
		cfg := bgpsim.ScenarioConfig(g, you, in.Tier1, in.Tier2, scen)
		res, err := bgpsim.RunLeakTrials(g, cfg, leakers, nil)
		if err != nil {
			log.Fatal(err)
		}
		var mean, worst float64
		for _, tr := range res {
			mean += tr.DetouredFrac
			if tr.DetouredFrac > worst {
				worst = tr.DetouredFrac
			}
		}
		mean /= float64(len(res))
		fmt.Printf("%-40s %11.2f%% %11.2f%%\n", scen, 100*mean, 100*worst)
	}
	fmt.Println("\ninterpretation: 'announce to all' beats announcing only into the")
	fmt.Println("hierarchy because every extra peer shortens your legitimate routes;")
	fmt.Println("peer locking at Tier-1/Tier-2 neighbors bounds even the worst leak.")
}
