// Peerplan: a peering planner built on hierarchy-free reachability.
//
// Given a network in the generated Internet, the example evaluates
// candidate peers by the marginal hierarchy-free reachability each would
// add — the quantity the paper shows the clouds have been maximizing. It
// then greedily proposes a short peering shopping list.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
	"flatnet/internal/topogen"
)

func main() {
	asn := flag.Uint("as", 16509, "network to plan for (default: Amazon)")
	rounds := flag.Int("rounds", 3, "greedy rounds (peers to recommend)")
	candidates := flag.Int("candidates", 40, "top transit candidates evaluated per round")
	flag.Parse()

	in, err := topogen.Generate(topogen.Internet2020(0.0285))
	if err != nil {
		log.Fatal(err)
	}
	origin := astopo.ASN(*asn)
	if _, ok := in.Graph.Index(origin); !ok {
		log.Fatalf("AS%d not in the generated topology", origin)
	}

	// Candidate pool: the biggest regional transits (by customer count)
	// not already adjacent to the origin.
	type cand struct {
		asn  astopo.ASN
		cone int
	}
	g := in.Graph
	cones := g.ConeSizes()
	var pool []cand
	for i, a := range g.ASes() {
		if in.ClassAt(i) != topogen.ClassTransit {
			continue
		}
		if _, linked := g.HasLink(origin, a); linked || a == origin {
			continue
		}
		pool = append(pool, cand{a, cones[i]})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].cone > pool[j].cone })
	if len(pool) > *candidates {
		pool = pool[:*candidates]
	}

	baseline := hierarchyFree(in, g, origin)
	fmt.Printf("%s (AS%d) hierarchy-free reachability today: %d ASes\n\n",
		in.NameOf(origin), origin, baseline)

	current := g
	for round := 1; round <= *rounds; round++ {
		bestGain, bestIdx := -1, -1
		for i, c := range pool {
			if c.asn == 0 {
				continue
			}
			trial := current.Clone()
			trial.AddPeerIfAbsent(origin, c.asn)
			gain := hierarchyFree(in, trial, origin) - baseline
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 || bestGain <= 0 {
			fmt.Println("no candidate adds reachability; stopping")
			break
		}
		chosen := pool[bestIdx]
		current = current.Clone()
		current.AddPeerIfAbsent(origin, chosen.asn)
		baseline += bestGain
		pool[bestIdx].asn = 0 // consumed
		fmt.Printf("round %d: peer with %-10s (cone %4d)  -> +%d ASes (now %d)\n",
			round, in.NameOf(chosen.asn), chosen.cone, bestGain, baseline)
	}
}

func hierarchyFree(in *topogen.Internet, g *astopo.Graph, origin astopo.ASN) int {
	m := core.New(core.Dataset{Graph: g, Tier1: in.Tier1, Tier2: in.Tier2})
	n, err := m.Reachability(origin, core.HierarchyFree)
	if err != nil {
		log.Fatal(err)
	}
	return n
}
