// Popcoverage: PoP placement what-if analysis in the style of the paper's
// §9. The example greedily places PoPs to maximize world population
// coverage at the paper's 500/700/1000 km radii, and compares the greedy
// frontier against the generated Google and Sprint footprints — showing how
// close real-style deployments come to the coverage-optimal one.
package main

import (
	"flag"
	"fmt"
	"log"

	"flatnet/internal/geo"
	"flatnet/internal/topogen"
)

func main() {
	budget := flag.Int("pops", 25, "PoPs the greedy deployment may place")
	flag.Parse()

	in, err := topogen.Generate(topogen.Internet2020(0.0285))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %6s %8s %8s %8s\n", "deployment", "PoPs", "500km", "700km", "1000km")
	show := func(label string, pops []geo.CityID) {
		fmt.Printf("%-28s %6d", label, len(pops))
		for _, r := range geo.PaperRadiiKm {
			fmt.Printf(" %7.1f%%", geo.CoveragePct(pops, r))
		}
		fmt.Println()
	}

	// Greedy max-coverage placement.
	var greedy []geo.CityID
	chosen := map[geo.CityID]bool{}
	for len(greedy) < *budget {
		bestGain, bestCity := -1.0, geo.CityID(-1)
		base := geo.CoveragePct(greedy, 500)
		for i := range geo.Cities() {
			id := geo.CityID(i)
			if chosen[id] {
				continue
			}
			gain := geo.CoveragePct(append(greedy, id), 500) - base
			if gain > bestGain {
				bestGain, bestCity = gain, id
			}
		}
		if bestCity < 0 {
			break
		}
		chosen[bestCity] = true
		greedy = append(greedy, bestCity)
	}
	show(fmt.Sprintf("greedy optimal (%d cities)", *budget), greedy)

	for _, name := range []string{"Google", "Microsoft", "Amazon"} {
		show(name, in.PoPsOf(in.Clouds[name]))
	}
	show("Sprint", in.PoPsOf(1239))
	show("HE", in.PoPsOf(6939))

	fmt.Println("\nfirst greedy picks:")
	cities := geo.Cities()
	for i, id := range greedy {
		if i == 8 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %d. %s (%s, %.1fM metro)\n", i+1, cities[id].Name, cities[id].Continent, cities[id].PopM)
	}
}
