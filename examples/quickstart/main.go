// Quickstart: generate a synthetic Internet, compute the paper's
// hierarchy-free reachability metric for the four cloud providers, and
// print where they rank among all ASes — the headline result of the paper
// in ~60 lines.
package main

import (
	"fmt"
	"log"
	"sort"

	"flatnet/internal/core"
	"flatnet/internal/topogen"
)

func main() {
	// A September-2020-calibrated Internet at 20% of the library's
	// reference size (~2,000 ASes) — plenty for a quick look.
	in, err := topogen.Generate(topogen.Internet2020(0.0285))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated Internet: %d ASes, %d links\n", in.Graph.NumASes(), in.Graph.NumLinks())

	metrics := core.New(core.Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2})
	total := float64(in.Graph.NumASes() - 1)

	fmt.Println("\nreachability while bypassing the origin's transit providers,")
	fmt.Println("the Tier-1 clique, and the Tier-2 ISPs (hierarchy-free, §6.4):")
	for _, cloud := range []string{"Google", "Microsoft", "IBM", "Amazon"} {
		asn := in.Clouds[cloud]
		n, err := metrics.Reachability(asn, core.HierarchyFree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s AS%-6d  %5d ASes (%.1f%%)\n", cloud, asn, n, 100*float64(n)/total)
	}

	// Rank every AS by the metric to see how special the clouds are.
	all, err := metrics.ReachabilityAll(core.HierarchyFree)
	if err != nil {
		log.Fatal(err)
	}
	sorted := append([]int(nil), all...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	for _, cloud := range []string{"Google", "Amazon"} {
		i, _ := in.Graph.Index(in.Clouds[cloud])
		rank := sort.SearchInts(negate(sorted), -all[i]) + 1
		fmt.Printf("\n%s ranks #%d of %d ASes by hierarchy-free reachability", cloud, rank, len(all))
	}
	fmt.Println()
}

func negate(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = -x
	}
	return out
}
