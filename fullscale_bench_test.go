package flatnet_bench

import (
	"sync"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/experiments"
)

// Full-scale variants of the headline benchmarks, pinned at the paper's
// true scale (scale 1.0 = 69,488 ASes in 2020, 51,801 in 2015) regardless
// of FLATNET_BENCH_SCALE. The scaled-down suite in bench_test.go tracks
// day-to-day regressions cheaply; these are the numbers that matter for the
// reproduction itself, and their ns/AS metric should stay in line with the
// scaled-down runs — a divergence means some stage stopped scaling
// linearly in topology size.

var (
	fullEnvOnce sync.Once
	fullEnv     *experiments.Env
	fullEnvErr  error
)

// fullScaleEnv generates the scale-1.0 environment once per test process
// (tens of seconds on one core) and shares it across every FullScale
// benchmark and BenchmarkSnapshotLoad. No prewarm: these benchmarks only
// exercise the topology/propagation path, not plans or trace corpora.
func fullScaleEnv(b *testing.B) *experiments.Env {
	b.Helper()
	fullEnvOnce.Do(func() {
		fullEnv, fullEnvErr = experiments.NewEnv(1.0)
	})
	if fullEnvErr != nil {
		b.Fatal(fullEnvErr)
	}
	return fullEnv
}

func BenchmarkTable1TopReachabilityFullScale(b *testing.B) {
	e := fullScaleEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(e, 20); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

func BenchmarkFig3ReachVsConeFullScale(b *testing.B) {
	e := fullScaleEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(e); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

func BenchmarkFig7LeakCDFsFullScale(b *testing.B) {
	e := fullScaleEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(e); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}

func BenchmarkReachabilityAllFullScale(b *testing.B) {
	e := fullScaleEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.M2020.ReachabilityAll(core.HierarchyFree); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerAS(b, e.In2020.Graph.NumASes())
}
