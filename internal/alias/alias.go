// Package alias implements MIDAR-style IP alias resolution (§4.2 of the
// paper uses MIDAR to group router interfaces before learning hostname
// conventions with sc_hoiho).
//
// The technique: most routers generate IP-ID values from a single shared
// counter across all their interfaces. Probing two addresses in an
// interleaved schedule and checking that the observed IP-ID samples form
// one monotonic sequence (the Monotonic Bounds Test) indicates the
// addresses share a counter — i.e. they are aliases. Addresses on
// different routers produce interleaved samples from unrelated counters,
// which violate monotonicity with overwhelming probability.
//
// The package provides both the prober-side inference (MBT + transitive
// closure) and a simulated probe target set for testing and for driving
// the rdns pipeline without real hardware.
package alias

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
)

// Prober answers IP-ID probes. Implementations must be safe for the
// sequential probe schedules Resolve issues.
type Prober interface {
	// ProbeIPID returns the IP-ID of a reply elicited from addr, and
	// false if the address does not respond.
	ProbeIPID(addr netip.Addr) (uint16, bool)
}

// Options tune the resolution.
type Options struct {
	// Samples is the number of interleaved probes per pair (default 12).
	Samples int
	// MaxGap is the largest plausible counter advance between two
	// consecutive samples of the same router (default 2000); larger
	// jumps fail the monotonic bounds test even across uint16 wraps.
	MaxGap uint16
}

func (o *Options) defaults() {
	if o.Samples == 0 {
		o.Samples = 12
	}
	if o.MaxGap == 0 {
		o.MaxGap = 2000
	}
}

// Resolve groups the given addresses into alias sets using interleaved
// IP-ID probing. Unresponsive addresses are returned as singletons in the
// second return value. The cost is O(n²) pairs in the worst case, pruned
// by transitive closure (MIDAR's elimination stage).
func Resolve(p Prober, addrs []netip.Addr, opts Options) (groups [][]netip.Addr, unresponsive []netip.Addr) {
	opts.defaults()
	var live []netip.Addr
	for _, a := range addrs {
		if _, ok := p.ProbeIPID(a); ok {
			live = append(live, a)
		} else {
			unresponsive = append(unresponsive, a)
		}
	}
	// Union-find over live addresses.
	parent := make([]int, len(live))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if find(i) == find(j) {
				continue // already known aliases transitively
			}
			if monotonicBoundsTest(p, live[i], live[j], opts) {
				union(i, j)
			}
		}
	}
	byRoot := map[int][]netip.Addr{}
	for i, a := range live {
		r := find(i)
		byRoot[r] = append(byRoot[r], a)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		groups = append(groups, byRoot[r])
	}
	return groups, unresponsive
}

// monotonicBoundsTest interleaves probes to a and b and checks the merged
// sample sequence advances monotonically (mod 2^16) with bounded gaps.
// Alternation alone is fooled by two independent counters that happen to
// run in near-lockstep, so the test finishes with two burst rounds: a run
// of probes to one address must be reflected in the other's next sample —
// only a genuinely shared counter does that.
func monotonicBoundsTest(p Prober, a, b netip.Addr, opts Options) bool {
	prev, ok := p.ProbeIPID(a)
	if !ok {
		return false
	}
	cur := b
	other := a
	for i := 0; i < opts.Samples; i++ {
		id, ok := p.ProbeIPID(cur)
		if !ok {
			return false
		}
		delta := id - prev // uint16 arithmetic handles wrap
		if delta == 0 || delta > opts.MaxGap {
			return false
		}
		prev = id
		cur, other = other, cur
	}
	burst := func(spike, probe netip.Addr) bool {
		for i := 0; i < opts.Samples; i++ {
			id, ok := p.ProbeIPID(spike)
			if !ok {
				return false
			}
			delta := id - prev
			if delta == 0 || delta > opts.MaxGap {
				return false
			}
			prev = id
		}
		id, ok := p.ProbeIPID(probe)
		if !ok {
			return false
		}
		delta := id - prev
		if delta == 0 || delta > opts.MaxGap {
			return false
		}
		prev = id
		return true
	}
	return burst(a, b) && burst(b, a)
}

// SimTarget is a simulated probe target set: routers with shared IP-ID
// counters, per-interface responsiveness, and random per-probe counter
// advance (background traffic).
type SimTarget struct {
	rng      *rand.Rand
	counters []uint16
	// owner maps each address to its router index; -1 = unresponsive.
	owner map[netip.Addr]int
	// MaxAdvance bounds the random counter advance per probe.
	MaxAdvance int
}

// NewSimTarget builds a target set from router alias groups. Every address
// in groups[i] shares router i's counter. Addresses listed in dead do not
// respond.
func NewSimTarget(seed int64, groups [][]netip.Addr, dead []netip.Addr) (*SimTarget, error) {
	t := &SimTarget{
		rng:        rand.New(rand.NewSource(seed)),
		counters:   make([]uint16, len(groups)),
		owner:      make(map[netip.Addr]int),
		MaxAdvance: 40,
	}
	for i := range t.counters {
		t.counters[i] = uint16(t.rng.Intn(1 << 16))
	}
	for i, g := range groups {
		for _, a := range g {
			if _, dup := t.owner[a]; dup {
				return nil, fmt.Errorf("alias: address %v in multiple groups", a)
			}
			t.owner[a] = i
		}
	}
	for _, a := range dead {
		if _, dup := t.owner[a]; dup {
			return nil, fmt.Errorf("alias: dead address %v also in a group", a)
		}
		t.owner[a] = -1
	}
	return t, nil
}

// ProbeIPID implements Prober.
func (t *SimTarget) ProbeIPID(addr netip.Addr) (uint16, bool) {
	r, ok := t.owner[addr]
	if !ok || r < 0 {
		return 0, false
	}
	// The shared counter advances with background traffic plus our probe.
	t.counters[r] += uint16(1 + t.rng.Intn(t.MaxAdvance))
	return t.counters[r], true
}
