package alias

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"testing/quick"
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
}

func groupsEqual(got [][]netip.Addr, want [][]netip.Addr) bool {
	norm := func(gs [][]netip.Addr) []string {
		var out []string
		for _, g := range gs {
			ss := make([]string, len(g))
			for i, a := range g {
				ss[i] = a.String()
			}
			sort.Strings(ss)
			out = append(out, fmt.Sprint(ss))
		}
		sort.Strings(out)
		return out
	}
	a, b := norm(got), norm(want)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestResolveRecoversGroups(t *testing.T) {
	truth := [][]netip.Addr{
		{addr(1), addr(2), addr(3)},
		{addr(10), addr(11)},
		{addr(20)},
	}
	dead := []netip.Addr{addr(30)}
	target, err := NewSimTarget(7, truth, dead)
	if err != nil {
		t.Fatal(err)
	}
	var all []netip.Addr
	for _, g := range truth {
		all = append(all, g...)
	}
	all = append(all, dead...)
	groups, unresp := Resolve(target, all, Options{})
	if !groupsEqual(groups, truth) {
		t.Errorf("groups = %v, want %v", groups, truth)
	}
	if len(unresp) != 1 || unresp[0] != addr(30) {
		t.Errorf("unresponsive = %v", unresp)
	}
}

func TestResolveNoFalseMerges(t *testing.T) {
	// Many singleton routers: no pair should merge.
	var truth [][]netip.Addr
	var all []netip.Addr
	for i := 0; i < 12; i++ {
		truth = append(truth, []netip.Addr{addr(100 + i)})
		all = append(all, addr(100+i))
	}
	target, err := NewSimTarget(3, truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups, _ := Resolve(target, all, Options{})
	if len(groups) != 12 {
		t.Errorf("got %d groups, want 12 singletons: %v", len(groups), groups)
	}
}

func TestNewSimTargetValidation(t *testing.T) {
	a := addr(1)
	if _, err := NewSimTarget(1, [][]netip.Addr{{a}, {a}}, nil); err == nil {
		t.Error("duplicate address across groups accepted")
	}
	if _, err := NewSimTarget(1, [][]netip.Addr{{a}}, []netip.Addr{a}); err == nil {
		t.Error("dead address overlapping a group accepted")
	}
}

// Property: for random partitions of up to 16 addresses into routers,
// Resolve recovers exactly the partition.
func TestResolveRecoversRandomPartitions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		nRouters := 1 + rng.Intn(5)
		truth := make([][]netip.Addr, nRouters)
		var all []netip.Addr
		for i := 0; i < n; i++ {
			r := rng.Intn(nRouters)
			truth[r] = append(truth[r], addr(i))
			all = append(all, addr(i))
		}
		var nonEmpty [][]netip.Addr
		for _, g := range truth {
			if len(g) > 0 {
				nonEmpty = append(nonEmpty, g)
			}
		}
		target, err := NewSimTarget(seed, nonEmpty, nil)
		if err != nil {
			return false
		}
		groups, unresp := Resolve(target, all, Options{})
		return len(unresp) == 0 && groupsEqual(groups, nonEmpty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The MBT must survive uint16 counter wraparound.
func TestMonotonicBoundsTestWrap(t *testing.T) {
	truth := [][]netip.Addr{{addr(1), addr(2)}}
	target, err := NewSimTarget(11, truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	target.counters[0] = 0xFFF0 // about to wrap
	groups, _ := Resolve(target, []netip.Addr{addr(1), addr(2)}, Options{})
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Errorf("wraparound broke alias detection: %v", groups)
	}
}
