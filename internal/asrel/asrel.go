// Package asrel infers AS business relationships from observed BGP paths,
// in the spirit of Gao's classic algorithm (the lineage behind AS-Rank and
// ProbLink, which produce the dataset the paper consumes).
//
// The inference uses the valley-free structure: on any path, ASes climb
// toward a "top provider" and then descend, so the highest-degree AS on a
// path splits it into an uphill (c2p) segment and a downhill (p2c) segment.
// Accumulated transit votes classify each link; links with balanced or no
// transit evidence between similar-degree ASes become peers.
package asrel

import (
	"sort"

	"flatnet/internal/astopo"
)

// Inferred is the output relationship set keyed by canonical AS pair
// (smaller ASN first). The relationship is expressed from the first AS's
// perspective: P2C means pair[0] is the provider.
type Inferred map[[2]astopo.ASN]astopo.Rel

// Options tune the inference.
type Options struct {
	// PeerDegreeRatio bounds how dissimilar two ASes' degrees may be for
	// a peer inference (Gao's R parameter). Default 8.
	PeerDegreeRatio float64
	// TransitThreshold is the minimum one-way vote margin to call a link
	// p2c when votes exist in both directions (Gao's L parameter).
	// Default 2.
	TransitThreshold int
	// PeakPeerRatio bounds the degree ratio under which a peak-adjacent
	// edge is treated as a peering candidate. Default 4.
	PeakPeerRatio float64
}

func (o *Options) defaults() {
	if o.PeerDegreeRatio == 0 {
		o.PeerDegreeRatio = 8
	}
	if o.TransitThreshold == 0 {
		o.TransitThreshold = 3
	}
	if o.PeakPeerRatio == 0 {
		o.PeakPeerRatio = 10
	}
}

func canonKey(a, b astopo.ASN) [2]astopo.ASN {
	if a < b {
		return [2]astopo.ASN{a, b}
	}
	return [2]astopo.ASN{b, a}
}

// Infer classifies every link appearing on the given AS paths (each path
// collector-side first, origin last).
func Infer(paths [][]astopo.ASN, opts Options) Inferred {
	opts.defaults()

	// Pass 1: degrees from path adjacencies.
	neigh := make(map[astopo.ASN]map[astopo.ASN]bool)
	addAdj := func(a, b astopo.ASN) {
		if neigh[a] == nil {
			neigh[a] = make(map[astopo.ASN]bool)
		}
		neigh[a][b] = true
	}
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			addAdj(p[i-1], p[i])
			addAdj(p[i], p[i-1])
		}
	}
	degree := func(a astopo.ASN) int { return len(neigh[a]) }

	// Pass 2: transit votes, with Gao's phase-3 refinement folded in: a
	// peak-adjacent edge between ASes of similar degree is a *peering
	// candidate* rather than transit evidence, because a valley-free
	// path's single p2p link sits exactly at its peak and connects
	// networks of comparable size. votes[x][y] counts evidence that y
	// transits for x.
	votes := make(map[[2]astopo.ASN]int)
	peerCand := make(map[[2]astopo.ASN]int)
	vote := func(customer, provider astopo.ASN) {
		votes[[2]astopo.ASN{customer, provider}]++
	}
	similar := func(a, b astopo.ASN) bool {
		da, db := float64(degree(a)), float64(degree(b))
		if da == 0 || db == 0 {
			return false
		}
		r := da / db
		if r < 1 {
			r = 1 / r
		}
		return r <= opts.PeakPeerRatio
	}
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		top := 0
		for i := 1; i < len(p); i++ {
			if degree(p[i]) > degree(p[top]) {
				top = i
			}
		}
		for i := 1; i < len(p); i++ {
			peakAdjacent := i == top || i == top+1
			if peakAdjacent && similar(p[i-1], p[i]) {
				peerCand[canonKey(p[i-1], p[i])]++
				continue
			}
			if i <= top {
				vote(p[i-1], p[i]) // climbing: p[i] provides for p[i-1]
			} else {
				vote(p[i], p[i-1]) // descending: p[i-1] provides for p[i]
			}
		}
	}

	// Pass 3: classify each observed adjacency. Transit votes dominate;
	// edges seen only as similar-degree peaks become peers.
	out := make(Inferred)
	for a, ns := range neigh {
		for b := range ns {
			if a >= b {
				continue
			}
			key := [2]astopo.ASN{a, b}
			aProvides := votes[[2]astopo.ASN{b, a}] // votes that a transits for b
			bProvides := votes[[2]astopo.ASN{a, b}]
			peers := peerCand[key]
			switch {
			case peers > 0 && peers >= (aProvides+bProvides)*opts.TransitThreshold:
				out[key] = astopo.P2P
			case aProvides > 0 && bProvides == 0:
				out[key] = astopo.P2C
			case bProvides > 0 && aProvides == 0:
				out[key] = astopo.C2P // pair[0] is the customer
			case aProvides == 0 && bProvides == 0:
				out[key] = astopo.P2P
			case aProvides >= bProvides*opts.TransitThreshold:
				out[key] = astopo.P2C
			case bProvides >= aProvides*opts.TransitThreshold:
				out[key] = astopo.C2P
			default:
				out[key] = astopo.P2P
			}
		}
	}

	// Pass 4: peer sanity — a "peer" between wildly unequal degrees with
	// any transit evidence becomes p2c toward the bigger AS.
	for key, rel := range out {
		if rel != astopo.P2P {
			continue
		}
		da, db := float64(degree(key[0])), float64(degree(key[1]))
		if da == 0 || db == 0 {
			continue
		}
		ratio := da / db
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > opts.PeerDegreeRatio {
			if da > db {
				out[key] = astopo.P2C
			} else {
				out[key] = astopo.C2P
			}
		}
	}
	return out
}

// BuildGraph converts the inferred relationships into a topology graph.
func (inf Inferred) BuildGraph() (*astopo.Graph, error) {
	g := astopo.NewGraph(0, len(inf))
	keys := make([][2]astopo.ASN, 0, len(inf))
	for k := range inf {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		var err error
		switch inf[k] {
		case astopo.P2P:
			err = g.AddLink(k[0], k[1], astopo.P2P)
		case astopo.P2C:
			err = g.AddLink(k[0], k[1], astopo.P2C)
		case astopo.C2P:
			err = g.AddLink(k[1], k[0], astopo.P2C)
		}
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Score compares inferred relationships against ground truth for the links
// both know about.
type Score struct {
	Total, Correct int
	// P2CAccuracy and P2PAccuracy break accuracy down per true class.
	P2CCorrect, P2CTotal int
	P2PCorrect, P2PTotal int
}

// Accuracy returns Correct/Total (0 when empty).
func (s Score) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Total)
}

// Evaluate scores the inference against the true graph.
func Evaluate(inf Inferred, truth *astopo.Graph) Score {
	var s Score
	for key, rel := range inf {
		trueRel, ok := truth.HasLink(key[0], key[1])
		if !ok {
			continue
		}
		s.Total++
		correct := rel == trueRel
		if trueRel == astopo.P2P {
			s.P2PTotal++
			if correct {
				s.P2PCorrect++
			}
		} else {
			s.P2CTotal++
			if correct {
				s.P2CCorrect++
			}
		}
		if correct {
			s.Correct++
		}
	}
	return s
}
