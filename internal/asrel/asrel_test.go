package asrel

import (
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpfeed"
	"flatnet/internal/topogen"
)

func TestInferSimpleHierarchy(t *testing.T) {
	// Paths over a tiny hierarchy: 1 is the top provider (highest
	// degree), 11 and 12 its customers, 101 a customer of 11.
	paths := [][]astopo.ASN{
		{101, 11, 1, 12},
		{101, 11, 1, 13},
		{102, 11, 1, 12},
		{11, 1, 13},
		{12, 1, 11, 101},
		{14, 1, 15}, // pad AS 1's degree so it is unambiguously the top
		{14, 1, 16},
	}
	// A tight PeakPeerRatio keeps the unit test focused on the vote
	// mechanics (the small graph's degrees are all "similar").
	inf := Infer(paths, Options{PeakPeerRatio: 1.2})
	cases := []struct {
		a, b astopo.ASN
		want astopo.Rel // from the canonical (smaller-first) perspective
	}{
		{1, 11, astopo.P2C},
		{1, 12, astopo.P2C},
		{1, 13, astopo.P2C},
		{11, 101, astopo.P2C},
	}
	for _, c := range cases {
		key := [2]astopo.ASN{c.a, c.b}
		if got := inf[key]; got != c.want {
			t.Errorf("rel(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestInferPeersAtTop(t *testing.T) {
	// Two top providers exchanging customer routes: 1-2 should be p2p.
	// Degrees: both tops see multiple neighbors.
	paths := [][]astopo.ASN{
		{11, 1, 2, 21},
		{12, 1, 2, 22},
		{21, 2, 1, 11},
		{22, 2, 1, 12},
	}
	inf := Infer(paths, Options{})
	if got := inf[[2]astopo.ASN{1, 2}]; got != astopo.P2P {
		t.Errorf("rel(1,2) = %v, want p2p", got)
	}
}

func TestBuildGraphRoundTrip(t *testing.T) {
	inf := Inferred{
		{1, 2}: astopo.P2P,
		{1, 3}: astopo.P2C,
		{2, 4}: astopo.C2P, // 4 provides for 2
	}
	g, err := inf.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	if rel, _ := g.HasLink(1, 2); rel != astopo.P2P {
		t.Error("p2p lost")
	}
	if rel, _ := g.HasLink(1, 3); rel != astopo.P2C {
		t.Error("p2c lost")
	}
	if rel, _ := g.HasLink(4, 2); rel != astopo.P2C {
		t.Error("c2p orientation lost")
	}
}

// End to end: infer relationships from simulated collector paths over a
// generated Internet, and compare against ground truth. Gao-style
// inference is strong on c2p links but — as the ProbLink paper that
// motivated the dataset the IMC paper consumes documents — weak on p2p
// links, which are mostly visible only at path peaks. The bounds below
// encode that asymmetry; the reproduction's main pipeline consumes the
// feed view with CAIDA-style labels, not this inference.
func TestInferOnGeneratedInternet(t *testing.T) {
	in, err := topogen.Generate(topogen.Internet2020(0.0171))
	if err != nil {
		t.Fatal(err)
	}
	var cands []astopo.ASN
	for i, a := range in.Graph.ASes() {
		if c := in.ClassAt(i); c == topogen.ClassTransit || c == topogen.ClassTier2 {
			cands = append(cands, a)
		}
	}
	view, err := bgpfeed.Collect(in.Graph, bgpfeed.SampleVPs(cands, 25, 3))
	if err != nil {
		t.Fatal(err)
	}
	inf := Infer(view.Paths, Options{})
	score := Evaluate(inf, in.Graph)
	t.Logf("links=%d overall=%.3f p2c=%.3f (%d) p2p=%.3f (%d)",
		score.Total, score.Accuracy(),
		float64(score.P2CCorrect)/float64(max(score.P2CTotal, 1)), score.P2CTotal,
		float64(score.P2PCorrect)/float64(max(score.P2PTotal, 1)), score.P2PTotal)
	if score.Total < 1000 {
		t.Fatalf("scored only %d links", score.Total)
	}
	if score.Accuracy() < 0.65 {
		t.Errorf("overall accuracy %.3f, want >= 0.65", score.Accuracy())
	}
	if p2c := float64(score.P2CCorrect) / float64(score.P2CTotal); p2c < 0.9 {
		t.Errorf("p2c accuracy %.3f, want >= 0.9", p2c)
	}
	if p2p := float64(score.P2PCorrect) / float64(score.P2PTotal); p2p < 0.3 {
		t.Errorf("p2p accuracy %.3f, want >= 0.3", p2p)
	}
}
