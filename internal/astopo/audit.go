package astopo

import (
	"fmt"
	"sort"
)

// Audit checks a topology for the structural problems that corrupt
// reachability analysis on real-world relationship files: provider cycles
// (A transits for B transits for ... transits for A), disconnected
// components, and an inconsistent clique. The paper's pipeline depends on
// these properties holding (footnote 3 describes CAIDA's Cloudflare/IBM
// misclassification breaking exactly this kind of assumption).

// Issue is one audit finding.
type Issue struct {
	// Kind is a stable identifier: "p2c-cycle", "island", "clique-gap".
	Kind string
	// Detail is a human-readable description.
	Detail string
	// ASes lists the implicated networks.
	ASes []ASN
}

func (i Issue) String() string { return fmt.Sprintf("%s: %s", i.Kind, i.Detail) }

// Audit inspects the graph and returns its findings (empty for a clean
// topology).
func Audit(g *Graph) []Issue {
	g.Freeze()
	var issues []Issue
	issues = append(issues, auditP2CCycles(g)...)
	issues = append(issues, auditIslands(g)...)
	issues = append(issues, auditClique(g)...)
	return issues
}

// auditP2CCycles finds strongly connected components of size > 1 in the
// provider→customer digraph (a customer chain that loops back is
// economically impossible and breaks cone computations).
func auditP2CCycles(g *Graph) []Issue {
	n := g.NumASes()
	// Iterative Tarjan SCC over customer edges.
	const undef = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = undef
	}
	var stack []int32
	var issues []Issue
	var counter int32

	type frame struct {
		v    int32
		edge int
	}
	for start := 0; start < n; start++ {
		if index[start] != undef {
			continue
		}
		callStack := []frame{{v: int32(start)}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			customers := g.CustomersOf(int(v))
			advanced := false
			for f.edge < len(customers) {
				w := customers[f.edge]
				f.edge++
				if index[w] == undef {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Done with v: pop and propagate lowlink.
			if low[v] == index[v] {
				var comp []ASN
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, g.ASNAt(int(w)))
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
					issues = append(issues, Issue{
						Kind:   "p2c-cycle",
						Detail: fmt.Sprintf("%d ASes form a provider cycle", len(comp)),
						ASes:   comp,
					})
				}
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return issues
}

// auditIslands reports connected components (over all links, undirected)
// beyond the largest one.
func auditIslands(g *Graph) []Issue {
	n := g.NumASes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	var queue []int32
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := int32(len(sizes))
		comp[start] = id
		queue = append(queue[:0], int32(start))
		size := 0
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			visit := func(ws []int32) {
				for _, w := range ws {
					if comp[w] == -1 {
						comp[w] = id
						queue = append(queue, w)
					}
				}
			}
			visit(g.ProvidersOf(int(v)))
			visit(g.CustomersOf(int(v)))
			visit(g.PeersOf(int(v)))
		}
		sizes = append(sizes, size)
	}
	if len(sizes) <= 1 {
		return nil
	}
	largest := 0
	for i, s := range sizes {
		if s > sizes[largest] {
			largest = i
		}
	}
	var issues []Issue
	for id, s := range sizes {
		if id == largest {
			continue
		}
		var members []ASN
		for i := 0; i < n && len(members) < 8; i++ {
			if comp[i] == int32(id) {
				members = append(members, g.ASNAt(i))
			}
		}
		issues = append(issues, Issue{
			Kind:   "island",
			Detail: fmt.Sprintf("component of %d ASes disconnected from the main graph", s),
			ASes:   members,
		})
	}
	return issues
}

// auditClique verifies that the detected provider-free clique members all
// peer with each other; gaps break the global-reachability assumption the
// hierarchy rests on (§2.1).
func auditClique(g *Graph) []Issue {
	var providerFree []ASN
	for i, a := range g.ASes() {
		if len(g.ProvidersOf(i)) == 0 && len(g.CustomersOf(i)) > 0 {
			providerFree = append(providerFree, a)
		}
	}
	clique := NewASSet(g.Clique()...)
	var issues []Issue
	for _, a := range providerFree {
		if clique.Has(a) {
			continue
		}
		issues = append(issues, Issue{
			Kind: "clique-gap",
			Detail: fmt.Sprintf("AS%d has no providers but does not peer with the full clique "+
				"(PCCW/Liberty-Global-style provider-free non-Tier-1, or a data error)", a),
			ASes: []ASN{a},
		})
	}
	return issues
}
