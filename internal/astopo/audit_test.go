package astopo

import (
	"strings"
	"testing"
)

func kindsOf(issues []Issue) map[string]int {
	out := map[string]int{}
	for _, i := range issues {
		out[i.Kind]++
	}
	return out
}

func TestAuditCleanGraph(t *testing.T) {
	g := buildTestGraph(t)
	issues := Audit(g)
	kinds := kindsOf(issues)
	if kinds["p2c-cycle"] != 0 {
		t.Errorf("clean graph reported cycles: %v", issues)
	}
	// The test graph has the E1-E2 pair attached under S1, so it is one
	// component — no islands.
	if kinds["island"] != 0 {
		t.Errorf("clean graph reported islands: %v", issues)
	}
}

func TestAuditP2CCycle(t *testing.T) {
	g := NewGraph(0, 0)
	g.MustAddLink(1, 2, P2C)
	g.MustAddLink(2, 3, P2C)
	g.MustAddLink(3, 1, P2C) // cycle 1 -> 2 -> 3 -> 1
	g.MustAddLink(1, 10, P2C)
	issues := Audit(g)
	found := false
	for _, i := range issues {
		if i.Kind == "p2c-cycle" {
			found = true
			if len(i.ASes) != 3 {
				t.Errorf("cycle lists %d ASes, want 3", len(i.ASes))
			}
			if !strings.Contains(i.Detail, "3 ASes") {
				t.Errorf("detail %q", i.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("provider cycle not detected: %v", issues)
	}
}

func TestAuditIslands(t *testing.T) {
	g := buildTestGraph(t)
	g.MustAddLink(900, 901, P2P) // disconnected pair
	issues := Audit(g)
	found := false
	for _, i := range issues {
		if i.Kind == "island" {
			found = true
			if len(i.ASes) != 2 {
				t.Errorf("island members %v", i.ASes)
			}
		}
	}
	if !found {
		t.Fatalf("island not detected: %v", issues)
	}
}

func TestAuditCliqueGap(t *testing.T) {
	g := NewGraph(0, 0)
	// Clique 1-2; AS 3 is provider-free with customers but only peers
	// with 1 (a PCCW-style network).
	g.MustAddLink(1, 2, P2P)
	g.MustAddLink(1, 10, P2C)
	g.MustAddLink(2, 11, P2C)
	g.MustAddLink(2, 12, P2C)
	g.MustAddLink(1, 12, P2C)
	g.MustAddLink(3, 13, P2C)
	g.MustAddLink(1, 3, P2P)
	issues := Audit(g)
	found := false
	for _, i := range issues {
		if i.Kind == "clique-gap" && len(i.ASes) == 1 && i.ASes[0] == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("clique gap not detected: %v", issues)
	}
}

func TestAuditGeneratedTopologyIsClean(t *testing.T) {
	// The audit must pass on our own generator output (modulo the three
	// intentionally provider-free Tier-2s, which are clique members by
	// construction since they peer with all Tier-1s).
	g := buildTestGraph(t)
	for _, i := range Audit(g) {
		t.Errorf("unexpected issue: %v", i)
	}
}
