package astopo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements readers and writers for the CAIDA AS-relationship
// dataset formats used by the paper:
//
// serial-1 (e.g. 20150901.as-rel.txt):
//	# comment lines
//	<provider-as>|<customer-as>|-1
//	<peer-as>|<peer-as>|0
//
// serial-2 (e.g. 20200901.as-rel2.txt) adds a source column:
//	<as0>|<as1>|<relationship>|<source>
//
// where source is typically "bgp" or "mlp" (multilateral peering). The
// reader accepts both; the source column, when present, is preserved.

// SourcedLink is a link together with its serial-2 source annotation.
type SourcedLink struct {
	Link
	Source string
}

// ReadRelationships parses a CAIDA serial-1 or serial-2 AS-relationship
// stream into a Graph. Lines beginning with '#' are comments. Malformed
// lines produce an error naming the line number.
func ReadRelationships(r io.Reader) (*Graph, error) {
	g := NewGraph(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		link, _, err := parseRelLine(line)
		if err != nil {
			return nil, fmt.Errorf("astopo: line %d: %w", lineno, err)
		}
		if err := g.AddLink(link.A, link.B, link.Rel); err != nil {
			return nil, fmt.Errorf("astopo: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: reading relationships: %w", err)
	}
	return g, nil
}

// ReadSourcedRelationships parses a serial-2 stream keeping the per-link
// source column ("bgp", "mlp", ...). Serial-1 lines get an empty source.
func ReadSourcedRelationships(r io.Reader) ([]SourcedLink, error) {
	var out []SourcedLink
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		link, src, err := parseRelLine(line)
		if err != nil {
			return nil, fmt.Errorf("astopo: line %d: %w", lineno, err)
		}
		out = append(out, SourcedLink{Link: link, Source: src})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: reading relationships: %w", err)
	}
	return out, nil
}

func parseRelLine(line string) (Link, string, error) {
	fields := strings.Split(line, "|")
	if len(fields) != 3 && len(fields) != 4 {
		return Link{}, "", fmt.Errorf("expected 3 or 4 |-separated fields, got %d", len(fields))
	}
	a, err := parseASN(fields[0])
	if err != nil {
		return Link{}, "", err
	}
	b, err := parseASN(fields[1])
	if err != nil {
		return Link{}, "", err
	}
	relv, err := strconv.Atoi(strings.TrimSpace(fields[2]))
	if err != nil {
		return Link{}, "", fmt.Errorf("bad relationship %q: %v", fields[2], err)
	}
	var rel Rel
	switch relv {
	case -1:
		rel = P2C
	case 0:
		rel = P2P
	default:
		return Link{}, "", fmt.Errorf("unknown relationship code %d", relv)
	}
	src := ""
	if len(fields) == 4 {
		src = strings.TrimSpace(fields[3])
	}
	return Link{A: a, B: b, Rel: rel}, src, nil
}

func parseASN(s string) (ASN, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad ASN %q: %v", s, err)
	}
	return ASN(v), nil
}

// WriteRelationships writes g in CAIDA serial-1 format, provider-first for
// p2c links, with a header comment. Links are written in insertion order.
func WriteRelationships(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# flatnet AS-relationship export (CAIDA serial-1 format)"); err != nil {
		return err
	}
	for _, l := range g.Links() {
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", l.A, l.B, int8(l.Rel)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSourcedRelationships writes links in CAIDA serial-2 format.
func WriteSourcedRelationships(w io.Writer, links []SourcedLink) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# flatnet AS-relationship export (CAIDA serial-2 format)"); err != nil {
		return err
	}
	for _, l := range links {
		src := l.Source
		if src == "" {
			src = "bgp"
		}
		if _, err := fmt.Fprintf(bw, "%d|%d|%d|%s\n", l.A, l.B, int8(l.Rel), src); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPPDCAses parses a CAIDA ppdc-ases customer-cone file: each line is
// "<as> <cone-member> <cone-member> ...". Returns cone membership keyed by
// AS.
func ReadPPDCAses(r io.Reader) (map[ASN][]ASN, error) {
	out := make(map[ASN][]ASN)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 1 {
			continue
		}
		owner, err := parseASN(fields[0])
		if err != nil {
			return nil, fmt.Errorf("astopo: ppdc line %d: %w", lineno, err)
		}
		cone := make([]ASN, 0, len(fields)-1)
		for _, f := range fields[1:] {
			m, err := parseASN(f)
			if err != nil {
				return nil, fmt.Errorf("astopo: ppdc line %d: %w", lineno, err)
			}
			cone = append(cone, m)
		}
		out[owner] = cone
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: reading ppdc-ases: %w", err)
	}
	return out, nil
}

// WritePPDCAses writes customer cones in CAIDA ppdc-ases format.
func WritePPDCAses(w io.Writer, cones map[ASN][]ASN) error {
	bw := bufio.NewWriter(w)
	owners := make([]ASN, 0, len(cones))
	for a := range cones {
		owners = append(owners, a)
	}
	for i := 1; i < len(owners); i++ {
		for j := i; j > 0 && owners[j] < owners[j-1]; j-- {
			owners[j], owners[j-1] = owners[j-1], owners[j]
		}
	}
	for _, owner := range owners {
		if _, err := fmt.Fprintf(bw, "%d", owner); err != nil {
			return err
		}
		for _, m := range cones[owner] {
			if _, err := fmt.Fprintf(bw, " %d", m); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
