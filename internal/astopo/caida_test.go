package astopo

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sampleSerial1 = `# source: flatnet test
# clique: 1 2
1|2|0
1|11|-1
2|12|-1
11|12|0
`

const sampleSerial2 = `# serial-2 sample
1|2|0|bgp
1|11|-1|bgp
11|12|0|mlp
`

func TestReadRelationshipsSerial1(t *testing.T) {
	g, err := ReadRelationships(strings.NewReader(sampleSerial1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 4 {
		t.Fatalf("NumLinks = %d, want 4", g.NumLinks())
	}
	if rel, ok := g.HasLink(1, 11); !ok || rel != P2C {
		t.Errorf("1->11 = %v,%v, want p2c", rel, ok)
	}
	if rel, ok := g.HasLink(11, 12); !ok || rel != P2P {
		t.Errorf("11-12 = %v,%v, want p2p", rel, ok)
	}
}

func TestReadRelationshipsSerial2(t *testing.T) {
	g, err := ReadRelationships(strings.NewReader(sampleSerial2))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 3 {
		t.Fatalf("NumLinks = %d, want 3", g.NumLinks())
	}
	links, err := ReadSourcedRelationships(strings.NewReader(sampleSerial2))
	if err != nil {
		t.Fatal(err)
	}
	if links[2].Source != "mlp" {
		t.Errorf("source = %q, want mlp", links[2].Source)
	}
}

func TestReadRelationshipsErrors(t *testing.T) {
	cases := []string{
		"1|2\n",          // too few fields
		"1|2|5\n",        // unknown relationship
		"x|2|0\n",        // bad ASN
		"1|y|0\n",        // bad ASN
		"1|2|z\n",        // bad rel
		"1|2|0\n1|2|0\n", // duplicate
		"7|7|0\n",        // self link
	}
	for _, in := range cases {
		if _, err := ReadRelationships(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestRelationshipsRoundTrip(t *testing.T) {
	g, err := ReadRelationships(strings.NewReader(sampleSerial1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRelationships(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadRelationships(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Links(), g2.Links()) {
		t.Errorf("round trip changed links:\n%v\n%v", g.Links(), g2.Links())
	}
}

// TestRelationshipsRoundTripProperty generates random graphs and checks
// that serial-1 round trips preserve every link exactly.
func TestRelationshipsRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(0, 0)
		nodes := int(n%40) + 2
		for i := 0; i < nodes*2; i++ {
			a := ASN(rng.Intn(nodes) + 1)
			b := ASN(rng.Intn(nodes) + 1)
			rel := P2P
			if rng.Intn(2) == 0 {
				rel = P2C
			}
			_ = g.AddLink(a, b, rel) // dups/self-links rejected, fine
		}
		var buf bytes.Buffer
		if err := WriteRelationships(&buf, g); err != nil {
			return false
		}
		g2, err := ReadRelationships(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Links(), g2.Links())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPPDCAsesRoundTrip(t *testing.T) {
	in := map[ASN][]ASN{
		1:   {1, 11, 12},
		11:  {11},
		500: {500, 1, 2, 3},
	}
	var buf bytes.Buffer
	if err := WritePPDCAses(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPPDCAses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: got %v want %v", out, in)
	}
}

func TestReadPPDCAsesErrors(t *testing.T) {
	if _, err := ReadPPDCAses(strings.NewReader("1 x\n")); err == nil {
		t.Error("bad cone member accepted")
	}
	if _, err := ReadPPDCAses(strings.NewReader("y 2\n")); err == nil {
		t.Error("bad owner accepted")
	}
}

func TestWriteSourcedRelationshipsDefaultsSource(t *testing.T) {
	links := []SourcedLink{{Link: Link{A: 1, B: 2, Rel: P2P}}}
	var buf bytes.Buffer
	if err := WriteSourcedRelationships(&buf, links); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1|2|0|bgp") {
		t.Errorf("output %q missing defaulted source", buf.String())
	}
}
