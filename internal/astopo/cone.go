package astopo

// CustomerCone returns the customer cone of a: the set of ASes reachable
// from a by following only provider-to-customer links, including a itself.
// This is the AS-Rank customer cone definition the paper compares
// hierarchy-free reachability against (§6.6).
func (g *Graph) CustomerCone(a ASN) []ASN {
	g.Freeze()
	start, ok := g.Index(a)
	if !ok {
		return nil
	}
	seen := make([]bool, len(g.nodes))
	seen[start] = true
	queue := []int32{int32(start)}
	var cone []ASN
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cone = append(cone, g.nodes[v])
		for _, c := range g.CustomersOf(int(v)) {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return cone
}

// ConeSizes returns the customer cone size (including the AS itself) for
// every AS, indexed by dense index. It runs one upward propagation per AS in
// reverse topological-ish order is not possible in general (the p2c graph
// may not be a DAG in broken datasets), so it performs a BFS per AS but
// reuses one visited-epoch buffer; O(V * E_c) worst case, fast in practice
// because most cones are tiny.
func (g *Graph) ConeSizes() []int {
	g.Freeze()
	n := len(g.nodes)
	sizes := make([]int, n)
	epoch := make([]int32, n)
	for i := range epoch {
		epoch[i] = -1
	}
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		queue = queue[:0]
		queue = append(queue, int32(s))
		epoch[s] = int32(s)
		count := 0
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			count++
			for _, c := range g.CustomersOf(int(v)) {
				if epoch[c] != int32(s) {
					epoch[c] = int32(s)
					queue = append(queue, c)
				}
			}
		}
		sizes[s] = count
	}
	return sizes
}

// Clique returns the set of ASes with no providers whose members all peer
// with each other, computed greedily from the given candidate list ordered
// by transit degree. This mirrors how the Tier-1 clique is identified in
// AS-Rank-style processing: start from the highest-transit-degree
// provider-free AS and keep candidates that peer with every AS already in
// the clique.
func (g *Graph) Clique() []ASN {
	g.Freeze()
	var cands []ASN
	for i, a := range g.nodes {
		if len(g.ProvidersOf(i)) == 0 && len(g.CustomersOf(i)) > 0 {
			cands = append(cands, a)
		}
	}
	// Order by transit degree, highest first.
	sortByTransitDegree(g, cands)
	var clique []ASN
	for _, c := range cands {
		ok := true
		for _, m := range clique {
			if rel, has := g.HasLink(c, m); !has || rel != P2P {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, c)
		}
	}
	return clique
}

func sortByTransitDegree(g *Graph, asns []ASN) {
	deg := make(map[ASN]int, len(asns))
	for _, a := range asns {
		deg[a] = g.TransitDegree(a)
	}
	// Insertion-stable ordering: by degree descending, ASN ascending.
	for i := 1; i < len(asns); i++ {
		for j := i; j > 0; j-- {
			a, b := asns[j-1], asns[j]
			if deg[b] > deg[a] || (deg[b] == deg[a] && b < a) {
				asns[j-1], asns[j] = b, a
			} else {
				break
			}
		}
	}
}

// ASSet is a set of ASNs with convenience constructors, used to describe
// the Tier-1 and Tier-2 exclusion sets.
type ASSet map[ASN]struct{}

// NewASSet builds a set from the listed ASNs.
func NewASSet(asns ...ASN) ASSet {
	s := make(ASSet, len(asns))
	for _, a := range asns {
		s[a] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s ASSet) Has(a ASN) bool { _, ok := s[a]; return ok }

// Add inserts a.
func (s ASSet) Add(a ASN) { s[a] = struct{}{} }

// Union returns a new set containing both operands' members.
func (s ASSet) Union(t ASSet) ASSet {
	u := make(ASSet, len(s)+len(t))
	for a := range s {
		u[a] = struct{}{}
	}
	for a := range t {
		u[a] = struct{}{}
	}
	return u
}

// Slice returns the members in ascending order.
func (s ASSet) Slice() []ASN {
	out := make([]ASN, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
