package astopo_test

import (
	"fmt"
	"log"
	"strings"

	"flatnet/internal/astopo"
)

// Example parses a CAIDA serial-1 relationship file and inspects the
// topology — the entry point for running the metrics on real data.
func Example() {
	const data = `# a tiny serial-1 dataset
1|2|0
1|11|-1
2|12|-1
11|12|0
11|101|-1
`
	g, err := astopo.ReadRelationships(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d ASes, %d links\n", g.NumASes(), g.NumLinks())
	fmt.Printf("AS11 providers: %v\n", g.Providers(11))
	fmt.Printf("AS1 customer cone: %d ASes\n", len(g.CustomerCone(1)))
	fmt.Printf("clique: %v\n", g.Clique())
	// Output:
	// 5 ASes, 5 links
	// AS11 providers: [1]
	// AS1 customer cone: 3 ASes
	// clique: [1 2]
}

// ExampleAudit shows the structural checks run before trusting a dataset.
func ExampleAudit() {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(1, 2, astopo.P2C)
	g.MustAddLink(2, 3, astopo.P2C)
	g.MustAddLink(3, 1, astopo.P2C) // impossible: a provider cycle
	for _, issue := range astopo.Audit(g) {
		fmt.Println(issue)
	}
	// Output:
	// p2c-cycle: 3 ASes form a provider cycle
}
