// Package astopo models the AS-level topology of the Internet: autonomous
// systems, the business relationships between them (peer-to-peer and
// customer-to-provider), and the derived structures the paper's analysis
// needs — customer cones, transit degrees, and the Tier-1/Tier-2 sets.
//
// The package reads and writes the CAIDA AS-relationship file formats
// (serial-1 and serial-2) so real datasets can be substituted for the
// synthetic topologies produced by package topogen.
package astopo

import (
	"fmt"
	"slices"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// Rel is the business relationship of a link, from the perspective of the
// first AS in the pair.
type Rel int8

const (
	// P2C marks a provider-to-customer link: the first AS sells transit
	// to the second. CAIDA serial-1 encodes this as -1.
	P2C Rel = -1
	// P2P marks a settlement-free peer-to-peer link. CAIDA serial-1
	// encodes this as 0.
	P2P Rel = 0
	// C2P marks a customer-to-provider view of a link. It is never stored
	// (links are stored provider-first as P2C) but is returned by queries
	// such as HasLink when the queried AS is the customer.
	C2P Rel = 1
)

func (r Rel) String() string {
	switch r {
	case P2C:
		return "p2c"
	case P2P:
		return "p2p"
	case C2P:
		return "c2p"
	}
	return fmt.Sprintf("rel(%d)", int8(r))
}

// Link is one inter-AS adjacency with its relationship. For P2C links A is
// the provider and B the customer; for P2P links the order carries no
// meaning but is preserved from the source data.
type Link struct {
	A, B ASN
	Rel  Rel
}

// Graph is an AS-level topology. The zero value is an empty graph ready to
// use. Graphs are cheap to query but are built incrementally; call Freeze
// (or any query that requires indexes) after the last mutation to build the
// adjacency indexes.
//
// The frozen adjacency state is held in flat arrays (sorted node list,
// offset-based CSR rows over one shared arena) with no pointer-shaped
// indexes, so a frozen graph can be reconstructed in O(1) from externally
// owned memory — see Frozen and FromFrozen. Memory handed to FromFrozen may
// be read-only (an mmap'd snapshot); the graph never writes to it.
type Graph struct {
	links []Link

	// Raw link columns for views built by FromFrozen; Links() materializes
	// the []Link form lazily from these on first use.
	rawA, rawB []ASN
	rawRel     []Rel

	// index state, built by Freeze (or borrowed via FromFrozen).
	frozen bool
	nodes  []ASN // sorted unique ASNs
	// CSR adjacency: row i of providers is arena[provOff[i]:provOff[i+1]],
	// likewise customers and peers. All offsets are absolute into arena.
	provOff, custOff, peerOff []int32
	arena                     []int32

	linkSet map[[2]ASN]Rel  // canonical (min,max) -> rel as stored
	linkDir map[[2]ASN]bool // canonical pair -> true if stored order was (min,max)
}

// NewGraph returns an empty graph with capacity hints for n ASes and m links.
func NewGraph(n, m int) *Graph {
	return &Graph{links: make([]Link, 0, m)}
}

// FromLinks returns a graph over a pre-validated link slice, taking
// ownership of it (the caller must not mutate it while the graph is in
// use). Construction is O(1): the duplicate-detection pair index is built
// lazily on the first mutation or HasLink query, so derived graphs that
// are only frozen and propagated over (e.g. the sensitivity sweep's
// degraded copies) never pay for it. Links must be valid and unique as if
// added through AddLink.
func FromLinks(links []Link) *Graph {
	return &Graph{links: links}
}

// Frozen is the flat-array form of a frozen graph: everything Freeze
// computes, exposed as plain slices so it can be serialized verbatim and
// reconstructed without re-deriving indexes. Offsets are absolute into
// Arena; each offset slice has len(Nodes)+1 entries.
type Frozen struct {
	Nodes                     []ASN
	ProvOff, CustOff, PeerOff []int32
	Arena                     []int32
	LinkA, LinkB              []ASN
	LinkRel                   []Rel
}

// Frozen returns the graph's frozen state. The slices are shared with the
// graph (and may be borrowed read-only memory); callers must not modify
// them.
func (g *Graph) Frozen() Frozen {
	g.Freeze()
	f := Frozen{
		Nodes:   g.nodes,
		ProvOff: g.provOff, CustOff: g.custOff, PeerOff: g.peerOff,
		Arena: g.arena,
		LinkA: g.rawA, LinkB: g.rawB, LinkRel: g.rawRel,
	}
	if f.LinkA == nil {
		m := len(g.links)
		cols := make([]ASN, 2*m)
		f.LinkA, f.LinkB = cols[:m], cols[m:]
		f.LinkRel = make([]Rel, m)
		for i, l := range g.links {
			f.LinkA[i], f.LinkB[i], f.LinkRel[i] = l.A, l.B, l.Rel
		}
	}
	return f
}

// FromFrozen reconstructs a frozen graph view over externally built arrays
// in O(1), without copying. The arrays may live in read-only memory (an
// mmap'd snapshot): the graph only writes to them if mutated, in which case
// AddLink first materializes a private []Link copy and the next Freeze
// rebuilds the indexes in fresh memory. The caller is responsible for the
// arrays being consistent (as produced by Frozen); only shape is checked.
func FromFrozen(f Frozen) (*Graph, error) {
	n, m := len(f.Nodes), len(f.LinkA)
	if len(f.ProvOff) != n+1 || len(f.CustOff) != n+1 || len(f.PeerOff) != n+1 {
		return nil, fmt.Errorf("astopo: offset rows sized %d/%d/%d, want %d",
			len(f.ProvOff), len(f.CustOff), len(f.PeerOff), n+1)
	}
	if len(f.LinkB) != m || len(f.LinkRel) != m {
		return nil, fmt.Errorf("astopo: link columns sized %d/%d/%d", m, len(f.LinkB), len(f.LinkRel))
	}
	if len(f.Arena) != 2*m {
		return nil, fmt.Errorf("astopo: arena has %d entries, want %d", len(f.Arena), 2*m)
	}
	return &Graph{
		rawA: f.LinkA, rawB: f.LinkB, rawRel: f.LinkRel,
		frozen:  true,
		nodes:   f.Nodes,
		provOff: f.ProvOff, custOff: f.CustOff, peerOff: f.PeerOff,
		arena: f.Arena,
	}, nil
}

// materializeLinks converts raw link columns into the mutable []Link form.
func (g *Graph) materializeLinks() {
	if g.links == nil && g.rawA != nil {
		ls := make([]Link, len(g.rawA))
		for i := range ls {
			ls[i] = Link{A: g.rawA[i], B: g.rawB[i], Rel: g.rawRel[i]}
		}
		g.links = ls
	}
}

// pairIndex returns the duplicate-detection maps, building them from the
// existing links on first use.
func (g *Graph) pairIndex() (map[[2]ASN]Rel, map[[2]ASN]bool) {
	if g.linkSet == nil {
		g.materializeLinks()
		g.linkSet = make(map[[2]ASN]Rel, len(g.links))
		g.linkDir = make(map[[2]ASN]bool, len(g.links))
		for _, l := range g.links {
			key := canonPair(l.A, l.B)
			g.linkSet[key] = l.Rel
			g.linkDir[key] = key[0] == l.A
		}
	}
	return g.linkSet, g.linkDir
}

// AddLink records a link. Duplicate pairs are rejected; a pair may appear
// only once regardless of direction. Self-links are rejected.
func (g *Graph) AddLink(a, b ASN, rel Rel) error {
	if a == b {
		return fmt.Errorf("astopo: self link on AS%d", a)
	}
	if rel != P2P && rel != P2C {
		return fmt.Errorf("astopo: invalid relationship %d for AS%d-AS%d", rel, a, b)
	}
	linkSet, linkDir := g.pairIndex()
	key := canonPair(a, b)
	if _, dup := linkSet[key]; dup {
		return fmt.Errorf("astopo: duplicate link AS%d-AS%d", a, b)
	}
	linkSet[key] = rel
	linkDir[key] = key[0] == a
	g.materializeLinks()
	g.links = append(g.links, Link{A: a, B: b, Rel: rel})
	g.rawA, g.rawB, g.rawRel = nil, nil, nil
	g.frozen = false
	return nil
}

// MustAddLink is AddLink for construction code where a duplicate or invalid
// link indicates a programming error.
func (g *Graph) MustAddLink(a, b ASN, rel Rel) {
	if err := g.AddLink(a, b, rel); err != nil {
		panic(err)
	}
}

// AddPeerIfAbsent adds a p2p link between a and b unless any link between
// them already exists. It reports whether a link was added. This is the
// operation used to augment a BGP-feed topology with traceroute-discovered
// cloud neighbors: per §4.1 of the paper, a pre-existing link's type is
// never modified.
func (g *Graph) AddPeerIfAbsent(a, b ASN) bool {
	if a == b {
		return false
	}
	linkSet, _ := g.pairIndex()
	if _, ok := linkSet[canonPair(a, b)]; ok {
		return false
	}
	g.MustAddLink(a, b, P2P)
	return true
}

// HasLink reports whether any link exists between a and b, and its
// relationship from a's perspective: P2C means a is b's provider, C2P means
// a is b's customer, P2P means they peer.
func (g *Graph) HasLink(a, b ASN) (Rel, bool) {
	if g.NumLinks() == 0 {
		return 0, false
	}
	linkSet, linkDir := g.pairIndex()
	key := canonPair(a, b)
	rel, ok := linkSet[key]
	if !ok {
		return 0, false
	}
	if rel == P2P {
		return P2P, true
	}
	// linkDir true means the stored (provider-first) order was
	// (key[0], key[1]), so key[0] is the provider.
	provider := key[1]
	if linkDir[key] {
		provider = key[0]
	}
	if provider == a {
		return P2C, true
	}
	return C2P, true
}

// Clone returns a deep copy of the graph. The copy is unfrozen; its pair
// index is rebuilt lazily from the copied links when first needed.
func (g *Graph) Clone() *Graph {
	ng := NewGraph(len(g.nodes), g.NumLinks())
	ng.links = append(ng.links, g.Links()...)
	return ng
}

// Links returns the graph's links. The returned slice is shared; callers
// must not modify it. For graphs built by FromFrozen the []Link form is
// materialized (copied out of the borrowed columns) on first call.
func (g *Graph) Links() []Link {
	g.materializeLinks()
	return g.links
}

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int {
	if g.links == nil && g.rawA != nil {
		return len(g.rawA)
	}
	return len(g.links)
}

// Freeze builds the adjacency indexes. It is idempotent and is called
// automatically by queries that need indexes; exposed so callers can choose
// when to pay the cost.
//
// The adjacency rows are carved out of one shared arena (CSR layout): a
// counting pass sizes every row up front, so freezing costs a handful of
// allocations regardless of the node count — per-node append growth would
// otherwise dominate workloads that rebuild derived graphs in a loop, such
// as the sensitivity sweep's degraded copies. Rows are filled in link
// order (P2P links contribute both directions at the same step), keeping
// the exact neighbor order of incremental appends, which the propagation
// code's determinism depends on.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	// Sorted-unique endpoint list via sort+compact rather than a map: no
	// pointer-shaped index survives freezing (Index is a binary search),
	// and at millions of links the sort beats map inserts handily.
	all := make([]ASN, 0, 2*len(g.links))
	for _, l := range g.links {
		all = append(all, l.A, l.B)
	}
	slices.Sort(all)
	g.nodes = slices.Compact(all)
	n := len(g.nodes)
	// One binary search per endpoint: the counting pass caches the dense
	// indexes for the fill pass.
	ends := make([]int32, 2*len(g.links))
	deg := make([]int32, 3*n)
	provDeg, custDeg, peerDeg := deg[:n], deg[n:2*n], deg[2*n:]
	for k, l := range g.links {
		ia, _ := slices.BinarySearch(g.nodes, l.A)
		ib, _ := slices.BinarySearch(g.nodes, l.B)
		ai, bi := int32(ia), int32(ib)
		ends[2*k], ends[2*k+1] = ai, bi
		switch l.Rel {
		case P2P:
			peerDeg[ai]++
			peerDeg[bi]++
		case P2C:
			custDeg[ai]++
			provDeg[bi]++
		}
	}
	// Prefix-sum the three degree groups into absolute arena offsets
	// (providers first, then customers, then peers), and fill rows in link
	// order via a moving cursor. P2P links contribute both directions at
	// the same step, keeping the exact neighbor order of incremental
	// appends, which the propagation code's determinism depends on.
	offs := make([]int32, 3*(n+1))
	g.provOff, g.custOff, g.peerOff = offs[:n+1], offs[n+1:2*(n+1)], offs[2*(n+1):]
	var off int32
	for i := 0; i < n; i++ {
		g.provOff[i] = off
		off += provDeg[i]
	}
	g.provOff[n] = off
	for i := 0; i < n; i++ {
		g.custOff[i] = off
		off += custDeg[i]
	}
	g.custOff[n] = off
	for i := 0; i < n; i++ {
		g.peerOff[i] = off
		off += peerDeg[i]
	}
	g.peerOff[n] = off
	g.arena = make([]int32, 2*len(g.links))
	cur := make([]int32, 3*n)
	provCur, custCur, peerCur := cur[:n], cur[n:2*n], cur[2*n:]
	copy(provCur, g.provOff[:n])
	copy(custCur, g.custOff[:n])
	copy(peerCur, g.peerOff[:n])
	for k, l := range g.links {
		ai, bi := ends[2*k], ends[2*k+1]
		switch l.Rel {
		case P2P:
			g.arena[peerCur[ai]] = bi
			peerCur[ai]++
			g.arena[peerCur[bi]] = ai
			peerCur[bi]++
		case P2C:
			g.arena[custCur[ai]] = bi
			custCur[ai]++
			g.arena[provCur[bi]] = ai
			provCur[bi]++
		}
	}
	g.frozen = true
}

// NumASes returns the number of ASes appearing in at least one link.
func (g *Graph) NumASes() int {
	g.Freeze()
	return len(g.nodes)
}

// ASes returns the sorted list of ASNs in the graph. The returned slice is
// shared; callers must not modify it.
func (g *Graph) ASes() []ASN {
	g.Freeze()
	return g.nodes
}

// Index returns the dense index of an ASN and whether it is present.
// Dense indexes are stable for a frozen graph and are the currency of the
// propagation code in package bgpsim. The lookup is a binary search over
// the sorted node list — no map is materialized, so graphs reconstructed
// from a snapshot pay nothing for index availability.
func (g *Graph) Index(a ASN) (int, bool) {
	g.Freeze()
	return slices.BinarySearch(g.nodes, a)
}

// ASNAt returns the ASN at a dense index.
func (g *Graph) ASNAt(i int) ASN {
	g.Freeze()
	return g.nodes[i]
}

// ProvidersOf returns the dense indexes of i's transit providers.
func (g *Graph) ProvidersOf(i int) []int32 {
	g.Freeze()
	return g.arena[g.provOff[i]:g.provOff[i+1]]
}

// CustomersOf returns the dense indexes of i's customers.
func (g *Graph) CustomersOf(i int) []int32 {
	g.Freeze()
	return g.arena[g.custOff[i]:g.custOff[i+1]]
}

// PeersOf returns the dense indexes of i's settlement-free peers.
func (g *Graph) PeersOf(i int) []int32 {
	g.Freeze()
	return g.arena[g.peerOff[i]:g.peerOff[i+1]]
}

// Providers returns the ASNs of a's transit providers, sorted.
func (g *Graph) Providers(a ASN) []ASN {
	return g.relASNs(a, g.ProvidersOf)
}

// Customers returns the ASNs of a's customers, sorted.
func (g *Graph) Customers(a ASN) []ASN {
	return g.relASNs(a, g.CustomersOf)
}

// Peers returns the ASNs of a's peers, sorted.
func (g *Graph) Peers(a ASN) []ASN { return g.relASNs(a, g.PeersOf) }

func (g *Graph) relASNs(a ASN, pick func(int) []int32) []ASN {
	g.Freeze()
	i, ok := g.Index(a)
	if !ok {
		return nil
	}
	rows := pick(i)
	out := make([]ASN, len(rows))
	for k, r := range rows {
		out[k] = g.nodes[r]
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

// Degree returns the total number of neighbors of a.
func (g *Graph) Degree(a ASN) int {
	i, ok := g.Index(a)
	if !ok {
		return 0
	}
	return len(g.ProvidersOf(i)) + len(g.CustomersOf(i)) + len(g.PeersOf(i))
}

// TransitDegree returns the number of unique neighbors that appear on either
// side of a in transit (p2c) links — the AS-Rank transit degree metric.
func (g *Graph) TransitDegree(a ASN) int {
	i, ok := g.Index(a)
	if !ok {
		return 0
	}
	return len(g.ProvidersOf(i)) + len(g.CustomersOf(i))
}

func canonPair(a, b ASN) [2]ASN {
	if a < b {
		return [2]ASN{a, b}
	}
	return [2]ASN{b, a}
}
