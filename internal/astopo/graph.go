// Package astopo models the AS-level topology of the Internet: autonomous
// systems, the business relationships between them (peer-to-peer and
// customer-to-provider), and the derived structures the paper's analysis
// needs — customer cones, transit degrees, and the Tier-1/Tier-2 sets.
//
// The package reads and writes the CAIDA AS-relationship file formats
// (serial-1 and serial-2) so real datasets can be substituted for the
// synthetic topologies produced by package topogen.
package astopo

import (
	"fmt"
	"slices"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// Rel is the business relationship of a link, from the perspective of the
// first AS in the pair.
type Rel int8

const (
	// P2C marks a provider-to-customer link: the first AS sells transit
	// to the second. CAIDA serial-1 encodes this as -1.
	P2C Rel = -1
	// P2P marks a settlement-free peer-to-peer link. CAIDA serial-1
	// encodes this as 0.
	P2P Rel = 0
	// C2P marks a customer-to-provider view of a link. It is never stored
	// (links are stored provider-first as P2C) but is returned by queries
	// such as HasLink when the queried AS is the customer.
	C2P Rel = 1
)

func (r Rel) String() string {
	switch r {
	case P2C:
		return "p2c"
	case P2P:
		return "p2p"
	case C2P:
		return "c2p"
	}
	return fmt.Sprintf("rel(%d)", int8(r))
}

// Link is one inter-AS adjacency with its relationship. For P2C links A is
// the provider and B the customer; for P2P links the order carries no
// meaning but is preserved from the source data.
type Link struct {
	A, B ASN
	Rel  Rel
}

// Graph is an AS-level topology. The zero value is an empty graph ready to
// use. Graphs are cheap to query but are built incrementally; call Freeze
// (or any query that requires indexes) after the last mutation to build the
// adjacency indexes.
type Graph struct {
	links []Link

	// index state, built lazily by Freeze.
	frozen    bool
	nodes     []ASN           // sorted unique ASNs
	idx       map[ASN]int     // ASN -> dense index
	providers [][]int32       // dense index -> provider dense indexes
	customers [][]int32       // dense index -> customer dense indexes
	peers     [][]int32       // dense index -> peer dense indexes
	linkSet   map[[2]ASN]Rel  // canonical (min,max) -> rel as stored
	linkDir   map[[2]ASN]bool // canonical pair -> true if stored order was (min,max)
}

// NewGraph returns an empty graph with capacity hints for n ASes and m links.
func NewGraph(n, m int) *Graph {
	return &Graph{links: make([]Link, 0, m)}
}

// FromLinks returns a graph over a pre-validated link slice, taking
// ownership of it (the caller must not mutate it while the graph is in
// use). Construction is O(1): the duplicate-detection pair index is built
// lazily on the first mutation or HasLink query, so derived graphs that
// are only frozen and propagated over (e.g. the sensitivity sweep's
// degraded copies) never pay for it. Links must be valid and unique as if
// added through AddLink.
func FromLinks(links []Link) *Graph {
	return &Graph{links: links}
}

// pairIndex returns the duplicate-detection maps, building them from the
// existing links on first use.
func (g *Graph) pairIndex() (map[[2]ASN]Rel, map[[2]ASN]bool) {
	if g.linkSet == nil {
		g.linkSet = make(map[[2]ASN]Rel, len(g.links))
		g.linkDir = make(map[[2]ASN]bool, len(g.links))
		for _, l := range g.links {
			key := canonPair(l.A, l.B)
			g.linkSet[key] = l.Rel
			g.linkDir[key] = key[0] == l.A
		}
	}
	return g.linkSet, g.linkDir
}

// AddLink records a link. Duplicate pairs are rejected; a pair may appear
// only once regardless of direction. Self-links are rejected.
func (g *Graph) AddLink(a, b ASN, rel Rel) error {
	if a == b {
		return fmt.Errorf("astopo: self link on AS%d", a)
	}
	if rel != P2P && rel != P2C {
		return fmt.Errorf("astopo: invalid relationship %d for AS%d-AS%d", rel, a, b)
	}
	linkSet, linkDir := g.pairIndex()
	key := canonPair(a, b)
	if _, dup := linkSet[key]; dup {
		return fmt.Errorf("astopo: duplicate link AS%d-AS%d", a, b)
	}
	linkSet[key] = rel
	linkDir[key] = key[0] == a
	g.links = append(g.links, Link{A: a, B: b, Rel: rel})
	g.frozen = false
	return nil
}

// MustAddLink is AddLink for construction code where a duplicate or invalid
// link indicates a programming error.
func (g *Graph) MustAddLink(a, b ASN, rel Rel) {
	if err := g.AddLink(a, b, rel); err != nil {
		panic(err)
	}
}

// AddPeerIfAbsent adds a p2p link between a and b unless any link between
// them already exists. It reports whether a link was added. This is the
// operation used to augment a BGP-feed topology with traceroute-discovered
// cloud neighbors: per §4.1 of the paper, a pre-existing link's type is
// never modified.
func (g *Graph) AddPeerIfAbsent(a, b ASN) bool {
	if a == b {
		return false
	}
	linkSet, _ := g.pairIndex()
	if _, ok := linkSet[canonPair(a, b)]; ok {
		return false
	}
	g.MustAddLink(a, b, P2P)
	return true
}

// HasLink reports whether any link exists between a and b, and its
// relationship from a's perspective: P2C means a is b's provider, C2P means
// a is b's customer, P2P means they peer.
func (g *Graph) HasLink(a, b ASN) (Rel, bool) {
	if len(g.links) == 0 {
		return 0, false
	}
	linkSet, linkDir := g.pairIndex()
	key := canonPair(a, b)
	rel, ok := linkSet[key]
	if !ok {
		return 0, false
	}
	if rel == P2P {
		return P2P, true
	}
	// linkDir true means the stored (provider-first) order was
	// (key[0], key[1]), so key[0] is the provider.
	provider := key[1]
	if linkDir[key] {
		provider = key[0]
	}
	if provider == a {
		return P2C, true
	}
	return C2P, true
}

// Clone returns a deep copy of the graph. The copy is unfrozen; its pair
// index is rebuilt lazily from the copied links when first needed.
func (g *Graph) Clone() *Graph {
	ng := NewGraph(len(g.nodes), len(g.links))
	ng.links = append(ng.links, g.links...)
	return ng
}

// Links returns the graph's links. The returned slice is shared; callers
// must not modify it.
func (g *Graph) Links() []Link { return g.links }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Freeze builds the adjacency indexes. It is idempotent and is called
// automatically by queries that need indexes; exposed so callers can choose
// when to pay the cost.
//
// The adjacency rows are carved out of one shared arena (CSR layout): a
// counting pass sizes every row up front, so freezing costs a handful of
// allocations regardless of the node count — per-node append growth would
// otherwise dominate workloads that rebuild derived graphs in a loop, such
// as the sensitivity sweep's degraded copies. Rows are filled in link
// order (P2P links contribute both directions at the same step), keeping
// the exact neighbor order of incremental appends, which the propagation
// code's determinism depends on.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	seen := make(map[ASN]struct{}, len(g.links)*2)
	for _, l := range g.links {
		seen[l.A] = struct{}{}
		seen[l.B] = struct{}{}
	}
	g.nodes = g.nodes[:0]
	for a := range seen {
		g.nodes = append(g.nodes, a)
	}
	slices.Sort(g.nodes)
	g.idx = make(map[ASN]int, len(g.nodes))
	for i, a := range g.nodes {
		g.idx[a] = i
	}
	n := len(g.nodes)
	// One map resolution per endpoint: the counting pass caches the dense
	// indexes for the fill pass.
	ends := make([]int32, 2*len(g.links))
	deg := make([]int32, 3*n)
	provDeg, custDeg, peerDeg := deg[:n], deg[n:2*n], deg[2*n:]
	for k, l := range g.links {
		ai, bi := int32(g.idx[l.A]), int32(g.idx[l.B])
		ends[2*k], ends[2*k+1] = ai, bi
		switch l.Rel {
		case P2P:
			peerDeg[ai]++
			peerDeg[bi]++
		case P2C:
			custDeg[ai]++
			provDeg[bi]++
		}
	}
	rows := make([][]int32, 3*n)
	arena := make([]int32, 2*len(g.links))
	off := 0
	for r, d := range deg {
		rows[r] = arena[off : off : off+int(d)]
		off += int(d)
	}
	g.providers, g.customers, g.peers = rows[:n:n], rows[n:2*n:2*n], rows[2*n:]
	for k, l := range g.links {
		ai, bi := ends[2*k], ends[2*k+1]
		switch l.Rel {
		case P2P:
			g.peers[ai] = append(g.peers[ai], bi)
			g.peers[bi] = append(g.peers[bi], ai)
		case P2C:
			g.customers[ai] = append(g.customers[ai], bi)
			g.providers[bi] = append(g.providers[bi], ai)
		}
	}
	g.frozen = true
}

// NumASes returns the number of ASes appearing in at least one link.
func (g *Graph) NumASes() int {
	g.Freeze()
	return len(g.nodes)
}

// ASes returns the sorted list of ASNs in the graph. The returned slice is
// shared; callers must not modify it.
func (g *Graph) ASes() []ASN {
	g.Freeze()
	return g.nodes
}

// Index returns the dense index of an ASN and whether it is present.
// Dense indexes are stable for a frozen graph and are the currency of the
// propagation code in package bgpsim.
func (g *Graph) Index(a ASN) (int, bool) {
	g.Freeze()
	i, ok := g.idx[a]
	return i, ok
}

// ASNAt returns the ASN at a dense index.
func (g *Graph) ASNAt(i int) ASN {
	g.Freeze()
	return g.nodes[i]
}

// ProvidersOf returns the dense indexes of i's transit providers.
func (g *Graph) ProvidersOf(i int) []int32 {
	g.Freeze()
	return g.providers[i]
}

// CustomersOf returns the dense indexes of i's customers.
func (g *Graph) CustomersOf(i int) []int32 {
	g.Freeze()
	return g.customers[i]
}

// PeersOf returns the dense indexes of i's settlement-free peers.
func (g *Graph) PeersOf(i int) []int32 {
	g.Freeze()
	return g.peers[i]
}

// Providers returns the ASNs of a's transit providers, sorted.
func (g *Graph) Providers(a ASN) []ASN {
	return g.relASNs(a, func(i int) []int32 { return g.providers[i] })
}

// Customers returns the ASNs of a's customers, sorted.
func (g *Graph) Customers(a ASN) []ASN {
	return g.relASNs(a, func(i int) []int32 { return g.customers[i] })
}

// Peers returns the ASNs of a's peers, sorted.
func (g *Graph) Peers(a ASN) []ASN { return g.relASNs(a, func(i int) []int32 { return g.peers[i] }) }

func (g *Graph) relASNs(a ASN, pick func(int) []int32) []ASN {
	g.Freeze()
	i, ok := g.idx[a]
	if !ok {
		return nil
	}
	rows := pick(i)
	out := make([]ASN, len(rows))
	for k, r := range rows {
		out[k] = g.nodes[r]
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

// Degree returns the total number of neighbors of a.
func (g *Graph) Degree(a ASN) int {
	g.Freeze()
	i, ok := g.idx[a]
	if !ok {
		return 0
	}
	return len(g.providers[i]) + len(g.customers[i]) + len(g.peers[i])
}

// TransitDegree returns the number of unique neighbors that appear on either
// side of a in transit (p2c) links — the AS-Rank transit degree metric.
func (g *Graph) TransitDegree(a ASN) int {
	g.Freeze()
	i, ok := g.idx[a]
	if !ok {
		return 0
	}
	return len(g.providers[i]) + len(g.customers[i])
}

func canonPair(a, b ASN) [2]ASN {
	if a < b {
		return [2]ASN{a, b}
	}
	return [2]ASN{b, a}
}
