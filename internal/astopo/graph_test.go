package astopo

import (
	"testing"
)

// buildTestGraph constructs the small topology used across these tests:
//
//	    T1a ---- T1b        (p2p clique)
//	   /   \    /   \
//	  M1    M2      M3      (customers of the T1s; M1-M2 peer)
//	 /  \     \    /
//	S1  S2     S3           (stubs)
//
// plus an isolated peering pair E1-E2 reachable only via S1 (provider of E1).
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(0, 0)
	add := func(a, b ASN, r Rel) {
		t.Helper()
		if err := g.AddLink(a, b, r); err != nil {
			t.Fatalf("AddLink(%d,%d,%v): %v", a, b, r, err)
		}
	}
	add(1, 2, P2P)   // T1a - T1b
	add(1, 11, P2C)  // T1a -> M1
	add(1, 12, P2C)  // T1a -> M2
	add(2, 12, P2C)  // T1b -> M2
	add(2, 13, P2C)  // T1b -> M3
	add(11, 12, P2P) // M1 - M2
	add(11, 101, P2C)
	add(11, 102, P2C)
	add(12, 103, P2C)
	add(13, 103, P2C) // S3 multihomed to M2 and M3
	add(101, 201, P2C)
	add(201, 202, P2P)
	return g
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph(0, 0)
	if err := g.AddLink(5, 5, P2P); err == nil {
		t.Error("self link accepted")
	}
	if err := g.AddLink(1, 2, Rel(7)); err == nil {
		t.Error("invalid relationship accepted")
	}
	if err := g.AddLink(1, 2, P2C); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := g.AddLink(2, 1, P2P); err == nil {
		t.Error("duplicate link (reversed order) accepted")
	}
	if err := g.AddLink(1, 2, P2C); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestHasLinkOrientation(t *testing.T) {
	g := buildTestGraph(t)
	cases := []struct {
		a, b ASN
		rel  Rel
		ok   bool
	}{
		{1, 2, P2P, true},
		{2, 1, P2P, true},
		{1, 11, P2C, true},
		{11, 1, C2P, true},
		{13, 103, P2C, true},
		{103, 13, C2P, true},
		{1, 13, 0, false},
		{999, 1, 0, false},
	}
	for _, c := range cases {
		rel, ok := g.HasLink(c.a, c.b)
		if ok != c.ok || (ok && rel != c.rel) {
			t.Errorf("HasLink(%d,%d) = %v,%v; want %v,%v", c.a, c.b, rel, ok, c.rel, c.ok)
		}
	}
}

func TestAdjacency(t *testing.T) {
	g := buildTestGraph(t)
	if got := g.NumASes(); got != 10 {
		t.Fatalf("NumASes = %d, want 10", got)
	}
	wantProviders := map[ASN][]ASN{
		12:  {1, 2},
		103: {12, 13},
		1:   nil,
	}
	for a, want := range wantProviders {
		got := g.Providers(a)
		if !equalASNs(got, want) {
			t.Errorf("Providers(%d) = %v, want %v", a, got, want)
		}
	}
	if got := g.Customers(11); !equalASNs(got, []ASN{101, 102}) {
		t.Errorf("Customers(11) = %v", got)
	}
	if got := g.Peers(12); !equalASNs(got, []ASN{11}) {
		t.Errorf("Peers(12) = %v", got)
	}
	if got := g.Degree(12); got != 4 {
		t.Errorf("Degree(12) = %d, want 4", got)
	}
	if got := g.TransitDegree(12); got != 3 {
		t.Errorf("TransitDegree(12) = %d, want 3", got)
	}
}

func TestAddPeerIfAbsent(t *testing.T) {
	g := buildTestGraph(t)
	if g.AddPeerIfAbsent(1, 11) {
		t.Error("AddPeerIfAbsent overwrote an existing p2c link")
	}
	if rel, _ := g.HasLink(1, 11); rel != P2C {
		t.Errorf("existing link mutated to %v", rel)
	}
	if !g.AddPeerIfAbsent(101, 103) {
		t.Error("AddPeerIfAbsent failed to add a new link")
	}
	if rel, ok := g.HasLink(101, 103); !ok || rel != P2P {
		t.Errorf("new peer link = %v,%v", rel, ok)
	}
	if g.AddPeerIfAbsent(7, 7) {
		t.Error("self peer accepted")
	}
}

func TestCustomerCone(t *testing.T) {
	g := buildTestGraph(t)
	cases := []struct {
		a    ASN
		want []ASN
	}{
		{1, []ASN{1, 11, 12, 101, 102, 103, 201}},
		{11, []ASN{11, 101, 102, 201}},
		{101, []ASN{101, 201}},
		{202, []ASN{202}},
		{13, []ASN{13, 103}},
	}
	for _, c := range cases {
		got := c.a.sorted(g.CustomerCone(c.a))
		if !equalASNs(got, c.want) {
			t.Errorf("CustomerCone(%d) = %v, want %v", c.a, got, c.want)
		}
	}
}

// sorted is a helper hung off ASN purely to keep call sites short.
func (ASN) sorted(in []ASN) []ASN {
	out := append([]ASN(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestConeSizesMatchesCustomerCone(t *testing.T) {
	g := buildTestGraph(t)
	sizes := g.ConeSizes()
	for i, a := range g.ASes() {
		if want := len(g.CustomerCone(a)); sizes[i] != want {
			t.Errorf("ConeSizes[%d] (AS%d) = %d, want %d", i, a, sizes[i], want)
		}
	}
}

func TestClique(t *testing.T) {
	g := buildTestGraph(t)
	got := ASN(0).sorted(g.Clique())
	if !equalASNs(got, []ASN{1, 2}) {
		t.Errorf("Clique = %v, want [1 2]", got)
	}
}

func TestCliqueExcludesNonMutualPeers(t *testing.T) {
	g := NewGraph(0, 0)
	// Three provider-free ASes, but 3 does not peer with 2.
	g.MustAddLink(1, 2, P2P)
	g.MustAddLink(1, 3, P2P)
	g.MustAddLink(1, 10, P2C)
	g.MustAddLink(2, 11, P2C)
	g.MustAddLink(3, 12, P2C)
	g.MustAddLink(2, 12, P2C) // give 2 higher transit degree than 3
	got := ASN(0).sorted(g.Clique())
	if !equalASNs(got, []ASN{1, 2}) {
		t.Errorf("Clique = %v, want [1 2]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTestGraph(t)
	n := g.NumLinks()
	c := g.Clone()
	if !c.AddPeerIfAbsent(102, 103) {
		t.Fatal("clone refused new link")
	}
	if g.NumLinks() != n {
		t.Error("mutating clone changed original")
	}
	if _, ok := g.HasLink(102, 103); ok {
		t.Error("original sees clone's link")
	}
}

func TestASSet(t *testing.T) {
	s := NewASSet(3, 1, 2)
	if !s.Has(1) || s.Has(4) {
		t.Error("membership wrong")
	}
	s.Add(4)
	u := s.Union(NewASSet(5))
	if got := u.Slice(); !equalASNs(got, []ASN{1, 2, 3, 4, 5}) {
		t.Errorf("Union.Slice = %v", got)
	}
	if s.Has(5) {
		t.Error("Union mutated receiver")
	}
}

func equalASNs(a, b []ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
