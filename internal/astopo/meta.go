package astopo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file parses and writes the two CAIDA metadata formats the paper's
// §4.3 pipeline consumes alongside the relationship files:
//
// as2type (e.g. 20200101.as2types.txt):
//	# format: as|source|type
//	1|CAIDA_class|Transit/Access
//	714|CAIDA_class|Content
//
// as-org2info (e.g. 20200101.as-org2info.txt), a two-section file:
//	# format: org_id|changed|org_name|country|source
//	ORG-1|20200101|Example Org|US|ARIN
//	# format: aut|changed|aut_name|org_id|opaque_id|source
//	64496|20200101|EXAMPLE-AS|ORG-1||ARIN
//
// Both parsers accept the real files; the writers emit the same formats so
// synthetic datasets can be inspected with standard tooling.

// ASTypeLabel is a CAIDA as2type classification label.
type ASTypeLabel string

// The three labels CAIDA's classifier emits.
const (
	TypeLabelTransitAccess ASTypeLabel = "Transit/Access"
	TypeLabelContent       ASTypeLabel = "Content"
	TypeLabelEnterprise    ASTypeLabel = "Enterprise"
)

// AS2TypeRecord is one as2type row.
type AS2TypeRecord struct {
	AS     ASN
	Source string
	Type   ASTypeLabel
}

// ReadAS2Type parses a CAIDA as2type stream.
func ReadAS2Type(r io.Reader) (map[ASN]AS2TypeRecord, error) {
	out := make(map[ASN]AS2TypeRecord)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) != 3 {
			return nil, fmt.Errorf("astopo: as2type line %d: expected 3 fields, got %d", lineno, len(fields))
		}
		a, err := parseASN(fields[0])
		if err != nil {
			return nil, fmt.Errorf("astopo: as2type line %d: %w", lineno, err)
		}
		out[a] = AS2TypeRecord{AS: a, Source: fields[1], Type: ASTypeLabel(fields[2])}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: reading as2type: %w", err)
	}
	return out, nil
}

// WriteAS2Type writes records in CAIDA as2type format, sorted by ASN.
func WriteAS2Type(w io.Writer, records map[ASN]AS2TypeRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# format: as|source|type"); err != nil {
		return err
	}
	asns := make([]ASN, 0, len(records))
	for a := range records {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		rec := records[a]
		src := rec.Source
		if src == "" {
			src = "CAIDA_class"
		}
		if _, err := fmt.Fprintf(bw, "%d|%s|%s\n", a, src, rec.Type); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Org is one organization from an as-org2info file.
type Org struct {
	ID      string
	Name    string
	Country string
	Source  string
}

// ASOrg maps an AS to its organization.
type ASOrg struct {
	AS    ASN
	Name  string
	OrgID string
}

// OrgDB is a parsed as-org2info dataset.
type OrgDB struct {
	Orgs map[string]Org
	ByAS map[ASN]ASOrg
}

// OrgOf returns the organization owning an AS, or false.
func (db *OrgDB) OrgOf(a ASN) (Org, bool) {
	rec, ok := db.ByAS[a]
	if !ok {
		return Org{}, false
	}
	org, ok := db.Orgs[rec.OrgID]
	return org, ok
}

// Siblings returns the other ASes registered to the same organization.
func (db *OrgDB) Siblings(a ASN) []ASN {
	rec, ok := db.ByAS[a]
	if !ok {
		return nil
	}
	var out []ASN
	for asn, r := range db.ByAS {
		if asn != a && r.OrgID == rec.OrgID {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadASOrg parses a CAIDA as-org2info stream. Section membership is
// determined by the most recent "# format:" header, as in the real files.
func ReadASOrg(r io.Reader) (*OrgDB, error) {
	db := &OrgDB{Orgs: make(map[string]Org), ByAS: make(map[ASN]ASOrg)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	section := 0 // 0 unknown, 1 orgs, 2 ases
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			switch {
			case strings.Contains(line, "org_id|changed|org_name"):
				section = 1
			case strings.Contains(line, "aut|changed|aut_name"):
				section = 2
			}
			continue
		}
		if line == "" {
			continue
		}
		fields := strings.Split(line, "|")
		switch section {
		case 1:
			if len(fields) < 5 {
				return nil, fmt.Errorf("astopo: as-org line %d: expected 5 org fields, got %d", lineno, len(fields))
			}
			db.Orgs[fields[0]] = Org{ID: fields[0], Name: fields[2], Country: fields[3], Source: fields[4]}
		case 2:
			if len(fields) < 6 {
				return nil, fmt.Errorf("astopo: as-org line %d: expected 6 AS fields, got %d", lineno, len(fields))
			}
			a, err := parseASN(fields[0])
			if err != nil {
				return nil, fmt.Errorf("astopo: as-org line %d: %w", lineno, err)
			}
			db.ByAS[a] = ASOrg{AS: a, Name: fields[2], OrgID: fields[3]}
		default:
			return nil, fmt.Errorf("astopo: as-org line %d: data before any format header", lineno)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: reading as-org: %w", err)
	}
	return db, nil
}

// WriteASOrg writes an OrgDB in CAIDA as-org2info format.
func WriteASOrg(w io.Writer, db *OrgDB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# format: org_id|changed|org_name|country|source"); err != nil {
		return err
	}
	orgIDs := make([]string, 0, len(db.Orgs))
	for id := range db.Orgs {
		orgIDs = append(orgIDs, id)
	}
	sort.Strings(orgIDs)
	for _, id := range orgIDs {
		o := db.Orgs[id]
		if _, err := fmt.Fprintf(bw, "%s||%s|%s|%s\n", o.ID, o.Name, o.Country, o.Source); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "# format: aut|changed|aut_name|org_id|opaque_id|source"); err != nil {
		return err
	}
	asns := make([]ASN, 0, len(db.ByAS))
	for a := range db.ByAS {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		rec := db.ByAS[a]
		if _, err := fmt.Fprintf(bw, "%d||%s|%s||synthetic\n", a, rec.Name, rec.OrgID); err != nil {
			return err
		}
	}
	return bw.Flush()
}
