package astopo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sampleAS2Type = `# format: as|source|type
1|CAIDA_class|Transit/Access
714|CAIDA_class|Content
64496|CAIDA_class|Enterprise
`

func TestReadAS2Type(t *testing.T) {
	recs, err := ReadAS2Type(strings.NewReader(sampleAS2Type))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[714].Type != TypeLabelContent {
		t.Errorf("AS714 type = %q", recs[714].Type)
	}
	if recs[1].Source != "CAIDA_class" {
		t.Errorf("source = %q", recs[1].Source)
	}
}

func TestAS2TypeRoundTrip(t *testing.T) {
	in := map[ASN]AS2TypeRecord{
		5:   {AS: 5, Source: "CAIDA_class", Type: TypeLabelTransitAccess},
		9:   {AS: 9, Source: "", Type: TypeLabelEnterprise}, // source defaulted
		100: {AS: 100, Source: "peeringdb", Type: TypeLabelContent},
	}
	var buf bytes.Buffer
	if err := WriteAS2Type(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAS2Type(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[9].Source != "CAIDA_class" {
		t.Errorf("defaulted source = %q", out[9].Source)
	}
	if out[5].Type != TypeLabelTransitAccess || out[100].Type != TypeLabelContent {
		t.Error("types lost in round trip")
	}
}

func TestReadAS2TypeErrors(t *testing.T) {
	for _, in := range []string{"1|x\n", "y|s|Content\n"} {
		if _, err := ReadAS2Type(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

const sampleASOrg = `# format: org_id|changed|org_name|country|source
ORG-1|20200101|Example Org|US|ARIN
ORG-2|20200101|Other Org|DE|RIPE
# format: aut|changed|aut_name|org_id|opaque_id|source
64496|20200101|EXAMPLE-AS|ORG-1||ARIN
64497|20200101|EXAMPLE-AS-2|ORG-1||ARIN
64511|20200101|OTHER-AS|ORG-2||RIPE
`

func TestReadASOrg(t *testing.T) {
	db, err := ReadASOrg(strings.NewReader(sampleASOrg))
	if err != nil {
		t.Fatal(err)
	}
	org, ok := db.OrgOf(64496)
	if !ok || org.Name != "Example Org" || org.Country != "US" {
		t.Errorf("OrgOf(64496) = %+v, %v", org, ok)
	}
	if _, ok := db.OrgOf(1); ok {
		t.Error("unknown AS resolved")
	}
	sibs := db.Siblings(64496)
	if !reflect.DeepEqual(sibs, []ASN{64497}) {
		t.Errorf("Siblings = %v", sibs)
	}
	if db.Siblings(1) != nil {
		t.Error("siblings of unknown AS")
	}
}

func TestASOrgRoundTrip(t *testing.T) {
	db, err := ReadASOrg(strings.NewReader(sampleASOrg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteASOrg(&buf, db); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadASOrg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Orgs) != len(db.Orgs) || len(db2.ByAS) != len(db.ByAS) {
		t.Fatalf("round trip sizes: %d/%d vs %d/%d", len(db2.Orgs), len(db2.ByAS), len(db.Orgs), len(db.ByAS))
	}
	for a, rec := range db.ByAS {
		if db2.ByAS[a].OrgID != rec.OrgID {
			t.Errorf("AS%d org changed", a)
		}
	}
}

func TestReadASOrgErrors(t *testing.T) {
	if _, err := ReadASOrg(strings.NewReader("ORG-1|x|y|z|w\n")); err == nil {
		t.Error("data before header accepted")
	}
	bad := "# format: aut|changed|aut_name|org_id|opaque_id|source\nnotanasn|x|y|z|o|s\n"
	if _, err := ReadASOrg(strings.NewReader(bad)); err == nil {
		t.Error("bad ASN accepted")
	}
}
