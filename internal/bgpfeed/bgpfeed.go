// Package bgpfeed simulates public BGP route collectors (RouteViews / RIPE
// RIS style): a set of vantage-point ASes export their best path for every
// origin, and the "visible topology" is the union of links appearing on
// those paths.
//
// This reproduces the structural blindness the paper builds on (§2.3,
// §4.1): peer-to-peer links at the edge are visible only to the two peers
// and their customers, so feeds anchored at transit networks see nearly all
// c2p links but miss the vast majority of edge peerings — including most
// cloud-provider peerings, which is why the paper augments the CAIDA graph
// with traceroutes from cloud VMs.
package bgpfeed

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
)

// View is what the collectors see.
type View struct {
	// VPs are the vantage-point ASes feeding the collectors.
	VPs []astopo.ASN
	// Paths are AS paths as exported to the collectors: VP first,
	// origin last. One path per (VP, origin) pair that has a route.
	Paths [][]astopo.ASN
	// Links are the distinct links appearing on those paths, annotated
	// with their true relationship from the underlying graph.
	Links []astopo.Link
}

// Collect runs one full table transfer: every AS originates a prefix, and
// each VP contributes its best path (ties broken deterministically).
func Collect(g *astopo.Graph, vps []astopo.ASN) (*View, error) {
	g.Freeze()
	vpIdx := make([]int32, 0, len(vps))
	for _, v := range vps {
		i, ok := g.Index(v)
		if !ok {
			return nil, fmt.Errorf("bgpfeed: VP AS%d not in graph", v)
		}
		vpIdx = append(vpIdx, int32(i))
	}

	origins := g.ASes()
	perOrigin := make([][][]astopo.ASN, len(origins))
	var wg sync.WaitGroup
	work := make(chan int)
	var firstErr error
	var errMu sync.Mutex
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim := bgpsim.New(g)
			for oi := range work {
				res, err := sim.Run(bgpsim.Config{Origin: origins[oi], TrackNextHops: true})
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				var paths [][]astopo.ASN
				for k, vi := range vpIdx {
					if p := walkPath(g, res, vi, uint64(k)); p != nil {
						paths = append(paths, p)
					}
				}
				perOrigin[oi] = paths
			}
		}()
	}
	for oi := range origins {
		work <- oi
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	view := &View{VPs: vps}
	seen := make(map[[2]astopo.ASN]bool)
	for _, paths := range perOrigin {
		for _, p := range paths {
			view.Paths = append(view.Paths, p)
			for i := 1; i < len(p); i++ {
				a, b := p[i-1], p[i]
				key := canon(a, b)
				if seen[key] {
					continue
				}
				seen[key] = true
				rel, ok := g.HasLink(a, b)
				if !ok {
					return nil, fmt.Errorf("bgpfeed: path used nonexistent link AS%d-AS%d", a, b)
				}
				switch rel {
				case astopo.P2P:
					view.Links = append(view.Links, astopo.Link{A: a, B: b, Rel: astopo.P2P})
				case astopo.P2C:
					view.Links = append(view.Links, astopo.Link{A: a, B: b, Rel: astopo.P2C})
				case astopo.C2P:
					view.Links = append(view.Links, astopo.Link{A: b, B: a, Rel: astopo.P2C})
				}
			}
		}
	}
	sort.Slice(view.Links, func(i, j int) bool {
		if view.Links[i].A != view.Links[j].A {
			return view.Links[i].A < view.Links[j].A
		}
		return view.Links[i].B < view.Links[j].B
	})
	return view, nil
}

// walkPath extracts the VP's exported best path (VP..origin), breaking
// next-hop ties with a per-VP hash.
func walkPath(g *astopo.Graph, res *bgpsim.Result, vp int32, salt uint64) []astopo.ASN {
	if res.Class[vp] == bgpsim.ClassNone {
		return nil
	}
	if vp == res.Origin {
		return nil
	}
	path := []astopo.ASN{g.ASNAt(int(vp))}
	cur := vp
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", vp, res.Origin)
	x := h.Sum64() + salt
	for cur != res.Origin {
		hops := res.NextHops[cur]
		if len(hops) == 0 {
			return nil
		}
		x = x*6364136223846793005 + 1442695040888963407
		cur = hops[(x>>33)%uint64(len(hops))]
		path = append(path, g.ASNAt(int(cur)))
		if len(path) > 64 {
			return nil
		}
	}
	return path
}

// BuildGraph assembles the feed-visible topology ("the CAIDA dataset") from
// a view, using the ground-truth relationship labels of the visible links —
// the paper consumes CAIDA's labels the same way.
func (v *View) BuildGraph() (*astopo.Graph, error) {
	g := astopo.NewGraph(0, len(v.Links))
	for _, l := range v.Links {
		if err := g.AddLink(l.A, l.B, l.Rel); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VisibleNeighbors returns the ASes adjacent to a in the view's link set.
func (v *View) VisibleNeighbors(a astopo.ASN) []astopo.ASN {
	var out []astopo.ASN
	for _, l := range v.Links {
		switch a {
		case l.A:
			out = append(out, l.B)
		case l.B:
			out = append(out, l.A)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SampleVPs picks n vantage points deterministically from the candidate
// list (typically transit ASes — the networks that actually feed public
// collectors).
func SampleVPs(candidates []astopo.ASN, n int, seed int64) []astopo.ASN {
	rng := rand.New(rand.NewSource(seed))
	if n > len(candidates) {
		n = len(candidates)
	}
	perm := rng.Perm(len(candidates))
	out := make([]astopo.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = candidates[perm[i]]
	}
	return out
}

func canon(a, b astopo.ASN) [2]astopo.ASN {
	if a < b {
		return [2]astopo.ASN{a, b}
	}
	return [2]astopo.ASN{b, a}
}
