package bgpfeed

import (
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/topogen"
)

func collectView(t testing.TB, scale float64, nVPs int) (*topogen.Internet, *View) {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	// VPs: transit-class ASes, as with real collectors.
	var cands []astopo.ASN
	for i, a := range in.Graph.ASes() {
		switch in.ClassAt(i) {
		case topogen.ClassTransit, topogen.ClassTier2:
			cands = append(cands, a)
		}
	}
	vps := SampleVPs(cands, nVPs, 1)
	view, err := Collect(in.Graph, vps)
	if err != nil {
		t.Fatal(err)
	}
	return in, view
}

func TestCollectPathsValid(t *testing.T) {
	in, view := collectView(t, 0.01425, 10)
	if len(view.Paths) == 0 {
		t.Fatal("no paths")
	}
	vpSet := astopo.NewASSet(view.VPs...)
	for _, p := range view.Paths[:500] {
		if len(p) < 2 {
			t.Fatalf("degenerate path %v", p)
		}
		if !vpSet.Has(p[0]) {
			t.Fatalf("path %v does not start at a VP", p)
		}
		for i := 1; i < len(p); i++ {
			if _, ok := in.Graph.HasLink(p[i-1], p[i]); !ok {
				t.Fatalf("path %v uses nonexistent link", p)
			}
		}
	}
}

// The central bias: feeds see nearly all links of the hierarchy but only a
// small fraction of the clouds' peerings (§4.1 reports ~10-90% missed
// depending on the cloud).
func TestFeedMissesCloudPeering(t *testing.T) {
	in, view := collectView(t, 0.02138, 30)
	feed, err := view.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	google := in.Clouds["Google"]
	truthN := len(in.Graph.Peers(google)) + len(in.Graph.Providers(google))
	feedN := 0
	if _, ok := feed.Index(google); ok {
		feedN = feed.Degree(google)
	}
	frac := float64(feedN) / float64(truthN)
	t.Logf("Google: feed sees %d of %d neighbors (%.2f)", feedN, truthN, frac)
	if frac > 0.45 {
		t.Errorf("feed sees %.2f of Google's neighbors; expected a large blind spot", frac)
	}
	// But the hierarchy is well covered: Tier-1 to Tier-2 links.
	t1 := astopo.ASN(3356)
	truthT1 := in.Graph.Degree(t1)
	feedT1 := 0
	if _, ok := feed.Index(t1); ok {
		feedT1 = feed.Degree(t1)
	}
	fracT1 := float64(feedT1) / float64(truthT1)
	t.Logf("Level 3: feed sees %d of %d neighbors (%.2f)", feedT1, truthT1, fracT1)
	if fracT1 < frac {
		t.Errorf("feed covers Level 3 (%.2f) worse than Google (%.2f)", fracT1, frac)
	}
	// c2p coverage overall must far exceed p2p coverage.
	cover := map[astopo.Rel]float64{}
	for _, rel := range []astopo.Rel{astopo.P2P, astopo.P2C} {
		var tot, vis int
		for _, l := range in.Graph.Links() {
			if l.Rel != rel {
				continue
			}
			tot++
			if _, ok := feed.HasLink(l.A, l.B); ok {
				vis++
			}
		}
		cover[rel] = float64(vis) / float64(tot)
	}
	t.Logf("visibility: c2p=%.2f p2p=%.2f", cover[astopo.P2C], cover[astopo.P2P])
	if cover[astopo.P2C] < 0.8 {
		t.Errorf("c2p visibility %.2f, want >= 0.8", cover[astopo.P2C])
	}
	if cover[astopo.P2P] > cover[astopo.P2C]/2 {
		t.Errorf("p2p visibility %.2f not clearly below c2p %.2f", cover[astopo.P2P], cover[astopo.P2C])
	}
}

func TestCollectErrors(t *testing.T) {
	in, _ := collectView(t, 0.01425, 2)
	if _, err := Collect(in.Graph, []astopo.ASN{999999999}); err == nil {
		t.Error("unknown VP accepted")
	}
}

func TestVisibleNeighbors(t *testing.T) {
	_, view := collectView(t, 0.01425, 5)
	vp := view.VPs[0]
	ns := view.VisibleNeighbors(vp)
	if len(ns) == 0 {
		t.Error("VP has no visible neighbors")
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] < ns[i-1] {
			t.Error("neighbors not sorted")
		}
	}
}

func TestSampleVPsDeterministic(t *testing.T) {
	c := []astopo.ASN{1, 2, 3, 4, 5, 6}
	a := SampleVPs(c, 3, 9)
	b := SampleVPs(c, 3, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
	if got := SampleVPs(c, 100, 9); len(got) != len(c) {
		t.Errorf("oversample returned %d", len(got))
	}
}
