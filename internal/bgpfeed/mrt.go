package bgpfeed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"flatnet/internal/astopo"
)

// This file implements the subset of the MRT format (RFC 6396) that real
// route collectors publish RIB snapshots in: TABLE_DUMP_V2 with a
// PEER_INDEX_TABLE record followed by RIB_IPV4_UNICAST records. A View can
// be exported as an MRT RIB and read back — or real RouteViews .bz2 dumps
// (decompressed) can be read directly, giving the rest of the pipeline a
// path onto real data.
//
// Layout (all fields big-endian):
//
//	MRT common header: timestamp(4) type(2) subtype(2) length(4)
//	PEER_INDEX_TABLE:  collector-id(4) viewname-len(2) viewname
//	                   peer-count(2) { peer-type(1) bgp-id(4) ip(4|16) as(2|4) }
//	RIB_IPV4_UNICAST:  sequence(4) prefix-len(1) prefix(⌈len/8⌉)
//	                   entry-count(2) { peer-index(2) orig-time(4)
//	                   attr-len(2) attributes... }
//
// Attributes written: ORIGIN (IGP), AS_PATH (one AS_SEQUENCE segment,
// 4-byte ASNs as TABLE_DUMP_V2 mandates), NEXT_HOP (0.0.0.0 placeholder).

// MRT record types and subtypes used here.
const (
	mrtTypeTableDumpV2  = 13
	mrtSubtypePeerIndex = 1
	mrtSubtypeRIBIPv4   = 2
	bgpAttrOrigin       = 1
	bgpAttrASPath       = 2
	bgpAttrNextHop      = 3
	bgpASPathSeqSegment = 2
	attrFlagTransitive  = 0x40
	peerTypeAS4         = 0x02 // bit 1: AS number is 4 bytes
)

// RIBEntry is one (prefix, peer, path) row from an MRT RIB.
type RIBEntry struct {
	Prefix    netip.Prefix
	PeerIndex int
	// ASPath is collector-side first, origin last — the wire order.
	ASPath []astopo.ASN
}

// MRTRib is a parsed TABLE_DUMP_V2 snapshot.
type MRTRib struct {
	// Peers are the collector's BGP peers (the vantage points), indexed
	// as the RIB entries reference them.
	Peers []astopo.ASN
	// Entries are the RIB rows in file order.
	Entries []RIBEntry
}

// WriteMRT exports the view as a TABLE_DUMP_V2 RIB snapshot. prefixOf maps
// each origin AS to the prefix it announces (one prefix per origin, as our
// synthetic plan allocates); timestamp stamps every record.
func WriteMRT(w io.Writer, v *View, prefixOf func(astopo.ASN) (netip.Prefix, bool), timestamp uint32) error {
	bw := bufio.NewWriter(w)

	peerIdx := make(map[astopo.ASN]int, len(v.VPs))
	for i, vp := range v.VPs {
		peerIdx[vp] = i
	}

	// PEER_INDEX_TABLE.
	var pt []byte
	pt = be32(pt, 0x0A000001) // collector BGP ID
	pt = be16(pt, 0)          // empty view name
	pt = be16(pt, uint16(len(v.VPs)))
	for i, vp := range v.VPs {
		pt = append(pt, peerTypeAS4)        // IPv4 peer, 4-byte ASN
		pt = be32(pt, 0x0A000100+uint32(i)) // peer BGP ID
		pt = be32(pt, 0x0A000100+uint32(i)) // peer IPv4 address
		pt = be32(pt, uint32(vp))
	}
	if err := writeMRTRecord(bw, timestamp, mrtSubtypePeerIndex, pt); err != nil {
		return err
	}

	// Group paths by origin; one RIB_IPV4_UNICAST record per prefix.
	byOrigin := make(map[astopo.ASN][][]astopo.ASN)
	var originOrder []astopo.ASN
	for _, p := range v.Paths {
		o := p[len(p)-1]
		if _, seen := byOrigin[o]; !seen {
			originOrder = append(originOrder, o)
		}
		byOrigin[o] = append(byOrigin[o], p)
	}
	seq := uint32(0)
	for _, o := range originOrder {
		pfx, ok := prefixOf(o)
		if !ok {
			continue
		}
		if !pfx.Addr().Is4() {
			return fmt.Errorf("bgpfeed: prefix %v for AS%d is not IPv4", pfx, o)
		}
		var rec []byte
		rec = be32(rec, seq)
		seq++
		rec = append(rec, byte(pfx.Bits()))
		a4 := pfx.Addr().As4()
		rec = append(rec, a4[:(pfx.Bits()+7)/8]...)
		paths := byOrigin[o]
		rec = be16(rec, uint16(len(paths)))
		for _, p := range paths {
			idx, ok := peerIdx[p[0]]
			if !ok {
				return fmt.Errorf("bgpfeed: path starts at non-VP AS%d", p[0])
			}
			rec = be16(rec, uint16(idx))
			rec = be32(rec, timestamp) // originated time
			attrs := encodeAttributes(p)
			rec = be16(rec, uint16(len(attrs)))
			rec = append(rec, attrs...)
		}
		if err := writeMRTRecord(bw, timestamp, mrtSubtypeRIBIPv4, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeAttributes(path []astopo.ASN) []byte {
	var out []byte
	// ORIGIN: IGP.
	out = append(out, attrFlagTransitive, bgpAttrOrigin, 1, 0)
	// AS_PATH: single AS_SEQUENCE of 4-byte ASNs.
	body := []byte{bgpASPathSeqSegment, byte(len(path))}
	for _, a := range path {
		body = be32(body, uint32(a))
	}
	out = append(out, attrFlagTransitive, bgpAttrASPath, byte(len(body)))
	out = append(out, body...)
	// NEXT_HOP placeholder.
	out = append(out, attrFlagTransitive, bgpAttrNextHop, 4, 0, 0, 0, 0)
	return out
}

func writeMRTRecord(w io.Writer, ts uint32, subtype uint16, body []byte) error {
	var hdr []byte
	hdr = be32(hdr, ts)
	hdr = be16(hdr, mrtTypeTableDumpV2)
	hdr = be16(hdr, subtype)
	hdr = be32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadMRT parses a TABLE_DUMP_V2 stream. Records of other MRT types are
// skipped; RIB entries referencing unknown peers or with malformed
// attributes produce errors.
func ReadMRT(r io.Reader) (*MRTRib, error) {
	br := bufio.NewReader(r)
	rib := &MRTRib{}
	for {
		hdr := make([]byte, 12)
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return rib, nil
			}
			return nil, fmt.Errorf("bgpfeed: reading MRT header: %w", err)
		}
		typ := binary.BigEndian.Uint16(hdr[4:6])
		sub := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > 1<<24 {
			return nil, fmt.Errorf("bgpfeed: implausible MRT record length %d", length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("bgpfeed: reading MRT body: %w", err)
		}
		if typ != mrtTypeTableDumpV2 {
			continue
		}
		switch sub {
		case mrtSubtypePeerIndex:
			peers, err := parsePeerIndex(body)
			if err != nil {
				return nil, err
			}
			rib.Peers = peers
		case mrtSubtypeRIBIPv4:
			entries, err := parseRIBIPv4(body, len(rib.Peers))
			if err != nil {
				return nil, err
			}
			rib.Entries = append(rib.Entries, entries...)
		}
	}
}

func parsePeerIndex(b []byte) ([]astopo.ASN, error) {
	p := 0
	need := func(n int) error {
		if p+n > len(b) {
			return fmt.Errorf("bgpfeed: truncated PEER_INDEX_TABLE")
		}
		return nil
	}
	if err := need(6); err != nil {
		return nil, err
	}
	p += 4 // collector id
	nameLen := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2
	if err := need(nameLen + 2); err != nil {
		return nil, err
	}
	p += nameLen
	count := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2
	peers := make([]astopo.ASN, 0, count)
	for i := 0; i < count; i++ {
		if err := need(1); err != nil {
			return nil, err
		}
		ptype := b[p]
		p++
		ipLen := 4
		if ptype&0x01 != 0 {
			ipLen = 16
		}
		asLen := 2
		if ptype&peerTypeAS4 != 0 {
			asLen = 4
		}
		if err := need(4 + ipLen + asLen); err != nil {
			return nil, err
		}
		p += 4 + ipLen
		var as uint32
		if asLen == 4 {
			as = binary.BigEndian.Uint32(b[p : p+4])
		} else {
			as = uint32(binary.BigEndian.Uint16(b[p : p+2]))
		}
		p += asLen
		peers = append(peers, astopo.ASN(as))
	}
	return peers, nil
}

func parseRIBIPv4(b []byte, nPeers int) ([]RIBEntry, error) {
	p := 0
	need := func(n int) error {
		if p+n > len(b) {
			return fmt.Errorf("bgpfeed: truncated RIB record")
		}
		return nil
	}
	if err := need(5); err != nil {
		return nil, err
	}
	p += 4 // sequence
	plen := int(b[p])
	p++
	nBytes := (plen + 7) / 8
	if plen > 32 {
		return nil, fmt.Errorf("bgpfeed: bad IPv4 prefix length %d", plen)
	}
	if err := need(nBytes + 2); err != nil {
		return nil, err
	}
	var a4 [4]byte
	copy(a4[:], b[p:p+nBytes])
	p += nBytes
	prefix := netip.PrefixFrom(netip.AddrFrom4(a4), plen)
	count := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2
	entries := make([]RIBEntry, 0, count)
	for i := 0; i < count; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		peerIdx := int(binary.BigEndian.Uint16(b[p : p+2]))
		if peerIdx >= nPeers {
			return nil, fmt.Errorf("bgpfeed: RIB entry references peer %d of %d", peerIdx, nPeers)
		}
		p += 6 // peer index + originated time
		attrLen := int(binary.BigEndian.Uint16(b[p : p+2]))
		p += 2
		if err := need(attrLen); err != nil {
			return nil, err
		}
		path, err := parseASPath(b[p : p+attrLen])
		if err != nil {
			return nil, err
		}
		p += attrLen
		entries = append(entries, RIBEntry{Prefix: prefix, PeerIndex: peerIdx, ASPath: path})
	}
	return entries, nil
}

func parseASPath(b []byte) ([]astopo.ASN, error) {
	p := 0
	for p < len(b) {
		if p+2 > len(b) {
			return nil, fmt.Errorf("bgpfeed: truncated attribute header")
		}
		flags := b[p]
		typ := b[p+1]
		p += 2
		var alen int
		if flags&0x10 != 0 { // extended length
			if p+2 > len(b) {
				return nil, fmt.Errorf("bgpfeed: truncated extended attribute length")
			}
			alen = int(binary.BigEndian.Uint16(b[p : p+2]))
			p += 2
		} else {
			if p+1 > len(b) {
				return nil, fmt.Errorf("bgpfeed: truncated attribute length")
			}
			alen = int(b[p])
			p++
		}
		if p+alen > len(b) {
			return nil, fmt.Errorf("bgpfeed: attribute overruns record")
		}
		if typ == bgpAttrASPath {
			return parseASPathValue(b[p : p+alen])
		}
		p += alen
	}
	return nil, fmt.Errorf("bgpfeed: RIB entry has no AS_PATH attribute")
}

func parseASPathValue(b []byte) ([]astopo.ASN, error) {
	var path []astopo.ASN
	p := 0
	for p < len(b) {
		if p+2 > len(b) {
			return nil, fmt.Errorf("bgpfeed: truncated AS_PATH segment")
		}
		segType := b[p]
		n := int(b[p+1])
		p += 2
		if segType != bgpASPathSeqSegment && segType != 1 { // allow AS_SET
			return nil, fmt.Errorf("bgpfeed: unknown AS_PATH segment type %d", segType)
		}
		if p+4*n > len(b) {
			return nil, fmt.Errorf("bgpfeed: AS_PATH segment overruns attribute")
		}
		for i := 0; i < n; i++ {
			path = append(path, astopo.ASN(binary.BigEndian.Uint32(b[p:p+4])))
			p += 4
		}
	}
	return path, nil
}

func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
