package bgpfeed

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/netdb"
)

func tinyView() *View {
	return &View{
		VPs: []astopo.ASN{100, 200},
		Paths: [][]astopo.ASN{
			{100, 10, 1},
			{200, 20, 1},
			{100, 10, 2},
		},
	}
}

func tinyPrefixOf(o astopo.ASN) (netip.Prefix, bool) {
	switch o {
	case 1:
		return netip.MustParsePrefix("192.0.2.0/24"), true
	case 2:
		return netip.MustParsePrefix("198.51.100.0/24"), true
	}
	return netip.Prefix{}, false
}

func TestMRTRoundTrip(t *testing.T) {
	v := tinyView()
	var buf bytes.Buffer
	if err := WriteMRT(&buf, v, tinyPrefixOf, 1600000000); err != nil {
		t.Fatal(err)
	}
	rib, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rib.Peers, v.VPs) {
		t.Errorf("peers = %v, want %v", rib.Peers, v.VPs)
	}
	if len(rib.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(rib.Entries))
	}
	wantPaths := map[string][][]astopo.ASN{
		"192.0.2.0/24":    {{100, 10, 1}, {200, 20, 1}},
		"198.51.100.0/24": {{100, 10, 2}},
	}
	got := map[string][][]astopo.ASN{}
	for _, e := range rib.Entries {
		got[e.Prefix.String()] = append(got[e.Prefix.String()], e.ASPath)
		if e.ASPath[0] != rib.Peers[e.PeerIndex] {
			t.Errorf("entry path %v does not start at its peer AS%d", e.ASPath, rib.Peers[e.PeerIndex])
		}
	}
	if !reflect.DeepEqual(got, wantPaths) {
		t.Errorf("paths = %v, want %v", got, wantPaths)
	}
}

// Golden bytes for the common header and peer table of a minimal dump, so
// the wire format stays RFC-6396-compatible.
func TestMRTGoldenHeader(t *testing.T) {
	v := &View{VPs: []astopo.ASN{65000}, Paths: [][]astopo.ASN{{65000, 7}}}
	var buf bytes.Buffer
	if err := WriteMRT(&buf, v, func(astopo.ASN) (netip.Prefix, bool) {
		return netip.MustParsePrefix("10.0.0.0/8"), true
	}, 0x5F000000); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Common header: ts, type 13, subtype 1, length.
	if ts := binary.BigEndian.Uint32(b[0:4]); ts != 0x5F000000 {
		t.Errorf("timestamp = %#x", ts)
	}
	if typ := binary.BigEndian.Uint16(b[4:6]); typ != 13 {
		t.Errorf("type = %d, want 13 (TABLE_DUMP_V2)", typ)
	}
	if sub := binary.BigEndian.Uint16(b[6:8]); sub != 1 {
		t.Errorf("subtype = %d, want 1 (PEER_INDEX_TABLE)", sub)
	}
	bodyLen := binary.BigEndian.Uint32(b[8:12])
	// collector(4) + viewlen(2) + count(2) + peer(1+4+4+4) = 21
	if bodyLen != 21 {
		t.Errorf("peer table length = %d, want 21", bodyLen)
	}
	// Second record: RIB_IPV4_UNICAST.
	second := b[12+bodyLen:]
	if sub := binary.BigEndian.Uint16(second[6:8]); sub != 2 {
		t.Errorf("second subtype = %d, want 2", sub)
	}
}

func TestMRTRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		// Truncated header.
		{0, 0, 0, 0, 0, 13},
		// Header declaring a body that never arrives.
		{0, 0, 0, 0, 0, 13, 0, 1, 0, 0, 0, 99},
	}
	for i, in := range cases {
		if _, err := ReadMRT(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
	// Unknown MRT types are skipped, not errors.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 0, 99, 0, 1, 0, 0, 0, 2, 0xAA, 0xBB})
	rib, err := ReadMRT(&buf)
	if err != nil {
		t.Fatalf("unknown type not skipped: %v", err)
	}
	if len(rib.Entries) != 0 || len(rib.Peers) != 0 {
		t.Error("unknown type produced data")
	}
}

// End to end: a collector view over a generated Internet survives the MRT
// round trip with every path intact.
func TestMRTOnGeneratedView(t *testing.T) {
	in, view := collectView(t, 0.01425, 6)
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = WriteMRT(&buf, view, func(o astopo.ASN) (netip.Prefix, bool) {
		p, ok := plan.ASPrefix[o]
		return p, ok
	}, 1700000000)
	if err != nil {
		t.Fatal(err)
	}
	rib, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rib.Entries) != len(view.Paths) {
		t.Fatalf("entries = %d, want %d", len(rib.Entries), len(view.Paths))
	}
	// Path multiset must match.
	key := func(p []astopo.ASN) string {
		s := ""
		for _, a := range p {
			s += astopoItoa(a) + " "
		}
		return s
	}
	want := map[string]int{}
	for _, p := range view.Paths {
		want[key(p)]++
	}
	for _, e := range rib.Entries {
		want[key(e.ASPath)]--
	}
	for k, n := range want {
		if n != 0 {
			t.Fatalf("path multiset mismatch at %q (%+d)", k, n)
		}
	}
}

func astopoItoa(a astopo.ASN) string {
	if a == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for a > 0 {
		i--
		buf[i] = byte('0' + a%10)
		a /= 10
	}
	return string(buf[i:])
}
