package bgpsim

import (
	"context"
	"fmt"
	"math/bits"

	"flatnet/internal/astopo"
)

// BatchLanes is the number of origins one batch propagation carries: one
// bit lane per origin in a uint64 word.
const BatchLanes = 64

// BatchReach propagates up to BatchLanes origins at once and returns their
// reachability counts. It exploits the fact that reachability *membership*
// under the Gao–Rexford model does not depend on path lengths, only on the
// route-holding sets of the three propagation stages:
//
//	stage A  customer routes: the upward closure of the origin over
//	         customer→provider edges;
//	stage B  peer routes: one p2p hop from any stage-A holder (or the
//	         origin), landing only on ASes with no customer route;
//	stage C  provider routes: the downward closure of stages A∪B over
//	         provider→customer edges.
//
// Each set is plain monotone set-propagation, so 64 origins ride in one
// word: set[v] bit L means "v holds this stage's route toward origin L".
// Exclusion masks become per-node "allowed" words composed from a
// lane-uniform base mask (the Tier-1/Tier-2 sets, identical for every
// lane) plus sparse per-lane overrides: each origin's own transit
// providers are cleared in that origin's lane, and the origin itself is
// re-allowed in its own lane even when the base mask covers it (a Tier-1
// origin is never excluded from its own propagation) — the bit-lane form
// of core's per-origin scratch overlay.
//
// The engine covers exactly the configurations the all-AS sweeps use:
// plain reachability with an exclusion mask. Policies, leaks, locking,
// and tie-breaking need distances and per-route state, and stay on the
// scalar Simulator; callers fall back to it when those features apply.
//
// A BatchReach is not safe for concurrent use; create one per goroutine
// (they share the frozen graph safely). All buffers are high-water-reused,
// so steady-state calls allocate nothing.
//
// The engine is active-set based: every stage word a call sets is recorded
// in a touched list, and the per-call bookkeeping passes (state reset,
// stage-B gating, stage-C seeding, the final popcount) walk only that list
// instead of all n nodes. Profiling the full-scale sweep showed those O(n)
// passes — not edge relaxation — were ~80% of the runtime; with masked
// kinds the average block reaches a fraction of the graph, so the
// bookkeeping now costs O(reached) per block. For the same reason the
// composed allowed words are kept across calls: while the caller passes
// the same base mask (compared by backing-array identity), each call only
// un-applies the previous call's sparse per-lane overrides instead of
// recomposing all n words.
type BatchReach struct {
	g *astopo.Graph
	n int

	// ctx, when non-nil, aborts an in-flight Counts between stages (set by
	// CountsCtx, nil otherwise).
	ctx context.Context

	allowed []uint64 // per-node allowed lanes for the current call
	up      []uint64 // origin ∪ customer-route holders (stage A)
	peer    []uint64 // peer-route holders (stage B)
	down    []uint64 // provider-route holders (stage C)

	queue []int32 // shared worklist for the stage A/C fixed points
	inq   []bool  // worklist membership, cleared on pop

	touched []int32 // nodes with any stage word set this call
	intouch []bool  // touched membership, cleared by the next call's reset

	// allowed-word reuse across calls: basePtr/baseLen identify the base
	// mask allowed was composed from, overrides lists the words the last
	// call's per-lane origin/provider edits diverged from it.
	basePtr   *bool
	baseLen   int
	overrides []int32
}

// NewBatchReach returns a batch engine for g. The graph is frozen by the
// call and must not be mutated afterwards.
func NewBatchReach(g *astopo.Graph) *BatchReach {
	g.Freeze()
	n := g.NumASes()
	return &BatchReach{
		g:       g,
		n:       n,
		allowed: make([]uint64, n),
		up:      make([]uint64, n),
		peer:    make([]uint64, n),
		down:    make([]uint64, n),
		inq:     make([]bool, n),
		intouch: make([]bool, n),
		baseLen: -1, // no base composed yet (distinct from a nil base)
	}
}

// Counts computes, for every origin in origins (dense graph indexes, at
// most BatchLanes of them), the number of other ASes that receive its
// announcement, writing the counts to out[0:len(origins)].
//
// base is the lane-uniform exclusion mask (nil excludes nothing); it must
// not mask differently per origin. Each origin is always re-allowed in its
// own lane regardless of base. When maskProviders is set, each origin's
// transit providers are additionally excluded in that origin's lane —
// together these reproduce core's Mask(o, kind) semantics for every kind.
//
// The result for each lane is bit-for-bit identical to the scalar
// Simulator.ReachabilityCount over the equivalent per-origin mask.
func (b *BatchReach) Counts(origins []int32, base []bool, maskProviders bool, out []int) error {
	g, n := b.g, b.n
	if len(origins) == 0 {
		return nil
	}
	if len(origins) > BatchLanes {
		return fmt.Errorf("bgpsim: %d origins exceed the %d-lane batch width", len(origins), BatchLanes)
	}
	if len(out) < len(origins) {
		return fmt.Errorf("bgpsim: out has %d entries for %d origins", len(out), len(origins))
	}
	if base != nil && len(base) != n {
		return fmt.Errorf("bgpsim: base mask has %d entries, graph has %d ASes", len(base), n)
	}

	// Compose the allowed words: lane-uniform base, then per-lane
	// overrides for each origin. While the caller keeps passing the same
	// base (identified by its backing array — sweeps reuse one mask slice
	// per kind), the lane-uniform part survives from the previous call and
	// only that call's sparse overrides are un-applied; the base is
	// recomposed in full only when it changes.
	allowed := b.allowed
	sameBase := base == nil && b.baseLen == 0 ||
		base != nil && len(base) > 0 && b.basePtr == &base[0] && b.baseLen == len(base)
	if sameBase {
		for _, i := range b.overrides {
			if base != nil && base[i] {
				allowed[i] = 0
			} else {
				allowed[i] = ^uint64(0)
			}
		}
	} else {
		if base == nil {
			for i := range allowed {
				allowed[i] = ^uint64(0)
			}
			b.basePtr, b.baseLen = nil, 0
		} else {
			for i, m := range base {
				if m {
					allowed[i] = 0
				} else {
					allowed[i] = ^uint64(0)
				}
			}
			b.basePtr, b.baseLen = &base[0], len(base)
		}
	}
	for _, o := range origins {
		if o < 0 || int(o) >= n {
			b.overrides = b.overrides[:0]
			return fmt.Errorf("bgpsim: origin index %d out of range [0,%d)", o, n)
		}
	}
	overrides := b.overrides[:0]
	for lane, o := range origins {
		bit := uint64(1) << lane
		allowed[o] |= bit // the origin is never excluded from its own lane
		overrides = append(overrides, o)
		if maskProviders {
			for _, p := range g.ProvidersOf(int(o)) {
				allowed[p] &^= bit
				overrides = append(overrides, p)
			}
		}
	}
	b.overrides = overrides

	// Reset only the nodes the previous call touched; a fresh engine's
	// arrays are already zero.
	up, peer, down := b.up, b.peer, b.down
	intouch := b.intouch
	for _, v := range b.touched {
		up[v], peer[v], down[v] = 0, 0, 0
		intouch[v] = false
	}
	touched := b.touched[:0]

	// ---- Stage A: upward closure over customer→provider edges ----
	// The worklist is SPFA-style: a popped node relays its full current
	// word; nodes re-enter when they gain new bits. Words only ever gain
	// bits, so the fixed point is reached after O(set-bit insertions).
	if err := b.canceled(); err != nil {
		b.touched = touched
		return err
	}
	queue := b.queue[:0]
	inq := b.inq
	for lane, o := range origins {
		up[o] |= uint64(1) << lane
		if !intouch[o] {
			intouch[o] = true
			touched = append(touched, o)
		}
		if !inq[o] {
			inq[o] = true
			queue = append(queue, o)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		inq[u] = false
		w := up[u]
		for _, p := range g.ProvidersOf(int(u)) {
			if add := w & allowed[p] &^ up[p]; add != 0 {
				up[p] |= add
				if !intouch[p] {
					intouch[p] = true
					touched = append(touched, p)
				}
				if !inq[p] {
					inq[p] = true
					queue = append(queue, p)
				}
			}
		}
	}

	// ---- Stage B: one p2p hop, gated on "no customer route yet" ----
	// touched is exactly the nonzero-up set here: scan it, not all n nodes.
	if err := b.canceled(); err != nil {
		b.touched = touched
		return err
	}
	aEnd := len(touched)
	for _, u := range touched[:aEnd] {
		w := up[u]
		for _, pe := range g.PeersOf(int(u)) {
			peer[pe] |= w
			if !intouch[pe] {
				intouch[pe] = true
				touched = append(touched, pe)
			}
		}
	}
	for _, v := range touched {
		peer[v] &= allowed[v] &^ up[v]
	}

	// ---- Stage C: downward closure over provider→customer edges ----
	// Seeds are the up∪peer holders — a subset of touched; the snapshot
	// taken by the range below is safe because stage C only ever adds
	// down-only nodes, which can never seed.
	if err := b.canceled(); err != nil {
		b.touched = touched
		return err
	}
	queue = queue[:0]
	for _, u := range touched[:len(touched)] {
		w := up[u] | peer[u]
		if w == 0 {
			continue
		}
		for _, c := range g.CustomersOf(int(u)) {
			if add := w & allowed[c] &^ (up[c] | peer[c] | down[c]); add != 0 {
				down[c] |= add
				if !intouch[c] {
					intouch[c] = true
					touched = append(touched, c)
				}
				if !inq[c] {
					inq[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		inq[u] = false
		w := down[u]
		for _, c := range g.CustomersOf(int(u)) {
			if add := w & allowed[c] &^ (up[c] | peer[c] | down[c]); add != 0 {
				down[c] |= add
				if !intouch[c] {
					intouch[c] = true
					touched = append(touched, c)
				}
				if !inq[c] {
					inq[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	b.queue = queue // keep the high-water backing array
	b.touched = touched

	// ---- Count ----
	// Every lane's origin bit is set in up[origin]; subtract it at the
	// end rather than carrying a separate origin word. Only touched nodes
	// can hold bits.
	for i := range origins {
		out[i] = 0
	}
	for _, v := range touched {
		w := up[v] | peer[v] | down[v]
		for w != 0 {
			out[bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
	for i := range origins {
		out[i]--
	}
	return nil
}

// CountsCtx is Counts with cancellation: the batch propagation is aborted
// between stages once ctx is done, returning ctx.Err().
func (b *BatchReach) CountsCtx(ctx context.Context, origins []int32, base []bool, maskProviders bool, out []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.ctx = ctx
	defer func() { b.ctx = nil }()
	return b.Counts(origins, base, maskProviders, out)
}

// canceled returns the in-flight context's error, or nil when no context
// is attached or it is still live.
func (b *BatchReach) canceled() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}
