package bgpsim

import (
	"math/rand"
	"testing"

	"flatnet/internal/astopo"
)

// scalarMask builds the per-origin exclusion mask equivalent to what
// BatchReach composes for one lane: base, minus the origin, plus (when
// maskProviders) the origin's transit providers.
func scalarMask(g *astopo.Graph, base []bool, o int, maskProviders bool) []bool {
	if base == nil && !maskProviders {
		return nil
	}
	mask := make([]bool, g.NumASes())
	copy(mask, base)
	mask[o] = false
	if maskProviders {
		for _, p := range g.ProvidersOf(o) {
			mask[p] = true
		}
	}
	return mask
}

// The batch engine must return, for every origin and every mask shape,
// exactly the count the scalar Simulator computes over the equivalent
// per-origin mask.
func TestBatchCountsMatchScalar(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()

		var base []bool
		if rng.Intn(3) > 0 {
			base = make([]bool, n)
			for i := range base {
				if rng.Intn(5) == 0 {
					base[i] = true
				}
			}
		}
		maskProviders := rng.Intn(2) == 1

		br := NewBatchReach(g)
		sim := New(g)
		out := make([]int, BatchLanes)
		origins := make([]int32, 0, BatchLanes)
		for lo := 0; lo < n; lo += BatchLanes {
			hi := lo + BatchLanes
			if hi > n {
				hi = n
			}
			origins = origins[:0]
			for i := lo; i < hi; i++ {
				origins = append(origins, int32(i))
			}
			if err := br.Counts(origins, base, maskProviders, out); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for k, o := range origins {
				want, err := sim.ReachabilityCount(Config{
					Origin:  g.ASNAt(int(o)),
					Exclude: scalarMask(g, base, int(o), maskProviders),
				})
				if err != nil {
					t.Fatalf("seed %d origin %d: %v", seed, o, err)
				}
				if out[k] != want {
					t.Fatalf("seed %d origin AS%d (maskProviders=%v, base=%v): batch=%d scalar=%d",
						seed, g.ASNAt(int(o)), maskProviders, base != nil, out[k], want)
				}
			}
		}
	}
}

func TestBatchCountsValidation(t *testing.T) {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(1, 2, astopo.P2C)
	g.MustAddLink(2, 3, astopo.P2C)
	br := NewBatchReach(g)
	out := make([]int, BatchLanes+1)

	if err := br.Counts(nil, nil, true, nil); err != nil {
		t.Errorf("empty origins: %v", err)
	}
	tooMany := make([]int32, BatchLanes+1)
	if err := br.Counts(tooMany, nil, true, out); err == nil {
		t.Error("expected error for > BatchLanes origins")
	}
	if err := br.Counts([]int32{0, 1}, nil, true, out[:1]); err == nil {
		t.Error("expected error for short out")
	}
	if err := br.Counts([]int32{0}, make([]bool, 1), true, out); err == nil {
		t.Error("expected error for wrong base length")
	}
	if err := br.Counts([]int32{int32(g.NumASes())}, nil, true, out); err == nil {
		t.Error("expected error for out-of-range origin")
	}
}

// A steady-state batch block must not allocate: all word buffers and the
// worklist are high-water-reused across calls.
func TestBatchCountsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's shadow allocations break AllocsPerRun")
	}
	rng := rand.New(rand.NewSource(42))
	g := randomTopology(rng)
	g.Freeze()
	n := g.NumASes()
	base := make([]bool, n)
	base[n-1] = true

	br := NewBatchReach(g)
	origins := make([]int32, 0, BatchLanes)
	for i := 0; i < n && i < BatchLanes; i++ {
		origins = append(origins, int32(i))
	}
	out := make([]int, len(origins))
	// Warm the worklist's high-water capacity.
	if err := br.Counts(origins, base, true, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := br.Counts(origins, base, true, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch block allocated %.1f times per run, want 0", allocs)
	}
}
