package bgpsim

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"flatnet/internal/astopo"
)

// BatchLeak replays up to BatchLanes leakers per propagation against one
// LeakSweep snapshot: bit lane k of every word carries leaker k's trial.
//
// The scalar LeakSweep already caches everything leaker-invariant (the
// leak-free pre-pass, the tied-best DAG, its path counts), but each trial
// still pays a full propagation. The key observation that lets 64 trials
// share ONE propagation is that the joint origin+leaker propagation is a
// bucket schedule over (class, distance) pairs — classes in preference
// order, distances ascending, exactly the scalar engine's settle order —
// and the buckets are GLOBAL: which bucket a route arrives in depends only
// on its class and length, never on which leaker produced it. So the
// engine runs one synchronized bucket sweep where every per-node quantity
// is a word over leaker lanes:
//
//	done[v]   lanes whose class and length are decided at v;
//	legit[v]  settled lanes with a tied-best route chaining to the origin;
//	leak[v]   settled lanes with a tied-best route through the leak.
//
// Arrivals are (node, legit-word, leak-word) pushes bucketed by distance.
// A bucket's arrivals are merged (tied flags OR together, the paper's
// keep-all-ties rule) and then settled against ^done — the word-wise form
// of the scalar dial queue's min-distance tent with stale-entry skipping.
// Per-leaker differences enter only as per-node words composed once per
// batch from the cached snapshot:
//
//	accept[v]   lane-uniform exclusion base, minus lane k at leaker k
//	            (a leaker originates in its own lane and takes no routes);
//	blocked[v]  lanes whose BGP loop detection rejects every leaked copy
//	            at v (the pre-pass path-count argument of the scalar
//	            engine, run once per lane over the cached DAG);
//
// plus each leaker's seed, injected at its cached leak-free distance.
// Peer locking stays lane-uniform because a locked node's acceptance
// depends only on the sender being the origin.
//
// Trial results are bit-for-bit identical to LeakSweep.Trial for every
// configuration except BreakTies: breaking ties keeps the first tied
// route in the scalar engine's push order, an order that differs per lane
// and cannot be replayed word-wise, so those configs are rejected here
// and stay on the scalar path.
//
// A BatchLeak is not safe for concurrent use; create one per goroutine
// (they share the frozen graph and sweep snapshots safely). All buffers
// are high-water-reused, so steady-state calls allocate nothing.
type BatchLeak struct {
	g *astopo.Graph
	n int

	// ctx, when non-nil, aborts an in-flight batch between distance
	// buckets (set by TrialsCtx, nil otherwise).
	ctx context.Context

	acceptW  []uint64 // lanes that may install routes at each node
	blockedW []uint64 // lanes whose loop detection strips leaked copies
	leakerAt []uint64 // bit k set at leaker k's node
	done     []uint64 // settled lanes
	legit    []uint64 // settled lanes with a legitimate tied-best route
	leak     []uint64 // settled lanes with a leaked tied-best route

	// Per-bucket arrival accumulators, nonzero only while a bucket is
	// being processed.
	curLegit []uint64
	curLeak  []uint64
	touched  []int32

	up, peer, down bucketedPushes

	// Loop-detection scratch: reach/reachSet for the per-lane backward
	// pass, pos[v] = v's index in the snapshot's distance order (cached
	// per snapshot, rebuilt when the engine switches sweeps). The cache
	// key is the (pointer, generation) pair: released sweeps recycle the
	// same sweepBase struct for new configurations, so pointer identity
	// alone would accept a stale index.
	reach    []float64
	reachSet []int32
	pos      []int32
	posBase  *sweepBase
	posGen   uint64

	lanes   [BatchLanes]int32 // leaker dense index per active lane
	laneOut [BatchLanes]int   // output slot per active lane
	counts  [BatchLanes]int
	wsums   [BatchLanes]float64

	// lastLanes is the lane count of the most recently finished block; it
	// scopes detoured() to blocks whose lane arrays are still live (a
	// block with zero lanes leaves stale leak words behind and must answer
	// every probe false).
	lastLanes int
}

// pushT is one bucketed arrival: the lanes in legit|leak reach node at the
// bucket's distance with the corresponding route-source flags.
type pushT struct {
	node  int32
	legit uint64
	leak  uint64
}

// bucketedPushes is a dial queue of arrivals keyed by distance. Buckets
// keep their high-water capacity across runs.
type bucketedPushes struct {
	buckets [][]pushT
	maxd    int
}

func (bp *bucketedPushes) add(d int, node int32, legit, leak uint64) {
	for d >= len(bp.buckets) {
		bp.buckets = append(bp.buckets, nil)
	}
	bp.buckets[d] = append(bp.buckets[d], pushT{node: node, legit: legit, leak: leak})
	if d > bp.maxd {
		bp.maxd = d
	}
}

func (bp *bucketedPushes) reset() {
	for i := range bp.buckets {
		bp.buckets[i] = bp.buckets[i][:0]
	}
	bp.maxd = 0
}

// NewBatchLeak returns a batch leak engine for g. The graph is frozen by
// the call and must not be mutated afterwards.
func NewBatchLeak(g *astopo.Graph) *BatchLeak {
	g.Freeze()
	n := g.NumASes()
	return &BatchLeak{
		g:        g,
		n:        n,
		acceptW:  make([]uint64, n),
		blockedW: make([]uint64, n),
		leakerAt: make([]uint64, n),
		done:     make([]uint64, n),
		legit:    make([]uint64, n),
		leak:     make([]uint64, n),
		curLegit: make([]uint64, n),
		curLeak:  make([]uint64, n),
		reach:    make([]float64, n),
		pos:      make([]int32, n),
		posBase:  nil,
	}
}

// batchLeakPool recycles engines across sweeps of the same graph: the
// serving layer and the experiment drivers run many sweeps (one per
// origin×scenario) over one topology, and an engine's scratch is sized by
// the graph alone. A pooled engine built for a different graph is simply
// dropped.
var batchLeakPool sync.Pool

func getBatchLeak(g *astopo.Graph) *BatchLeak {
	if v := batchLeakPool.Get(); v != nil {
		if bl := v.(*BatchLeak); bl.g == g {
			return bl
		}
	}
	return NewBatchLeak(g)
}

func putBatchLeak(bl *BatchLeak) { batchLeakPool.Put(bl) }

// Trials replays every leaker against sw's snapshot, BatchLanes per
// propagation, and writes one LeakTrial per leaker to out[0:len(leakers)]
// in input order. weights may be nil; otherwise it must have one entry
// per dense graph index. Results are identical to calling LeakSweep.Trial
// per leaker. Configurations with BreakTies set are rejected (see the
// type comment); callers route those through the scalar path.
func (bl *BatchLeak) Trials(sw *LeakSweep, leakers []astopo.ASN, weights []float64, out []LeakTrial) error {
	b := sw.base
	if b.g != bl.g {
		return fmt.Errorf("bgpsim: BatchLeak built for a different graph than the sweep")
	}
	if b.cfg.BreakTies {
		return fmt.Errorf("bgpsim: BatchLeak does not support BreakTies configs (scalar tie order is per-lane)")
	}
	if len(out) < len(leakers) {
		return fmt.Errorf("bgpsim: out has %d entries for %d leakers", len(out), len(leakers))
	}
	if weights != nil && len(weights) != bl.n {
		return fmt.Errorf("bgpsim: weights have %d entries, graph has %d ASes", len(weights), bl.n)
	}
	for lo := 0; lo < len(leakers); lo += BatchLanes {
		hi := lo + BatchLanes
		if hi > len(leakers) {
			hi = len(leakers)
		}
		if err := bl.block(b, leakers[lo:hi], weights, out[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// TrialsCtx is Trials with cancellation: the batch propagation is aborted
// between distance buckets once ctx is done, returning ctx.Err().
func (bl *BatchLeak) TrialsCtx(ctx context.Context, sw *LeakSweep, leakers []astopo.ASN, weights []float64, out []LeakTrial) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	bl.ctx = ctx
	defer func() { bl.ctx = nil }()
	return bl.Trials(sw, leakers, weights, out)
}

// detoured reports whether, in the most recently finished block, the trial
// written to out[slot] detoured the given node (dense index) through the
// leak. Masking out leakerAt keeps the answer aligned with the scalar
// reduction, which never counts a leaker's own lane bit at its own node;
// reading another leaker's node is safe because only that node's own lane
// is masked. A block that assigned zero lanes leaves lastLanes at 0, so
// every probe against its stale leak words answers false.
func (bl *BatchLeak) detoured(slot int, node int32) bool {
	for k := 0; k < bl.lastLanes; k++ {
		if bl.laneOut[k] == slot {
			return (bl.leak[node]&^bl.leakerAt[node])>>k&1 == 1
		}
	}
	return false
}

// block runs one ≤BatchLanes batch: validation, lane assignment, the
// three-stage word-wise propagation, and the per-lane detour reduction.
func (bl *BatchLeak) block(b *sweepBase, leakers []astopo.ASN, weights []float64, out []LeakTrial) error {
	cfg := b.cfg
	g, n := bl.g, bl.n

	// ---- Lane assignment ----
	// Leakers holding no legitimate route have nothing to leak (their
	// trial is all-zero, matching the scalar path) and get no lane;
	// hijacks forge an origination and always propagate.
	nlanes := 0
	bl.lastLanes = 0
	for i, leaker := range leakers {
		li, ok := g.Index(leaker)
		if !ok {
			return fmt.Errorf("bgpsim: leaker AS%d not in graph", leaker)
		}
		if leaker == cfg.Origin {
			return fmt.Errorf("bgpsim: leaker equals origin AS%d", cfg.Origin)
		}
		if cfg.Exclude != nil && cfg.Exclude[li] {
			return fmt.Errorf("bgpsim: leaker AS%d is excluded by the mask", leaker)
		}
		out[i] = LeakTrial{Leaker: leaker}
		if !cfg.Hijack && b.class[li] == ClassNone {
			continue // nothing to leak
		}
		bl.lanes[nlanes] = int32(li)
		bl.laneOut[nlanes] = i
		nlanes++
	}
	if nlanes == 0 {
		return nil
	}
	bl.lastLanes = nlanes
	allLanes := ^uint64(0) >> (BatchLanes - nlanes)

	// ---- Per-node words from the cached snapshot ----
	for i := 0; i < n; i++ {
		bl.blockedW[i] = 0
		bl.leakerAt[i] = 0
		bl.done[i] = 0
		bl.legit[i] = 0
		bl.leak[i] = 0
	}
	if cfg.Exclude == nil {
		for i := range bl.acceptW {
			bl.acceptW[i] = allLanes
		}
	} else {
		for i, m := range cfg.Exclude {
			if m {
				bl.acceptW[i] = 0
			} else {
				bl.acceptW[i] = allLanes
			}
		}
	}
	origin := b.origin
	bl.acceptW[origin] = 0
	bl.done[origin] = allLanes
	bl.legit[origin] = allLanes
	for k := 0; k < nlanes; k++ {
		li := bl.lanes[k]
		bit := uint64(1) << k
		bl.acceptW[li] &^= bit
		bl.leakerAt[li] |= bit
		bl.done[li] |= bit
		bl.leak[li] |= bit
		if !cfg.Hijack {
			bl.blockedPass(b, li, bit)
		}
	}

	// ---- Seeds ----
	// The origin's announcement is lane-uniform: one legit push per
	// (policy-allowed) neighbor carrying every lane. Each leaker exports
	// to all its neighbors in its own lane at its cached leak-free
	// length (zero for hijacks, which forge an origination).
	bl.up.reset()
	bl.peer.reset()
	bl.down.reset()
	locking := cfg.Locking
	seed := func(from int32, d int, lg, lk uint64, policy *Policy) {
		fromOrigin := from == origin
		for _, p := range g.ProvidersOf(int(from)) {
			if policy != nil && !policy.allows(p) {
				continue
			}
			if locking != nil && locking[p] && !fromOrigin {
				continue
			}
			plg := lg & bl.acceptW[p]
			plk := lk & bl.acceptW[p] &^ bl.blockedW[p]
			if plg|plk != 0 {
				bl.up.add(d, p, plg, plk)
			}
		}
		for _, pe := range g.PeersOf(int(from)) {
			if policy != nil && !policy.allows(pe) {
				continue
			}
			if locking != nil && locking[pe] && !fromOrigin {
				continue
			}
			plg := lg & bl.acceptW[pe]
			plk := lk & bl.acceptW[pe] &^ bl.blockedW[pe]
			if plg|plk != 0 {
				bl.peer.add(d, pe, plg, plk)
			}
		}
		for _, c := range g.CustomersOf(int(from)) {
			if policy != nil && !policy.allows(c) {
				continue
			}
			if locking != nil && locking[c] && !fromOrigin {
				continue
			}
			plg := lg & bl.acceptW[c]
			plk := lk & bl.acceptW[c] &^ bl.blockedW[c]
			if plg|plk != 0 {
				bl.down.add(d, c, plg, plk)
			}
		}
	}
	seed(origin, 1, allLanes, 0, cfg.Policy)
	for k := 0; k < nlanes; k++ {
		d0 := 0
		if !cfg.Hijack {
			d0 = int(b.dist[bl.lanes[k]])
		}
		seed(bl.lanes[k], d0+1, 0, uint64(1)<<k, nil)
	}

	// ---- Stage A: customer routes, ascending length ----
	// A settling node relays to its providers (growing this stage) and
	// contributes its peer and customer arrivals for the later stages at
	// the settled length plus one — the word-wise form of the scalar
	// engine's stage B/C seeding loops over customer-classed nodes.
	err := bl.runStage(&bl.up, func(v int32, lg, lk uint64, d int) {
		for _, p := range g.ProvidersOf(int(v)) {
			if locking != nil && locking[p] {
				continue
			}
			plg := lg & bl.acceptW[p]
			plk := lk & bl.acceptW[p] &^ bl.blockedW[p]
			if plg|plk != 0 {
				bl.up.add(d+1, p, plg, plk)
			}
		}
		for _, pe := range g.PeersOf(int(v)) {
			if locking != nil && locking[pe] {
				continue
			}
			plg := lg & bl.acceptW[pe]
			plk := lk & bl.acceptW[pe] &^ bl.blockedW[pe]
			if plg|plk != 0 {
				bl.peer.add(d+1, pe, plg, plk)
			}
		}
		for _, c := range g.CustomersOf(int(v)) {
			if locking != nil && locking[c] {
				continue
			}
			plg := lg & bl.acceptW[c]
			plk := lk & bl.acceptW[c] &^ bl.blockedW[c]
			if plg|plk != 0 {
				bl.down.add(d+1, c, plg, plk)
			}
		}
	})
	if err != nil {
		return err
	}

	// ---- Stage B: peer routes ----
	// One p2p hop, already bucketed by sender length: the first bucket a
	// lane arrives in is its shortest peer route, later buckets are
	// masked by done — the tent/min-distance logic of the scalar stage.
	// Peer-classed nodes export only to customers.
	err = bl.runStage(&bl.peer, func(v int32, lg, lk uint64, d int) {
		for _, c := range g.CustomersOf(int(v)) {
			if locking != nil && locking[c] {
				continue
			}
			plg := lg & bl.acceptW[c]
			plk := lk & bl.acceptW[c] &^ bl.blockedW[c]
			if plg|plk != 0 {
				bl.down.add(d+1, c, plg, plk)
			}
		}
	})
	if err != nil {
		return err
	}

	// ---- Stage C: provider routes, ascending length ----
	err = bl.runStage(&bl.down, func(v int32, lg, lk uint64, d int) {
		for _, c := range g.CustomersOf(int(v)) {
			if locking != nil && locking[c] {
				continue
			}
			plg := lg & bl.acceptW[c]
			plk := lk & bl.acceptW[c] &^ bl.blockedW[c]
			if plg|plk != 0 {
				bl.down.add(d+1, c, plg, plk)
			}
		}
	})
	if err != nil {
		return err
	}

	// ---- Reduction ----
	// detoured(k) = nodes with a leaked tied-best route in lane k, minus
	// the leaker itself; the origin holds no leak bit by construction but
	// is skipped for symmetry with the scalar count.
	for k := 0; k < nlanes; k++ {
		bl.counts[k] = 0
		bl.wsums[k] = 0
	}
	for v := 0; v < n; v++ {
		if int32(v) == origin {
			continue
		}
		w := bl.leak[v] &^ bl.leakerAt[v]
		if w == 0 {
			continue
		}
		if weights == nil {
			for w != 0 {
				bl.counts[bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		} else {
			wv := weights[v]
			for w != 0 {
				k := bits.TrailingZeros64(w)
				bl.counts[k]++
				bl.wsums[k] += wv
				w &= w - 1
			}
		}
	}
	denom := float64(g.NumASes() - 2)
	for k := 0; k < nlanes; k++ {
		tr := &out[bl.laneOut[k]]
		tr.DetouredFrac = float64(bl.counts[k]) / denom
		if weights != nil {
			tr.DetouredUserFrac = bl.wsums[k]
		}
	}
	return nil
}

// runStage drains one stage's dial queue: per ascending bucket, arrivals
// are merged into the cur accumulators (tied flags OR), unsettled lanes
// settle, and expand relays the settled lanes onward. The cur arrays are
// zero outside bucket processing, including after a cancellation.
func (bl *BatchLeak) runStage(bp *bucketedPushes, expand func(v int32, lg, lk uint64, d int)) error {
	for d := 0; d <= bp.maxd; d++ {
		if bl.ctx != nil && bl.ctx.Err() != nil {
			for i := range bl.curLegit {
				bl.curLegit[i] = 0
				bl.curLeak[i] = 0
			}
			return bl.ctx.Err()
		}
		if d >= len(bp.buckets) || len(bp.buckets[d]) == 0 {
			continue
		}
		touched := bl.touched[:0]
		for _, e := range bp.buckets[d] {
			if bl.curLegit[e.node]|bl.curLeak[e.node] == 0 {
				touched = append(touched, e.node)
			}
			bl.curLegit[e.node] |= e.legit
			bl.curLeak[e.node] |= e.leak
		}
		for _, v := range touched {
			lg, lk := bl.curLegit[v], bl.curLeak[v]
			bl.curLegit[v], bl.curLeak[v] = 0, 0
			s := (lg | lk) &^ bl.done[v]
			if s == 0 {
				continue
			}
			bl.done[v] |= s
			lg &= s
			lk &= s
			bl.legit[v] |= lg
			bl.leak[v] |= lk
			expand(v, lg, lk, d)
		}
		bl.touched = touched[:0]
	}
	return nil
}

// blockedPass marks, in lane bit of blockedW, the ASes on every tied-best
// path from the leaker toward the origin — the same path-count argument
// as the scalar blockedOnAllPaths, restricted to the leaker's ancestry:
// reach flows only toward strictly shorter best lengths, so the backward
// pass starts at the leaker's position in the cached distance order and
// only nodes it touches can satisfy the all-paths product test. The
// floating-point operations performed are exactly the scalar pass's (the
// skipped iterations all carry zero reach), so the resulting set is
// bit-for-bit identical.
func (bl *BatchLeak) blockedPass(b *sweepBase, li int32, bit uint64) {
	if bl.posBase != b || bl.posGen != b.gen {
		for i := range bl.pos {
			bl.pos[i] = -1
		}
		for i, v := range b.order {
			bl.pos[v] = int32(i)
		}
		bl.posBase = b
		bl.posGen = b.gen
	}
	reach := bl.reach
	set := bl.reachSet[:0]
	reach[li] = 1
	set = append(set, li)
	order := b.order
	for i := bl.pos[li]; i >= 0; i-- {
		v := order[i]
		rv := reach[v]
		if rv == 0 {
			continue
		}
		for _, u := range b.csr.at(v) {
			if reach[u] == 0 {
				set = append(set, u)
			}
			reach[u] += rv
		}
	}
	if total := b.counts[li]; total > 0 {
		for _, v := range set {
			if v == li {
				continue
			}
			if p := reach[v] * b.counts[v]; p > 0 && p >= total*(1-1e-9) {
				bl.blockedW[v] |= bit
			}
		}
	}
	for _, v := range set {
		reach[v] = 0
	}
	bl.reachSet = set[:0]
}
