package bgpsim

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"flatnet/internal/astopo"
)

// randomTiers draws random Tier-1/Tier-2 sets for scenario construction:
// the provider-free top ASes as Tier-1 plus a random sprinkle of others as
// Tier-2, so every LeakScenario exercises non-trivial locking/policy sets
// on some seeds and degenerate (empty) ones on others.
func randomTiers(g *astopo.Graph, rng *rand.Rand) (tier1, tier2 astopo.ASSet) {
	var t1, t2 []astopo.ASN
	for _, a := range g.ASes() {
		if len(g.Providers(a)) == 0 {
			t1 = append(t1, a)
		} else if rng.Intn(3) == 0 {
			t2 = append(t2, a)
		}
	}
	return astopo.NewASSet(t1...), astopo.NewASSet(t2...)
}

// The batch engine must produce, lane for lane, exactly the LeakTrial the
// scalar sweep computes — detoured counts and user-weighted fractions —
// across every §8.2 scenario, hijacks included, with leakers of every
// shape (provider-free top ASes, stub ASes, ASes the policy leaves
// routeless). BreakTies configs must be refused by the engine and keep
// matching through the public Trials routing (which falls back to scalar).
func TestBatchLeakMatchesScalar(t *testing.T) {
	for seed := int64(0); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		tier1, tier2 := randomTiers(g, rng)

		var weights []float64
		if rng.Intn(2) == 1 {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = rng.Float64()
			}
		}
		leakers := make([]astopo.ASN, 0, n-1)
		for _, a := range all {
			if a != origin {
				leakers = append(leakers, a)
			}
		}

		bl := NewBatchLeak(g)
		for _, scen := range LeakScenarios() {
			cfg := ScenarioConfig(g, origin, tier1, tier2, scen)
			cfg.Hijack = rng.Intn(3) == 0
			sweep, err := NewLeakSweep(g, cfg)
			if err != nil {
				t.Fatalf("seed %d scenario %v: %v", seed, scen, err)
			}
			got := make([]LeakTrial, len(leakers))
			if err := bl.Trials(sweep, leakers, weights, got); err != nil {
				t.Fatalf("seed %d scenario %v: batch: %v", seed, scen, err)
			}
			for i, l := range leakers {
				want, err := sweep.Trial(l, weights)
				if err != nil {
					t.Fatalf("seed %d scenario %v leaker AS%d: %v", seed, scen, l, err)
				}
				if got[i] != want {
					t.Fatalf("seed %d scenario %v (hijack=%v) leaker AS%d: batch=%+v scalar=%+v",
						seed, scen, cfg.Hijack, l, got[i], want)
				}
			}

			// BreakTies is inherently scalar: the engine refuses it and the
			// public Trials path must route around it, still trial-exact.
			cfg.BreakTies = true
			tieSweep, err := NewLeakSweep(g, cfg)
			if err != nil {
				t.Fatalf("seed %d scenario %v: %v", seed, scen, err)
			}
			if err := bl.Trials(tieSweep, leakers, weights, got); err == nil {
				t.Fatalf("seed %d scenario %v: batch engine accepted a BreakTies sweep", seed, scen)
			}
			if seed%16 == 0 {
				big := padLeakers(leakers, BatchLanes)
				res, err := tieSweep.Trials(context.Background(), big, weights)
				if err != nil {
					t.Fatalf("seed %d scenario %v: tie Trials: %v", seed, scen, err)
				}
				ref := tieSweep.Clone()
				for i, l := range big {
					want, err := ref.Trial(l, weights)
					if err != nil {
						t.Fatalf("seed %d scenario %v leaker AS%d: %v", seed, scen, l, err)
					}
					if res[i] != want {
						t.Fatalf("seed %d scenario %v (ties) leaker AS%d: Trials=%+v Trial=%+v",
							seed, scen, l, res[i], want)
					}
				}
			}
		}
	}
}

// padLeakers repeats leakers (duplicates are independent lanes) until the
// list spans at least min entries, forcing the batch routing threshold.
func padLeakers(leakers []astopo.ASN, min int) []astopo.ASN {
	out := append([]astopo.ASN(nil), leakers...)
	for i := 0; len(out) < min; i++ {
		out = append(out, leakers[i%len(leakers)])
	}
	return out
}

// The public Trials batch routing (>= BatchLanes leakers, multi-block,
// duplicate lanes) must agree with the scalar per-leaker path.
func TestLeakTrialsBatchRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomTopology(rng)
	g.Freeze()
	all := g.ASes()
	origin := all[0]
	var leakers []astopo.ASN
	for _, a := range all {
		if a != origin {
			leakers = append(leakers, a)
		}
	}
	// Two-plus blocks with duplicates spread across block boundaries.
	big := padLeakers(leakers, 2*BatchLanes+17)
	sweep, err := NewLeakSweep(g, Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Trials(context.Background(), big, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := sweep.Clone()
	for i, l := range big {
		want, err := ref.Trial(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("leaker %d (AS%d): batch=%+v scalar=%+v", i, l, got[i], want)
		}
	}
}

// WithHijack shares the pre-pass snapshot; its trials must equal a sweep
// built from scratch with the Hijack flag set.
func TestWithHijackMatchesFreshSweep(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		var leakers []astopo.ASN
		for _, a := range all {
			if a != origin {
				leakers = append(leakers, a)
			}
		}
		leakSweep, err := NewLeakSweep(g, Config{Origin: origin})
		if err != nil {
			t.Fatal(err)
		}
		if leakSweep.WithHijack(false) != leakSweep {
			t.Fatal("WithHijack(false) on a leak sweep should return the receiver")
		}
		hijackSweep, err := NewLeakSweep(g, Config{Origin: origin, Hijack: true})
		if err != nil {
			t.Fatal(err)
		}
		shared := leakSweep.WithHijack(true)
		for _, l := range leakers {
			want, err := hijackSweep.Trial(l, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := shared.Trial(l, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d leaker AS%d: WithHijack=%+v fresh=%+v", seed, l, got, want)
			}
		}
	}
}

func TestBatchLeakValidation(t *testing.T) {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(1, 2, astopo.P2C)
	g.MustAddLink(2, 3, astopo.P2C)
	sweep, err := NewLeakSweep(g, Config{Origin: 3})
	if err != nil {
		t.Fatal(err)
	}
	bl := NewBatchLeak(g)
	out := make([]LeakTrial, 4)

	if err := bl.Trials(sweep, []astopo.ASN{9}, nil, out); err == nil {
		t.Error("expected error for leaker not in graph")
	}
	if err := bl.Trials(sweep, []astopo.ASN{3}, nil, out); err == nil {
		t.Error("expected error for leaker == origin")
	}
	if err := bl.Trials(sweep, []astopo.ASN{1, 2}, nil, out[:1]); err == nil {
		t.Error("expected error for short out")
	}
	if err := bl.Trials(sweep, []astopo.ASN{1}, make([]float64, 1), out); err == nil {
		t.Error("expected error for wrong weights length")
	}
	other := astopo.NewGraph(0, 0)
	other.MustAddLink(1, 2, astopo.P2C)
	if err := NewBatchLeak(other).Trials(sweep, []astopo.ASN{1}, nil, out); err == nil {
		t.Error("expected error for engine/sweep graph mismatch")
	}
	excl := make([]bool, g.NumASes())
	i1, _ := g.Index(1)
	excl[i1] = true
	exSweep, err := NewLeakSweep(g, Config{Origin: 3, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.Trials(exSweep, []astopo.ASN{1}, nil, out); err == nil {
		t.Error("expected error for excluded leaker")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bl.TrialsCtx(canceled, sweep, []astopo.ASN{1}, nil, out); err != context.Canceled {
		t.Errorf("TrialsCtx on canceled ctx: got %v, want context.Canceled", err)
	}
}

// A steady-state batch block must not allocate: the word buffers, the
// dial-queue buckets, and the loop-detection scratch are all
// high-water-reused across calls.
func TestBatchLeakAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's shadow allocations break AllocsPerRun")
	}
	rng := rand.New(rand.NewSource(42))
	g := randomTopology(rng)
	g.Freeze()
	all := g.ASes()
	origin := all[0]
	var leakers []astopo.ASN
	for _, a := range all {
		if a != origin {
			leakers = append(leakers, a)
		}
	}
	sweep, err := NewLeakSweep(g, Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, g.NumASes())
	for i := range weights {
		weights[i] = rng.Float64()
	}
	bl := NewBatchLeak(g)
	out := make([]LeakTrial, len(leakers))
	// Warm the buckets' and scratch lists' high-water capacity.
	if err := bl.Trials(sweep, leakers, weights, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := bl.Trials(sweep, leakers, weights, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch block allocated %.1f times per run, want 0", allocs)
	}
}

// Concurrent engines over one shared sweep snapshot must not interfere:
// the snapshot is read-only and every mutable word lives in the engine.
// Run under -race this gates the scratch sharing.
func TestBatchLeakConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomTopology(rng)
	g.Freeze()
	all := g.ASes()
	origin := all[0]
	var leakers []astopo.ASN
	for _, a := range all {
		if a != origin {
			leakers = append(leakers, a)
		}
	}
	sweep, err := NewLeakSweep(g, Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]LeakTrial, len(leakers))
	if err := NewBatchLeak(g).Trials(sweep, leakers, nil, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bl := NewBatchLeak(g)
			got := make([]LeakTrial, len(leakers))
			for rep := 0; rep < 8; rep++ {
				if err := bl.Trials(sweep, leakers, nil, got); err != nil {
					t.Error(err)
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("leaker AS%d: got %+v want %+v", leakers[i], got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
