package bgpsim

import (
	"context"
	"fmt"
	"math/bits"
	"os"
	"strconv"

	"flatnet/internal/astopo"
)

// MaxSweepWords bounds the multi-word batch width: at 8 words one
// propagation carries 512 origins, and the per-node state of the four
// stage arrays reaches 256 bytes — past that the working set stops
// fitting cache lines profitably.
const MaxSweepWords = 8

// SweepWords returns the configured multi-word batch width W (the wide
// engine carries W×64 origins per propagation): the FLATNET_SWEEP_WORDS
// env var when set, clamped to [1, MaxSweepWords], else 1. The default is
// single-word on purpose: with the active-set engine the per-block
// bookkeeping wider blocks were meant to amortize is already O(reached),
// while every CSR edge visit pays W word operations — on the synthetic
// full-scale world W=4 measures ~2x *slower* than W=1. Wider blocks only
// pay off on topologies where per-edge work is cheap relative to block
// count (very high collapse ratios shrinking the origin population, or
// denser graphs); the env var is the tuning knob for those.
func SweepWords() int {
	if v := os.Getenv("FLATNET_SWEEP_WORDS"); v != "" {
		if w, err := strconv.Atoi(v); err == nil {
			if w < 1 {
				return 1
			}
			if w > MaxSweepWords {
				return MaxSweepWords
			}
			return w
		}
	}
	return 1
}

// BatchReachWide is BatchReach widened to W uint64 words per node: one
// propagation carries up to W×64 origins, with lane L of the block stored
// in word L/64, bit L%64. The three valley-free stages, the exclusion-mask
// composition, the active-set bookkeeping, and the per-lane results are
// identical to BatchReach — golden tests pin the wide engine bit-for-bit
// against the narrow one — only the inner word operations run W-wide so
// each CSR edge visit is amortized over the whole block.
//
// A BatchReachWide is not safe for concurrent use; create one per
// goroutine. All buffers are high-water-reused, so steady-state calls
// allocate nothing.
type BatchReachWide struct {
	g *astopo.Graph
	n int
	w int // words per node

	ctx context.Context // set by CountsCtx for between-stage cancellation

	allowed []uint64 // n*w per-node allowed lanes for the current call
	up      []uint64 // origin ∪ customer-route holders (stage A)
	peer    []uint64 // peer-route holders (stage B)
	down    []uint64 // provider-route holders (stage C)

	queue []int32 // shared worklist for the stage A/C fixed points
	inq   []bool  // worklist membership, cleared on pop

	touched []int32 // nodes with any stage word set this call
	intouch []bool  // touched membership, cleared by the next call's reset

	// allowed-word reuse across calls, as in BatchReach.
	basePtr   *bool
	baseLen   int
	overrides []int32 // node indexes whose allowed words diverge from base
}

// NewBatchReachWide returns a wide batch engine for g carrying words×64
// lanes per propagation. words is clamped to [1, MaxSweepWords]. The graph
// is frozen by the call.
func NewBatchReachWide(g *astopo.Graph, words int) *BatchReachWide {
	if words < 1 {
		words = 1
	}
	if words > MaxSweepWords {
		words = MaxSweepWords
	}
	g.Freeze()
	n := g.NumASes()
	return &BatchReachWide{
		g:       g,
		n:       n,
		w:       words,
		allowed: make([]uint64, n*words),
		up:      make([]uint64, n*words),
		peer:    make([]uint64, n*words),
		down:    make([]uint64, n*words),
		inq:     make([]bool, n),
		intouch: make([]bool, n),
		baseLen: -1,
	}
}

// Lanes returns the engine's block capacity in origins.
func (b *BatchReachWide) Lanes() int { return b.w * BatchLanes }

// Counts computes reachability counts for up to Lanes() origins at once,
// with the same mask semantics as BatchReach.Counts: base is the
// lane-uniform exclusion mask, each origin is re-allowed in its own lane,
// and maskProviders additionally excludes each origin's transit providers
// in that origin's lane.
func (b *BatchReachWide) Counts(origins []int32, base []bool, maskProviders bool, out []int) error {
	g, n, w := b.g, b.n, b.w
	if len(origins) == 0 {
		return nil
	}
	if len(origins) > w*BatchLanes {
		return fmt.Errorf("bgpsim: %d origins exceed the %d-lane wide batch width", len(origins), w*BatchLanes)
	}
	if len(out) < len(origins) {
		return fmt.Errorf("bgpsim: out has %d entries for %d origins", len(out), len(origins))
	}
	if base != nil && len(base) != n {
		return fmt.Errorf("bgpsim: base mask has %d entries, graph has %d ASes", len(base), n)
	}
	for _, o := range origins {
		if o < 0 || int(o) >= n {
			b.overrides = b.overrides[:0]
			b.baseLen = -1 // conservative: force a recompose next call
			return fmt.Errorf("bgpsim: origin index %d out of range [0,%d)", o, n)
		}
	}

	// Compose the allowed words: lane-uniform base kept across calls (see
	// BatchReach), per-lane origin/provider overrides applied fresh.
	allowed := b.allowed
	sameBase := base == nil && b.baseLen == 0 ||
		base != nil && len(base) > 0 && b.basePtr == &base[0] && b.baseLen == len(base)
	if sameBase {
		for _, i := range b.overrides {
			word := uint64(0)
			if base == nil || !base[i] {
				word = ^uint64(0)
			}
			ib := int(i) * w
			for k := 0; k < w; k++ {
				allowed[ib+k] = word
			}
		}
	} else {
		if base == nil {
			for i := range allowed {
				allowed[i] = ^uint64(0)
			}
			b.basePtr, b.baseLen = nil, 0
		} else {
			for i, m := range base {
				word := uint64(0)
				if !m {
					word = ^uint64(0)
				}
				ib := i * w
				for k := 0; k < w; k++ {
					allowed[ib+k] = word
				}
			}
			b.basePtr, b.baseLen = &base[0], len(base)
		}
	}
	overrides := b.overrides[:0]
	for lane, o := range origins {
		word, bit := lane>>6, uint64(1)<<(lane&63)
		allowed[int(o)*w+word] |= bit // the origin is never excluded from its own lane
		overrides = append(overrides, o)
		if maskProviders {
			for _, p := range g.ProvidersOf(int(o)) {
				allowed[int(p)*w+word] &^= bit
				overrides = append(overrides, p)
			}
		}
	}
	b.overrides = overrides

	// Reset only the nodes the previous call touched.
	up, peer, down := b.up, b.peer, b.down
	intouch := b.intouch
	for _, v := range b.touched {
		vb := int(v) * w
		for k := 0; k < w; k++ {
			up[vb+k], peer[vb+k], down[vb+k] = 0, 0, 0
		}
		intouch[v] = false
	}
	touched := b.touched[:0]

	// ---- Stage A: upward closure over customer→provider edges ----
	if err := b.canceled(); err != nil {
		b.touched = touched
		return err
	}
	queue := b.queue[:0]
	inq := b.inq
	for lane, o := range origins {
		up[int(o)*w+lane>>6] |= uint64(1) << (lane & 63)
		if !intouch[o] {
			intouch[o] = true
			touched = append(touched, o)
		}
		if !inq[o] {
			inq[o] = true
			queue = append(queue, o)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		inq[u] = false
		ub := int(u) * w
		for _, p := range g.ProvidersOf(int(u)) {
			pb := int(p) * w
			changed := false
			for k := 0; k < w; k++ {
				if add := up[ub+k] & allowed[pb+k] &^ up[pb+k]; add != 0 {
					up[pb+k] |= add
					changed = true
				}
			}
			if changed {
				if !intouch[p] {
					intouch[p] = true
					touched = append(touched, p)
				}
				if !inq[p] {
					inq[p] = true
					queue = append(queue, p)
				}
			}
		}
	}

	// ---- Stage B: one p2p hop, gated on "no customer route yet" ----
	if err := b.canceled(); err != nil {
		b.touched = touched
		return err
	}
	aEnd := len(touched)
	for _, u := range touched[:aEnd] {
		ub := int(u) * w
		for _, pe := range g.PeersOf(int(u)) {
			pb := int(pe) * w
			for k := 0; k < w; k++ {
				peer[pb+k] |= up[ub+k]
			}
			if !intouch[pe] {
				intouch[pe] = true
				touched = append(touched, pe)
			}
		}
	}
	for _, v := range touched {
		vb := int(v) * w
		for k := 0; k < w; k++ {
			peer[vb+k] &= allowed[vb+k] &^ up[vb+k]
		}
	}

	// ---- Stage C: downward closure over provider→customer edges ----
	if err := b.canceled(); err != nil {
		b.touched = touched
		return err
	}
	queue = queue[:0]
	for _, u := range touched[:len(touched)] {
		ub := int(u) * w
		any := uint64(0)
		for k := 0; k < w; k++ {
			any |= up[ub+k] | peer[ub+k]
		}
		if any == 0 {
			continue
		}
		for _, c := range g.CustomersOf(int(u)) {
			cb := int(c) * w
			changed := false
			for k := 0; k < w; k++ {
				add := (up[ub+k] | peer[ub+k]) & allowed[cb+k] &^ (up[cb+k] | peer[cb+k] | down[cb+k])
				if add != 0 {
					down[cb+k] |= add
					changed = true
				}
			}
			if changed {
				if !intouch[c] {
					intouch[c] = true
					touched = append(touched, c)
				}
				if !inq[c] {
					inq[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		inq[u] = false
		ub := int(u) * w
		for _, c := range g.CustomersOf(int(u)) {
			cb := int(c) * w
			changed := false
			for k := 0; k < w; k++ {
				add := down[ub+k] & allowed[cb+k] &^ (up[cb+k] | peer[cb+k] | down[cb+k])
				if add != 0 {
					down[cb+k] |= add
					changed = true
				}
			}
			if changed {
				if !intouch[c] {
					intouch[c] = true
					touched = append(touched, c)
				}
				if !inq[c] {
					inq[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	b.queue = queue // keep the high-water backing array
	b.touched = touched

	// ---- Count ----
	// Every lane's origin bit is set in up[origin]; subtract it at the
	// end rather than carrying a separate origin word.
	for i := range origins {
		out[i] = 0
	}
	for _, v := range touched {
		vb := int(v) * w
		for k := 0; k < w; k++ {
			word := up[vb+k] | peer[vb+k] | down[vb+k]
			lanes := k * BatchLanes
			for word != 0 {
				out[lanes+bits.TrailingZeros64(word)]++
				word &= word - 1
			}
		}
	}
	for i := range origins {
		out[i]--
	}
	return nil
}

// CountsCtx is Counts with cancellation: the propagation is aborted
// between stages once ctx is done, returning ctx.Err().
func (b *BatchReachWide) CountsCtx(ctx context.Context, origins []int32, base []bool, maskProviders bool, out []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.ctx = ctx
	defer func() { b.ctx = nil }()
	return b.Counts(origins, base, maskProviders, out)
}

func (b *BatchReachWide) canceled() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}
