package bgpsim

import (
	"math/rand"
	"testing"

	"flatnet/internal/astopo"
)

// The wide engine must be bit-identical to the narrow one: for every word
// width, every origin, and every mask shape, a W-word block must return
// exactly the counts BatchReach computes over the same origins. The narrow
// engine is itself pinned to the scalar Simulator, so this transitively
// anchors BatchReachWide to the reference fixed point.
func TestBatchWideCountsMatchNarrow(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		for seed := int64(0); seed < 110; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := randomTopology(rng)
			g.Freeze()
			n := g.NumASes()

			var base []bool
			if rng.Intn(3) > 0 {
				base = make([]bool, n)
				for i := range base {
					if rng.Intn(5) == 0 {
						base[i] = true
					}
				}
			}
			maskProviders := rng.Intn(2) == 1

			wide := NewBatchReachWide(g, w)
			if wide.Lanes() != w*BatchLanes {
				t.Fatalf("w=%d: Lanes() = %d, want %d", w, wide.Lanes(), w*BatchLanes)
			}
			narrow := NewBatchReach(g)

			lanes := wide.Lanes()
			got := make([]int, lanes)
			want := make([]int, BatchLanes)
			origins := make([]int32, 0, lanes)
			for lo := 0; lo < n; lo += lanes {
				hi := lo + lanes
				if hi > n {
					hi = n
				}
				origins = origins[:0]
				for i := lo; i < hi; i++ {
					origins = append(origins, int32(i))
				}
				if err := wide.Counts(origins, base, maskProviders, got); err != nil {
					t.Fatalf("w=%d seed %d: %v", w, seed, err)
				}
				for blo := 0; blo < len(origins); blo += BatchLanes {
					bhi := blo + BatchLanes
					if bhi > len(origins) {
						bhi = len(origins)
					}
					if err := narrow.Counts(origins[blo:bhi], base, maskProviders, want); err != nil {
						t.Fatalf("w=%d seed %d: narrow: %v", w, seed, err)
					}
					for k := blo; k < bhi; k++ {
						if got[k] != want[k-blo] {
							t.Fatalf("w=%d seed %d origin AS%d (maskProviders=%v, base=%v): wide=%d narrow=%d",
								w, seed, g.ASNAt(int(origins[k])), maskProviders, base != nil, got[k], want[k-blo])
						}
					}
				}
			}
		}
	}
}

func TestBatchWideCountsValidation(t *testing.T) {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(1, 2, astopo.P2C)
	g.MustAddLink(2, 3, astopo.P2C)
	b := NewBatchReachWide(g, 2)
	out := make([]int, 2*BatchLanes+1)

	if err := b.Counts(nil, nil, true, nil); err != nil {
		t.Errorf("empty origins: %v", err)
	}
	tooMany := make([]int32, 2*BatchLanes+1)
	if err := b.Counts(tooMany, nil, true, out); err == nil {
		t.Error("expected error for > Lanes() origins")
	}
	if err := b.Counts([]int32{0, 1}, nil, true, out[:1]); err == nil {
		t.Error("expected error for short out")
	}
	if err := b.Counts([]int32{0}, make([]bool, 1), true, out); err == nil {
		t.Error("expected error for wrong base length")
	}
	if err := b.Counts([]int32{int32(g.NumASes())}, nil, true, out); err == nil {
		t.Error("expected error for out-of-range origin")
	}
	// Word clamping at construction.
	if got := NewBatchReachWide(g, 0).Lanes(); got != BatchLanes {
		t.Errorf("words=0 clamps to 1 word: Lanes() = %d", got)
	}
	if got := NewBatchReachWide(g, MaxSweepWords+3).Lanes(); got != MaxSweepWords*BatchLanes {
		t.Errorf("words over max clamps to %d: Lanes() = %d", MaxSweepWords, got)
	}
}

// A steady-state wide block must not allocate, same contract as the
// narrow engine.
func TestBatchWideCountsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's shadow allocations break AllocsPerRun")
	}
	rng := rand.New(rand.NewSource(42))
	g := randomTopology(rng)
	g.Freeze()
	n := g.NumASes()
	base := make([]bool, n)
	base[n-1] = true

	b := NewBatchReachWide(g, 4)
	origins := make([]int32, 0, b.Lanes())
	for i := 0; i < n && i < b.Lanes(); i++ {
		origins = append(origins, int32(i))
	}
	out := make([]int, len(origins))
	if err := b.Counts(origins, base, true, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := b.Counts(origins, base, true, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state wide block allocated %.1f times per run, want 0", allocs)
	}
}
