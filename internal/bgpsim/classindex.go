package bgpsim

import (
	"slices"

	"flatnet/internal/astopo"
)

// ClassIndex buckets the ASes of a frozen graph into origin equivalence
// classes: two ASes fall in the same class exactly when they have the same
// sorted provider, customer, and peer neighbor sets (as ASNs), the same
// tier membership, and the same per-origin annotation. Members of a class
// are never adjacent (an AS sharing its own neighbor set would need a self
// link), so swapping two members is a graph automorphism that fixes every
// other AS — under valley-free propagation with tier-uniform base masks
// and per-origin provider masks, every member of a class has *identical*
// reachability counts for every exclusion kind. All-AS sweeps therefore
// need to propagate only one representative per class and copy the count
// to the other members (the engine's own-origin self-bit subtraction is
// per lane, so the copy needs no correction).
//
// Fingerprints are computed over neighbor ASNs, not dense indexes, so an
// AS whose neighborhood is untouched by a topology delta keeps its exact
// signature — Evolve exploits this to carry signatures across an
// EvolveDelta instead of re-sorting every adjacency row.
//
// A ClassIndex is immutable once built and safe for concurrent use.
type ClassIndex struct {
	n     int
	nodes []astopo.ASN // sorted ASNs, shared with the graph

	classOf []int32 // dense AS index -> class id
	reps    []int32 // class id -> dense index of the representative (smallest member)
	size    []int32 // class id -> member count

	// Per-AS signature state, retained so Evolve can copy untouched
	// segments verbatim. arena holds each AS's sorted provider ASNs,
	// then sorted customer ASNs, then sorted peer ASNs; off/pLen/cLen
	// delimit the three runs.
	sig        []uint64     // FNV-1a fingerprint hash per AS
	tier       []uint8      // 0 plain, 1 Tier-1, 2 Tier-2
	annot      []uint64     // caller-supplied per-origin annotation (nil input = all zero)
	off        []int32      // arena offsets, len n+1
	pLen, cLen []int32      // provider/customer run lengths within each segment
	arena      []astopo.ASN // sorted neighbor ASNs, per-AS segments concatenated

	// tier sets, held only while signatures are being computed.
	t1, t2 astopo.ASSet
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fnvMix folds one 64-bit value into an FNV-1a hash, byte by byte.
func fnvMix(h, v uint64) uint64 {
	for k := 0; k < 8; k++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// NewClassIndex builds the equivalence classes for g under the given tier
// sets. annot, when non-nil, is a per-dense-index annotation folded into
// the fingerprint (callers use it to keep specially-treated origins out of
// shared classes); nil means no annotations. The graph is frozen by the
// call.
func NewClassIndex(g *astopo.Graph, tier1, tier2 astopo.ASSet, annot []uint64) *ClassIndex {
	g.Freeze()
	n := g.NumASes()
	ci := &ClassIndex{
		n:       n,
		nodes:   g.ASes(),
		classOf: make([]int32, n),
		sig:     make([]uint64, n),
		tier:    make([]uint8, n),
		annot:   make([]uint64, n),
		off:     make([]int32, n+1),
		pLen:    make([]int32, n),
		cLen:    make([]int32, n),
		t1:      tier1,
		t2:      tier2,
	}
	if annot != nil {
		copy(ci.annot, annot)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += len(g.ProvidersOf(i)) + len(g.CustomersOf(i)) + len(g.PeersOf(i))
	}
	ci.arena = make([]astopo.ASN, 0, total)
	for i := 0; i < n; i++ {
		ci.computeSig(g, i)
	}
	ci.group()
	return ci
}

// computeSig fills AS i's arena segment (sorted neighbor ASNs), tier byte,
// and fingerprint hash, appending the segment at the arena's current end.
func (ci *ClassIndex) computeSig(g *astopo.Graph, i int) {
	start := len(ci.arena)
	ci.off[i] = int32(start)
	for _, p := range g.ProvidersOf(i) {
		ci.arena = append(ci.arena, ci.nodes[p])
	}
	slices.Sort(ci.arena[start:])
	ci.pLen[i] = int32(len(ci.arena) - start)
	mid := len(ci.arena)
	for _, c := range g.CustomersOf(i) {
		ci.arena = append(ci.arena, ci.nodes[c])
	}
	slices.Sort(ci.arena[mid:])
	ci.cLen[i] = int32(len(ci.arena) - mid)
	mid = len(ci.arena)
	for _, pe := range g.PeersOf(i) {
		ci.arena = append(ci.arena, ci.nodes[pe])
	}
	slices.Sort(ci.arena[mid:])
	ci.off[i+1] = int32(len(ci.arena))

	a := ci.nodes[i]
	if _, ok := ci.t1[a]; ok {
		ci.tier[i] = 1
	} else if _, ok := ci.t2[a]; ok {
		ci.tier[i] = 2
	} else {
		ci.tier[i] = 0
	}
	ci.sig[i] = ci.hashSeg(i)
}

// hashSeg fingerprints AS i from its stored segment.
func (ci *ClassIndex) hashSeg(i int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(ci.tier[i]))
	h = fnvMix(h, ci.annot[i])
	h = fnvMix(h, uint64(ci.pLen[i]))
	h = fnvMix(h, uint64(ci.cLen[i]))
	seg := ci.arena[ci.off[i]:ci.off[i+1]]
	h = fnvMix(h, uint64(len(seg)))
	for _, a := range seg {
		h = fnvMix(h, uint64(a))
	}
	return h
}

// sameSig reports whether ASes i and j have identical propagation
// signatures (exact comparison, not just equal hashes).
func (ci *ClassIndex) sameSig(i, j int32) bool {
	if ci.tier[i] != ci.tier[j] || ci.annot[i] != ci.annot[j] ||
		ci.pLen[i] != ci.pLen[j] || ci.cLen[i] != ci.cLen[j] {
		return false
	}
	si, sj := ci.arena[ci.off[i]:ci.off[i+1]], ci.arena[ci.off[j]:ci.off[j+1]]
	if len(si) != len(sj) {
		return false
	}
	for k := range si {
		if si[k] != sj[k] {
			return false
		}
	}
	return true
}

// group assigns class ids by first appearance in dense-index order: the
// representative of each class is its smallest member. Hash buckets narrow
// the candidates; membership is decided by exact segment comparison, so
// hash collisions can never silently merge distinct classes.
func (ci *ClassIndex) group() {
	buckets := make(map[uint64][]int32, ci.n)
	for i := 0; i < ci.n; i++ {
		h := ci.sig[i]
		assigned := false
		for _, c := range buckets[h] {
			if ci.sameSig(int32(i), ci.reps[c]) {
				ci.classOf[i] = c
				ci.size[c]++
				assigned = true
				break
			}
		}
		if !assigned {
			c := int32(len(ci.reps))
			ci.reps = append(ci.reps, int32(i))
			ci.size = append(ci.size, 1)
			ci.classOf[i] = c
			buckets[h] = append(buckets[h], c)
		}
	}
	ci.t1, ci.t2 = nil, nil // never pin the caller's tier sets past construction
}

// NumASes returns the number of ASes the index covers.
func (ci *ClassIndex) NumASes() int { return ci.n }

// NumClasses returns the number of equivalence classes.
func (ci *ClassIndex) NumClasses() int { return len(ci.reps) }

// ClassOf returns the class id of dense index i.
func (ci *ClassIndex) ClassOf(i int) int32 { return ci.classOf[i] }

// Rep returns the dense index of class c's representative (its smallest
// member).
func (ci *ClassIndex) Rep(c int) int32 { return ci.reps[c] }

// Reps returns the representatives of all classes, indexed by class id.
// The returned slice is shared; callers must not modify it.
func (ci *ClassIndex) Reps() []int32 { return ci.reps }

// Size returns the member count of class c.
func (ci *ClassIndex) Size(c int) int32 { return ci.size[c] }

// CollapseRatio returns ASes per class — the sweep-work reduction factor.
func (ci *ClassIndex) CollapseRatio() float64 {
	if len(ci.reps) == 0 {
		return 1
	}
	return float64(ci.n) / float64(len(ci.reps))
}

// Expand scatters per-class counts to per-AS counts: out[i] =
// classCounts[ClassOf(i)]. Every class member's reachability equals its
// representative's exactly (see the type comment), including the self-bit:
// the engine's count already excludes the origin itself, and the
// member-swap automorphism maps the representative's reach set onto the
// member's bijectively.
func (ci *ClassIndex) Expand(classCounts []int, out []int) {
	for i, c := range ci.classOf {
		out[i] = classCounts[c]
	}
}

// Evolve derives the class index of ng from this one, given that only the
// ASes in touched (plus any AS absent from the old graph) may have changed
// neighborhoods or annotations. Untouched ASes copy their arena segments
// and fingerprints verbatim; touched and new ASes recompute from ng. The
// result is identical to NewClassIndex(ng, tier1, tier2, annot) — the
// class grouping pass always reruns in full, only the per-AS signature
// work is carried — provided touched really covers every AS whose
// adjacency rows or tier membership differ (callers gate on tier-set
// equality and pass every delta link endpoint).
func (ci *ClassIndex) Evolve(ng *astopo.Graph, tier1, tier2 astopo.ASSet, annot []uint64, touched []astopo.ASN) *ClassIndex {
	ng.Freeze()
	n := ng.NumASes()
	next := &ClassIndex{
		n:       n,
		nodes:   ng.ASes(),
		classOf: make([]int32, n),
		sig:     make([]uint64, n),
		tier:    make([]uint8, n),
		annot:   make([]uint64, n),
		off:     make([]int32, n+1),
		pLen:    make([]int32, n),
		cLen:    make([]int32, n),
		t1:      tier1,
		t2:      tier2,
	}
	if annot != nil {
		copy(next.annot, annot)
	}
	dirty := make(map[astopo.ASN]bool, len(touched))
	for _, a := range touched {
		dirty[a] = true
	}
	// Size the arena at the old total plus room for the touched segments;
	// append still grows it if a delta adds more adjacency than that.
	next.arena = make([]astopo.ASN, 0, len(ci.arena)+64*len(touched))
	old := ci.nodes
	oi := 0
	for i := 0; i < n; i++ {
		a := next.nodes[i]
		for oi < len(old) && old[oi] < a {
			oi++ // AS removed from the graph; its segment is dropped
		}
		carried := false
		// Annotations are caller state, not graph state: carry a segment
		// only when the annotation also matches, else re-derive.
		if oi < len(old) && old[oi] == a && !dirty[a] && next.annot[i] == ci.annot[oi] {
			j := oi
			next.off[i] = int32(len(next.arena))
			next.arena = append(next.arena, ci.arena[ci.off[j]:ci.off[j+1]]...)
			next.off[i+1] = int32(len(next.arena))
			next.pLen[i], next.cLen[i] = ci.pLen[j], ci.cLen[j]
			next.tier[i] = ci.tier[j]
			next.sig[i] = ci.sig[j]
			carried = true
		}
		if !carried {
			next.computeSig(ng, i)
		}
	}
	next.group()
	return next
}
