package bgpsim

import (
	"context"
	"math/rand"
	"testing"

	"flatnet/internal/astopo"
)

// tiersFor derives tier sets from a random topology the way the presets
// do: provider-free ASes are Tier-1, a random sprinkle of the rest is
// Tier-2. Tier membership is part of the class fingerprint, so any base
// mask that is a function of tier membership is uniform within a class.
func tiersFor(g *astopo.Graph, rng *rand.Rand) (astopo.ASSet, astopo.ASSet) {
	g.Freeze()
	t1, t2 := make(astopo.ASSet), make(astopo.ASSet)
	for i := 0; i < g.NumASes(); i++ {
		if len(g.ProvidersOf(i)) == 0 {
			t1.Add(g.ASNAt(i))
		} else if rng.Intn(6) == 0 {
			t2.Add(g.ASNAt(i))
		}
	}
	return t1, t2
}

// Soundness of the collapse itself: every member of a class must have
// exactly the count of its representative, for every tier-derived base
// mask shape, with and without per-origin provider masking. This is the
// property Expand relies on.
func TestClassIndexMembersEquivalent(t *testing.T) {
	collapsed := 0
	for seed := int64(0); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		t1, t2 := tiersFor(g, rng)
		ci := NewClassIndex(g, t1, t2, nil)
		if ci.NumASes() != n {
			t.Fatalf("seed %d: NumASes = %d, want %d", seed, ci.NumASes(), n)
		}
		if ci.NumClasses() < n {
			collapsed++
		}

		// The three paper mask shapes: none, Tier-1, Tier-1 ∪ Tier-2.
		masks := [][]bool{nil, make([]bool, n), make([]bool, n)}
		for i := 0; i < n; i++ {
			a := g.ASNAt(i)
			if t1.Has(a) {
				masks[1][i] = true
				masks[2][i] = true
			} else if t2.Has(a) {
				masks[2][i] = true
			}
		}
		br := NewBatchReach(g)
		counts := make([]int, n)
		out := make([]int, BatchLanes)
		for _, base := range masks {
			for _, maskProviders := range []bool{false, true} {
				origins := make([]int32, 0, BatchLanes)
				for lo := 0; lo < n; lo += BatchLanes {
					hi := lo + BatchLanes
					if hi > n {
						hi = n
					}
					origins = origins[:0]
					for i := lo; i < hi; i++ {
						origins = append(origins, int32(i))
					}
					if err := br.Counts(origins, base, maskProviders, out); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					copy(counts[lo:hi], out)
				}
				for i := 0; i < n; i++ {
					rep := ci.Rep(int(ci.ClassOf(i)))
					if counts[i] != counts[rep] {
						t.Fatalf("seed %d AS%d (class %d, rep AS%d, maskProviders=%v): member count %d != rep count %d",
							seed, g.ASNAt(i), ci.ClassOf(i), g.ASNAt(int(rep)), maskProviders, counts[i], counts[rep])
					}
				}
			}
		}

		// Structural invariants: sizes partition n, reps are the smallest
		// members and class ids appear in rep order.
		total := int32(0)
		for c := 0; c < ci.NumClasses(); c++ {
			total += ci.Size(c)
			if c > 0 && ci.Rep(c) <= ci.Rep(c-1) {
				t.Fatalf("seed %d: reps not strictly increasing at class %d", seed, c)
			}
			if ci.ClassOf(int(ci.Rep(c))) != int32(c) {
				t.Fatalf("seed %d: rep of class %d is in class %d", seed, c, ci.ClassOf(int(ci.Rep(c))))
			}
		}
		if total != int32(n) {
			t.Fatalf("seed %d: class sizes sum to %d, want %d", seed, total, n)
		}
	}
	if collapsed == 0 {
		t.Fatal("no topology in the corpus collapsed — the suite never tested a real dedup")
	}
}

// Same graph, same tiers, same annotations: the grouping must be
// deterministic (it feeds cluster shard planning keyed only by world hash).
func TestClassIndexDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomTopology(rng)
	t1, t2 := tiersFor(g, rng)
	a := NewClassIndex(g, t1, t2, nil)
	b := NewClassIndex(g, t1, t2, nil)
	assertSameIndex(t, a, b)
}

func assertSameIndex(t *testing.T, a, b *ClassIndex) {
	t.Helper()
	if a.NumASes() != b.NumASes() || a.NumClasses() != b.NumClasses() {
		t.Fatalf("shape mismatch: %d/%d ASes, %d/%d classes",
			a.NumASes(), b.NumASes(), a.NumClasses(), b.NumClasses())
	}
	for i := 0; i < a.NumASes(); i++ {
		if a.ClassOf(i) != b.ClassOf(i) {
			t.Fatalf("AS index %d: class %d != %d", i, a.ClassOf(i), b.ClassOf(i))
		}
	}
	for c := 0; c < a.NumClasses(); c++ {
		if a.Rep(c) != b.Rep(c) || a.Size(c) != b.Size(c) {
			t.Fatalf("class %d: rep/size %d/%d != %d/%d", c, a.Rep(c), a.Size(c), b.Rep(c), b.Size(c))
		}
	}
	for i := 0; i < a.NumASes(); i++ {
		if a.sig[i] != b.sig[i] {
			t.Fatalf("AS index %d: sig %x != %x", i, a.sig[i], b.sig[i])
		}
	}
}

// Annotated ASes must never share a class with unannotated ones even when
// their neighborhoods match — the device callers use to keep
// specially-treated origins out of shared classes.
func TestClassIndexAnnotationSplitsClass(t *testing.T) {
	// Two leaves under the same provider: identical signatures.
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(1, 10, astopo.P2C)
	g.MustAddLink(1, 11, astopo.P2C)
	g.Freeze()
	plain := NewClassIndex(g, nil, nil, nil)
	i10, _ := g.Index(10)
	i11, _ := g.Index(11)
	if plain.ClassOf(i10) != plain.ClassOf(i11) {
		t.Fatalf("identical leaves not grouped: %d vs %d", plain.ClassOf(i10), plain.ClassOf(i11))
	}
	annot := make([]uint64, g.NumASes())
	annot[i10] = 1
	split := NewClassIndex(g, nil, nil, annot)
	if split.ClassOf(i10) == split.ClassOf(i11) {
		t.Fatal("annotation did not split the class")
	}
}

// Evolve must be indistinguishable from a from-scratch rebuild whenever
// touched covers every AS whose adjacency changed — across removals,
// additions, and brand-new ASes.
func TestClassIndexEvolveMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		t1, t2 := tiersFor(g, rng)
		prev := NewClassIndex(g, t1, t2, nil)

		// Mutate the link list: drop a few, add a few, attach new ASes.
		links := g.Links()
		pairKey := func(a, b astopo.ASN) [2]astopo.ASN {
			if a > b {
				a, b = b, a
			}
			return [2]astopo.ASN{a, b}
		}
		kept := make(map[[2]astopo.ASN]bool, len(links))
		var next []astopo.Link
		var touched []astopo.ASN
		for _, l := range links {
			if rng.Intn(12) == 0 {
				touched = append(touched, l.A, l.B)
				continue
			}
			kept[pairKey(l.A, l.B)] = true
			next = append(next, l)
		}
		add := func(l astopo.Link) bool {
			if l.A == l.B || kept[pairKey(l.A, l.B)] {
				return false
			}
			kept[pairKey(l.A, l.B)] = true
			next = append(next, l)
			touched = append(touched, l.A, l.B)
			return true
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			add(astopo.Link{A: g.ASNAt(rng.Intn(n)), B: g.ASNAt(rng.Intn(n)), Rel: astopo.P2P})
		}
		for k := 0; k < rng.Intn(3); k++ {
			add(astopo.Link{A: g.ASNAt(rng.Intn(n)), B: astopo.ASN(1000 + k), Rel: astopo.P2C})
		}
		ng := astopo.NewGraph(n, len(next))
		for _, l := range next {
			ng.MustAddLink(l.A, l.B, l.Rel)
		}
		ng.Freeze()

		evolved := prev.Evolve(ng, t1, t2, nil, touched)
		rebuilt := NewClassIndex(ng, t1, t2, nil)
		assertSameIndex(t, evolved, rebuilt)
	}
}

// The leak-trial dedup must be invisible: with a class index attached,
// TrialsN over a leaker population containing classmates must return
// trials byte-identical to the undeduped sweep — including per-leaker
// config bits (exclusions, locking, policy) that break class symmetry.
func TestLeakSweepClassDedupMatches(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		oi, _ := g.Index(origin)

		cfg := Config{Origin: origin}
		if rng.Intn(3) == 0 {
			cfg.Exclude = make([]bool, n)
			for i := range cfg.Exclude {
				if i != oi && rng.Intn(7) == 0 {
					cfg.Exclude[i] = true
				}
			}
		}
		if rng.Intn(3) == 0 {
			cfg.Locking = make([]bool, n)
			for i := range cfg.Locking {
				if rng.Intn(6) == 0 {
					cfg.Locking[i] = true
				}
			}
		}
		if rng.Intn(4) == 0 {
			var keep []astopo.ASN
			for _, rel := range [][]int32{g.ProvidersOf(oi), g.CustomersOf(oi), g.PeersOf(oi)} {
				for _, v := range rel {
					if rng.Intn(2) == 0 {
						keep = append(keep, g.ASNAt(int(v)))
					}
				}
			}
			cfg.Policy = NewPolicy(g, keep)
		}

		leakers := make([]astopo.ASN, 0, n-1)
		for _, a := range all {
			if a != origin {
				leakers = append(leakers, a)
			}
		}
		rng.Shuffle(len(leakers), func(i, j int) { leakers[i], leakers[j] = leakers[j], leakers[i] })

		run := func(withClasses bool) ([]LeakTrial, error) {
			sw, err := NewLeakSweep(g, cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			defer sw.Release()
			if withClasses {
				t1, t2 := tiersFor(g, rand.New(rand.NewSource(seed)))
				sw.SetClasses(NewClassIndex(g, t1, t2, nil))
			}
			return sw.TrialsN(context.Background(), leakers, nil, 1)
		}
		want, werr := run(false)
		got, gerr := run(true)
		// Configs whose mask excludes a leaker error; the deduped sweep
		// must report the identical error, naming the identical leaker.
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("seed %d: error parity broken: baseline %v, deduped %v", seed, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("seed %d: error mismatch: %q != %q", seed, gerr, werr)
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d trials != %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d trial %d (leaker AS%d): deduped %+v != baseline %+v",
					seed, i, leakers[i], got[i], want[i])
			}
		}
	}
}

// Weighted collapsed runs must agree with the undeduped sweep — exactly on
// DetouredFrac (the automorphism maps the detoured set bijectively) and up
// to float reordering on DetouredUserFrac (the O(1) classmate correction
// adds terms in a different order than the node-order reduction) — and an
// unknown leaker must fail identically either way.
func TestLeakSweepClassDedupGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomTopology(rng)
	g.Freeze()
	all := g.ASes()
	origin := all[0]
	t1, t2 := tiersFor(g, rng)
	ci := NewClassIndex(g, t1, t2, nil)

	leakers := append([]astopo.ASN(nil), all[1:]...)
	weights := make([]float64, g.NumASes())
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	runPair := func(lk []astopo.ASN, w []float64) ([]LeakTrial, error, []LeakTrial, error) {
		s1, err := NewLeakSweep(g, Config{Origin: origin})
		if err != nil {
			t.Fatal(err)
		}
		base, berr := s1.TrialsN(context.Background(), lk, w, 1)
		s1.Release()
		s2, err := NewLeakSweep(g, Config{Origin: origin})
		if err != nil {
			t.Fatal(err)
		}
		s2.SetClasses(ci)
		ded, derr := s2.TrialsN(context.Background(), lk, w, 1)
		s2.Release()
		return base, berr, ded, derr
	}

	base, berr, ded, derr := runPair(leakers, weights)
	if berr != nil || derr != nil {
		t.Fatalf("weighted runs failed: %v / %v", berr, derr)
	}
	for i := range base {
		if ded[i].Leaker != base[i].Leaker || ded[i].DetouredFrac != base[i].DetouredFrac ||
			!wsumClose(ded[i].DetouredUserFrac, base[i].DetouredUserFrac) {
			t.Fatalf("weighted trial %d: %+v != %+v", i, ded[i], base[i])
		}
	}

	bad := append(append([]astopo.ASN(nil), leakers...), astopo.ASN(999999))
	_, berr, _, derr = runPair(bad, nil)
	if berr == nil || derr == nil {
		t.Fatalf("unknown leaker must fail on both paths: %v / %v", berr, derr)
	}
	if berr.Error() != derr.Error() {
		t.Fatalf("error mismatch: %q != %q", berr, derr)
	}
}

// The probe bits behind the weighted collapse must agree between engines:
// trialsDispatchProbes answered by the batch lane words must match a direct
// scalar replay's flags for every (leaker, node) pair. The leaker list is
// tiled past BatchLanes so the batch dispatch engages on the small random
// topologies; probes of a leaker's own node are skipped (the batch mask
// excludes them by design, and the collapse pairs them with a zero weight
// delta, so their value never matters).
func TestTrialsDispatchProbesBatchMatchesScalar(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		oi, _ := g.Index(origin)

		cfg := Config{Origin: origin}
		if rng.Intn(2) == 0 {
			cfg.Locking = make([]bool, n)
			for i := range cfg.Locking {
				if rng.Intn(6) == 0 {
					cfg.Locking[i] = true
				}
			}
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()
		}

		base := make([]astopo.ASN, 0, n-1)
		for _, a := range all {
			if a != origin {
				base = append(base, a)
			}
		}
		leakers := make([]astopo.ASN, 0, 2*BatchLanes)
		for len(leakers) < BatchLanes+7 {
			leakers = append(leakers, base...)
		}

		probeOff := make([]int32, len(leakers)+1)
		probeNode := make([]int32, 0, len(leakers)*n)
		for j, l := range leakers {
			li, _ := g.Index(l)
			for v := int32(0); v < int32(n); v++ {
				if int(v) == li || int(v) == oi {
					continue
				}
				probeNode = append(probeNode, v)
			}
			probeOff[j+1] = int32(len(probeNode))
		}

		sw, err := NewLeakSweep(g, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out := make([]LeakTrial, len(leakers))
		bits := make([]bool, len(probeNode))
		err = sw.trialsDispatchProbes(ctx, leakers, weights, out, 1, probeOff, probeNode, bits)
		sw.Release()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		chk, err := NewLeakSweep(g, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		defer chk.Release()
		for j, l := range leakers {
			tr, err := chk.TrialCtx(ctx, l, weights)
			if err != nil {
				t.Fatalf("seed %d leaker AS%d: %v", seed, l, err)
			}
			if out[j] != tr {
				t.Fatalf("seed %d leaker %d (AS%d): dispatch %+v != scalar %+v", seed, j, l, out[j], tr)
			}
			for p := probeOff[j]; p < probeOff[j+1]; p++ {
				want := tr.DetouredFrac != 0 && chk.sim.flags[probeNode[p]]&ViaLeak != 0
				if bits[p] != want {
					t.Fatalf("seed %d leaker %d (AS%d) node %d: probe %v != scalar %v",
						seed, j, l, probeNode[p], bits[p], want)
				}
			}
		}
	}
}

// Golden sweep for the weighted collapse across random topologies, weight
// vectors, and symmetry-breaking config bits: DetouredFrac and the leaker
// must match the undeduped sweep exactly, DetouredUserFrac up to the
// correction's float reordering, and per-leaker errors (excluded leakers)
// must surface identically.
func TestLeakSweepClassDedupWeightedMatches(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		oi, _ := g.Index(origin)

		cfg := Config{Origin: origin}
		if rng.Intn(3) == 0 {
			cfg.Exclude = make([]bool, n)
			for i := range cfg.Exclude {
				if i != oi && rng.Intn(7) == 0 {
					cfg.Exclude[i] = true
				}
			}
		}
		if rng.Intn(3) == 0 {
			cfg.Locking = make([]bool, n)
			for i := range cfg.Locking {
				if rng.Intn(6) == 0 {
					cfg.Locking[i] = true
				}
			}
		}

		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()
		}

		leakers := make([]astopo.ASN, 0, n-1)
		for _, a := range all {
			if a != origin {
				leakers = append(leakers, a)
			}
		}
		rng.Shuffle(len(leakers), func(i, j int) { leakers[i], leakers[j] = leakers[j], leakers[i] })

		run := func(withClasses bool) ([]LeakTrial, error) {
			sw, err := NewLeakSweep(g, cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			defer sw.Release()
			if withClasses {
				t1, t2 := tiersFor(g, rand.New(rand.NewSource(seed)))
				sw.SetClasses(NewClassIndex(g, t1, t2, nil))
			}
			return sw.TrialsN(context.Background(), leakers, weights, 1)
		}
		want, werr := run(false)
		got, gerr := run(true)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("seed %d: error parity broken: baseline %v, deduped %v", seed, werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("seed %d: error mismatch: %q != %q", seed, gerr, werr)
			}
			continue
		}
		for i := range want {
			if got[i].Leaker != want[i].Leaker || got[i].DetouredFrac != want[i].DetouredFrac ||
				!wsumClose(got[i].DetouredUserFrac, want[i].DetouredUserFrac) {
				t.Fatalf("seed %d trial %d (leaker AS%d): deduped %+v != baseline %+v",
					seed, i, leakers[i], got[i], want[i])
			}
		}
	}
}
