package bgpsim

import (
	"context"
	"errors"
	"testing"

	"flatnet/internal/astopo"
)

// ctxFixture is the Fig.-1-style topology used across the package tests.
func ctxFixture(t *testing.T) *astopo.Graph {
	t.Helper()
	g := astopo.NewGraph(0, 0)
	for _, l := range []struct {
		a, b astopo.ASN
		r    astopo.Rel
	}{
		{1, 100, astopo.P2C},
		{100, 2, astopo.P2P},
		{100, 3, astopo.P2P},
		{2, 6, astopo.P2C},
		{3, 7, astopo.P2C},
		{1, 2, astopo.P2P},
	} {
		if err := g.AddLink(l.a, l.b, l.r); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	g := ctxFixture(t)
	sim := New(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunCtx(ctx, Config{Origin: 100}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := sim.ReachabilityCountCtx(ctx, Config{Origin: 100}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReachabilityCountCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	// The simulator must remain usable after an aborted run.
	n, err := sim.ReachabilityCount(Config{Origin: 100})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ReachabilityCount after aborted run = %d, want 5", n)
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	g := ctxFixture(t)
	a, b := New(g), New(g)
	want, err := a.Run(Config{Origin: 100, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.RunCtx(context.Background(), Config{Origin: 100, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Class {
		if got.Class[i] != want.Class[i] || got.Dist[i] != want.Dist[i] {
			t.Fatalf("node %d: RunCtx (class %v, dist %d) != Run (class %v, dist %d)",
				i, got.Class[i], got.Dist[i], want.Class[i], want.Dist[i])
		}
	}
}

func TestTrialCtxCanceled(t *testing.T) {
	g := ctxFixture(t)
	sw, err := NewLeakSweep(g, Config{Origin: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sw.TrialCtx(ctx, 7, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrialCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	// Still usable without a context afterwards.
	tr, err := sw.Trial(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaker != 7 {
		t.Fatalf("Trial leaker = %d, want 7", tr.Leaker)
	}
}

func TestRunLeakTrialsCtxCanceled(t *testing.T) {
	g := ctxFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunLeakTrialsCtx(ctx, g, Config{Origin: 100}, []astopo.ASN{6, 7}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunLeakTrialsCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSweepTrialsMatchesSequential(t *testing.T) {
	g := ctxFixture(t)
	sw, err := NewLeakSweep(g, Config{Origin: 100})
	if err != nil {
		t.Fatal(err)
	}
	leakers := []astopo.ASN{2, 3, 6, 7}
	got, err := sw.Trials(context.Background(), leakers, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := sw.Clone()
	for i, l := range leakers {
		want, err := ref.Trial(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("Trials[%d] = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestCountsCtxCanceled(t *testing.T) {
	g := ctxFixture(t)
	br := NewBatchReach(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := make([]int, 1)
	if err := br.CountsCtx(ctx, []int32{0}, nil, false, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountsCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	// Still usable without a context afterwards.
	oi, _ := g.Index(100)
	if err := br.Counts([]int32{int32(oi)}, nil, false, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 {
		t.Fatalf("Counts after aborted call = %d, want 5", out[0])
	}
}
