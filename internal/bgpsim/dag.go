package bgpsim

import (
	"fmt"
	"sort"

	"flatnet/internal/astopo"
)

// The tied-best next hops recorded by a propagation form a DAG: every
// next-hop edge decreases the best path length by exactly one, so no cycles
// are possible. This file derives the paper's path-level quantities from
// that DAG: best-path counts, reliance (§7.1), and membership tests for
// externally observed paths (Appendix A).

// PathCounts returns, for every AS, the number of tied-best paths from it to
// the origin, as float64 (counts can exceed uint64 range on dense graphs;
// only ratios are consumed downstream). ASes without routes get 0; the
// origin gets 1.
func (r *Result) PathCounts() ([]float64, error) {
	if r.NextHops == nil {
		return nil, fmt.Errorf("bgpsim: PathCounts requires TrackNextHops")
	}
	n := len(r.Class)
	counts := make([]float64, n)
	counts[r.Origin] = 1
	// Process in increasing best length: a node's count depends only on
	// nodes one hop closer to the origin.
	for _, v := range r.byDistance(false) {
		if v == r.Origin {
			continue
		}
		var c float64
		for _, u := range r.NextHops[v] {
			c += counts[u]
		}
		counts[v] = c
	}
	return counts, nil
}

// Reliance computes rely(o, a) for every AS a: the sum over destinations t
// of the fraction of t's tied-best paths toward the origin o in which a
// appears (§7.1). It equals the expected number of reachable ASes whose
// uniformly random tied-best path visits a. The origin's entry equals the
// number of ASes with routes (every best path terminates there), and every
// reachable AS relies on itself with weight ≥ 1.
func (r *Result) Reliance() ([]float64, error) {
	counts, err := r.PathCounts()
	if err != nil {
		return nil, err
	}
	n := len(r.Class)
	visits := make([]float64, n)
	// Seed one unit of probability mass at every AS holding a route
	// (each destination contributes its own path distribution), then
	// push mass toward the origin in decreasing-length order, splitting
	// at each node proportionally to downstream path counts.
	for i := 0; i < n; i++ {
		if r.Class[i] != ClassNone && int32(i) != r.Origin {
			visits[i] += 1
		}
	}
	for _, v := range r.byDistance(true) {
		if v == r.Origin || visits[v] == 0 {
			continue
		}
		var total float64
		for _, u := range r.NextHops[v] {
			total += counts[u]
		}
		if total == 0 {
			continue
		}
		m := visits[v]
		for _, u := range r.NextHops[v] {
			visits[u] += m * counts[u] / total
		}
	}
	return visits, nil
}

// byDistance returns the dense indexes of route-holding ASes ordered by
// best path length, descending when desc is true.
func (r *Result) byDistance(desc bool) []int32 {
	order := make([]int32, 0, len(r.Class))
	for i, c := range r.Class {
		if c != ClassNone {
			order = append(order, int32(i))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if desc {
			return r.Dist[order[i]] > r.Dist[order[j]]
		}
		return r.Dist[order[i]] < r.Dist[order[j]]
	})
	return order
}

// ContainsPath reports whether the given AS-level path (destination first,
// origin last) is one of the tied-best paths of its first element. Used to
// validate simulated paths against traceroute-observed paths (Appendix A).
func (r *Result) ContainsPath(path []astopo.ASN) (bool, error) {
	if r.NextHops == nil {
		return false, fmt.Errorf("bgpsim: ContainsPath requires TrackNextHops")
	}
	if len(path) < 2 {
		return false, fmt.Errorf("bgpsim: path must have at least two ASes")
	}
	last, ok := r.Graph.Index(path[len(path)-1])
	if !ok || int32(last) != r.Origin {
		return false, nil
	}
	cur, ok := r.Graph.Index(path[0])
	if !ok {
		return false, nil
	}
	for _, next := range path[1:] {
		ni, ok := r.Graph.Index(next)
		if !ok {
			return false, nil
		}
		found := false
		for _, u := range r.NextHops[cur] {
			if u == int32(ni) {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
		cur = ni
	}
	return true, nil
}

// AllBestPaths enumerates the tied-best paths from t to the origin
// (destination first, origin last), in lexicographic next-hop order,
// stopping after limit paths (limit must be positive; tied-path counts can
// grow exponentially on dense graphs — check PathCounts first).
func (r *Result) AllBestPaths(t astopo.ASN, limit int) ([][]astopo.ASN, error) {
	if r.NextHops == nil {
		return nil, fmt.Errorf("bgpsim: AllBestPaths requires TrackNextHops")
	}
	if limit <= 0 {
		return nil, fmt.Errorf("bgpsim: AllBestPaths limit must be positive")
	}
	ti, ok := r.Graph.Index(t)
	if !ok || r.Class[ti] == ClassNone {
		return nil, nil
	}
	var out [][]astopo.ASN
	var walk func(cur int32, prefix []astopo.ASN)
	walk = func(cur int32, prefix []astopo.ASN) {
		if len(out) >= limit {
			return
		}
		prefix = append(prefix, r.Graph.ASNAt(int(cur)))
		if cur == r.Origin {
			out = append(out, append([]astopo.ASN(nil), prefix...))
			return
		}
		hops := append([]int32(nil), r.NextHops[cur]...)
		sort.Slice(hops, func(i, j int) bool {
			return r.Graph.ASNAt(int(hops[i])) < r.Graph.ASNAt(int(hops[j]))
		})
		for _, h := range hops {
			walk(h, prefix)
		}
	}
	if int32(ti) == r.Origin {
		return [][]astopo.ASN{{t}}, nil
	}
	walk(int32(ti), nil)
	return out, nil
}

// SampleBestPath returns one tied-best path from t to the origin, choosing
// the lexicographically smallest next hop at every step (deterministic).
// Returns nil if t holds no route.
func (r *Result) SampleBestPath(t astopo.ASN) []astopo.ASN {
	if r.NextHops == nil {
		return nil
	}
	ti, ok := r.Graph.Index(t)
	if !ok || r.Class[ti] == ClassNone {
		return nil
	}
	path := []astopo.ASN{t}
	cur := int32(ti)
	for cur != r.Origin {
		hops := r.NextHops[cur]
		if len(hops) == 0 {
			return nil
		}
		best := hops[0]
		for _, h := range hops[1:] {
			if r.Graph.ASNAt(int(h)) < r.Graph.ASNAt(int(best)) {
				best = h
			}
		}
		cur = best
		path = append(path, r.Graph.ASNAt(int(cur)))
	}
	return path
}

// BuildExclude returns a dense exclusion mask covering the union of the
// given AS sets, for use as Config.Exclude.
func BuildExclude(g *astopo.Graph, sets ...astopo.ASSet) []bool {
	g.Freeze()
	mask := make([]bool, g.NumASes())
	for _, s := range sets {
		for a := range s {
			if i, ok := g.Index(a); ok {
				mask[i] = true
			}
		}
	}
	return mask
}

// BuildLocking returns a dense peer-locking mask for the given ASNs.
func BuildLocking(g *astopo.Graph, asns []astopo.ASN) []bool {
	g.Freeze()
	mask := make([]bool, g.NumASes())
	for _, a := range asns {
		if i, ok := g.Index(a); ok {
			mask[i] = true
		}
	}
	return mask
}
