package bgpsim

import (
	"math"
	"testing"

	"flatnet/internal/astopo"
)

// Fig. 5 of the paper: t receives three tied-best paths to o —
// x→u→o, x→v→o, and y→w→o. We realize it with customer routes only:
// u, v, w are providers of o; x is a provider of u and v; y a provider of
// w; t a provider of x and y.
func fig5Graph(t *testing.T) *astopo.Graph {
	const (
		o  = 1
		u  = 2
		v  = 3
		w  = 4
		x  = 5
		y  = 6
		tt = 7
	)
	return mustGraph(t,
		p2c(u, o), p2c(v, o), p2c(w, o),
		p2c(x, u), p2c(x, v), p2c(y, w),
		p2c(tt, x), p2c(tt, y),
	)
}

func TestPathCountsFig5(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := r.PathCounts()
	if err != nil {
		t.Fatal(err)
	}
	want := map[astopo.ASN]float64{1: 1, 2: 1, 3: 1, 4: 1, 5: 2, 6: 1, 7: 3}
	for a, wc := range want {
		i, _ := g.Index(a)
		if counts[i] != wc {
			t.Errorf("PathCounts[AS%d] = %v, want %v", a, counts[i], wc)
		}
	}
}

func TestRelianceFig5(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	rely, err := r.Reliance()
	if err != nil {
		t.Fatal(err)
	}
	// Destination t contributes the paper's fractions (x: 2/3; u,v,w,y:
	// 1/3); every AS additionally contributes 1 for itself, and x,y
	// contribute to u,v,w. Full expected values:
	//   t: 1
	//   x: 1 + 2/3          y: 1 + 1/3
	//   u: 1 + (1+2/3)/2    v: same       w: 1 + (1+1/3)
	//   o: 6 (all reachable ASes' paths terminate at o)
	want := map[astopo.ASN]float64{
		7: 1,
		5: 1 + 2.0/3,
		6: 1 + 1.0/3,
		2: 1 + (1+2.0/3/1)/2*1, // placeholder, computed below
	}
	// Compute u precisely: visits(x) = 5/3 split evenly between u and v.
	want[2] = 1 + (5.0/3)/2
	want[3] = 1 + (5.0/3)/2
	want[4] = 1 + 4.0/3
	want[1] = 6
	for a, wv := range want {
		i, _ := g.Index(a)
		if math.Abs(rely[i]-wv) > 1e-12 {
			t.Errorf("Reliance[AS%d] = %v, want %v", a, rely[i], wv)
		}
	}
	// Paper's spot checks: the fraction of t's paths through x is 2/3,
	// through y is 1/3 — visible as rely(x) - own(x) - 0 etc.
	ix, _ := g.Index(5)
	if math.Abs((rely[ix]-1)-2.0/3) > 1e-12 {
		t.Errorf("t's reliance contribution on x = %v, want 2/3", rely[ix]-1)
	}
}

// Reliance mass conservation: summing reliance over all ASes equals the
// total expected path length mass: sum over destinations of
// (expected path node count) = sum_t (E[len]+1).
func TestRelianceMassConservation(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	rely, err := r.Reliance()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range rely {
		total += v
	}
	// Every destination's path visits Dist+1 nodes (itself through the
	// origin); all of t's tied-best paths here have equal length, so the
	// expectation is exact.
	var want float64
	for i, c := range r.Class {
		if c == ClassNone || int32(i) == r.Origin {
			continue
		}
		want += float64(r.Dist[i] + 1)
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total reliance mass = %v, want %v", total, want)
	}
}

func TestContainsPath(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path []astopo.ASN
		want bool
	}{
		{[]astopo.ASN{7, 5, 2, 1}, true},  // t x u o
		{[]astopo.ASN{7, 5, 3, 1}, true},  // t x v o
		{[]astopo.ASN{7, 6, 4, 1}, true},  // t y w o
		{[]astopo.ASN{7, 5, 4, 1}, false}, // t x w o — not a DAG edge
		{[]astopo.ASN{7, 6, 2, 1}, false},
		{[]astopo.ASN{7, 1}, false},        // skips hops
		{[]astopo.ASN{7, 5, 2, 99}, false}, // wrong origin
	}
	for _, c := range cases {
		got, err := r.ContainsPath(c.path)
		if err != nil {
			t.Fatalf("ContainsPath(%v): %v", c.path, err)
		}
		if got != c.want {
			t.Errorf("ContainsPath(%v) = %v, want %v", c.path, got, c.want)
		}
	}
	if _, err := r.ContainsPath([]astopo.ASN{7}); err == nil {
		t.Error("single-element path accepted")
	}
}

func TestSampleBestPath(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	p := r.SampleBestPath(7)
	if len(p) != 4 || p[0] != 7 || p[3] != 1 {
		t.Fatalf("SampleBestPath(7) = %v", p)
	}
	ok, err := r.ContainsPath(p)
	if err != nil || !ok {
		t.Errorf("sampled path %v not contained: %v %v", p, ok, err)
	}
	if r.SampleBestPath(999) != nil {
		t.Error("path for unknown AS")
	}
}

func TestDAGRequiresTracking(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.PathCounts(); err == nil {
		t.Error("PathCounts without tracking succeeded")
	}
	if _, err := r.Reliance(); err == nil {
		t.Error("Reliance without tracking succeeded")
	}
	if _, err := r.ContainsPath([]astopo.ASN{7, 5, 2, 1}); err == nil {
		t.Error("ContainsPath without tracking succeeded")
	}
}

func TestAllBestPathsFig5(t *testing.T) {
	g := fig5Graph(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 1, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := r.AllBestPaths(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(paths), paths)
	}
	for _, p := range paths {
		ok, err := r.ContainsPath(p)
		if err != nil || !ok {
			t.Errorf("enumerated path %v not contained (%v)", p, err)
		}
	}
	// Counts agree with PathCounts for every AS.
	counts, err := r.PathCounts()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range g.ASes() {
		if r.Class[i] == ClassNone || int32(i) == r.Origin {
			continue
		}
		ps, err := r.AllBestPaths(a, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if float64(len(ps)) != counts[i] {
			t.Errorf("AS%d: %d enumerated paths, PathCounts says %v", a, len(ps), counts[i])
		}
	}
	// Limit is respected.
	two, err := r.AllBestPaths(7, 2)
	if err != nil || len(two) != 2 {
		t.Errorf("limit ignored: %d paths, %v", len(two), err)
	}
	// Origin itself.
	self, err := r.AllBestPaths(1, 5)
	if err != nil || len(self) != 1 || len(self[0]) != 1 {
		t.Errorf("origin path = %v, %v", self, err)
	}
	// Validation.
	if _, err := r.AllBestPaths(7, 0); err == nil {
		t.Error("zero limit accepted")
	}
	bare, err := sim.Run(Config{Origin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.AllBestPaths(7, 5); err == nil {
		t.Error("untracked result accepted")
	}
}
