package bgpsim_test

import (
	"fmt"
	"log"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
)

// Example runs one propagation and inspects route classes — the building
// block under every metric in the repository.
func Example() {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(20, 10, astopo.P2C) // 20 is origin 10's provider
	g.MustAddLink(20, 30, astopo.P2C) // 30 is another customer of 20
	g.MustAddLink(20, 40, astopo.P2P) // 40 peers with 20

	sim := bgpsim.New(g)
	res, err := sim.Run(bgpsim.Config{Origin: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range []astopo.ASN{20, 30, 40} {
		i, _ := g.Index(a)
		fmt.Printf("AS%d: %v route, %d hops\n", a, res.Class[i], res.Dist[i])
	}
	// Output:
	// AS20: customer route, 1 hops
	// AS30: provider route, 2 hops
	// AS40: peer route, 2 hops
}

// Example_routeLeak simulates §8's experiment: a misconfigured AS
// re-announces the origin's prefix, and an AS that prefers customer routes
// detours — unless it deploys peer locking.
func Example_routeLeak() {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(30, 20, astopo.P2C) // Tier-1 30 over provider 20
	g.MustAddLink(30, 21, astopo.P2C) // and over peer-AS 21
	g.MustAddLink(30, 22, astopo.P2C)
	g.MustAddLink(20, 10, astopo.P2C) // origin 10 buys from 20
	g.MustAddLink(10, 21, astopo.P2P) // and peers with 21 and 22
	g.MustAddLink(10, 22, astopo.P2P)
	g.MustAddLink(21, 40, astopo.P2C) // the leaker multihomes under 21 and 22
	g.MustAddLink(22, 40, astopo.P2C)

	sim := bgpsim.New(g)
	leak, err := sim.Run(bgpsim.Config{Origin: 10, Leaker: 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no locking: %d ASes detoured\n", leak.Detoured())

	locked, err := sim.Run(bgpsim.Config{
		Origin:  10,
		Leaker:  40,
		Locking: bgpsim.BuildLocking(g, []astopo.ASN{21, 22}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peer locking at 21+22: %d ASes detoured\n", locked.Detoured())
	// Output:
	// no locking: 2 ASes detoured
	// peer locking at 21+22: 0 ASes detoured
}
