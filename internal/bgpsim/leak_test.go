package bgpsim

import (
	"testing"

	"flatnet/internal/astopo"
)

// leakTopology builds a scenario where a leaker attracts traffic:
//
//	T (30) is a Tier-1 providing transit to P (20), Q (21), and R (22).
//	Origin o (10) is a customer of P and peers with Q and R.
//	Leaker l (40) is a customer of Q *and* R (multihomed).
//	Victim v (50) is a customer of Q.
//
// Without a leak, Q's best route to o is its direct peer route (length 1),
// and v routes via Q (provider route, length 2, legit).
// When l leaks, its tied-best legitimate routes run via Q and via R; Q's
// BGP loop detection rejects the copy whose path contains Q, but the copy
// via R is loop-free, arrives from customer l, and customer routes beat
// peer routes — so Q detours (the class-over-length preference §8.2
// discusses).
func leakTopology(t *testing.T) *astopo.Graph {
	return mustGraph(t,
		p2c(30, 20), p2c(30, 21), p2c(30, 22),
		p2c(20, 10),
		p2p(10, 21), p2p(10, 22),
		p2c(21, 40), p2c(22, 40),
		p2c(21, 50),
	)
}

func TestLeakDetoursCustomerPreferringAS(t *testing.T) {
	g := leakTopology(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10, Leaker: 40})
	if err != nil {
		t.Fatal(err)
	}
	iQ, _ := g.Index(21)
	// l's legitimate route: via its provider Q (peer route at Q),
	// dist 2. Leak seeds at 2; Q hears it from customer at dist 3 —
	// customer class beats Q's direct peer route (dist 1).
	if r.Class[iQ] != ClassCustomer {
		t.Errorf("Q class = %v, want customer (leak attracts via class preference)", r.Class[iQ])
	}
	if r.Flags[iQ]&ViaLeak == 0 {
		t.Error("Q not marked detoured")
	}
	if r.Flags[iQ]&ViaLegit != 0 {
		t.Error("Q marked legit despite strictly preferring the leak")
	}
	iV, _ := g.Index(50)
	if r.Flags[iV]&ViaLeak == 0 {
		t.Error("victim v not detoured (hears only Q's leaked best)")
	}
	// P hears the legit customer route from o at dist 1; the leaked
	// route reaches P only via T (provider, worse class).
	iP, _ := g.Index(20)
	if r.Flags[iP]&ViaLeak != 0 || r.Flags[iP]&ViaLegit == 0 {
		t.Errorf("P flags = %b, want legit only", r.Flags[iP])
	}
	if got := r.Detoured(); got < 2 {
		t.Errorf("Detoured = %d, want >= 2 (Q, v at least)", got)
	}
}

func TestLeakPeerLockingStopsLeak(t *testing.T) {
	g := leakTopology(t)
	sim := New(g)
	// Q deploys peer locking for o's prefixes: it accepts them only
	// directly from o, so the customer-leaked route is discarded.
	r, err := sim.Run(Config{
		Origin:  10,
		Leaker:  40,
		Locking: BuildLocking(g, []astopo.ASN{21}),
	})
	if err != nil {
		t.Fatal(err)
	}
	iQ, _ := g.Index(21)
	if r.Class[iQ] != ClassPeer || r.Flags[iQ]&ViaLeak != 0 {
		t.Errorf("Q with locking: class=%v flags=%b, want peer/legit-only", r.Class[iQ], r.Flags[iQ])
	}
	iV, _ := g.Index(50)
	if r.Flags[iV]&ViaLeak != 0 {
		t.Error("victim detoured despite Q's peer lock (erratum semantics: leaked routes never traverse locking ASes)")
	}
	// R does not lock, so it still detours (via the leaked copy whose
	// path avoids R).
	iR, _ := g.Index(22)
	if r.Flags[iR]&ViaLeak == 0 {
		t.Error("unlocked R should still be detoured")
	}
	// Locking both of the origin's leaked-side peers kills the leak
	// entirely.
	r2, err := sim.Run(Config{
		Origin:  10,
		Leaker:  40,
		Locking: BuildLocking(g, []astopo.ASN{21, 22}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Detoured(); got != 0 {
		t.Errorf("Detoured with Q+R locked = %d, want 0", got)
	}
}

// BGP loop detection: when the leaker's only legitimate path runs through
// an AS, that AS rejects every leaked copy (its own ASN is on the path).
func TestLeakLoopDetectionProtectsUpstream(t *testing.T) {
	// Single-homed leaker: l (40) is a customer of Q (21) only; Q peers
	// with the origin. Every leaked copy carries [l, Q, o], so Q — and
	// everyone who'd only be reachable through Q — stays clean.
	g := mustGraph(t,
		p2c(30, 20), p2c(30, 21),
		p2c(20, 10),
		p2p(10, 21),
		p2c(21, 40),
		p2c(21, 50),
	)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10, Leaker: 40})
	if err != nil {
		t.Fatal(err)
	}
	iQ, _ := g.Index(21)
	if r.Flags[iQ]&ViaLeak != 0 {
		t.Errorf("Q detoured despite being on the leaked AS path (flags=%b)", r.Flags[iQ])
	}
	if r.Class[iQ] != ClassPeer {
		t.Errorf("Q class = %v, want its legitimate peer route", r.Class[iQ])
	}
	iV, _ := g.Index(50)
	if r.Flags[iV]&ViaLeak != 0 {
		t.Error("v detoured; its only path to the leak runs through loop-protected Q")
	}
	// The leak still poisons ASes not on the path: T (30) hears the
	// leaked route from its customer Q? No — Q rejected it. In this
	// topology the leak goes nowhere at all.
	if got := r.Detoured(); got != 0 {
		t.Errorf("Detoured = %d, want 0 (fully contained by loop detection)", got)
	}
}

func TestLeakUnreachableLeakerIsNoop(t *testing.T) {
	g := mustGraph(t,
		p2c(20, 10),
		p2p(40, 41), // island disconnected from origin
	)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10, Leaker: 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Detoured(); got != 0 {
		t.Errorf("Detoured = %d, want 0 (leaker has no route to leak)", got)
	}
	i20, _ := g.Index(20)
	if r.Flags[i20]&ViaLegit == 0 {
		t.Error("legit route not flagged in no-op leak result")
	}
}

func TestLeakTiedRoutesSetBothFlags(t *testing.T) {
	// Victim w hears two equal customer routes: one from o directly
	// (its customer) and one from leaker l (also its customer) — l's
	// legit route must have length 0 offset... instead make distances
	// tie through symmetric intermediaries:
	//
	//	w (60) is provider of a (61) and b (62);
	//	a is provider of o (10); b is provider of l (40);
	//	l is also a provider of o, giving it a legit customer route of
	//	length 1. Leak seeds at 1; w hears legit o at dist 2 via a and
	//	leaked o at dist 1+... via b at dist 3. Not tied.
	//
	// Simplest true tie: l peers with o (legit dist 1); w is provider
	// of x (61) and y (62); x provider of o; y provider of l.
	// w legit: via x dist 2 (customer). w leaked: via y dist 1+1+... y
	// hears leak from customer l at dist 2, w at dist 3. Still not tied.
	//
	// Make the legit side longer: x is provider of m (63), m provider
	// of o. w legit via x: dist 3. w leaked via y: dist 3. Tied.
	g := mustGraph(t,
		p2c(61, 63), p2c(63, 10), // legit chain: w->x->m->o
		p2c(60, 61), p2c(60, 62),
		p2p(10, 40), // leaker peers with origin: legit dist 1
		p2c(62, 40), // leak chain: w->y->l
	)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10, Leaker: 40})
	if err != nil {
		t.Fatal(err)
	}
	iW, _ := g.Index(60)
	if r.Class[iW] != ClassCustomer || r.Dist[iW] != 3 {
		t.Fatalf("w: class=%v dist=%d, want customer/3", r.Class[iW], r.Dist[iW])
	}
	if r.Flags[iW] != ViaLegit|ViaLeak {
		t.Errorf("w flags = %b, want both (tied best routes)", r.Flags[iW])
	}
	if got := r.Detoured(); got == 0 {
		t.Error("tied AS not counted as detoured (worst-case rule)")
	}
}

func TestDetouredWeight(t *testing.T) {
	g := leakTopology(t)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10, Leaker: 40})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, g.NumASes())
	iQ, _ := g.Index(21)
	iV, _ := g.Index(50)
	w[iQ] = 2.5
	w[iV] = 1.5
	if got := r.DetouredWeight(w); got != 4.0 {
		t.Errorf("DetouredWeight = %v, want 4.0", got)
	}
}

// The announce-to-subset policy interacts with leaks: announcing only into
// the hierarchy makes peers prefer leaked customer routes.
func TestLeakWithRestrictedAnnouncement(t *testing.T) {
	g := leakTopology(t)
	sim := New(g)
	// Origin announces only to its provider P (not to peer Q).
	r, err := sim.Run(Config{
		Origin: 10,
		Policy: NewPolicy(g, []astopo.ASN{20}),
		Leaker: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Q now has no direct route; its routes are the leaked customer one.
	iQ, _ := g.Index(21)
	if r.Flags[iQ]&ViaLeak == 0 || r.Flags[iQ]&ViaLegit != 0 {
		t.Errorf("Q flags = %b, want leak only", r.Flags[iQ])
	}
}

// A hijack (forged origination at length zero) detours at least as many
// ASes as the corresponding leak: it competes at the best possible length
// and no loop detection protects the leaker's upstream.
func TestHijackDominatesLeak(t *testing.T) {
	g := leakTopology(t)
	sim := New(g)
	leak, err := sim.Run(Config{Origin: 10, Leaker: 40})
	if err != nil {
		t.Fatal(err)
	}
	hijack, err := sim.Run(Config{Origin: 10, Leaker: 40, Hijack: true})
	if err != nil {
		t.Fatal(err)
	}
	if hijack.Detoured() < leak.Detoured() {
		t.Errorf("hijack detours %d < leak detours %d", hijack.Detoured(), leak.Detoured())
	}
	// The hijacker's providers prefer the forged customer route at
	// length 1 over longer legitimate routes.
	iQ, _ := g.Index(21)
	if hijack.Flags[iQ]&ViaLeak == 0 {
		t.Error("Q not detoured by hijack")
	}
	// An unreachable "leaker" can still hijack (it forges origination).
	g2 := mustGraph(t, p2c(20, 10), p2p(40, 41))
	sim2 := New(g2)
	h2, err := sim2.Run(Config{Origin: 10, Leaker: 40, Hijack: true})
	if err != nil {
		t.Fatal(err)
	}
	i41, _ := g2.Index(41)
	if h2.Flags[i41]&ViaLeak == 0 {
		t.Error("island hijack did not capture the hijacker's peer")
	}
}
