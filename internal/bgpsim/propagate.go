package bgpsim

// propagate runs the three-stage Gao–Rexford propagation for the given
// seeds. Stage A spreads customer-learned routes up customer→provider
// edges; stage B grants peer-learned routes (one p2p hop from any
// customer-route holder or seed); stage C spreads provider-learned routes
// down provider→customer edges in increasing path-length order. All stages
// use a dial (bucket) queue keyed by path length so that multiple seeds
// with different initial lengths compete correctly.
// It fills the Simulator's class/dist/flags buffers and, when track is set,
// the next-hop arena (both valid until the next propagation). Every buffer
// it touches is owned by the Simulator and reused across runs, so
// steady-state propagations allocate nothing.
//
// When the Simulator carries a context (the *Ctx entry points), the stages
// poll it between distance buckets; propagate then returns false and the
// buffers are only partially filled. Without a context it always returns
// true.
func (s *Simulator) propagate(seeds []seed, exclude, locking []bool, track, breakTies bool) bool {
	n := s.n
	g := s.g
	class := s.class
	dist := s.dist
	flags := s.flags
	if track && s.vias == nil {
		s.vias = make([][]int32, n)
		s.nhOff = make([]int32, n)
		s.nhLen = make([]int32, n)
	}
	vias := s.vias
	for i := 0; i < n; i++ {
		class[i] = ClassNone
		dist[i] = -1
		flags[i] = 0
	}
	if track {
		for i := 0; i < n; i++ {
			s.nhLen[i] = 0
			vias[i] = vias[i][:0]
		}
		s.nhArena = s.nhArena[:0]
	}

	origin := seeds[0].idx
	for _, sd := range seeds {
		class[sd.idx] = ClassOrigin
		dist[sd.idx] = sd.dist0
		flags[sd.idx] |= sd.flag
	}

	// Tentative per-stage state, reused across runs.
	tent := s.tent
	tflags := s.tflags
	for i := range tent {
		tent[i] = -1
	}
	// The dial queue keeps its high-water shape across runs: only the
	// inner buckets are truncated, so steady-state runs never reallocate.
	clearBuckets := func() {
		for i := range s.buckets {
			s.buckets[i] = s.buckets[i][:0]
		}
	}
	clearBuckets()

	// accept reports whether `receiver` may install a route announced to
	// it by `sender`. Excluded ASes take no routes; seeds never replace
	// their origination; peer-locking ASes accept the prefix only
	// directly from the legitimate origin.
	accept := func(receiver, sender int32) bool {
		if exclude != nil && exclude[receiver] {
			return false
		}
		if class[receiver] == ClassOrigin {
			return false
		}
		if locking != nil && locking[receiver] && sender != origin {
			return false
		}
		return true
	}

	push := func(node, d int32, f uint8, via int32) {
		if s.leakBlocked != nil && s.leakBlocked[node] {
			f &^= ViaLeak // loop detection drops leaked copies here
			if f == 0 {
				return
			}
		}
		switch {
		case tent[node] == -1 || d < tent[node]:
			tent[node] = d
			tflags[node] = f
			if track {
				vias[node] = append(vias[node][:0], via)
			}
			for int(d) >= len(s.buckets) {
				s.buckets = append(s.buckets, nil)
			}
			s.buckets[d] = append(s.buckets[d], node)
		case d == tent[node] && !breakTies:
			tflags[node] |= f
			if track {
				vias[node] = append(vias[node], via)
			}
		}
	}

	settle := func(node int32, c Class) {
		class[node] = c
		dist[node] = tent[node]
		flags[node] |= tflags[node]
		if track {
			s.nhOff[node] = int32(len(s.nhArena))
			s.nhLen[node] = int32(len(vias[node]))
			s.nhArena = append(s.nhArena, vias[node]...)
		}
	}

	// ---- Stage A: customer routes ----
	for _, sd := range seeds {
		for _, p := range g.ProvidersOf(int(sd.idx)) {
			if !sd.exportAll && !sd.policy.allows(p) {
				continue
			}
			if !accept(p, sd.idx) {
				continue
			}
			push(p, sd.dist0+1, sd.flag, sd.idx)
		}
	}
	for d := 0; d < len(s.buckets); d++ {
		if s.canceled() {
			return false
		}
		for _, u := range s.buckets[d] {
			if class[u] != ClassNone || tent[u] != int32(d) {
				continue // stale entry or already settled
			}
			settle(u, ClassCustomer)
			for _, p := range g.ProvidersOf(int(u)) {
				if !accept(p, u) {
					continue
				}
				push(p, int32(d)+1, tflags[u], u)
			}
		}
	}

	// ---- Stage B: peer routes ----
	if s.canceled() {
		return false
	}
	// Reset tentative state for nodes still unclassed; classed nodes are
	// skipped by the class check, so only clear what stage B can touch.
	for i := 0; i < n; i++ {
		if class[i] == ClassNone {
			tent[i] = -1
			tflags[i] = 0
			if track {
				vias[i] = vias[i][:0]
			}
		}
	}
	peerContribute := func(pe, d int32, f uint8, via int32) {
		if class[pe] != ClassNone {
			return
		}
		if !accept(pe, via) {
			return
		}
		if s.leakBlocked != nil && s.leakBlocked[pe] {
			f &^= ViaLeak
			if f == 0 {
				return
			}
		}
		switch {
		case tent[pe] == -1 || d < tent[pe]:
			tent[pe] = d
			tflags[pe] = f
			if track {
				vias[pe] = append(vias[pe][:0], via)
			}
		case d == tent[pe] && !breakTies:
			tflags[pe] |= f
			if track {
				vias[pe] = append(vias[pe], via)
			}
		}
	}
	for _, sd := range seeds {
		for _, pe := range g.PeersOf(int(sd.idx)) {
			if !sd.exportAll && !sd.policy.allows(pe) {
				continue
			}
			peerContribute(pe, sd.dist0+1, sd.flag, sd.idx)
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if class[u] != ClassCustomer {
			continue
		}
		for _, pe := range g.PeersOf(int(u)) {
			peerContribute(pe, dist[u]+1, flags[u], u)
		}
	}
	for i := int32(0); i < int32(n); i++ {
		if class[i] == ClassNone && tent[i] >= 0 {
			settle(i, ClassPeer)
		}
	}

	// ---- Stage C: provider routes ----
	if s.canceled() {
		return false
	}
	for i := 0; i < n; i++ {
		if class[i] == ClassNone {
			tent[i] = -1
			tflags[i] = 0
			if track {
				vias[i] = vias[i][:0]
			}
		}
	}
	clearBuckets()
	downPush := func(c, d int32, f uint8, via int32) {
		if class[c] != ClassNone {
			return
		}
		if !accept(c, via) {
			return
		}
		push(c, d, f, via)
	}
	for _, sd := range seeds {
		for _, c := range g.CustomersOf(int(sd.idx)) {
			if !sd.exportAll && !sd.policy.allows(c) {
				continue
			}
			downPush(c, sd.dist0+1, sd.flag, sd.idx)
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if class[u] != ClassCustomer && class[u] != ClassPeer {
			continue
		}
		for _, c := range g.CustomersOf(int(u)) {
			downPush(c, dist[u]+1, flags[u], u)
		}
	}
	for d := 0; d < len(s.buckets); d++ {
		if s.canceled() {
			return false
		}
		for _, u := range s.buckets[d] {
			if class[u] != ClassNone || tent[u] != int32(d) {
				continue
			}
			settle(u, ClassProvider)
			for _, c := range g.CustomersOf(int(u)) {
				downPush(c, int32(d)+1, tflags[u], u)
			}
		}
	}
	return true
}

// canceled reports whether the Simulator's in-flight context (if any) is
// done. It is polled between propagation stages and distance buckets:
// cheap enough to keep the hot loops allocation- and branch-lean, frequent
// enough that a deadline aborts a propagation within a fraction of its
// O(V+E) runtime.
func (s *Simulator) canceled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// nextHopCSR is a compact tied-best next-hop DAG in CSR form: node v's next
// hops occupy arena[off[v] : off[v]+num[v]]. Spans are only meaningful for
// nodes settled by the propagation that filled it (num is reset to 0 for
// every node at the start of a tracked run).
type nextHopCSR struct {
	off   []int32
	num   []int32
	arena []int32
}

// at returns v's next-hop span (aliasing the arena; callers must not
// mutate or retain it past the arena's lifetime).
func (c nextHopCSR) at(v int32) []int32 {
	return c.arena[c.off[v] : c.off[v]+c.num[v]]
}

// clone deep-copies the CSR so it survives future propagations of the
// Simulator that built it.
func (c nextHopCSR) clone() nextHopCSR {
	return nextHopCSR{
		off:   append([]int32(nil), c.off...),
		num:   append([]int32(nil), c.num...),
		arena: append([]int32(nil), c.arena...),
	}
}

// materialize converts the CSR to the Result.NextHops representation: one
// freshly allocated flat backing array shared by all per-node slices (two
// allocations total, independent of the DAG's shape).
func (c nextHopCSR) materialize() [][]int32 {
	flat := append([]int32(nil), c.arena...)
	out := make([][]int32, len(c.off))
	for i := range out {
		if m := c.num[i]; m > 0 {
			o := c.off[i]
			out[i] = flat[o : o+m : o+m]
		}
	}
	return out
}

// csr returns a view of the Simulator's next-hop arena as filled by the
// latest tracked propagation. The view is invalidated by the next run.
func (s *Simulator) csr() nextHopCSR {
	return nextHopCSR{off: s.nhOff, num: s.nhLen, arena: s.nhArena}
}

// orderByDistance fills and returns s.order with the dense indexes of all
// classed nodes in ascending best-length order, using a counting sort over
// distances (they are small ints bounded by the dial queue's depth), stable
// by index within a distance. Valid until the next call.
func (s *Simulator) orderByDistance() []int32 {
	n := s.n
	maxd := int32(0)
	classed := 0
	for i := 0; i < n; i++ {
		if s.class[i] == ClassNone {
			continue
		}
		classed++
		if s.dist[i] > maxd {
			maxd = s.dist[i]
		}
	}
	if cap(s.distCnt) < int(maxd)+2 {
		s.distCnt = make([]int32, maxd+2)
	}
	cnt := s.distCnt[:maxd+2]
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < n; i++ {
		if s.class[i] != ClassNone {
			cnt[s.dist[i]+1]++
		}
	}
	for d := int32(1); d < int32(len(cnt)); d++ {
		cnt[d] += cnt[d-1]
	}
	if cap(s.order) < classed {
		s.order = make([]int32, classed)
	}
	order := s.order[:classed]
	for i := 0; i < n; i++ {
		if s.class[i] != ClassNone {
			order[cnt[s.dist[i]]] = int32(i)
			cnt[s.dist[i]]++
		}
	}
	s.order = order
	return order
}

// pathCountsCSR fills counts[v] with the number of tied-best DAG paths from
// v to the origin (N(w) in the loop-detection derivation). order must hold
// the classed nodes in ascending best-length order; every next-hop edge
// drops the best length by exactly one, so each node only reads counts
// settled by an earlier distance bucket.
func pathCountsCSR(csr nextHopCSR, class []Class, dist []int32, order []int32, counts []float64) {
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range order {
		if class[v] == ClassOrigin && dist[v] == 0 {
			counts[v] = 1
			continue
		}
		var c float64
		for _, u := range csr.at(v) {
			c += counts[u]
		}
		counts[v] = c
	}
}

// blockedOnAllPaths marks in blocked the ASes appearing on every tied-best
// path from the leaker toward the origin — the set whose BGP loop detection
// rejects every leaked copy. Uses path-count products: with N(w) DAG paths
// from w to the origin and A(w) DAG paths from the leaker to w, node w lies
// on all leaker paths iff A(w)·N(w) equals the leaker's total path count.
// counts must come from pathCountsCSR over the same order; reach is
// caller-provided scratch. All inputs are read-only but reach and blocked
// are overwritten, so distinct callers may share csr/order/counts.
func blockedOnAllPaths(csr nextHopCSR, order []int32, counts []float64, leaker int32, reach []float64, blocked []bool) {
	for i := range reach {
		reach[i] = 0
	}
	reach[leaker] = 1
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		rv := reach[v]
		if rv == 0 {
			continue
		}
		for _, u := range csr.at(v) {
			reach[u] += rv
		}
	}
	for i := range blocked {
		blocked[i] = false
	}
	total := counts[leaker]
	if total == 0 {
		return
	}
	for i := range blocked {
		if int32(i) == leaker {
			continue
		}
		p := reach[i] * counts[i]
		if p > 0 && p >= total*(1-1e-9) {
			blocked[i] = true
		}
	}
}
