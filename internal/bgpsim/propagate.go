package bgpsim

// propagate runs the three-stage Gao–Rexford propagation for the given
// seeds. Stage A spreads customer-learned routes up customer→provider
// edges; stage B grants peer-learned routes (one p2p hop from any
// customer-route holder or seed); stage C spreads provider-learned routes
// down provider→customer edges in increasing path-length order. All stages
// use a dial (bucket) queue keyed by path length so that multiple seeds
// with different initial lengths compete correctly.
// It fills the Simulator's class/dist/flags buffers (valid until the next
// propagation) and returns the next-hop DAG when track is set.
func (s *Simulator) propagate(seeds []seed, exclude, locking []bool, track, breakTies bool) [][]int32 {
	n := s.n
	g := s.g
	class := s.class
	dist := s.dist
	flags := s.flags
	for i := 0; i < n; i++ {
		class[i] = ClassNone
		dist[i] = -1
		flags[i] = 0
	}
	var nh [][]int32
	if track {
		nh = make([][]int32, n)
	}

	origin := seeds[0].idx
	for _, sd := range seeds {
		class[sd.idx] = ClassOrigin
		dist[sd.idx] = sd.dist0
		flags[sd.idx] |= sd.flag
	}

	// Tentative per-stage state, reused across runs.
	tent := s.tent
	tflags := s.tflags
	var vias [][]int32
	if track {
		vias = make([][]int32, n)
	}
	for i := range tent {
		tent[i] = -1
	}
	s.buckets = s.buckets[:0]

	// accept reports whether `receiver` may install a route announced to
	// it by `sender`. Excluded ASes take no routes; seeds never replace
	// their origination; peer-locking ASes accept the prefix only
	// directly from the legitimate origin.
	accept := func(receiver, sender int32) bool {
		if exclude != nil && exclude[receiver] {
			return false
		}
		if class[receiver] == ClassOrigin {
			return false
		}
		if locking != nil && locking[receiver] && sender != origin {
			return false
		}
		return true
	}

	push := func(node, d int32, f uint8, via int32) {
		if s.leakBlocked != nil && s.leakBlocked[node] {
			f &^= ViaLeak // loop detection drops leaked copies here
			if f == 0 {
				return
			}
		}
		switch {
		case tent[node] == -1 || d < tent[node]:
			tent[node] = d
			tflags[node] = f
			if track {
				vias[node] = append(vias[node][:0], via)
			}
			for int(d) >= len(s.buckets) {
				s.buckets = append(s.buckets, nil)
			}
			s.buckets[d] = append(s.buckets[d], node)
		case d == tent[node] && !breakTies:
			tflags[node] |= f
			if track {
				vias[node] = append(vias[node], via)
			}
		}
	}

	settle := func(node int32, c Class) {
		class[node] = c
		dist[node] = tent[node]
		flags[node] |= tflags[node]
		if track {
			nh[node] = append([]int32(nil), vias[node]...)
		}
	}

	// ---- Stage A: customer routes ----
	for _, sd := range seeds {
		for _, p := range g.ProvidersOf(int(sd.idx)) {
			if !sd.exportAll && !sd.policy.allows(p) {
				continue
			}
			if !accept(p, sd.idx) {
				continue
			}
			push(p, sd.dist0+1, sd.flag, sd.idx)
		}
	}
	for d := 0; d < len(s.buckets); d++ {
		for _, u := range s.buckets[d] {
			if class[u] != ClassNone || tent[u] != int32(d) {
				continue // stale entry or already settled
			}
			settle(u, ClassCustomer)
			for _, p := range g.ProvidersOf(int(u)) {
				if !accept(p, u) {
					continue
				}
				push(p, int32(d)+1, tflags[u], u)
			}
		}
	}

	// ---- Stage B: peer routes ----
	// Reset tentative state for nodes still unclassed; classed nodes are
	// skipped by the class check, so only clear what stage B can touch.
	for i := 0; i < n; i++ {
		if class[i] == ClassNone {
			tent[i] = -1
			tflags[i] = 0
			if track {
				vias[i] = vias[i][:0]
			}
		}
	}
	peerContribute := func(pe, d int32, f uint8, via int32) {
		if class[pe] != ClassNone {
			return
		}
		if !accept(pe, via) {
			return
		}
		if s.leakBlocked != nil && s.leakBlocked[pe] {
			f &^= ViaLeak
			if f == 0 {
				return
			}
		}
		switch {
		case tent[pe] == -1 || d < tent[pe]:
			tent[pe] = d
			tflags[pe] = f
			if track {
				vias[pe] = append(vias[pe][:0], via)
			}
		case d == tent[pe] && !breakTies:
			tflags[pe] |= f
			if track {
				vias[pe] = append(vias[pe], via)
			}
		}
	}
	for _, sd := range seeds {
		for _, pe := range g.PeersOf(int(sd.idx)) {
			if !sd.exportAll && !sd.policy.allows(pe) {
				continue
			}
			peerContribute(pe, sd.dist0+1, sd.flag, sd.idx)
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if class[u] != ClassCustomer {
			continue
		}
		for _, pe := range g.PeersOf(int(u)) {
			peerContribute(pe, dist[u]+1, flags[u], u)
		}
	}
	for i := int32(0); i < int32(n); i++ {
		if class[i] == ClassNone && tent[i] >= 0 {
			settle(i, ClassPeer)
		}
	}

	// ---- Stage C: provider routes ----
	for i := 0; i < n; i++ {
		if class[i] == ClassNone {
			tent[i] = -1
			tflags[i] = 0
			if track {
				vias[i] = vias[i][:0]
			}
		}
	}
	s.buckets = s.buckets[:0]
	downPush := func(c, d int32, f uint8, via int32) {
		if class[c] != ClassNone {
			return
		}
		if !accept(c, via) {
			return
		}
		push(c, d, f, via)
	}
	for _, sd := range seeds {
		for _, c := range g.CustomersOf(int(sd.idx)) {
			if !sd.exportAll && !sd.policy.allows(c) {
				continue
			}
			downPush(c, sd.dist0+1, sd.flag, sd.idx)
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if class[u] != ClassCustomer && class[u] != ClassPeer {
			continue
		}
		for _, c := range g.CustomersOf(int(u)) {
			downPush(c, dist[u]+1, flags[u], u)
		}
	}
	for d := 0; d < len(s.buckets); d++ {
		for _, u := range s.buckets[d] {
			if class[u] != ClassNone || tent[u] != int32(d) {
				continue
			}
			settle(u, ClassProvider)
			for _, c := range g.CustomersOf(int(u)) {
				downPush(c, int32(d)+1, tflags[u], u)
			}
		}
	}

	return nh
}
