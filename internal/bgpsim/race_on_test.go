//go:build race

package bgpsim

// raceEnabled reports whether the race detector is active; its shadow
// allocations make AllocsPerRun-based assertions unreliable.
const raceEnabled = true
