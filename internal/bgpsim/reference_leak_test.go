package bgpsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flatnet/internal/astopo"
)

// refPath is one complete AS path in the exhaustive reference engine.
type refPath struct {
	hops []int32 // from the holder toward the origin (exclusive of holder)
	leak bool
}

// refState is an AS's full tied-best route set.
type refState struct {
	class Class
	dist  int32
	paths []refPath
}

// refPropagateFull is an exhaustive fixed-point engine that tracks complete
// path sets (not just next hops), supports a leaker re-announcing the
// origin's prefix to everyone, peer-locking filters, and announcement
// policies. It is O(paths) and only usable on tiny graphs; it exists to
// cross-validate the production engine's leak semantics and reliance
// computation.
func refPropagateFull(g *astopo.Graph, cfg Config) ([]refState, error) {
	g.Freeze()
	n := g.NumASes()
	oi, ok := g.Index(cfg.Origin)
	if !ok {
		return nil, errNotFound
	}
	li := -1
	if cfg.Leaker != 0 {
		x, ok := g.Index(cfg.Leaker)
		if !ok {
			return nil, errNotFound
		}
		li = x
	}

	relClass := func(v, u int32) Class {
		for _, c := range g.CustomersOf(int(v)) {
			if c == u {
				return ClassCustomer
			}
		}
		for _, p := range g.PeersOf(int(v)) {
			if p == u {
				return ClassPeer
			}
		}
		return ClassProvider
	}

	// run computes the fixed point; when leakPaths is non-nil the leaker
	// originates the prefix carrying its legitimate AS paths (so
	// downstream loop detection sees the full path, as real BGP would).
	run := func(leakDist int32, leakPaths []refPath) []refState {
		state := make([]refState, n)
		for i := range state {
			state[i] = refState{class: ClassNone, dist: -1}
		}
		state[oi] = refState{class: ClassOrigin, dist: 0, paths: []refPath{{}}}
		if leakDist >= 0 {
			state[li] = refState{class: ClassOrigin, dist: leakDist, paths: leakPaths}
		}
		for round := 0; round < 2*n+4; round++ {
			changed := false
			next := make([]refState, n)
			copy(next, state)
			for v := int32(0); v < int32(n); v++ {
				if int(v) == oi || (leakDist >= 0 && int(v) == li) {
					continue
				}
				if cfg.Exclude != nil && cfg.Exclude[v] {
					continue
				}
				best := refState{class: ClassNone, dist: -1}
				consider := func(u int32) {
					if cfg.Exclude != nil && cfg.Exclude[u] {
						return
					}
					su := state[u]
					if su.class == ClassNone {
						return
					}
					// Export rule: origin per policy; leaker to all;
					// others only customer-learned routes except to
					// their customers.
					switch {
					case int(u) == oi:
						if !cfg.Policy.allows(v) {
							return
						}
					case leakDist >= 0 && int(u) == li:
						// leaker exports to everyone (leak run only)
					default:
						if su.class != ClassCustomer {
							exportsToCust := false
							for _, c := range g.CustomersOf(int(u)) {
								if c == v {
									exportsToCust = true
									break
								}
							}
							if !exportsToCust {
								return
							}
						}
					}
					// Peer locking: v accepts the prefix only from the
					// origin directly.
					if cfg.Locking != nil && cfg.Locking[v] && int(u) != oi {
						return
					}
					// Loop avoidance first: a route is usable only if
					// at least one of its paths does not pass back
					// through v (BGP's AS-path loop detection).
					var cand []refPath
					for _, p := range su.paths {
						loops := false
						for _, h := range p.hops {
							if h == v {
								loops = true
								break
							}
						}
						if loops {
							continue
						}
						cand = append(cand, refPath{
							hops: append([]int32{u}, p.hops...),
							leak: p.leak || (leakDist >= 0 && int(u) == li),
						})
					}
					if len(cand) == 0 {
						return
					}
					c := relClass(v, u)
					d := su.dist + 1
					if best.class == ClassNone || c > best.class || (c == best.class && d < best.dist) {
						best = refState{class: c, dist: d}
					}
					if c == best.class && d == best.dist {
						best.paths = append(best.paths, cand...)
					}
				}
				for _, u := range g.ProvidersOf(int(v)) {
					consider(u)
				}
				for _, u := range g.PeersOf(int(v)) {
					consider(u)
				}
				for _, u := range g.CustomersOf(int(v)) {
					consider(u)
				}
				if best.class != next[v].class || best.dist != next[v].dist || len(best.paths) != len(next[v].paths) {
					next[v] = best
					changed = true
				} else {
					next[v] = best // refresh paths even if counts equal
				}
			}
			state = next
			if !changed && round > 0 {
				break
			}
		}
		return state
	}

	if li < 0 {
		return run(-1, nil), nil
	}
	// Pre-pass: the leaker's legitimate routes; the leak re-announces
	// them (marked leaked) to everyone.
	pre := run(-1, nil)
	if pre[li].class == ClassNone {
		return pre, nil
	}
	// The production engine models loop detection at the granularity of
	// the whole tied set: a leaked copy dies only at ASes on *every* one
	// of the leaker's tied-best paths (see Simulator.onAllLeakerPaths).
	// Mirror that here by seeding a single pseudo-path whose hop set is
	// the intersection of the leaker's paths.
	common := map[int32]int{}
	for _, p := range pre[li].paths {
		seen := map[int32]bool{}
		for _, h := range p.hops {
			if !seen[h] {
				seen[h] = true
				common[h]++
			}
		}
	}
	var hops []int32
	for h, c := range common {
		if c == len(pre[li].paths) {
			hops = append(hops, h)
		}
	}
	return run(pre[li].dist, []refPath{{hops: hops, leak: true}}), nil
}

var errNotFound = &notFoundError{}

type notFoundError struct{}

func (*notFoundError) Error() string { return "bgpsim: AS not in graph" }

// TestLeakMatchesReference cross-validates leak detour flags against the
// exhaustive engine on random small graphs with random locking sets and
// policies.
func TestLeakMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		var leaker astopo.ASN
		for {
			leaker = all[rng.Intn(len(all))]
			if leaker != origin {
				break
			}
		}
		cfg := Config{Origin: origin, Leaker: leaker}
		// Random locking among origin's neighbors.
		if rng.Intn(2) == 1 {
			var locked []astopo.ASN
			for _, nb := range append(append(g.Providers(origin), g.Peers(origin)...), g.Customers(origin)...) {
				if rng.Intn(2) == 0 {
					locked = append(locked, nb)
				}
			}
			cfg.Locking = BuildLocking(g, locked)
		}
		// Random announcement policy.
		if rng.Intn(3) == 0 {
			var allowed []astopo.ASN
			for _, nb := range append(append(g.Providers(origin), g.Peers(origin)...), g.Customers(origin)...) {
				if rng.Intn(2) == 0 {
					allowed = append(allowed, nb)
				}
			}
			cfg.Policy = NewPolicy(g, allowed)
		}

		sim := New(g)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref, err := refPropagateFull(g, cfg)
		if err != nil {
			return false
		}
		oi, _ := g.Index(origin)
		liIdx, _ := g.Index(leaker)
		for i := range ref {
			if i == oi || i == liIdx {
				continue
			}
			if ref[i].class != res.Class[i] || ref[i].dist != res.Dist[i] {
				t.Logf("seed %d AS%d: ref %v/%d sim %v/%d",
					seed, g.ASNAt(i), ref[i].class, ref[i].dist, res.Class[i], res.Dist[i])
				return false
			}
			if ref[i].class == ClassNone {
				continue
			}
			refLeak, refLegit := false, false
			for _, p := range ref[i].paths {
				if p.leak {
					refLeak = true
				} else {
					refLegit = true
				}
			}
			simLeak := res.Flags[i]&ViaLeak != 0
			simLegit := res.Flags[i]&ViaLegit != 0
			if refLeak != simLeak || refLegit != simLegit {
				t.Logf("seed %d AS%d: ref leak=%v legit=%v, sim leak=%v legit=%v (class %v dist %d)",
					seed, g.ASNAt(i), refLeak, refLegit, simLeak, simLegit, res.Class[i], res.Dist[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRelianceMatchesExhaustive cross-validates the DAG-based reliance
// against explicit enumeration of all tied-best paths.
func TestRelianceMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]

		sim := New(g)
		res, err := sim.Run(Config{Origin: origin, TrackNextHops: true})
		if err != nil {
			return false
		}
		rely, err := res.Reliance()
		if err != nil {
			return false
		}
		ref, err := refPropagateFull(g, Config{Origin: origin})
		if err != nil {
			return false
		}
		// Exhaustive reliance: for every destination t, each AS a gets
		// (paths of t containing a) / (paths of t). A path "contains"
		// t itself and every hop.
		n := g.NumASes()
		want := make([]float64, n)
		for ti := 0; ti < n; ti++ {
			st := ref[ti]
			if st.class == ClassNone || int32(ti) == res.Origin {
				continue
			}
			if len(st.paths) == 0 {
				return false
			}
			counts := make(map[int32]int)
			for _, p := range st.paths {
				counts[int32(ti)]++
				for _, h := range p.hops {
					counts[h]++
				}
			}
			for a, c := range counts {
				want[a] += float64(c) / float64(len(st.paths))
			}
		}
		for i := range want {
			if math.Abs(want[i]-rely[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Logf("seed %d AS%d: exhaustive %v, DAG %v", seed, g.ASNAt(i), want[i], rely[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
