package bgpsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flatnet/internal/astopo"
)

// This file cross-validates the three-stage propagation against a
// brute-force reference implementation: a literal fixed-point iteration of
// BGP route selection and valley-free export. Random topologies are
// generated and every AS's route class, best length, reachability, and
// tied-best next-hop set must agree.

// refRoute is one AS's routing state in the reference engine.
type refRoute struct {
	class Class
	dist  int32
	nhops map[int32]bool
}

// refPropagate computes the Gao-Rexford fixed point by simultaneous
// iteration: in every round each AS re-selects its best routes from its
// neighbors' previous-round state, until nothing changes.
func refPropagate(g *astopo.Graph, origin astopo.ASN, exclude []bool) []refRoute {
	g.Freeze()
	n := g.NumASes()
	state := make([]refRoute, n)
	for i := range state {
		state[i] = refRoute{class: ClassNone, dist: -1}
	}
	oi, _ := g.Index(origin)
	state[oi] = refRoute{class: ClassOrigin, dist: 0}

	// relClass returns the class v would assign a route learned from u.
	relClass := func(v, u int32) Class {
		for _, c := range g.CustomersOf(int(v)) {
			if c == u {
				return ClassCustomer
			}
		}
		for _, p := range g.PeersOf(int(v)) {
			if p == u {
				return ClassPeer
			}
		}
		return ClassProvider
	}
	// exports reports whether u announces its best route to v.
	exports := func(u, v int32) bool {
		if state[u].class == ClassNone {
			return false
		}
		if state[u].class == ClassOrigin || state[u].class == ClassCustomer {
			return true
		}
		// peer/provider-learned: only to customers.
		for _, c := range g.CustomersOf(int(u)) {
			if c == v {
				return true
			}
		}
		return false
	}

	for round := 0; round < n+2; round++ {
		changed := false
		next := make([]refRoute, n)
		copy(next, state)
		for v := int32(0); v < int32(n); v++ {
			if int(v) == oi {
				continue
			}
			if exclude != nil && exclude[v] {
				continue
			}
			best := refRoute{class: ClassNone, dist: -1, nhops: map[int32]bool{}}
			consider := func(u int32) {
				if exclude != nil && exclude[u] {
					return
				}
				if !exports(u, v) {
					return
				}
				c := relClass(v, u)
				d := state[u].dist + 1
				switch {
				case best.class == ClassNone || c > best.class || (c == best.class && d < best.dist):
					best = refRoute{class: c, dist: d, nhops: map[int32]bool{u: true}}
				case c == best.class && d == best.dist:
					best.nhops[u] = true
				}
			}
			for _, u := range g.ProvidersOf(int(v)) {
				consider(u)
			}
			for _, u := range g.PeersOf(int(v)) {
				consider(u)
			}
			for _, u := range g.CustomersOf(int(v)) {
				consider(u)
			}
			if best.class != next[v].class || best.dist != next[v].dist || !sameSet(best.nhops, next[v].nhops) {
				next[v] = best
				changed = true
			}
		}
		state = next
		if !changed {
			break
		}
	}
	return state
}

func sameSet(a, b map[int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// randomTopology builds a small random valley-structured graph: a few
// provider-free "top" ASes meshed as peers, others attaching below with
// random extra peering.
func randomTopology(rng *rand.Rand) *astopo.Graph {
	n := 8 + rng.Intn(18)
	g := astopo.NewGraph(n, n*3)
	asn := func(i int) astopo.ASN { return astopo.ASN(i + 1) }
	top := 2 + rng.Intn(2)
	for i := 0; i < top; i++ {
		for j := i + 1; j < top; j++ {
			g.MustAddLink(asn(i), asn(j), astopo.P2P)
		}
	}
	for i := top; i < n; i++ {
		// providers among earlier nodes
		nprov := 1 + rng.Intn(2)
		for k := 0; k < nprov; k++ {
			p := rng.Intn(i)
			if _, ok := g.HasLink(asn(p), asn(i)); !ok {
				g.MustAddLink(asn(p), asn(i), astopo.P2C)
			}
		}
	}
	// random extra peer links
	for k := 0; k < n; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddPeerIfAbsent(asn(a), asn(b))
		}
	}
	return g
}

func TestPropagationMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]

		var exclude []bool
		if rng.Intn(2) == 1 {
			exclude = make([]bool, g.NumASes())
			oi, _ := g.Index(origin)
			for i := range exclude {
				if i != oi && rng.Intn(5) == 0 {
					exclude[i] = true
				}
			}
		}

		sim := New(g)
		res, err := sim.Run(Config{Origin: origin, Exclude: exclude, TrackNextHops: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref := refPropagate(g, origin, exclude)
		for i := range ref {
			if int32(i) == res.Origin {
				continue
			}
			if ref[i].class != res.Class[i] || ref[i].dist != res.Dist[i] {
				t.Logf("seed %d AS%d: ref %v/%d, sim %v/%d",
					seed, g.ASNAt(i), ref[i].class, ref[i].dist, res.Class[i], res.Dist[i])
				return false
			}
			if ref[i].class == ClassNone {
				continue
			}
			got := map[int32]bool{}
			for _, h := range res.NextHops[i] {
				got[h] = true
			}
			if !sameSet(ref[i].nhops, got) {
				t.Logf("seed %d AS%d: ref nhops %v, sim nhops %v", seed, g.ASNAt(i), ref[i].nhops, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Valley-free property: every sampled best path has zero or more c2p links,
// at most one p2p link, then zero or more p2c links.
func TestSampledPathsValleyFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		sim := New(g)
		res, err := sim.Run(Config{Origin: origin, TrackNextHops: true})
		if err != nil {
			return false
		}
		for _, tASN := range all {
			p := res.SampleBestPath(tASN)
			if p == nil {
				continue
			}
			// Walking t -> origin: the route at t was announced along
			// origin -> ... -> t. Reverse to announcement order.
			rev := make([]astopo.ASN, len(p))
			for i := range p {
				rev[i] = p[len(p)-1-i]
			}
			// Announcement travels origin->t. Valley-free as seen by
			// the traffic direction t->origin (p itself): uphill
			// (c2p) then <=1 peer then downhill (p2c).
			phase := 0 // 0=climb 1=descend
			peers := 0
			for i := 1; i < len(p); i++ {
				rel, ok := g.HasLink(p[i-1], p[i])
				if !ok {
					return false
				}
				switch rel {
				case astopo.C2P: // climbing
					if phase != 0 {
						t.Logf("seed %d: valley in %v at %d", seed, p, i)
						return false
					}
				case astopo.P2P:
					peers++
					if peers > 1 || phase != 0 {
						t.Logf("seed %d: extra peer/valley in %v at %d", seed, p, i)
						return false
					}
					phase = 1
				case astopo.P2C: // descending
					phase = 1
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Reachability is monotone: excluding more ASes never increases it.
func TestReachabilityMonotoneInExclusions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		all := g.ASes()
		origin := all[rng.Intn(len(all))]
		oi, _ := g.Index(origin)
		sim := New(g)
		mask := make([]bool, g.NumASes())
		prev := g.NumASes()
		for step := 0; step < 4; step++ {
			n, err := sim.ReachabilityCount(Config{Origin: origin, Exclude: append([]bool(nil), mask...)})
			if err != nil {
				return false
			}
			if n > prev {
				t.Logf("seed %d step %d: reach grew %d -> %d", seed, step, prev, n)
				return false
			}
			prev = n
			// grow the mask
			for i := range mask {
				if i != oi && rng.Intn(6) == 0 {
					mask[i] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
