package bgpsim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/par"
)

// LeakScenario names the announcement/filtering configurations of §8.2.
type LeakScenario int

const (
	// AnnounceAll: the origin announces to all neighbors; no filters.
	AnnounceAll LeakScenario = iota
	// AnnounceAllLockT1: announce to all; the origin's Tier-1 neighbors
	// deploy peer locking.
	AnnounceAllLockT1
	// AnnounceAllLockT1T2: announce to all; Tier-1 and Tier-2 neighbors
	// lock.
	AnnounceAllLockT1T2
	// AnnounceAllLockAll: announce to all; every neighbor locks.
	AnnounceAllLockAll
	// AnnounceHierarchy: announce only to Tier-1s, Tier-2s, and the
	// origin's transit providers (ignoring its rich edge peering).
	AnnounceHierarchy
)

func (s LeakScenario) String() string {
	switch s {
	case AnnounceAll:
		return "announce to all"
	case AnnounceAllLockT1:
		return "announce to all, T1 peer lock"
	case AnnounceAllLockT1T2:
		return "announce to all, T1+T2 peer lock"
	case AnnounceAllLockAll:
		return "announce to all, global peer lock"
	case AnnounceHierarchy:
		return "announce to T1, T2, and providers"
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// LeakScenarios lists all scenarios in the order the paper's figures plot
// them.
func LeakScenarios() []LeakScenario {
	return []LeakScenario{
		AnnounceAllLockAll,
		AnnounceAllLockT1T2,
		AnnounceAllLockT1,
		AnnounceAll,
		AnnounceHierarchy,
	}
}

// ScenarioConfig builds the propagation Config (minus the leaker) for a
// scenario: the announcement policy and the peer-locking mask, derived from
// the origin's neighbors and the Tier-1/Tier-2 sets.
func ScenarioConfig(g *astopo.Graph, origin astopo.ASN, tier1, tier2 astopo.ASSet, scen LeakScenario) Config {
	cfg := Config{Origin: origin}
	neighbors := append(append(append([]astopo.ASN(nil),
		g.Providers(origin)...),
		g.Peers(origin)...),
		g.Customers(origin)...)
	switch scen {
	case AnnounceAll:
		// zero config
	case AnnounceAllLockT1, AnnounceAllLockT1T2, AnnounceAllLockAll:
		var locked []astopo.ASN
		for _, n := range neighbors {
			switch {
			case scen == AnnounceAllLockAll:
				locked = append(locked, n)
			case tier1.Has(n):
				locked = append(locked, n)
			case scen == AnnounceAllLockT1T2 && tier2.Has(n):
				locked = append(locked, n)
			}
		}
		cfg.Locking = BuildLocking(g, locked)
	case AnnounceHierarchy:
		var allowed []astopo.ASN
		providers := astopo.NewASSet(g.Providers(origin)...)
		for _, n := range neighbors {
			if tier1.Has(n) || tier2.Has(n) || providers.Has(n) {
				allowed = append(allowed, n)
			}
		}
		cfg.Policy = NewPolicy(g, allowed)
	}
	return cfg
}

// LeakTrial is the outcome of one leak simulation.
type LeakTrial struct {
	Leaker astopo.ASN
	// DetouredFrac is the fraction of ASes (excluding origin and leaker)
	// with at least one tied-best route toward the leaker.
	DetouredFrac float64
	// DetouredUserFrac is the user-population-weighted fraction (0 when
	// no weights were supplied).
	DetouredUserFrac float64
}

// RunLeakTrials simulates cfgBase once per leaker, in parallel, and returns
// one LeakTrial per leaker in input order. weights may be nil. The leak-free
// pre-pass is computed once per configuration through a LeakSweep and
// shared by every worker, so each trial pays only for the per-leaker loop
// detection and leak propagation.
func RunLeakTrials(g *astopo.Graph, cfgBase Config, leakers []astopo.ASN, weights []float64) ([]LeakTrial, error) {
	return RunLeakTrialsCtx(context.Background(), g, cfgBase, leakers, weights)
}

// RunLeakTrialsCtx is RunLeakTrials with cancellation: once ctx is done no
// new trials start, in-flight trials abort between distance buckets, and
// ctx.Err() is returned.
func RunLeakTrialsCtx(ctx context.Context, g *astopo.Graph, cfgBase Config, leakers []astopo.ASN, weights []float64) ([]LeakTrial, error) {
	g.Freeze()
	sweep, err := NewLeakSweep(g, cfgBase)
	if err != nil {
		return nil, err
	}
	trials, err := sweep.Trials(ctx, leakers, weights)
	sweep.Release()
	return trials, err
}

// SampleLeakers draws n distinct ASes uniformly at random, excluding the
// given origin, deterministically from seed.
func SampleLeakers(g *astopo.Graph, origin astopo.ASN, n int, seed int64) []astopo.ASN {
	g.Freeze()
	rng := rand.New(rand.NewSource(seed))
	all := g.ASes()
	if n > len(all)-1 {
		n = len(all) - 1
	}
	perm := rng.Perm(len(all))
	out := make([]astopo.ASN, 0, n)
	for _, i := range perm {
		if all[i] == origin {
			continue
		}
		out = append(out, all[i])
		if len(out) == n {
			break
		}
	}
	return out
}

// CDF reduces trial detour fractions to an empirical CDF evaluated at the
// given fractions in [0,1]: the i-th output is the fraction of trials with
// DetouredFrac <= xs[i]. Used to print the paper's Figs. 7–10 curves.
func CDF(trials []LeakTrial, xs []float64, users bool) []float64 {
	vals := make([]float64, len(trials))
	for i, tr := range trials {
		if users {
			vals[i] = tr.DetouredUserFrac
		} else {
			vals[i] = tr.DetouredFrac
		}
	}
	sort.Float64s(vals)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(sort.SearchFloat64s(vals, x+1e-12)) / float64(len(vals))
	}
	return out
}

// AverageResilience simulates random (origin, leaker) pairs under
// announce-to-all and returns the mean detoured fraction — the paper's
// baseline "average resilience" line. nOrigins origins are sampled, each
// attacked by nLeakers leakers. Origins run in parallel; each origin's
// worker builds one LeakSweep (pre-pass computed once) and replays its
// leakers against it through a worker-local BatchLeak engine, up to
// BatchLanes per propagation (scalar replay with FLATNET_SCALAR_LEAK set).
// Sampling is drawn up-front from a single sequential RNG, so results are
// deterministic in seed regardless of scheduling.
func AverageResilience(g *astopo.Graph, nOrigins, nLeakers int, seed int64, weights []float64) (asFrac, userFrac float64, err error) {
	g.Freeze()
	rng := rand.New(rand.NewSource(seed))
	all := g.ASes()
	type originJob struct {
		origin  astopo.ASN
		leakers []astopo.ASN
	}
	jobs := make([]originJob, nOrigins)
	for i := range jobs {
		origin := all[rng.Intn(len(all))]
		jobs[i] = originJob{origin: origin, leakers: SampleLeakers(g, origin, nLeakers, rng.Int63())}
	}
	sums := make([]float64, len(jobs))
	wsums := make([]float64, len(jobs))
	counts := make([]int, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	engines := make([]*BatchLeak, workers)
	err = par.For(workers, len(jobs), func(w int) func(i int) error {
		var trials []LeakTrial
		return func(i int) error {
			sweep, err := NewLeakSweep(g, Config{Origin: jobs[i].origin})
			if err != nil {
				return err
			}
			defer sweep.Release()
			if sweep.base.scalarLeak {
				for _, l := range jobs[i].leakers {
					tr, err := sweep.Trial(l, weights)
					if err != nil {
						return fmt.Errorf("leaker AS%d: %w", l, err)
					}
					sums[i] += tr.DetouredFrac
					wsums[i] += tr.DetouredUserFrac
					counts[i]++
				}
				return nil
			}
			if engines[w] == nil {
				engines[w] = getBatchLeak(g)
			}
			if cap(trials) < len(jobs[i].leakers) {
				trials = make([]LeakTrial, len(jobs[i].leakers))
			}
			trials = trials[:len(jobs[i].leakers)]
			if err := engines[w].Trials(sweep, jobs[i].leakers, weights, trials); err != nil {
				return err
			}
			for _, tr := range trials {
				sums[i] += tr.DetouredFrac
				wsums[i] += tr.DetouredUserFrac
				counts[i]++
			}
			return nil
		}
	})
	for _, bl := range engines {
		if bl != nil {
			putBatchLeak(bl)
		}
	}
	if err != nil {
		return 0, 0, err
	}
	var sum, wsum float64
	var count int
	for i := range jobs {
		sum += sums[i]
		wsum += wsums[i]
		count += counts[i]
	}
	if count == 0 {
		return 0, 0, fmt.Errorf("bgpsim: no resilience trials ran")
	}
	return sum / float64(count), wsum / float64(count), nil
}
