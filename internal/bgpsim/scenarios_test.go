package bgpsim

import (
	"math"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/topogen"
)

func genInternet(t testing.TB, scale float64) *topogen.Internet {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestScenarioConfigLocking(t *testing.T) {
	in := genInternet(t, 0.02138)
	g := in.Graph
	google := in.Clouds["Google"]

	lockT1 := ScenarioConfig(g, google, in.Tier1, in.Tier2, AnnounceAllLockT1)
	lockT1T2 := ScenarioConfig(g, google, in.Tier1, in.Tier2, AnnounceAllLockT1T2)
	lockAll := ScenarioConfig(g, google, in.Tier1, in.Tier2, AnnounceAllLockAll)
	count := func(mask []bool) int {
		n := 0
		for _, b := range mask {
			if b {
				n++
			}
		}
		return n
	}
	n1, n12, nAll := count(lockT1.Locking), count(lockT1T2.Locking), count(lockAll.Locking)
	if !(n1 > 0 && n1 <= n12 && n12 <= nAll) {
		t.Errorf("locking sizes: T1=%d T1T2=%d all=%d, want increasing", n1, n12, nAll)
	}
	if nAll != g.Degree(google) {
		t.Errorf("global lock covers %d, want all %d neighbors", nAll, g.Degree(google))
	}
	// Locked ASes must be neighbors of the origin.
	for i, b := range lockT1.Locking {
		if !b {
			continue
		}
		a := g.ASNAt(i)
		if _, ok := g.HasLink(google, a); !ok {
			t.Errorf("locked AS%d is not a Google neighbor", a)
		}
		if !in.Tier1.Has(a) {
			t.Errorf("locked AS%d is not a Tier-1", a)
		}
	}
}

func TestScenarioConfigHierarchyPolicy(t *testing.T) {
	in := genInternet(t, 0.02138)
	g := in.Graph
	google := in.Clouds["Google"]
	cfg := ScenarioConfig(g, google, in.Tier1, in.Tier2, AnnounceHierarchy)
	if cfg.Policy == nil {
		t.Fatal("hierarchy scenario has no policy")
	}
	sim := New(g)
	rAll, err := sim.Run(ScenarioConfig(g, google, in.Tier1, in.Tier2, AnnounceAll))
	if err != nil {
		t.Fatal(err)
	}
	rHier, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rHier.Reachable() > rAll.Reachable() {
		t.Errorf("hierarchy-only announcement reaches more (%d) than announce-to-all (%d)",
			rHier.Reachable(), rAll.Reachable())
	}
}

// Peer locking must monotonically reduce detours, and the hierarchy-only
// announcement must be worse (more detours) than announce-to-all for a
// richly peered origin — §8.2's central findings, erratum semantics.
func TestLeakScenarioOrdering(t *testing.T) {
	in := genInternet(t, 0.02138)
	g := in.Graph
	google := in.Clouds["Google"]
	leakers := SampleLeakers(g, google, 60, 42)

	mean := func(scen LeakScenario) float64 {
		cfg := ScenarioConfig(g, google, in.Tier1, in.Tier2, scen)
		trials, err := RunLeakTrials(g, cfg, leakers, nil)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, tr := range trials {
			s += tr.DetouredFrac
		}
		return s / float64(len(trials))
	}
	all := mean(AnnounceAll)
	lockT1 := mean(AnnounceAllLockT1)
	lockT1T2 := mean(AnnounceAllLockT1T2)
	lockAll := mean(AnnounceAllLockAll)
	hier := mean(AnnounceHierarchy)
	t.Logf("mean detoured: all=%.4f lockT1=%.4f lockT1T2=%.4f lockAll=%.4f hierarchy=%.4f",
		all, lockT1, lockT1T2, lockAll, hier)
	if !(lockAll <= lockT1T2 && lockT1T2 <= lockT1 && lockT1 <= all) {
		t.Errorf("peer locking did not monotonically reduce detours")
	}
	if lockAll > 0.01 {
		t.Errorf("global peer locking leaves %.4f detoured, want ~0 (virtually immune)", lockAll)
	}
	if hier <= all {
		t.Errorf("announce-to-hierarchy (%.4f) should be less resilient than announce-to-all (%.4f)", hier, all)
	}
}

func TestSampleLeakersProperties(t *testing.T) {
	in := genInternet(t, 0.01425)
	g := in.Graph
	origin := in.Clouds["Google"]
	ls := SampleLeakers(g, origin, 50, 7)
	if len(ls) != 50 {
		t.Fatalf("got %d leakers", len(ls))
	}
	seen := map[astopo.ASN]bool{}
	for _, a := range ls {
		if a == origin {
			t.Error("origin sampled as leaker")
		}
		if seen[a] {
			t.Errorf("duplicate leaker AS%d", a)
		}
		seen[a] = true
	}
	ls2 := SampleLeakers(g, origin, 50, 7)
	for i := range ls {
		if ls[i] != ls2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestCDF(t *testing.T) {
	trials := []LeakTrial{
		{DetouredFrac: 0.1}, {DetouredFrac: 0.2}, {DetouredFrac: 0.2}, {DetouredFrac: 0.9},
	}
	xs := []float64{0, 0.1, 0.2, 0.5, 1}
	got := CDF(trials, xs, false)
	want := []float64{0, 0.25, 0.75, 0.75, 1}
	for i := range xs {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDF at %v = %v, want %v", xs[i], got[i], want[i])
		}
	}
}

func TestAverageResilience(t *testing.T) {
	in := genInternet(t, 0.01425)
	frac, _, err := AverageResilience(in.Graph, 4, 5, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac >= 1 {
		t.Errorf("average resilience = %v, want in (0,1)", frac)
	}
}
