package bgpsim

import (
	"math/rand"
	"slices"
	"testing"
)

// RunShared must produce exactly Run's Class/Dist/NextHops for every config
// it accepts; only the ownership of the backing memory differs.
func TestRunSharedMatchesRun(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTopology(rng)
		g.Freeze()
		n := g.NumASes()
		simRun := New(g)
		simShared := New(g)
		for trial := 0; trial < 8; trial++ {
			cfg := Config{
				Origin:        g.ASNAt(rng.Intn(n)),
				TrackNextHops: rng.Intn(3) > 0,
				BreakTies:     rng.Intn(4) == 0,
			}
			oi, _ := g.Index(cfg.Origin)
			if rng.Intn(3) == 0 {
				mask := make([]bool, n)
				for i := range mask {
					if i != oi && rng.Intn(6) == 0 {
						mask[i] = true
					}
				}
				cfg.Exclude = mask
			}
			want, errW := simRun.Run(cfg)
			got, errG := simShared.RunShared(cfg)
			if (errW != nil) != (errG != nil) {
				t.Fatalf("seed %d: Run err=%v RunShared err=%v", seed, errW, errG)
			}
			if errW != nil {
				continue
			}
			if got.Origin != want.Origin || got.LeakerIdx != want.LeakerIdx {
				t.Fatalf("seed %d: origin/leaker mismatch: got %d/%d want %d/%d",
					seed, got.Origin, got.LeakerIdx, want.Origin, want.LeakerIdx)
			}
			if !slices.Equal(got.Class, want.Class) {
				t.Fatalf("seed %d origin %d: Class mismatch", seed, cfg.Origin)
			}
			if !slices.Equal(got.Dist, want.Dist) {
				t.Fatalf("seed %d origin %d: Dist mismatch", seed, cfg.Origin)
			}
			if cfg.TrackNextHops {
				if len(got.NextHops) != len(want.NextHops) {
					t.Fatalf("seed %d: NextHops length %d want %d", seed, len(got.NextHops), len(want.NextHops))
				}
				for i := range want.NextHops {
					if !slices.Equal(got.NextHops[i], want.NextHops[i]) {
						t.Fatalf("seed %d origin %d: NextHops[%d] = %v want %v",
							seed, cfg.Origin, i, got.NextHops[i], want.NextHops[i])
					}
				}
			} else if got.NextHops != nil {
				t.Fatalf("seed %d: untracked RunShared returned NextHops", seed)
			}
		}
	}
}

// The shared Result's per-node next-hop headers are kept at high water:
// after warm-up, tracked propagations must not allocate.
func TestRunSharedAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomTopology(rng)
	g.Freeze()
	n := g.NumASes()
	sim := New(g)
	run := func() {
		for i := 0; i < n; i += 7 {
			if _, err := sim.RunShared(Config{Origin: g.ASNAt(i), TrackNextHops: true}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run() // warm arenas, dial queue, and the next-hop view to high water
	run()
	allocs := testing.AllocsPerRun(3, run)
	if allocs != 0 {
		t.Fatalf("steady-state RunShared allocated %.1f times per sweep, want 0", allocs)
	}
}

// Leak configs need an owned Result; RunShared must refuse them instead of
// silently aliasing buffers through the leak fallback path.
func TestRunSharedRejectsLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomTopology(rng)
	g.Freeze()
	sim := New(g)
	if _, err := sim.RunShared(Config{Origin: g.ASNAt(0), Leaker: g.ASNAt(1)}); err == nil {
		t.Fatal("RunShared accepted a leak config")
	}
}
