// Package bgpsim simulates BGP route propagation over an AS-level topology
// under the Gao–Rexford routing model the paper uses (§6.1):
//
//   - valley-free export: an AS exports routes learned from customers (or
//     originated by itself) to everyone, but exports routes learned from
//     peers or providers only to its customers;
//   - preference: customer-learned routes over peer-learned over
//     provider-learned, then shortest AS-path length;
//   - all routes tied for best are kept, without tie-breaking.
//
// One propagation computes, for every AS, the class and length of its best
// routes toward an origin, optionally the full tied-best next-hop DAG, and —
// for route-leak experiments (§8) — whether any tied-best route leads to a
// misconfigured leaker instead of the legitimate origin.
//
// Propagation over a graph with V ASes and E links costs O(V+E): customer
// routes spread by a bucketed BFS up customer→provider edges, peer routes
// take a single peer hop from customer-route holders, and provider routes
// spread down provider→customer edges in best-length order.
package bgpsim

import (
	"context"
	"fmt"

	"flatnet/internal/astopo"
)

// Class describes how an AS learned its best routes toward the origin, in
// increasing order of preference.
type Class uint8

const (
	// ClassNone marks an AS with no route (unreachable origin).
	ClassNone Class = iota
	// ClassProvider marks routes learned from a transit provider.
	ClassProvider
	// ClassPeer marks routes learned from a settlement-free peer.
	ClassPeer
	// ClassCustomer marks routes learned from a customer.
	ClassCustomer
	// ClassOrigin marks the origin itself (and, in leak simulations, the
	// leaker's synthetic origination of the leaked route).
	ClassOrigin
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassProvider:
		return "provider"
	case ClassPeer:
		return "peer"
	case ClassCustomer:
		return "customer"
	case ClassOrigin:
		return "origin"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Route-source flag bits used by leak simulations.
const (
	// ViaLegit marks routes whose announcement chain starts at the
	// legitimate origin's own announcement.
	ViaLegit uint8 = 1 << 0
	// ViaLeak marks routes whose chain passes through the leaker's
	// re-announcement.
	ViaLeak uint8 = 1 << 1
)

// Policy restricts which of the origin's neighbors receive its announcement.
// A nil *Policy announces to all neighbors.
type Policy struct {
	allowed map[int32]bool
}

// NewPolicy builds a policy allowing announcements only to the given
// neighbor ASNs of the origin. ASNs not present in the graph are ignored.
func NewPolicy(g *astopo.Graph, neighbors []astopo.ASN) *Policy {
	p := &Policy{allowed: make(map[int32]bool, len(neighbors))}
	for _, a := range neighbors {
		if i, ok := g.Index(a); ok {
			p.allowed[int32(i)] = true
		}
	}
	return p
}

func (p *Policy) allows(n int32) bool {
	if p == nil {
		return true
	}
	return p.allowed[n]
}

// Config describes one propagation.
type Config struct {
	// Origin is the AS originating the prefix.
	Origin astopo.ASN
	// Policy restricts the origin's announcement; nil announces to all
	// neighbors.
	Policy *Policy
	// Exclude masks ASes (by dense graph index) that routes may not
	// enter or traverse — the subgraph device behind provider-free,
	// Tier-1-free, and hierarchy-free reachability. May be nil.
	Exclude []bool
	// TrackNextHops records, for every AS, the dense indexes of the
	// neighbors providing its tied-best routes. Required for path and
	// reliance analysis; costs memory proportional to the DAG.
	TrackNextHops bool

	// Leaker, if nonzero, designates a misconfigured AS that re-announces
	// the origin's prefix to all its neighbors (a route leak, §8.1). The
	// leaked announcement carries the leaker's legitimate best path, so
	// it competes with the true routes at the leaker's best length.
	Leaker astopo.ASN
	// Hijack turns the leak into a forged origination (§8.1's "prefix
	// hijacks, which are intentional malicious route leaks"): the leaker
	// announces the prefix as its own, competing at AS-path length zero
	// with no upstream path for loop detection to reject.
	Hijack bool
	// Locking marks ASes (by dense index) deploying peer locking for the
	// origin's prefixes: they accept the prefix only directly from the
	// origin and discard every other announcement of it (the erratum's
	// corrected semantics). May be nil.
	Locking []bool

	// BreakTies keeps only the first tied-best route at every AS instead
	// of all of them. The paper deliberately keeps ties ("a worst case
	// analysis", §8.1); this switch exists for the ablation that
	// quantifies how much that choice matters.
	BreakTies bool
}

// Result holds the outcome of one propagation. Slices are indexed by the
// graph's dense AS indexes.
type Result struct {
	Graph  *astopo.Graph
	Origin int32

	// Class and Dist describe the best routes of each AS; Dist is the
	// AS-path length in inter-AS hops (origin = 0). Dist is -1 where
	// Class is ClassNone.
	Class []Class
	Dist  []int32

	// NextHops is the tied-best next-hop DAG (only when TrackNextHops).
	NextHops [][]int32

	// Flags carries ViaLegit/ViaLeak bits (only for leak simulations).
	Flags []uint8

	// LeakerIdx is the dense index of the leaker, or -1.
	LeakerIdx int32
}

// Reachable counts ASes other than the origin (and leaker, if any) holding
// at least one route.
func (r *Result) Reachable() int {
	n := 0
	for i, c := range r.Class {
		if c == ClassNone || int32(i) == r.Origin || int32(i) == r.LeakerIdx {
			continue
		}
		n++
	}
	return n
}

// ReachableSet returns the ASNs counted by Reachable.
func (r *Result) ReachableSet() []astopo.ASN {
	out := make([]astopo.ASN, 0, len(r.Class))
	for i, c := range r.Class {
		if c == ClassNone || int32(i) == r.Origin || int32(i) == r.LeakerIdx {
			continue
		}
		out = append(out, r.Graph.ASNAt(i))
	}
	return out
}

// Detoured counts ASes with at least one tied-best route via the leak,
// excluding the origin and the leaker themselves.
func (r *Result) Detoured() int {
	if r.Flags == nil {
		return 0
	}
	n := 0
	for i, f := range r.Flags {
		if int32(i) == r.Origin || int32(i) == r.LeakerIdx {
			continue
		}
		if f&ViaLeak != 0 {
			n++
		}
	}
	return n
}

// DetouredWeight sums w[i] over detoured ASes; used for the user-population
// weighting of Fig. 9.
func (r *Result) DetouredWeight(w []float64) float64 {
	if r.Flags == nil {
		return 0
	}
	var s float64
	for i, f := range r.Flags {
		if int32(i) == r.Origin || int32(i) == r.LeakerIdx {
			continue
		}
		if f&ViaLeak != 0 {
			s += w[i]
		}
	}
	return s
}

// Simulator runs propagations over one graph, reusing internal buffers
// across runs. It is not safe for concurrent use; create one Simulator per
// goroutine (they share the frozen graph safely).
type Simulator struct {
	g *astopo.Graph
	n int

	// ctx, when non-nil, cancels in-flight propagations between distance
	// buckets (set by the *Ctx entry points, nil otherwise). An aborted
	// propagation leaves the reusable buffers in a partial state; the next
	// run resets them.
	ctx context.Context

	class  []Class
	dist   []int32
	flags  []uint8
	tent   []int32
	tflags []uint8

	// leakBlocked marks ASes whose BGP loop detection rejects every
	// leaked copy (set by prepare for leak runs, nil otherwise).
	leakBlocked []bool

	buckets [][]int32 // dial queue, indexed by distance

	// Next-hop tracking arena (lazily sized, reused across tracked runs):
	// vias holds each node's tentative next hops while its distance is
	// still contested; settle copies the final list into the flat nhArena
	// and records its span in nhOff/nhLen (CSR layout, see nextHopCSR).
	vias    [][]int32
	nhOff   []int32
	nhLen   []int32
	nhArena []int32

	// Scratch reused by prepare and the leak pre-pass.
	seeds   []seed
	order   []int32
	distCnt []int32
	counts  []float64
	reach   []float64
	blocked []bool

	// RunShared's reusable view Result: the [][]int32 next-hop headers are
	// kept at high water across runs so steady-state tracked propagations
	// allocate nothing.
	shared *Result
	nhView [][]int32
}

// New returns a Simulator for g. The graph is frozen by the call and must
// not be mutated afterwards.
func New(g *astopo.Graph) *Simulator {
	g.Freeze()
	n := g.NumASes()
	return &Simulator{
		g:      g,
		n:      n,
		class:  make([]Class, n),
		dist:   make([]int32, n),
		flags:  make([]uint8, n),
		tent:   make([]int32, n),
		tflags: make([]uint8, n),
	}
}

// RunCtx is Run with cancellation: the propagation is aborted between
// distance buckets once ctx is done, returning ctx.Err(). The serving layer
// threads per-request deadlines through here.
func (s *Simulator) RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.ctx = ctx
	defer func() { s.ctx = nil }()
	return s.Run(cfg)
}

// ReachabilityCountCtx is ReachabilityCount with cancellation (see RunCtx).
func (s *Simulator) ReachabilityCountCtx(ctx context.Context, cfg Config) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.ctx = ctx
	defer func() { s.ctx = nil }()
	return s.ReachabilityCount(cfg)
}

// Run executes one propagation and returns a Result owning its own state
// (independent of the Simulator's reusable buffers).
func (s *Simulator) Run(cfg Config) (*Result, error) {
	seeds, leakerIdx, err := s.prepare(cfg)
	if err != nil {
		return nil, err
	}
	if seeds == nil {
		// Leak configured but the leaker holds no route: the leak-free
		// state with everything marked legitimate is the outcome.
		res, err := s.Run(Config{
			Origin:        cfg.Origin,
			Policy:        cfg.Policy,
			Exclude:       cfg.Exclude,
			Locking:       cfg.Locking,
			TrackNextHops: cfg.TrackNextHops,
		})
		if err != nil {
			return nil, err
		}
		res.LeakerIdx = leakerIdx
		res.Flags = make([]uint8, s.n)
		for i, c := range res.Class {
			if c != ClassNone {
				res.Flags[i] = ViaLegit
			}
		}
		return res, nil
	}

	if !s.propagate(seeds, cfg.Exclude, cfg.Locking, cfg.TrackNextHops, cfg.BreakTies) {
		return nil, s.ctx.Err()
	}
	res := &Result{
		Graph:     s.g,
		Origin:    seeds[0].idx,
		LeakerIdx: leakerIdx,
		Class:     append([]Class(nil), s.class...),
		Dist:      append([]int32(nil), s.dist...),
	}
	if cfg.TrackNextHops {
		res.NextHops = s.csr().materialize()
	}
	if cfg.Leaker != 0 {
		res.Flags = append([]uint8(nil), s.flags...)
	}
	return res, nil
}

// RunShared executes one propagation like Run but returns a Result that
// aliases the Simulator's reusable buffers instead of copying them: Class,
// Dist, and every NextHops span point into the Simulator's arenas and are
// valid only until the next propagation on this Simulator. The [][]int32
// next-hop header slice is kept at high water and reused across calls, so
// steady-state tracked runs add no per-run allocations — the same pooling
// discipline the propagation core applies to its masks. This is the fast
// path for per-destination loops (trace synthesis) that fully consume one
// Result before running the next.
//
// Leak configs need an owned Result (their no-route fallback re-enters Run);
// they are rejected here — use Run.
func (s *Simulator) RunShared(cfg Config) (*Result, error) {
	if cfg.Leaker != 0 {
		return nil, fmt.Errorf("bgpsim: RunShared does not support leak configs")
	}
	seeds, _, err := s.prepare(cfg)
	if err != nil {
		return nil, err
	}
	if !s.propagate(seeds, cfg.Exclude, cfg.Locking, cfg.TrackNextHops, cfg.BreakTies) {
		return nil, s.ctx.Err()
	}
	if s.shared == nil {
		s.shared = &Result{Graph: s.g}
	}
	res := s.shared
	res.Origin = seeds[0].idx
	res.LeakerIdx = -1
	res.Class = s.class
	res.Dist = s.dist
	res.Flags = nil
	res.NextHops = nil
	if cfg.TrackNextHops {
		if cap(s.nhView) < s.n {
			s.nhView = make([][]int32, s.n)
		}
		view := s.nhView[:s.n]
		arena := s.nhArena
		for i := range view {
			if m := s.nhLen[i]; m > 0 {
				o := s.nhOff[i]
				view[i] = arena[o : o+m : o+m]
			} else {
				view[i] = nil
			}
		}
		res.NextHops = view
	}
	return res, nil
}

// ReachabilityCount runs cfg and returns only the number of ASes, excluding
// the origin, that receive a route. It avoids materializing a Result and is
// the fast path for whole-Internet sweeps.
func (s *Simulator) ReachabilityCount(cfg Config) (int, error) {
	seeds, _, err := s.prepare(cfg)
	if err != nil {
		return 0, err
	}
	if seeds == nil {
		return 0, fmt.Errorf("bgpsim: ReachabilityCount does not support leak configs")
	}
	if !s.propagate(seeds, cfg.Exclude, cfg.Locking, false, cfg.BreakTies) {
		return 0, s.ctx.Err()
	}
	n := 0
	for i, c := range s.class {
		if c != ClassNone && int32(i) != seeds[0].idx {
			n++
		}
	}
	return n, nil
}

// prepare validates cfg and builds the propagation seeds (in the
// Simulator's reusable seed buffer, valid until the next prepare). For leak
// configs whose leaker holds no legitimate route it returns
// (nil, leakerIdx, nil).
func (s *Simulator) prepare(cfg Config) ([]seed, int32, error) {
	s.leakBlocked = nil
	oi, ok := s.g.Index(cfg.Origin)
	if !ok {
		return nil, -1, fmt.Errorf("bgpsim: origin AS%d not in graph", cfg.Origin)
	}
	if cfg.Exclude != nil && len(cfg.Exclude) != s.n {
		return nil, -1, fmt.Errorf("bgpsim: Exclude mask has %d entries, graph has %d ASes", len(cfg.Exclude), s.n)
	}
	if cfg.Locking != nil && len(cfg.Locking) != s.n {
		return nil, -1, fmt.Errorf("bgpsim: Locking mask has %d entries, graph has %d ASes", len(cfg.Locking), s.n)
	}
	if cfg.Exclude != nil && cfg.Exclude[oi] {
		return nil, -1, fmt.Errorf("bgpsim: origin AS%d is excluded by the mask", cfg.Origin)
	}

	seeds := append(s.seeds[:0], seed{idx: int32(oi), dist0: 0, flag: ViaLegit, policy: cfg.Policy})
	s.seeds = seeds
	leakerIdx := int32(-1)
	if cfg.Leaker != 0 {
		li, ok := s.g.Index(cfg.Leaker)
		if !ok {
			return nil, -1, fmt.Errorf("bgpsim: leaker AS%d not in graph", cfg.Leaker)
		}
		if cfg.Leaker == cfg.Origin {
			return nil, -1, fmt.Errorf("bgpsim: leaker equals origin AS%d", cfg.Origin)
		}
		if cfg.Exclude != nil && cfg.Exclude[li] {
			return nil, -1, fmt.Errorf("bgpsim: leaker AS%d is excluded by the mask", cfg.Leaker)
		}
		leakerIdx = int32(li)
		if cfg.Hijack {
			// Forged origination: length zero, no upstream path.
			s.seeds = append(seeds, seed{
				idx:       leakerIdx,
				dist0:     0,
				flag:      ViaLeak,
				exportAll: true,
			})
			return s.seeds, leakerIdx, nil
		}
		// The leaked announcement carries the leaker's legitimate best
		// path; find its length with a leak-free pre-pass, tracking
		// next hops so that loop detection (below) can be computed.
		if !s.propagate(seeds, cfg.Exclude, cfg.Locking, true, cfg.BreakTies) {
			return nil, -1, s.ctx.Err()
		}
		if s.class[li] == ClassNone {
			return nil, leakerIdx, nil // nothing to leak
		}
		// BGP loop detection: every copy of the leaked announcement
		// carries the leaker's AS path toward the origin, so any AS
		// that appears on *all* of the leaker's tied-best paths will
		// reject every leaked copy. Mark those ASes so propagation
		// strips the leak flag at them.
		s.ensureLeakScratch()
		order := s.orderByDistance()
		pathCountsCSR(s.csr(), s.class, s.dist, order, s.counts)
		blockedOnAllPaths(s.csr(), order, s.counts, int32(li), s.reach, s.blocked)
		s.leakBlocked = s.blocked
		s.seeds = append(seeds, seed{
			idx:       leakerIdx,
			dist0:     s.dist[li],
			flag:      ViaLeak,
			exportAll: true,
		})
	}
	return s.seeds, leakerIdx, nil
}

// ensureLeakScratch sizes the pre-pass scratch buffers.
func (s *Simulator) ensureLeakScratch() {
	if s.counts == nil {
		s.counts = make([]float64, s.n)
		s.reach = make([]float64, s.n)
		s.blocked = make([]bool, s.n)
	}
}

// seed is one announcement source in a propagation.
type seed struct {
	idx       int32
	dist0     int32
	flag      uint8
	exportAll bool    // leak: export to every neighbor regardless of class
	policy    *Policy // announcement filter (legitimate origin only)
}
