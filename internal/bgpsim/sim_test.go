package bgpsim

import (
	"testing"

	"flatnet/internal/astopo"
)

func mustGraph(t *testing.T, links ...astopo.Link) *astopo.Graph {
	t.Helper()
	g := astopo.NewGraph(0, len(links))
	for _, l := range links {
		if err := g.AddLink(l.A, l.B, l.Rel); err != nil {
			t.Fatalf("AddLink(%v): %v", l, err)
		}
	}
	return g
}

func p2c(a, b astopo.ASN) astopo.Link { return astopo.Link{A: a, B: b, Rel: astopo.P2C} }
func p2p(a, b astopo.ASN) astopo.Link { return astopo.Link{A: a, B: b, Rel: astopo.P2P} }

func classOf(t *testing.T, r *Result, a astopo.ASN) (Class, int32) {
	t.Helper()
	i, ok := r.Graph.Index(a)
	if !ok {
		t.Fatalf("AS%d not in graph", a)
	}
	return r.Class[i], r.Dist[i]
}

// Chain: origin 10 is a customer of 20, which is a customer of 30.
func TestRunChain(t *testing.T) {
	g := mustGraph(t, p2c(20, 10), p2c(30, 20))
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c, d := classOf(t, r, 20); c != ClassCustomer || d != 1 {
		t.Errorf("AS20: %v/%d, want customer/1", c, d)
	}
	if c, d := classOf(t, r, 30); c != ClassCustomer || d != 2 {
		t.Errorf("AS30: %v/%d, want customer/2", c, d)
	}
	if c, d := classOf(t, r, 10); c != ClassOrigin || d != 0 {
		t.Errorf("origin: %v/%d", c, d)
	}
	if got := r.Reachable(); got != 2 {
		t.Errorf("Reachable = %d, want 2", got)
	}
}

// Downstream: a customer of the provider hears a provider route; a peer of a
// customer-route holder hears a peer route.
func TestRunClasses(t *testing.T) {
	// 20 is provider of origin 10 and of stub 40; 50 peers with 20.
	g := mustGraph(t, p2c(20, 10), p2c(20, 40), p2p(20, 50))
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c, d := classOf(t, r, 40); c != ClassProvider || d != 2 {
		t.Errorf("AS40: %v/%d, want provider/2", c, d)
	}
	if c, d := classOf(t, r, 50); c != ClassPeer || d != 2 {
		t.Errorf("AS50: %v/%d, want peer/2", c, d)
	}
}

// Valley-free: a route learned from a peer is not exported to another peer
// or to a provider.
func TestValleyFreeExport(t *testing.T) {
	// origin 10 peers with 20; 20 peers with 30; 20 has provider 40 and
	// customer 50.
	g := mustGraph(t, p2p(10, 20), p2p(20, 30), p2c(40, 20), p2c(20, 50))
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := classOf(t, r, 20); c != ClassPeer {
		t.Fatalf("AS20 class = %v", c)
	}
	if c, _ := classOf(t, r, 30); c != ClassNone {
		t.Errorf("AS30 heard a peer-learned route via a peer (valley): %v", c)
	}
	if c, _ := classOf(t, r, 40); c != ClassNone {
		t.Errorf("AS40 heard a peer-learned route via a customer's provider export (valley): %v", c)
	}
	if c, d := classOf(t, r, 50); c != ClassProvider || d != 2 {
		t.Errorf("AS50: %v/%d, want provider/2 (peer routes are exported to customers)", c, d)
	}
}

// Gao-Rexford preference: class dominates path length.
func TestClassBeatsLength(t *testing.T) {
	// Origin 10. Provider route to 5: 20 provider of 10, 20 provider of 5
	// (length 2, class provider). Peer route to 5: 10 customer of 30, 30
	// customer of 31, 5 peers with 31 (5's peer 31 holds a customer route
	// of length 2, so 5's peer route has length 3).
	g := mustGraph(t,
		p2c(20, 10), p2c(20, 5),
		p2c(30, 10), p2c(31, 30), p2p(31, 5),
	)
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c, d := classOf(t, r, 5); c != ClassPeer || d != 3 {
		t.Errorf("AS5: %v/%d, want peer/3 (peer class preferred over shorter provider route)", c, d)
	}
}

// Within a class, shorter paths win and ties are kept.
func TestTiedNextHops(t *testing.T) {
	// Origin 10 has two providers 20, 21; both are customers of 30.
	g := mustGraph(t, p2c(20, 10), p2c(21, 10), p2c(30, 20), p2c(30, 21))
	sim := New(g)
	r, err := sim.Run(Config{Origin: 10, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	i30, _ := g.Index(30)
	if len(r.NextHops[i30]) != 2 {
		t.Fatalf("AS30 next hops = %v, want 2 tied", r.NextHops[i30])
	}
	if c, d := classOf(t, r, 30); c != ClassCustomer || d != 2 {
		t.Errorf("AS30: %v/%d", c, d)
	}
}

// Exclusion masks remove ASes entirely: they neither receive nor forward.
func TestExcludeMask(t *testing.T) {
	// 10 -> provider 20 -> provider 30; 10 peers 40; 40 provider of 41.
	g := mustGraph(t, p2c(20, 10), p2c(30, 20), p2p(10, 40), p2c(40, 41))
	sim := New(g)
	mask := BuildExclude(g, astopo.NewASSet(20))
	r, err := sim.Run(Config{Origin: 10, Exclude: mask})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []astopo.ASN{20, 30} {
		if c, _ := classOf(t, r, a); c != ClassNone {
			t.Errorf("AS%d reachable through excluded AS: %v", a, c)
		}
	}
	if got := r.Reachable(); got != 2 { // 40 and 41
		t.Errorf("Reachable = %d, want 2", got)
	}
	if _, err := sim.Run(Config{Origin: 20, Exclude: mask}); err == nil {
		t.Error("excluded origin accepted")
	}
}

// Fig. 1 of the paper, as reconstructed in DESIGN.md: a cloud with one
// transit provider P, peerings with a Tier-1 A, a Tier-2 B, and user ISPs
// U2, U3; ISP-A is a customer of A, ISP-B a customer of B.
func TestFig1Reachability(t *testing.T) {
	const (
		cloud = 100
		pP    = 1 // cloud's transit provider
		tA    = 2 // Tier-1 peer
		tB    = 3 // Tier-2 peer
		u2    = 4
		u3    = 5
		ispA  = 6
		ispB  = 7
	)
	g := mustGraph(t,
		p2c(pP, cloud),
		p2p(cloud, tA), p2p(cloud, tB), p2p(cloud, u2), p2p(cloud, u3),
		p2c(tA, ispA), p2c(tB, ispB),
		p2p(pP, tA), // Tier-1 clique
	)
	sim := New(g)

	counts := func(exclude ...astopo.ASN) int {
		n, err := sim.ReachabilityCount(Config{
			Origin:  cloud,
			Exclude: BuildExclude(g, astopo.NewASSet(exclude...)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := counts(pP); got != 6 {
		t.Errorf("provider-free = %d, want 6 (A, B, U2, U3, ISP-A, ISP-B)", got)
	}
	if got := counts(pP, tA); got != 4 {
		t.Errorf("Tier-1-free = %d, want 4 (B, U2, U3, ISP-B)", got)
	}
	if got := counts(pP, tA, tB); got != 2 {
		t.Errorf("hierarchy-free = %d, want 2 (U2, U3)", got)
	}
}

// Announcement policies restrict which neighbors hear the origination.
func TestAnnouncementPolicy(t *testing.T) {
	// Origin 10 with providers 20 and 21 (disconnected from each other),
	// and peer 40.
	g := mustGraph(t, p2c(20, 10), p2c(21, 10), p2p(10, 40))
	sim := New(g)
	r, err := sim.Run(Config{
		Origin: 10,
		Policy: NewPolicy(g, []astopo.ASN{20}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := classOf(t, r, 20); c != ClassCustomer {
		t.Errorf("AS20 = %v, want customer", c)
	}
	for _, a := range []astopo.ASN{21, 40} {
		if c, _ := classOf(t, r, a); c != ClassNone {
			t.Errorf("AS%d heard announcement despite policy: %v", a, c)
		}
	}
}

func TestRunErrors(t *testing.T) {
	g := mustGraph(t, p2c(20, 10))
	sim := New(g)
	if _, err := sim.Run(Config{Origin: 99}); err == nil {
		t.Error("unknown origin accepted")
	}
	if _, err := sim.Run(Config{Origin: 10, Exclude: make([]bool, 1)}); err == nil {
		t.Error("wrong-size mask accepted")
	}
	if _, err := sim.Run(Config{Origin: 10, Locking: make([]bool, 1)}); err == nil {
		t.Error("wrong-size locking mask accepted")
	}
	if _, err := sim.Run(Config{Origin: 10, Leaker: 10}); err == nil {
		t.Error("leaker == origin accepted")
	}
	if _, err := sim.Run(Config{Origin: 10, Leaker: 98}); err == nil {
		t.Error("unknown leaker accepted")
	}
}

// Simulator buffer reuse: running twice gives identical, independent results.
func TestRunReuse(t *testing.T) {
	g := mustGraph(t, p2c(20, 10), p2c(30, 20), p2p(30, 40))
	sim := New(g)
	r1, err := sim.Run(Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	want1 := r1.Reachable()
	r2, err := sim.Run(Config{Origin: 40})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Reachable() != want1 {
		t.Error("first result mutated by second run")
	}
	if r2.Reachable() == want1 && want1 == 0 {
		t.Error("second run empty")
	}
	// ReachabilityCount agrees with Run.
	n, err := sim.ReachabilityCount(Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if n != want1 {
		t.Errorf("ReachabilityCount = %d, Run.Reachable = %d", n, want1)
	}
}

// BreakTies keeps exactly one next hop everywhere and cannot change route
// existence or best (class, length).
func TestBreakTiesSemantics(t *testing.T) {
	g := mustGraph(t, p2c(20, 10), p2c(21, 10), p2c(30, 20), p2c(30, 21), p2p(30, 40))
	sim := New(g)
	all, err := sim.Run(Config{Origin: 10, TrackNextHops: true})
	if err != nil {
		t.Fatal(err)
	}
	one, err := sim.Run(Config{Origin: 10, TrackNextHops: true, BreakTies: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range all.Class {
		if all.Class[i] != one.Class[i] || all.Dist[i] != one.Dist[i] {
			t.Fatalf("AS%d: (class,dist) changed under BreakTies", g.ASNAt(i))
		}
		if one.Class[i] != ClassNone && int32(i) != one.Origin && len(one.NextHops[i]) != 1 {
			t.Errorf("AS%d: %d next hops under BreakTies, want 1", g.ASNAt(i), len(one.NextHops[i]))
		}
	}
	i30, _ := g.Index(30)
	if len(all.NextHops[i30]) != 2 {
		t.Fatalf("fixture lost its tie: %v", all.NextHops[i30])
	}
}
