package bgpsim

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"flatnet/internal/astopo"
	"flatnet/internal/par"
)

// LeakSweep replays many leakers against one base configuration — the inner
// loop of the paper's §8.1 experiments (thousands of trials per
// origin×scenario). A plain Simulator.Run re-derives the leak-free state
// for every trial: the pre-pass propagation, the tied-best next-hop DAG,
// and its path counts are all invariant in the leaker, yet cost as much as
// the leak propagation itself. A sweep computes them once per
// (origin, policy, exclude, locking) configuration and keeps them in an
// immutable snapshot, so each trial pays only for the per-leaker loop
// detection (one backward pass over the cached DAG) and the leak
// propagation proper. Steady-state Trial calls are allocation-free.
//
// A LeakSweep is not safe for concurrent use; Clone shares the snapshot
// with a fresh set of mutable buffers for use from another goroutine.
type LeakSweep struct {
	base *sweepBase
	sim  *Simulator

	// ownsBase marks sweeps created by NewLeakSweep (whose Release
	// recycles the whole sweep); Clone/WithHijack derivatives share the
	// base and only recycle their simulator.
	ownsBase bool

	// classes, when set via SetClasses, lets Trials/TrialsN replay only one
	// leaker per origin equivalence class and copy the trial to classmates.
	classes *ClassIndex

	// Per-sweep scratch for the leaker loop-detection pass.
	reach   []float64
	blocked []bool
}

// sweepBase is the leaker-invariant snapshot: the leak-free propagation
// outcome and the path counts over its next-hop DAG. It is immutable after
// construction and shared by all clones of a sweep.
type sweepBase struct {
	g      *astopo.Graph
	cfg    Config // base config; Leaker always zero
	origin int32
	class  []Class
	dist   []int32
	csr    nextHopCSR
	order  []int32   // classed nodes in ascending best-length order
	counts []float64 // N(w): tied-best DAG paths w -> origin

	// gen distinguishes successive configurations rebuilt into this same
	// (pooled) struct: NewLeakSweep bumps it on every rebuild, so caches
	// keyed by base identity (BatchLeak's position index) must match the
	// (pointer, gen) pair, not the pointer alone.
	gen uint64

	// scalarLeak pins Trials to the scalar per-leaker path instead of the
	// word-parallel BatchLeak engine (the batch engine's fallback). Set by
	// the FLATNET_SCALAR_LEAK env var for debugging and benchmarking.
	scalarLeak bool
}

// simPool recycles Simulators across sweeps and clones of the same graph.
// A fresh tracked propagation allocates one small via-slice per settled
// node — by far the dominant allocation count of a sweep's pre-pass — and
// those slices reach a stable high-water shape after one run, so reusing
// simulators makes repeated sweep construction (one per origin×scenario in
// the Figs. 7–10 pipeline) nearly allocation-free. A pooled simulator
// built for a different graph is simply dropped.
var simPool sync.Pool

func getSim(g *astopo.Graph) *Simulator {
	if v := simPool.Get(); v != nil {
		if s := v.(*Simulator); s.g == g {
			return s
		}
	}
	return New(g)
}

func putSim(s *Simulator) {
	s.ctx = nil
	s.leakBlocked = nil // points into a sweep's scratch; never outlive it
	simPool.Put(s)
}

// sweepPool recycles whole sweeps — simulator, pre-pass snapshot arrays,
// and loop-detection scratch — returned by LeakSweep.Release.
var sweepPool sync.Pool

// NewLeakSweep validates base (whose Leaker field is ignored), runs the
// leak-free pre-pass once, and returns a sweep ready to replay leakers
// against it. The graph is frozen by the call. Release the sweep when
// done to recycle its buffers for the next configuration.
func NewLeakSweep(g *astopo.Graph, base Config) (*LeakSweep, error) {
	base.Leaker = 0
	g.Freeze()
	var sw *LeakSweep
	if v := sweepPool.Get(); v != nil && v.(*LeakSweep).base.g == g {
		sw = v.(*LeakSweep)
	} else {
		sw = &LeakSweep{base: &sweepBase{g: g}, sim: New(g), ownsBase: true}
	}
	sim := sw.sim
	seeds, _, err := sim.prepare(base)
	if err != nil {
		sweepPool.Put(sw)
		return nil, err
	}
	sim.propagate(seeds, base.Exclude, base.Locking, true, base.BreakTies)
	b := sw.base
	b.cfg = base
	b.origin = seeds[0].idx
	b.class = append(b.class[:0], sim.class...)
	b.dist = append(b.dist[:0], sim.dist...)
	b.csr = nextHopCSR{
		off:   append(b.csr.off[:0], sim.nhOff...),
		num:   append(b.csr.num[:0], sim.nhLen...),
		arena: append(b.csr.arena[:0], sim.nhArena...),
	}
	b.order = append(b.order[:0], sim.orderByDistance()...)
	b.gen++
	b.scalarLeak = os.Getenv("FLATNET_SCALAR_LEAK") != ""
	b.counts = growFloats(b.counts, sim.n)
	pathCountsCSR(b.csr, b.class, b.dist, b.order, b.counts)
	sw.classes = nil // recycled sweeps must not inherit a prior SetClasses
	sw.reach = growFloats(sw.reach, sim.n)
	if cap(sw.blocked) < sim.n {
		sw.blocked = make([]bool, sim.n)
	}
	sw.blocked = sw.blocked[:sim.n]
	return sw, nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Release returns the sweep's buffers to per-graph pools for reuse by the
// next NewLeakSweep or Clone over the same graph. Call it only once the
// sweep AND every Clone/WithHijack derivative is done — the recycled
// arrays back future sweeps, so any later use corrupts them. Releasing is
// optional (an unreleased sweep is ordinary garbage) and a derivative's
// Release recycles only its private simulator.
func (sw *LeakSweep) Release() {
	if !sw.ownsBase {
		if sw.sim != nil {
			putSim(sw.sim)
			sw.sim = nil
		}
		return
	}
	sw.sim.ctx = nil
	sw.sim.leakBlocked = nil
	sweepPool.Put(sw)
}

// Clone returns a sweep sharing this one's immutable pre-pass snapshot but
// owning fresh propagation and scratch buffers, for use from another
// goroutine.
func (sw *LeakSweep) Clone() *LeakSweep {
	return &LeakSweep{
		base:    sw.base,
		sim:     getSim(sw.base.g),
		classes: sw.classes,
		reach:   make([]float64, len(sw.reach)),
		blocked: make([]bool, len(sw.blocked)),
	}
}

// SetClasses attaches an origin equivalence-class index built over the
// sweep's graph, enabling leaker dedup in Trials/TrialsN: two leakers in
// one class produce identical unweighted trials (the member-swap
// automorphism fixes the origin and every other AS, so the detoured set
// maps bijectively), weighted trials differ only by an O(1) correction to
// the detoured user fraction, and per-trial config invariance is
// re-checked at replay time (see TrialsN). nil, or an index over a
// different graph, disables dedup. Returns the sweep for chaining.
func (sw *LeakSweep) SetClasses(ci *ClassIndex) *LeakSweep {
	if ci != nil && ci.NumASes() != sw.base.g.NumASes() {
		ci = nil
	}
	sw.classes = ci
	return sw
}

// Base returns the sweep's base configuration (Leaker is always zero).
func (sw *LeakSweep) Base() Config { return sw.base.cfg }

// WithHijack returns a sweep replaying leakers as forged originations
// (hijack=true) or plain leaks (false), sharing this sweep's pre-pass
// snapshot: the leak-free propagation is independent of the Hijack flag, so
// callers comparing leak and hijack exposure of one configuration pay for
// the pre-pass once. The returned sweep owns fresh mutable buffers (like
// Clone) when the flag differs, and is the receiver itself when it already
// matches.
func (sw *LeakSweep) WithHijack(hijack bool) *LeakSweep {
	if sw.base.cfg.Hijack == hijack {
		return sw
	}
	nb := *sw.base
	nb.cfg.Hijack = hijack
	return &LeakSweep{
		base:    &nb,
		sim:     getSim(nb.g),
		classes: sw.classes,
		reach:   make([]float64, len(sw.reach)),
		blocked: make([]bool, len(sw.blocked)),
	}
}

// runLeaker validates the leaker against the cached pre-pass, installs the
// per-leaker loop-detection mask, and runs the leak propagation into the
// sweep's simulator buffers. propagated is false when the leaker holds no
// legitimate route (the leak is a no-op and no propagation ran); hijacks
// always propagate.
func (sw *LeakSweep) runLeaker(leaker astopo.ASN, track bool) (li int32, propagated bool, err error) {
	b := sw.base
	cfg := b.cfg
	i, ok := b.g.Index(leaker)
	if !ok {
		return -1, false, fmt.Errorf("bgpsim: leaker AS%d not in graph", leaker)
	}
	if leaker == cfg.Origin {
		return -1, false, fmt.Errorf("bgpsim: leaker equals origin AS%d", cfg.Origin)
	}
	if cfg.Exclude != nil && cfg.Exclude[i] {
		return -1, false, fmt.Errorf("bgpsim: leaker AS%d is excluded by the mask", leaker)
	}
	li = int32(i)
	sim := sw.sim
	sim.leakBlocked = nil
	seeds := append(sim.seeds[:0], seed{idx: b.origin, dist0: 0, flag: ViaLegit, policy: cfg.Policy})
	if cfg.Hijack {
		// Forged origination: length zero, no upstream path, no loop
		// detection — the pre-pass plays no role.
		seeds = append(seeds, seed{idx: li, dist0: 0, flag: ViaLeak, exportAll: true})
		sim.seeds = seeds
		if !sim.propagate(seeds, cfg.Exclude, cfg.Locking, track, cfg.BreakTies) {
			return li, false, sim.ctx.Err()
		}
		return li, true, nil
	}
	if b.class[li] == ClassNone {
		sim.seeds = seeds
		return li, false, nil // nothing to leak
	}
	blockedOnAllPaths(b.csr, b.order, b.counts, li, sw.reach, sw.blocked)
	sim.leakBlocked = sw.blocked
	seeds = append(seeds, seed{idx: li, dist0: b.dist[li], flag: ViaLeak, exportAll: true})
	sim.seeds = seeds
	if !sim.propagate(seeds, cfg.Exclude, cfg.Locking, track, cfg.BreakTies) {
		return li, false, sim.ctx.Err()
	}
	return li, true, nil
}

// TrialCtx is Trial with cancellation: the leak propagation is aborted
// between distance buckets once ctx is done, returning ctx.Err().
func (sw *LeakSweep) TrialCtx(ctx context.Context, leaker astopo.ASN, weights []float64) (LeakTrial, error) {
	if err := ctx.Err(); err != nil {
		return LeakTrial{}, err
	}
	sw.sim.ctx = ctx
	defer func() { sw.sim.ctx = nil }()
	return sw.Trial(leaker, weights)
}

// Trials replays every leaker in parallel against the sweep's shared
// pre-pass snapshot and returns one LeakTrial per leaker in input order.
// weights may be nil. Cancellation stops the sweep between trials (and
// mid-propagation within a trial).
//
// Batches of at least BatchLanes leakers route through the word-parallel
// BatchLeak engine, BatchLanes leakers per propagation, with the 64-lane
// blocks spread over the workers; smaller batches, BreakTies configs (whose
// tie order is inherently per-lane, see BatchLeak), and runs with
// FLATNET_SCALAR_LEAK set replay leakers one at a time, one sweep clone per
// extra worker. Both paths produce identical trials.
func (sw *LeakSweep) Trials(ctx context.Context, leakers []astopo.ASN, weights []float64) ([]LeakTrial, error) {
	return sw.TrialsN(ctx, leakers, weights, 0)
}

// TrialsN is Trials with a worker bound: at most `workers` goroutines
// replay the leaker blocks (0 means GOMAXPROCS; 1 runs everything on the
// calling goroutine). Trials are per-leaker independent and deterministic,
// so any partition of the leaker list replayed with any worker count
// concatenates to exactly Trials' output — the property cluster leak
// shards rely on.
func (sw *LeakSweep) TrialsN(ctx context.Context, leakers []astopo.ASN, weights []float64, workers int) ([]LeakTrial, error) {
	out := make([]LeakTrial, len(leakers))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Class collapse: trials of leakers in one equivalence class are related
	// by the member-swap automorphism, so only the first classmate replays.
	// Unweighted trials are identical and copy verbatim. Weighted trials
	// differ only in the swapped pair's own contribution: swapping
	// classmates a↔b maps the detoured set S_a to (S_a\{b})∪{a} when b∈S_a
	// and fixes it otherwise, so DetouredFrac copies exactly and
	// DetouredUserFrac takes the O(1) correction ind_b·(w[a]−w[b]) with
	// ind_b read from the representative trial's detour bit at b. Soundness
	// needs the automorphism to fix the whole configuration, which the class
	// fingerprint does not see: classmates must agree on their exclusion
	// bit, locking bit, and policy membership, so the dedup key carries
	// those three bits alongside the class id.
	if ci := sw.classes; ci != nil && len(leakers) > 1 {
		cfg := sw.base.cfg
		g := sw.base.g
		type leakKey struct {
			class      int32
			lock, poli bool
		}
		firstOf := make(map[leakKey]int32, len(leakers))
		uniq := make([]astopo.ASN, 0, len(leakers))
		slot := make([]int32, len(leakers))
		isRep := make([]bool, len(leakers))
		lidx := make([]int32, len(leakers))
		repIdx := make([]int32, 0, len(leakers))
		for i, l := range leakers {
			li, ok := g.Index(l)
			if !ok || l == cfg.Origin || (cfg.Exclude != nil && cfg.Exclude[li]) {
				// Unknown, origin-equal, and excluded leakers error per
				// leaker; they stay unique so the replay reports the same
				// error, naming the same leaker, the undeduped path would.
				slot[i] = int32(len(uniq))
				isRep[i] = true
				lidx[i] = -1
				uniq = append(uniq, l)
				repIdx = append(repIdx, -1)
				continue
			}
			lidx[i] = int32(li)
			k := leakKey{
				class: ci.ClassOf(li),
				lock:  cfg.Locking != nil && cfg.Locking[li],
				poli:  cfg.Policy.allows(int32(li)),
			}
			s, seen := firstOf[k]
			if !seen {
				s = int32(len(uniq))
				firstOf[k] = s
				isRep[i] = true
				uniq = append(uniq, l)
				repIdx = append(repIdx, int32(li))
			}
			slot[i] = s
		}
		if len(uniq) < len(leakers) {
			trials := make([]LeakTrial, len(uniq))
			if weights == nil {
				if err := sw.trialsDispatch(ctx, uniq, nil, trials, workers); err != nil {
					return nil, err
				}
				for i, s := range slot {
					out[i] = trials[s]
					out[i].Leaker = leakers[i]
				}
				return out, nil
			}
			// Weighted collapse: each duplicate probes its own node's
			// detour bit in the representative's trial (CSR layout, one
			// probe per duplicate, answered in-engine by the dispatch) and
			// applies the correction above to the copied DetouredUserFrac.
			probeOff := make([]int32, len(uniq)+1)
			for i := range leakers {
				if !isRep[i] {
					probeOff[slot[i]+1]++
				}
			}
			for s := 0; s < len(uniq); s++ {
				probeOff[s+1] += probeOff[s]
			}
			nProbes := int(probeOff[len(uniq)])
			probeNode := make([]int32, nProbes)
			probeAt := make([]int32, len(leakers))
			cursor := make([]int32, len(uniq))
			copy(cursor, probeOff[:len(uniq)])
			for i := range leakers {
				if isRep[i] {
					probeAt[i] = -1
					continue
				}
				p := cursor[slot[i]]
				cursor[slot[i]]++
				probeNode[p] = lidx[i]
				probeAt[i] = p
			}
			bits := make([]bool, nProbes)
			if err := sw.trialsDispatchProbes(ctx, uniq, weights, trials, workers, probeOff, probeNode, bits); err != nil {
				return nil, err
			}
			for i, s := range slot {
				out[i] = trials[s]
				out[i].Leaker = leakers[i]
				if !isRep[i] && bits[probeAt[i]] {
					out[i].DetouredUserFrac += weights[repIdx[s]] - weights[lidx[i]]
				}
			}
			// Runtime parity check: the first duplicate replays directly
			// and must agree — DetouredFrac exactly, DetouredUserFrac up to
			// the correction's float reordering. Any mismatch voids the
			// collapse and the whole list reruns undeduped.
			for i := range leakers {
				if isRep[i] {
					continue
				}
				direct, err := sw.TrialCtx(ctx, leakers[i], weights)
				if err != nil {
					return nil, fmt.Errorf("leaker AS%d: %w", leakers[i], err)
				}
				if direct.DetouredFrac != out[i].DetouredFrac ||
					!wsumClose(direct.DetouredUserFrac, out[i].DetouredUserFrac) {
					if err := sw.trialsDispatch(ctx, leakers, weights, out, workers); err != nil {
						return nil, err
					}
				}
				break
			}
			return out, nil
		}
	}
	if err := sw.trialsDispatch(ctx, leakers, weights, out, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// trialsDispatch replays every leaker with no dedup, writing trials to out
// in input order — the batch/scalar engine split behind Trials/TrialsN.
func (sw *LeakSweep) trialsDispatch(ctx context.Context, leakers []astopo.ASN, weights []float64, out []LeakTrial, workers int) error {
	return sw.trialsDispatchProbes(ctx, leakers, weights, out, workers, nil, nil, nil)
}

// trialsDispatchProbes is trialsDispatch plus detour probes: for leaker j,
// each probe p in probeNode[probeOff[j]:probeOff[j+1]] answers into bits[p]
// whether j's trial detoured that node (dense index) through the leak. The
// bits are read straight off the engine that ran the trial — the batch
// engine's lane words or the scalar simulator's flags — before the engine
// moves on, which is what lets the weighted class collapse in TrialsN pay
// O(1) per duplicate instead of a full replay. probeOff == nil means no
// probes. Both engines answer a leaker's probe of its own node as false-
// equivalent (the batch lane mask excludes it; the scalar bit is paired
// with a zero weight delta), so duplicate-ASN inputs stay exact.
func (sw *LeakSweep) trialsDispatchProbes(ctx context.Context, leakers []astopo.ASN, weights []float64, out []LeakTrial, workers int, probeOff, probeNode []int32, bits []bool) error {
	b := sw.base
	if !b.cfg.BreakTies && !b.scalarLeak && len(leakers) >= BatchLanes {
		nBlocks := (len(leakers) + BatchLanes - 1) / BatchLanes
		if workers > nBlocks {
			workers = nBlocks
		}
		engines := make([]*BatchLeak, workers)
		err := par.ForCtx(ctx, workers, nBlocks, func(w int) func(i int) error {
			bl := getBatchLeak(b.g)
			engines[w] = bl
			return func(i int) error {
				lo := i * BatchLanes
				hi := lo + BatchLanes
				if hi > len(leakers) {
					hi = len(leakers)
				}
				if err := bl.TrialsCtx(ctx, sw, leakers[lo:hi], weights, out[lo:hi]); err != nil {
					return err
				}
				if probeOff != nil {
					for j := lo; j < hi; j++ {
						for p := probeOff[j]; p < probeOff[j+1]; p++ {
							bits[p] = bl.detoured(j-lo, probeNode[p])
						}
					}
				}
				return nil
			}
		})
		for _, bl := range engines {
			if bl != nil {
				putBatchLeak(bl)
			}
		}
		return err
	}
	clones := make([]*LeakSweep, workers)
	err := par.ForCtx(ctx, workers, len(leakers), func(w int) func(i int) error {
		s := sw
		if w > 0 {
			s = sw.Clone()
			clones[w] = s
		}
		return func(i int) error {
			tr, err := s.TrialCtx(ctx, leakers[i], weights)
			if err != nil {
				return fmt.Errorf("leaker AS%d: %w", leakers[i], err)
			}
			out[i] = tr
			if probeOff != nil {
				// A zero DetouredFrac covers both "nothing detoured" and
				// "nothing propagated" — in the latter case the simulator
				// flags are stale from an earlier trial and must not be read.
				for p := probeOff[i]; p < probeOff[i+1]; p++ {
					bits[p] = tr.DetouredFrac != 0 && s.sim.flags[probeNode[p]]&ViaLeak != 0
				}
			}
			return nil
		}
	})
	for _, c := range clones {
		if c != nil {
			c.Release()
		}
	}
	return err
}

// wsumClose reports whether two weighted detour sums agree up to float
// reordering: the collapse correction adds terms in a different order than
// the direct node-order reduction, so parity checks allow ~1e-9 relative.
func wsumClose(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		m = 1
	}
	return d <= 1e-9*m
}

// Trial replays one leaker and reduces the outcome straight to a LeakTrial
// without materializing a Result. The detoured fraction's denominator is
// every AS other than the origin and the leaker, matching RunLeakTrials.
func (sw *LeakSweep) Trial(leaker astopo.ASN, weights []float64) (LeakTrial, error) {
	li, propagated, err := sw.runLeaker(leaker, false)
	if err != nil {
		return LeakTrial{}, err
	}
	tr := LeakTrial{Leaker: leaker}
	if !propagated {
		return tr, nil
	}
	b := sw.base
	detoured := 0
	var wsum float64
	for i, f := range sw.sim.flags {
		if int32(i) == b.origin || int32(i) == li {
			continue
		}
		if f&ViaLeak != 0 {
			detoured++
			if weights != nil {
				wsum += weights[i]
			}
		}
	}
	tr.DetouredFrac = float64(detoured) / float64(b.g.NumASes()-2)
	if weights != nil {
		tr.DetouredUserFrac = wsum
	}
	return tr, nil
}

// Run replays one leaker and materializes the full Result, exactly as
// Simulator.Run would for the base config plus this leaker (including the
// leak-free outcome with everything marked legitimate when the leaker holds
// no route). Next hops are tracked iff the base config asks for them.
func (sw *LeakSweep) Run(leaker astopo.ASN) (*Result, error) {
	b := sw.base
	li, propagated, err := sw.runLeaker(leaker, b.cfg.TrackNextHops)
	if err != nil {
		return nil, err
	}
	res := &Result{Graph: b.g, Origin: b.origin, LeakerIdx: li}
	if !propagated {
		res.Class = append([]Class(nil), b.class...)
		res.Dist = append([]int32(nil), b.dist...)
		res.Flags = make([]uint8, len(b.class))
		for i, c := range b.class {
			if c != ClassNone {
				res.Flags[i] = ViaLegit
			}
		}
		if b.cfg.TrackNextHops {
			res.NextHops = b.csr.materialize()
		}
		return res, nil
	}
	sim := sw.sim
	res.Class = append([]Class(nil), sim.class...)
	res.Dist = append([]int32(nil), sim.dist...)
	res.Flags = append([]uint8(nil), sim.flags...)
	if b.cfg.TrackNextHops {
		res.NextHops = sim.csr().materialize()
	}
	return res, nil
}
