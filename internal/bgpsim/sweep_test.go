package bgpsim

import (
	"runtime"
	"testing"
	"time"

	"flatnet/internal/astopo"
)

// requireResultsIdentical asserts two leak Results are bit-identical in
// every field the figures consume.
func requireResultsIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Origin != want.Origin || got.LeakerIdx != want.LeakerIdx {
		t.Fatalf("%s: origin/leaker = (%d,%d), want (%d,%d)",
			label, got.Origin, got.LeakerIdx, want.Origin, want.LeakerIdx)
	}
	for i := range want.Class {
		if got.Class[i] != want.Class[i] {
			t.Fatalf("%s: Class[%d] = %v, want %v", label, i, got.Class[i], want.Class[i])
		}
		if got.Dist[i] != want.Dist[i] {
			t.Fatalf("%s: Dist[%d] = %d, want %d", label, i, got.Dist[i], want.Dist[i])
		}
		if got.Flags[i] != want.Flags[i] {
			t.Fatalf("%s: Flags[%d] = %b, want %b", label, i, got.Flags[i], want.Flags[i])
		}
	}
	if (want.NextHops == nil) != (got.NextHops == nil) {
		t.Fatalf("%s: NextHops presence mismatch", label)
	}
	for v := range want.NextHops {
		w, g := want.NextHops[v], got.NextHops[v]
		if len(w) != len(g) {
			t.Fatalf("%s: NextHops[%d] len %d, want %d", label, v, len(g), len(w))
		}
		for k := range w {
			if w[k] != g[k] {
				t.Fatalf("%s: NextHops[%d][%d] = %d, want %d", label, v, k, g[k], w[k])
			}
		}
	}
	if want.Detoured() != got.Detoured() {
		t.Fatalf("%s: Detoured = %d, want %d", label, got.Detoured(), want.Detoured())
	}
}

// The cached-pre-pass sweep must reproduce the per-trial Simulator.Run
// outcome bit-for-bit across every scenario configuration of §8.2,
// including restricted announcement policies and peer locking.
func TestLeakSweepMatchesRunAcrossScenarios(t *testing.T) {
	in := genInternet(t, 0.01425)
	g := in.Graph
	origin := in.Clouds["Google"]
	leakers := SampleLeakers(g, origin, 40, 13)
	weights := make([]float64, g.NumASes())
	for i := range weights {
		weights[i] = float64(i%17) * 0.25
	}
	for _, scen := range LeakScenarios() {
		cfg := ScenarioConfig(g, origin, in.Tier1, in.Tier2, scen)
		cfg.TrackNextHops = true
		sweep, err := NewLeakSweep(g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scen, err)
		}
		sim := New(g)
		for _, l := range leakers {
			runCfg := cfg
			runCfg.Leaker = l
			want, err := sim.Run(runCfg)
			if err != nil {
				t.Fatalf("%v leaker AS%d: Run: %v", scen, l, err)
			}
			got, err := sweep.Run(l)
			if err != nil {
				t.Fatalf("%v leaker AS%d: sweep: %v", scen, l, err)
			}
			requireResultsIdentical(t, scen.String(), want, got)
			if ww, gw := want.DetouredWeight(weights), got.DetouredWeight(weights); ww != gw {
				t.Fatalf("%v leaker AS%d: DetouredWeight = %v, want %v", scen, l, gw, ww)
			}
			tr, err := sweep.Trial(l, weights)
			if err != nil {
				t.Fatalf("%v leaker AS%d: Trial: %v", scen, l, err)
			}
			denom := float64(g.NumASes() - 2)
			if wantFrac := float64(want.Detoured()) / denom; tr.DetouredFrac != wantFrac {
				t.Fatalf("%v leaker AS%d: Trial frac = %v, want %v", scen, l, tr.DetouredFrac, wantFrac)
			}
			if tr.DetouredUserFrac != want.DetouredWeight(weights) {
				t.Fatalf("%v leaker AS%d: Trial user frac = %v, want %v",
					scen, l, tr.DetouredUserFrac, want.DetouredWeight(weights))
			}
		}
	}
}

// Hijacks compete at length zero with no loop detection; the sweep must
// take the same path as Simulator.Run for them.
func TestLeakSweepMatchesRunHijack(t *testing.T) {
	in := genInternet(t, 0.01425)
	g := in.Graph
	origin := in.Clouds["Google"]
	leakers := SampleLeakers(g, origin, 25, 29)
	cfg := Config{Origin: origin, Hijack: true, TrackNextHops: true}
	sweep, err := NewLeakSweep(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := New(g)
	for _, l := range leakers {
		runCfg := cfg
		runCfg.Leaker = l
		want, err := sim.Run(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sweep.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsIdentical(t, "hijack", want, got)
	}
}

// A leaker with no legitimate route leaks nothing: both paths must return
// the leak-free state with everything marked legitimate.
func TestLeakSweepNoRouteLeaker(t *testing.T) {
	g := mustGraph(t,
		p2c(20, 10),
		p2p(40, 41), // island disconnected from the origin
	)
	for _, track := range []bool{false, true} {
		cfg := Config{Origin: 10, TrackNextHops: track}
		sweep, err := NewLeakSweep(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runCfg := cfg
		runCfg.Leaker = 40
		want, err := New(g).Run(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sweep.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsIdentical(t, "no-route leaker", want, got)
		tr, err := sweep.Trial(40, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tr.DetouredFrac != 0 || tr.DetouredUserFrac != 0 {
			t.Fatalf("no-route trial = %+v, want zero detours", tr)
		}
	}
}

// Clones share the cached pre-pass but not mutable state: concurrent use
// must agree with the sequential primary.
func TestLeakSweepCloneMatchesPrimary(t *testing.T) {
	in := genInternet(t, 0.01425)
	g := in.Graph
	origin := in.Clouds["Google"]
	leakers := SampleLeakers(g, origin, 10, 5)
	sweep, err := NewLeakSweep(g, Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	clone := sweep.Clone()
	for _, l := range leakers {
		a, err := sweep.Trial(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := clone.Trial(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("leaker AS%d: clone trial %+v != primary %+v", l, b, a)
		}
	}
}

func TestLeakSweepErrors(t *testing.T) {
	g := mustGraph(t, p2c(20, 10), p2c(30, 20))
	if _, err := NewLeakSweep(g, Config{Origin: 9999}); err == nil {
		t.Error("unknown origin accepted")
	}
	sweep, err := NewLeakSweep(g, Config{Origin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Trial(9999, nil); err == nil {
		t.Error("unknown leaker accepted")
	}
	if _, err := sweep.Trial(10, nil); err == nil {
		t.Error("leaker == origin accepted")
	}
	if _, err := sweep.Run(9999); err == nil {
		t.Error("Run with unknown leaker accepted")
	}
}

// Steady-state sweep iterations must not allocate: the pre-pass is cached
// and the propagation works entirely in reused simulator buffers.
func TestLeakSweepTrialAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	in := genInternet(t, 0.00713)
	g := in.Graph
	origin := in.Clouds["Google"]
	leakers := SampleLeakers(g, origin, 8, 3)
	sweep, err := NewLeakSweep(g, Config{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the dial queue and arena high-water marks.
	for _, l := range leakers {
		if _, err := sweep.Trial(l, nil); err != nil {
			t.Fatal(err)
		}
	}
	k := 0
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sweep.Trial(leakers[k%len(leakers)], nil); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if avg > 0.5 {
		t.Errorf("LeakSweep.Trial allocates %.1f objects/op in steady state, want ~0", avg)
	}
}

// Steady-state ReachabilityCount sweeps must not allocate either.
func TestReachabilityCountAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	in := genInternet(t, 0.00713)
	g := in.Graph
	sim := New(g)
	origins := g.ASes()
	for _, o := range origins[:10] {
		if _, err := sim.ReachabilityCount(Config{Origin: o}); err != nil {
			t.Fatal(err)
		}
	}
	k := 0
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sim.ReachabilityCount(Config{Origin: origins[k%len(origins)]}); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if avg > 0.5 {
		t.Errorf("ReachabilityCount allocates %.1f objects/op in steady state, want ~0", avg)
	}
}

// Regression for the worker-pool deadlock: with the old unbuffered feeder
// channel, a failing config made every worker exit early and the feeder
// block forever. The call must return the error instead of hanging.
func TestRunLeakTrialsErrorReturnsInsteadOfHanging(t *testing.T) {
	g := mustGraph(t, p2c(20, 10), p2c(30, 20))
	// More bad leakers than workers, so the old feeder would have had
	// unclaimed items left after every worker died.
	bad := make([]astopo.ASN, 2*runtime.GOMAXPROCS(0)+8)
	for i := range bad {
		bad[i] = 9999 // not in the graph
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunLeakTrials(g, Config{Origin: 10}, bad, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RunLeakTrials with failing configs returned no error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunLeakTrials deadlocked on a failing config")
	}
}

// The sweep-backed RunLeakTrials must agree with per-trial simulation.
func TestRunLeakTrialsMatchesPerTrialRuns(t *testing.T) {
	in := genInternet(t, 0.01425)
	g := in.Graph
	origin := in.Clouds["Google"]
	leakers := SampleLeakers(g, origin, 30, 11)
	cfg := ScenarioConfig(g, origin, in.Tier1, in.Tier2, AnnounceAllLockT1)
	trials, err := RunLeakTrials(g, cfg, leakers, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := New(g)
	denom := float64(g.NumASes() - 2)
	for i, l := range leakers {
		runCfg := cfg
		runCfg.Leaker = l
		res, err := sim.Run(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(res.Detoured()) / denom
		if trials[i].DetouredFrac != want {
			t.Fatalf("leaker AS%d: trial frac %v, want %v", l, trials[i].DetouredFrac, want)
		}
		if trials[i].Leaker != l {
			t.Fatalf("trial %d out of order: leaker %d, want %d", i, trials[i].Leaker, l)
		}
	}
}

// AverageResilience must stay deterministic in its seed now that origins
// run in parallel.
func TestAverageResilienceDeterministic(t *testing.T) {
	in := genInternet(t, 0.01425)
	a1, u1, err := AverageResilience(in.Graph, 4, 5, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, u2, err := AverageResilience(in.Graph, 4, 5, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || u1 != u2 {
		t.Fatalf("AverageResilience not deterministic: (%v,%v) vs (%v,%v)", a1, u1, a2, u2)
	}
}
