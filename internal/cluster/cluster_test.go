package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"flatnet/internal/astopo"
)

func TestShardRangesPartitionAndAlign(t *testing.T) {
	cases := []struct{ n, slots, maxBlocks int }{
		{1, 1, 64}, {63, 1, 64}, {64, 1, 64}, {65, 1, 64},
		{1485, 2, 1}, {1485, 2, 64}, {69488, 8, 64}, {100000, 3, 16},
		{128, 100, 64}, {4096, 1, 4},
	}
	for _, c := range cases {
		shards := shardRanges(c.n, c.slots, c.maxBlocks)
		if len(shards) == 0 {
			t.Fatalf("n=%d: no shards", c.n)
		}
		next := 0
		for i, s := range shards {
			if s.Lo != next {
				t.Fatalf("n=%d slots=%d: shard %d starts at %d, want %d (gap or overlap)", c.n, c.slots, i, s.Lo, next)
			}
			if s.Hi <= s.Lo {
				t.Fatalf("n=%d: empty shard [%d, %d)", c.n, s.Lo, s.Hi)
			}
			if s.Lo%laneWidth != 0 {
				t.Fatalf("n=%d: shard %d boundary %d not %d-aligned", c.n, i, s.Lo, laneWidth)
			}
			if blocks := (s.Hi - s.Lo + laneWidth - 1) / laneWidth; blocks > c.maxBlocks {
				t.Fatalf("n=%d maxBlocks=%d: shard [%d,%d) spans %d blocks", c.n, c.maxBlocks, s.Lo, s.Hi, blocks)
			}
			next = s.Hi
		}
		if next != c.n {
			t.Fatalf("n=%d: shards cover [0, %d)", c.n, next)
		}
	}
	if got := shardRanges(0, 4, 64); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
}

func TestCanonicalAddr(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:9000":         "http://127.0.0.1:9000",
		"http://127.0.0.1:9000/": "http://127.0.0.1:9000",
		"https://host":           "https://host",
	} {
		if got := CanonicalAddr(in); got != want {
			t.Errorf("CanonicalAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLatencyWindowPercentile(t *testing.T) {
	var lw latencyWindow
	if d := lw.percentile(95); d != 0 {
		t.Fatalf("empty window: got %v, want 0 (not enough samples)", d)
	}
	for i := 1; i <= 100; i++ {
		lw.record(time.Duration(i) * time.Millisecond)
	}
	got := lw.percentile(95)
	if got < 90*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p95 of 1..100ms = %v", got)
	}
}

func TestDatasetHashStableAndDistinct(t *testing.T) {
	build := func() (*astopo.Graph, astopo.ASSet, astopo.ASSet) {
		g := astopo.NewGraph(0, 0)
		for _, l := range [][3]int{{1, 100, 0}, {100, 2, 1}, {2, 6, 0}} {
			rel := astopo.P2C
			if l[2] == 1 {
				rel = astopo.P2P
			}
			if err := g.AddLink(astopo.ASN(l[0]), astopo.ASN(l[1]), rel); err != nil {
				t.Fatal(err)
			}
		}
		return g, astopo.NewASSet(1, 2), astopo.NewASSet(100)
	}
	g1, t1a, t2a := build()
	g2, t1b, t2b := build()
	h1 := DatasetHash(g1, t1a, t2a)
	h2 := DatasetHash(g2, t1b, t2b)
	if h1 != h2 {
		t.Fatalf("identical datasets hash differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", h1)
	}
	if h := DatasetHash(g1, astopo.NewASSet(1), t2a); h == h1 {
		t.Fatal("changing the Tier-1 set did not change the world hash")
	}
	g3, t1c, t2c := build()
	if err := g3.AddLink(6, 7, astopo.P2C); err != nil {
		t.Fatal(err)
	}
	if h := DatasetHash(g3, t1c, t2c); h == h1 {
		t.Fatal("adding a link did not change the world hash")
	}
}

// fakeWorker serves PathSweep with counts[i] = base + index, so merged
// results are fully predictable. The fail gate, once set, turns every
// subsequent shard request into a 500 — the "worker dies between shard
// responses" scenario.
type fakeWorker struct {
	srv    *httptest.Server
	served atomic.Int64
	fail   atomic.Bool
	delay  time.Duration
}

func newFakeWorker(t *testing.T, base int, delay time.Duration) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if fw.fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST "+PathSweep, func(w http.ResponseWriter, r *http.Request) {
		if fw.fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		if fw.delay > 0 {
			select {
			case <-time.After(fw.delay):
			case <-r.Context().Done():
				return
			}
		}
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		counts := make([]int, req.Hi-req.Lo)
		for i := range counts {
			counts[i] = base + req.Lo + i
		}
		fw.served.Add(1)
		json.NewEncoder(w).Encode(SweepResponse{Counts: counts})
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func newTestPool(t *testing.T, cfg PoolConfig, workers ...*fakeWorker) *Pool {
	t.Helper()
	cfg.World = "test-world"
	p := NewPool(cfg)
	t.Cleanup(p.Close)
	for _, fw := range workers {
		p.Register(fw.srv.URL, 1)
	}
	return p
}

// newWireWorker is fakeWorker's current-version sibling: it answers
// PathSweep with binary wire frames and understands the coalesced
// multi-range form, with the same predictable counts[i] = base + index.
func newWireWorker(t *testing.T, base int) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	counts := func(lo, hi int) []int {
		c := make([]int, hi-lo)
		for i := range c {
			c[i] = base + lo + i
		}
		return c
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST "+PathSweep, func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fw.served.Add(1)
		w.Header().Set("Content-Type", WireContentType)
		if len(req.Ranges) > 0 {
			var body []byte
			for _, rg := range req.Ranges {
				frame := AppendCounts(nil, counts(rg.Lo, rg.Hi))
				body = AppendFramePrefix(body, len(frame))
				body = append(body, frame...)
			}
			w.Write(body)
			return
		}
		w.Write(AppendCounts(nil, counts(req.Lo, req.Hi)))
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

// TestPoolCoalescesWireShards pins the capability gate and the round-trip
// collapse: the first shard of a fresh worker goes out singly (wire
// capability unproven), its response latches wireOK, and from then on a
// puller drains the queue into multi-range requests — while the merged
// counts stay exactly the identity either way.
func TestPoolCoalescesWireShards(t *testing.T) {
	fw := newWireWorker(t, 0)
	// A huge hedge delay makes round-trip counts deterministic: no
	// duplicate dispatches to muddy the served counter.
	p := newTestPool(t, PoolConfig{ShardBlocks: 1, HedgeDelay: time.Hour}, fw)
	const n = 64 * 8 // 8 one-block shards, one slot
	counts, err := p.SweepCounts(context.Background(), "full", n)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, n)
	st := p.StatsSnapshot()
	// Shard 0 single, then the puller drains shards 1..7 into one
	// coalesced request: exactly two round trips for eight shards.
	if got := fw.served.Load(); got != 2 {
		t.Fatalf("sweep took %d round trips, want 2 (1 single + 1 coalesced); stats %+v", got, st)
	}
	if st.MultiBatches != 1 {
		t.Fatalf("multi batches = %d, want 1", st.MultiBatches)
	}
	if st.WireShards != 8 || st.RemoteShards != 8 {
		t.Fatalf("wire/remote shards = %d/%d, want 8/8", st.WireShards, st.RemoteShards)
	}
	// Second sweep: capability already proven, so the whole queue drains
	// into a single multi-range request.
	counts, err = p.SweepCounts(context.Background(), "full", n)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, n)
	st = p.StatsSnapshot()
	if got := fw.served.Load(); got != 3 {
		t.Fatalf("second sweep took %d extra round trips, want 1 coalesced; stats %+v", got-2, st)
	}
	if st.MultiBatches != 2 || st.WireShards != 16 {
		t.Fatalf("after two sweeps: multi batches = %d, wire shards = %d; want 2, 16", st.MultiBatches, st.WireShards)
	}
	if st.WireSaved <= 0 {
		t.Fatalf("wire_saved_bytes = %d, want > 0", st.WireSaved)
	}
}

// TestPoolMultiFailureRequeuesMembers: a worker whose multi-range response
// is garbage must not poison the merge — every member is requeued and the
// query drains through the fallback with the exact answer.
func TestPoolMultiFailureRequeuesMembers(t *testing.T) {
	fw := &fakeWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if fw.fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST "+PathSweep, func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fw.served.Add(1)
		w.Header().Set("Content-Type", WireContentType)
		if len(req.Ranges) > 0 {
			// Valid first frame, then junk: the decoder must reject the
			// response as a unit. The worker also goes dark (healthz
			// included), so the remaining members deterministically drain
			// through the local fallback instead of racing the prober.
			fw.fail.Store(true)
			frame := AppendCounts(nil, make([]int, req.Ranges[0].Hi-req.Ranges[0].Lo))
			body := AppendFramePrefix(nil, len(frame))
			body = append(body, frame...)
			w.Write(append(body, "not a frame"...))
			return
		}
		c := make([]int, req.Hi-req.Lo)
		for i := range c {
			c[i] = req.Lo + i
		}
		w.Write(AppendCounts(nil, c))
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)

	var localCalls atomic.Int64
	p := newTestPool(t, PoolConfig{ShardBlocks: 1, HedgeDelay: time.Hour, MaxAttempts: 2,
		LocalSweep: func(_ context.Context, _ string, lo, hi int) ([]int, error) {
			localCalls.Add(1)
			c := make([]int, hi-lo)
			for i := range c {
				c[i] = lo + i
			}
			return c, nil
		}}, fw)
	const n = 64 * 6
	counts, err := p.SweepCounts(context.Background(), "full", n)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, n)
	st := p.StatsSnapshot()
	if st.LocalShards == 0 {
		t.Fatalf("corrupt multi responses never drained to the local fallback (stats %+v)", st)
	}
}

func wantIdentity(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d counts, want %d", len(got), n)
	}
	for i, c := range got {
		if c != i {
			t.Fatalf("count[%d] = %d, want %d (shard merged out of place)", i, c, i)
		}
	}
}

func TestPoolSweepMergesShards(t *testing.T) {
	p := newTestPool(t, PoolConfig{ShardBlocks: 1},
		newFakeWorker(t, 0, 0), newFakeWorker(t, 0, 0))
	const n = 1000 // 16 shards at one block each
	counts, err := p.SweepCounts(context.Background(), "full", n)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, n)
	st := p.StatsSnapshot()
	if st.RemoteShards != 16 {
		t.Fatalf("remote shards = %d, want 16", st.RemoteShards)
	}
	for _, w := range st.Workers {
		if w.Shards == 0 {
			t.Fatalf("worker %s computed no shards; partitioning is not spreading load", w.Addr)
		}
		if w.Inflight != 0 {
			t.Fatalf("worker %s still shows %d in-flight after completion", w.Addr, w.Inflight)
		}
	}
}

// TestPoolRetriesOnWorkerDeath kills one worker after its first shard
// response; the remaining shards must be retried on the healthy peer and
// the merged result must be exactly what a single process would produce.
func TestPoolRetriesOnWorkerDeath(t *testing.T) {
	dying := newFakeWorker(t, 0, 0)
	healthy := newFakeWorker(t, 0, 0)
	p := newTestPool(t, PoolConfig{ShardBlocks: 1}, dying, healthy)

	// Flip the dying worker to failure as soon as it has served one shard.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if dying.served.Load() >= 1 {
				dying.fail.Store(true)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const n = 2048 // 32 shards
	counts, err := p.SweepCounts(context.Background(), "full", n)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, n)
	st := p.StatsSnapshot()
	if dying.fail.Load() {
		if st.Retries == 0 {
			t.Fatalf("worker died mid-sweep but retries = 0 (stats: %+v)", st)
		}
		for _, w := range st.Workers {
			if w.Addr == dying.srv.URL && w.Healthy {
				t.Fatal("dead worker still marked healthy after a failed shard")
			}
		}
	}
}

func TestPoolAllWorkersDeadFallsBackToLocal(t *testing.T) {
	dead := newFakeWorker(t, 0, 0)
	dead.fail.Store(true)
	var localCalls atomic.Int64
	cfg := PoolConfig{ShardBlocks: 1, MaxAttempts: 2,
		LocalSweep: func(_ context.Context, _ string, lo, hi int) ([]int, error) {
			localCalls.Add(1)
			out := make([]int, hi-lo)
			for i := range out {
				out[i] = lo + i
			}
			return out, nil
		}}
	p := newTestPool(t, cfg, dead)
	counts, err := p.SweepCounts(context.Background(), "full", 500)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, 500)
	if localCalls.Load() == 0 {
		t.Fatal("local fallback never ran")
	}
	if st := p.StatsSnapshot(); st.LocalShards == 0 {
		t.Fatalf("local shards = 0, want >0 (stats: %+v)", st)
	}
}

func TestPoolAllWorkersDeadNoLocalFails(t *testing.T) {
	dead := newFakeWorker(t, 0, 0)
	dead.fail.Store(true)
	p := newTestPool(t, PoolConfig{ShardBlocks: 1, MaxAttempts: 2}, dead)
	_, err := p.SweepCounts(context.Background(), "full", 500)
	if err == nil {
		t.Fatal("sweep over a dead pool with no fallback should fail")
	}
}

func TestPoolShedsBeyondMaxQueries(t *testing.T) {
	slow := newFakeWorker(t, 0, 200*time.Millisecond)
	p := newTestPool(t, PoolConfig{ShardBlocks: 64, MaxQueries: 1}, slow)

	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		close(started)
		_, err := p.SweepCounts(context.Background(), "full", 64)
		result <- err
	}()
	<-started
	// Wait until the first query is admitted, then the second must shed.
	deadline := time.Now().Add(2 * time.Second)
	for p.StatsSnapshot().Queries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.SweepCounts(context.Background(), "full", 64); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second concurrent query: err = %v, want ErrSaturated", err)
	}
	if err := <-result; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
	if st := p.StatsSnapshot(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

// TestPoolHedgesStragglers pairs a slow worker with a fast one under a
// fixed hedge delay: shards stuck on the straggler are re-dispatched and
// the fast copy's result wins, so the sweep finishes long before the
// straggler would have.
func TestPoolHedgesStragglers(t *testing.T) {
	slow := newFakeWorker(t, 0, 2*time.Second)
	fast := newFakeWorker(t, 0, 0)
	p := newTestPool(t, PoolConfig{ShardBlocks: 1, HedgeDelay: 20 * time.Millisecond}, slow, fast)

	start := time.Now()
	counts, err := p.SweepCounts(context.Background(), "full", 256) // 4 shards
	if err != nil {
		t.Fatal(err)
	}
	wantIdentity(t, counts, 256)
	if took := time.Since(start); took > time.Second {
		t.Fatalf("sweep took %v; hedging should have rescued shards stuck on the straggler", took)
	}
	if st := p.StatsSnapshot(); st.Hedges == 0 {
		t.Fatalf("hedges = 0, want >0 (stats: %+v)", st)
	}
}

func TestPoolBatchCountsMergeInRequestOrder(t *testing.T) {
	// Workers echo base+Lo+i for range requests; for origin-list requests
	// the fake needs the origin itself, so extend: serve counts[i] =
	// int(origins[i]) when an origin list is present.
	mkWorker := func() *fakeWorker {
		fw := &fakeWorker{}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		mux.HandleFunc("POST "+PathSweep, func(w http.ResponseWriter, r *http.Request) {
			var req SweepRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			counts := make([]int, len(req.Origins))
			for i, o := range req.Origins {
				counts[i] = int(o)
			}
			json.NewEncoder(w).Encode(SweepResponse{Counts: counts})
		})
		fw.srv = httptest.NewServer(mux)
		t.Cleanup(fw.srv.Close)
		return fw
	}
	p := newTestPool(t, PoolConfig{ShardBlocks: 1}, mkWorker(), mkWorker())
	origins := make([]uint32, 300)
	for i := range origins {
		origins[i] = uint32(10000 + i)
	}
	counts, err := p.BatchCounts(context.Background(), origins, "full")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != int(origins[i]) {
			t.Fatalf("counts[%d] = %d, want %d (request order lost)", i, c, origins[i])
		}
	}
}
