package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// encodeShardBodies marshals every shard's request once, up front. Retries
// and hedges re-send the same bytes wrapped in a fresh reader (postShard),
// instead of paying a json.Marshal per attempt.
func encodeShardBodies(shards []shardRange, build func(s shardRange) any) ([][]byte, error) {
	bodies := make([][]byte, len(shards))
	for i, s := range shards {
		b, err := json.Marshal(build(s))
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// shardRange is one contiguous slice [Lo, Hi) of a partitioned sweep.
type shardRange struct{ Lo, Hi int }

// shardRanges partitions [0, n) into 64-aligned shards. It aims for about
// four shards per worker slot — enough granularity that a straggler near
// the end of a sweep idles no one — but never lets a shard exceed
// maxBlocks 64-origin blocks, so a retried or hedged shard stays cheap.
// Every boundary except possibly the last is a multiple of laneWidth,
// which keeps every propagation word of the bit-parallel engine full.
func shardRanges(n, slots, maxBlocks int) []shardRange {
	if n <= 0 {
		return nil
	}
	if slots < 1 {
		slots = 1
	}
	if maxBlocks < 1 {
		maxBlocks = 1
	}
	blocks := (n + laneWidth - 1) / laneWidth
	per := (blocks + slots*4 - 1) / (slots * 4)
	if per > maxBlocks {
		per = maxBlocks
	}
	step := per * laneWidth
	out := make([]shardRange, 0, (n+step-1)/step)
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		out = append(out, shardRange{lo, hi})
	}
	return out
}

// admit is the pool's load-shedding gate: a query is admitted only while
// fewer than MaxQueries fan-outs are in flight.
func (p *Pool) admit() error {
	if p.queries.Add(1) > int64(p.cfg.MaxQueries) {
		p.queries.Add(-1)
		p.shed.Add(1)
		return ErrSaturated
	}
	return nil
}

// maxCoalesce bounds how many queued shards one multi-range request may
// carry. The cap limits the blast radius of a single lost response and
// keeps any one request's latency (the worker computes its ranges
// sequentially under one serving slot) within a small multiple of a
// single shard's.
const maxCoalesce = 32

// fanout executes n shards across the pool's healthy workers and commits
// each shard's result exactly once.
//
// Mechanics: shards go into a queue; each healthy worker gets one puller
// goroutine per slot. A failed attempt demotes the worker (one strike —
// the background prober restores it) and requeues the shard for a peer,
// up to MaxAttempts tries. The first attempt of each shard arms a hedge
// timer: if the shard is still unfinished at the hedge delay, a duplicate
// is dispatched to another worker and the first result wins. Completion
// is a per-shard CAS, so of two racing attempts only the winner commits —
// that CAS is the whole merging-safety argument — and the loser's request
// is canceled via a per-shard context. If every worker dies mid-query, a
// monitor drains the remaining shards through the local fallback; with no
// fallback the query fails instead of hanging.
//
// Coalescing: when the caller supplies remoteMulti and a worker has
// proven wire-capable, its puller drains up to batchCap queued shards and
// sends them as one multi-range request — the streaming merge that turns
// a fan-out's per-shard HTTP round trips into a handful of requests whose
// frames decode straight into disjoint slices of the merge output. Every
// member still finishes through its own CAS (hedge singles race coalesced
// members safely), and a failed batch requeues each member individually,
// so coalescing changes round-trip count, never the merge semantics.
func (p *Pool) fanout(ctx context.Context, n int,
	remote func(ctx context.Context, w *Worker, i int) (func(), error),
	remoteMulti func(ctx context.Context, w *Worker, idxs []int) ([]func(), error),
	local func(ctx context.Context, i int) (func(), error)) error {
	if n == 0 {
		return nil
	}
	workers := p.healthyWorkers()
	if len(workers) == 0 {
		if local == nil {
			return errNoWorkers
		}
		for i := 0; i < n; i++ {
			commit, err := local(ctx, i)
			if err != nil {
				return err
			}
			commit()
			p.local.Add(1)
		}
		return nil
	}

	qctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := make(chan int, n*(2*p.cfg.MaxAttempts+2))
	done := make([]atomic.Bool, n)
	attempts := make([]atomic.Int32, n)
	hedged := make([]atomic.Bool, n)
	allDone := make(chan struct{})
	var remaining atomic.Int64
	remaining.Store(int64(n))
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	finish := func(i int, commit func(), where *atomic.Int64) bool {
		if !done[i].CompareAndSwap(false, true) {
			return false
		}
		commit()
		where.Add(1)
		if remaining.Add(-1) == 0 {
			close(allDone)
		}
		return true
	}
	// Per-shard contexts: canceling one aborts the hedge loser's request
	// the moment the winner commits, without touching other shards.
	sctx := make([]context.Context, n)
	scancel := make([]context.CancelFunc, n)
	for i := range sctx {
		sctx[i], scancel[i] = context.WithCancel(qctx)
	}
	defer func() {
		for _, c := range scancel {
			c()
		}
	}()
	requeue := func(i int) {
		select {
		case queue <- i:
		default:
			// The queue is sized for every possible enqueue (initial +
			// failure requeues + one hedge per shard), so this is
			// unreachable; dropping is still safer than blocking.
		}
	}
	for i := 0; i < n; i++ {
		queue <- i
	}

	hedge := p.hedgeDelay()
	// preAttempt runs one shard's per-attempt bookkeeping — attempt
	// accounting, the local-fallback drain past MaxAttempts, the retry
	// counter, arming the first-attempt hedge timer — and reports whether
	// the shard should still go to a worker.
	preAttempt := func(i int) bool {
		if done[i].Load() {
			return false
		}
		att := int(attempts[i].Add(1))
		if att > p.cfg.MaxAttempts {
			if local == nil {
				fail(fmt.Errorf("cluster: shard %d failed after %d attempts", i, p.cfg.MaxAttempts))
				return false
			}
			commit, err := local(qctx, i)
			if err != nil {
				fail(err)
				return false
			}
			finish(i, commit, &p.local)
			return false
		}
		if att > 1 && !hedged[i].CompareAndSwap(true, false) {
			p.retries.Add(1)
		}
		if att == 1 && hedge > 0 {
			time.AfterFunc(hedge, func() {
				if !done[i].Load() && qctx.Err() == nil {
					p.hedges.Add(1)
					hedged[i].Store(true)
					requeue(i)
				}
			})
		}
		return true
	}
	// exec is the remote half of a single-shard attempt.
	exec := func(w *Worker, i int) {
		w.inflight.Add(1)
		start := time.Now()
		commit, err := remote(sctx[i], w, i)
		w.inflight.Add(-1)
		if err != nil {
			if sctx[i].Err() != nil {
				return // shard already won or query canceled; not the worker's fault
			}
			w.fails.Add(1)
			w.healthy.Store(false) // one strike; the prober restores it
			requeue(i)
			return
		}
		p.lat.record(time.Since(start))
		w.shards.Add(1)
		if finish(i, commit, &p.remote) {
			scancel[i]()
		}
	}
	attempt := func(w *Worker, i int) {
		if preAttempt(i) {
			exec(w, i)
		}
	}
	attemptMulti := func(w *Worker, batch []int) {
		live := batch[:0]
		for _, i := range batch {
			if preAttempt(i) {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			return
		}
		if len(live) == 1 {
			exec(w, live[0])
			return
		}
		// One request for the whole batch, under the query context rather
		// than a per-shard one: a hedge winning one member must not abort
		// the members still pending. The per-shard CAS keeps the race
		// safe either way — a loser's commit simply never runs.
		w.inflight.Add(int64(len(live)))
		start := time.Now()
		commits, err := remoteMulti(qctx, w, live)
		w.inflight.Add(-int64(len(live)))
		if err != nil {
			if qctx.Err() != nil {
				return
			}
			w.fails.Add(1)
			w.healthy.Store(false)
			for _, i := range live {
				requeue(i)
			}
			return
		}
		// One latency sample for the batch: the adaptive hedge point then
		// tracks round-trip cost at the granularity work is actually
		// dispatched.
		p.lat.record(time.Since(start))
		for k, i := range live {
			w.shards.Add(1)
			if finish(i, commits[k], &p.remote) {
				scancel[i]()
			}
		}
	}

	// batchCap is the coalescing drain limit: an even split of the shard
	// count across every healthy slot, so the first puller to reach the
	// queue cannot starve its peers, capped by maxCoalesce.
	batchCap := 0
	if remoteMulti != nil {
		slots := 0
		for _, w := range workers {
			slots += w.slots
		}
		batchCap = (n + slots - 1) / slots
		if batchCap > maxCoalesce {
			batchCap = maxCoalesce
		}
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		for s := 0; s < w.slots; s++ {
			wg.Add(1)
			go func(w *Worker) {
				defer wg.Done()
				var batch []int
				for {
					if !w.healthy.Load() {
						return
					}
					select {
					case <-qctx.Done():
						return
					case <-allDone:
						return
					case i := <-queue:
						// Coalesce only once the worker has proven it
						// speaks the wire protocol (see Worker.wireOK);
						// until then every shard goes out singly.
						if batchCap < 2 || !w.wireOK.Load() {
							attempt(w, i)
							continue
						}
						batch = append(batch[:0], i)
					drain:
						for len(batch) < batchCap {
							select {
							case j := <-queue:
								batch = append(batch, j)
							default:
								break drain
							}
						}
						attemptMulti(w, batch)
					}
				}
			}(w)
		}
	}

	// Monitor: if the whole pool dies mid-query, drain what is left
	// through the local fallback (or fail fast without one).
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-qctx.Done():
				return
			case <-allDone:
				return
			case <-t.C:
			}
			if len(p.healthyWorkers()) > 0 {
				continue
			}
			if local == nil {
				fail(errNoWorkers)
				return
			}
			for i := 0; i < n; i++ {
				if done[i].Load() {
					continue
				}
				commit, err := local(qctx, i)
				if err != nil {
					fail(err)
					return
				}
				finish(i, commit, &p.local)
			}
		}
	}()

	select {
	case <-allDone:
		cancel()
		wg.Wait()
		return nil
	case <-qctx.Done():
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		return ctx.Err()
	}
}

// SweepCounts computes the reachability count of every dense graph index
// in [0, n) for the named kind, partitioned across the cluster. The
// merged slice is exactly what core.Metrics.ReachabilityAll returns: each
// shard is a disjoint index range computed by the same engine, and counts
// are exact integers, so concatenation is byte-identical to the
// single-process sweep.
func (p *Pool) SweepCounts(ctx context.Context, kind string, n int) ([]int, error) {
	if err := p.admit(); err != nil {
		return nil, err
	}
	defer p.queries.Add(-1)
	shards := shardRanges(n, p.totalSlots(), p.cfg.ShardBlocks)
	out := make([]int, n)
	bodies, err := encodeShardBodies(shards, func(s shardRange) any {
		return SweepRequest{Kind: kind, Lo: s.Lo, Hi: s.Hi}
	})
	if err != nil {
		return nil, err
	}
	remote := func(ctx context.Context, w *Worker, i int) (func(), error) {
		s := shards[i]
		return p.fetchCounts(ctx, w, PathSweep, bodies[i], out[s.Lo:s.Hi])
	}
	remoteMulti := p.countsMulti(kind, false, shards, out)
	var local func(context.Context, int) (func(), error)
	if p.cfg.LocalSweep != nil {
		local = func(ctx context.Context, i int) (func(), error) {
			s := shards[i]
			counts, err := p.cfg.LocalSweep(ctx, kind, s.Lo, s.Hi)
			if err != nil {
				return nil, err
			}
			return func() { copy(out[s.Lo:s.Hi], counts) }, nil
		}
	}
	if err := p.fanout(ctx, len(shards), remote, remoteMulti, local); err != nil {
		return nil, err
	}
	return out, nil
}

// countsMulti builds the coalesced-dispatch closure shared by SweepCounts
// and ClassCounts: marshal the drained shards' ranges into one multi-range
// request (per batch, not per shard — batch membership is only known at
// drain time) and hand each member's frame back as a commit into its
// disjoint slice of the merge output.
func (p *Pool) countsMulti(kind string, classes bool, shards []shardRange, out []int) func(ctx context.Context, w *Worker, idxs []int) ([]func(), error) {
	return func(ctx context.Context, w *Worker, idxs []int) ([]func(), error) {
		req := SweepRequest{Kind: kind, Classes: classes, Ranges: make([]Range, len(idxs))}
		dsts := make([][]int, len(idxs))
		for k, i := range idxs {
			s := shards[i]
			req.Ranges[k] = Range(s)
			dsts[k] = out[s.Lo:s.Hi]
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		return p.fetchCountsMulti(ctx, w, body, dsts)
	}
}

// ClassCounts computes the reachability count of every equivalence-class
// representative for class ids [0, nClasses), partitioned across the
// cluster — the class-collapsed counterpart of SweepCounts. Class ids are
// deterministic functions of the frozen world (see SweepRequest.Classes),
// so shards merged from different workers concatenate to exactly the local
// per-class vector; the caller expands it to per-AS counts with
// ClassIndex.Expand. Sharding by class blocks rather than AS blocks keeps
// every worker's propagation words full of *distinct* work — the collapse
// ratio is paid once, up front, instead of per shard.
func (p *Pool) ClassCounts(ctx context.Context, kind string, nClasses int) ([]int, error) {
	if err := p.admit(); err != nil {
		return nil, err
	}
	defer p.queries.Add(-1)
	shards := shardRanges(nClasses, p.totalSlots(), p.cfg.ShardBlocks)
	out := make([]int, nClasses)
	bodies, err := encodeShardBodies(shards, func(s shardRange) any {
		return SweepRequest{Kind: kind, Lo: s.Lo, Hi: s.Hi, Classes: true}
	})
	if err != nil {
		return nil, err
	}
	remote := func(ctx context.Context, w *Worker, i int) (func(), error) {
		s := shards[i]
		return p.fetchCounts(ctx, w, PathSweep, bodies[i], out[s.Lo:s.Hi])
	}
	remoteMulti := p.countsMulti(kind, true, shards, out)
	var local func(context.Context, int) (func(), error)
	if p.cfg.LocalClasses != nil {
		local = func(ctx context.Context, i int) (func(), error) {
			s := shards[i]
			counts, err := p.cfg.LocalClasses(ctx, kind, s.Lo, s.Hi)
			if err != nil {
				return nil, err
			}
			return func() { copy(out[s.Lo:s.Hi], counts) }, nil
		}
	}
	if err := p.fanout(ctx, len(shards), remote, remoteMulti, local); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchCounts computes reach counts for an explicit origin list (ASNs),
// partitioned across the cluster in request order. Shard boundaries are
// 64-aligned positions in the list, so each shard rides full bit-parallel
// words on its worker and the concatenated result preserves input order.
func (p *Pool) BatchCounts(ctx context.Context, origins []uint32, kind string) ([]int, error) {
	if err := p.admit(); err != nil {
		return nil, err
	}
	defer p.queries.Add(-1)
	shards := shardRanges(len(origins), p.totalSlots(), p.cfg.ShardBlocks)
	out := make([]int, len(origins))
	bodies, err := encodeShardBodies(shards, func(s shardRange) any {
		return SweepRequest{Kind: kind, Origins: origins[s.Lo:s.Hi]}
	})
	if err != nil {
		return nil, err
	}
	remote := func(ctx context.Context, w *Worker, i int) (func(), error) {
		s := shards[i]
		return p.fetchCounts(ctx, w, PathSweep, bodies[i], out[s.Lo:s.Hi])
	}
	var local func(context.Context, int) (func(), error)
	if p.cfg.LocalBatch != nil {
		local = func(ctx context.Context, i int) (func(), error) {
			s := shards[i]
			counts, err := p.cfg.LocalBatch(ctx, kind, origins[s.Lo:s.Hi])
			if err != nil {
				return nil, err
			}
			return func() { copy(out[s.Lo:s.Hi], counts) }, nil
		}
	}
	if err := p.fanout(ctx, len(shards), remote, nil, local); err != nil {
		return nil, err
	}
	return out, nil
}

// LeakFracs replays a leak-trial batch across the cluster: leakers are
// sampled deterministically from (origin, trials, seed) on every node, so
// shard [lo, hi) of the sample means the same leakers everywhere and the
// concatenated detoured fractions are in exactly the order the
// single-process engine would produce — the aggregate stats downstream
// (mean, p95, worst) sum the same floats in the same order. n is the
// actual sample length (bgpsim.SampleLeakers caps the request at the
// graph size, so it can be below q.Trials); the caller computes it from
// its own sample and every worker reproduces the identical sample.
func (p *Pool) LeakFracs(ctx context.Context, q LeakQuery, n int) ([]float64, error) {
	if err := p.admit(); err != nil {
		return nil, err
	}
	defer p.queries.Add(-1)
	shards := shardRanges(n, p.totalSlots(), p.cfg.ShardBlocks)
	out := make([]float64, n)
	bodies, err := encodeShardBodies(shards, func(s shardRange) any {
		return LeakRequest{LeakQuery: q, Lo: s.Lo, Hi: s.Hi}
	})
	if err != nil {
		return nil, err
	}
	remote := func(ctx context.Context, w *Worker, i int) (func(), error) {
		s := shards[i]
		return p.fetchFracs(ctx, w, PathLeak, bodies[i], out[s.Lo:s.Hi])
	}
	var local func(context.Context, int) (func(), error)
	if p.cfg.LocalLeak != nil {
		local = func(ctx context.Context, i int) (func(), error) {
			s := shards[i]
			fracs, err := p.cfg.LocalLeak(ctx, q, s.Lo, s.Hi)
			if err != nil {
				return nil, err
			}
			return func() { copy(out[s.Lo:s.Hi], fracs) }, nil
		}
	}
	if err := p.fanout(ctx, len(shards), remote, nil, local); err != nil {
		return nil, err
	}
	return out, nil
}
