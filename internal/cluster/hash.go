package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"

	"flatnet/internal/astopo"
)

// DatasetHash computes the content address of a served world: a sha256
// over the frozen topology arrays (sorted node list, CSR offsets and
// arena, link columns) and the sorted Tier-1/Tier-2 exclusion sets.
//
// Two nodes with equal hashes index the same AS at the same dense position
// and exclude the same tiers, so shard results keyed by dense index ranges
// can be merged without translation. Worlds loaded from the same snapshot
// hash equal by construction; independently generated worlds hash equal
// because generation is deterministic (the netdb map-iteration fix in
// PR 5 is what makes that guarantee hold).
//
// The hash is defined over explicit little-endian bytes, not in-memory
// representation, so it is stable across architectures.
func DatasetHash(g *astopo.Graph, tier1, tier2 astopo.ASSet) string {
	f := g.Frozen()
	h := sha256.New()
	var scratch [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		h.Write(scratch[:4])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		h.Write(scratch[:8])
	}
	h.Write([]byte("flatnet-world-v1"))
	u64(uint64(len(f.Nodes)))
	u64(uint64(len(f.LinkA)))
	for _, a := range f.Nodes {
		u32(uint32(a))
	}
	for _, off := range [][]int32{f.ProvOff, f.CustOff, f.PeerOff} {
		for _, v := range off {
			u32(uint32(v))
		}
	}
	for _, v := range f.Arena {
		u32(uint32(v))
	}
	for i := range f.LinkA {
		u32(uint32(f.LinkA[i]))
		u32(uint32(f.LinkB[i]))
		u32(uint32(int32(f.LinkRel[i])))
	}
	for _, set := range []astopo.ASSet{tier1, tier2} {
		asns := set.Slice()
		slices.Sort(asns)
		u64(uint64(len(asns)))
		for _, a := range asns {
			u32(uint32(a))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
