package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// This file is the worker side of cluster membership: discover the
// coordinator's world, materialize the same snapshot by content address,
// and register. The state-sync contract is deliberately minimal — a worker
// never receives topology over a bespoke protocol; it either already has
// the snapshot (verified by sha256) or fetches the exact bytes the
// coordinator serves and mmaps them like any local file.

// FetchInfo retrieves the coordinator's world description.
func FetchInfo(ctx context.Context, client *http.Client, coordinator string) (Info, error) {
	var info Info
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, CanonicalAddr(coordinator)+PathInfo, nil)
	if err != nil {
		return info, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("cluster: %s: status %d", PathInfo, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, err
	}
	if info.World == "" {
		return info, fmt.Errorf("cluster: coordinator returned no world identity")
	}
	return info, nil
}

// EnsureSnapshot returns a local path holding the coordinator's snapshot,
// downloading it only when the content-addressed cache misses. cacheDir
// defaults to <os.TempDir()>/flatnet-snapshots; the file is stored as
// <sha256>.snap, so any number of workers (and restarts) share one copy
// per world and a hash match proves the bytes without trusting the cache.
func EnsureSnapshot(ctx context.Context, client *http.Client, coordinator string, info Info, cacheDir string) (string, error) {
	if info.SnapshotSHA == "" {
		return "", fmt.Errorf("cluster: coordinator serves no snapshot (world %.12s…); start the worker with the same -snapshot file instead", info.World)
	}
	if cacheDir == "" {
		cacheDir = filepath.Join(os.TempDir(), "flatnet-snapshots")
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(cacheDir, info.SnapshotSHA+".snap")
	if sum, err := fileSHA256(path); err == nil && sum == info.SnapshotSHA {
		return path, nil
	}
	if err := DownloadSnapshot(ctx, client, coordinator, info, path); err != nil {
		return "", err
	}
	return path, nil
}

// DownloadSnapshot streams the coordinator's snapshot to path, verifying
// the sha256 while writing; a mismatch leaves no file behind.
func DownloadSnapshot(ctx context.Context, client *http.Client, coordinator string, info Info, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, CanonicalAddr(coordinator)+PathSnapshot, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: status %d", PathSnapshot, resp.StatusCode)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	if _, err := io.Copy(io.MultiWriter(tmp, h), resp.Body); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if sum := fmt.Sprintf("%x", h.Sum(nil)); sum != info.SnapshotSHA {
		return fmt.Errorf("cluster: snapshot hash mismatch: got %.12s…, coordinator advertises %.12s…", sum, info.SnapshotSHA)
	}
	return os.Rename(tmp.Name(), path)
}

// Join registers a worker with the coordinator. The coordinator rejects
// (HTTP 409) a worker whose world hash differs from its own.
func Join(ctx context.Context, client *http.Client, coordinator string, jr JoinRequest) (JoinResponse, error) {
	var out JoinResponse
	b, err := json.Marshal(jr)
	if err != nil {
		return out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, CanonicalAddr(coordinator)+PathJoin, bytes.NewReader(b))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return out, fmt.Errorf("cluster: join rejected: status %d: %s", resp.StatusCode, snippet)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// JoinRetry joins with retries (for the race where the worker starts
// before the coordinator finishes loading), then keeps re-joining on the
// given interval as a heartbeat: Register is idempotent, so a worker that
// the coordinator demoted — or that outlived a coordinator restart —
// re-enters the pool on the next beat. The heartbeat goroutine stops when
// ctx is canceled.
func JoinRetry(ctx context.Context, client *http.Client, coordinator string, jr JoinRequest, beat time.Duration) error {
	var err error
	for i := 0; i < 20; i++ {
		if _, err = Join(ctx, client, coordinator, jr); err == nil {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
	if err != nil {
		return err
	}
	if beat > 0 {
		go func() {
			t := time.NewTicker(beat)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					Join(ctx, client, coordinator, jr)
				}
			}
		}()
	}
	return nil
}

func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
