package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned when the pool has more concurrent fan-out
// queries than MaxQueries: admitting another would only queue it behind
// work the workers cannot absorb, so the caller should shed it instead
// (the serving layer maps this to HTTP 429 + Retry-After).
var ErrSaturated = errors.New("cluster: worker pool saturated")

// errNoWorkers is returned when a fan-out finds neither a healthy worker
// nor a local fallback.
var errNoWorkers = errors.New("cluster: no healthy workers and no local fallback")

// PoolConfig parameterizes a Pool. The zero value of every knob picks the
// documented default.
type PoolConfig struct {
	// World is the content address every joining worker must match.
	World string

	// MaxQueries bounds concurrently fanning-out queries; excess queries
	// are shed with ErrSaturated (default 8).
	MaxQueries int
	// MaxAttempts bounds how many times one shard is tried across workers
	// (including the hedge) before the whole query fails (default 4).
	MaxAttempts int
	// ShardBlocks caps one shard's size in 64-origin blocks (default 64,
	// i.e. 4096 origins), keeping shards small enough to retry cheaply and
	// to keep every worker busy near the end of a sweep.
	ShardBlocks int

	// HedgeDelay, when positive, hedges a shard onto a second worker after
	// the fixed delay. When zero, the delay adapts: the 95th percentile of
	// recent shard latencies (HedgePercentile), floored at HedgeMin, once
	// enough samples exist.
	HedgeDelay time.Duration
	// HedgePercentile picks the adaptive hedge point (default 95).
	HedgePercentile int
	// HedgeMin floors the adaptive hedge delay (default 25ms).
	HedgeMin time.Duration

	// HealthInterval is the background health-probe period (default 2s);
	// ProbeTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	ProbeTimeout   time.Duration
	// ShardTimeout is forwarded as the per-shard compute deadline on
	// worker requests (default 30s).
	ShardTimeout time.Duration

	// Client is the HTTP client for worker requests (default: a dedicated
	// client with generous per-host keep-alive connections).
	Client *http.Client

	// LocalSweep and LocalLeak compute one shard on the coordinator
	// itself. They are the fallback of last resort: used only when no
	// healthy worker remains mid-query, so a dying cluster degrades to
	// single-process service instead of failing.
	LocalSweep func(ctx context.Context, kind string, lo, hi int) ([]int, error)
	LocalBatch func(ctx context.Context, kind string, origins []uint32) ([]int, error)
	LocalLeak  func(ctx context.Context, q LeakQuery, lo, hi int) ([]float64, error)
	// LocalClasses computes one class-collapsed shard locally: counts for
	// the equivalence-class representatives [clo, chi), one per class.
	LocalClasses func(ctx context.Context, kind string, clo, chi int) ([]int, error)
}

func (c *PoolConfig) fillDefaults() {
	if c.MaxQueries <= 0 {
		c.MaxQueries = 8
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.ShardBlocks <= 0 {
		c.ShardBlocks = 64
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile > 100 {
		c.HedgePercentile = 95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
}

// Worker is one registered shard server. All mutable state is atomic; the
// dispatcher and the health prober touch it concurrently.
type Worker struct {
	// Addr is the worker's base URL (http://host:port).
	Addr string

	slots    int
	healthy  atomic.Bool
	inflight atomic.Int64
	shards   atomic.Int64 // completed shard computations
	fails    atomic.Int64 // consecutive failures (shard or probe)
	// wireOK latches once the worker answers a binary wire frame. It
	// gates multi-range coalescing: a pre-wire worker would misread the
	// Ranges field (see SweepRequest), so capability must be observed on
	// a plain single-shard response before any coalesced dispatch.
	wireOK atomic.Bool
	joined time.Time
}

// Pool is the coordinator's worker registry plus the shard dispatcher.
// It is safe for concurrent use.
type Pool struct {
	cfg PoolConfig

	mu      sync.Mutex
	workers map[string]*Worker
	probing bool

	closed    chan struct{}
	closeOnce sync.Once

	queries atomic.Int64 // in-flight fan-out queries
	shed    atomic.Int64
	retries atomic.Int64
	hedges  atomic.Int64
	remote  atomic.Int64 // shards merged from workers
	local   atomic.Int64 // shards merged from the local fallback

	wireShards atomic.Int64 // shards merged from binary wire frames
	jsonShards atomic.Int64 // shards merged from the JSON fallback
	wireBytes  atomic.Int64 // wire frame bytes received
	wireSaved  atomic.Int64 // bytes the wire saved vs the JSON encoding
	multi      atomic.Int64 // coalesced multi-range requests sent

	// timeoutQS is the per-shard deadline query string ("?timeout=30s"),
	// rendered once here instead of fmt.Sprintf-ing it per attempt.
	timeoutQS string

	lat latencyWindow
}

// NewPool returns an empty pool. The health prober starts lazily on the
// first Register, so single-process servers never spawn it.
func NewPool(cfg PoolConfig) *Pool {
	cfg.fillDefaults()
	return &Pool{
		cfg:       cfg,
		workers:   make(map[string]*Worker),
		closed:    make(chan struct{}),
		timeoutQS: "?timeout=" + cfg.ShardTimeout.String(),
	}
}

// Close stops the health prober. In-flight queries finish on their own.
func (p *Pool) Close() { p.closeOnce.Do(func() { close(p.closed) }) }

// World returns the content address workers must match.
func (p *Pool) World() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.World
}

// SetWorld rotates the pool onto a new content address and drops every
// registered worker: their loaded world no longer matches, so letting them
// keep computing shards would merge answers from the wrong topology.
// Workers re-join (and 409 until they have synced the new snapshot), which
// is the same flow as a fresh cluster bootstrap. In-flight fan-outs keep
// their already-copied worker handles; those workers still hold the old
// world, so the shards they finish are consistent with the query that
// started them.
func (p *Pool) SetWorld(world string) {
	p.mu.Lock()
	p.cfg.World = world
	p.workers = make(map[string]*Worker)
	p.mu.Unlock()
}

// Register adds (or refreshes) a worker by base URL. Registration marks
// the worker healthy immediately; the prober and the dispatcher demote it
// on failures. Re-registering is idempotent, which lets workers heartbeat
// by re-joining.
func (p *Pool) Register(addr string, slots int) *Worker {
	w, _ := p.RegisterFor(addr, slots, "")
	return w
}

// RegisterFor is Register gated on the world the worker claims to serve:
// the admission check and the insertion happen under one lock acquisition,
// so a worker holding an old world can never slip into a pool that rotated
// (SetWorld) between a caller's own check and the registration. An empty
// world skips the gate.
func (p *Pool) RegisterFor(addr string, slots int, world string) (*Worker, bool) {
	addr = CanonicalAddr(addr)
	if slots < 1 {
		slots = 1
	}
	p.mu.Lock()
	if world != "" && world != p.cfg.World {
		p.mu.Unlock()
		return nil, false
	}
	w, ok := p.workers[addr]
	if !ok {
		w = &Worker{Addr: addr, joined: time.Now()}
		p.workers[addr] = w
	}
	w.slots = slots
	w.fails.Store(0)
	w.healthy.Store(true)
	start := !p.probing
	p.probing = true
	p.mu.Unlock()
	if start {
		go p.probeLoop()
	}
	return w, true
}

// CanonicalAddr normalizes a worker address to a base URL without a
// trailing slash, defaulting the scheme to http.
func CanonicalAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// NumWorkers returns the number of registered workers, healthy or not.
func (p *Pool) NumWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Ready reports whether at least one healthy worker is registered — the
// serving layer's signal to route a query through the cluster rather than
// computing it in-process.
func (p *Pool) Ready() bool { return len(p.healthyWorkers()) > 0 }

func (p *Pool) healthyWorkers() []*Worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Worker, 0, len(p.workers))
	for _, w := range p.workers {
		if w.healthy.Load() {
			out = append(out, w)
		}
	}
	return out
}

// totalSlots sums the healthy workers' concurrency, the denominator of
// shard sizing.
func (p *Pool) totalSlots() int {
	n := 0
	for _, w := range p.healthyWorkers() {
		n += w.slots
	}
	if n < 1 {
		n = 1
	}
	return n
}

// probeLoop health-checks every worker until the pool closes: dead workers
// are demoted (taking them out of dispatch) and recovered ones restored.
func (p *Pool) probeLoop() {
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.closed:
			return
		case <-t.C:
		}
		p.mu.Lock()
		ws := make([]*Worker, 0, len(p.workers))
		for _, w := range p.workers {
			ws = append(ws, w)
		}
		p.mu.Unlock()
		for _, w := range ws {
			w.healthy.Store(p.probe(w))
		}
	}
}

func (p *Pool) probe(w *Worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		w.fails.Add(1)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.fails.Add(1)
		return false
	}
	w.fails.Store(0)
	return true
}

// bodyPool recycles response-body buffers across shard requests. One
// full-scale wire shard is ~12 KB (JSON fallback ~40 KB), so after the
// first few fan-outs every read lands in an already-sized buffer and the
// per-shard transport cost is the syscalls, not the allocator.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBody() *bytes.Buffer {
	b := bodyPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBody(b *bytes.Buffer) { bodyPool.Put(b) }

// postShard sends one pre-encoded shard request and returns the raw
// response body in a pooled buffer, plus whether the worker answered with
// a binary wire frame (it negotiated via our Accept header) or the JSON
// fallback (a pre-wire worker). The caller owns the buffer and must
// release it with putBody once decoded.
//
// The body is []byte, not an io.Reader: retries and hedges re-enter here
// with the same encoded bytes wrapped in a fresh reader, instead of
// re-marshaling the request per attempt.
func (p *Pool) postShard(ctx context.Context, w *Worker, path string, body []byte) (*bytes.Buffer, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Addr+path+p.timeoutQS, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wireAccept)
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, false, fmt.Errorf("cluster: %s%s: status %d: %s", w.Addr, path, resp.StatusCode, bytes.TrimSpace(snippet))
	}
	buf := getBody()
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		putBody(buf)
		return nil, false, err
	}
	return buf, isWireResponse(resp.Header), nil
}

// fetchCounts posts one encoded counts-shard request and returns a commit
// closure that writes the response into dst — the caller's preallocated
// slice of the merge output, no intermediate vector. Validation happens
// here, before the dispatcher's done-CAS, so a corrupt frame surfaces as a
// retryable error; the decode itself happens inside the commit closure
// because the CAS runs commits exactly once per shard — of two racing
// attempts (original + hedge duplicate) only the winner touches dst.
func (p *Pool) fetchCounts(ctx context.Context, w *Worker, path string, body []byte, dst []int) (func(), error) {
	buf, wire, err := p.postShard(ctx, w, path, body)
	if err != nil {
		return nil, err
	}
	if wire {
		w.wireOK.Store(true)
		frame := buf.Bytes()
		if err := CheckCounts(frame, len(dst)); err != nil {
			putBody(buf)
			return nil, err
		}
		return func() {
			// CheckCounts vetted the frame; DecodeCountsInto cannot fail now.
			_ = DecodeCountsInto(dst, frame)
			p.wireShards.Add(1)
			p.wireBytes.Add(int64(len(frame)))
			p.wireSaved.Add(int64(jsonCountsLen(dst) - len(frame)))
			putBody(buf)
		}, nil
	}
	var resp SweepResponse
	err = json.Unmarshal(buf.Bytes(), &resp)
	putBody(buf)
	if err != nil {
		return nil, err
	}
	if len(resp.Counts) != len(dst) {
		return nil, fmt.Errorf("cluster: worker returned %d counts, want %d", len(resp.Counts), len(dst))
	}
	return func() {
		copy(dst, resp.Counts)
		p.jsonShards.Add(1)
	}, nil
}

// fetchCountsMulti posts one coalesced multi-range request and returns
// one commit closure per destination, in request order. Every frame is
// validated before any commit is handed back — the whole response is
// accepted or rejected as a unit — but each range still commits through
// its own per-shard CAS, so a member whose hedge already won is simply a
// closure that never runs. The pooled response buffer is returned once
// the last commit fires; if a hedge steals a member, the buffer is left
// to the GC instead (one buffer per coalesced request, not per shard).
func (p *Pool) fetchCountsMulti(ctx context.Context, w *Worker, body []byte, dsts [][]int) ([]func(), error) {
	buf, wire, err := p.postShard(ctx, w, PathSweep, body)
	if err != nil {
		return nil, err
	}
	if !wire {
		putBody(buf)
		return nil, fmt.Errorf("cluster: %s answered a multi-range request with JSON", w.Addr)
	}
	frames := make([][]byte, len(dsts))
	rest := buf.Bytes()
	for k := range dsts {
		var frame []byte
		frame, rest, err = NextFrame(rest)
		if err != nil {
			putBody(buf)
			return nil, err
		}
		if err := CheckCounts(frame, len(dsts[k])); err != nil {
			putBody(buf)
			return nil, err
		}
		frames[k] = frame
	}
	if len(rest) != 0 {
		putBody(buf)
		return nil, fmt.Errorf("cluster: wire: %d trailing bytes after %d multi-range frames", len(rest), len(dsts))
	}
	p.multi.Add(1)
	var left atomic.Int32
	left.Store(int32(len(dsts)))
	commits := make([]func(), len(dsts))
	for k := range dsts {
		k := k
		commits[k] = func() {
			_ = DecodeCountsInto(dsts[k], frames[k])
			p.wireShards.Add(1)
			p.wireBytes.Add(int64(len(frames[k])))
			p.wireSaved.Add(int64(jsonCountsLen(dsts[k]) - len(frames[k])))
			if left.Add(-1) == 0 {
				putBody(buf)
			}
		}
	}
	return commits, nil
}

// fetchFracs is fetchCounts for float64 leak fractions.
func (p *Pool) fetchFracs(ctx context.Context, w *Worker, path string, body []byte, dst []float64) (func(), error) {
	buf, wire, err := p.postShard(ctx, w, path, body)
	if err != nil {
		return nil, err
	}
	if wire {
		w.wireOK.Store(true)
		frame := buf.Bytes()
		if err := CheckFracs(frame, len(dst)); err != nil {
			putBody(buf)
			return nil, err
		}
		return func() {
			_ = DecodeFracsInto(dst, frame)
			p.wireShards.Add(1)
			p.wireBytes.Add(int64(len(frame)))
			p.wireSaved.Add(int64(jsonFracsLen(dst) - len(frame)))
			putBody(buf)
		}, nil
	}
	var resp LeakResponse
	err = json.Unmarshal(buf.Bytes(), &resp)
	putBody(buf)
	if err != nil {
		return nil, err
	}
	if len(resp.Fracs) != len(dst) {
		return nil, fmt.Errorf("cluster: worker returned %d fracs, want %d", len(resp.Fracs), len(dst))
	}
	return func() {
		copy(dst, resp.Fracs)
		p.jsonShards.Add(1)
	}, nil
}

// WorkerStats is one worker's row in Stats.
type WorkerStats struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Slots    int    `json:"slots"`
	Inflight int64  `json:"inflight"`
	Shards   int64  `json:"shards"`
	Fails    int64  `json:"fails"`
}

// Stats is a snapshot of the pool's counters, exposed through /v1/stats.
type Stats struct {
	World        string        `json:"world"`
	Queries      int64         `json:"queries_inflight"`
	Shed         int64         `json:"shed"`
	Retries      int64         `json:"retries"`
	Hedges       int64         `json:"hedges"`
	RemoteShards int64         `json:"remote_shards"`
	LocalShards  int64         `json:"local_shards"`
	WireShards   int64         `json:"wire_shards"`
	JSONShards   int64         `json:"json_shards"`
	WireBytes    int64         `json:"wire_bytes"`
	WireSaved    int64         `json:"wire_saved_bytes"`
	MultiBatches int64         `json:"wire_multi_batches"`
	Workers      []WorkerStats `json:"workers"`
}

// StatsSnapshot returns the pool's counters, workers sorted by address.
func (p *Pool) StatsSnapshot() Stats {
	p.mu.Lock()
	world := p.cfg.World
	ws := make([]*Worker, 0, len(p.workers))
	for _, w := range p.workers {
		ws = append(ws, w)
	}
	p.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].Addr < ws[j].Addr })
	st := Stats{
		World:        world,
		Queries:      p.queries.Load(),
		Shed:         p.shed.Load(),
		Retries:      p.retries.Load(),
		Hedges:       p.hedges.Load(),
		RemoteShards: p.remote.Load(),
		LocalShards:  p.local.Load(),
		WireShards:   p.wireShards.Load(),
		JSONShards:   p.jsonShards.Load(),
		WireBytes:    p.wireBytes.Load(),
		WireSaved:    p.wireSaved.Load(),
		MultiBatches: p.multi.Load(),
		Workers:      make([]WorkerStats, len(ws)),
	}
	for i, w := range ws {
		st.Workers[i] = WorkerStats{
			Addr:     w.Addr,
			Healthy:  w.healthy.Load(),
			Slots:    w.slots,
			Inflight: w.inflight.Load(),
			Shards:   w.shards.Load(),
			Fails:    w.fails.Load(),
		}
	}
	return st
}

// latencyWindow keeps the most recent successful shard latencies for the
// adaptive hedge point.
type latencyWindow struct {
	mu   sync.Mutex
	ring [128]time.Duration
	n    int // total recorded
}

func (l *latencyWindow) record(d time.Duration) {
	l.mu.Lock()
	l.ring[l.n%len(l.ring)] = d
	l.n++
	l.mu.Unlock()
}

// percentile returns the q-th percentile of the recorded window, or 0
// when fewer than 16 samples exist (too early to hedge).
func (l *latencyWindow) percentile(q int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > len(l.ring) {
		n = len(l.ring)
	}
	if n < 16 {
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, l.ring[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (q*n)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// hedgeDelay resolves the current hedge point: the fixed configured delay,
// or the adaptive latency percentile floored at HedgeMin. Zero disables
// hedging (not enough signal yet).
func (p *Pool) hedgeDelay() time.Duration {
	if p.cfg.HedgeDelay > 0 {
		return p.cfg.HedgeDelay
	}
	d := p.lat.percentile(p.cfg.HedgePercentile)
	if d == 0 {
		return 0
	}
	if d < p.cfg.HedgeMin {
		d = p.cfg.HedgeMin
	}
	return d
}
