// Package cluster turns flatnetd into a horizontally scalable service: a
// coordinator partitions all-AS sweeps, wide batch requests, and leak-trial
// batches into 64-origin-aligned shards, fans them out over registered
// workers, and merges the partials. Workers sync state by content address —
// the snapshot codec produces byte-identical worlds (PR 5), so a worker
// proves it serves the same world by hash instead of re-generating it, and
// fetches the v2 snapshot over HTTP when it has none.
//
// The package is deliberately independent of the serving layer: it speaks
// a small HTTP protocol — JSON request envelopes (this file) with bulk
// responses negotiated up to a compact binary framing (wirecodec.go) and
// JSON as the compatibility fallback — and takes the coordinator's local
// compute as plain closures, so internal/serve can mount the worker
// endpoints while the Pool stays testable against fake workers. Shard
// results are deterministic and per-origin independent, which is what makes
// the whole design safe: any partition of the work, executed anywhere,
// merges back to exactly the single-process answer.
package cluster

// Worker-side endpoint paths, mounted by internal/serve on every daemon
// (any flatnetd can serve shards; a coordinator is just the one fanning
// them out).
const (
	// PathInfo describes the served world: content address, snapshot
	// availability, preset year.
	PathInfo = "/v1/cluster/info"
	// PathSnapshot streams the coordinator's v2 snapshot bytes.
	PathSnapshot = "/v1/cluster/snapshot"
	// PathJoin registers a worker with the coordinator.
	PathJoin = "/v1/cluster/join"
	// PathSweep computes reachability counts for a shard: either a dense
	// index range or an explicit origin list.
	PathSweep = "/v1/cluster/sweep"
	// PathLeak replays a sub-range of a leak-trial batch.
	PathLeak = "/v1/cluster/leak"
)

// laneWidth is the bit-parallel engine's origin word width
// (bgpsim.BatchLanes). Shard boundaries are multiples of it so every
// propagation word stays full.
const laneWidth = 64

// Info describes a node's served world (GET PathInfo).
type Info struct {
	// World is the content address of the served dataset: a sha256 over
	// the frozen topology arrays and tier sets (DatasetHash). Workers must
	// match it exactly to join — it is what guarantees dense graph indexes
	// mean the same AS on every node.
	World string `json:"world"`
	// SnapshotSHA is the sha256 of the snapshot file the node can serve
	// over PathSnapshot, or "" when it has none (e.g. a -topo world).
	SnapshotSHA string `json:"snapshot_sha256,omitempty"`
	// SnapshotSize is the snapshot's byte length (0 when none).
	SnapshotSize int64 `json:"snapshot_size,omitempty"`
	// Year is the preset year the node serves (which internet section a
	// fetched snapshot should be opened at).
	Year int `json:"year"`
	// ASes and Links describe the topology, for operator sanity checks.
	ASes  int `json:"ases"`
	Links int `json:"links"`
}

// JoinRequest registers a worker (POST PathJoin).
type JoinRequest struct {
	// Addr is the worker's externally reachable base URL.
	Addr string `json:"addr"`
	// World must equal the coordinator's world content address.
	World string `json:"world"`
	// Slots is how many shards the worker computes concurrently (its
	// serving concurrency limit).
	Slots int `json:"slots"`
}

// JoinResponse acknowledges a join.
type JoinResponse struct {
	// Workers is the pool size after the join.
	Workers int `json:"workers"`
}

// SweepRequest asks a worker for reachability counts (POST PathSweep).
// Exactly one of the three forms is used: a dense index range [Lo, Hi) for
// all-AS sweeps, an explicit Origins list (ASNs) for batch queries, or —
// with Classes set — an equivalence-class id range [Lo, Hi) whose
// representatives are swept, one count per class. Class ids are derived
// deterministically from the frozen world (bgpsim.ClassIndex assigns them
// in dense-index order), so matching world hashes guarantee matching class
// ids on every node, the same argument that makes dense index ranges safe.
type SweepRequest struct {
	Kind    string   `json:"kind"`
	Lo      int      `json:"lo"`
	Hi      int      `json:"hi"`
	Origins []uint32 `json:"origins,omitempty"`
	Classes bool     `json:"classes,omitempty"`
	// Ranges coalesces several shards into one request: dense index
	// ranges, or — with Classes — class-id ranges. The response is the
	// wire-only multi form: one length-prefixed binary counts frame per
	// range, in request order (see NextFrame). A coordinator sends this
	// form only to workers that have already answered it a binary wire
	// frame: a pre-wire worker would drop the unknown field and misread
	// the request as the empty range [0, 0), so capability is proven
	// before coalescing, never assumed.
	Ranges []Range `json:"ranges,omitempty"`
}

// Range is one [Lo, Hi) member of a coalesced multi-range sweep request.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// SweepResponse carries one count per requested origin, in request order.
type SweepResponse struct {
	Counts []int `json:"counts"`
}

// LeakQuery identifies one leak-trial batch. Leakers are sampled
// deterministically from (Origin, Trials, Seed) on every node, so a
// sub-range [lo, hi) of the sample means the same leakers everywhere.
type LeakQuery struct {
	Origin   uint32 `json:"origin"`
	Scenario string `json:"scenario"`
	Hijack   bool   `json:"hijack"`
	Trials   int    `json:"trials"`
	Seed     int64  `json:"seed"`
}

// LeakRequest asks a worker to replay leakers [Lo, Hi) of the query's
// deterministic sample (POST PathLeak).
type LeakRequest struct {
	LeakQuery
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// LeakResponse carries one detoured fraction per replayed leaker, in
// sample order.
type LeakResponse struct {
	Fracs []float64 `json:"fracs"`
}
