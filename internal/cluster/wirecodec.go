package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Binary wire frames for the cluster's bulk payloads. A full-scale sweep
// moves 69,488 counts per query; as JSON that is ~8 bytes of decimal text
// per count plus a reflection-driven decode allocating an []int per shard.
// The frame below carries the same vector in one to two bytes per count
// (zig-zag varint deltas: sweep counts are large but near each other, so
// deltas are small) and decodes by appending nothing — the coordinator
// streams values straight into its preallocated merge slice.
//
// Frame layout (all fixed-width fields little-endian, matching
// internal/snapshot):
//
//	magic   [8]byte  "FLATWIRE"
//	version uint32   (1)
//	kind    uint8    (1 = counts, 2 = fracs)
//	n       uint32   element count
//	payload counts: n zig-zag varints, value[0] then successive deltas
//	        fracs:  n × 8 bytes, raw IEEE-754 float64 bits
//	crc32   uint32   IEEE, over every byte before it
//
// The decoder is fail-closed like the snapshot codec: bad magic, unknown
// version, wrong kind, a count that disagrees with the caller's expected
// shard width, a CRC mismatch, a truncated payload, or trailing bytes all
// return an error and never panic — frames arrive over the network from
// peers the coordinator does not control.
//
// Negotiation is plain HTTP content negotiation so mixed-version clusters
// keep working: the coordinator sends "Accept: application/x-flatnet-wire,
// application/json" and decodes whatever Content-Type comes back. A
// pre-wire worker ignores the Accept header and answers JSON; a pre-wire
// coordinator never asks for the wire type, so a new worker answers it
// JSON too.

// WireContentType is the media type of the binary frame; JSON remains the
// negotiation fallback.
const WireContentType = "application/x-flatnet-wire"

// wireAccept is what the coordinator sends: binary preferred, JSON accepted.
const wireAccept = WireContentType + ", application/json"

const (
	wireVersion    = 1
	wireKindCounts = 1
	wireKindFracs  = 2

	wireHeaderLen  = 8 + 4 + 1 + 4 // magic + version + kind + n
	wireTrailerLen = 4             // crc32
)

var wireMagic = [8]byte{'F', 'L', 'A', 'T', 'W', 'I', 'R', 'E'}

// WireAccepted reports whether the request asked for binary frames. Exact
// media-type containment, not wildcard matching: only peers that know the
// frame format name it, and everyone else gets JSON.
func WireAccepted(h http.Header) bool {
	return strings.Contains(h.Get("Accept"), WireContentType)
}

// isWireResponse reports whether a response body is a binary frame.
func isWireResponse(h http.Header) bool {
	return strings.HasPrefix(h.Get("Content-Type"), WireContentType)
}

// wireHeader appends the fixed frame header.
func wireHeader(dst []byte, kind uint8, n int) []byte {
	dst = append(dst, wireMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, wireVersion)
	dst = append(dst, kind)
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

// AppendCounts appends a counts frame to dst and returns the extended
// slice. Counts are zig-zag varint encoded as first-value-then-deltas; the
// encoder needs no scratch beyond dst itself, so callers reusing a pooled
// buffer encode allocation-free once the buffer reaches its high-water
// size.
func AppendCounts(dst []byte, counts []int) []byte {
	if need := wireHeaderLen + len(counts)*binary.MaxVarintLen64 + wireTrailerLen; cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = wireHeader(dst, wireKindCounts, len(counts))
	prev := int64(0)
	for _, c := range counts {
		d := int64(c) - prev
		dst = binary.AppendUvarint(dst, uint64(d<<1)^uint64(d>>63))
		prev = int64(c)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// AppendFracs appends a fracs frame to dst: raw little-endian float64 bits,
// so the decoded values are bit-for-bit the floats the worker computed —
// the property that keeps cluster leak aggregates byte-identical to the
// single-process answer.
func AppendFracs(dst []byte, fracs []float64) []byte {
	if need := wireHeaderLen + len(fracs)*8 + wireTrailerLen; cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	dst = wireHeader(dst, wireKindFracs, len(fracs))
	for _, f := range fracs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// checkWireHeader validates everything kind-independent — length, magic,
// version, kind, element count, CRC — and returns the payload bytes.
func checkWireHeader(frame []byte, kind uint8, n int) ([]byte, error) {
	if len(frame) < wireHeaderLen+wireTrailerLen {
		return nil, fmt.Errorf("cluster: wire: frame of %d bytes is shorter than the %d-byte envelope", len(frame), wireHeaderLen+wireTrailerLen)
	}
	if [8]byte(frame[:8]) != wireMagic {
		return nil, fmt.Errorf("cluster: wire: bad magic %q", frame[:8])
	}
	if v := binary.LittleEndian.Uint32(frame[8:12]); v != wireVersion {
		return nil, fmt.Errorf("cluster: wire: unsupported version %d (this build speaks %d)", v, wireVersion)
	}
	if k := frame[12]; k != kind {
		return nil, fmt.Errorf("cluster: wire: payload kind %d, want %d", k, kind)
	}
	if c := binary.LittleEndian.Uint32(frame[13:17]); int64(c) != int64(n) {
		return nil, fmt.Errorf("cluster: wire: frame carries %d elements, shard expects %d", c, n)
	}
	body := frame[:len(frame)-wireTrailerLen]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(frame[len(frame)-wireTrailerLen:]); got != want {
		return nil, fmt.Errorf("cluster: wire: CRC mismatch (frame %08x, computed %08x)", want, got)
	}
	return body[wireHeaderLen:], nil
}

// CheckCounts validates a counts frame of exactly n elements — envelope,
// CRC, and varint payload shape — without writing anywhere. A frame that
// passes cannot fail DecodeCountsInto, which is what lets the coordinator
// validate a response before the merge CAS and decode straight into the
// shared output slice after winning it.
func CheckCounts(frame []byte, n int) error {
	payload, err := checkWireHeader(frame, wireKindCounts, n)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		_, w := binary.Uvarint(payload)
		if w <= 0 {
			return fmt.Errorf("cluster: wire: truncated varint payload at element %d of %d", i, n)
		}
		payload = payload[w:]
	}
	if len(payload) != 0 {
		return fmt.Errorf("cluster: wire: %d trailing payload bytes after %d elements", len(payload), n)
	}
	return nil
}

// DecodeCountsInto decodes a counts frame into dst, which must have
// exactly the frame's element count — the caller's preallocated merge
// slice, no intermediate vector. Fail-closed: any malformed input returns
// an error with dst contents unspecified.
func DecodeCountsInto(dst []int, frame []byte) error {
	payload, err := checkWireHeader(frame, wireKindCounts, len(dst))
	if err != nil {
		return err
	}
	prev := int64(0)
	for i := range dst {
		zz, w := binary.Uvarint(payload)
		if w <= 0 {
			return fmt.Errorf("cluster: wire: truncated varint payload at element %d of %d", i, len(dst))
		}
		payload = payload[w:]
		prev += int64(zz>>1) ^ -int64(zz&1)
		dst[i] = int(prev)
	}
	if len(payload) != 0 {
		return fmt.Errorf("cluster: wire: %d trailing payload bytes after %d elements", len(payload), len(dst))
	}
	return nil
}

// CheckFracs validates a fracs frame of exactly n elements without
// writing anywhere; see CheckCounts for the contract.
func CheckFracs(frame []byte, n int) error {
	payload, err := checkWireHeader(frame, wireKindFracs, n)
	if err != nil {
		return err
	}
	if len(payload) != n*8 {
		return fmt.Errorf("cluster: wire: fracs payload of %d bytes, want %d", len(payload), n*8)
	}
	return nil
}

// DecodeFracsInto decodes a fracs frame into dst, which must have exactly
// the frame's element count.
func DecodeFracsInto(dst []float64, frame []byte) error {
	payload, err := checkWireHeader(frame, wireKindFracs, len(dst))
	if err != nil {
		return err
	}
	if len(payload) != len(dst)*8 {
		return fmt.Errorf("cluster: wire: fracs payload of %d bytes, want %d", len(payload), len(dst)*8)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return nil
}

// AppendFramePrefix appends the 4-byte little-endian length prefix that
// separates frames in a multi-range response body. The multi form is a
// plain concatenation of prefixed frames — no outer magic or checksum,
// because every member frame carries its own envelope and CRC.
func AppendFramePrefix(dst []byte, frameLen int) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(frameLen))
}

// NextFrame splits the first length-prefixed frame off a multi-range
// response body, returning the frame and the remaining bytes. Fail-closed
// like the frame decoders: a truncated prefix or a length that overruns
// the buffer is an error, never a panic. The frame's own contents are
// validated separately (CheckCounts); this walks only the envelope.
func NextFrame(b []byte) (frame, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("cluster: wire: multi-frame prefix of %d bytes, want 4", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) > uint64(len(b)-4) {
		return nil, nil, fmt.Errorf("cluster: wire: multi-frame length %d overruns the %d remaining bytes", n, len(b)-4)
	}
	return b[4 : 4+n], b[4+n:], nil
}

// jsonCountsLen is the exact byte length of the JSON fallback body for a
// counts shard ({"counts":[...]}\n) — what the coordinator would have
// received without the wire frame. It feeds the wire_saved_bytes gauge.
func jsonCountsLen(counts []int) int {
	n := len(`{"counts":[]}`) + 1 // +1: the serving layer's trailing newline
	for i, c := range counts {
		if i > 0 {
			n++ // comma
		}
		n += decimalLen(c)
	}
	return n
}

// jsonFracsLen estimates the JSON fallback body length for a fracs shard
// by formatting each float the way encoding/json shortest-form output
// does. An estimate feeding a gauge, not a protocol quantity.
func jsonFracsLen(fracs []float64) int {
	n := len(`{"fracs":[]}`) + 1
	var scratch [32]byte
	for i, f := range fracs {
		if i > 0 {
			n++
		}
		n += len(strconv.AppendFloat(scratch[:0], f, 'g', -1, 64))
	}
	return n
}

func decimalLen(v int) int {
	n := 1
	if v < 0 {
		n++
		v = -v
	}
	for v >= 10 {
		n++
		v /= 10
	}
	return n
}
