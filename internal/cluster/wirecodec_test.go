package cluster

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"net/http"
	"testing"
)

func TestWireCountsRoundTrip(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{42},
		{-7, 0, 7},
		{1 << 40, -(1 << 40), 0, math.MaxInt32, math.MinInt32},
	}
	rng := rand.New(rand.NewSource(1))
	big := make([]int, 4096)
	for i := range big {
		// Shaped like real sweep counts: large values, small deltas.
		big[i] = 40000 + rng.Intn(30000)
	}
	cases = append(cases, big)

	for _, counts := range cases {
		frame := AppendCounts(nil, counts)
		if err := CheckCounts(frame, len(counts)); err != nil {
			t.Fatalf("CheckCounts(%d elems): %v", len(counts), err)
		}
		got := make([]int, len(counts))
		if err := DecodeCountsInto(got, frame); err != nil {
			t.Fatalf("DecodeCountsInto(%d elems): %v", len(counts), err)
		}
		for i := range counts {
			if got[i] != counts[i] {
				t.Fatalf("counts[%d] = %d, want %d", i, got[i], counts[i])
			}
		}
	}
}

func TestWireFracsRoundTrip(t *testing.T) {
	fracs := []float64{0, 1, 0.25, math.Pi, math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, -0.0}
	frame := AppendFracs(nil, fracs)
	if err := CheckFracs(frame, len(fracs)); err != nil {
		t.Fatalf("CheckFracs: %v", err)
	}
	got := make([]float64, len(fracs))
	if err := DecodeFracsInto(got, frame); err != nil {
		t.Fatalf("DecodeFracsInto: %v", err)
	}
	for i := range fracs {
		if math.Float64bits(got[i]) != math.Float64bits(fracs[i]) {
			t.Fatalf("fracs[%d] = %x, want %x (bits must round-trip exactly)", i, got[i], fracs[i])
		}
	}
	// NaN payload bits must survive too: aggregation downstream compares
	// byte-identity with the single-process answer.
	nan := []float64{math.Float64frombits(0x7ff8000000000001)}
	got1 := make([]float64, 1)
	if err := DecodeFracsInto(got1, AppendFracs(nil, nan)); err != nil {
		t.Fatalf("NaN round trip: %v", err)
	}
	if math.Float64bits(got1[0]) != 0x7ff8000000000001 {
		t.Fatalf("NaN bits = %x, want 7ff8000000000001", math.Float64bits(got1[0]))
	}
}

func TestWireAppendReusesBuffer(t *testing.T) {
	counts := []int{1, 2, 3, 500000, 499999}
	buf := AppendCounts(nil, counts)
	grown := cap(buf)
	buf2 := AppendCounts(buf[:0], counts)
	if &buf2[0] != &buf[:1][0] || cap(buf2) != grown {
		t.Fatalf("re-encode into a sized buffer reallocated (cap %d -> %d)", grown, cap(buf2))
	}
}

func TestWireDecodeRejectsMalformed(t *testing.T) {
	counts := []int{10, 20, 30}
	frame := AppendCounts(nil, counts)
	dst := make([]int, len(counts))

	corrupt := func(mutate func(f []byte) []byte) error {
		f := append([]byte(nil), frame...)
		return DecodeCountsInto(dst, mutate(f))
	}

	if err := corrupt(func(f []byte) []byte { return f[:wireHeaderLen] }); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if err := corrupt(func(f []byte) []byte { f[0] = 'X'; return f }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := corrupt(func(f []byte) []byte { binary.LittleEndian.PutUint32(f[8:], 99); return f }); err == nil {
		t.Fatal("unknown version accepted")
	}
	if err := corrupt(func(f []byte) []byte { f[12] = wireKindFracs; reseal(f); return f }); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if err := corrupt(func(f []byte) []byte { binary.LittleEndian.PutUint32(f[13:], 7); reseal(f); return f }); err == nil {
		t.Fatal("element-count mismatch accepted")
	}
	if err := corrupt(func(f []byte) []byte { f[wireHeaderLen] ^= 0x40; return f }); err == nil {
		t.Fatal("payload corruption accepted (CRC should catch it)")
	}
	if err := corrupt(func(f []byte) []byte { f[len(f)-1] ^= 0x01; return f }); err == nil {
		t.Fatal("CRC corruption accepted")
	}
	if err := corrupt(func(f []byte) []byte { f = append(f[:len(f)-wireTrailerLen], 0x00); reseal2(f); return f }); err == nil {
		t.Fatal("trailing payload bytes accepted")
	}
	// Short dst: frame says 3 elements, caller expects 2.
	if err := DecodeCountsInto(make([]int, 2), frame); err == nil {
		t.Fatal("dst length mismatch accepted")
	}
	if err := DecodeFracsInto(make([]float64, 3), frame); err == nil {
		t.Fatal("fracs decoder accepted a counts frame")
	}
}

// reseal recomputes the trailing CRC after a header mutation so the test
// reaches the check it targets instead of tripping on the checksum.
func reseal(f []byte) {
	binary.LittleEndian.PutUint32(f[len(f)-wireTrailerLen:], crc32.ChecksumIEEE(f[:len(f)-wireTrailerLen]))
}

// reseal2 appends a fresh CRC to a frame whose old trailer was repurposed
// as payload.
func reseal2(f []byte) {
	reseal(append(f, 0, 0, 0, 0))
}

func TestWireNegotiationHelpers(t *testing.T) {
	h := http.Header{}
	if WireAccepted(h) {
		t.Fatal("empty Accept must mean JSON")
	}
	h.Set("Accept", "application/json")
	if WireAccepted(h) {
		t.Fatal("JSON-only Accept must mean JSON")
	}
	h.Set("Accept", wireAccept)
	if !WireAccepted(h) {
		t.Fatal("coordinator Accept header not recognised")
	}
	h = http.Header{}
	h.Set("Content-Type", "application/json")
	if isWireResponse(h) {
		t.Fatal("JSON response mistaken for wire")
	}
	h.Set("Content-Type", WireContentType)
	if !isWireResponse(h) {
		t.Fatal("wire response not recognised")
	}
}

func TestWireJSONLenHelpers(t *testing.T) {
	if got, want := jsonCountsLen([]int{0, -12, 34567}), len(`{"counts":[0,-12,34567]}`)+1; got != want {
		t.Fatalf("jsonCountsLen = %d, want %d", got, want)
	}
	if got, want := jsonFracsLen([]float64{0.5}), len(`{"fracs":[0.5]}`)+1; got != want {
		t.Fatalf("jsonFracsLen = %d, want %d", got, want)
	}
}

func TestWireNextFrame(t *testing.T) {
	f1 := AppendCounts(nil, []int{1, 2, 3})
	f2 := AppendCounts(nil, []int{9})
	body := AppendFramePrefix(nil, len(f1))
	body = append(body, f1...)
	body = AppendFramePrefix(body, len(f2))
	body = append(body, f2...)
	got1, rest, err := NextFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, f1) {
		t.Fatal("first frame does not round-trip")
	}
	got2, rest, err := NextFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, f2) || len(rest) != 0 {
		t.Fatalf("second frame wrong or %d trailing bytes", len(rest))
	}
	if _, _, err := NextFrame([]byte{1, 2}); err == nil {
		t.Fatal("truncated prefix accepted")
	}
	if _, _, err := NextFrame(AppendFramePrefix(nil, 5)); err == nil {
		t.Fatal("overrunning frame length accepted")
	}
}

// FuzzWireDecode feeds arbitrary bytes to every decoder entry point. The
// wire is fail-closed: malformed input must error, never panic, and a
// frame that passes Check must then Decode without error.
func FuzzWireDecode(f *testing.F) {
	valid := AppendCounts(nil, []int{100, 105, 95, -3})
	f.Add(valid, 4)
	multi := AppendFramePrefix(nil, len(valid))
	multi = append(multi, valid...)
	f.Add(append(multi, multi...), 4) // two-frame multi-range body
	f.Add(AppendFracs(nil, []float64{0.5, 0.25}), 2)
	f.Add(valid[:len(valid)-3], 4)                     // truncated trailer
	f.Add(valid[:wireHeaderLen], 4)                    // header only
	f.Add([]byte("FLATWIREjunkjunkjunk"), 1)           // header-shaped garbage
	f.Add(append(append([]byte(nil), valid...), 1), 4) // trailing byte
	flipped := append([]byte(nil), valid...)
	flipped[wireHeaderLen] ^= 0xff
	f.Add(flipped, 4) // payload corruption
	f.Add([]byte{}, 0)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		n = int(uint(n) % (1 << 14))
		counts := make([]int, n)
		if CheckCounts(data, n) == nil {
			if err := DecodeCountsInto(counts, data); err != nil {
				t.Fatalf("CheckCounts passed but DecodeCountsInto failed: %v", err)
			}
			// A decoded frame must re-encode to something that decodes to
			// the same values (encoding is canonical; the input frame may
			// not be, e.g. non-minimal varints).
			again := make([]int, n)
			if err := DecodeCountsInto(again, AppendCounts(nil, counts)); err != nil {
				t.Fatalf("re-encode of decoded counts failed: %v", err)
			}
			for i := range counts {
				if again[i] != counts[i] {
					t.Fatalf("re-encode changed counts[%d]: %d -> %d", i, counts[i], again[i])
				}
			}
		} else {
			_ = DecodeCountsInto(counts, data) // must not panic
		}
		fracs := make([]float64, n)
		if CheckFracs(data, n) == nil {
			if err := DecodeFracsInto(fracs, data); err != nil {
				t.Fatalf("CheckFracs passed but DecodeFracsInto failed: %v", err)
			}
		} else {
			_ = DecodeFracsInto(fracs, data)
		}
		// The multi-range envelope walker is fail-closed too: it must
		// stop at the first bad prefix and never panic or loop.
		rest := data
		for len(rest) > 0 {
			frame, next, err := NextFrame(rest)
			if err != nil {
				break
			}
			_ = CheckCounts(frame, n)
			rest = next
		}
	})
}
