package core

import (
	"context"
	"math/rand"
	"testing"

	"flatnet/internal/astopo"
)

// randomTieredDataset builds a random valley-structured topology with
// nonempty Tier-1/Tier-2 sets: a provider-free peer mesh on top (the
// Tier-1s — origins with zero providers), a mid tier partly tagged Tier-2,
// and the rest attaching below with random extra peering. This gives the
// equivalence suite origins of every shape the sweeps see, including
// origins inside the base exclusion sets (the un-mask-origin edge case).
func randomTieredDataset(rng *rand.Rand, n int) Dataset {
	g := astopo.NewGraph(n, n*3)
	asn := func(i int) astopo.ASN { return astopo.ASN(i + 1) }
	top := 2 + rng.Intn(3)
	if top > n {
		top = n
	}
	for i := 0; i < top; i++ {
		for j := i + 1; j < top; j++ {
			g.MustAddLink(asn(i), asn(j), astopo.P2P)
		}
	}
	for i := top; i < n; i++ {
		nprov := 1 + rng.Intn(2)
		for k := 0; k < nprov; k++ {
			p := rng.Intn(i)
			if _, ok := g.HasLink(asn(p), asn(i)); !ok {
				g.MustAddLink(asn(p), asn(i), astopo.P2C)
			}
		}
	}
	for k := 0; k < n; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddPeerIfAbsent(asn(a), asn(b))
		}
	}
	tier1 := make(astopo.ASSet)
	for i := 0; i < top; i++ {
		tier1[asn(i)] = struct{}{}
	}
	tier2 := make(astopo.ASSet)
	for i := top; i < n && i < top+4; i++ {
		if rng.Intn(2) == 0 {
			tier2[asn(i)] = struct{}{}
		}
	}
	return Dataset{Graph: g, Tier1: tier1, Tier2: tier2}
}

var allKinds = []Kind{Full, ProviderFree, Tier1Free, HierarchyFree}

// TestBatchMatchesScalarReachability is the golden equivalence suite for
// the bit-parallel sweep: on randomized tiered topologies, the batch
// ReachabilityAll must match the scalar per-origin sweep bit-for-bit for
// every origin and every Kind. The topologies include Tier-1 origins
// (zero providers, inside the Tier1Free base mask), Tier-2 origins, and —
// every tenth seed — graphs larger than one 64-lane block.
func TestBatchMatchesScalarReachability(t *testing.T) {
	for seed := int64(0); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		if seed%10 == 0 {
			n = 140 + rng.Intn(80) // multi-block sweep
		}
		ds := randomTieredDataset(rng, n)
		m := New(ds)
		for _, kind := range allKinds {
			batch, err := m.ReachabilityAll(kind)
			if err != nil {
				t.Fatalf("seed %d %v: batch: %v", seed, kind, err)
			}
			scalar, err := m.reachabilityRangeScalar(context.Background(), kind, 0, ds.Graph.NumASes(), 0)
			if err != nil {
				t.Fatalf("seed %d %v: scalar: %v", seed, kind, err)
			}
			for i := range scalar {
				if batch[i] != scalar[i] {
					a := ds.Graph.ASNAt(i)
					_, t1 := ds.Tier1[a]
					_, t2 := ds.Tier2[a]
					t.Fatalf("seed %d %v origin AS%d (tier1=%v tier2=%v, %d providers): batch=%d scalar=%d",
						seed, kind, a, t1, t2, len(ds.Graph.ProvidersOf(i)), batch[i], scalar[i])
				}
			}
		}
	}
}

// The kinds' exclusion masks nest (Full ⊆ ProviderFree ⊆ Tier1Free ⊆
// HierarchyFree), so per-origin reachability through the batch path must
// be monotone non-increasing across them.
func TestBatchReachMonotoneAcrossKinds(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := randomTieredDataset(rng, 15+rng.Intn(60))
		m := New(ds)
		prev, err := m.ReachabilityAll(Full)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range allKinds[1:] {
			cur, err := m.ReachabilityAll(kind)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cur {
				if cur[i] > prev[i] {
					t.Fatalf("seed %d AS%d: reach grew %d -> %d from kind %v",
						seed, ds.Graph.ASNAt(i), prev[i], cur[i], kind)
				}
			}
			prev = cur
		}
	}
}

// Customer cone ⊆ provider-free reachability: everything in an AS's cone
// is reachable over provider→customer edges alone, which the provider-free
// subgraph never cuts. Run through the batch path.
func TestBatchConeWithinProviderFreeReach(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := randomTieredDataset(rng, 15+rng.Intn(60))
		m := New(ds)
		reach, err := m.ReachabilityAll(ProviderFree)
		if err != nil {
			t.Fatal(err)
		}
		cones := ds.Graph.ConeSizes()
		for i := range reach {
			// ConeSizes includes the AS itself; reach does not.
			if cones[i]-1 > reach[i] {
				t.Fatalf("seed %d AS%d: cone %d exceeds provider-free reach %d",
					seed, ds.Graph.ASNAt(i), cones[i], reach[i])
			}
		}
	}
}
