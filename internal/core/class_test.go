package core

import (
	"context"
	"math/rand"
	"os"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/topogen"
)

// withEnv sets an env var for the duration of fn. The class-collapse and
// sweep-width knobs are read at Metrics construction, so tests flip them
// around New calls.
func withEnv(t *testing.T, key, val string, fn func()) {
	t.Helper()
	old, had := os.LookupEnv(key)
	if err := os.Setenv(key, val); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if had {
			os.Setenv(key, old)
		} else {
			os.Unsetenv(key)
		}
	}()
	fn()
}

// newClassed builds Metrics with class collapse force-enabled, so the golden
// suites keep comparing both sides even when the ambient environment sets
// FLATNET_NO_CLASS_COLLAPSE (check.sh runs the package that way too).
func newClassed(t *testing.T, ds Dataset) *Metrics {
	t.Helper()
	var m *Metrics
	withEnv(t, "FLATNET_NO_CLASS_COLLAPSE", "", func() {
		m = New(ds)
	})
	return m
}

// TestClassedSweepMatchesUncollapsed is the tentpole golden suite: the
// class-collapsed all-AS sweep must be byte-identical to the uncollapsed
// batch sweep (FLATNET_NO_CLASS_COLLAPSE) for every Kind, every origin,
// full ranges and subranges, over the random tiered corpus — and the
// collapse must actually fire on at least some of the corpus.
func TestClassedSweepMatchesUncollapsed(t *testing.T) {
	ctx := context.Background()
	collapsed := 0
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(40)
		if seed%10 == 0 {
			n = 150 + rng.Intn(50) // multi-block: spans several 64-lane words
		}
		ds := randomTieredDataset(rng, n)
		m := newClassed(t, ds)
		var mNo *Metrics
		withEnv(t, "FLATNET_NO_CLASS_COLLAPSE", "1", func() {
			mNo = New(ds)
		})
		if c, _, _ := m.ClassStats(); c > 0 && c < n {
			collapsed++
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		for _, kind := range allKinds {
			for _, r := range [][2]int{{0, n}, {lo, hi}} {
				got, err := m.ReachabilityRangeCtx(ctx, kind, r[0], r[1], 0)
				if err != nil {
					t.Fatalf("seed %d kind %v range %v: classed: %v", seed, kind, r, err)
				}
				want, err := mNo.ReachabilityRangeCtx(ctx, kind, r[0], r[1], 0)
				if err != nil {
					t.Fatalf("seed %d kind %v range %v: uncollapsed: %v", seed, kind, r, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d kind %v origin %d (AS%d): classed %d != uncollapsed %d",
							seed, kind, r[0]+i, ds.Graph.ASNAt(r[0]+i), got[i], want[i])
					}
				}
			}
		}
	}
	if collapsed == 0 {
		t.Fatal("no topology in the corpus collapsed — the suite never exercised the classed path")
	}
}

// The wide dispatch (FLATNET_SWEEP_WORDS > 1) must give the same answers
// through the full core stack, not just the raw engine.
func TestClassedSweepWideMatchesNarrow(t *testing.T) {
	ctx := context.Background()
	for _, words := range []string{"2", "4"} {
		for seed := int64(90); seed < 100; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ds := randomTieredDataset(rng, 120+rng.Intn(80))
			n := ds.Graph.NumASes()
			var mWide *Metrics
			withEnv(t, "FLATNET_NO_CLASS_COLLAPSE", "", func() {
				withEnv(t, "FLATNET_SWEEP_WORDS", words, func() {
					mWide = New(ds)
				})
			})
			m := newClassed(t, ds)
			if _, _, w := mWide.ClassStats(); w < 2 {
				t.Fatalf("FLATNET_SWEEP_WORDS=%s not picked up: words=%d", words, w)
			}
			for _, kind := range allKinds {
				got, err := mWide.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
				if err != nil {
					t.Fatalf("words=%s seed %d kind %v: %v", words, seed, kind, err)
				}
				want, err := m.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
				if err != nil {
					t.Fatalf("seed %d kind %v: %v", seed, kind, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("words=%s seed %d kind %v origin %d: wide %d != narrow %d",
							words, seed, kind, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// ClassCountsRangeCtx shards must concatenate to the per-class vector
// whose expansion is exactly the full sweep — the cluster contract.
func TestClassCountsRangeExpandsToSweep(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	ds := randomTieredDataset(rng, 160)
	n := ds.Graph.NumASes()
	m := New(ds)
	ci := m.Classes()
	nc := ci.NumClasses()
	for _, kind := range allKinds {
		// Three uneven shards, concatenated.
		cuts := []int{0, nc / 3, nc / 2, nc}
		classCounts := make([]int, 0, nc)
		for s := 0; s+1 < len(cuts); s++ {
			part, err := m.ClassCountsRangeCtx(ctx, kind, cuts[s], cuts[s+1], 0)
			if err != nil {
				t.Fatalf("kind %v shard %d: %v", kind, s, err)
			}
			classCounts = append(classCounts, part...)
		}
		expanded := make([]int, n)
		ci.Expand(classCounts, expanded)
		want, err := m.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if expanded[i] != want[i] {
				t.Fatalf("kind %v origin %d: expanded %d != sweep %d", kind, i, expanded[i], want[i])
			}
		}
	}
	if _, err := m.ClassCountsRangeCtx(ctx, Full, 0, nc+1, 0); err == nil {
		t.Error("expected error for class range past NumClasses")
	}
	if _, err := m.ClassCountsRangeCtx(ctx, Full, -1, 0, 0); err == nil {
		t.Error("expected error for negative class range")
	}
}

// The many-origin query path dedups classmates; the answers must match
// per-origin queries exactly, duplicates and all.
func TestReachabilityManyClassDedupMatches(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	ds := randomTieredDataset(rng, 140)
	m := New(ds)
	all := ds.Graph.ASes()
	origins := make([]astopo.ASN, 0, len(all)+30)
	origins = append(origins, all...)
	for k := 0; k < 30; k++ { // duplicates to force the dedup path
		origins = append(origins, all[rng.Intn(len(all))])
	}
	for _, kind := range allKinds {
		got, err := m.ReachabilityManyN(ctx, origins, kind, 0)
		if err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
		for i, o := range origins {
			want, err := m.Reachability(o, kind)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("kind %v origin AS%d: many %d != single %d", kind, o, got[i], want)
			}
		}
	}
}

// EvolveCounts must carry the class index across a delta when tier sets
// hold, and the carried index must be indistinguishable from a rebuild.
func TestEvolveCarriesClassIndex(t *testing.T) {
	ctx := context.Background()
	carried := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		prev := randomTieredDataset(rng, 40+rng.Intn(120))
		nxt, delta := mutateDataset(rng, prev, rng.Intn(3), 1+rng.Intn(3), rng.Intn(3))
		prevM, nextM := newClassed(t, prev), newClassed(t, nxt)
		n := prev.Graph.NumASes()
		prevCounts, err := prevM.ReachabilityRangeCtx(ctx, HierarchyFree, 0, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if prevM.classesIfBuilt() == nil {
			t.Fatalf("seed %d: classed sweep did not build the index", seed)
		}
		_, stats, err := EvolveCounts(ctx, prevM, nextM, HierarchyFree, prevCounts, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ClassesEvolved {
			t.Fatalf("seed %d: class index not carried (stats %+v)", seed, stats)
		}
		carried++
		got := nextM.classesIfBuilt()
		if got == nil {
			t.Fatalf("seed %d: next metrics has no index after carry", seed)
		}
		want := newClassed(t, nxt).Classes()
		if got.NumClasses() != want.NumClasses() {
			t.Fatalf("seed %d: evolved %d classes, rebuild %d", seed, got.NumClasses(), want.NumClasses())
		}
		for i := 0; i < nxt.Graph.NumASes(); i++ {
			if got.ClassOf(i) != want.ClassOf(i) {
				t.Fatalf("seed %d AS index %d: evolved class %d != rebuilt %d", seed, i, got.ClassOf(i), want.ClassOf(i))
			}
		}
		for c := 0; c < want.NumClasses(); c++ {
			if got.Rep(c) != want.Rep(c) || got.Size(c) != want.Size(c) {
				t.Fatalf("seed %d class %d: rep/size mismatch", seed, c)
			}
		}
	}
	if carried == 0 {
		t.Fatal("no trial carried the class index")
	}
}

// The escape hatch must actually disable collapse: SweepClasses reports
// nil, stats gauges go flat, and sweeps still answer correctly.
func TestNoClassCollapseEscapeHatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomTieredDataset(rng, 60)
	var m *Metrics
	withEnv(t, "FLATNET_NO_CLASS_COLLAPSE", "1", func() {
		m = New(ds)
	})
	if m.SweepClasses() != nil {
		t.Error("SweepClasses must be nil under FLATNET_NO_CLASS_COLLAPSE")
	}
	classes, ratio, words := m.ClassStats()
	if classes != 0 || ratio != 1 {
		t.Errorf("ClassStats under escape hatch = (%d, %v), want (0, 1)", classes, ratio)
	}
	if words < 1 {
		t.Errorf("words = %d", words)
	}
	// Classes() still builds on explicit request.
	if m.Classes() == nil || m.Classes().NumClasses() == 0 {
		t.Error("explicit Classes() must still build the index")
	}
}

// A preset world through the classed stack: the scaled-down Internet-2020
// topology must sweep identically with and without collapse, anchoring the
// corpus result on the generator the benchmarks use.
func TestClassedSweepMatchesUncollapsedPreset(t *testing.T) {
	ctx := context.Background()
	in, err := topogen.Generate(topogen.Internet2020(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ds := Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2}
	n := ds.Graph.NumASes()
	m := newClassed(t, ds)
	var mNo *Metrics
	withEnv(t, "FLATNET_NO_CLASS_COLLAPSE", "1", func() {
		mNo = New(ds)
	})
	for _, kind := range allKinds {
		got, err := m.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mNo.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kind %v origin %d (AS%d): classed %d != uncollapsed %d",
					kind, i, ds.Graph.ASNAt(i), got[i], want[i])
			}
		}
	}
	if c, ratio, _ := m.ClassStats(); c == 0 || ratio <= 1 {
		t.Errorf("preset world did not collapse: classes=%d ratio=%v", c, ratio)
	}
}
