// Package core implements the paper's primary contribution: the
// hierarchy-free reachability metric and its companions (§6–§7).
//
// For an origin AS o over an AS-level topology I, the metrics are defined
// by route propagation (package bgpsim) over subgraphs of I:
//
//	provider-free reachability   reach(o, I \ P_o)            (§6.2)
//	Tier-1-free reachability     reach(o, I \ P_o \ T1)       (§6.3)
//	hierarchy-free reachability  reach(o, I \ P_o \ T1 \ T2)  (§6.4)
//
// where P_o is the set of o's transit providers and T1/T2 are the Tier-1
// and Tier-2 ISP sets. Reliance (§7.1) measures, for each other AS a, the
// expected number of destinations whose tied-best paths toward o traverse
// a. The package works over any Dataset — synthetic topologies from
// package topogen or real CAIDA relationship files parsed by package
// astopo.
package core

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/par"
)

// Dataset is the input to the metrics: a topology plus the Tier-1 and
// Tier-2 exclusion sets (the paper takes them from ProbLink/AS-Rank; the
// synthetic generator defines them by construction).
type Dataset struct {
	Graph        *astopo.Graph
	Tier1, Tier2 astopo.ASSet
}

// Kind selects the exclusion set of a reachability computation.
type Kind int

const (
	// Full excludes nothing (baseline reachability).
	Full Kind = iota
	// ProviderFree excludes the origin's transit providers.
	ProviderFree
	// Tier1Free additionally excludes the Tier-1 clique.
	Tier1Free
	// HierarchyFree additionally excludes the Tier-2 ISPs — the paper's
	// headline metric.
	HierarchyFree
)

func (k Kind) String() string {
	switch k {
	case Full:
		return "full"
	case ProviderFree:
		return "provider-free"
	case Tier1Free:
		return "tier1-free"
	case HierarchyFree:
		return "hierarchy-free"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Metrics computes the paper's metrics over one dataset. It is safe for
// concurrent use; internal simulators are pooled per goroutine.
type Metrics struct {
	ds        Dataset
	pool      sync.Pool // *bgpsim.Simulator, one per worker
	batchPool sync.Pool // *bgpsim.BatchReach, one per sweep worker
	maskPool  sync.Pool // []bool scratch for per-call (o, kind) masks
	// baseMask holds, per kind, the origin-independent part of the
	// exclusion mask (the Tier-1/Tier-2 sets), computed once. Per-origin
	// masks overlay the origin's transit providers on a copy — or, on
	// whole-graph sweeps, on a reusable per-worker scratch that undoes
	// the overlay between origins (originScratch).
	baseMask [HierarchyFree + 1][]bool
	// scalarSweep forces ReachabilityAll onto the per-origin scalar path
	// (the batch engine's fallback). Set by the FLATNET_SCALAR_SWEEP env
	// var for debugging/perf comparison, and by the equivalence tests.
	scalarSweep bool
	// noCollapse disables the origin equivalence-class collapse on all-AS
	// sweeps and multi-origin batches, forcing every origin to propagate
	// individually. Set by the FLATNET_NO_CLASS_COLLAPSE env var as the
	// escape hatch, and by the equivalence tests.
	noCollapse bool
	// sweepWords is the multi-word block width for class-collapsed sweeps
	// (bgpsim.SweepWords): 1 uses the single-word BatchReach, >1 the
	// BatchReachWide engine with sweepWords×64 lanes per propagation.
	sweepWords int
	widePool   sync.Pool // *bgpsim.BatchReachWide for sweepWords > 1

	// classMu guards classIdx, the lazily built (or incrementally evolved,
	// see EvolveCounts) origin equivalence-class index.
	classMu  sync.Mutex
	classIdx *bgpsim.ClassIndex

	// classedPool recycles the per-call scratch of class-collapsed range
	// sweeps (slot table sized to the class count, plus rep/count lists).
	// Cluster workers run one such sweep per shard request, and without
	// pooling the slot table alone dominated the worker's steady-state
	// allocation (hundreds of KB per shard at scale 1.0).
	classedPool sync.Pool // *classedScratch
}

// classedScratch is the reusable state of one class-collapsed range sweep.
type classedScratch struct {
	slot   []int32 // class id → index into reps, -1 when absent
	reps   []int32 // representative dense index per in-range class
	counts []int   // per-representative counts
}

// New returns a Metrics over ds. The graph is frozen.
func New(ds Dataset) *Metrics {
	ds.Graph.Freeze()
	m := &Metrics{
		ds:          ds,
		scalarSweep: os.Getenv("FLATNET_SCALAR_SWEEP") != "",
		noCollapse:  os.Getenv("FLATNET_NO_CLASS_COLLAPSE") != "",
		sweepWords:  bgpsim.SweepWords(),
	}
	m.pool.New = func() any { return bgpsim.New(ds.Graph) }
	m.batchPool.New = func() any { return bgpsim.NewBatchReach(ds.Graph) }
	m.widePool.New = func() any { return bgpsim.NewBatchReachWide(ds.Graph, m.sweepWords) }
	n := ds.Graph.NumASes()
	for kind := Full; kind <= HierarchyFree; kind++ {
		mask := make([]bool, n)
		if kind >= Tier1Free {
			for a := range ds.Tier1 {
				if i, ok := ds.Graph.Index(a); ok {
					mask[i] = true
				}
			}
		}
		if kind >= HierarchyFree {
			for a := range ds.Tier2 {
				if i, ok := ds.Graph.Index(a); ok {
					mask[i] = true
				}
			}
		}
		m.baseMask[kind] = mask
	}
	return m
}

// Dataset returns the dataset the metrics operate on.
func (m *Metrics) Dataset() Dataset { return m.ds }

// Classes returns the origin equivalence-class index for the dataset,
// building it on first use. The index is always available (even under
// FLATNET_NO_CLASS_COLLAPSE — the env var only stops the sweep paths from
// consulting it) and is immutable once returned.
func (m *Metrics) Classes() *bgpsim.ClassIndex {
	m.classMu.Lock()
	defer m.classMu.Unlock()
	if m.classIdx == nil {
		m.classIdx = bgpsim.NewClassIndex(m.ds.Graph, m.ds.Tier1, m.ds.Tier2, nil)
	}
	return m.classIdx
}

// SweepClasses returns the class index when collapse is enabled, nil when
// the FLATNET_NO_CLASS_COLLAPSE escape hatch is set. Callers that want to
// dedup per-origin work (leak trial batching, the serve layer's class
// caches) key off this so the escape hatch disables every collapse site.
func (m *Metrics) SweepClasses() *bgpsim.ClassIndex {
	if m.noCollapse {
		return nil
	}
	return m.Classes()
}

// setClasses installs an externally derived class index (EvolveCounts
// carries the previous world's index across a delta instead of rebuilding).
func (m *Metrics) setClasses(ci *bgpsim.ClassIndex) {
	m.classMu.Lock()
	m.classIdx = ci
	m.classMu.Unlock()
}

// classesIfBuilt returns the index only if it has already been built —
// EvolveCounts uses this to evolve an existing index without forcing a
// build that lazy construction would otherwise defer.
func (m *Metrics) classesIfBuilt() *bgpsim.ClassIndex {
	m.classMu.Lock()
	defer m.classMu.Unlock()
	return m.classIdx
}

// ClassStats reports the class-collapse gauges: the number of equivalence
// classes, the collapse ratio (ASes per class), and the sweep block width
// in 64-lane words. Collapse disabled reports zero classes, ratio 1.
func (m *Metrics) ClassStats() (classes int, ratio float64, words int) {
	if m.noCollapse {
		return 0, 1, m.sweepWords
	}
	ci := m.Classes()
	return ci.NumClasses(), ci.CollapseRatio(), m.sweepWords
}

// Mask builds the dense exclusion mask for (o, kind): the origin itself is
// never masked even when it belongs to T1/T2 (a Tier-1 origin is not
// excluded from its own propagation).
func (m *Metrics) Mask(o astopo.ASN, kind Kind) []bool {
	mask := append([]bool(nil), m.baseMask[kind]...)
	m.overlayOrigin(mask, o, kind)
	return mask
}

// overlayOrigin turns a copy of the kind's base mask into the (o, kind)
// mask: the origin is un-masked and its transit providers are masked.
func (m *Metrics) overlayOrigin(mask []bool, o astopo.ASN, kind Kind) {
	if kind == Full {
		return
	}
	g := m.ds.Graph
	oi, ok := g.Index(o)
	if !ok {
		return
	}
	mask[oi] = false
	for _, p := range g.ProvidersOf(oi) {
		mask[p] = true
	}
}

// acquireMask returns the (o, kind) exclusion mask built on a pooled
// buffer: semantically identical to Mask but amortizing the O(V)
// allocation across calls. The mask is only valid until releaseMask;
// callers that retain the mask must use Mask instead.
func (m *Metrics) acquireMask(o astopo.ASN, kind Kind) []bool {
	n := len(m.baseMask[kind])
	buf, _ := m.maskPool.Get().([]bool)
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	mask := buf[:n]
	copy(mask, m.baseMask[kind])
	m.overlayOrigin(mask, o, kind)
	return mask
}

// releaseMask returns a mask obtained from acquireMask to the pool.
func (m *Metrics) releaseMask(mask []bool) {
	m.maskPool.Put(mask) //nolint:staticcheck // slice-header boxing is far cheaper than the O(V) copy it saves
}

// originScratch is a reusable (o, kind) exclusion mask for whole-graph
// sweeps: one base-mask copy per worker, with the per-origin overlay undone
// after each use. A sweep over V origins costs O(V + Σ providers) mask work
// instead of the O(V²) of building every mask from scratch.
type originScratch struct {
	m    *Metrics
	kind Kind
	mask []bool
	set  []int32 // provider indexes masked for the current origin
	red  int32   // origin index temporarily un-masked, or -1
}

func (m *Metrics) scratch(kind Kind) *originScratch {
	return &originScratch{
		m:    m,
		kind: kind,
		mask: append([]bool(nil), m.baseMask[kind]...),
		red:  -1,
	}
}

// acquire overlays origin oi (dense index) and returns the mask; release
// must be called before the next acquire.
func (sc *originScratch) acquire(oi int) []bool {
	if sc.kind == Full {
		return sc.mask
	}
	if sc.mask[oi] {
		sc.mask[oi] = false
		sc.red = int32(oi)
	}
	for _, p := range sc.m.ds.Graph.ProvidersOf(oi) {
		if !sc.mask[p] {
			sc.mask[p] = true
			sc.set = append(sc.set, p)
		}
	}
	return sc.mask
}

// release undoes the overlay applied by the last acquire.
func (sc *originScratch) release() {
	for _, p := range sc.set {
		sc.mask[p] = false
	}
	sc.set = sc.set[:0]
	if sc.red >= 0 {
		sc.mask[sc.red] = true
		sc.red = -1
	}
}

// Reachability returns reach(o, kind): the number of ASes receiving o's
// announcement over the subgraph.
func (m *Metrics) Reachability(o astopo.ASN, kind Kind) (int, error) {
	sim := m.pool.Get().(*bgpsim.Simulator)
	defer m.pool.Put(sim)
	mask := m.acquireMask(o, kind)
	defer m.releaseMask(mask)
	return sim.ReachabilityCount(bgpsim.Config{Origin: o, Exclude: mask})
}

// ReachabilityPct returns reachability as a fraction of all other ASes.
func (m *Metrics) ReachabilityPct(o astopo.ASN, kind Kind) (float64, error) {
	n, err := m.Reachability(o, kind)
	if err != nil {
		return 0, err
	}
	return float64(n) / float64(m.ds.Graph.NumASes()-1), nil
}

// Propagate runs a full propagation for (o, kind), exposing classes,
// lengths, and (optionally) the tied-best next-hop DAG.
func (m *Metrics) Propagate(o astopo.ASN, kind Kind, trackNextHops bool) (*bgpsim.Result, error) {
	sim := m.pool.Get().(*bgpsim.Simulator)
	defer m.pool.Put(sim)
	mask := m.acquireMask(o, kind)
	defer m.releaseMask(mask)
	return sim.Run(bgpsim.Config{Origin: o, Exclude: mask, TrackNextHops: trackNextHops})
}

// ReachabilityAll computes reach(o, kind) for every AS in the graph,
// in parallel. Results are indexed by dense graph index.
//
// The sweep runs on the bit-parallel batch engine (bgpsim.BatchReach), 64
// origins per propagation: the kind's base mask is lane-uniform and each
// origin's providers become sparse per-lane overrides, so one block costs
// about one propagation instead of 64. The per-origin scalar path remains
// as the fallback — the batch engine covers exactly the plain-reachability
// configuration this sweep needs, but policies/leaks/locking/tie-breaking
// (and debugging via FLATNET_SCALAR_SWEEP) stay on the scalar Simulator.
func (m *Metrics) ReachabilityAll(kind Kind) ([]int, error) {
	return m.ReachabilityRangeCtx(context.Background(), kind, 0, m.ds.Graph.NumASes(), 0)
}

// ReachabilityRangeCtx computes reach(o, kind) for the dense graph indexes
// [lo, hi), using at most `workers` goroutines (0 means GOMAXPROCS; 1 runs
// on the calling goroutine). It is the shard primitive behind both
// ReachabilityAll and the cluster sweep endpoints: a partition of [0, n)
// into ranges concatenates to exactly ReachabilityAll's output, regardless
// of the cut points, so a coordinator can merge worker partials without any
// reconciliation. 64-aligned cut points keep every propagation word full.
func (m *Metrics) ReachabilityRangeCtx(ctx context.Context, kind Kind, lo, hi, workers int) ([]int, error) {
	if lo < 0 || hi > m.ds.Graph.NumASes() || lo > hi {
		return nil, fmt.Errorf("core: range [%d, %d) outside the %d-AS graph", lo, hi, m.ds.Graph.NumASes())
	}
	out := make([]int, hi-lo)
	if err := m.ReachabilityRangeIntoCtx(ctx, kind, lo, hi, workers, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReachabilityRangeIntoCtx is ReachabilityRangeCtx writing into out (len
// hi-lo), for callers that recycle result buffers — cluster shard handlers
// encode the counts to the wire and discard them, so a pooled out keeps the
// whole shard round-trip allocation-free at steady state.
func (m *Metrics) ReachabilityRangeIntoCtx(ctx context.Context, kind Kind, lo, hi, workers int, out []int) error {
	n := m.ds.Graph.NumASes()
	if lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("core: range [%d, %d) outside the %d-AS graph", lo, hi, n)
	}
	if len(out) != hi-lo {
		return fmt.Errorf("core: out has %d entries for range [%d, %d)", len(out), lo, hi)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if m.scalarSweep {
		res, err := m.reachabilityRangeScalar(ctx, kind, lo, hi, workers)
		if err != nil {
			return err
		}
		copy(out, res)
		return nil
	}
	if !m.noCollapse {
		return m.reachabilityRangeClassed(ctx, kind, lo, hi, workers, out)
	}
	return m.batchCountsCtx(ctx, kind, denseRange{lo, hi}, out, workers)
}

// denseRange selects batch origins: a contiguous dense-index range when
// idx is nil, or an explicit index list otherwise.
type denseRange struct {
	lo, hi int
}

// batchCountsCtx runs the bit-parallel engines over the origins selected
// by r (contiguous) or idx (explicit list; r ignored), writing counts in
// selection order to out. Blocks ride the wide engine when the configured
// sweep width exceeds one word.
func (m *Metrics) batchCountsCtx(ctx context.Context, kind Kind, r denseRange, out []int, workers int) error {
	return m.batchCountsIdxCtx(ctx, kind, nil, r, out, workers)
}

func (m *Metrics) batchCountsIdxCtx(ctx context.Context, kind Kind, idx []int32, r denseRange, out []int, workers int) error {
	total := len(idx)
	if idx == nil {
		total = r.hi - r.lo
	}
	if total == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lanes := bgpsim.BatchLanes
	wide := m.sweepWords > 1
	if wide {
		lanes = m.sweepWords * bgpsim.BatchLanes
	}
	blocks := (total + lanes - 1) / lanes
	type countEngine interface {
		CountsCtx(ctx context.Context, origins []int32, base []bool, maskProviders bool, out []int) error
	}
	engines := make([]any, workers)
	err := par.ForCtx(ctx, workers, blocks, func(w int) func(i int) error {
		var eng countEngine
		if wide {
			bw := m.widePool.Get().(*bgpsim.BatchReachWide)
			engines[w] = bw
			eng = bw
		} else {
			br := m.batchPool.Get().(*bgpsim.BatchReach)
			engines[w] = br
			eng = br
		}
		scratch := make([]int32, lanes)
		return func(bi int) error {
			blo := bi * lanes
			bhi := blo + lanes
			if bhi > total {
				bhi = total
			}
			var block []int32
			if idx == nil {
				block = scratch[:bhi-blo]
				for i := range block {
					block[i] = int32(r.lo + blo + i)
				}
			} else {
				block = idx[blo:bhi:bhi]
			}
			return eng.CountsCtx(ctx, block, m.baseMask[kind], kind != Full, out[blo:bhi])
		}
	})
	for _, e := range engines {
		switch v := e.(type) {
		case *bgpsim.BatchReach:
			m.batchPool.Put(v)
		case *bgpsim.BatchReachWide:
			m.widePool.Put(v)
		}
	}
	return err
}

// reachabilityRangeClassed is the class-collapsed sweep over [lo, hi): the
// unique equivalence classes appearing in the range are swept once each —
// represented by their first member inside the range, so shard-local
// blocks keep their locality — and the per-class counts are scattered back
// to every member. Byte-identical to the uncollapsed sweep (golden-tested)
// because class members have exactly equal counts for every kind.
func (m *Metrics) reachabilityRangeClassed(ctx context.Context, kind Kind, lo, hi, workers int, out []int) error {
	ci := m.Classes()
	n := hi - lo
	if n == 0 {
		return nil
	}
	sc, _ := m.classedPool.Get().(*classedScratch)
	if sc == nil {
		sc = &classedScratch{}
	}
	// slot[c] = index into the unique-reps list, or -1. For a full-graph
	// sweep first-in-range membership is exactly the index's own
	// representative assignment, so classes and reps align with ci.Reps().
	if cap(sc.slot) < ci.NumClasses() {
		sc.slot = make([]int32, ci.NumClasses())
	}
	slot := sc.slot[:ci.NumClasses()]
	for i := range slot {
		slot[i] = -1
	}
	reps := sc.reps[:0]
	for i := lo; i < hi; i++ {
		c := ci.ClassOf(i)
		if slot[c] < 0 {
			slot[c] = int32(len(reps))
			reps = append(reps, int32(i))
		}
	}
	if cap(sc.counts) < len(reps) {
		sc.counts = make([]int, len(reps))
	}
	counts := sc.counts[:len(reps)]
	err := m.batchCountsIdxCtx(ctx, kind, reps, denseRange{}, counts, workers)
	if err == nil {
		for i := lo; i < hi; i++ {
			out[i-lo] = counts[slot[ci.ClassOf(i)]]
		}
	}
	sc.slot, sc.reps, sc.counts = slot, reps, counts
	m.classedPool.Put(sc)
	return err
}

// ClassCountsRangeCtx computes reach(rep(c), kind) for the equivalence
// classes [clo, chi), indexed by class id — the cluster shard primitive
// for class-collapsed sweeps: a partition of [0, NumClasses()) concatenates
// to the full per-class count vector, which ClassIndex.Expand scatters to
// per-AS counts. Unlike the sweep paths this ignores the
// FLATNET_NO_CLASS_COLLAPSE escape hatch: the request names classes
// explicitly, so the caller has already chosen collapse.
func (m *Metrics) ClassCountsRangeCtx(ctx context.Context, kind Kind, clo, chi, workers int) ([]int, error) {
	ci := m.Classes()
	if clo < 0 || chi > ci.NumClasses() || clo > chi {
		return nil, fmt.Errorf("core: class range [%d, %d) outside the %d-class index", clo, chi, ci.NumClasses())
	}
	out := make([]int, chi-clo)
	if err := m.ClassCountsRangeIntoCtx(ctx, kind, clo, chi, workers, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ClassCountsRangeIntoCtx is ClassCountsRangeCtx writing into out (len
// chi-clo) — the buffer-recycling variant cluster shard handlers use.
func (m *Metrics) ClassCountsRangeIntoCtx(ctx context.Context, kind Kind, clo, chi, workers int, out []int) error {
	ci := m.Classes()
	if clo < 0 || chi > ci.NumClasses() || clo > chi {
		return fmt.Errorf("core: class range [%d, %d) outside the %d-class index", clo, chi, ci.NumClasses())
	}
	if len(out) != chi-clo {
		return fmt.Errorf("core: out has %d entries for class range [%d, %d)", len(out), clo, chi)
	}
	reps := ci.Reps()[clo:chi]
	if m.scalarSweep {
		return m.scalarCountsIdxCtx(ctx, kind, reps, out, workers)
	}
	return m.batchCountsIdxCtx(ctx, kind, reps, denseRange{}, out, workers)
}

// scalarCountsIdxCtx is the per-origin scalar fallback over an explicit
// dense-index list, used by ClassCountsRangeCtx under FLATNET_SCALAR_SWEEP.
func (m *Metrics) scalarCountsIdxCtx(ctx context.Context, kind Kind, idx []int32, out []int, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := m.ds.Graph
	sims := make([]*bgpsim.Simulator, workers)
	err := par.ForCtx(ctx, workers, len(idx), func(w int) func(i int) error {
		sim := m.pool.Get().(*bgpsim.Simulator)
		sims[w] = sim
		sc := m.scratch(kind)
		return func(i int) error {
			oi := int(idx[i])
			mask := sc.acquire(oi)
			cnt, err := sim.ReachabilityCountCtx(ctx, bgpsim.Config{Origin: g.ASNAt(oi), Exclude: mask})
			sc.release()
			if err != nil {
				return err
			}
			out[i] = cnt
			return nil
		}
	})
	for _, sim := range sims {
		if sim != nil {
			m.pool.Put(sim)
		}
	}
	return err
}

// reachabilityRangeScalar is the per-origin sweep over [lo, hi): one scalar
// propagation per AS. Each worker keeps one pooled simulator and one
// scratch exclusion mask for the whole sweep.
func (m *Metrics) reachabilityRangeScalar(ctx context.Context, kind Kind, lo, hi, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := m.ds.Graph
	out := make([]int, hi-lo)
	sims := make([]*bgpsim.Simulator, workers)
	err := par.ForCtx(ctx, workers, hi-lo, func(w int) func(i int) error {
		sim := m.pool.Get().(*bgpsim.Simulator)
		sims[w] = sim
		sc := m.scratch(kind)
		return func(i int) error {
			mask := sc.acquire(lo + i)
			cnt, err := sim.ReachabilityCountCtx(ctx, bgpsim.Config{Origin: g.ASNAt(lo + i), Exclude: mask})
			sc.release()
			if err != nil {
				return err
			}
			out[i] = cnt
			return nil
		}
	})
	for _, sim := range sims {
		if sim != nil {
			m.pool.Put(sim)
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RelianceEntry pairs an AS with its reliance value.
type RelianceEntry struct {
	AS    astopo.ASN
	Value float64
}

// Reliance computes rely(o, a) for all a under the given kind's subgraph,
// returning entries for every AS with nonzero reliance, unsorted. The
// origin itself and per-destination self-reliance are included, matching
// §7.1's definition.
func (m *Metrics) Reliance(o astopo.ASN, kind Kind) ([]RelianceEntry, error) {
	res, err := m.Propagate(o, kind, true)
	if err != nil {
		return nil, err
	}
	vals, err := res.Reliance()
	if err != nil {
		return nil, err
	}
	g := m.ds.Graph
	out := make([]RelianceEntry, 0, len(vals)/2)
	for i, v := range vals {
		if v > 0 {
			out = append(out, RelianceEntry{AS: g.ASNAt(i), Value: v})
		}
	}
	return out, nil
}

// TopReliance returns the k ASes (excluding the origin itself) on which o
// relies most, sorted descending — Table 2's rows.
func (m *Metrics) TopReliance(o astopo.ASN, kind Kind, k int) ([]RelianceEntry, error) {
	entries, err := m.Reliance(o, kind)
	if err != nil {
		return nil, err
	}
	return topReliance(entries, o, k), nil
}

// topReliance filters the origin out of entries and returns the k largest
// by value (ties broken by ASN), reusing entries' backing array.
func topReliance(entries []RelianceEntry, o astopo.ASN, k int) []RelianceEntry {
	filtered := entries[:0]
	for _, e := range entries {
		if e.AS != o {
			filtered = append(filtered, e)
		}
	}
	sort.Slice(filtered, func(i, j int) bool {
		if filtered[i].Value != filtered[j].Value {
			return filtered[i].Value > filtered[j].Value
		}
		return filtered[i].AS < filtered[j].AS
	})
	if k > len(filtered) {
		k = len(filtered)
	}
	return filtered[:k]
}

// Unreachable returns the ASes that receive no route from o under the
// kind's subgraph, excluding o itself and the masked ASes (they are not in
// the subgraph at all) — the Fig. 4 population.
func (m *Metrics) Unreachable(o astopo.ASN, kind Kind) ([]astopo.ASN, error) {
	sim := m.pool.Get().(*bgpsim.Simulator)
	defer m.pool.Put(sim)
	// One mask serves both the propagation and the filtering below —
	// Propagate would rebuild the same (o, kind) mask internally.
	mask := m.acquireMask(o, kind)
	defer m.releaseMask(mask)
	res, err := sim.Run(bgpsim.Config{Origin: o, Exclude: mask})
	if err != nil {
		return nil, err
	}
	g := m.ds.Graph
	var out []astopo.ASN
	for i, c := range res.Class {
		if c != bgpsim.ClassNone || mask[i] {
			continue
		}
		if a := g.ASNAt(i); a != o {
			out = append(out, a)
		}
	}
	return out, nil
}

// ConeVsReach pairs each AS's customer-cone size with its hierarchy-free
// reachability (Fig. 3's two axes), indexed by dense graph index.
func (m *Metrics) ConeVsReach() (cones []int, reach []int, err error) {
	reach, err = m.ReachabilityAll(HierarchyFree)
	if err != nil {
		return nil, nil, err
	}
	return m.ds.Graph.ConeSizes(), reach, nil
}
