package core

import (
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/topogen"
)

// fixtureDataset builds the Fig.-1-style topology from the bgpsim tests:
// cloud 100 with provider 1 (a Tier-1), peerings with Tier-1 2, Tier-2 3,
// and user ISPs 4, 5; ISP 6 behind the Tier-1, ISP 7 behind the Tier-2.
func fixtureDataset(t *testing.T) Dataset {
	t.Helper()
	g := astopo.NewGraph(0, 0)
	add := func(a, b astopo.ASN, r astopo.Rel) {
		t.Helper()
		if err := g.AddLink(a, b, r); err != nil {
			t.Fatal(err)
		}
	}
	add(1, 100, astopo.P2C)
	add(100, 2, astopo.P2P)
	add(100, 3, astopo.P2P)
	add(100, 4, astopo.P2P)
	add(100, 5, astopo.P2P)
	add(2, 6, astopo.P2C)
	add(3, 7, astopo.P2C)
	add(1, 2, astopo.P2P)
	return Dataset{Graph: g, Tier1: astopo.NewASSet(1, 2), Tier2: astopo.NewASSet(3)}
}

func TestReachabilityKinds(t *testing.T) {
	m := New(fixtureDataset(t))
	cases := []struct {
		kind Kind
		want int
	}{
		{Full, 7},
		{ProviderFree, 6},  // loses Tier-1 provider 1
		{Tier1Free, 4},     // loses Tier-1 peer 2 and ISP 6
		{HierarchyFree, 2}, // loses Tier-2 3 and ISP 7; keeps user ISPs 4, 5
	}
	for _, c := range cases {
		got, err := m.Reachability(100, c.kind)
		if err != nil {
			t.Fatalf("%v: %v", c.kind, err)
		}
		if got != c.want {
			t.Errorf("Reachability(cloud, %v) = %d, want %d", c.kind, got, c.want)
		}
	}
}

func TestOriginInExclusionSetNotMasked(t *testing.T) {
	m := New(fixtureDataset(t))
	// Tier-1 AS 2's own Tier-1-free reachability must not exclude AS 2.
	got, err := m.Reachability(2, Tier1Free)
	if err != nil {
		t.Fatal(err)
	}
	// AS 2 reaches its customer 6 and... its peers 100 and 1 are its only
	// other links; 1 is a Tier-1 (masked). Via peer 100 nothing is
	// exported (peer routes don't propagate to peers). So 6 and 100.
	if got != 2 {
		t.Errorf("Reachability(AS2, Tier1Free) = %d, want 2", got)
	}
}

func TestReachabilityPctDenominator(t *testing.T) {
	m := New(fixtureDataset(t))
	pct, err := m.ReachabilityPct(100, Full)
	if err != nil {
		t.Fatal(err)
	}
	if pct != 1.0 {
		t.Errorf("full reachability pct = %v, want 1.0", pct)
	}
}

func TestUnreachable(t *testing.T) {
	m := New(fixtureDataset(t))
	un, err := m.Unreachable(100, HierarchyFree)
	if err != nil {
		t.Fatal(err)
	}
	// Subgraph removes 1, 2, 3; reachable are 4, 5; unreachable: 6, 7.
	want := map[astopo.ASN]bool{6: true, 7: true}
	if len(un) != len(want) {
		t.Fatalf("Unreachable = %v, want {6,7}", un)
	}
	for _, a := range un {
		if !want[a] {
			t.Errorf("unexpected unreachable AS%d", a)
		}
	}
}

func TestReachabilityAllMatchesSingle(t *testing.T) {
	in, err := topogen.Generate(topogen.Internet2020(0.0171))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2})
	all, err := m.ReachabilityAll(HierarchyFree)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a handful of ASes against the single-origin path.
	for _, a := range []astopo.ASN{15169, 8075, 3356, 6939} {
		i, ok := in.Graph.Index(a)
		if !ok {
			t.Fatalf("AS%d missing", a)
		}
		single, err := m.Reachability(a, HierarchyFree)
		if err != nil {
			t.Fatal(err)
		}
		if all[i] != single {
			t.Errorf("AS%d: all=%d single=%d", a, all[i], single)
		}
	}
}

func TestTopReliance(t *testing.T) {
	m := New(fixtureDataset(t))
	top, err := m.TopReliance(100, Full, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("TopReliance returned %d entries", len(top))
	}
	for _, e := range top {
		if e.AS == 100 {
			t.Error("origin included in TopReliance")
		}
	}
	for i := 1; i < len(top); i++ {
		if top[i].Value > top[i-1].Value {
			t.Error("TopReliance not sorted descending")
		}
	}
	// Tier-1 2 and Tier-2 3 carry the most destinations (6 and 7 sit
	// behind them); each should appear with reliance >= 2 (itself + its
	// customer).
	vals := map[astopo.ASN]float64{}
	for _, e := range top {
		vals[e.AS] = e.Value
	}
	if vals[2] < 2 || vals[3] < 2 {
		t.Errorf("expected AS2 and AS3 reliance >= 2: %v", vals)
	}
}

func TestRelianceIncludesOrigin(t *testing.T) {
	m := New(fixtureDataset(t))
	entries, err := m.Reliance(100, Full)
	if err != nil {
		t.Fatal(err)
	}
	var originVal float64
	for _, e := range entries {
		if e.AS == 100 {
			originVal = e.Value
		}
	}
	if originVal != 7 {
		t.Errorf("origin reliance = %v, want 7 (all destinations' paths end there)", originVal)
	}
}

func TestConeVsReach(t *testing.T) {
	ds := fixtureDataset(t)
	m := New(ds)
	cones, reach, err := m.ConeVsReach()
	if err != nil {
		t.Fatal(err)
	}
	if len(cones) != ds.Graph.NumASes() || len(reach) != ds.Graph.NumASes() {
		t.Fatal("length mismatch")
	}
	i1, _ := ds.Graph.Index(1)
	if cones[i1] != 2 { // AS1 + customer 100... plus 100's customers: none. = {1,100}
		t.Errorf("cone(AS1) = %d, want 2", cones[i1])
	}
}

func TestMaskVsBgpsimEquivalence(t *testing.T) {
	// The core Mask must agree with hand-built bgpsim masks.
	ds := fixtureDataset(t)
	m := New(ds)
	mask := m.Mask(100, HierarchyFree)
	want := bgpsim.BuildExclude(ds.Graph, astopo.NewASSet(1, 2, 3))
	for i := range mask {
		if mask[i] != want[i] {
			t.Fatalf("mask mismatch at %d", i)
		}
	}
}
