package core

import (
	"context"
	"fmt"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
)

// EvolveDelta describes the topology change between two frozen worlds:
// links that disappeared, links that appeared, and ASes that exist only in
// the new world. It is the core-level view of a timeline growth step —
// package topogen's GrowthDelta flattens to exactly this.
type EvolveDelta struct {
	AddedLinks   []astopo.Link
	RemovedLinks []astopo.Link
	NewASes      []astopo.ASN
}

// EvolveStats reports how much work EvolveCounts actually did.
type EvolveStats struct {
	// Origins is the number of origins in the new world.
	Origins int
	// Dirty is how many origins were re-propagated; Carried is how many
	// kept their previous count untouched. Dirty+Carried == Origins
	// unless FullSweep.
	Dirty   int
	Carried int
	// Scouts counts full scout propagations (one per changed transit
	// link with an unmasked provider); Cones counts the cheap customer-
	// cone walks used for peer links.
	Scouts int
	Cones  int
	// FullSweep is set when the engine fell back to the golden full
	// re-propagation path (dirty region too large, tier sets changed, or
	// the delta did not match the two graphs). The counts are exact
	// either way.
	FullSweep bool
	// Reason explains a FullSweep.
	Reason string
	// ClassesEvolved is set when the origin equivalence-class index was
	// carried across the delta incrementally (untouched ASes keep their
	// fingerprints verbatim) instead of being rebuilt from scratch by the
	// next world's first sweep.
	ClassesEvolved bool
}

// EvolveCounts computes reach(o, kind) for every AS of the next world,
// reusing prevCounts (the same metric on the previous world, as returned
// by ReachabilityAll) for every origin the delta cannot have affected.
//
// The dirty region is bounded per changed link by the shape of valley-free
// paths (up* peer? down*), evaluated under the kind's base exclusion mask
// — weaker than any origin's real mask, so every bound below is a
// conservative superset of the truly affected origins. Removed links are
// bounded on the previous world (only paths that existed can vanish),
// added links on the next:
//
//   - Peer link (a,b): a path crossing a peer edge spends its single peer
//     hop there, so the prefix from the origin to the entry endpoint is a
//     pure uphill (customer→provider) walk. Affected origins lie in the
//     masked customer cone of a or of b — a plain BFS down customer
//     edges, no propagation needed.
//   - Transit link (p→c): crossing upward (c exports to its new provider)
//     again needs a pure uphill prefix into c, and every such origin also
//     reaches p one hop later; crossing downward needs any valley-free
//     path into p. Both are covered by one scout propagation from p:
//     reachability is reversal-symmetric, so the set of origins that can
//     reach p equals the set p's own announcement reaches.
//   - A base-masked endpoint never relays a foreign origin's route, so a
//     link whose relay endpoint is masked needs no bound at all: only the
//     endpoints themselves can be affected, and endpoints are always
//     dirty.
//
// Tier-1 and Tier-2 origins are always dirty (they are unmasked inside
// their own propagation, which the base-masked bounds do not cover), as
// are ASes that only exist in the new world.
//
// When the dirty region exceeds half the graph — always the case for
// Full and ProviderFree, whose base masks exclude nothing, and typically
// the case when a well-connected transit gains a customer — the engine
// falls back to a plain full sweep, which stays the golden path: the
// result is exact, never approximate, in both modes. Incremental wins are
// for link churn (IXP peering flaps, the flat Internet's native motion);
// bulk growth steps that add thousands of ASes re-sweep, correctly.
func EvolveCounts(ctx context.Context, prev, next *Metrics, kind Kind, prevCounts []int, d EvolveDelta) ([]int, EvolveStats, error) {
	if kind < Full || kind > HierarchyFree {
		return nil, EvolveStats{}, fmt.Errorf("core: invalid kind %d", kind)
	}
	pg, ng := prev.ds.Graph, next.ds.Graph
	n := ng.NumASes()
	stats := EvolveStats{Origins: n}
	if len(prevCounts) != pg.NumASes() {
		return nil, EvolveStats{}, fmt.Errorf("core: prevCounts has %d entries, previous world has %d ASes", len(prevCounts), pg.NumASes())
	}

	// Carry the origin equivalence-class index across the delta before any
	// sweep below (even a full-sweep fallback benefits): ASes untouched by
	// the delta keep their fingerprints verbatim, so the next world skips
	// the from-scratch signature pass its first classed sweep would pay.
	// Sound only when the tier sets match — tier bytes are part of the
	// fingerprint — and worth doing only when the previous index exists and
	// the next one does not.
	if prevCI := prev.classesIfBuilt(); prevCI != nil && next.classesIfBuilt() == nil &&
		sameSet(prev.ds.Tier1, next.ds.Tier1) && sameSet(prev.ds.Tier2, next.ds.Tier2) {
		touched := make([]astopo.ASN, 0, 2*(len(d.AddedLinks)+len(d.RemovedLinks))+len(d.NewASes))
		for _, l := range d.AddedLinks {
			touched = append(touched, l.A, l.B)
		}
		for _, l := range d.RemovedLinks {
			touched = append(touched, l.A, l.B)
		}
		touched = append(touched, d.NewASes...)
		next.setClasses(prevCI.Evolve(next.ds.Graph, next.ds.Tier1, next.ds.Tier2, nil, touched))
		stats.ClassesEvolved = true
	}

	fullSweep := func(reason string) ([]int, EvolveStats, error) {
		stats.FullSweep = true
		stats.Reason = reason
		stats.Dirty = n
		stats.Carried = 0
		out, err := next.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
		return out, stats, err
	}

	// The base masks are derived from the tier sets; if those changed
	// between worlds the carried counts were computed under a different
	// subgraph and nothing can be reused.
	if !sameSet(prev.ds.Tier1, next.ds.Tier1) || !sameSet(prev.ds.Tier2, next.ds.Tier2) {
		return fullSweep("tier sets changed")
	}
	if kind == Full || kind == ProviderFree {
		// Base mask excludes nothing: a scout from any endpoint floods
		// the connected component, so skip straight to the fallback.
		return fullSweep("kind has no base exclusions")
	}

	dirty := make([]bool, n)
	markASN := func(a astopo.ASN) {
		if i, ok := ng.Index(a); ok {
			dirty[i] = true
		}
	}
	for a := range next.ds.Tier1 {
		markASN(a)
	}
	for a := range next.ds.Tier2 {
		markASN(a)
	}
	for _, a := range d.NewASes {
		i, ok := ng.Index(a)
		if !ok {
			return nil, EvolveStats{}, fmt.Errorf("core: new AS %d not in next world", a)
		}
		dirty[i] = true
	}

	// Bound the changed links. Marks land in next-world dense indexes;
	// bounds computed on the previous world are translated by ASN.
	mark := func(m *Metrics, i int, onPrev bool) {
		if onPrev {
			markASN(m.ds.Graph.ASNAt(i))
		} else {
			dirty[i] = true
		}
	}
	// coneMark walks the masked customer cone of start: every origin with
	// a pure uphill path into start, the only origins that can route
	// across a peer edge at start. The seen/stack scratch is shared across
	// all cone walks of this call (a timeline step bounds thousands of
	// churned peer links): seen is sized once per graph side and cleared
	// sparsely via the visited list instead of reallocated per link.
	var seenPrev, seenNext []bool
	var coneStack, coneVisited []int32
	coneMark := func(m *Metrics, start int, onPrev bool) {
		stats.Cones++
		g := m.ds.Graph
		base := m.baseMask[kind]
		seen := seenNext
		if onPrev {
			if seenPrev == nil {
				seenPrev = make([]bool, pg.NumASes())
			}
			seen = seenPrev
		} else if seen == nil {
			seenNext = make([]bool, n)
			seen = seenNext
		}
		seen[start] = true
		stack := append(coneStack[:0], int32(start))
		visited := append(coneVisited[:0], int32(start))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			mark(m, int(x), onPrev)
			for _, c := range g.CustomersOf(int(x)) {
				if !seen[c] && !base[c] {
					seen[c] = true
					stack = append(stack, c)
					visited = append(visited, c)
				}
			}
		}
		for _, v := range visited {
			seen[v] = false
		}
		coneStack, coneVisited = stack, visited // keep high-water backing arrays
	}
	// scoutMark runs one masked propagation from start; by reversal
	// symmetry its reach set is exactly the set of origins that can reach
	// start.
	scoutMark := func(m *Metrics, start int, onPrev bool) error {
		stats.Scouts++
		sim := m.pool.Get().(*bgpsim.Simulator)
		defer m.pool.Put(sim)
		res, err := sim.RunCtx(ctx, bgpsim.Config{Origin: m.ds.Graph.ASNAt(start), Exclude: m.baseMask[kind]})
		if err != nil {
			return err
		}
		for i, c := range res.Class {
			if c != bgpsim.ClassNone {
				mark(m, i, onPrev)
			}
		}
		return nil
	}
	boundLink := func(m *Metrics, l astopo.Link, onPrev bool) error {
		g := m.ds.Graph
		// Normalize so pi is the provider side of a transit link.
		pa, pb, rel := l.A, l.B, l.Rel
		if rel == astopo.C2P {
			pa, pb, rel = pb, pa, astopo.P2C
		}
		ai, aok := g.Index(pa)
		bi, bok := g.Index(pb)
		if !aok || !bok {
			if onPrev {
				return fmt.Errorf("core: removed link %d-%d not in previous world", l.A, l.B)
			}
			return fmt.Errorf("core: added link %d-%d not in next world", l.A, l.B)
		}
		markASN(pa)
		markASN(pb)
		base := m.baseMask[kind]
		if rel == astopo.P2C {
			// Only the provider relays foreign routes across a transit
			// link; if it is masked, the endpoints (already dirty) are
			// the whole story.
			if base[ai] {
				return nil
			}
			return scoutMark(m, ai, onPrev)
		}
		if !base[ai] {
			coneMark(m, ai, onPrev)
		}
		if !base[bi] {
			coneMark(m, bi, onPrev)
		}
		return nil
	}
	for _, l := range d.RemovedLinks {
		if err := boundLink(prev, l, true); err != nil {
			return nil, EvolveStats{}, err
		}
	}
	for _, l := range d.AddedLinks {
		if err := boundLink(next, l, false); err != nil {
			return nil, EvolveStats{}, err
		}
	}

	// Partition: carry clean origins, collect dirty ones for recompute.
	out := make([]int, n)
	dirtyASNs := make([]astopo.ASN, 0, 64)
	dirtyIdx := make([]int, 0, 64)
	for i := 0; i < n; i++ {
		a := ng.ASNAt(i)
		if !dirty[i] {
			j, ok := pg.Index(a)
			if !ok {
				// Present in next but not prev and not declared new:
				// the delta is inconsistent with the graphs. Treat as
				// dirty rather than guessing a carried value.
				dirty[i] = true
			} else {
				out[i] = prevCounts[j]
				continue
			}
		}
		dirtyASNs = append(dirtyASNs, a)
		dirtyIdx = append(dirtyIdx, i)
	}
	stats.Dirty = len(dirtyASNs)
	stats.Carried = n - stats.Dirty
	if stats.Dirty*2 > n {
		return fullSweep(fmt.Sprintf("dirty region %d/%d too large", stats.Dirty, n))
	}

	counts, err := next.ReachabilityMany(ctx, dirtyASNs, kind)
	if err != nil {
		return nil, stats, err
	}
	for k, i := range dirtyIdx {
		out[i] = counts[k]
	}
	return out, stats, nil
}

func sameSet(a, b astopo.ASSet) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if !b.Has(x) {
			return false
		}
	}
	return true
}
