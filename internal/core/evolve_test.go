package core

import (
	"context"
	"math/rand"
	"testing"

	"flatnet/internal/astopo"
)

// mutateDataset derives a "next" world from prev by removing and adding
// random links and attaching a few brand-new ASes, returning the rebuilt
// dataset plus the exact delta connecting the two. The mutation keeps the
// tier sets fixed (the timeline invariant EvolveCounts exploits).
func mutateDataset(rng *rand.Rand, prev Dataset, removals, additions, newASes int) (Dataset, EvolveDelta) {
	type pair = [2]astopo.ASN
	key := func(l astopo.Link) pair {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	links := prev.Graph.Links()
	var d EvolveDelta
	drop := make(map[int]bool)
	for len(drop) < removals && len(drop) < len(links)/2 {
		drop[rng.Intn(len(links))] = true
	}
	kept := make(map[pair]bool, len(links))
	var next []astopo.Link
	for i, l := range links {
		if drop[i] {
			d.RemovedLinks = append(d.RemovedLinks, l)
			continue
		}
		kept[key(l)] = true
		next = append(next, l)
	}
	n := prev.Graph.NumASes()
	maxASN := astopo.ASN(0)
	for _, a := range prev.Graph.ASes() {
		if a > maxASN {
			maxASN = a
		}
	}
	add := func(l astopo.Link) bool {
		if l.A == l.B || kept[key(l)] {
			return false
		}
		kept[key(l)] = true
		next = append(next, l)
		d.AddedLinks = append(d.AddedLinks, l)
		return true
	}
	for tries := 0; tries < additions*10 && len(d.AddedLinks) < additions; tries++ {
		a := prev.Graph.ASNAt(rng.Intn(n))
		b := prev.Graph.ASNAt(rng.Intn(n))
		rel := astopo.P2P
		if rng.Intn(3) == 0 {
			rel = astopo.P2C
		}
		add(astopo.Link{A: a, B: b, Rel: rel})
	}
	for j := 0; j < newASes; j++ {
		na := maxASN + 1 + astopo.ASN(j)
		d.NewASes = append(d.NewASes, na)
		add(astopo.Link{A: prev.Graph.ASNAt(rng.Intn(n)), B: na, Rel: astopo.P2C})
		if rng.Intn(2) == 0 {
			add(astopo.Link{A: na, B: prev.Graph.ASNAt(rng.Intn(n)), Rel: astopo.P2P})
		}
	}
	g := astopo.NewGraph(n+newASes, len(next))
	for _, l := range next {
		g.MustAddLink(l.A, l.B, l.Rel)
	}
	return Dataset{Graph: g, Tier1: prev.Tier1, Tier2: prev.Tier2}, d
}

// TestEvolveCountsMatchesFullSweep is the incremental engine's golden
// equivalence suite: over randomized tiered topologies and randomized
// add/remove/new-AS deltas, EvolveCounts must reproduce a fresh full sweep
// of the next world exactly — every origin, every Kind, whether it carried
// counts, scouted, or fell back. It also asserts the incremental path is
// actually exercised (some trials must carry counts without a full sweep).
func TestEvolveCountsMatchesFullSweep(t *testing.T) {
	ctx := context.Background()
	carried := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 12 + rng.Intn(30)
		if seed%12 == 0 {
			n = 140 + rng.Intn(60) // multi-block: dirty recompute crosses 64-lane words
		}
		prev := randomTieredDataset(rng, n)
		nxt, delta := mutateDataset(rng, prev, rng.Intn(3), 1+rng.Intn(3), rng.Intn(3))
		prevM, nextM := New(prev), New(nxt)
		for _, kind := range allKinds {
			prevCounts, err := prevM.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
			if err != nil {
				t.Fatalf("seed %d kind %v: prev sweep: %v", seed, kind, err)
			}
			got, stats, err := EvolveCounts(ctx, prevM, nextM, kind, prevCounts, delta)
			if err != nil {
				t.Fatalf("seed %d kind %v: EvolveCounts: %v", seed, kind, err)
			}
			want, err := nextM.ReachabilityRangeCtx(ctx, kind, 0, nxt.Graph.NumASes(), 0)
			if err != nil {
				t.Fatalf("seed %d kind %v: fresh sweep: %v", seed, kind, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d kind %v: origin %d (AS%d): evolved %d != fresh %d (stats %+v, delta %+v)",
						seed, kind, i, nxt.Graph.ASNAt(i), got[i], want[i], stats, delta)
				}
			}
			if kind == Full || kind == ProviderFree {
				if !stats.FullSweep {
					t.Fatalf("seed %d kind %v: expected full-sweep fallback", seed, kind)
				}
			}
			if !stats.FullSweep {
				if stats.Dirty+stats.Carried != stats.Origins {
					t.Fatalf("seed %d kind %v: stats don't partition: %+v", seed, kind, stats)
				}
				carried += stats.Carried
			}
		}
	}
	if carried == 0 {
		t.Fatal("incremental path never carried a count — the suite only tested the fallback")
	}
}

// TestEvolveCountsSingleLink pins the cheap path: one added peer link
// between two leaf ASes under HierarchyFree must scout exactly once and
// carry the overwhelming majority of origins.
func TestEvolveCountsSingleLink(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	prev := randomTieredDataset(rng, 180)
	n := prev.Graph.NumASes()
	// Find two unlinked non-tier leaves.
	var la, lb astopo.ASN
	for tries := 0; ; tries++ {
		a := prev.Graph.ASNAt(rng.Intn(n))
		b := prev.Graph.ASNAt(rng.Intn(n))
		if a == b || prev.Tier1.Has(a) || prev.Tier1.Has(b) || prev.Tier2.Has(a) || prev.Tier2.Has(b) {
			continue
		}
		if _, ok := prev.Graph.HasLink(a, b); !ok {
			la, lb = a, b
			break
		}
	}
	link := astopo.Link{A: la, B: lb, Rel: astopo.P2P}
	links := append(append([]astopo.Link(nil), prev.Graph.Links()...), link)
	g := astopo.NewGraph(n, len(links))
	for _, l := range links {
		g.MustAddLink(l.A, l.B, l.Rel)
	}
	nxt := Dataset{Graph: g, Tier1: prev.Tier1, Tier2: prev.Tier2}
	prevM, nextM := New(prev), New(nxt)
	prevCounts, err := prevM.ReachabilityRangeCtx(ctx, HierarchyFree, 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := EvolveCounts(ctx, prevM, nextM, HierarchyFree, prevCounts, EvolveDelta{AddedLinks: []astopo.Link{link}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullSweep {
		t.Fatalf("single leaf link forced a full sweep: %+v", stats)
	}
	if stats.Scouts != 0 || stats.Cones != 2 {
		t.Fatalf("peer link should bound via 2 cone walks, no scouts: %+v", stats)
	}
	if stats.Carried == 0 {
		t.Fatalf("no counts carried: %+v", stats)
	}
	want, err := nextM.ReachabilityRangeCtx(ctx, HierarchyFree, 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("origin AS%d: evolved %d != fresh %d", nxt.Graph.ASNAt(i), got[i], want[i])
		}
	}
}

func TestEvolveCountsFailsClosed(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	prev := randomTieredDataset(rng, 30)
	nxt, delta := mutateDataset(rng, prev, 1, 2, 1)
	prevM, nextM := New(prev), New(nxt)
	n := prev.Graph.NumASes()
	prevCounts, err := prevM.ReachabilityRangeCtx(ctx, HierarchyFree, 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := EvolveCounts(ctx, prevM, nextM, HierarchyFree, prevCounts[:n-1], delta); err == nil {
		t.Error("short prevCounts should fail")
	}
	bad := delta
	bad.NewASes = append([]astopo.ASN{9999999}, delta.NewASes...)
	if _, _, err := EvolveCounts(ctx, prevM, nextM, HierarchyFree, prevCounts, bad); err == nil {
		t.Error("unknown new AS should fail")
	}
	bad = delta
	bad.RemovedLinks = append([]astopo.Link{{A: 9999998, B: 9999999, Rel: astopo.P2P}}, delta.RemovedLinks...)
	if _, _, err := EvolveCounts(ctx, prevM, nextM, HierarchyFree, prevCounts, bad); err == nil {
		t.Error("removed link outside prev world should fail")
	}
	bad = delta
	bad.AddedLinks = append([]astopo.Link{{A: 9999998, B: 9999999, Rel: astopo.P2P}}, delta.AddedLinks...)
	if _, _, err := EvolveCounts(ctx, prevM, nextM, HierarchyFree, prevCounts, bad); err == nil {
		t.Error("added link outside next world should fail")
	}
	// Tier-set change: same graphs, different Tier2 → full sweep, exact.
	t2 := make(astopo.ASSet)
	for a := range nxt.Tier2 {
		t2.Add(a)
	}
	t2.Add(nxt.Graph.ASNAt(n / 2))
	altM := New(Dataset{Graph: nxt.Graph, Tier1: nxt.Tier1, Tier2: t2})
	got, stats, err := EvolveCounts(ctx, prevM, altM, HierarchyFree, prevCounts, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullSweep {
		t.Error("tier-set change must force the full-sweep fallback")
	}
	want, err := altM.ReachabilityRangeCtx(ctx, HierarchyFree, 0, nxt.Graph.NumASes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
}
