package core_test

import (
	"fmt"
	"log"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
)

// Example reproduces the paper's Fig. 1 walkthrough: a cloud provider with
// one transit provider, peerings with a Tier-1, a Tier-2, and two user
// ISPs, and one customer ISP behind each of the Tier-1 and Tier-2.
func Example() {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(1, 100, astopo.P2C) // Tier-1 P sells transit to cloud 100
	g.MustAddLink(100, 2, astopo.P2P) // cloud peers a Tier-1...
	g.MustAddLink(100, 3, astopo.P2P) // ...a Tier-2...
	g.MustAddLink(100, 4, astopo.P2P) // ...and user ISPs
	g.MustAddLink(100, 5, astopo.P2P)
	g.MustAddLink(2, 6, astopo.P2C) // ISP-A behind the Tier-1
	g.MustAddLink(3, 7, astopo.P2C) // ISP-B behind the Tier-2
	g.MustAddLink(1, 2, astopo.P2P) // the Tier-1 clique

	m := core.New(core.Dataset{
		Graph: g,
		Tier1: astopo.NewASSet(1, 2),
		Tier2: astopo.NewASSet(3),
	})
	for _, kind := range []core.Kind{core.ProviderFree, core.Tier1Free, core.HierarchyFree} {
		n, err := m.Reachability(100, kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d ASes\n", kind, n)
	}
	// Output:
	// provider-free: 6 ASes
	// tier1-free: 4 ASes
	// hierarchy-free: 2 ASes
}

// ExampleMetrics_TopReliance shows who the cloud's traffic would
// concentrate on when the hierarchy is bypassed.
func ExampleMetrics_TopReliance() {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(100, 10, astopo.P2P) // cloud peers a regional transit
	g.MustAddLink(10, 11, astopo.P2C)  // which serves two stubs
	g.MustAddLink(10, 12, astopo.P2C)
	m := core.New(core.Dataset{Graph: g})
	top, err := m.TopReliance(100, core.HierarchyFree, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS%d rely=%.0f\n", top[0].AS, top[0].Value)
	// Output:
	// AS10 rely=3
}
