package core

import (
	"testing"

	"flatnet/internal/topogen"
)

func genDataset(t *testing.T) Dataset {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(0.00713))
	if err != nil {
		t.Fatal(err)
	}
	return Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2}
}

// The reusable scratch overlay must produce exactly the mask Mask builds
// from scratch, for every origin and kind, including after release/reuse —
// this is what makes ReachabilityAll's O(V + Σ providers) masking safe.
func TestScratchMaskMatchesMask(t *testing.T) {
	ds := genDataset(t)
	m := New(ds)
	g := ds.Graph
	for _, kind := range []Kind{Full, ProviderFree, Tier1Free, HierarchyFree} {
		sc := m.scratch(kind)
		for i := 0; i < g.NumASes(); i++ {
			o := g.ASNAt(i)
			want := m.Mask(o, kind)
			got := sc.acquire(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%v origin AS%d: scratch[%d]=%v, Mask=%v", kind, o, j, got[j], want[j])
				}
			}
			sc.release()
		}
		// After the last release the scratch must equal the base again.
		base := m.baseMask[kind]
		for j := range base {
			if sc.mask[j] != base[j] {
				t.Fatalf("%v: scratch not restored at %d after release", kind, j)
			}
		}
	}
}

// ReachabilityAll must agree with per-origin Reachability calls.
func TestReachabilityAllMatchesPerOrigin(t *testing.T) {
	ds := genDataset(t)
	m := New(ds)
	g := ds.Graph
	all, err := m.ReachabilityAll(HierarchyFree)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.NumASes() {
		t.Fatalf("got %d results, want %d", len(all), g.NumASes())
	}
	// Spot-check a spread of origins, plus every Tier-1/Tier-2 member
	// (the origins whose masks interact with the base-mask unmasking).
	check := map[int]bool{}
	for i := 0; i < g.NumASes(); i += 97 {
		check[i] = true
	}
	for a := range ds.Tier1 {
		if i, ok := g.Index(a); ok {
			check[i] = true
		}
	}
	for a := range ds.Tier2 {
		if i, ok := g.Index(a); ok {
			check[i] = true
		}
	}
	for i := range check {
		want, err := m.Reachability(g.ASNAt(i), HierarchyFree)
		if err != nil {
			t.Fatal(err)
		}
		if all[i] != want {
			t.Errorf("origin AS%d: ReachabilityAll=%d, Reachability=%d", g.ASNAt(i), all[i], want)
		}
	}
}
