package core

import (
	"context"
	"fmt"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
)

// This file holds the query-shaped entry points the serving layer
// (internal/serve) calls: the same metrics as the batch API, but taking a
// context so a per-request deadline cancels the underlying propagation,
// and a multi-origin form that routes wide requests through the
// bit-parallel batch engine.

// KindFromString parses the four query spellings of Kind ("full",
// "provider-free", "tier1-free", "hierarchy-free") — the inverse of
// Kind.String.
func KindFromString(s string) (Kind, error) {
	for k := Full; k <= HierarchyFree; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown reachability kind %q (want full, provider-free, tier1-free, or hierarchy-free)", s)
}

// ReachabilityCtx is Reachability with cancellation: the propagation is
// aborted between distance buckets once ctx is done, returning ctx.Err().
func (m *Metrics) ReachabilityCtx(ctx context.Context, o astopo.ASN, kind Kind) (int, error) {
	sim := m.pool.Get().(*bgpsim.Simulator)
	defer m.pool.Put(sim)
	mask := m.acquireMask(o, kind)
	defer m.releaseMask(mask)
	return sim.ReachabilityCountCtx(ctx, bgpsim.Config{Origin: o, Exclude: mask})
}

// PropagateCtx is Propagate with cancellation (see ReachabilityCtx).
func (m *Metrics) PropagateCtx(ctx context.Context, o astopo.ASN, kind Kind, trackNextHops bool) (*bgpsim.Result, error) {
	sim := m.pool.Get().(*bgpsim.Simulator)
	defer m.pool.Put(sim)
	mask := m.acquireMask(o, kind)
	defer m.releaseMask(mask)
	return sim.RunCtx(ctx, bgpsim.Config{Origin: o, Exclude: mask, TrackNextHops: trackNextHops})
}

// RelianceCtx is Reliance with cancellation (see ReachabilityCtx).
func (m *Metrics) RelianceCtx(ctx context.Context, o astopo.ASN, kind Kind) ([]RelianceEntry, error) {
	res, err := m.PropagateCtx(ctx, o, kind, true)
	if err != nil {
		return nil, err
	}
	vals, err := res.Reliance()
	if err != nil {
		return nil, err
	}
	g := m.ds.Graph
	out := make([]RelianceEntry, 0, len(vals)/2)
	for i, v := range vals {
		if v > 0 {
			out = append(out, RelianceEntry{AS: g.ASNAt(i), Value: v})
		}
	}
	return out, nil
}

// TopRelianceCtx is TopReliance with cancellation (see ReachabilityCtx).
func (m *Metrics) TopRelianceCtx(ctx context.Context, o astopo.ASN, kind Kind, k int) ([]RelianceEntry, error) {
	entries, err := m.RelianceCtx(ctx, o, kind)
	if err != nil {
		return nil, err
	}
	return topReliance(entries, o, k), nil
}

// ReachabilityMany computes reach(o, kind) for each origin in input order.
// Requests of at least bgpsim.BatchLanes origins ride the bit-parallel
// batch engine, 64 origins per propagation; narrower requests run the
// scalar per-origin path (a batch narrower than a word pays word-width
// work for lane-count results, so the scalar path wins there). Every
// origin must be present in the graph.
func (m *Metrics) ReachabilityMany(ctx context.Context, origins []astopo.ASN, kind Kind) ([]int, error) {
	return m.ReachabilityManyN(ctx, origins, kind, 0)
}

// ReachabilityManyN is ReachabilityMany with a worker bound: at most
// `workers` goroutines compute the 64-origin blocks (0 means GOMAXPROCS;
// 1 runs on the calling goroutine). Cluster shard endpoints use 1 so that
// one shard request occupies exactly one serving slot and backpressure
// stays accurate.
func (m *Metrics) ReachabilityManyN(ctx context.Context, origins []astopo.ASN, kind Kind, workers int) ([]int, error) {
	g := m.ds.Graph
	idx := make([]int32, len(origins))
	for i, o := range origins {
		oi, ok := g.Index(o)
		if !ok {
			return nil, fmt.Errorf("core: origin AS%d not in graph", o)
		}
		idx[i] = int32(oi)
	}
	out := make([]int, len(origins))
	if len(origins) < bgpsim.BatchLanes || m.scalarSweep {
		sim := m.pool.Get().(*bgpsim.Simulator)
		defer m.pool.Put(sim)
		for i, o := range origins {
			mask := m.acquireMask(o, kind)
			cnt, err := sim.ReachabilityCountCtx(ctx, bgpsim.Config{Origin: o, Exclude: mask})
			m.releaseMask(mask)
			if err != nil {
				return nil, err
			}
			out[i] = cnt
		}
		return out, nil
	}
	// Class collapse: distinct origins sharing an equivalence class have
	// identical counts, so only one member per class propagates and the
	// count is copied to the duplicates — exact, not approximate (the
	// member-swap automorphism, see bgpsim.ClassIndex). Dedup keys on the
	// first occurrence so the result is byte-identical in input order.
	if ci := m.SweepClasses(); ci != nil && len(origins) > 0 {
		firstOf := make(map[int32]int32, len(origins))
		uniq := idx[:0:0]
		slot := make([]int32, len(origins))
		for i, oi := range idx {
			c := ci.ClassOf(int(oi))
			s, seen := firstOf[c]
			if !seen {
				s = int32(len(uniq))
				firstOf[c] = s
				uniq = append(uniq, oi)
			}
			slot[i] = s
		}
		if len(uniq) < len(idx) {
			counts := make([]int, len(uniq))
			if err := m.batchCountsIdxCtx(ctx, kind, uniq, denseRange{}, counts, workers); err != nil {
				return nil, err
			}
			for i, s := range slot {
				out[i] = counts[s]
			}
			return out, nil
		}
	}
	if err := m.batchCountsIdxCtx(ctx, kind, idx, denseRange{}, out, workers); err != nil {
		return nil, err
	}
	return out, nil
}
