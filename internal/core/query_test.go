package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"flatnet/internal/astopo"
)

func TestKindFromString(t *testing.T) {
	for k := Full; k <= HierarchyFree; k++ {
		got, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString accepted an unknown kind")
	}
}

// TestReachabilityManyMatchesScalar drives both ReachabilityMany paths —
// the scalar loop (narrow requests) and the 64-lane batch engine (wide
// requests) — and checks each against per-origin Reachability.
func TestReachabilityManyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randomTieredDataset(rng, 150)
	m := New(ds)
	all := ds.Graph.ASes()
	for _, tc := range []struct {
		name    string
		origins int
	}{
		{"scalar-path", 10},
		{"batch-path", len(all)},
	} {
		origins := all[:tc.origins]
		for kind := Full; kind <= HierarchyFree; kind++ {
			got, err := m.ReachabilityMany(context.Background(), origins, kind)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, kind, err)
			}
			for i, o := range origins {
				want, err := m.Reachability(o, kind)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Errorf("%s/%v: ReachabilityMany[AS%d] = %d, want %d", tc.name, kind, o, got[i], want)
				}
			}
		}
	}
}

func TestReachabilityManyUnknownOrigin(t *testing.T) {
	m := New(fixtureDataset(t))
	if _, err := m.ReachabilityMany(context.Background(), []astopo.ASN{99999}, Full); err == nil {
		t.Error("ReachabilityMany accepted an origin outside the graph")
	}
}

func TestQueryCtxCanceled(t *testing.T) {
	m := New(fixtureDataset(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ReachabilityCtx(ctx, 100, HierarchyFree); !errors.Is(err, context.Canceled) {
		t.Errorf("ReachabilityCtx: err = %v, want context.Canceled", err)
	}
	if _, err := m.RelianceCtx(ctx, 100, Full); !errors.Is(err, context.Canceled) {
		t.Errorf("RelianceCtx: err = %v, want context.Canceled", err)
	}
	if _, err := m.TopRelianceCtx(ctx, 100, Full, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("TopRelianceCtx: err = %v, want context.Canceled", err)
	}
	if _, err := m.ReachabilityMany(ctx, m.ds.Graph.ASes(), Full); !errors.Is(err, context.Canceled) {
		t.Errorf("ReachabilityMany: err = %v, want context.Canceled", err)
	}
	// The metrics remain usable after aborted queries.
	n, err := m.Reachability(100, Full)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("Reachability after aborted queries = %d, want 7", n)
	}
}
