package experiments

import (
	"fmt"
	"io"

	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
)

// TiesAblationRow compares leak exposure for one cloud with the paper's
// keep-all-ties rule against a single-best-route tie-break.
type TiesAblationRow struct {
	Cloud                  string
	MeanTies, MeanBroken   float64
	WorstTies, WorstBroken float64
	ReachTies, ReachBroken int
}

// TiesAblation quantifies the paper's §8.1 design choice: counting an AS as
// detoured "if any one of its best routes" leads to the leaker is a worst
// case; breaking ties gives the corresponding best case. Reachability
// itself is unaffected (route existence does not depend on tie handling),
// which the rows also verify.
func TiesAblation(env *Env) ([]TiesAblationRow, error) {
	in := env.In2020
	var rows []TiesAblationRow
	for _, cloud := range Clouds() {
		origin := in.Clouds[cloud]
		leakers := bgpsim.SampleLeakers(in.Graph, origin, leakTrialsPerConfig/2, int64(origin)+1)
		row := TiesAblationRow{Cloud: cloud}
		for _, broken := range []bool{false, true} {
			cfg := bgpsim.Config{Origin: origin, BreakTies: broken}
			trials, err := bgpsim.RunLeakTrials(in.Graph, cfg, leakers, nil)
			if err != nil {
				return nil, err
			}
			var mean, worst float64
			for _, tr := range trials {
				mean += tr.DetouredFrac
				if tr.DetouredFrac > worst {
					worst = tr.DetouredFrac
				}
			}
			mean /= float64(len(trials))
			sim := bgpsim.New(in.Graph)
			reach, err := sim.ReachabilityCount(bgpsim.Config{
				Origin:    origin,
				Exclude:   env.M2020.Mask(origin, core.HierarchyFree),
				BreakTies: broken,
			})
			if err != nil {
				return nil, err
			}
			if broken {
				row.MeanBroken, row.WorstBroken, row.ReachBroken = mean, worst, reach
			} else {
				row.MeanTies, row.WorstTies, row.ReachTies = mean, worst, reach
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runTiesAblation(env *Env, w io.Writer) error {
	rows, err := TiesAblation(env)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "leak detours: all-ties (paper's worst case) vs single-route tie-break")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s\n",
		"cloud", "mean(ties)", "mean(broken)", "worst(ties)", "worst(broken)", "reach equal")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%% %12v\n",
			r.Cloud, 100*r.MeanTies, 100*r.MeanBroken, 100*r.WorstTies, 100*r.WorstBroken,
			r.ReachTies == r.ReachBroken)
	}
	return nil
}
