package experiments

import (
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/topogen"
)

// The longitudinal property the incremental class carry rests on: for
// every adjacent year pair in the 2015–2025 preset family, evolving the
// previous year's class index across the growth delta must produce exactly
// the index a from-scratch rebuild of the next year's world produces. The
// timeline presets hold the tier sets fixed, which is the precondition the
// core carry gates on.
func TestClassIndexEvolveMatchesRebuildAcrossTimeline(t *testing.T) {
	const scale = 0.02
	in, err := topogen.GenerateYear(topogen.TimelineFirstYear, scale)
	if err != nil {
		t.Fatal(err)
	}
	ci := bgpsim.NewClassIndex(in.Graph, in.Tier1, in.Tier2, nil)
	for year := topogen.TimelineFirstYear + 1; year <= topogen.TimelineLastYear; year++ {
		d, err := topogen.EvolveStep(in, year, scale)
		if err != nil {
			t.Fatalf("%d: %v", year, err)
		}
		next, err := topogen.ApplyDelta(in, d)
		if err != nil {
			t.Fatalf("%d: %v", year, err)
		}
		touched := make([]astopo.ASN, 0, 2*(len(d.AddedLinks)+len(d.RemovedLinks))+len(d.NewASes))
		for _, l := range d.AddedLinks {
			touched = append(touched, l.A, l.B)
		}
		for _, l := range d.RemovedLinks {
			touched = append(touched, l.A, l.B)
		}
		for _, na := range d.NewASes {
			touched = append(touched, na.ASN)
		}
		evolved := ci.Evolve(next.Graph, next.Tier1, next.Tier2, nil, touched)
		rebuilt := bgpsim.NewClassIndex(next.Graph, next.Tier1, next.Tier2, nil)
		if evolved.NumASes() != rebuilt.NumASes() || evolved.NumClasses() != rebuilt.NumClasses() {
			t.Fatalf("%d→%d: evolved %d ASes/%d classes, rebuilt %d/%d",
				year-1, year, evolved.NumASes(), evolved.NumClasses(), rebuilt.NumASes(), rebuilt.NumClasses())
		}
		for i := 0; i < rebuilt.NumASes(); i++ {
			if evolved.ClassOf(i) != rebuilt.ClassOf(i) {
				t.Fatalf("%d→%d AS%d: evolved class %d != rebuilt %d",
					year-1, year, next.Graph.ASNAt(i), evolved.ClassOf(i), rebuilt.ClassOf(i))
			}
		}
		for c := 0; c < rebuilt.NumClasses(); c++ {
			if evolved.Rep(c) != rebuilt.Rep(c) || evolved.Size(c) != rebuilt.Size(c) {
				t.Fatalf("%d→%d class %d: rep/size (%d,%d) != (%d,%d)",
					year-1, year, c, evolved.Rep(c), evolved.Size(c), rebuilt.Rep(c), rebuilt.Size(c))
			}
		}
		if rebuilt.CollapseRatio() < 1 {
			t.Fatalf("%d: collapse ratio %v < 1", year, rebuilt.CollapseRatio())
		}
		in, ci = next, evolved
	}
}
