package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Table is one machine-readable experiment artifact.
type Table struct {
	// Name becomes the CSV file's base name.
	Name   string
	Header []string
	Rows   [][]string
}

// WriteCSV encodes the table.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Tables produces the machine-readable artifacts for one experiment id.
// Experiments whose output is inherently textual (fig11's map) return their
// numeric companions only.
func Tables(env *Env, id string) ([]Table, error) {
	f, ok := csvers[id]
	if !ok {
		return nil, fmt.Errorf("experiments: no CSV output for %q", id)
	}
	return f(env)
}

// HasTables reports whether an experiment has CSV output.
func HasTables(id string) bool { _, ok := csvers[id]; return ok }

func itoa(v int) string     { return strconv.Itoa(v) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

var csvers = map[string]func(*Env) ([]Table, error){
	"fig2": func(env *Env) ([]Table, error) {
		rows, err := Fig2(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "fig2_reachability", Header: []string{"network", "asn", "group", "provider_free", "tier1_free", "hierarchy_free"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Name, itoa(int(r.AS)), r.Group, itoa(r.ProviderFree), itoa(r.Tier1Free), itoa(r.HierarchyFree)})
		}
		return []Table{t}, nil
	},
	"table1": func(env *Env) ([]Table, error) {
		res, err := Table1(env, 20)
		if err != nil {
			return nil, err
		}
		mk := func(name string, rows []Table1Row) Table {
			t := Table{Name: name, Header: []string{"rank", "network", "asn", "reach", "pct"}}
			for _, r := range rows {
				t.Rows = append(t.Rows, []string{itoa(r.Rank), r.Name, itoa(int(r.AS)), itoa(r.Reach), ftoa(r.Pct)})
			}
			return t
		}
		return []Table{mk("table1_2015", res.Top2015), mk("table1_2020", res.Top2020)}, nil
	},
	"fig3": func(env *Env) ([]Table, error) {
		res, err := Fig3(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "fig3_scatter", Header: []string{"asn", "customer_cone", "hierarchy_free_reach", "type", "class"}}
		for _, p := range res.Points {
			t.Rows = append(t.Rows, []string{itoa(int(p.AS)), itoa(p.Cone), itoa(p.Reach), p.Type.String(), p.Class.String()})
		}
		return []Table{t}, nil
	},
	"fig4": func(env *Env) ([]Table, error) {
		rows, err := Fig4(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "fig4_unreachable", Header: []string{"network", "unreachable", "content", "transit", "access", "enterprise"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Name, itoa(r.Unreachable),
				itoa(r.ByType[0]), itoa(r.ByType[1]), itoa(r.ByType[2]), itoa(r.ByType[3])})
		}
		return []Table{t}, nil
	},
	"fig6": func(env *Env) ([]Table, error) {
		figs, err := Fig6(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "fig6_reliance_hist", Header: []string{"cloud", "bin_start", "ases"}}
		for _, f := range figs {
			for bin, n := range f.Bins {
				t.Rows = append(t.Rows, []string{f.Cloud, itoa(bin), itoa(n)})
			}
		}
		return []Table{t}, nil
	},
	"table2": func(env *Env) ([]Table, error) {
		rows, err := Table2(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "table2_top_reliance", Header: []string{"cloud", "rank", "asn", "reliance"}}
		for _, r := range rows {
			for i, e := range r.Top {
				t.Rows = append(t.Rows, []string{r.Cloud, itoa(i + 1), itoa(int(e.AS)), ftoa(e.Value)})
			}
		}
		return []Table{t}, nil
	},
	"fig7":  leakCSV("fig7", Fig7),
	"fig8":  leakCSV("fig8", func(e *Env) ([]*LeakFigure, error) { f, err := Fig8(e); return []*LeakFigure{f}, err }),
	"fig9":  leakCSV("fig9", func(e *Env) ([]*LeakFigure, error) { f, err := Fig9(e); return []*LeakFigure{f}, err }),
	"fig10": fig10CSV,
	"fig12": func(env *Env) ([]Table, error) {
		res, err := Fig12(env)
		if err != nil {
			return nil, err
		}
		mk := func(name string, rows []Fig12Row) Table {
			t := Table{Name: name, Header: []string{"label", "cov500km", "cov700km", "cov1000km"}}
			for _, r := range rows {
				t.Rows = append(t.Rows, []string{r.Label, ftoa(r.Coverage[0]), ftoa(r.Coverage[1]), ftoa(r.Coverage[2])})
			}
			return t
		}
		return []Table{
			mk("fig12_cloud_by_continent", res.CloudByContinent),
			mk("fig12_transit_by_continent", res.TransitByContinent),
			mk("fig12_per_provider", res.PerProvider),
		}, nil
	},
	"fig13": func(env *Env) ([]Table, error) {
		cells, err := Fig13(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "fig13_path_lengths", Header: []string{"cloud", "year", "weighting", "hop1_pct", "hop2_pct", "hop3plus_pct"}}
		for _, c := range cells {
			t.Rows = append(t.Rows, []string{c.Cloud, itoa(c.Year), c.Weighting.String(), ftoa(c.Pct[0]), ftoa(c.Pct[1]), ftoa(c.Pct[2])})
		}
		return []Table{t}, nil
	},
	"table3": func(env *Env) ([]Table, error) {
		rows, err := Table3(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "table3_rdns", Header: []string{"network", "asn", "pops", "hostnames", "pct_rdns"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Name, itoa(int(r.AS)), itoa(r.PoPs), itoa(r.Hostnames), ftoa(r.PctRDNS)})
		}
		return []Table{t}, nil
	},
	"appA": func(env *Env) ([]Table, error) {
		rows, err := AppA(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "appA_containment", Header: []string{"cloud", "traces", "contained_frac"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, itoa(r.Traces), ftoa(r.Contained)})
		}
		return []Table{t}, nil
	},
	"sec41": func(env *Env) ([]Table, error) {
		rows, err := Sec41(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "sec41_visibility", Header: []string{"cloud", "feed_only", "combined", "ground_truth", "missed_frac"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, itoa(r.FeedOnly), itoa(r.Combined), itoa(r.GroundTruth), ftoa(r.MissedFrac)})
		}
		return []Table{t}, nil
	},
	"sec5": func(env *Env) ([]Table, error) {
		rows, err := Sec5(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "sec5_validation", Header: []string{"cloud", "stage", "vms", "tp", "fp", "fn", "fdr", "fnr"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, r.Stage.String(), itoa(r.VMs),
				itoa(r.TP), itoa(r.FP), itoa(r.FN), ftoa(r.FDR), ftoa(r.FNR)})
		}
		return []Table{t}, nil
	},
	"ablation": func(env *Env) ([]Table, error) {
		rows, err := Ablation(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "ablation_augmentation", Header: []string{"cloud", "feed_only", "augmented", "ground_truth"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, itoa(r.FeedOnly), itoa(r.Augmented), itoa(r.Truth)})
		}
		return []Table{t}, nil
	},
	"ablation-ties": func(env *Env) ([]Table, error) {
		rows, err := TiesAblation(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "ablation_ties", Header: []string{"cloud", "mean_ties", "mean_broken", "worst_ties", "worst_broken"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, ftoa(r.MeanTies), ftoa(r.MeanBroken), ftoa(r.WorstTies), ftoa(r.WorstBroken)})
		}
		return []Table{t}, nil
	},
	"hijack": func(env *Env) ([]Table, error) {
		rows, err := Hijack(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "hijack_vs_leak", Header: []string{"cloud", "leak_mean", "hijack_mean", "leak_worst", "hijack_worst", "locked_hijack_mean"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, ftoa(r.LeakMean), ftoa(r.HijackMean), ftoa(r.LeakWorst), ftoa(r.HijackWorst), ftoa(r.LockedHijackMean)})
		}
		return []Table{t}, nil
	},
	"sensitivity": func(env *Env) ([]Table, error) {
		rows, err := Sensitivity(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: "sensitivity_fnr", Header: []string{"cloud", "miss_frac", "reach", "pct"}}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Cloud, ftoa(r.MissFrac), itoa(r.Reach), ftoa(r.Pct)})
		}
		return []Table{t}, nil
	},
}

func leakCSV(name string, run func(*Env) ([]*LeakFigure, error)) func(*Env) ([]Table, error) {
	return func(env *Env) ([]Table, error) {
		figs, err := run(env)
		if err != nil {
			return nil, err
		}
		t := Table{Name: name + "_leak_cdf", Header: []string{"origin", "scenario", "detoured_at_most", "cum_frac", "mean_detoured", "avg_resilience"}}
		for _, f := range figs {
			for _, c := range f.Curves {
				for i, x := range f.Grid() {
					t.Rows = append(t.Rows, []string{f.Origin, c.Scenario.String(), ftoa(x), ftoa(c.CDF[i]), ftoa(c.MeanDetoured), ftoa(f.AvgResilience)})
				}
			}
		}
		return []Table{t}, nil
	}
}

func fig10CSV(env *Env) ([]Table, error) {
	res, err := Fig10(env)
	if err != nil {
		return nil, err
	}
	t := Table{Name: "fig10_over_time", Header: []string{"year", "detoured_at_most", "cum_frac", "mean"}}
	for i, x := range res.Grid {
		t.Rows = append(t.Rows, []string{"2015", ftoa(x), ftoa(res.CDF2015[i]), ftoa(res.Mean2015)})
	}
	for i, x := range res.Grid {
		t.Rows = append(t.Rows, []string{"2020", ftoa(x), ftoa(res.CDF2020[i]), ftoa(res.Mean2020)})
	}
	return []Table{t}, nil
}
