// Package experiments reproduces every table and figure of the paper's
// evaluation over the synthetic Internet presets. Each experiment has a
// typed runner returning the same rows/series the paper reports, a text
// renderer, and an entry in the Registry used by cmd/flatnet and the
// benchmark harness.
//
// Absolute values differ from the paper's — the substrate is a 1:7-scaled
// synthetic topology, not the authors' measurement testbed — but the
// shapes (who wins, by what factor, where curves cross) are the
// reproduction targets. EXPERIMENTS.md records paper-vs-measured values
// for every artifact.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"flatnet/internal/core"
	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// Env bundles the datasets experiments run over. Heavy artifacts (address
// plans, traceroute corpora) are built lazily and cached.
type Env struct {
	Scale float64

	In2020, In2015   *topogen.Internet
	M2020, M2015     *core.Metrics
	Pop2020, Pop2015 *population.Model

	mu        sync.Mutex
	plan2020  *netdb.Plan
	plan2015  *netdb.Plan
	rdns2020  *rdns.Corpus
	traces    map[traceKey][][]tracesim.Traceroute
	tracesErr map[traceKey]error
}

type traceKey struct {
	year  int
	cloud string
	nVMs  int
}

// NewEnv generates both presets at the given scale (1.0 ≈ 9,900 ASes for
// 2020). The experiments' default is 0.35, which keeps the whole-Internet
// sweeps under a minute on a laptop.
func NewEnv(scale float64) (*Env, error) {
	in2020, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating 2020 preset: %w", err)
	}
	in2015, err := topogen.Generate(topogen.Internet2015(scale))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating 2015 preset: %w", err)
	}
	return &Env{
		Scale:   scale,
		In2020:  in2020,
		In2015:  in2015,
		M2020:   core.New(core.Dataset{Graph: in2020.Graph, Tier1: in2020.Tier1, Tier2: in2020.Tier2}),
		M2015:   core.New(core.Dataset{Graph: in2015.Graph, Tier1: in2015.Tier1, Tier2: in2015.Tier2}),
		Pop2020: population.Build(in2020, 1.1),
		Pop2015: population.Build(in2015, 1.1),
	}, nil
}

// Plan2020 lazily builds the 2020 address plan.
func (e *Env) Plan2020() (*netdb.Plan, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plan2020 == nil {
		p, err := netdb.Build(e.In2020)
		if err != nil {
			return nil, err
		}
		e.plan2020 = p
	}
	return e.plan2020, nil
}

// Plan2015 lazily builds the 2015 address plan.
func (e *Env) Plan2015() (*netdb.Plan, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plan2015 == nil {
		p, err := netdb.Build(e.In2015)
		if err != nil {
			return nil, err
		}
		e.plan2015 = p
	}
	return e.plan2015, nil
}

// RDNS2020 lazily synthesizes the 2020 rDNS corpus.
func (e *Env) RDNS2020() (*rdns.Corpus, error) {
	plan, err := e.Plan2020()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rdns2020 == nil {
		e.rdns2020 = rdns.Synthesize(plan, 20200901)
	}
	return e.rdns2020, nil
}

// Traces returns the cached traceroute corpus for one cloud (nVMs <= 0 uses
// the paper's §4.1 VM counts).
func (e *Env) Traces(year int, cloud string, nVMs int) ([][]tracesim.Traceroute, error) {
	var plan *netdb.Plan
	var err error
	switch year {
	case 2020:
		plan, err = e.Plan2020()
	case 2015:
		plan, err = e.Plan2015()
	default:
		return nil, fmt.Errorf("experiments: unknown year %d", year)
	}
	if err != nil {
		return nil, err
	}
	key := traceKey{year, cloud, nVMs}
	e.mu.Lock()
	if e.traces == nil {
		e.traces = make(map[traceKey][][]tracesim.Traceroute)
		e.tracesErr = make(map[traceKey]error)
	}
	if tr, ok := e.traces[key]; ok {
		err := e.tracesErr[key]
		e.mu.Unlock()
		return tr, err
	}
	e.mu.Unlock()

	engine := tracesim.New(plan, tracesim.DefaultOptions(int64(year)))
	vms, err := engine.VMs(cloud, nVMs)
	if err != nil {
		return nil, err
	}
	tr, err := engine.TraceAll(vms)

	e.mu.Lock()
	e.traces[key] = tr
	e.tracesErr[key] = err
	e.mu.Unlock()
	return tr, err
}

// Clouds lists the four providers in the paper's usual order.
func Clouds() []string { return []string{"Google", "Microsoft", "IBM", "Amazon"} }

// Runner is one registered experiment.
type Runner struct {
	ID, Title string
	Run       func(*Env, io.Writer) error
}

// Registry lists all experiments in paper order.
var Registry = []Runner{
	{"fig2", "Fig. 2: reachability under provider-free / Tier-1-free / hierarchy-free constraints", runFig2},
	{"table1", "Table 1: top-20 hierarchy-free reachability, 2015 vs 2020", runTable1},
	{"fig3", "Fig. 3: hierarchy-free reachability vs customer cone, all ASes", runFig3},
	{"fig4", "Fig. 4: unreachable ASes by type under hierarchy-free constraints", runFig4},
	{"fig6", "Fig. 6: reliance histogram per cloud", runFig6},
	{"table2", "Table 2: top-3 reliance per cloud", runTable2},
	{"fig7", "Fig. 7: route-leak detour CDFs (Microsoft, Amazon, IBM, Facebook)", runFig7},
	{"fig8", "Fig. 8: route-leak detour CDFs (Google)", runFig8},
	{"fig9", "Fig. 9: user-weighted route-leak detour CDFs (Google)", runFig9},
	{"fig10", "Fig. 10: Google leak resilience, 2015 vs 2020", runFig10},
	{"fig11", "Fig. 11: cloud vs transit PoP deployments", runFig11},
	{"fig12", "Fig. 12: population coverage within 500/700/1000 km of PoPs", runFig12},
	{"fig13", "Fig. 13 (App. E): path lengths over time, three weightings", runFig13},
	{"table3", "Table 3 (App. C): PoPs and rDNS confirmation per network", runTable3},
	{"appA", "Appendix A: simulated paths vs traced paths", runAppA},
	{"appB", "Appendix B: Sprint and Deutsche Telekom reliance on Tier-2s", runAppB},
	{"sec41", "§4.1: BGP-feed-visible vs combined cloud neighbor counts", runSec41},
	{"sec5", "§5: neighbor-inference FDR/FNR per methodology stage", runSec5},
	{"ablation", "Ablation: metrics on feed-only vs augmented vs ground-truth graphs", runAblation},
	{"ablation-ties", "Ablation: worst-case (all ties) vs tie-broken leak exposure", runTiesAblation},
	{"sensitivity", "Sensitivity: hierarchy-free reachability vs fraction of peerings missed", runSensitivity},
	{"hijack", "Extension: accidental leaks vs forged originations (prefix hijacks)", runHijack},
}

// ByID finds a registered experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
