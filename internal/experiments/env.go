// Package experiments reproduces every table and figure of the paper's
// evaluation over the synthetic Internet presets. Each experiment has a
// typed runner returning the same rows/series the paper reports, a text
// renderer, and an entry in the Registry used by cmd/flatnet and the
// benchmark harness.
//
// Absolute values differ from the paper's — the substrate is a synthetic
// topology (true-scale at 1.0: 69,488 ASes for 2020, matching the paper's
// measured Internet), not the authors' measurement testbed — but the
// shapes (who wins, by what factor, where curves cross) are the
// reproduction targets. EXPERIMENTS.md records paper-vs-measured values
// for every artifact.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"flatnet/internal/core"
	"flatnet/internal/netdb"
	"flatnet/internal/par"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/single"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// Env bundles the datasets experiments run over. Heavy artifacts (address
// plans, traceroute corpora) are built lazily; builds for distinct keys run
// concurrently, concurrent demands for the same key coalesce onto one build
// (per-key singleflight, no coarse lock), and only successful builds are
// memoized — a transient failure is retried by the next caller.
type Env struct {
	Scale float64

	In2020, In2015   *topogen.Internet
	M2020, M2015     *core.Metrics
	Pop2020, Pop2015 *population.Model

	// serial pins every build to the original one-artifact-at-a-time,
	// one-cloud-at-a-time behavior; the cold-start benchmark's baseline.
	serial bool

	// src, when non-nil, is the snapshot Reader backing this Env
	// (NewEnvFromSnapshot): lazy artifacts present in the snapshot are
	// decoded from it on first demand instead of being rebuilt.
	src *snapshot.Reader

	flights single.Group[string, any]

	mu       sync.Mutex // guards the memoization maps below, never held while building
	plan2020 *netdb.Plan
	plan2015 *netdb.Plan
	rdns2020 *rdns.Corpus
	engines  map[int]*tracesim.Engine
	traces   map[traceKey][][]tracesim.Traceroute

	// traceBuildHook, when set, is called at the start of every
	// trace-corpus build with the build's flight key; the concurrency
	// tests use it to hold two distinct builds open at once.
	traceBuildHook func(key string)
	// traceBuilds counts trace-corpus builds actually executed (not
	// coalesced or served from cache).
	traceBuilds atomic.Int32
}

// traceKey identifies one cached corpus; nVMs is the resolved VM count
// (requests with nVMs <= 0 are normalized to the paper's §4.1 counts).
type traceKey struct {
	year  int
	cloud string
	nVMs  int
}

// NewEnv generates both presets at the given scale (1.0 = 69,488 ASes for
// 2020, the paper's measured Internet). The CLI default is 0.04987 (~3.5k
// ASes), which keeps the whole-Internet sweeps under a minute on a laptop.
// The two presets (and their metrics and
// population models) are built concurrently; generation is deterministic
// per preset seed, so the result is identical to a serial build.
func NewEnv(scale float64) (*Env, error) {
	return newEnv(scale, false)
}

// NewEnvSerial is NewEnv with every build — presets here, lazy artifacts
// later — pinned to the original serial code path. It exists as the
// baseline BenchmarkEnvColdStart compares against and as a debugging
// fallback, mirroring the FLATNET_SCALAR_SWEEP/FLATNET_SCALAR_LEAK
// switches of the simulators.
func NewEnvSerial(scale float64) (*Env, error) {
	return newEnv(scale, true)
}

func newEnv(scale float64, serial bool) (*Env, error) {
	type parts struct {
		in  *topogen.Internet
		m   *core.Metrics
		pop *population.Model
	}
	specs := [2]topogen.Spec{topogen.Internet2020(scale), topogen.Internet2015(scale)}
	years := [2]int{2020, 2015}
	var built [2]parts
	workers := 2
	if serial {
		workers = 1
	}
	err := par.For(workers, 2, func(w int) func(i int) error {
		return func(i int) error {
			in, err := topogen.Generate(specs[i])
			if err != nil {
				return fmt.Errorf("experiments: generating %d preset: %w", years[i], err)
			}
			built[i] = parts{
				in:  in,
				m:   core.New(core.Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2}),
				pop: population.Build(in, 1.1),
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale:   scale,
		In2020:  built[0].in,
		In2015:  built[1].in,
		M2020:   built[0].m,
		M2015:   built[1].m,
		Pop2020: built[0].pop,
		Pop2015: built[1].pop,
		serial:  serial,
	}, nil
}

// Plan2020 lazily builds the 2020 address plan.
func (e *Env) Plan2020() (*netdb.Plan, error) {
	e.mu.Lock()
	p := e.plan2020
	e.mu.Unlock()
	if p != nil {
		return p, nil
	}
	v, _, err := e.flights.Do(context.Background(), "plan/2020", func() (any, error) {
		e.mu.Lock()
		p := e.plan2020
		e.mu.Unlock()
		if p != nil {
			return p, nil
		}
		var built *netdb.Plan
		var err error
		if e.src != nil && e.src.HasPlan(2020) {
			built, err = e.src.Plan(2020)
		} else {
			built, err = netdb.Build(e.In2020)
		}
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.plan2020 = built
		e.mu.Unlock()
		return built, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*netdb.Plan), nil
}

// Plan2015 lazily builds the 2015 address plan.
func (e *Env) Plan2015() (*netdb.Plan, error) {
	e.mu.Lock()
	p := e.plan2015
	e.mu.Unlock()
	if p != nil {
		return p, nil
	}
	v, _, err := e.flights.Do(context.Background(), "plan/2015", func() (any, error) {
		e.mu.Lock()
		p := e.plan2015
		e.mu.Unlock()
		if p != nil {
			return p, nil
		}
		var built *netdb.Plan
		var err error
		if e.src != nil && e.src.HasPlan(2015) {
			built, err = e.src.Plan(2015)
		} else {
			built, err = netdb.Build(e.In2015)
		}
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.plan2015 = built
		e.mu.Unlock()
		return built, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*netdb.Plan), nil
}

func (e *Env) plan(year int) (*netdb.Plan, error) {
	switch year {
	case 2020:
		return e.Plan2020()
	case 2015:
		return e.Plan2015()
	}
	return nil, fmt.Errorf("experiments: unknown year %d", year)
}

// RDNS2020 lazily synthesizes the 2020 rDNS corpus.
func (e *Env) RDNS2020() (*rdns.Corpus, error) {
	plan, err := e.Plan2020()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	c := e.rdns2020
	e.mu.Unlock()
	if c != nil {
		return c, nil
	}
	v, _, err := e.flights.Do(context.Background(), "rdns/2020", func() (any, error) {
		e.mu.Lock()
		c := e.rdns2020
		e.mu.Unlock()
		if c != nil {
			return c, nil
		}
		var built *rdns.Corpus
		if e.src != nil && e.src.HasRDNS(2020) {
			var err error
			if built, err = e.src.RDNS(2020); err != nil {
				return nil, err
			}
		} else {
			built = rdns.Synthesize(plan, 20200901)
		}
		e.mu.Lock()
		e.rdns2020 = built
		e.mu.Unlock()
		return built, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*rdns.Corpus), nil
}

// engine returns the year's shared trace engine (one per year so the
// per-city distance cache is shared across every corpus of that year).
func (e *Env) engine(year int) (*tracesim.Engine, error) {
	plan, err := e.plan(year)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.engines == nil {
		e.engines = make(map[int]*tracesim.Engine)
	}
	eng, ok := e.engines[year]
	if !ok {
		eng = tracesim.New(plan, tracesim.DefaultOptions(int64(year)))
		e.engines[year] = eng
	}
	return eng, nil
}

// lookupTraces serves a cached corpus. A request for n VM groups can be
// served as a prefix of a larger cached corpus of the same (year, cloud):
// VMs are selected per PoP in deployment order and each group's traces
// depend only on its own VM and the destination, so group i is identical
// in every corpus that includes it.
func (e *Env) lookupTraces(year int, cloud string, n int) ([][]tracesim.Traceroute, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if tr, ok := e.traces[traceKey{year, cloud, n}]; ok {
		return tr, true
	}
	if e.serial {
		return nil, false
	}
	for k, tr := range e.traces {
		if k.year == year && k.cloud == cloud && k.nVMs > n {
			return tr[:n:n], true
		}
	}
	return nil, false
}

func (e *Env) storeTraces(key traceKey, tr [][]tracesim.Traceroute) {
	e.mu.Lock()
	if e.traces == nil {
		e.traces = make(map[traceKey][][]tracesim.Traceroute)
	}
	e.traces[key] = tr
	e.mu.Unlock()
}

// Traces returns the cached traceroute corpus for one cloud (nVMs <= 0 uses
// the paper's §4.1 VM counts). A default-count request triggers one shared
// build of every paper cloud's corpus for that year — the per-destination
// propagation is cloud-independent, so the four campaigns cost a single
// sweep — while concurrent callers for other keys build in parallel and
// callers for the same key coalesce. Errors are returned but never cached.
func (e *Env) Traces(year int, cloud string, nVMs int) ([][]tracesim.Traceroute, error) {
	engine, err := e.engine(year)
	if err != nil {
		return nil, err
	}
	vms, err := engine.VMs(cloud, nVMs)
	if err != nil {
		return nil, err
	}
	n := len(vms)
	if tr, ok := e.lookupTraces(year, cloud, n); ok {
		return tr, nil
	}
	if e.src != nil {
		tr, ok, err := e.tracesFromSnapshot(year, cloud, n)
		if err != nil {
			return nil, err
		}
		if ok {
			e.storeTraces(traceKey{year, cloud, n}, tr)
			return tr, nil
		}
	}

	if e.serial {
		// Original behavior: one cloud at a time, serial propagation.
		e.traceBuilds.Add(1)
		tr, err := engine.TraceAllSerial(vms)
		if err != nil {
			return nil, err
		}
		e.storeTraces(traceKey{year, cloud, n}, tr)
		return tr, nil
	}

	defVMs, err := engine.VMs(cloud, 0)
	if err != nil {
		return nil, err
	}
	// The build stores into the cache and returns nothing: a joiner on the
	// shared per-year flight wants its own cloud's entry, not whichever
	// cloud the flight's leader asked for, so every caller re-reads the
	// cache after the flight completes.
	var flightKey string
	var build func() (any, error)
	if n == len(defVMs) {
		// Default-count request: build all paper clouds of this year in
		// one shared pass and populate every cloud's cache entry.
		flightKey = fmt.Sprintf("traces/%d", year)
		build = func() (any, error) {
			if _, ok := e.lookupTraces(year, cloud, n); ok {
				return nil, nil
			}
			if e.traceBuildHook != nil {
				e.traceBuildHook(flightKey)
			}
			e.traceBuilds.Add(1)
			clouds := Clouds()
			sets := make([][]tracesim.VM, len(clouds))
			for i, c := range clouds {
				set, err := engine.VMs(c, 0)
				if err != nil {
					return nil, err
				}
				sets[i] = set
			}
			all, err := engine.TraceAllMulti(sets)
			if err != nil {
				return nil, err
			}
			for i, c := range clouds {
				e.storeTraces(traceKey{year, c, len(sets[i])}, all[i])
			}
			return nil, nil
		}
	} else {
		flightKey = fmt.Sprintf("traces/%d/%s/%d", year, cloud, n)
		build = func() (any, error) {
			if _, ok := e.lookupTraces(year, cloud, n); ok {
				return nil, nil
			}
			if e.traceBuildHook != nil {
				e.traceBuildHook(flightKey)
			}
			e.traceBuilds.Add(1)
			all, err := engine.TraceAllMulti([][]tracesim.VM{vms})
			if err != nil {
				return nil, err
			}
			e.storeTraces(traceKey{year, cloud, n}, all[0])
			return nil, nil
		}
	}
	if _, _, err := e.flights.Do(context.Background(), flightKey, build); err != nil {
		return nil, err
	}
	if tr, ok := e.lookupTraces(year, cloud, n); ok {
		return tr, nil
	}
	return nil, fmt.Errorf("experiments: trace build for %s/%d left no corpus", cloud, year)
}

// Prewarm builds every lazy artifact the experiment registry consumes: both
// address plans, the rDNS corpus, and the default traceroute corpora of all
// paper clouds for 2020 (no registered experiment reads 2015 traces). In
// the default environment the builds overlap — the trace sweep, the rDNS
// synthesis, and the 2015 plan proceed concurrently, coalescing on the
// shared 2020 plan — while a serial environment runs them one after
// another. This is the cold-start path BenchmarkEnvColdStart measures.
func (e *Env) Prewarm() error {
	if e.serial {
		if _, err := e.Plan2020(); err != nil {
			return err
		}
		if _, err := e.Plan2015(); err != nil {
			return err
		}
		if _, err := e.RDNS2020(); err != nil {
			return err
		}
		for _, c := range Clouds() {
			if _, err := e.Traces(2020, c, 0); err != nil {
				return err
			}
		}
		return nil
	}
	tasks := []func() error{
		func() error { _, err := e.Traces(2020, "Google", 0); return err },
		func() error { _, err := e.RDNS2020(); return err },
		func() error { _, err := e.Plan2015(); return err },
	}
	return par.For(len(tasks), len(tasks), func(w int) func(i int) error {
		return func(i int) error { return tasks[i]() }
	})
}

// Clouds lists the four providers in the paper's usual order.
func Clouds() []string { return []string{"Google", "Microsoft", "IBM", "Amazon"} }

// Runner is one registered experiment.
type Runner struct {
	ID, Title string
	Run       func(*Env, io.Writer) error
}

// Registry lists all experiments in paper order.
var Registry = []Runner{
	{"fig2", "Fig. 2: reachability under provider-free / Tier-1-free / hierarchy-free constraints", runFig2},
	{"table1", "Table 1: top-20 hierarchy-free reachability, 2015 vs 2020", runTable1},
	{"fig3", "Fig. 3: hierarchy-free reachability vs customer cone, all ASes", runFig3},
	{"fig4", "Fig. 4: unreachable ASes by type under hierarchy-free constraints", runFig4},
	{"fig6", "Fig. 6: reliance histogram per cloud", runFig6},
	{"table2", "Table 2: top-3 reliance per cloud", runTable2},
	{"fig7", "Fig. 7: route-leak detour CDFs (Microsoft, Amazon, IBM, Facebook)", runFig7},
	{"fig8", "Fig. 8: route-leak detour CDFs (Google)", runFig8},
	{"fig9", "Fig. 9: user-weighted route-leak detour CDFs (Google)", runFig9},
	{"fig10", "Fig. 10: Google leak resilience, 2015 vs 2020", runFig10},
	{"fig11", "Fig. 11: cloud vs transit PoP deployments", runFig11},
	{"fig12", "Fig. 12: population coverage within 500/700/1000 km of PoPs", runFig12},
	{"fig13", "Fig. 13 (App. E): path lengths over time, three weightings", runFig13},
	{"table3", "Table 3 (App. C): PoPs and rDNS confirmation per network", runTable3},
	{"appA", "Appendix A: simulated paths vs traced paths", runAppA},
	{"appB", "Appendix B: Sprint and Deutsche Telekom reliance on Tier-2s", runAppB},
	{"sec41", "§4.1: BGP-feed-visible vs combined cloud neighbor counts", runSec41},
	{"sec5", "§5: neighbor-inference FDR/FNR per methodology stage", runSec5},
	{"ablation", "Ablation: metrics on feed-only vs augmented vs ground-truth graphs", runAblation},
	{"ablation-ties", "Ablation: worst-case (all ties) vs tie-broken leak exposure", runTiesAblation},
	{"sensitivity", "Sensitivity: hierarchy-free reachability vs fraction of peerings missed", runSensitivity},
	{"hijack", "Extension: accidental leaks vs forged originations (prefix hijacks)", runHijack},
	{"timeline", "Extension: hierarchy-free cloud reachability along the 2015–2025 timeline", runTimeline},
}

// ByID finds a registered experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
