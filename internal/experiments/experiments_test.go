package experiments

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
)

// The shared env is expensive (two topologies plus lazy traceroute
// corpora); build it once for the whole test binary.
var (
	testEnvOnce sync.Once
	testEnv     *Env
	testEnvErr  error
)

func getEnv(t *testing.T) *Env {
	t.Helper()
	testEnvOnce.Do(func() {
		testEnv, testEnvErr = NewEnv(0.0285)
	})
	if testEnvErr != nil {
		t.Fatal(testEnvErr)
	}
	return testEnv
}

func TestRegistryRunsAll(t *testing.T) {
	env := getEnv(t)
	seen := map[string]bool{}
	for _, r := range Registry {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %q", r.ID)
		}
		seen[r.ID] = true
		var buf bytes.Buffer
		if err := r.Run(env, &buf); err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", r.ID)
		}
	}
	if len(seen) < 19 {
		t.Errorf("only %d experiments registered", len(seen))
	}
	if _, ok := ByID("fig2"); !ok {
		t.Error("ByID(fig2) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestFig2Shape(t *testing.T) {
	env := getEnv(t)
	rows, err := Fig2(env)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.ProviderFree < r.Tier1Free || r.Tier1Free < r.HierarchyFree {
			t.Errorf("%s: reachability not monotone under growing exclusions: %d %d %d",
				r.Name, r.ProviderFree, r.Tier1Free, r.HierarchyFree)
		}
	}
	total := env.In2020.Graph.NumASes() - 1
	// Tier-1s have no providers: provider-free reachability is maximal.
	if byName["Level 3"].ProviderFree != total {
		t.Errorf("Level 3 provider-free = %d, want %d", byName["Level 3"].ProviderFree, total)
	}
	// The clouds sit in the upper tier of hierarchy-free reachability
	// (paper: 3 of the top 5).
	googleRank := 0
	for i, r := range rows {
		if r.Name == "Google" {
			googleRank = i + 1
		}
	}
	if googleRank == 0 || googleRank > 5 {
		t.Errorf("Google hierarchy-free rank among Fig2 networks = %d, want top 5", googleRank)
	}
	// Clouds beat the hierarchy-reliant Tier-1s.
	if byName["Google"].HierarchyFree <= byName["Sprint"].HierarchyFree {
		t.Error("Google does not beat Sprint on hierarchy-free reachability")
	}
}

func TestTable1Shape(t *testing.T) {
	env := getEnv(t)
	res, err := Table1(env, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top2020) != 20 || len(res.Top2015) != 20 {
		t.Fatalf("top lists: %d/%d", len(res.Top2015), len(res.Top2020))
	}
	// 2020: all four clouds near the top (paper: all in top 20, three in
	// top 5).
	for _, c := range Clouds() {
		r := res.CloudRanks2020[c]
		if r.Rank == 0 || r.Rank > 25 {
			t.Errorf("2020: %s rank = %d, want <= 25", c, r.Rank)
		}
	}
	// 2015: Amazon and Microsoft far down the ranking (paper: #206, #62).
	if r := res.CloudRanks2015["Amazon"]; r.Rank < 30 {
		t.Errorf("2015 Amazon rank = %d, want >> 20", r.Rank)
	}
	if g, m := res.CloudRanks2015["Google"], res.CloudRanks2015["Microsoft"]; g.Rank >= m.Rank {
		t.Errorf("2015: Google (#%d) should outrank Microsoft (#%d)", g.Rank, m.Rank)
	}
	// Reachability grew between years for the clouds.
	for _, c := range Clouds() {
		if res.CloudRanks2020[c].Pct <= res.CloudRanks2015[c].Pct {
			t.Errorf("%s hierarchy-free %% did not grow: %.1f -> %.1f",
				c, res.CloudRanks2015[c].Pct, res.CloudRanks2020[c].Pct)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	env := getEnv(t)
	res, err := Fig3(env)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline asymmetry: many networks reach far more than
	// their customer cones suggest (8,374 vs 51 at the same threshold).
	if res.HighReach < res.HighCone*10 {
		t.Errorf("high-reach ASes (%d) not >> high-cone ASes (%d)", res.HighReach, res.HighCone)
	}
	// Weak overall correlation outside the hierarchy; allow wide range
	// but it must not be ~1.
	if res.SpearmanRho > 0.9 {
		t.Errorf("cone and reach almost perfectly correlated (rho=%.2f)", res.SpearmanRho)
	}
	reachRank, coneRank := rankOf(res.Points, 1239)
	if reachRank <= coneRank {
		t.Errorf("Sprint: hierarchy-free rank (%d) should be far below cone rank (%d)", reachRank, coneRank)
	}
}

func TestFig4Shape(t *testing.T) {
	env := getEnv(t)
	rows, err := Fig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Unreachable == 0 {
			t.Errorf("%s: zero unreachable", r.Name)
			continue
		}
		sum := 0
		for _, n := range r.ByType {
			sum += n
		}
		if sum != r.Unreachable {
			t.Errorf("%s: type counts sum %d != %d", r.Name, sum, r.Unreachable)
		}
	}
}

func TestFig6Table2Shape(t *testing.T) {
	env := getEnv(t)
	figs, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		// §7.2: most networks have reliance ~1 (near the flat extreme).
		if f.Bins[0] == 0 {
			t.Errorf("%s: empty lowest bin", f.Cloud)
		}
		var total int
		for _, n := range f.Bins {
			total += n
		}
		if frac := float64(f.Bins[0]) / float64(total); frac < 0.8 {
			t.Errorf("%s: only %.2f of ASes in the lowest reliance bin; expected near-flat", f.Cloud, frac)
		}
	}
	rows, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Top) != 3 {
			t.Errorf("%s: top-%d reliance", r.Cloud, len(r.Top))
		}
	}
}

func TestLeakFigureShape(t *testing.T) {
	env := getEnv(t)
	fig, err := Fig8(env)
	if err != nil {
		t.Fatal(err)
	}
	means := map[bgpsim.LeakScenario]float64{}
	for _, c := range fig.Curves {
		means[c.Scenario] = c.MeanDetoured
		// CDFs are monotone and end at 1.
		for i := 1; i < len(c.CDF); i++ {
			if c.CDF[i] < c.CDF[i-1] {
				t.Errorf("%v: CDF not monotone", c.Scenario)
			}
		}
		if c.CDF[len(c.CDF)-1] < 0.999 {
			t.Errorf("%v: CDF does not reach 1", c.Scenario)
		}
	}
	if !(means[bgpsim.AnnounceAllLockAll] <= means[bgpsim.AnnounceAllLockT1T2] &&
		means[bgpsim.AnnounceAllLockT1T2] <= means[bgpsim.AnnounceAllLockT1] &&
		means[bgpsim.AnnounceAllLockT1] <= means[bgpsim.AnnounceAll]) {
		t.Errorf("locking does not monotonically help: %v", means)
	}
	if means[bgpsim.AnnounceHierarchy] <= means[bgpsim.AnnounceAll] {
		t.Error("hierarchy-only announcement should be less resilient than announce-to-all")
	}
	// Google's announce-to-all should beat the random-origin baseline.
	if means[bgpsim.AnnounceAll] >= fig.AvgResilience {
		t.Errorf("Google announce-to-all mean %.4f not below baseline %.4f",
			means[bgpsim.AnnounceAll], fig.AvgResilience)
	}
}

func TestFig12Shape(t *testing.T) {
	env := getEnv(t)
	res, err := Fig12(env)
	if err != nil {
		t.Fatal(err)
	}
	findRow := func(rows []Fig12Row, label string) Fig12Row {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("row %q missing", label)
		return Fig12Row{}
	}
	cw := findRow(res.CloudByContinent, "World")
	tw := findRow(res.TransitByContinent, "World")
	// Coverage monotone in radius.
	for _, r := range append(res.CloudByContinent, res.PerProvider...) {
		if !(r.Coverage[0] <= r.Coverage[1]+1e-9 && r.Coverage[1] <= r.Coverage[2]+1e-9) {
			t.Errorf("%s: coverage not monotone: %v", r.Label, r.Coverage)
		}
	}
	// Transit union covers at least as much as clouds worldwide (paper:
	// clouds slightly behind, ~4-5 points).
	if cw.Coverage[0] > tw.Coverage[0]+2 {
		t.Errorf("cloud world coverage (%.1f) above transit (%.1f)", cw.Coverage[0], tw.Coverage[0])
	}
	if tw.Coverage[0]-cw.Coverage[0] > 25 {
		t.Errorf("cloud world coverage too far behind transit: %.1f vs %.1f", cw.Coverage[0], tw.Coverage[0])
	}
}

func TestFig13Shape(t *testing.T) {
	env := getEnv(t)
	cells, err := Fig13(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 24 { // 4 clouds x 2 years x 3 weightings
		t.Fatalf("got %d cells", len(cells))
	}
	get := func(cloud string, year int, wt Fig13Weighting) Fig13Cell {
		for _, c := range cells {
			if c.Cloud == cloud && c.Year == year && c.Weighting == wt {
				return c
			}
		}
		t.Fatalf("cell missing")
		return Fig13Cell{}
	}
	for _, c := range cells {
		sum := c.Pct[0] + c.Pct[1] + c.Pct[2]
		if math.Abs(sum-100) > 0.5 {
			t.Errorf("%s/%d/%v: percentages sum to %.1f", c.Cloud, c.Year, c.Weighting, sum)
		}
	}
	// Google reaches a much larger user share directly than Amazon
	// (paper: 61.6% vs 17.8% in 2020).
	g := get("Google", 2020, WeightUsers)
	a := get("Amazon", 2020, WeightUsers)
	if g.Pct[0] <= a.Pct[0] {
		t.Errorf("Google direct user share (%.1f) not above Amazon (%.1f)", g.Pct[0], a.Pct[0])
	}
}

func TestAppAShape(t *testing.T) {
	env := getEnv(t)
	rows, err := AppA(env)
	if err != nil {
		t.Fatal(err)
	}
	byCloud := map[string]AppARow{}
	for _, r := range rows {
		byCloud[r.Cloud] = r
		if r.Traces == 0 {
			t.Fatalf("%s: no traces", r.Cloud)
		}
		if r.Contained < 0.5 {
			t.Errorf("%s: containment %.2f too low", r.Cloud, r.Contained)
		}
	}
	// Appendix A: Amazon's early exit gives it the lowest containment.
	if byCloud["Amazon"].Contained >= byCloud["Google"].Contained {
		t.Errorf("Amazon containment (%.3f) should be below Google's (%.3f)",
			byCloud["Amazon"].Contained, byCloud["Google"].Contained)
	}
}

func TestSec41Shape(t *testing.T) {
	env := getEnv(t)
	rows, err := Sec41(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Combined <= r.FeedOnly {
			t.Errorf("%s: augmentation added nothing (%d -> %d)", r.Cloud, r.FeedOnly, r.Combined)
		}
		if r.MissedFrac < 0.4 {
			t.Errorf("%s: feed misses only %.2f of neighbors; expected a large blind spot", r.Cloud, r.MissedFrac)
		}
	}
}

func TestAblationShape(t *testing.T) {
	env := getEnv(t)
	rows, err := Ablation(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.FeedOnlyPct <= r.AugmentedPct+1e-9) {
			t.Errorf("%s: augmentation reduced reachability: %.1f -> %.1f", r.Cloud, r.FeedOnlyPct, r.AugmentedPct)
		}
		if r.AugmentedPct-r.FeedOnlyPct < 5 {
			t.Errorf("%s: augmentation gained only %.1f points; the paper's central claim is a large gain",
				r.Cloud, r.AugmentedPct-r.FeedOnlyPct)
		}
	}
}

func TestAppBShape(t *testing.T) {
	env := getEnv(t)
	rows, err := AppB(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HierarchyFreeReach >= r.Tier1FreeReach {
			t.Errorf("%s: hierarchy-free (%d) not below Tier-1-free (%d)",
				r.Name, r.HierarchyFreeReach, r.Tier1FreeReach)
		}
		if len(r.TopTier2) == 0 {
			t.Errorf("%s: no Tier-2 reliance entries", r.Name)
		}
		// Bypassing just the top Tier-2s should explain most of the drop
		// (the counterfactual sits near the full hierarchy-free value).
		drop := r.Tier1FreeReach - r.HierarchyFreeReach
		explained := r.Tier1FreeReach - r.BypassTopTier2Reach
		if float64(explained) < 0.5*float64(drop) {
			t.Errorf("%s: top-6 Tier-2s explain only %d of %d drop", r.Name, explained, drop)
		}
	}
}

func TestTiesAblationShape(t *testing.T) {
	env := getEnv(t)
	rows, err := TiesAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeanBroken > r.MeanTies+1e-9 {
			t.Errorf("%s: tie-broken mean detours (%.4f) exceed worst-case (%.4f)", r.Cloud, r.MeanBroken, r.MeanTies)
		}
		if r.ReachTies != r.ReachBroken {
			t.Errorf("%s: reachability depends on tie handling (%d vs %d)", r.Cloud, r.ReachTies, r.ReachBroken)
		}
	}
}

func TestSensitivityShape(t *testing.T) {
	env := getEnv(t)
	rows, err := Sensitivity(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, cloud := range Clouds() {
		base, ok := sensitivityBaseline(rows, cloud)
		if !ok {
			t.Fatalf("%s: no zero-miss row", cloud)
		}
		want, err := env.M2020.Reachability(env.In2020.Clouds[cloud], core.HierarchyFree)
		if err != nil {
			t.Fatal(err)
		}
		if base.Reach != want {
			t.Errorf("%s: zero-miss reach %d != headline %d", cloud, base.Reach, want)
		}
		// Reachability must be non-increasing in the miss fraction.
		prev := -1
		prevFrac := -1.0
		for _, r := range rows {
			if r.Cloud != cloud {
				continue
			}
			if prev >= 0 && r.MissFrac > prevFrac && r.Reach > prev {
				t.Errorf("%s: reach grew from %d to %d as miss rose to %.0f%%",
					cloud, prev, r.Reach, 100*r.MissFrac)
			}
			prev, prevFrac = r.Reach, r.MissFrac
		}
	}
}

// The direct mask composition the sensitivity sweep uses for its degraded
// pairs must be interchangeable with the core.Mask overlay it replaces.
func TestHierarchyFreeReachMatchesCore(t *testing.T) {
	env := getEnv(t)
	in := env.In2020
	links := in.Graph.Links()
	for _, cloud := range Clouds() {
		asn := in.Clouds[cloud]
		peers := in.Graph.Peers(asn)
		rng := rand.New(rand.NewSource(int64(asn)))
		perm := rng.Perm(len(peers))
		drop := make(map[astopo.ASN]bool, len(peers)/2)
		for i := 0; i < len(peers)/2; i++ {
			drop[peers[perm[i]]] = true
		}
		buf := degradedLinks(nil, links, asn, drop)
		g := astopo.FromLinks(buf)
		got, err := hierarchyFreeReach(g, asn, in.Tier1, in.Tier2, nil)
		if err != nil {
			t.Fatalf("%s: %v", cloud, err)
		}
		m := core.New(core.Dataset{Graph: g, Tier1: in.Tier1, Tier2: in.Tier2})
		want, err := m.Reachability(asn, core.HierarchyFree)
		if err != nil {
			t.Fatalf("%s: %v", cloud, err)
		}
		if got != want {
			t.Errorf("%s: direct mask reach %d != core.New reach %d", cloud, got, want)
		}
	}
}

func TestTablesForAllCSVers(t *testing.T) {
	env := getEnv(t)
	n := 0
	for _, r := range Registry {
		if !HasTables(r.ID) {
			continue
		}
		n++
		tables, err := Tables(env, r.ID)
		if err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s: no tables", r.ID)
		}
		for _, tbl := range tables {
			if tbl.Name == "" || len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
				t.Errorf("%s/%s: empty table", r.ID, tbl.Name)
				continue
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("%s/%s row %d: %d cells, header has %d", r.ID, tbl.Name, i, len(row), len(tbl.Header))
					break
				}
			}
			var buf bytes.Buffer
			if err := tbl.WriteCSV(&buf); err != nil {
				t.Errorf("%s/%s: %v", r.ID, tbl.Name, err)
			}
		}
	}
	if n < 16 {
		t.Errorf("only %d experiments have CSV output", n)
	}
	if _, err := Tables(env, "fig11"); err == nil {
		t.Error("fig11 (map-only) should have no CSV output")
	}
}

func TestHijackShape(t *testing.T) {
	env := getEnv(t)
	rows, err := Hijack(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HijackMean < r.LeakMean {
			t.Errorf("%s: hijack mean (%.4f) below leak mean (%.4f)", r.Cloud, r.HijackMean, r.LeakMean)
		}
		if r.LockedHijackMean > r.HijackMean {
			t.Errorf("%s: T1+T2 locking made hijacks worse (%.4f > %.4f)",
				r.Cloud, r.LockedHijackMean, r.HijackMean)
		}
	}
}
