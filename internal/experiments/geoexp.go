package experiments

import (
	"fmt"
	"io"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
)

// transitProvidersForGeo lists the Tier-1/Tier-2 networks whose PoP
// deployments Fig. 11/12 compare against the clouds (the paper's §9
// cohort).
func transitProvidersForGeo(in *topogen.Internet) []astopo.ASN {
	list := []astopo.ASN{
		2914, 6939, 7018, 6453, 3491, 1273, 6461, 1239, 12956, 1299, 6762, 5511, 4637, 3257,
	}
	var out []astopo.ASN
	for _, a := range list {
		if len(in.PoPsOf(a)) > 0 {
			out = append(out, a)
		}
	}
	return out
}

func cloudPoPUnion(in *topogen.Internet) []geo.CityID {
	var sets [][]geo.CityID
	for _, c := range Clouds() {
		sets = append(sets, in.PoPsOf(in.Clouds[c]))
	}
	return geo.Union(sets...)
}

func transitPoPUnion(in *topogen.Internet) []geo.CityID {
	var sets [][]geo.CityID
	for _, a := range transitProvidersForGeo(in) {
		sets = append(sets, in.PoPsOf(a))
	}
	return geo.Union(sets...)
}

// Fig11Result classifies PoP cities as cloud-only, transit-only, or both.
type Fig11Result struct {
	Deploy geo.DeploymentMap
	// CloudOnlyNames lists the cloud-exclusive cities (the paper finds
	// exactly Shanghai and Beijing).
	CloudOnlyNames []string
}

// Fig11 compares the cloud and transit PoP footprints.
func Fig11(env *Env) (*Fig11Result, error) {
	in := env.In2020
	dm := geo.CompareDeployments(cloudPoPUnion(in), transitPoPUnion(in))
	res := &Fig11Result{Deploy: dm}
	cities := geo.Cities()
	for _, id := range dm.CloudOnly {
		res.CloudOnlyNames = append(res.CloudOnlyNames, cities[id].Name)
	}
	sort.Strings(res.CloudOnlyNames)
	return res, nil
}

func runFig11(env *Env, w io.Writer) error {
	res, err := Fig11(env)
	if err != nil {
		return err
	}
	// Terminal rendering of the deployment map: B = both cohorts,
	// T = transit only, C = cloud only, dots = other gazetteer cities.
	markers := map[geo.CityID]rune{}
	for _, id := range res.Deploy.Both {
		markers[id] = 'B'
	}
	for _, id := range res.Deploy.TransitOnly {
		markers[id] = 'T'
	}
	for _, id := range res.Deploy.CloudOnly {
		markers[id] = 'C'
	}
	if err := geo.RenderASCIIMap(w, markers, []rune{'B', 'T', 'C'}, 100); err != nil {
		return err
	}
	fmt.Fprintln(w, "B = cloud+transit PoPs, T = transit only, C = cloud only")
	fmt.Fprintf(w, "PoP cities: both=%d transit-only=%d cloud-only=%d\n",
		len(res.Deploy.Both), len(res.Deploy.TransitOnly), len(res.Deploy.CloudOnly))
	fmt.Fprintf(w, "cloud-only cities: %v\n", res.CloudOnlyNames)
	// Continental spread of transit-only cities (the paper: more unique
	// transit locations in South America, Africa, the Middle East).
	cities := geo.Cities()
	byCont := map[geo.Continent]int{}
	for _, id := range res.Deploy.TransitOnly {
		byCont[cities[id].Continent]++
	}
	for _, cont := range geo.Continents() {
		fmt.Fprintf(w, "  transit-only in %-14s %d\n", cont.String()+":", byCont[cont])
	}
	return nil
}

// Fig12Row is coverage at the paper's three radii.
type Fig12Row struct {
	Label    string
	Coverage [3]float64 // 500, 700, 1000 km
}

// Fig12Result holds per-continent rows for both cohorts (Fig. 12a) and
// per-provider rows (Fig. 12b).
type Fig12Result struct {
	CloudByContinent   []Fig12Row
	TransitByContinent []Fig12Row
	PerProvider        []Fig12Row
}

// Fig12 computes population coverage within 500/700/1000 km of PoPs.
func Fig12(env *Env) (*Fig12Result, error) {
	in := env.In2020
	cloud := cloudPoPUnion(in)
	transit := transitPoPUnion(in)
	res := &Fig12Result{}

	continentRows := func(pops []geo.CityID) []Fig12Row {
		var rows []Fig12Row
		world := Fig12Row{Label: "World"}
		for i, r := range geo.PaperRadiiKm {
			world.Coverage[i] = geo.CoveragePct(pops, r)
		}
		rows = append(rows, world)
		for _, cont := range geo.Continents() {
			row := Fig12Row{Label: cont.String()}
			for i, r := range geo.PaperRadiiKm {
				row.Coverage[i] = geo.CoverageByContinent(pops, r)[cont]
			}
			rows = append(rows, row)
		}
		return rows
	}
	res.CloudByContinent = continentRows(cloud)
	res.TransitByContinent = continentRows(transit)

	providers := append([]astopo.ASN{}, transitProvidersForGeo(in)...)
	for _, c := range Clouds() {
		providers = append(providers, in.Clouds[c])
	}
	for _, a := range providers {
		row := Fig12Row{Label: in.NameOf(a)}
		for i, r := range geo.PaperRadiiKm {
			row.Coverage[i] = geo.CoveragePct(in.PoPsOf(a), r)
		}
		res.PerProvider = append(res.PerProvider, row)
	}
	sort.Slice(res.PerProvider, func(i, j int) bool {
		return res.PerProvider[i].Coverage[0] < res.PerProvider[j].Coverage[0]
	})
	return res, nil
}

func runFig12(env *Env, w io.Writer) error {
	res, err := Fig12(env)
	if err != nil {
		return err
	}
	printRows := func(title string, rows []Fig12Row) {
		fmt.Fprintf(w, "%s\n%-16s %8s %8s %8s\n", title, "", "500km", "700km", "1000km")
		for _, r := range rows {
			fmt.Fprintf(w, "%-16s %7.1f%% %7.1f%% %7.1f%%\n", r.Label, r.Coverage[0], r.Coverage[1], r.Coverage[2])
		}
	}
	printRows("cloud providers (union), by continent:", res.CloudByContinent)
	printRows("transit providers (union), by continent:", res.TransitByContinent)
	printRows("per provider (sorted ascending by 500 km coverage):", res.PerProvider)
	return nil
}

// Table3Row reproduces Appendix C for one network.
type Table3Row struct {
	Name      string
	AS        astopo.ASN
	PoPs      int
	Hostnames int
	PctRDNS   float64
}

// Table3 confirms PoPs from synthesized rDNS.
func Table3(env *Env) ([]Table3Row, error) {
	in := env.In2020
	corpus, err := env.RDNS2020()
	if err != nil {
		return nil, err
	}
	networks := append([]astopo.ASN{}, transitProvidersForGeo(in)...)
	for _, c := range Clouds() {
		networks = append(networks, in.Clouds[c])
	}
	var rows []Table3Row
	for _, a := range networks {
		conv := rdns.ConventionFor(a, in.NameOf(a))
		confirmed, total, hostnames := rdns.ConfirmedPoPs(in, corpus, a, conv.Regexp)
		row := Table3Row{Name: in.NameOf(a), AS: a, PoPs: total, Hostnames: hostnames}
		if total > 0 {
			row.PctRDNS = 100 * float64(confirmed) / float64(total)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].PctRDNS > rows[j].PctRDNS })
	return rows, nil
}

func runTable3(env *Env, w io.Writer) error {
	rows, err := Table3(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %8s %12s %8s\n", "network", "PoPs", "hostnames", "% rDNS")
	var confirmedSum, totalSum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8d %12d %7.1f%%\n", r.Name, r.PoPs, r.Hostnames, r.PctRDNS)
		confirmedSum += r.PctRDNS / 100 * float64(r.PoPs)
		totalSum += float64(r.PoPs)
	}
	fmt.Fprintf(w, "overall: %.0f%% of PoPs confirmed via rDNS (paper: 73%%)\n", 100*confirmedSum/totalSum)
	return nil
}
