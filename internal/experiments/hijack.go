package experiments

import (
	"context"
	"fmt"
	"io"

	"flatnet/internal/bgpsim"
)

// HijackRow compares a cloud's exposure to accidental leaks and to forged
// originations (prefix hijacks), which §8.1 calls "intentional malicious
// route leaks".
type HijackRow struct {
	Cloud                  string
	LeakMean, HijackMean   float64
	LeakWorst, HijackWorst float64
	// LockedHijackMean is the hijack exposure with Tier-1+Tier-2 peer
	// locking deployed — how much the paper's §8.2 defense helps against
	// deliberate attacks.
	LockedHijackMean float64
}

// Hijack runs the comparison for every cloud.
func Hijack(env *Env) ([]HijackRow, error) {
	in := env.In2020
	var rows []HijackRow
	for _, cloud := range Clouds() {
		origin := in.Clouds[cloud]
		leakers := bgpsim.SampleLeakers(in.Graph, origin, leakTrialsPerConfig/2, int64(origin)+7)
		row := HijackRow{Cloud: cloud}
		run := func(sweep *bgpsim.LeakSweep) (mean, worst float64, err error) {
			trials, err := sweep.Trials(context.Background(), leakers, nil)
			if err != nil {
				return 0, 0, err
			}
			for _, tr := range trials {
				mean += tr.DetouredFrac
				if tr.DetouredFrac > worst {
					worst = tr.DetouredFrac
				}
			}
			return mean / float64(len(trials)), worst, nil
		}
		// The leak and hijack runs share one pre-pass snapshot (WithHijack);
		// only the locked configuration changes the propagation and needs
		// its own sweep.
		sweep, err := bgpsim.NewLeakSweep(in.Graph, bgpsim.Config{Origin: origin})
		if err != nil {
			return nil, err
		}
		if row.LeakMean, row.LeakWorst, err = run(sweep); err != nil {
			return nil, err
		}
		hij := sweep.WithHijack(true)
		row.HijackMean, row.HijackWorst, err = run(hij)
		hij.Release()
		sweep.Release()
		if err != nil {
			return nil, err
		}
		lockCfg := bgpsim.ScenarioConfig(in.Graph, origin, in.Tier1, in.Tier2, bgpsim.AnnounceAllLockT1T2)
		lockCfg.Hijack = true
		lockSweep, err := bgpsim.NewLeakSweep(in.Graph, lockCfg)
		if err != nil {
			return nil, err
		}
		row.LockedHijackMean, _, err = run(lockSweep)
		lockSweep.Release()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runHijack(env *Env, w io.Writer) error {
	rows, err := Hijack(env)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "accidental leaks vs forged originations (prefix hijacks), announce-to-all")
	fmt.Fprintf(w, "%-10s %11s %13s %12s %14s %18s\n",
		"cloud", "leak mean", "hijack mean", "leak worst", "hijack worst", "hijack+T1T2 lock")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.2f%% %12.2f%% %11.2f%% %13.2f%% %17.2f%%\n",
			r.Cloud, 100*r.LeakMean, 100*r.HijackMean, 100*r.LeakWorst, 100*r.HijackWorst,
			100*r.LockedHijackMean)
	}
	return nil
}
