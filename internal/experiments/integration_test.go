package experiments

import (
	"bytes"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
)

// TestSerial1RoundTripPreservesMetrics exercises the "drop in real CAIDA
// data" path end to end: export the synthetic topology in serial-1 format,
// re-parse it as a fresh dataset, and verify the paper's metrics are
// bit-identical — the guarantee a user replacing our generator with a real
// .as-rel file relies on.
func TestSerial1RoundTripPreservesMetrics(t *testing.T) {
	env := getEnv(t)
	in := env.In2020

	var buf bytes.Buffer
	if err := astopo.WriteRelationships(&buf, in.Graph); err != nil {
		t.Fatal(err)
	}
	g2, err := astopo.ReadRelationships(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumASes() != in.Graph.NumASes() || g2.NumLinks() != in.Graph.NumLinks() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			g2.NumASes(), g2.NumLinks(), in.Graph.NumASes(), in.Graph.NumLinks())
	}
	m2 := core.New(core.Dataset{Graph: g2, Tier1: in.Tier1, Tier2: in.Tier2})
	for _, cloud := range Clouds() {
		asn := in.Clouds[cloud]
		for _, kind := range []core.Kind{core.ProviderFree, core.Tier1Free, core.HierarchyFree} {
			want, err := env.M2020.Reachability(asn, kind)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m2.Reachability(asn, kind)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s %v: %d after round trip, want %d", cloud, kind, got, want)
			}
		}
	}
}

// TestCliqueRecoveryFromGraph verifies that the AS-Rank-style clique
// detection recovers the constructed Tier-1 set from the bare graph — i.e.
// a user with only a relationship file can derive the exclusion sets.
func TestCliqueRecoveryFromGraph(t *testing.T) {
	env := getEnv(t)
	in := env.In2020
	clique := in.Graph.Clique()
	found := astopo.NewASSet(clique...)
	missing := 0
	for a := range in.Tier1 {
		if !found.Has(a) {
			missing++
			t.Logf("Tier-1 AS%d (%s) not recovered", a, in.NameOf(a))
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d Tier-1s not recovered by clique detection", missing, len(in.Tier1))
	}
	// The provider-free Tier-2s (HE, PCCW, Liberty Global) peer with the
	// whole clique, so they may legitimately be absorbed into it; anything
	// else is a false member.
	allowed := astopo.NewASSet(6939, 3491, 6830)
	for _, a := range clique {
		if !in.Tier1.Has(a) && !allowed.Has(a) {
			t.Errorf("clique contains unexpected AS%d (%s)", a, in.NameOf(a))
		}
	}
}

// TestProviderFreeDominatesCone checks a true containment invariant: the
// customer cone reaches its members over pure p2c chains that can never
// pass through the origin's own transit providers (that would be a p2c
// cycle), so provider-free reachability >= cone size - 1 for every AS.
// (Hierarchy-free reachability does NOT dominate the cone: a Tier-2 ISP
// can sit inside a large transit's cone, and excluding it cuts off its
// single-homed subtree — the effect Appendix B studies.)
func TestProviderFreeDominatesCone(t *testing.T) {
	env := getEnv(t)
	all, err := env.M2020.ReachabilityAll(core.ProviderFree)
	if err != nil {
		t.Fatal(err)
	}
	cones := env.In2020.Graph.ConeSizes()
	viol := 0
	for i := range cones {
		// Cone includes the AS itself; reach does not.
		if all[i] < cones[i]-1 {
			viol++
			if viol <= 5 {
				t.Errorf("AS%d: provider-free reach %d < cone-1 %d",
					env.In2020.Graph.ASNAt(i), all[i], cones[i]-1)
			}
		}
	}
	if viol > 5 {
		t.Errorf("... and %d more violations", viol-5)
	}
}
