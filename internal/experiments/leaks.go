package experiments

import (
	"context"
	"fmt"
	"io"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/topogen"
)

// leakTrialsPerConfig scales the paper's 5,000 simulations per
// configuration down with the topology (enough for stable CDFs at 1:7
// scale).
const leakTrialsPerConfig = 400

// cdfGrid is where the detour CDFs are evaluated (percent of ASes).
var cdfGrid = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.75, 1.0}

// LeakCurve is one scenario's CDF.
type LeakCurve struct {
	Scenario bgpsim.LeakScenario
	// CDF[i] is the fraction of misconfigured ASes detouring at most
	// cdfGrid[i] of the Internet.
	CDF []float64
	// MeanDetoured is the average detoured fraction across trials.
	MeanDetoured float64
}

// LeakFigure is one panel of Figs. 7/8/9: all scenarios for one origin,
// plus the random-origin average-resilience baseline.
type LeakFigure struct {
	Origin        string
	OriginASN     astopo.ASN
	Curves        []LeakCurve
	AvgResilience float64
	// UserWeighted marks Fig. 9-style population weighting.
	UserWeighted bool
}

// Grid exposes the CDF evaluation points.
func (LeakFigure) Grid() []float64 { return cdfGrid }

// leakFigure runs all scenarios for one origin on one preset. classes,
// when non-nil, dedups sampled leakers by origin equivalence class —
// byte-identical on unweighted runs; weighted runs copy the classmate's
// trial with an O(1) user-fraction correction (see bgpsim.TrialsN).
func leakFigure(in *topogen.Internet, classes *bgpsim.ClassIndex, originName string, origin astopo.ASN, trials int, weighted bool, weights []float64) (*LeakFigure, error) {
	fig := &LeakFigure{Origin: originName, OriginASN: origin, UserWeighted: weighted}
	leakers := bgpsim.SampleLeakers(in.Graph, origin, trials, int64(origin))
	// One explicit LeakSweep per scenario: each configuration's leak-free
	// pre-pass runs once, every trial replays against its snapshot, and the
	// batch engines behind Trials are pooled across scenarios.
	for _, scen := range bgpsim.LeakScenarios() {
		cfg := bgpsim.ScenarioConfig(in.Graph, origin, in.Tier1, in.Tier2, scen)
		var w []float64
		if weighted {
			w = weights
		}
		sweep, err := bgpsim.NewLeakSweep(in.Graph, cfg)
		if err != nil {
			return nil, err
		}
		sweep.SetClasses(classes)
		trialsRes, err := sweep.Trials(context.Background(), leakers, w)
		sweep.Release()
		if err != nil {
			return nil, err
		}
		curve := LeakCurve{Scenario: scen, CDF: bgpsim.CDF(trialsRes, cdfGrid, weighted)}
		for _, tr := range trialsRes {
			if weighted {
				curve.MeanDetoured += tr.DetouredUserFrac
			} else {
				curve.MeanDetoured += tr.DetouredFrac
			}
		}
		curve.MeanDetoured /= float64(len(trialsRes))
		fig.Curves = append(fig.Curves, curve)
	}
	asFrac, userFrac, err := bgpsim.AverageResilience(in.Graph, 20, 20, 0xA0E5, weights)
	if err != nil {
		return nil, err
	}
	if weighted {
		fig.AvgResilience = userFrac
	} else {
		fig.AvgResilience = asFrac
	}
	return fig, nil
}

// Fig7 runs the leak panels for Microsoft, Amazon, IBM, and Facebook.
func Fig7(env *Env) ([]*LeakFigure, error) {
	in := env.In2020
	panels := []struct {
		name string
		asn  astopo.ASN
	}{
		{"Microsoft", in.Clouds["Microsoft"]},
		{"Amazon", in.Clouds["Amazon"]},
		{"IBM", in.Clouds["IBM"]},
		{"Facebook", in.Hypergiants["Facebook"]},
	}
	var out []*LeakFigure
	for _, p := range panels {
		fig, err := leakFigure(in, env.M2020.SweepClasses(), p.name, p.asn, leakTrialsPerConfig, false, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// Fig8 runs the Google panel.
func Fig8(env *Env) (*LeakFigure, error) {
	return leakFigure(env.In2020, env.M2020.SweepClasses(), "Google", env.In2020.Clouds["Google"], leakTrialsPerConfig, false, nil)
}

// Fig9 runs the user-population-weighted Google panel.
func Fig9(env *Env) (*LeakFigure, error) {
	weights := env.Pop2020.WeightsDense(env.In2020.Graph)
	return leakFigure(env.In2020, env.M2020.SweepClasses(), "Google", env.In2020.Clouds["Google"], leakTrialsPerConfig, true, weights)
}

// Fig10Result compares Google's announce-to-all resilience across years.
type Fig10Result struct {
	Grid               []float64
	CDF2015, CDF2020   []float64
	Mean2015, Mean2020 float64
}

// Fig10 runs the 2015-vs-2020 comparison.
func Fig10(env *Env) (*Fig10Result, error) {
	run := func(in *topogen.Internet, classes *bgpsim.ClassIndex) ([]float64, float64, error) {
		origin := in.Clouds["Google"]
		leakers := bgpsim.SampleLeakers(in.Graph, origin, leakTrialsPerConfig, 77)
		sweep, err := bgpsim.NewLeakSweep(in.Graph, bgpsim.Config{Origin: origin})
		if err != nil {
			return nil, 0, err
		}
		sweep.SetClasses(classes)
		trials, err := sweep.Trials(context.Background(), leakers, nil)
		sweep.Release()
		if err != nil {
			return nil, 0, err
		}
		var mean float64
		for _, tr := range trials {
			mean += tr.DetouredFrac
		}
		return bgpsim.CDF(trials, cdfGrid, false), mean / float64(len(trials)), nil
	}
	res := &Fig10Result{Grid: cdfGrid}
	var err error
	if res.CDF2015, res.Mean2015, err = run(env.In2015, env.M2015.SweepClasses()); err != nil {
		return nil, err
	}
	if res.CDF2020, res.Mean2020, err = run(env.In2020, env.M2020.SweepClasses()); err != nil {
		return nil, err
	}
	return res, nil
}

func renderLeakFigure(w io.Writer, fig *LeakFigure) {
	unit := "ASes"
	if fig.UserWeighted {
		unit = "users"
	}
	fmt.Fprintf(w, "%s (avg resilience baseline: %.3f of %s detoured on average)\n", fig.Origin, fig.AvgResilience, unit)
	fmt.Fprintf(w, "  %-38s", "scenario \\ detoured <=")
	for _, x := range cdfGrid {
		fmt.Fprintf(w, " %5.0f%%", 100*x)
	}
	fmt.Fprintf(w, " %8s\n", "mean")
	for _, c := range fig.Curves {
		fmt.Fprintf(w, "  %-38s", c.Scenario)
		for _, v := range c.CDF {
			fmt.Fprintf(w, " %5.2f ", v)
		}
		fmt.Fprintf(w, " %7.4f\n", c.MeanDetoured)
	}
}

func runFig7(env *Env, w io.Writer) error {
	figs, err := Fig7(env)
	if err != nil {
		return err
	}
	for _, f := range figs {
		renderLeakFigure(w, f)
	}
	return nil
}

func runFig8(env *Env, w io.Writer) error {
	fig, err := Fig8(env)
	if err != nil {
		return err
	}
	renderLeakFigure(w, fig)
	return nil
}

func runFig9(env *Env, w io.Writer) error {
	fig, err := Fig9(env)
	if err != nil {
		return err
	}
	renderLeakFigure(w, fig)
	return nil
}

func runFig10(env *Env, w io.Writer) error {
	res, err := Fig10(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Google announce-to-all, mean detoured: 2015=%.4f 2020=%.4f\n", res.Mean2015, res.Mean2020)
	fmt.Fprintf(w, "%-10s", "detoured<=")
	for _, x := range res.Grid {
		fmt.Fprintf(w, " %5.0f%%", 100*x)
	}
	fmt.Fprintf(w, "\n%-10s", "2015")
	for _, v := range res.CDF2015 {
		fmt.Fprintf(w, " %5.2f ", v)
	}
	fmt.Fprintf(w, "\n%-10s", "2020")
	for _, v := range res.CDF2020 {
		fmt.Fprintf(w, " %5.2f ", v)
	}
	fmt.Fprintln(w)
	return nil
}
