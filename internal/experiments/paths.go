package experiments

import (
	"fmt"
	"io"

	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
	"flatnet/internal/population"
	"flatnet/internal/topogen"
)

// Fig13Weighting names the three bar weightings of Appendix E.
type Fig13Weighting int

const (
	// WeightASes counts every AS equally.
	WeightASes Fig13Weighting = iota
	// WeightEyeballs counts only eyeball (user-hosting) ASes.
	WeightEyeballs
	// WeightUsers weights eyeball ASes by their user population.
	WeightUsers
)

func (wt Fig13Weighting) String() string {
	switch wt {
	case WeightASes:
		return "ASes"
	case WeightEyeballs:
		return "eyeball ASes"
	case WeightUsers:
		return "users"
	}
	return "unknown"
}

// Fig13Cell is the 1 / 2 / 3+ hop split for one (cloud, year, weighting).
type Fig13Cell struct {
	Cloud     string
	Year      int
	Weighting Fig13Weighting
	// Pct[0] is the share reached in 1 AS hop (direct peering/transit),
	// Pct[1] in 2 hops, Pct[2] in 3 or more.
	Pct [3]float64
}

// Fig13 emulates each cloud announcing a prefix in both years and bins best
// path lengths, under the three weightings.
func Fig13(env *Env) ([]Fig13Cell, error) {
	var out []Fig13Cell
	years := []struct {
		year int
		in   *topogen.Internet
		m    *core.Metrics
		pop  *population.Model
	}{
		{2015, env.In2015, env.M2015, env.Pop2015},
		{2020, env.In2020, env.M2020, env.Pop2020},
	}
	for _, y := range years {
		for _, cloud := range Clouds() {
			asn := y.in.Clouds[cloud]
			res, err := y.m.Propagate(asn, core.Full, false)
			if err != nil {
				return nil, err
			}
			for _, wt := range []Fig13Weighting{WeightASes, WeightEyeballs, WeightUsers} {
				cell := Fig13Cell{Cloud: cloud, Year: y.year, Weighting: wt}
				var sums [3]float64
				var total float64
				g := y.in.Graph
				for i, c := range res.Class {
					if c == bgpsim.ClassNone || int32(i) == res.Origin {
						continue
					}
					a := g.ASNAt(i)
					var weight float64
					switch wt {
					case WeightASes:
						weight = 1
					case WeightEyeballs:
						if y.pop.IsEyeball(a) {
							weight = 1
						}
					case WeightUsers:
						weight = y.pop.Users(a)
					}
					if weight == 0 {
						continue
					}
					bin := int(res.Dist[i]) - 1
					if bin > 2 {
						bin = 2
					}
					if bin < 0 {
						bin = 0
					}
					sums[bin] += weight
					total += weight
				}
				if total > 0 {
					for b := range sums {
						cell.Pct[b] = 100 * sums[b] / total
					}
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}

func runFig13(env *Env, w io.Writer) error {
	cells, err := Fig13(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-5s %-14s %8s %8s %8s\n", "cloud", "year", "weighting", "1 hop", "2 hops", "3+ hops")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-5d %-14s %7.1f%% %7.1f%% %7.1f%%\n",
			c.Cloud, c.Year, c.Weighting, c.Pct[0], c.Pct[1], c.Pct[2])
	}
	return nil
}

// AppARow is one cloud's path-containment rate.
type AppARow struct {
	Cloud string
	// Contained is the fraction of destination-reaching traceroutes
	// whose AS path is one of the simulated tied-best paths.
	Contained float64
	Traces    int
}

// AppA validates simulated paths against traced paths (the paper: 73.3%
// Amazon, 91.9% Google, 82.9% IBM, 85.4% Microsoft).
func AppA(env *Env) ([]AppARow, error) {
	var out []AppARow
	for _, cloud := range Clouds() {
		groups, err := env.Traces(2020, cloud, 0)
		if err != nil {
			return nil, err
		}
		row := AppARow{Cloud: cloud}
		contained := 0
		for _, group := range groups {
			for i := range group {
				tr := &group[i]
				if !tr.Reached {
					continue // the paper discards traces that miss the dest AS
				}
				row.Traces++
				if tr.OnBestPath {
					contained++
				}
			}
		}
		if row.Traces > 0 {
			row.Contained = float64(contained) / float64(row.Traces)
		}
		out = append(out, row)
	}
	return out, nil
}

func runAppA(env *Env, w io.Writer) error {
	rows, err := AppA(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %12s\n", "cloud", "traces", "contained")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %11.1f%%\n", r.Cloud, r.Traces, 100*r.Contained)
	}
	return nil
}
