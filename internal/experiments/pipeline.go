package experiments

import (
	"fmt"
	"io"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpfeed"
	"flatnet/internal/core"
	"flatnet/internal/neighbors"
	"flatnet/internal/topogen"
)

// feedVPCount is the number of simulated route-collector vantage points.
const feedVPCount = 40

// feedView collects the BGP-feed-visible topology of a preset.
func feedView(in *topogen.Internet) (*bgpfeed.View, error) {
	var cands []astopo.ASN
	for i, a := range in.Graph.ASes() {
		switch in.ClassAt(i) {
		case topogen.ClassTransit, topogen.ClassTier2, topogen.ClassTier1:
			cands = append(cands, a)
		}
	}
	return bgpfeed.Collect(in.Graph, bgpfeed.SampleVPs(cands, feedVPCount, 11))
}

// Sec41Row compares BGP-feed-visible with combined (feed + traceroute)
// neighbor counts for one cloud — §4.1's "333 vs 1,389" style numbers.
type Sec41Row struct {
	Cloud       string
	FeedOnly    int
	Combined    int
	GroundTruth int
	// MissedFrac is the share of true neighbors invisible to the feed.
	MissedFrac float64
}

// Sec41 runs the visibility comparison.
func Sec41(env *Env) ([]Sec41Row, error) {
	in := env.In2020
	view, err := feedView(in)
	if err != nil {
		return nil, err
	}
	plan, err := env.Plan2020()
	if err != nil {
		return nil, err
	}
	res, err := neighbors.NewResolvers(plan)
	if err != nil {
		return nil, err
	}
	var rows []Sec41Row
	for _, cloud := range Clouds() {
		asn := in.Clouds[cloud]
		feedSet := astopo.NewASSet(view.VisibleNeighbors(asn)...)
		traces, err := env.Traces(2020, cloud, 0)
		if err != nil {
			return nil, err
		}
		inf := neighbors.Infer(traces, asn, res, neighbors.StageFinal)
		combined := feedSet.Union(inf.Neighbors)
		truth := len(in.Graph.Providers(asn)) + len(in.Graph.Peers(asn)) + len(in.Graph.Customers(asn))
		rows = append(rows, Sec41Row{
			Cloud:       cloud,
			FeedOnly:    len(feedSet),
			Combined:    len(combined),
			GroundTruth: truth,
			MissedFrac:  1 - float64(len(feedSet))/float64(truth),
		})
	}
	return rows, nil
}

func runSec41(env *Env, w io.Writer) error {
	rows, err := Sec41(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %10s %12s %18s\n", "cloud", "feed-only", "combined", "ground truth", "feed misses")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %10d %12d %17.0f%%\n",
			r.Cloud, r.FeedOnly, r.Combined, r.GroundTruth, 100*r.MissedFrac)
	}
	return nil
}

// Sec5Row is one methodology stage's accuracy for one configuration.
type Sec5Row struct {
	Cloud string
	Stage neighbors.Stage
	VMs   int
	neighbors.Validation
}

// Sec5 reproduces the §5 iterative-accuracy table: per stage and per VM
// count for Google and Microsoft (the two operators that validated).
func Sec5(env *Env) ([]Sec5Row, error) {
	plan, err := env.Plan2020()
	if err != nil {
		return nil, err
	}
	res, err := neighbors.NewResolvers(plan)
	if err != nil {
		return nil, err
	}
	in := env.In2020
	var rows []Sec5Row
	for _, cloud := range []string{"Google", "Microsoft"} {
		asn := in.Clouds[cloud]
		truth := append(append(in.Graph.Peers(asn), in.Graph.Providers(asn)...), in.Graph.Customers(asn)...)
		for _, stage := range neighbors.Stages() {
			for _, nVMs := range []int{4, 0} { // 0 = the paper's final VM counts
				traces, err := env.Traces(2020, cloud, nVMs)
				if err != nil {
					return nil, err
				}
				inf := neighbors.Infer(traces, asn, res, stage)
				rows = append(rows, Sec5Row{
					Cloud:      cloud,
					Stage:      stage,
					VMs:        len(traces),
					Validation: neighbors.Validate(inf.Neighbors, truth),
				})
			}
		}
	}
	return rows, nil
}

func runSec5(env *Env, w io.Writer) error {
	rows, err := Sec5(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-22s %4s %6s %6s %6s %8s %8s\n", "cloud", "stage", "VMs", "TP", "FP", "FN", "FDR", "FNR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-22s %4d %6d %6d %6d %7.1f%% %7.1f%%\n",
			r.Cloud, r.Stage, r.VMs, r.TP, r.FP, r.FN, 100*r.FDR, 100*r.FNR)
	}
	return nil
}

// AblationRow compares hierarchy-free reachability for one cloud on three
// graphs: the feed-only view, the feed view augmented with traceroute-
// inferred neighbors (the paper's methodology), and ground truth.
type AblationRow struct {
	Cloud                      string
	FeedOnly, Augmented, Truth int
	FeedOnlyPct, AugmentedPct  float64
	TruthPct                   float64
}

// Ablation quantifies how much the traceroute augmentation matters — the
// paper's core methodological claim.
func Ablation(env *Env) ([]AblationRow, error) {
	in := env.In2020
	view, err := feedView(in)
	if err != nil {
		return nil, err
	}
	feedGraph, err := view.BuildGraph()
	if err != nil {
		return nil, err
	}
	augGraph := feedGraph.Clone()
	plan, err := env.Plan2020()
	if err != nil {
		return nil, err
	}
	res, err := neighbors.NewResolvers(plan)
	if err != nil {
		return nil, err
	}
	for _, cloud := range Clouds() {
		asn := in.Clouds[cloud]
		traces, err := env.Traces(2020, cloud, 0)
		if err != nil {
			return nil, err
		}
		inf := neighbors.Infer(traces, asn, res, neighbors.StageFinal)
		neighbors.Augment(augGraph, asn, inf.Neighbors)
	}

	reach := func(g *astopo.Graph, origin astopo.ASN) (int, float64, error) {
		m := core.New(core.Dataset{Graph: g, Tier1: in.Tier1, Tier2: in.Tier2})
		if _, ok := g.Index(origin); !ok {
			return 0, 0, nil
		}
		n, err := m.Reachability(origin, core.HierarchyFree)
		if err != nil {
			return 0, 0, err
		}
		return n, 100 * float64(n) / float64(g.NumASes()-1), nil
	}
	var rows []AblationRow
	for _, cloud := range Clouds() {
		asn := in.Clouds[cloud]
		row := AblationRow{Cloud: cloud}
		var err error
		if row.FeedOnly, row.FeedOnlyPct, err = reach(feedGraph, asn); err != nil {
			return nil, err
		}
		if row.Augmented, row.AugmentedPct, err = reach(augGraph, asn); err != nil {
			return nil, err
		}
		if row.Truth, row.TruthPct, err = reach(in.Graph, asn); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runAblation(env *Env, w io.Writer) error {
	rows, err := Ablation(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hierarchy-free reachability on three graphs:\n")
	fmt.Fprintf(w, "%-10s %18s %18s %18s\n", "cloud", "feed-only", "feed+traceroute", "ground truth")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d (%4.1f%%) %10d (%4.1f%%) %9d (%4.1f%%)\n",
			r.Cloud, r.FeedOnly, r.FeedOnlyPct, r.Augmented, r.AugmentedPct, r.Truth, r.TruthPct)
	}
	return nil
}
