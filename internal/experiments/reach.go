package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
	"flatnet/internal/population"
	"flatnet/internal/topogen"
)

// Fig2Row is one network's stacked bar in Fig. 2.
type Fig2Row struct {
	Name          string
	AS            astopo.ASN
	Group         string // "cloud", "tier1", "tier2"
	ProviderFree  int
	Tier1Free     int
	HierarchyFree int
}

// Fig2 computes reachability for the clouds, Tier-1s, and Tier-2s under
// the three subgraph constraints, sorted by descending hierarchy-free
// reachability like the paper's figure.
func Fig2(env *Env) ([]Fig2Row, error) {
	in, m := env.In2020, env.M2020
	var rows []Fig2Row
	add := func(a astopo.ASN, group string) error {
		row := Fig2Row{Name: in.NameOf(a), AS: a, Group: group}
		var err error
		if row.ProviderFree, err = m.Reachability(a, core.ProviderFree); err != nil {
			return err
		}
		if row.Tier1Free, err = m.Reachability(a, core.Tier1Free); err != nil {
			return err
		}
		if row.HierarchyFree, err = m.Reachability(a, core.HierarchyFree); err != nil {
			return err
		}
		rows = append(rows, row)
		return nil
	}
	for _, c := range Clouds() {
		if err := add(in.Clouds[c], "cloud"); err != nil {
			return nil, err
		}
	}
	for _, a := range in.Tier1.Slice() {
		if err := add(a, "tier1"); err != nil {
			return nil, err
		}
	}
	for _, a := range in.Tier2.Slice() {
		if err := add(a, "tier2"); err != nil {
			return nil, err
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].HierarchyFree > rows[j].HierarchyFree })
	return rows, nil
}

func runFig2(env *Env, w io.Writer) error {
	rows, err := Fig2(env)
	if err != nil {
		return err
	}
	total := env.In2020.Graph.NumASes() - 1
	fmt.Fprintf(w, "%-18s %-6s %12s %12s %15s\n", "network", "group", "provider-free", "tier1-free", "hierarchy-free")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-6s %7d (%3.0f%%) %6d (%3.0f%%) %8d (%3.0f%%)\n",
			r.Name, r.Group,
			r.ProviderFree, 100*float64(r.ProviderFree)/float64(total),
			r.Tier1Free, 100*float64(r.Tier1Free)/float64(total),
			r.HierarchyFree, 100*float64(r.HierarchyFree)/float64(total))
	}
	return nil
}

// Table1Row is one rank entry of Table 1.
type Table1Row struct {
	Rank  int
	Name  string
	AS    astopo.ASN
	Reach int
	Pct   float64
	// PctChange is the 2020-vs-2015 percentage-point change (2020 side
	// only; NaN when the AS is absent in 2015).
	PctChange float64
}

// Table1Result holds both years' rankings plus the clouds' ranks even when
// outside the top k (the paper annotates Microsoft #62 and Amazon #206 in
// 2015).
type Table1Result struct {
	Top2015, Top2020 []Table1Row
	CloudRanks2015   map[string]Table1Row
	CloudRanks2020   map[string]Table1Row
}

// Table1 ranks every AS by hierarchy-free reachability in both presets.
func Table1(env *Env, topK int) (*Table1Result, error) {
	rank := func(m *core.Metrics, in *topogen.Internet) ([]Table1Row, map[string]Table1Row, error) {
		all, err := m.ReachabilityAll(core.HierarchyFree)
		if err != nil {
			return nil, nil, err
		}
		g := in.Graph
		total := float64(g.NumASes() - 1)
		// Names are filled only for the rows the result exposes (the top
		// k and the cloud annotations): NameOf formats "AS<n>" for the
		// long tail, and doing that for every AS in both years used to
		// account for nearly all of Table 1's allocations.
		rows := make([]Table1Row, g.NumASes())
		for i, n := range all {
			rows[i] = Table1Row{AS: g.ASNAt(i), Reach: n, Pct: 100 * float64(n) / total}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Reach != rows[j].Reach {
				return rows[i].Reach > rows[j].Reach
			}
			return rows[i].AS < rows[j].AS
		})
		cloudOf := make(map[astopo.ASN]string, len(in.Clouds))
		for _, c := range Clouds() {
			cloudOf[in.Clouds[c]] = c
		}
		clouds := make(map[string]Table1Row)
		for i := range rows {
			rows[i].Rank = i + 1
			if c, ok := cloudOf[rows[i].AS]; ok {
				row := rows[i]
				row.Name = in.NameOf(row.AS)
				clouds[c] = row
			}
		}
		return rows, clouds, nil
	}
	r15, c15, err := rank(env.M2015, env.In2015)
	if err != nil {
		return nil, err
	}
	r20, c20, err := rank(env.M2020, env.In2020)
	if err != nil {
		return nil, err
	}
	// Percentage change for the 2020 rows relative to the same AS' 2015
	// percentage.
	pct15 := make(map[astopo.ASN]float64, len(r15))
	for _, r := range r15 {
		pct15[r.AS] = r.Pct
	}
	for i := range r20 {
		if p, ok := pct15[r20[i].AS]; ok {
			r20[i].PctChange = r20[i].Pct - p
		} else {
			r20[i].PctChange = math.NaN()
		}
	}
	if topK > len(r15) {
		topK = len(r15)
	}
	if topK > len(r20) {
		topK = len(r20)
	}
	for i := range r15[:topK] {
		r15[i].Name = env.In2015.NameOf(r15[i].AS)
	}
	for i := range r20[:topK] {
		r20[i].Name = env.In2020.NameOf(r20[i].AS)
	}
	return &Table1Result{
		Top2015:        r15[:topK],
		Top2020:        r20[:topK],
		CloudRanks2015: c15,
		CloudRanks2020: c20,
	}, nil
}

func runTable1(env *Env, w io.Writer) error {
	res, err := Table1(env, 20)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-4s %-20s %10s %8s   |   %-20s %10s %8s %8s\n",
		"#", "2015 network", "reach", "%", "2020 network", "reach", "%", "Δ%")
	for i := range res.Top2020 {
		r15, r20 := res.Top2015[i], res.Top2020[i]
		fmt.Fprintf(w, "%-4d %-20s %10d %7.1f%%   |   %-20s %10d %7.1f%% %+7.1f\n",
			i+1, r15.Name, r15.Reach, r15.Pct, r20.Name, r20.Reach, r20.Pct, r20.PctChange)
	}
	fmt.Fprintln(w, "cloud ranks:")
	for _, c := range Clouds() {
		fmt.Fprintf(w, "  %-10s 2015: #%-5d (%.1f%%)   2020: #%-5d (%.1f%%)\n",
			c, res.CloudRanks2015[c].Rank, res.CloudRanks2015[c].Pct,
			res.CloudRanks2020[c].Rank, res.CloudRanks2020[c].Pct)
	}
	return nil
}

// Fig3Point is one AS in the cone-vs-reach scatter.
type Fig3Point struct {
	AS    astopo.ASN
	Cone  int
	Reach int
	Type  population.ASType
	Class topogen.ASClass
}

// Fig3Result carries the scatter plus the paper's summary statistics.
type Fig3Result struct {
	Points []Fig3Point
	// HighReach counts ASes with hierarchy-free reachability >= the
	// threshold; HighCone the same for customer cone (the paper: 8,374
	// vs 51 at >= 1,000 on the 69,488-AS graph).
	Threshold           int
	HighReach, HighCone int
	SpearmanRho         float64
}

// Fig3 computes hierarchy-free reachability and customer cone for every AS.
func Fig3(env *Env) (*Fig3Result, error) {
	cones, reach, err := env.M2020.ConeVsReach()
	if err != nil {
		return nil, err
	}
	in := env.In2020
	g := in.Graph
	res := &Fig3Result{Points: make([]Fig3Point, g.NumASes())}
	// Scale the paper's >= 1000 threshold to our graph size.
	res.Threshold = int(1000 * float64(g.NumASes()) / 69488)
	if res.Threshold < 1 {
		res.Threshold = 1
	}
	for i := range res.Points {
		a := g.ASNAt(i)
		res.Points[i] = Fig3Point{AS: a, Cone: cones[i], Reach: reach[i], Type: env.Pop2020.Type(a), Class: in.ClassAt(i)}
		if reach[i] >= res.Threshold {
			res.HighReach++
		}
		if cones[i] >= res.Threshold {
			res.HighCone++
		}
	}
	res.SpearmanRho = spearman(cones, reach)
	return res, nil
}

func runFig3(env *Env, w io.Writer) error {
	res, err := Fig3(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ASes: %d; threshold (scaled from paper's 1000): %d\n", len(res.Points), res.Threshold)
	fmt.Fprintf(w, "ASes with hierarchy-free reach >= threshold: %d\n", res.HighReach)
	fmt.Fprintf(w, "ASes with customer cone >= threshold:        %d\n", res.HighCone)
	fmt.Fprintf(w, "Spearman rank correlation (cone vs reach):   %.3f\n", res.SpearmanRho)
	fmt.Fprintln(w, "scatter summary (cone bucket -> mean reach, count):")
	type bucket struct {
		sum, n int
	}
	buckets := map[int]*bucket{}
	for _, p := range res.Points {
		b := 0
		for c := p.Cone; c > 1; c /= 10 {
			b++
		}
		if buckets[b] == nil {
			buckets[b] = &bucket{}
		}
		buckets[b].sum += p.Reach
		buckets[b].n++
	}
	for b := 0; b < 6; b++ {
		if bk := buckets[b]; bk != nil {
			fmt.Fprintf(w, "  cone ~10^%d: mean reach %7.1f over %d ASes\n", b, float64(bk.sum)/float64(bk.n), bk.n)
		}
	}
	// Named spot checks the paper calls out (Sprint's rank collapse).
	sprintRank, coneRank := rankOf(res.Points, 1239)
	fmt.Fprintf(w, "Sprint: cone rank #%d vs hierarchy-free rank #%d\n", coneRank, sprintRank)
	return nil
}

// rankOf returns (reach rank, cone rank) of an AS, 1-indexed.
func rankOf(points []Fig3Point, a astopo.ASN) (reachRank, coneRank int) {
	var target Fig3Point
	found := false
	for _, p := range points {
		if p.AS == a {
			target, found = p, true
			break
		}
	}
	if !found {
		return 0, 0
	}
	reachRank, coneRank = 1, 1
	for _, p := range points {
		if p.Reach > target.Reach {
			reachRank++
		}
		if p.Cone > target.Cone {
			coneRank++
		}
	}
	return reachRank, coneRank
}

func spearman(xs, ys []int) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

func ranks(xs []int) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// Fig4Row breaks down one network's hierarchy-free-unreachable ASes by
// type.
type Fig4Row struct {
	Name        string
	AS          astopo.ASN
	Unreachable int
	ByType      map[population.ASType]int
}

// Fig4Networks is the paper's x-axis: the top four clouds and eight transit
// providers.
func Fig4Networks(in *topogen.Internet) []astopo.ASN {
	return []astopo.ASN{
		3356, 6939, in.Clouds["Google"], in.Clouds["Microsoft"], in.Clouds["IBM"],
		174, 6461, 1299, 3257, 2914, 7713, in.Clouds["Amazon"],
	}
}

// Fig4 tallies unreachable-AS types per provider.
func Fig4(env *Env) ([]Fig4Row, error) {
	in, m := env.In2020, env.M2020
	var rows []Fig4Row
	for _, a := range Fig4Networks(in) {
		un, err := m.Unreachable(a, core.HierarchyFree)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{
			Name:        in.NameOf(a),
			AS:          a,
			Unreachable: len(un),
			ByType:      env.Pop2020.CountByType(un),
		})
	}
	return rows, nil
}

func runFig4(env *Env, w io.Writer) error {
	rows, err := Fig4(env)
	if err != nil {
		return err
	}
	types := []population.ASType{population.TypeContent, population.TypeTransit, population.TypeAccess, population.TypeEnterprise}
	fmt.Fprintf(w, "%-18s %12s %9s %9s %9s %10s\n", "network", "unreachable", "content", "transit", "access", "enterprise")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12d", r.Name, r.Unreachable)
		for _, t := range types {
			pct := 0.0
			if r.Unreachable > 0 {
				pct = 100 * float64(r.ByType[t]) / float64(r.Unreachable)
			}
			fmt.Fprintf(w, " %7.1f%%", pct)
		}
		fmt.Fprintln(w)
	}
	return nil
}
