package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
)

// Fig6Result is the reliance histogram for one cloud: bin width 25 (as in
// the paper) over reliance values of all other ASes, plus the top entries.
type Fig6Result struct {
	Cloud string
	// Bins maps bin start (0, 25, 50, ...) to the number of ASes whose
	// reliance falls in [start, start+25).
	Bins map[int]int
	// MaxReliance and MaxAS identify the most relied-upon network.
	MaxReliance float64
	MaxAS       astopo.ASN
	// RelyOne counts ASes with reliance in [1, 2): the "completely flat"
	// signature (§7.2).
	RelyOne int
}

const fig6BinWidth = 25

// Fig6 computes the per-cloud reliance histograms under hierarchy-free
// propagation.
func Fig6(env *Env) ([]Fig6Result, error) {
	var out []Fig6Result
	for _, c := range Clouds() {
		asn := env.In2020.Clouds[c]
		entries, err := env.M2020.Reliance(asn, core.HierarchyFree)
		if err != nil {
			return nil, err
		}
		res := Fig6Result{Cloud: c, Bins: make(map[int]int)}
		for _, e := range entries {
			if e.AS == asn {
				continue
			}
			bin := int(e.Value) / fig6BinWidth * fig6BinWidth
			res.Bins[bin]++
			if e.Value > res.MaxReliance {
				res.MaxReliance = e.Value
				res.MaxAS = e.AS
			}
			if e.Value >= 1 && e.Value < 2 {
				res.RelyOne++
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func runFig6(env *Env, w io.Writer) error {
	results, err := Fig6(env)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "%s: max reliance %.1f on %s; ASes with reliance in [1,2): %d\n",
			r.Cloud, r.MaxReliance, env.In2020.NameOf(r.MaxAS), r.RelyOne)
		bins := make([]int, 0, len(r.Bins))
		for b := range r.Bins {
			bins = append(bins, b)
		}
		sort.Ints(bins)
		for _, b := range bins {
			if b > 400 {
				fmt.Fprintf(w, "  [tail: bins above 400 omitted]\n")
				break
			}
			fmt.Fprintf(w, "  [%4d,%4d): %6d ASes\n", b, b+fig6BinWidth, r.Bins[b])
		}
	}
	return nil
}

// Table2Row is one cloud's top-3 reliance entries.
type Table2Row struct {
	Cloud string
	Top   []core.RelianceEntry
}

// Table2 extracts each cloud's three most relied-upon networks.
func Table2(env *Env) ([]Table2Row, error) {
	var out []Table2Row
	for _, c := range Clouds() {
		top, err := env.M2020.TopReliance(env.In2020.Clouds[c], core.HierarchyFree, 3)
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Row{Cloud: c, Top: top})
	}
	return out, nil
}

func runTable2(env *Env, w io.Writer) error {
	rows, err := Table2(env)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-28s %-28s %-28s\n", "cloud", "#1 (AS, rely)", "#2", "#3")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Cloud)
		for _, e := range r.Top {
			label := env.In2020.NameOf(e.AS)
			if !strings.HasPrefix(label, "AS") {
				label = fmt.Sprintf("%s (AS%d)", label, e.AS)
			}
			fmt.Fprintf(w, " %-28s", fmt.Sprintf("%s %.1f", label, e.Value))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AppBResult examines one hierarchy-reliant Tier-1 (Appendix B): its
// Tier-1-free reachability, the Tier-2s it relies on most, and the
// counterfactual reachability when just those Tier-2s are bypassed.
type AppBResult struct {
	Name                string
	AS                  astopo.ASN
	Tier1FreeReach      int
	HierarchyFreeReach  int
	TopTier2            []core.RelianceEntry
	BypassTopTier2Reach int
}

// AppB runs the case study for Sprint (1239) and Deutsche Telekom (3320).
func AppB(env *Env) ([]AppBResult, error) {
	m, in := env.M2020, env.In2020
	var out []AppBResult
	for _, a := range []astopo.ASN{1239, 3320} {
		r := AppBResult{Name: in.NameOf(a), AS: a}
		var err error
		if r.Tier1FreeReach, err = m.Reachability(a, core.Tier1Free); err != nil {
			return nil, err
		}
		if r.HierarchyFreeReach, err = m.Reachability(a, core.HierarchyFree); err != nil {
			return nil, err
		}
		// Reliance under Tier-1-free propagation, filtered to Tier-2s.
		entries, err := m.TopReliance(a, core.Tier1Free, in.Graph.NumASes())
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if in.Tier2.Has(e.AS) {
				r.TopTier2 = append(r.TopTier2, e)
				if len(r.TopTier2) == 6 {
					break
				}
			}
		}
		// Counterfactual: bypass only those six Tier-2s (plus the
		// Tier-1s and own providers).
		mask := m.Mask(a, core.Tier1Free)
		for _, e := range r.TopTier2 {
			if i, ok := in.Graph.Index(e.AS); ok {
				mask[i] = true
			}
		}
		sim := bgpsim.New(in.Graph)
		if r.BypassTopTier2Reach, err = sim.ReachabilityCount(bgpsim.Config{Origin: a, Exclude: mask}); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runAppB(env *Env, w io.Writer) error {
	results, err := AppB(env)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "%s (AS%d): Tier-1-free reach %d -> hierarchy-free %d\n",
			r.Name, r.AS, r.Tier1FreeReach, r.HierarchyFreeReach)
		fmt.Fprintf(w, "  top Tier-2 reliance:")
		for _, e := range r.TopTier2 {
			fmt.Fprintf(w, " %s(%.0f)", env.In2020.NameOf(e.AS), e.Value)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  bypassing just those %d Tier-2s: reach %d (vs full hierarchy-free %d)\n",
			len(r.TopTier2), r.BypassTopTier2Reach, r.HierarchyFreeReach)
	}
	return nil
}
