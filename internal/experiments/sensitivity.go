package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
)

// SensitivityRow reports a cloud's hierarchy-free reachability when a
// fraction of its peer links is hidden from the analyst.
type SensitivityRow struct {
	Cloud string
	// MissFrac is the fraction of true peerings removed (simulated FNR).
	MissFrac float64
	// Reach and Pct are the metric on the degraded graph.
	Reach int
	Pct   float64
}

// sensitivityFractions sweeps the §5-reported FNR range and beyond.
var sensitivityFractions = []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}

// Sensitivity quantifies the paper's §4.4 caveat — "it is likely that we
// underestimate the interconnectivity" — by removing random fractions of
// each cloud's peer links (simulating measurement false negatives) and
// recomputing hierarchy-free reachability. The paper's final methodology
// missed ~21% of neighbors; the sweep shows how much metric error that
// implies.
//
// The inner loop is a single-origin propagation (one cloud per degraded
// graph), so the bit-parallel all-AS engine does not apply; the cost is
// instead kept down by reusing one sweep context — the hoisted link slice,
// one degraded-link buffer, one exclusion-mask buffer, and one nested drop
// set per cloud — across every (cloud, fraction) pair rather than
// rebuilding them each time. Degraded pairs skip core.New entirely: the
// hierarchy-free mask (Tier-1s, Tier-2s, and the cloud's providers, cloud
// itself unmasked) is composed directly on the reused buffer and fed to a
// bare simulator over the degraded graph. The frac=0 row bypasses the
// rebuild entirely and reuses the headline env.M2020: it MUST equal the
// Fig. 2 hierarchy-free metric (the sensitivityBaseline invariant the
// tests pin), and sharing the Metrics makes that equality structural.
func Sensitivity(env *Env) ([]SensitivityRow, error) {
	in := env.In2020
	links := in.Graph.Links()
	// Degraded-link and mask scratch shared by every rebuilt graph; each
	// graph is discarded before the buffers' next reuse.
	buf := make([]astopo.Link, 0, len(links))
	mask := make([]bool, in.Graph.NumASes())
	var rows []SensitivityRow
	for _, cloud := range Clouds() {
		asn := in.Clouds[cloud]
		peers := in.Graph.Peers(asn)
		// One permutation per cloud so removal sets nest: a higher miss
		// fraction always removes a superset, making the sweep monotone
		// by construction. The drop set grows incrementally with the
		// fraction instead of being rebuilt per pair.
		rng := rand.New(rand.NewSource(int64(asn)))
		perm := rng.Perm(len(peers))
		drop := make(map[astopo.ASN]bool, len(peers))
		dropped := 0
		for _, frac := range sensitivityFractions {
			for cut := int(frac * float64(len(peers))); dropped < cut; dropped++ {
				drop[peers[perm[dropped]]] = true
			}
			var n int
			var err error
			var total float64
			if dropped == 0 {
				n, err = env.M2020.Reachability(asn, core.HierarchyFree)
				total = float64(in.Graph.NumASes() - 1)
			} else {
				buf = degradedLinks(buf[:0], links, asn, drop)
				g := astopo.FromLinks(buf)
				n, err = hierarchyFreeReach(g, asn, in.Tier1, in.Tier2, mask)
				total = float64(g.NumASes() - 1)
			}
			if err != nil {
				return nil, err
			}
			rows = append(rows, SensitivityRow{
				Cloud:    cloud,
				MissFrac: frac,
				Reach:    n,
				Pct:      100 * float64(n) / total,
			})
		}
	}
	return rows, nil
}

// hierarchyFreeReach computes core.Reachability(origin, HierarchyFree)
// over g without building a Metrics: the exclusion mask — the Tier-1 and
// Tier-2 sets plus the origin's transit providers, with the origin itself
// never masked — is composed on the caller's reusable buffer, replicating
// core.Mask's overlay semantics (asserted against core.New by the
// sensitivity tests).
func hierarchyFreeReach(g *astopo.Graph, origin astopo.ASN, tier1, tier2 astopo.ASSet, mask []bool) (int, error) {
	g.Freeze()
	n := g.NumASes()
	if cap(mask) < n {
		mask = make([]bool, n)
	}
	mask = mask[:n]
	for i := range mask {
		mask[i] = false
	}
	for a := range tier1 {
		if i, ok := g.Index(a); ok {
			mask[i] = true
		}
	}
	for a := range tier2 {
		if i, ok := g.Index(a); ok {
			mask[i] = true
		}
	}
	if oi, ok := g.Index(origin); ok {
		mask[oi] = false
		for _, p := range g.ProvidersOf(oi) {
			mask[p] = true
		}
	}
	return bgpsim.New(g).ReachabilityCount(bgpsim.Config{Origin: origin, Exclude: mask})
}

// degradedLinks appends to dst the topology's links minus the given AS's
// peer links to the dropped neighbors.
func degradedLinks(dst, links []astopo.Link, asn astopo.ASN, drop map[astopo.ASN]bool) []astopo.Link {
	for _, l := range links {
		if l.Rel == astopo.P2P && ((l.A == asn && drop[l.B]) || (l.B == asn && drop[l.A])) {
			continue
		}
		dst = append(dst, l)
	}
	return dst
}

func runSensitivity(env *Env, w io.Writer) error {
	rows, err := Sensitivity(env)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "hierarchy-free reachability when a fraction of each cloud's peerings is invisible")
	fmt.Fprintln(w, "(the paper's final methodology missed ~21% of neighbors; §4.4's underestimation caveat)")
	fmt.Fprintf(w, "%-10s", "cloud \\ miss")
	for _, f := range sensitivityFractions {
		fmt.Fprintf(w, " %7.0f%%", 100*f)
	}
	fmt.Fprintln(w)
	var cur string
	for _, r := range rows {
		if r.Cloud != cur {
			if cur != "" {
				fmt.Fprintln(w)
			}
			cur = r.Cloud
			fmt.Fprintf(w, "%-10s", r.Cloud)
		}
		fmt.Fprintf(w, " %7.1f%%", r.Pct)
	}
	fmt.Fprintln(w)
	return nil
}

// helper used by tests: the zero-miss row must match the headline metric.
func sensitivityBaseline(rows []SensitivityRow, cloud string) (SensitivityRow, bool) {
	for _, r := range rows {
		if r.Cloud == cloud && r.MissFrac == 0 {
			return r, true
		}
	}
	return SensitivityRow{}, false
}
