package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flatnet/internal/snapshot"
)

// A snapshot-loaded environment must be indistinguishable from the fresh one
// it was captured from: the experiments' rendered output — including the
// traceroute-derived figures — must match byte for byte.
func TestSnapshotEnvMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot golden test builds trace corpora")
	}
	fresh := getEnv(t)
	if err := fresh.Prewarm(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, fresh.World()); err != nil {
		t.Fatal(err)
	}
	world, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := NewEnvFromWorld(world)
	if err != nil {
		t.Fatal(err)
	}

	// Second loaded environment: the zero-copy Reader path over an actual
	// file mapping, exactly as cmd/flatnet -snapshot serves it.
	path := filepath.Join(t.TempDir(), "world.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	mapped, err := NewEnvFromSnapshot(rd)
	if err != nil {
		t.Fatal(err)
	}

	// table1 exercises both presets' metrics; fig7 exercises the leak
	// simulator over the restored graphs; appA reads the trace corpora;
	// table3 reads the plans and the rDNS corpus.
	for _, id := range []string{"table1", "fig7", "appA", "table3"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		var want bytes.Buffer
		if err := r.Run(fresh, &want); err != nil {
			t.Fatalf("%s on fresh env: %v", id, err)
		}
		for name, env := range map[string]*Env{"decoded": decoded, "mmap": mapped} {
			var got bytes.Buffer
			if err := r.Run(env, &got); err != nil {
				t.Fatalf("%s on %s snapshot env: %v", id, name, err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%s output differs between fresh and %s snapshot env\nfresh:\n%s\nsnapshot:\n%s",
					id, name, want.String(), got.String())
			}
		}
	}
}

// Trace-corpus builds for distinct keys must run concurrently (no coarse
// env lock), while every caller of the same year coalesces onto a single
// build. The hook holds both builds open until each has started; under a
// coarse lock the second build could never start and the test would time
// out.
func TestConcurrentTraceBuildsOverlapAndCoalesce(t *testing.T) {
	e, err := NewEnv(0.01425)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Plan2020(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Plan2015(); err != nil {
		t.Fatal(err)
	}

	var entered sync.WaitGroup
	entered.Add(2)
	barrier := make(chan struct{})
	e.traceBuildHook = func(key string) {
		entered.Done()
		<-barrier
	}
	release := make(chan struct{})
	go func() {
		entered.Wait()
		close(barrier)
		close(release)
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Eight same-year callers across all four clouds: one build, shared by
	// everyone. One different-year caller: a second, concurrent build.
	for i := 0; i < 8; i++ {
		cloud := Clouds()[i%len(Clouds())]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Traces(2020, cloud, 0); err != nil {
				errs <- err
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Traces(2015, "Google", 0); err != nil {
			errs <- err
		}
	}()

	select {
	case <-release:
	case <-time.After(2 * time.Minute):
		t.Fatal("the two trace builds never overlapped: builds are serialized by a coarse lock")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.traceBuilds.Load(); got != 2 {
		t.Fatalf("ran %d trace builds, want exactly 2 (one per year)", got)
	}
	// Every 2020 cloud must now be served from cache without new builds.
	e.traceBuildHook = nil
	for _, c := range Clouds() {
		if _, err := e.Traces(2020, c, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.traceBuilds.Load(); got != 2 {
		t.Fatalf("cache misses after the shared build: %d builds, want 2", got)
	}
}

// A failed trace build must not be memoized: the next call retries and
// succeeds.
func TestTraceBuildErrorRetried(t *testing.T) {
	e, err := NewEnv(0.01425)
	if err != nil {
		t.Fatal(err)
	}
	e.traceBuildHook = func(string) { panic("induced build failure") }
	if _, err := e.Traces(2020, "Google", 2); err == nil {
		t.Fatal("induced build failure did not surface as an error")
	}
	e.traceBuildHook = nil
	tr, err := e.Traces(2020, "Google", 2)
	if err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if len(tr) != 2 {
		t.Fatalf("retry returned %d VM groups, want 2", len(tr))
	}
	if got := e.traceBuilds.Load(); got != 1 {
		t.Fatalf("ran %d successful builds, want 1", got)
	}
}
