package experiments

// Timeline (longitudinal extension): hierarchy-free reachability of the
// four paper clouds for every year of the 2015–2025 preset series. The
// fold is incremental — each year's per-AS counts are evolved from the
// previous year's with core.EvolveCounts instead of re-propagating the
// whole world — which is exactly the machinery `flatnetd` uses behind
// POST /v1/evolve. The incremental engine is trial-exact (see
// core.TestEvolveCountsMatchesFullSweep), so every printed number is
// identical to a fresh full sweep of that year's world.

import (
	"context"
	"fmt"
	"io"

	"flatnet/internal/astopo"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/topogen"
)

// CloudReach is one cloud's hierarchy-free standing in one year.
type CloudReach struct {
	Name  string
	AS    astopo.ASN
	Reach int
	Pct   float64
}

// TimelineRow is one year of the longitudinal series.
type TimelineRow struct {
	Year  int
	World string // content address (cluster.DatasetHash)
	ASes  int
	Links int
	// Clouds holds the paper clouds in Clouds() order.
	Clouds []CloudReach
}

// TimelineResult carries the series plus how much propagation the
// incremental fold actually did versus the full-sweep equivalent.
type TimelineResult struct {
	Scale float64
	Rows  []TimelineRow
	// Dirty and Origins sum the evolved steps' stats: Dirty origins were
	// re-propagated, out of Origins total across all steps (the first
	// year's bootstrap sweep is not counted).
	Dirty, Origins int
	// FullSweeps counts steps where the engine fell back to a full
	// re-propagation (dirty region too large or tier sets changed).
	FullSweeps int
}

// cloudRow extracts the paper clouds' standings from a per-AS count
// vector.
func cloudRow(year int, in *topogen.Internet, counts []int) (TimelineRow, error) {
	g := in.Graph
	total := g.NumASes() - 1
	row := TimelineRow{
		Year:  year,
		World: cluster.DatasetHash(g, in.Tier1, in.Tier2),
		ASes:  g.NumASes(),
		Links: g.NumLinks(),
	}
	for _, name := range Clouds() {
		a, ok := in.Clouds[name]
		if !ok {
			return row, fmt.Errorf("experiments: %d world has no %s cloud", year, name)
		}
		i, ok := g.Index(a)
		if !ok {
			return row, fmt.Errorf("experiments: %s (AS%d) missing from the %d graph", name, a, year)
		}
		row.Clouds = append(row.Clouds, CloudReach{
			Name: name, AS: a, Reach: counts[i],
			Pct: 100 * float64(counts[i]) / float64(total),
		})
	}
	return row, nil
}

// Timeline folds the whole preset series at the environment's scale.
func Timeline(env *Env) (*TimelineResult, error) {
	return TimelineAt(env.Scale)
}

// TimelineRowFor computes one world's row directly (one propagation per
// cloud, no full sweep) — how `flatnet timeline report -snapshot` prints
// a single year. The incremental fold is trial-exact, so this row is
// byte-identical to the same year's row out of TimelineAt.
func TimelineRowFor(year int, in *topogen.Internet) (TimelineRow, error) {
	g := in.Graph
	total := g.NumASes() - 1
	row := TimelineRow{
		Year:  year,
		World: cluster.DatasetHash(g, in.Tier1, in.Tier2),
		ASes:  g.NumASes(),
		Links: g.NumLinks(),
	}
	m := core.New(core.Dataset{Graph: g, Tier1: in.Tier1, Tier2: in.Tier2})
	for _, name := range Clouds() {
		a, ok := in.Clouds[name]
		if !ok {
			return row, fmt.Errorf("experiments: %d world has no %s cloud", year, name)
		}
		n, err := m.Reachability(a, core.HierarchyFree)
		if err != nil {
			return row, err
		}
		row.Clouds = append(row.Clouds, CloudReach{
			Name: name, AS: a, Reach: n,
			Pct: 100 * float64(n) / float64(total),
		})
	}
	return row, nil
}

// TimelineAt folds the whole preset series at one scale: generate the
// first year, full-sweep it once, then evolve counts year over year
// through the growth deltas.
func TimelineAt(scale float64) (*TimelineResult, error) {
	ctx := context.Background()
	in, err := topogen.GenerateYear(topogen.TimelineFirstYear, scale)
	if err != nil {
		return nil, err
	}
	m := core.New(core.Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2})
	counts, err := m.ReachabilityRangeCtx(ctx, core.HierarchyFree, 0, in.Graph.NumASes(), 0)
	if err != nil {
		return nil, err
	}
	res := &TimelineResult{Scale: scale}
	row, err := cloudRow(topogen.TimelineFirstYear, in, counts)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	for year := topogen.TimelineFirstYear + 1; year <= topogen.TimelineLastYear; year++ {
		g, err := topogen.EvolveStep(in, year, scale)
		if err != nil {
			return nil, err
		}
		next, err := topogen.ApplyDelta(in, g)
		if err != nil {
			return nil, err
		}
		nm := core.New(core.Dataset{Graph: next.Graph, Tier1: next.Tier1, Tier2: next.Tier2})
		newASes := make([]astopo.ASN, len(g.NewASes))
		for i, na := range g.NewASes {
			newASes[i] = na.ASN
		}
		var stats core.EvolveStats
		counts, stats, err = core.EvolveCounts(ctx, m, nm, core.HierarchyFree, counts, core.EvolveDelta{
			AddedLinks:   g.AddedLinks,
			RemovedLinks: g.RemovedLinks,
			NewASes:      newASes,
		})
		if err != nil {
			return nil, err
		}
		res.Dirty += stats.Dirty
		res.Origins += stats.Origins
		if stats.FullSweep {
			res.FullSweeps++
		}
		in, m = next, nm
		row, err := cloudRow(year, in, counts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PrintTimelineHeader and PrintTimelineRow render the per-year table;
// they are shared with `flatnet timeline report`, whose single-snapshot
// mode must produce byte-identical rows for the CI equivalence gate.
func PrintTimelineHeader(w io.Writer) {
	fmt.Fprintf(w, "%-5s %-13s %7s %8s", "year", "world", "ases", "links")
	for _, c := range Clouds() {
		fmt.Fprintf(w, "  %18s", c)
	}
	fmt.Fprintln(w)
}

func PrintTimelineRow(w io.Writer, row TimelineRow) {
	fmt.Fprintf(w, "%-5d %-13.12s %7d %8d", row.Year, row.World, row.ASes, row.Links)
	for _, c := range row.Clouds {
		fmt.Fprintf(w, "  %10d (%4.1f%%)", c.Reach, c.Pct)
	}
	fmt.Fprintln(w)
}

func runTimeline(env *Env, w io.Writer) error {
	res, err := Timeline(env)
	if err != nil {
		return err
	}
	PrintTimelineHeader(w)
	for _, row := range res.Rows {
		PrintTimelineRow(w, row)
	}
	if res.Origins > 0 {
		fmt.Fprintf(w, "incremental fold: %d/%d origins re-propagated across %d steps (%d full-sweep fallbacks)\n",
			res.Dirty, res.Origins, len(res.Rows)-1, res.FullSweeps)
	}
	return nil
}
