package experiments

import (
	"fmt"

	"flatnet/internal/core"
	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// World snapshots everything the Env has built so far — the two presets
// always, plus whichever lazy artifacts (plans, rDNS, trace corpora) exist
// at call time. Prewarm first to capture a complete world.
func (e *Env) World() *snapshot.World {
	w := &snapshot.World{
		Scale:     e.Scale,
		Internets: map[int]*topogen.Internet{2020: e.In2020, 2015: e.In2015},
		Pops:      map[int]*population.Model{2020: e.Pop2020, 2015: e.Pop2015},
		Plans:     make(map[int]*netdb.Plan),
		RDNS:      make(map[int]*rdns.Corpus),
		Traces:    make(map[snapshot.TraceKey][][]tracesim.Traceroute),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plan2020 != nil {
		w.Plans[2020] = e.plan2020
	}
	if e.plan2015 != nil {
		w.Plans[2015] = e.plan2015
	}
	if e.rdns2020 != nil {
		w.RDNS[2020] = e.rdns2020
	}
	for k, tr := range e.traces {
		w.Traces[snapshot.TraceKey{Year: k.year, Cloud: k.cloud, VMs: k.nVMs}] = tr
	}
	return w
}

// NewEnvFromWorld rebuilds a ready Env from a decoded snapshot without any
// generation: metrics masks are recomputed (cheap, O(n)), and every artifact
// present in the world seeds the corresponding lazy cache, so experiments
// that would have triggered a build are served immediately. Artifacts the
// snapshot lacks are built lazily as usual.
func NewEnvFromWorld(w *snapshot.World) (*Env, error) {
	for _, year := range []int{2020, 2015} {
		if w.Internets[year] == nil {
			return nil, fmt.Errorf("experiments: snapshot has no %d internet", year)
		}
		if w.Pops[year] == nil {
			return nil, fmt.Errorf("experiments: snapshot has no %d population model", year)
		}
	}
	in2020, in2015 := w.Internets[2020], w.Internets[2015]
	e := &Env{
		Scale:   w.Scale,
		In2020:  in2020,
		In2015:  in2015,
		M2020:   core.New(core.Dataset{Graph: in2020.Graph, Tier1: in2020.Tier1, Tier2: in2020.Tier2}),
		M2015:   core.New(core.Dataset{Graph: in2015.Graph, Tier1: in2015.Tier1, Tier2: in2015.Tier2}),
		Pop2020: w.Pops[2020],
		Pop2015: w.Pops[2015],
	}
	e.plan2020 = w.Plans[2020]
	e.plan2015 = w.Plans[2015]
	e.rdns2020 = w.RDNS[2020]
	if len(w.Traces) > 0 {
		e.traces = make(map[traceKey][][]tracesim.Traceroute, len(w.Traces))
		for k, tr := range w.Traces {
			e.traces[traceKey{year: k.Year, cloud: k.Cloud, nVMs: k.VMs}] = tr
		}
	}
	return e, nil
}

// NewEnvFromSnapshot wires an Env directly over an open snapshot Reader.
// The graphs, AS metadata, and population models are zero-copy views of
// the Reader's (typically mmap'd) memory, so time-to-first-query is
// O(page-in) rather than O(decode); the pointer-shaped artifacts — address
// plans, rDNS corpora, trace campaigns — stay encoded until an experiment
// demands them, at which point they are decoded once from the snapshot
// instead of being rebuilt. Artifacts the snapshot lacks are built lazily
// as usual. Everything the Env hands out borrows the Reader's memory: do
// not Close the Reader while the Env (or anything derived from it) is in
// use.
func NewEnvFromSnapshot(r *snapshot.Reader) (*Env, error) {
	for _, year := range []int{2020, 2015} {
		if r.Internet(year) == nil {
			return nil, fmt.Errorf("experiments: snapshot has no %d internet", year)
		}
		if r.Population(year) == nil {
			return nil, fmt.Errorf("experiments: snapshot has no %d population model", year)
		}
	}
	in2020, in2015 := r.Internet(2020), r.Internet(2015)
	return &Env{
		Scale:   r.Scale(),
		In2020:  in2020,
		In2015:  in2015,
		M2020:   core.New(core.Dataset{Graph: in2020.Graph, Tier1: in2020.Tier1, Tier2: in2020.Tier2}),
		M2015:   core.New(core.Dataset{Graph: in2015.Graph, Tier1: in2015.Tier1, Tier2: in2015.Tier2}),
		Pop2020: r.Population(2020),
		Pop2015: r.Population(2015),
		src:     r,
	}, nil
}

// Mapped reports whether the Env serves its graphs zero-copy from an OS
// file mapping (the snapshot Reader path on Linux).
func (e *Env) Mapped() bool { return e.src != nil && e.src.Mapped() }

// tracesFromSnapshot serves a trace corpus from the backing snapshot. A
// request for n VM groups can be served as a prefix of a larger stored
// campaign of the same (year, cloud) — the same rule lookupTraces applies
// to the in-memory cache. The bool reports whether the snapshot had a
// usable campaign; an error means it had one and failed to decode, which
// is surfaced rather than silently rebuilt (fail-closed).
func (e *Env) tracesFromSnapshot(year int, cloud string, n int) ([][]tracesim.Traceroute, bool, error) {
	best := -1
	for _, k := range e.src.TraceKeys() {
		if k.Year == year && k.Cloud == cloud && k.VMs >= n && (best == -1 || k.VMs < best) {
			best = k.VMs
		}
	}
	if best == -1 {
		return nil, false, nil
	}
	tr, err := e.src.Traces(snapshot.TraceKey{Year: year, Cloud: cloud, VMs: best})
	if err != nil {
		return nil, false, err
	}
	if best > n {
		tr = tr[:n:n]
	}
	return tr, true, nil
}
