package geo

import (
	"fmt"
	"io"
)

// RenderASCIIMap draws an equirectangular text map of the gazetteer with
// per-city markers — the terminal rendering of the paper's Fig. 11. Cities
// without a marker print as '·'; marked cities print their rune, with later
// map entries NOT overriding earlier drawn cells (callers order markers by
// priority by drawing the most important last via the priority list).
//
// width is the number of character columns (height follows at roughly 2:1
// to compensate for terminal glyph aspect). Latitudes outside [-60, 75] are
// clamped; that band covers every gazetteer city.
func RenderASCIIMap(w io.Writer, markers map[CityID]rune, priority []rune, width int) error {
	if width < 40 {
		width = 40
	}
	height := width * 30 / 100
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	const (
		latTop, latBot = 75.0, -60.0
		lonL, lonR     = -180.0, 180.0
	)
	cell := func(c City) (row, col int) {
		lat := c.Lat
		if lat > latTop {
			lat = latTop
		}
		if lat < latBot {
			lat = latBot
		}
		row = int((latTop - lat) / (latTop - latBot) * float64(height-1))
		col = int((c.Lon - lonL) / (lonR - lonL) * float64(width-1))
		return row, col
	}
	rank := func(r rune) int {
		for i, p := range priority {
			if p == r {
				return len(priority) - i
			}
		}
		return 0
	}
	best := make([][]rune, height)
	for i := range best {
		best[i] = make([]rune, width)
	}
	for i, c := range gazetteer {
		m, ok := markers[CityID(i)]
		if !ok {
			m = '·'
		}
		row, col := cell(c)
		if rank(m) >= rank(best[row][col]) || best[row][col] == 0 || best[row][col] == '·' {
			if best[row][col] == 0 || rank(m) >= rank(best[row][col]) {
				best[row][col] = m
				grid[row][col] = m
			}
		}
	}
	for _, line := range grid {
		if _, err := fmt.Fprintln(w, string(line)); err != nil {
			return err
		}
	}
	return nil
}
