package geo

// This file computes the §9 population-coverage quantities: the share of
// population within a radius of a PoP deployment (Fig. 12) and the
// cloud-vs-transit deployment comparison (Fig. 11).

// PaperRadiiKm are the radii the paper evaluates: large providers use 500,
// 700, and 1000 km as benchmarks for directing users to a nearby PoP.
var PaperRadiiKm = []float64{500, 700, 1000}

// Covered reports, for every gazetteer city, whether it lies within
// radiusKm of any PoP in the set.
func Covered(pops []CityID, radiusKm float64) []bool {
	out := make([]bool, len(gazetteer))
	for i := range gazetteer {
		for _, p := range pops {
			if CityDistanceKm(CityID(i), p) <= radiusKm {
				out[i] = true
				break
			}
		}
	}
	return out
}

// CoveragePct returns the percentage (0–100) of world population within
// radiusKm of the PoP set.
func CoveragePct(pops []CityID, radiusKm float64) float64 {
	cov := Covered(pops, radiusKm)
	var covered, total float64
	for i, c := range gazetteer {
		total += c.PopM
		if cov[i] {
			covered += c.PopM
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * covered / total
}

// CoverageByContinent returns, per continent, the percentage (0–100) of
// that continent's population within radiusKm of the PoP set.
func CoverageByContinent(pops []CityID, radiusKm float64) map[Continent]float64 {
	cov := Covered(pops, radiusKm)
	covered := make(map[Continent]float64)
	total := make(map[Continent]float64)
	for i, c := range gazetteer {
		total[c.Continent] += c.PopM
		if cov[i] {
			covered[c.Continent] += c.PopM
		}
	}
	out := make(map[Continent]float64, len(total))
	for cont, tot := range total {
		if tot > 0 {
			out[cont] = 100 * covered[cont] / tot
		}
	}
	return out
}

// Union merges PoP sets, de-duplicating cities.
func Union(sets ...[]CityID) []CityID {
	seen := make(map[CityID]bool)
	var out []CityID
	for _, s := range sets {
		for _, id := range s {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// DeploymentMap classifies PoP cities into the three Fig. 11 categories.
type DeploymentMap struct {
	CloudOnly   []CityID
	TransitOnly []CityID
	Both        []CityID
}

// CompareDeployments classifies the union of cloud and transit PoP cities:
// cities hosting only cloud PoPs, only transit PoPs, or both.
func CompareDeployments(cloud, transit []CityID) DeploymentMap {
	inCloud := make(map[CityID]bool, len(cloud))
	for _, id := range cloud {
		inCloud[id] = true
	}
	inTransit := make(map[CityID]bool, len(transit))
	for _, id := range transit {
		inTransit[id] = true
	}
	var dm DeploymentMap
	for _, id := range Union(cloud, transit) {
		switch {
		case inCloud[id] && inTransit[id]:
			dm.Both = append(dm.Both, id)
		case inCloud[id]:
			dm.CloudOnly = append(dm.CloudOnly, id)
		default:
			dm.TransitOnly = append(dm.TransitOnly, id)
		}
	}
	return dm
}
