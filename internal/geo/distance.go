package geo

import "math"

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance in kilometers between two
// (latitude, longitude) points given in degrees.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const degToRad = math.Pi / 180
	phi1 := lat1 * degToRad
	phi2 := lat2 * degToRad
	dPhi := (lat2 - lat1) * degToRad
	dLam := (lon2 - lon1) * degToRad
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// CityDistanceKm returns the great-circle distance between two gazetteer
// cities.
func CityDistanceKm(a, b CityID) float64 {
	ca, cb := gazetteer[a], gazetteer[b]
	return HaversineKm(ca.Lat, ca.Lon, cb.Lat, cb.Lon)
}
