// Package geo provides the geographic substrate for the paper's §9
// analysis: a world-city gazetteer with coordinates and population mass,
// great-circle distance, PoP (point-of-presence) deployments, and
// population-coverage integrals within radii of PoP sets.
//
// The gazetteer substitutes for the GPWv4 population-density raster the
// paper uses: population is concentrated at metro areas, so the percentage
// of population within 500/700/1000 km of a PoP set is well approximated by
// summing metro population mass over cities within the radius.
package geo

// Continent identifies one of the six populated continents, using the
// paper's Fig. 12 grouping.
type Continent uint8

const (
	Africa Continent = iota
	Asia
	Europe
	NorthAmerica
	Oceania
	SouthAmerica
	numContinents
)

func (c Continent) String() string {
	switch c {
	case Africa:
		return "Africa"
	case Asia:
		return "Asia"
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case Oceania:
		return "Oceania"
	case SouthAmerica:
		return "South America"
	}
	return "Unknown"
}

// Continents lists all continents in stable order.
func Continents() []Continent {
	return []Continent{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica}
}

// CityID indexes a city within the gazetteer.
type CityID int32

// City is one metro area: a population mass point with an IATA airport code
// used when synthesizing router hostnames (rdns package).
type City struct {
	Name      string
	Country   string
	Continent Continent
	Lat, Lon  float64
	// PopM is the metro population in millions.
	PopM float64
	// IATA is the metro's main airport code, lower-cased in hostnames.
	IATA string
}

// Cities returns the embedded gazetteer. The returned slice is shared and
// must not be modified.
func Cities() []City { return gazetteer }

// CityByIATA returns the gazetteer index of the city with the given airport
// code, or -1.
func CityByIATA(code string) CityID {
	for i, c := range gazetteer {
		if c.IATA == code {
			return CityID(i)
		}
	}
	return -1
}

// TotalPopulationM returns the summed metro population (millions) of the
// whole gazetteer, the denominator for world coverage percentages.
func TotalPopulationM() float64 {
	var s float64
	for _, c := range gazetteer {
		s += c.PopM
	}
	return s
}

// ContinentPopulationM returns the summed metro population (millions) per
// continent.
func ContinentPopulationM() map[Continent]float64 {
	out := make(map[Continent]float64, int(numContinents))
	for _, c := range gazetteer {
		out[c.Continent] += c.PopM
	}
	return out
}

// gazetteer is a compact world-city dataset: major metros per continent with
// approximate coordinates and metro populations. It is reference data, not
// measurement output; the experiments only depend on its mass distribution.
var gazetteer = []City{
	// North America
	{"New York", "US", NorthAmerica, 40.71, -74.01, 19.8, "jfk"},
	{"Los Angeles", "US", NorthAmerica, 34.05, -118.24, 13.2, "lax"},
	{"Chicago", "US", NorthAmerica, 41.88, -87.63, 9.5, "ord"},
	{"Dallas", "US", NorthAmerica, 32.78, -96.80, 7.6, "dfw"},
	{"Houston", "US", NorthAmerica, 29.76, -95.37, 7.1, "iah"},
	{"Washington", "US", NorthAmerica, 38.91, -77.04, 6.3, "iad"},
	{"Miami", "US", NorthAmerica, 25.76, -80.19, 6.1, "mia"},
	{"Philadelphia", "US", NorthAmerica, 39.95, -75.17, 6.2, "phl"},
	{"Atlanta", "US", NorthAmerica, 33.75, -84.39, 6.0, "atl"},
	{"Boston", "US", NorthAmerica, 42.36, -71.06, 4.9, "bos"},
	{"Phoenix", "US", NorthAmerica, 33.45, -112.07, 4.9, "phx"},
	{"San Francisco", "US", NorthAmerica, 37.77, -122.42, 4.7, "sfo"},
	{"Seattle", "US", NorthAmerica, 47.61, -122.33, 4.0, "sea"},
	{"San Jose", "US", NorthAmerica, 37.34, -121.89, 2.0, "sjc"},
	{"Denver", "US", NorthAmerica, 39.74, -104.99, 3.0, "den"},
	{"Minneapolis", "US", NorthAmerica, 44.98, -93.27, 3.7, "msp"},
	{"Detroit", "US", NorthAmerica, 42.33, -83.05, 4.3, "dtw"},
	{"Toronto", "CA", NorthAmerica, 43.65, -79.38, 6.3, "yyz"},
	{"Montreal", "CA", NorthAmerica, 45.50, -73.57, 4.3, "yul"},
	{"Vancouver", "CA", NorthAmerica, 49.28, -123.12, 2.6, "yvr"},
	{"Mexico City", "MX", NorthAmerica, 19.43, -99.13, 21.8, "mex"},
	{"Guadalajara", "MX", NorthAmerica, 20.66, -103.35, 5.3, "gdl"},
	{"Monterrey", "MX", NorthAmerica, 25.69, -100.32, 5.3, "mty"},
	{"Guatemala City", "GT", NorthAmerica, 14.63, -90.51, 3.0, "gua"},
	{"Panama City", "PA", NorthAmerica, 8.98, -79.52, 1.9, "pty"},
	{"Havana", "CU", NorthAmerica, 23.11, -82.37, 2.1, "hav"},
	{"Santo Domingo", "DO", NorthAmerica, 18.49, -69.93, 3.3, "sdq"},
	{"San Juan", "PR", NorthAmerica, 18.47, -66.11, 2.4, "sju"},
	// South America
	{"Sao Paulo", "BR", SouthAmerica, -23.55, -46.63, 22.0, "gru"},
	{"Rio de Janeiro", "BR", SouthAmerica, -22.91, -43.17, 13.5, "gig"},
	{"Brasilia", "BR", SouthAmerica, -15.79, -47.88, 4.7, "bsb"},
	{"Fortaleza", "BR", SouthAmerica, -3.72, -38.54, 4.1, "for"},
	{"Porto Alegre", "BR", SouthAmerica, -30.03, -51.22, 4.3, "poa"},
	{"Buenos Aires", "AR", SouthAmerica, -34.60, -58.38, 15.4, "eze"},
	{"Cordoba", "AR", SouthAmerica, -31.42, -64.18, 1.6, "cor"},
	{"Santiago", "CL", SouthAmerica, -33.45, -70.67, 6.9, "scl"},
	{"Lima", "PE", SouthAmerica, -12.05, -77.04, 11.0, "lim"},
	{"Bogota", "CO", SouthAmerica, 4.71, -74.07, 11.0, "bog"},
	{"Medellin", "CO", SouthAmerica, 6.25, -75.56, 4.0, "mde"},
	{"Caracas", "VE", SouthAmerica, 10.48, -66.90, 2.9, "ccs"},
	{"Quito", "EC", SouthAmerica, -0.18, -78.47, 2.0, "uio"},
	{"Montevideo", "UY", SouthAmerica, -34.90, -56.16, 1.8, "mvd"},
	{"La Paz", "BO", SouthAmerica, -16.50, -68.15, 1.9, "lpb"},
	{"Asuncion", "PY", SouthAmerica, -25.26, -57.58, 2.3, "asu"},
	// Europe
	{"London", "GB", Europe, 51.51, -0.13, 14.3, "lhr"},
	{"Paris", "FR", Europe, 48.86, 2.35, 12.3, "cdg"},
	{"Madrid", "ES", Europe, 40.42, -3.70, 6.7, "mad"},
	{"Barcelona", "ES", Europe, 41.39, 2.17, 5.6, "bcn"},
	{"Berlin", "DE", Europe, 52.52, 13.40, 4.5, "ber"},
	{"Frankfurt", "DE", Europe, 50.11, 8.68, 2.7, "fra"},
	{"Munich", "DE", Europe, 48.14, 11.58, 2.9, "muc"},
	{"Hamburg", "DE", Europe, 53.55, 9.99, 2.5, "ham"},
	{"Dusseldorf", "DE", Europe, 51.23, 6.78, 1.6, "dus"},
	{"Rome", "IT", Europe, 41.90, 12.50, 4.3, "fco"},
	{"Milan", "IT", Europe, 45.46, 9.19, 4.3, "mxp"},
	{"Amsterdam", "NL", Europe, 52.37, 4.90, 2.8, "ams"},
	{"Brussels", "BE", Europe, 50.85, 4.35, 2.1, "bru"},
	{"Vienna", "AT", Europe, 48.21, 16.37, 2.9, "vie"},
	{"Zurich", "CH", Europe, 47.37, 8.54, 1.4, "zrh"},
	{"Geneva", "CH", Europe, 46.20, 6.14, 0.6, "gva"},
	{"Stockholm", "SE", Europe, 59.33, 18.07, 2.4, "arn"},
	{"Copenhagen", "DK", Europe, 55.68, 12.57, 2.1, "cph"},
	{"Oslo", "NO", Europe, 59.91, 10.75, 1.6, "osl"},
	{"Helsinki", "FI", Europe, 60.17, 24.94, 1.5, "hel"},
	{"Dublin", "IE", Europe, 53.35, -6.26, 2.0, "dub"},
	{"Manchester", "GB", Europe, 53.48, -2.24, 2.9, "man"},
	{"Lisbon", "PT", Europe, 38.72, -9.14, 2.9, "lis"},
	{"Warsaw", "PL", Europe, 52.23, 21.01, 3.1, "waw"},
	{"Prague", "CZ", Europe, 50.08, 14.44, 2.7, "prg"},
	{"Budapest", "HU", Europe, 47.50, 19.04, 3.0, "bud"},
	{"Bucharest", "RO", Europe, 44.43, 26.10, 2.3, "otp"},
	{"Sofia", "BG", Europe, 42.70, 23.32, 1.7, "sof"},
	{"Athens", "GR", Europe, 37.98, 23.73, 3.6, "ath"},
	{"Istanbul", "TR", Europe, 41.01, 28.98, 15.8, "ist"},
	{"Kyiv", "UA", Europe, 50.45, 30.52, 3.0, "kbp"},
	{"Moscow", "RU", Europe, 55.76, 37.62, 12.6, "svo"},
	{"St Petersburg", "RU", Europe, 59.93, 30.34, 5.4, "led"},
	{"Belgrade", "RS", Europe, 44.79, 20.45, 1.7, "beg"},
	{"Zagreb", "HR", Europe, 45.82, 15.98, 1.1, "zag"},
	{"Marseille", "FR", Europe, 43.30, 5.37, 1.9, "mrs"},
	// Asia
	{"Tokyo", "JP", Asia, 35.68, 139.69, 37.3, "nrt"},
	{"Osaka", "JP", Asia, 34.69, 135.50, 19.1, "kix"},
	{"Nagoya", "JP", Asia, 35.18, 136.91, 9.5, "ngo"},
	{"Seoul", "KR", Asia, 37.57, 126.98, 25.5, "icn"},
	{"Busan", "KR", Asia, 35.18, 129.08, 3.4, "pus"},
	{"Beijing", "CN", Asia, 39.90, 116.41, 20.9, "pek"},
	{"Shanghai", "CN", Asia, 31.23, 121.47, 27.8, "pvg"},
	{"Guangzhou", "CN", Asia, 23.13, 113.26, 13.9, "can"},
	{"Shenzhen", "CN", Asia, 22.54, 114.06, 12.6, "szx"},
	{"Chengdu", "CN", Asia, 30.57, 104.07, 9.3, "ctu"},
	{"Wuhan", "CN", Asia, 30.59, 114.31, 8.4, "wuh"},
	{"Hong Kong", "HK", Asia, 22.32, 114.17, 7.5, "hkg"},
	{"Taipei", "TW", Asia, 25.03, 121.57, 7.0, "tpe"},
	{"Singapore", "SG", Asia, 1.35, 103.82, 5.9, "sin"},
	{"Kuala Lumpur", "MY", Asia, 3.14, 101.69, 8.0, "kul"},
	{"Bangkok", "TH", Asia, 13.76, 100.50, 10.7, "bkk"},
	{"Jakarta", "ID", Asia, -6.21, 106.85, 10.6, "cgk"},
	{"Surabaya", "ID", Asia, -7.26, 112.75, 3.0, "sub"},
	{"Manila", "PH", Asia, 14.60, 120.98, 13.9, "mnl"},
	{"Ho Chi Minh City", "VN", Asia, 10.82, 106.63, 9.0, "sgn"},
	{"Hanoi", "VN", Asia, 21.03, 105.85, 8.1, "han"},
	{"Mumbai", "IN", Asia, 19.08, 72.88, 20.7, "bom"},
	{"Delhi", "IN", Asia, 28.70, 77.10, 31.2, "del"},
	{"Bangalore", "IN", Asia, 12.97, 77.59, 12.8, "blr"},
	{"Chennai", "IN", Asia, 13.08, 80.27, 11.2, "maa"},
	{"Hyderabad", "IN", Asia, 17.39, 78.49, 10.3, "hyd"},
	{"Kolkata", "IN", Asia, 22.57, 88.36, 14.9, "ccu"},
	{"Karachi", "PK", Asia, 24.86, 67.01, 16.5, "khi"},
	{"Lahore", "PK", Asia, 31.55, 74.34, 13.1, "lhe"},
	{"Dhaka", "BD", Asia, 23.81, 90.41, 21.7, "dac"},
	{"Colombo", "LK", Asia, 6.93, 79.85, 2.3, "cmb"},
	{"Dubai", "AE", Asia, 25.20, 55.27, 3.5, "dxb"},
	{"Riyadh", "SA", Asia, 24.71, 46.68, 7.5, "ruh"},
	{"Jeddah", "SA", Asia, 21.49, 39.19, 4.7, "jed"},
	{"Tel Aviv", "IL", Asia, 32.09, 34.78, 4.2, "tlv"},
	{"Tehran", "IR", Asia, 35.69, 51.39, 9.5, "ika"},
	{"Baghdad", "IQ", Asia, 33.31, 44.36, 7.5, "bgw"},
	{"Almaty", "KZ", Asia, 43.22, 76.85, 2.0, "ala"},
	{"Tashkent", "UZ", Asia, 41.30, 69.24, 2.6, "tas"},
	{"Doha", "QA", Asia, 25.29, 51.53, 2.4, "doh"},
	{"Kuwait City", "KW", Asia, 29.38, 47.99, 3.1, "kwi"},
	{"Amman", "JO", Asia, 31.96, 35.95, 2.2, "amm"},
	// Africa
	{"Cairo", "EG", Africa, 30.04, 31.24, 21.3, "cai"},
	{"Alexandria", "EG", Africa, 31.20, 29.92, 5.4, "hbe"},
	{"Lagos", "NG", Africa, 6.52, 3.38, 14.9, "los"},
	{"Abuja", "NG", Africa, 9.07, 7.40, 3.6, "abv"},
	{"Kinshasa", "CD", Africa, -4.44, 15.27, 14.9, "fih"},
	{"Johannesburg", "ZA", Africa, -26.20, 28.05, 10.0, "jnb"},
	{"Cape Town", "ZA", Africa, -33.92, 18.42, 4.7, "cpt"},
	{"Durban", "ZA", Africa, -29.86, 31.03, 3.2, "dur"},
	{"Nairobi", "KE", Africa, -1.29, 36.82, 5.1, "nbo"},
	{"Addis Ababa", "ET", Africa, 9.03, 38.74, 5.0, "add"},
	{"Dar es Salaam", "TZ", Africa, -6.79, 39.21, 7.0, "dar"},
	{"Accra", "GH", Africa, 5.60, -0.19, 2.6, "acc"},
	{"Abidjan", "CI", Africa, 5.36, -4.01, 5.3, "abj"},
	{"Dakar", "SN", Africa, 14.72, -17.47, 3.3, "dss"},
	{"Casablanca", "MA", Africa, 33.57, -7.59, 3.8, "cmn"},
	{"Algiers", "DZ", Africa, 36.74, 3.09, 2.8, "alg"},
	{"Tunis", "TN", Africa, 36.81, 10.18, 2.4, "tun"},
	{"Kampala", "UG", Africa, 0.35, 32.58, 3.7, "ebb"},
	{"Luanda", "AO", Africa, -8.84, 13.29, 8.6, "lad"},
	{"Khartoum", "SD", Africa, 15.50, 32.56, 6.0, "krt"},
	{"Maputo", "MZ", Africa, -25.97, 32.57, 1.8, "mpm"},
	// Oceania
	{"Sydney", "AU", Oceania, -33.87, 151.21, 5.4, "syd"},
	{"Melbourne", "AU", Oceania, -37.81, 144.96, 5.2, "mel"},
	{"Brisbane", "AU", Oceania, -27.47, 153.03, 2.6, "bne"},
	{"Perth", "AU", Oceania, -31.95, 115.86, 2.1, "per"},
	{"Adelaide", "AU", Oceania, -34.93, 138.60, 1.4, "adl"},
	{"Auckland", "NZ", Oceania, -36.85, 174.76, 1.7, "akl"},
	{"Wellington", "NZ", Oceania, -41.29, 174.78, 0.4, "wlg"},
	{"Port Moresby", "PG", Oceania, -9.44, 147.18, 0.4, "pom"},
	{"Suva", "FJ", Oceania, -18.14, 178.44, 0.2, "suv"},
	{"Honolulu", "US", Oceania, 21.31, -157.86, 1.0, "hnl"},
}
