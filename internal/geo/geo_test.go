package geo

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		a, b        string
		wantKm      float64
		toleranceKm float64
	}{
		{"jfk", "lhr", 5540, 60},  // New York - London
		{"lax", "nrt", 8770, 100}, // Los Angeles - Tokyo
		{"syd", "akl", 2150, 60},  // Sydney - Auckland
		{"fra", "ams", 360, 30},   // Frankfurt - Amsterdam
	}
	for _, c := range cases {
		ai, bi := CityByIATA(c.a), CityByIATA(c.b)
		if ai < 0 || bi < 0 {
			t.Fatalf("missing city %s or %s", c.a, c.b)
		}
		got := CityDistanceKm(ai, bi)
		if math.Abs(got-c.wantKm) > c.toleranceKm {
			t.Errorf("dist(%s,%s) = %.0f km, want %.0f±%.0f", c.a, c.b, got, c.wantKm, c.toleranceKm)
		}
	}
}

func TestHaversineMetricProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		// Clamp into valid ranges.
		clampLat := func(x float64) float64 { return math.Mod(math.Abs(x), 180) - 90 }
		clampLon := func(x float64) float64 { return math.Mod(math.Abs(x), 360) - 180 }
		a1, o1 := clampLat(lat1), clampLon(lon1)
		a2, o2 := clampLat(lat2), clampLon(lon2)
		d12 := HaversineKm(a1, o1, a2, o2)
		d21 := HaversineKm(a2, o2, a1, o1)
		dSelf := HaversineKm(a1, o1, a1, o1)
		const maxDist = math.Pi * EarthRadiusKm
		return d12 >= 0 && d12 <= maxDist+1 &&
			math.Abs(d12-d21) < 1e-6 &&
			dSelf < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGazetteerIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cities() {
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Errorf("%s: bad coordinates (%v, %v)", c.Name, c.Lat, c.Lon)
		}
		if c.PopM <= 0 {
			t.Errorf("%s: nonpositive population", c.Name)
		}
		if len(c.IATA) != 3 {
			t.Errorf("%s: bad IATA %q", c.Name, c.IATA)
		}
		if seen[c.IATA] {
			t.Errorf("duplicate IATA %q", c.IATA)
		}
		seen[c.IATA] = true
	}
	if len(Cities()) < 120 {
		t.Errorf("gazetteer has %d cities, want >= 120", len(Cities()))
	}
	// All continents populated.
	byCont := ContinentPopulationM()
	for _, cont := range Continents() {
		if byCont[cont] <= 0 {
			t.Errorf("continent %v empty", cont)
		}
	}
}

func TestCoverage(t *testing.T) {
	// Empty PoP set covers nothing.
	if got := CoveragePct(nil, 500); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	// The whole gazetteer as PoPs covers everything.
	all := make([]CityID, len(Cities()))
	for i := range all {
		all[i] = CityID(i)
	}
	if got := CoveragePct(all, 1); got < 99.9 {
		t.Errorf("full coverage = %v", got)
	}
	// Coverage grows with radius.
	pops := []CityID{CityByIATA("fra"), CityByIATA("jfk"), CityByIATA("sin")}
	c500 := CoveragePct(pops, 500)
	c1000 := CoveragePct(pops, 1000)
	if !(c500 > 0 && c1000 >= c500 && c1000 < 100) {
		t.Errorf("coverage not monotone/sane: 500km=%v 1000km=%v", c500, c1000)
	}
	// A Frankfurt PoP covers Europe far better than Africa.
	byCont := CoverageByContinent([]CityID{CityByIATA("fra")}, 1000)
	if byCont[Europe] <= byCont[Africa] {
		t.Errorf("Frankfurt covers Africa (%v) >= Europe (%v)", byCont[Africa], byCont[Europe])
	}
}

func TestCompareDeployments(t *testing.T) {
	fra, jfk, sin := CityByIATA("fra"), CityByIATA("jfk"), CityByIATA("sin")
	dm := CompareDeployments([]CityID{fra, jfk}, []CityID{jfk, sin})
	if len(dm.CloudOnly) != 1 || dm.CloudOnly[0] != fra {
		t.Errorf("CloudOnly = %v", dm.CloudOnly)
	}
	if len(dm.TransitOnly) != 1 || dm.TransitOnly[0] != sin {
		t.Errorf("TransitOnly = %v", dm.TransitOnly)
	}
	if len(dm.Both) != 1 || dm.Both[0] != jfk {
		t.Errorf("Both = %v", dm.Both)
	}
}

func TestUnion(t *testing.T) {
	a := []CityID{1, 2, 3}
	b := []CityID{3, 4}
	u := Union(a, b)
	if len(u) != 4 {
		t.Errorf("Union = %v", u)
	}
}

func TestRenderASCIIMap(t *testing.T) {
	var buf bytes.Buffer
	markers := map[CityID]rune{
		CityByIATA("jfk"): 'B',
		CityByIATA("fra"): 'T',
		CityByIATA("syd"): 'C',
	}
	if err := RenderASCIIMap(&buf, markers, []rune{'B', 'T', 'C'}, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"B", "T", "C", "·"} {
		if !strings.Contains(out, m) {
			t.Errorf("map missing marker %q", m)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 30 {
		t.Errorf("map has %d rows, want 30 at width 100", len(lines))
	}
	for i, l := range lines {
		if len([]rune(l)) != 100 {
			t.Errorf("row %d has %d columns", i, len([]rune(l)))
		}
	}
	// New York is in the upper-left quadrant, Sydney lower-right.
	findMarker := func(m rune) (row, col int) {
		for r, l := range lines {
			for c, ch := range []rune(l) {
				if ch == m {
					return r, c
				}
			}
		}
		return -1, -1
	}
	br, bc := findMarker('B')
	cr, cc := findMarker('C')
	if !(br < cr && bc < cc) {
		t.Errorf("geometry wrong: B at (%d,%d), C at (%d,%d)", br, bc, cr, cc)
	}
	// Tiny width is clamped rather than failing.
	var small bytes.Buffer
	if err := RenderASCIIMap(&small, nil, nil, 1); err != nil {
		t.Fatal(err)
	}
	if small.Len() == 0 {
		t.Error("clamped map empty")
	}
}

func TestContinentsStable(t *testing.T) {
	conts := Continents()
	if len(conts) != 6 {
		t.Fatalf("got %d continents", len(conts))
	}
	seen := map[string]bool{}
	for _, c := range conts {
		if c.String() == "Unknown" {
			t.Errorf("continent %d has no name", c)
		}
		if seen[c.String()] {
			t.Errorf("duplicate continent %s", c)
		}
		seen[c.String()] = true
	}
	if Continent(99).String() != "Unknown" {
		t.Error("out-of-range continent not Unknown")
	}
	if TotalPopulationM() < 500 {
		t.Errorf("world metro population %.0fM implausibly low", TotalPopulationM())
	}
	if CityByIATA("zzz") != -1 {
		t.Error("unknown IATA resolved")
	}
}
