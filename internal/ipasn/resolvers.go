package ipasn

import (
	"net/netip"

	"flatnet/internal/astopo"
	"flatnet/internal/netdb"
)

// Resolver maps an IP address to the AS it should be attributed to.
type Resolver interface {
	// Resolve returns the AS for addr, or ok=false when the source has
	// no answer.
	Resolve(addr netip.Addr) (astopo.ASN, bool)
	// Name identifies the data source in diagnostics.
	Name() string
}

// Cymru is the Team-Cymru-style resolver: longest-prefix match over the
// prefixes announced in BGP. Addresses in unannounced space (most IXP LANs,
// by design) fail; addresses in *announced* IXP LANs resolve to the
// exchange's route-server ASN — the wrong answer for border mapping, which
// is why the paper's final methodology prefers PeeringDB (§5).
type Cymru struct {
	trie Trie
}

// NewCymru indexes the announced prefixes.
func NewCymru(prefixes []netdb.PrefixOrigin) (*Cymru, error) {
	c := &Cymru{}
	for _, po := range prefixes {
		if err := c.trie.Insert(po.Prefix, po.Origin); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Resolve implements Resolver.
func (c *Cymru) Resolve(addr netip.Addr) (astopo.ASN, bool) { return c.trie.Lookup(addr) }

// Name implements Resolver.
func (c *Cymru) Name() string { return "cymru" }

// PeeringDB resolves exchange LAN addresses to the member AS holding them
// (the netixlan table). It answers only for addresses it has records for.
type PeeringDB struct {
	byAddr map[netip.Addr]astopo.ASN
}

// NewPeeringDB indexes the IXP LANs' member addresses, applying the
// stale-row errors the operator database carries.
func NewPeeringDB(lans []netdb.IXPLan) *PeeringDB {
	p := &PeeringDB{byAddr: make(map[netip.Addr]astopo.ASN)}
	for _, lan := range lans {
		for member, addr := range lan.MemberAddr {
			p.byAddr[addr] = member
		}
		for addr, wrong := range lan.StaleEntries {
			p.byAddr[addr] = wrong
		}
	}
	return p
}

// Resolve implements Resolver.
func (p *PeeringDB) Resolve(addr netip.Addr) (astopo.ASN, bool) {
	a, ok := p.byAddr[addr]
	return a, ok
}

// Name implements Resolver.
func (p *PeeringDB) Name() string { return "peeringdb" }

// Whois resolves via address allocations: any address inside an AS's
// allocated block maps to that AS. IXP LANs are registered to exchange
// operators, which are organizations rather than routed ASes, so Whois
// reports no AS for them (the paper then falls through to PeeringDB).
type Whois struct {
	trie Trie
}

// NewWhois indexes the per-AS allocations of the plan (announced or not),
// including unannounced infrastructure blocks.
func NewWhois(plan *netdb.Plan) (*Whois, error) {
	w := &Whois{}
	for asn, pfx := range plan.ASPrefix {
		if err := w.trie.Insert(pfx, asn); err != nil {
			return nil, err
		}
	}
	for asn, pfx := range plan.Infra {
		if err := w.trie.Insert(pfx, asn); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Resolve implements Resolver.
func (w *Whois) Resolve(addr netip.Addr) (astopo.ASN, bool) { return w.trie.Lookup(addr) }

// Name implements Resolver.
func (w *Whois) Name() string { return "whois" }

// Chain tries resolvers in order, returning the first answer. The order is
// the §5 methodology knob: the naive stage is Cymru-only; the improved
// stage adds PeeringDB and whois after Cymru; the final stage puts
// PeeringDB first so announced IXP LANs resolve to members, not exchange
// ASNs.
type Chain struct {
	resolvers []Resolver
	name      string
}

// NewChain builds an ordered chain.
func NewChain(name string, rs ...Resolver) *Chain {
	return &Chain{resolvers: rs, name: name}
}

// Resolve implements Resolver.
func (c *Chain) Resolve(addr netip.Addr) (astopo.ASN, bool) {
	for _, r := range c.resolvers {
		if a, ok := r.Resolve(addr); ok {
			return a, ok
		}
	}
	return 0, false
}

// Name implements Resolver.
func (c *Chain) Name() string { return c.name }
