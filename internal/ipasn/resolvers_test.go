package ipasn

import (
	"net/netip"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/netdb"
	"flatnet/internal/topogen"
)

type fixture struct {
	in    *topogen.Internet
	plan  *netdb.Plan
	cymru *Cymru
	pdb   *PeeringDB
	whois *Whois
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(0.02138))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	cymru, err := NewCymru(plan.AnnouncedPrefixes())
	if err != nil {
		t.Fatal(err)
	}
	whois, err := NewWhois(plan)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{in: in, plan: plan, cymru: cymru, pdb: NewPeeringDB(plan.Lans), whois: whois}
}

func (f *fixture) lanByAnnounced(t *testing.T, announced bool) netdb.IXPLan {
	t.Helper()
	for _, lan := range f.plan.Lans {
		if lan.Announced == announced && len(lan.MemberAddr) > 0 {
			return lan
		}
	}
	t.Fatalf("no IXP LAN with announced=%v", announced)
	return netdb.IXPLan{}
}

func TestCymruResolvesASSpace(t *testing.T) {
	f := newFixture(t)
	for _, a := range f.in.Graph.ASes()[:100] {
		addr := f.plan.ASPrefix[a].Addr().Next()
		got, ok := f.cymru.Resolve(addr)
		if !ok || got != a {
			t.Fatalf("Cymru(%v) = %d,%v, want AS%d", addr, got, ok, a)
		}
	}
}

func TestCymruFailsOnUnannouncedLan(t *testing.T) {
	f := newFixture(t)
	lan := f.lanByAnnounced(t, false)
	for _, addr := range lan.MemberAddr {
		if asn, ok := f.cymru.Resolve(addr); ok {
			t.Fatalf("Cymru resolved unannounced LAN addr %v to AS%d", addr, asn)
		}
		break
	}
}

func TestCymruReturnsOperatorForAnnouncedLan(t *testing.T) {
	f := newFixture(t)
	lan := f.lanByAnnounced(t, true)
	var member astopo.ASN
	var addr netip.Addr
	for m, a := range lan.MemberAddr {
		member, addr = m, a
		break
	}
	got, ok := f.cymru.Resolve(addr)
	if !ok {
		t.Fatal("announced LAN addr did not resolve")
	}
	if got != lan.OperatorASN {
		t.Errorf("Cymru(%v) = AS%d, want exchange operator AS%d", addr, got, lan.OperatorASN)
	}
	if got == member {
		t.Error("Cymru returned the member — the §5 artifact is not reproduced")
	}
}

func TestPeeringDBResolvesMembers(t *testing.T) {
	f := newFixture(t)
	good, bad, stale := 0, 0, 0
	for _, lan := range f.plan.Lans {
		for member, addr := range lan.MemberAddr {
			got, ok := f.pdb.Resolve(addr)
			if !ok {
				t.Fatalf("PeeringDB(%v) unresolved", addr)
			}
			switch {
			case got == member:
				good++
			case lan.StaleEntries[addr] == got:
				stale++
			default:
				bad++
			}
		}
	}
	if bad != 0 {
		t.Errorf("%d addresses resolved to neither the member nor a recorded stale entry", bad)
	}
	if good == 0 || stale == 0 {
		t.Errorf("good=%d stale=%d; want both nonzero", good, stale)
	}
	if frac := float64(stale) / float64(good+stale); frac > 0.10 {
		t.Errorf("stale fraction %.3f too high", frac)
	}
	if _, ok := f.pdb.Resolve(netip.MustParseAddr("8.8.8.8")); ok {
		t.Error("PeeringDB answered for non-IXP space")
	}
}

func TestWhoisCoversAllocationsNotLans(t *testing.T) {
	f := newFixture(t)
	a := f.in.Clouds["Google"]
	addr := f.plan.ASPrefix[a].Addr().Next().Next()
	if got, ok := f.whois.Resolve(addr); !ok || got != a {
		t.Errorf("Whois(%v) = %d,%v, want AS%d", addr, got, ok, a)
	}
	lan := f.lanByAnnounced(t, false)
	for _, addr := range lan.MemberAddr {
		if asn, ok := f.whois.Resolve(addr); ok {
			t.Errorf("Whois resolved IXP LAN addr %v to AS%d; exchanges are orgs, not ASes", addr, asn)
		}
		break
	}
}

func TestChainOrderingMatters(t *testing.T) {
	f := newFixture(t)
	lan := f.lanByAnnounced(t, true)
	var member astopo.ASN
	var addr netip.Addr
	for m, a := range lan.MemberAddr {
		member, addr = m, a
		break
	}
	cymruFirst := NewChain("cymru-first", f.cymru, f.pdb, f.whois)
	pdbFirst := NewChain("pdb-first", f.pdb, f.cymru, f.whois)
	if got, _ := cymruFirst.Resolve(addr); got != lan.OperatorASN {
		t.Errorf("cymru-first chain = AS%d, want operator AS%d", got, lan.OperatorASN)
	}
	if got, _ := pdbFirst.Resolve(addr); got != member {
		t.Errorf("pdb-first chain = AS%d, want member AS%d", got, member)
	}
	if cymruFirst.Name() != "cymru-first" {
		t.Error("chain name lost")
	}
	if _, ok := pdbFirst.Resolve(netip.MustParseAddr("240.0.0.1")); ok {
		t.Error("chain resolved garbage")
	}
}
