// Package ipasn implements IP→AS resolution the way the paper's pipeline
// does (§4.1, §5): a Team-Cymru-style longest-prefix match over announced
// prefixes, a PeeringDB lookup for IXP LAN addresses, a whois fallback over
// address allocations, and resolver chains reproducing each methodology
// stage the paper iterated through.
package ipasn

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"flatnet/internal/astopo"
)

// Trie is a binary radix tree over IPv4 prefixes supporting longest-prefix
// match. The zero value is an empty trie ready for use.
type Trie struct {
	root *trieNode
	n    int
}

type trieNode struct {
	child [2]*trieNode
	asn   astopo.ASN
	set   bool
}

// Insert associates a prefix with an origin AS. Inserting the same prefix
// twice overwrites the origin (last announcement wins, like a routing
// table).
func (t *Trie) Insert(p netip.Prefix, asn astopo.ASN) error {
	if !p.Addr().Is4() {
		return fmt.Errorf("ipasn: prefix %v is not IPv4", p)
	}
	if p.Bits() < 0 || p.Bits() > 32 {
		return fmt.Errorf("ipasn: invalid prefix length %d", p.Bits())
	}
	v := addrUint32(p.Addr())
	if t.root == nil {
		t.root = &trieNode{}
	}
	cur := t.root
	for i := 0; i < p.Bits(); i++ {
		bit := (v >> (31 - uint(i))) & 1
		if cur.child[bit] == nil {
			cur.child[bit] = &trieNode{}
		}
		cur = cur.child[bit]
	}
	if !cur.set {
		t.n++
	}
	cur.asn = asn
	cur.set = true
	return nil
}

// Lookup returns the origin AS of the longest matching prefix.
func (t *Trie) Lookup(a netip.Addr) (astopo.ASN, bool) {
	if t.root == nil || !a.Is4() {
		return 0, false
	}
	v := addrUint32(a)
	var best astopo.ASN
	found := false
	cur := t.root
	for i := 0; i <= 32; i++ {
		if cur.set {
			best, found = cur.asn, true
		}
		if i == 32 {
			break
		}
		bit := (v >> (31 - uint(i))) & 1
		if cur.child[bit] == nil {
			break
		}
		cur = cur.child[bit]
	}
	return best, found
}

// Len returns the number of distinct prefixes stored.
func (t *Trie) Len() int { return t.n }

func addrUint32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}
