package ipasn

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"flatnet/internal/astopo"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	var tr Trie
	inserts := []struct {
		p   string
		asn astopo.ASN
	}{
		{"10.0.0.0/8", 1},
		{"10.1.0.0/16", 2},
		{"10.1.2.0/24", 3},
		{"0.0.0.0/0", 99},
	}
	for _, in := range inserts {
		if err := tr.Insert(mustPrefix(t, in.p), in.asn); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		addr string
		want astopo.ASN
	}{
		{"10.1.2.3", 3},
		{"10.1.3.1", 2},
		{"10.9.9.9", 1},
		{"11.0.0.1", 99},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d,%v, want %d", c.addr, got, ok, c.want)
		}
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieEmptyAndMisses(t *testing.T) {
	var tr Trie
	if _, ok := tr.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty trie returned a match")
	}
	if err := tr.Insert(mustPrefix(t, "192.168.0.0/16"), 7); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("miss returned a match")
	}
	if _, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 lookup returned a match")
	}
	if err := tr.Insert(netip.MustParsePrefix("2001:db8::/32"), 7); err == nil {
		t.Error("IPv6 insert accepted")
	}
}

func TestTrieOverwrite(t *testing.T) {
	var tr Trie
	p := mustPrefix(t, "10.0.0.0/8")
	if err := tr.Insert(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(p, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Lookup(netip.MustParseAddr("10.0.0.1")); got != 2 {
		t.Errorf("overwrite: got %d", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after overwrite = %d", tr.Len())
	}
}

// Property: trie lookup equals a linear scan picking the longest matching
// prefix (highest bits wins, last-inserted wins ties).
func TestTrieMatchesLinearScan(t *testing.T) {
	type entry struct {
		p   netip.Prefix
		asn astopo.ASN
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Trie
		var entries []entry
		for i := 0; i < 50; i++ {
			bits := rng.Intn(25) + 8
			v := rng.Uint32() &^ (1<<(32-uint(bits)) - 1)
			var b [4]byte
			b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
			p := netip.PrefixFrom(netip.AddrFrom4(b), bits)
			asn := astopo.ASN(rng.Intn(1000) + 1)
			if err := tr.Insert(p, asn); err != nil {
				return false
			}
			entries = append(entries, entry{p, asn})
		}
		for i := 0; i < 100; i++ {
			var b [4]byte
			rng.Read(b[:])
			addr := netip.AddrFrom4(b)
			var want astopo.ASN
			bestBits := -1
			for _, e := range entries {
				if e.p.Contains(addr) && e.p.Bits() >= bestBits {
					// >= so the LAST inserted equal-length prefix
					// wins, matching Insert's overwrite.
					if e.p.Bits() > bestBits {
						bestBits = e.p.Bits()
						want = e.asn
					} else {
						want = e.asn
					}
				}
			}
			got, ok := tr.Lookup(addr)
			if bestBits < 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
