// Package mmap maps files into memory read-only so large on-disk arrays can
// be served zero-copy, with a plain read-into-heap fallback on platforms
// without mmap support.
//
// The returned bytes are shared with the page cache when mapped: loads fault
// pages in on demand (load cost is O(pages touched), not O(file size)), and
// stores are forbidden — the mapping is PROT_READ, so writing to memory
// borrowed from it faults. Consumers that hold slices cast from a mapping
// must treat them as immutable and must not use them after Close.
package mmap

// Mapping is a read-only view of a file's contents.
type Mapping struct {
	data   []byte
	mapped bool // true when backed by an OS mapping rather than the heap
}

// Data returns the file contents. The slice is read-only when Mapped
// reports true; treat it as immutable either way.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether the bytes are served from an OS file mapping
// (zero-copy) rather than a heap copy.
func (m *Mapping) Mapped() bool { return m.mapped }
