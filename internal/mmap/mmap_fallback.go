//go:build !linux

package mmap

import "os"

// Open reads the file into the heap on platforms without the mmap fast
// path. Callers observe the same API; Mapped reports false.
func Open(path string) (*Mapping, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: raw}, nil
}

// Close releases the buffer. The Mapping's bytes must not be used
// afterwards.
func (m *Mapping) Close() error {
	m.data = nil
	return nil
}
