//go:build linux

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

// Open maps the file at path read-only. Empty files yield an empty,
// unmapped Mapping. On mmap failure (e.g. a filesystem that rejects
// mappings) it falls back to reading the file into the heap.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("mmap: %s: size %d overflows int", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, fmt.Errorf("mmap: %s: %v (fallback read: %w)", path, err, rerr)
		}
		return &Mapping{data: raw}, nil
	}
	return &Mapping{data: data, mapped: true}, nil
}

// Close releases the mapping. The Mapping's bytes must not be used
// afterwards.
func (m *Mapping) Close() error {
	if !m.mapped || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	m.mapped = false
	return syscall.Munmap(data)
}
