// Package neighbors infers a cloud provider's neighbor ASes from traceroute
// measurements, reproducing the paper's methodology including the iterative
// refinements of §5:
//
//	StageNaive     Team-Cymru-only resolution; a single unknown or
//	               unresponsive hop after the last cloud hop is skipped
//	               (the initial assumption the paper identified as the
//	               leading cause of false positives).
//	StageDiscard   unresponsive border hops discard the traceroute;
//	               unresolved-but-responsive hops fall through Cymru to
//	               PeeringDB and whois.
//	StageFinal     PeeringDB preferred over Cymru for resolution, so that
//	               addresses inside *announced* IXP LANs resolve to the
//	               member AS rather than the exchange ASN.
//
// Validation against the generator's ground truth yields the same
// false-discovery-rate / false-negative-rate quantities the cloud operators
// reported to the authors.
package neighbors

import (
	"fmt"

	"flatnet/internal/astopo"
	"flatnet/internal/ipasn"
	"flatnet/internal/netdb"
	"flatnet/internal/tracesim"
)

// Stage selects the methodology variant.
type Stage int

const (
	// StageNaive is the initial methodology (~50% FDR in the paper).
	StageNaive Stage = iota
	// StageDiscard discards unresponsive borders and adds PeeringDB and
	// whois fallbacks after Cymru.
	StageDiscard
	// StageFinal prefers PeeringDB over Cymru.
	StageFinal
)

func (s Stage) String() string {
	switch s {
	case StageNaive:
		return "naive"
	case StageDiscard:
		return "discard-unresponsive"
	case StageFinal:
		return "final"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages lists the methodology stages in refinement order.
func Stages() []Stage { return []Stage{StageNaive, StageDiscard, StageFinal} }

// Resolvers bundles the three data sources.
type Resolvers struct {
	Cymru *ipasn.Cymru
	PDB   *ipasn.PeeringDB
	Whois *ipasn.Whois
}

// NewResolvers builds the bundle from an address plan.
func NewResolvers(plan *netdb.Plan) (Resolvers, error) {
	cymru, err := ipasn.NewCymru(plan.AnnouncedPrefixes())
	if err != nil {
		return Resolvers{}, err
	}
	whois, err := ipasn.NewWhois(plan)
	if err != nil {
		return Resolvers{}, err
	}
	return Resolvers{Cymru: cymru, PDB: ipasn.NewPeeringDB(plan.Lans), Whois: whois}, nil
}

// chain returns the stage's resolver ordering.
func (r Resolvers) chain(stage Stage) ipasn.Resolver {
	switch stage {
	case StageNaive:
		return ipasn.NewChain("naive", r.Cymru)
	case StageDiscard:
		return ipasn.NewChain("discard", r.Cymru, r.PDB, r.Whois)
	default:
		return ipasn.NewChain("final", r.PDB, r.Cymru, r.Whois)
	}
}

// Inference is the result of running the pipeline over a traceroute corpus.
type Inference struct {
	Cloud     astopo.ASN
	Stage     Stage
	Neighbors astopo.ASSet
	// Retained counts traceroutes that contributed a neighbor; Discarded
	// counts those rejected by the sanitization rules.
	Retained, Discarded int
}

// Infer runs the pipeline for one cloud over per-VM traceroute groups.
func Infer(groups [][]tracesim.Traceroute, cloud astopo.ASN, res Resolvers, stage Stage) Inference {
	out := Inference{Cloud: cloud, Stage: stage, Neighbors: make(astopo.ASSet)}
	chain := res.chain(stage)
	for _, group := range groups {
		for i := range group {
			n, ok := extractNeighbor(&group[i], cloud, chain, stage)
			if !ok {
				out.Discarded++
				continue
			}
			out.Retained++
			out.Neighbors.Add(n)
		}
	}
	return out
}

// extractNeighbor applies the paper's border rule to one traceroute: find
// the last hop resolving to the cloud, then identify the first subsequent
// hop resolving to a different AS, subject to the stage's skip/discard
// rules for unresponsive and unresolved hops in between.
func extractNeighbor(tr *tracesim.Traceroute, cloud astopo.ASN, chain ipasn.Resolver, stage Stage) (astopo.ASN, bool) {
	type hopRes struct {
		asn      astopo.ASN
		resolved bool
		replied  bool
	}
	hops := make([]hopRes, len(tr.Hops))
	lastCloud := -1
	for i, h := range tr.Hops {
		hops[i].replied = h.Responded()
		if h.Responded() {
			if asn, ok := chain.Resolve(h.Addr); ok {
				hops[i].asn = asn
				hops[i].resolved = true
				if asn == cloud {
					lastCloud = i
				}
			}
		}
	}
	if lastCloud < 0 || lastCloud == len(hops)-1 {
		return 0, false
	}
	j := lastCloud + 1
	if stage == StageNaive {
		// The initial assumption: one unknown or unresponsive hop
		// between the last cloud hop and the first resolved hop is
		// "unlikely to be an intermediate AS" — skip it.
		if !hops[j].resolved && j+1 < len(hops) {
			j++
		}
	} else {
		if !hops[j].replied {
			return 0, false // discard the whole traceroute
		}
	}
	if !hops[j].resolved || hops[j].asn == cloud {
		return 0, false
	}
	return hops[j].asn, true
}

// Validation quantifies an inference against ground truth.
type Validation struct {
	TP, FP, FN int
	// FDR is FP/(FP+TP); FNR is FN/(FN+TP) — §5's reported quantities.
	FDR, FNR float64
}

// Validate compares the inferred set against the true neighbor list.
func Validate(inferred astopo.ASSet, truth []astopo.ASN) Validation {
	truthSet := astopo.NewASSet(truth...)
	var v Validation
	for a := range inferred {
		if truthSet.Has(a) {
			v.TP++
		} else {
			v.FP++
		}
	}
	for _, a := range truth {
		if !inferred.Has(a) {
			v.FN++
		}
	}
	if v.TP+v.FP > 0 {
		v.FDR = float64(v.FP) / float64(v.FP+v.TP)
	}
	if v.TP+v.FN > 0 {
		v.FNR = float64(v.FN) / float64(v.FN+v.TP)
	}
	return v
}

// Augment adds the inferred neighbors to a (typically BGP-feed-derived)
// topology as p2p links, never modifying pre-existing link types (§4.1),
// and returns the number of links added.
func Augment(g *astopo.Graph, cloud astopo.ASN, inferred astopo.ASSet) int {
	added := 0
	for a := range inferred {
		if g.AddPeerIfAbsent(cloud, a) {
			added++
		}
	}
	return added
}
