package neighbors

import (
	"bytes"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/netdb"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

type fixture struct {
	in     *topogen.Internet
	plan   *netdb.Plan
	engine *tracesim.Engine
	res    Resolvers
}

func newFixture(t testing.TB, scale float64) *fixture {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResolvers(plan)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		in:     in,
		plan:   plan,
		engine: tracesim.New(plan, tracesim.DefaultOptions(7)),
		res:    res,
	}
}

func (f *fixture) infer(t testing.TB, cloud string, nVMs int, stage Stage) (Inference, Validation) {
	t.Helper()
	vms, err := f.engine.VMs(cloud, nVMs)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := f.engine.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	asn := f.in.Clouds[cloud]
	inf := Infer(traces, asn, f.res, stage)
	truth := append(append(f.in.Graph.Peers(asn), f.in.Graph.Providers(asn)...), f.in.Graph.Customers(asn)...)
	return inf, Validate(inf.Neighbors, truth)
}

// The §5 story: the naive stage has a much higher FDR than the final
// methodology, and the final methodology keeps FDR low while FNR stays
// moderate (more neighbors exist than measurements can see).
func TestMethodologyStagesImproveFDR(t *testing.T) {
	f := newFixture(t, 0.02138)
	_, vNaive := f.infer(t, "Google", 6, StageNaive)
	_, vDiscard := f.infer(t, "Google", 6, StageDiscard)
	_, vFinal := f.infer(t, "Google", 6, StageFinal)
	t.Logf("naive: FDR=%.3f FNR=%.3f; discard: FDR=%.3f FNR=%.3f; final: FDR=%.3f FNR=%.3f",
		vNaive.FDR, vNaive.FNR, vDiscard.FDR, vDiscard.FNR, vFinal.FDR, vFinal.FNR)
	if vNaive.FDR <= vFinal.FDR {
		t.Errorf("naive FDR (%.3f) should exceed final FDR (%.3f)", vNaive.FDR, vFinal.FDR)
	}
	if vFinal.FDR > 0.20 {
		t.Errorf("final FDR = %.3f, want <= 0.20 (paper: 11-15%%)", vFinal.FDR)
	}
	if vFinal.FNR > 0.45 {
		t.Errorf("final FNR = %.3f, want <= 0.45 (paper: ~21%%)", vFinal.FNR)
	}
	if vDiscard.FDR > vNaive.FDR {
		t.Errorf("discard stage FDR (%.3f) should not exceed naive (%.3f)", vDiscard.FDR, vNaive.FDR)
	}
}

// More VM locations uncover more neighbors (lower FNR), §5.
func TestMoreVMsLowerFNR(t *testing.T) {
	f := newFixture(t, 0.02138)
	_, v2 := f.infer(t, "Google", 2, StageFinal)
	_, v12 := f.infer(t, "Google", 12, StageFinal)
	t.Logf("2 VMs: FNR=%.3f; 12 VMs: FNR=%.3f", v2.FNR, v12.FNR)
	if v12.FNR >= v2.FNR {
		t.Errorf("12 VMs FNR (%.3f) should be below 2 VMs FNR (%.3f)", v12.FNR, v2.FNR)
	}
}

func TestInferredNeighborsMostlyReal(t *testing.T) {
	f := newFixture(t, 0.02138)
	inf, v := f.infer(t, "Microsoft", 0, StageFinal)
	if len(inf.Neighbors) == 0 {
		t.Fatal("no neighbors inferred")
	}
	if inf.Retained == 0 || inf.Discarded == 0 {
		t.Errorf("retained=%d discarded=%d; expected both nonzero", inf.Retained, inf.Discarded)
	}
	if v.TP < 50 {
		t.Errorf("only %d true positives", v.TP)
	}
}

func TestValidateArithmetic(t *testing.T) {
	inferred := astopo.NewASSet(1, 2, 3, 4)
	truth := []astopo.ASN{1, 2, 5, 6, 7}
	v := Validate(inferred, truth)
	if v.TP != 2 || v.FP != 2 || v.FN != 3 {
		t.Fatalf("TP/FP/FN = %d/%d/%d, want 2/2/3", v.TP, v.FP, v.FN)
	}
	if v.FDR != 0.5 {
		t.Errorf("FDR = %v", v.FDR)
	}
	if v.FNR != 0.6 {
		t.Errorf("FNR = %v", v.FNR)
	}
	empty := Validate(astopo.NewASSet(), nil)
	if empty.FDR != 0 || empty.FNR != 0 {
		t.Error("empty validation should be zero")
	}
}

func TestAugment(t *testing.T) {
	g := astopo.NewGraph(0, 0)
	g.MustAddLink(10, 20, astopo.P2C) // 10 is provider of cloud 20
	added := Augment(g, 20, astopo.NewASSet(10, 30, 40))
	if added != 2 {
		t.Errorf("added = %d, want 2 (existing p2c preserved)", added)
	}
	if rel, _ := g.HasLink(10, 20); rel != astopo.P2C {
		t.Error("existing link type modified")
	}
	for _, n := range []astopo.ASN{30, 40} {
		if rel, ok := g.HasLink(20, n); !ok || rel != astopo.P2P {
			t.Errorf("AS%d not added as peer", n)
		}
	}
}

// The inference pipeline must work from observable data alone: running it
// on traceroutes that round-tripped through the scamper JSON wire format
// (which strips every ground-truth field) must give identical neighbor
// sets.
func TestInferWorksFromWireFormat(t *testing.T) {
	f := newFixture(t, 0.01425)
	vms, err := f.engine.VMs("Google", 4)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := f.engine.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	asn := f.in.Clouds["Google"]
	direct := Infer(traces, asn, f.res, StageFinal)

	var stripped [][]tracesim.Traceroute
	for _, group := range traces {
		var buf bytes.Buffer
		if err := tracesim.WriteJSON(&buf, group); err != nil {
			t.Fatal(err)
		}
		back, err := tracesim.ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		stripped = append(stripped, back)
	}
	fromWire := Infer(stripped, asn, f.res, StageFinal)
	if len(fromWire.Neighbors) != len(direct.Neighbors) {
		t.Fatalf("wire-format inference found %d neighbors, direct %d",
			len(fromWire.Neighbors), len(direct.Neighbors))
	}
	for a := range direct.Neighbors {
		if !fromWire.Neighbors.Has(a) {
			t.Errorf("AS%d missing from wire-format inference", a)
		}
	}
}
