// Package netdb builds the synthetic IPv4 address plan that the traceroute
// and IP→AS-mapping pipelines operate on, substituting for the real
// Internet's routed address space (DESIGN.md §2).
//
// Every AS is allocated a block (a /16 up to ~21k ASes, a /18 beyond that
// so the paper's full 69,488-AS topology fits in IPv4) from which it
// announces routes and numbers its router interfaces. Inter-AS link
// subnets follow real-world conventions that drive the paper's §5
// inference pitfalls:
//
//   - provider-to-customer links are numbered from the provider's space, so
//     the customer's border interface resolves to the provider (a
//     "third-party address" trap);
//   - private peerings are numbered from one peer's space;
//   - IXP peerings are numbered from the exchange's LAN, which is usually
//     NOT announced in BGP (so Cymru-style longest-prefix matching fails)
//     but is listed in PeeringDB; a minority of IXP operators do announce
//     their LAN from an exchange ASN, which then resolves to the *wrong*
//     AS unless PeeringDB is preferred (§5's final methodology step).
package netdb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"

	"flatnet/internal/astopo"
	"flatnet/internal/topogen"
)

// LinkSide identifies the two ends of a link.
type LinkSide int

const (
	// SideA is the side of Link.A.
	SideA LinkSide = iota
	// SideB is the side of Link.B.
	SideB
)

// LinkNumbering describes how one inter-AS link is addressed.
type LinkNumbering struct {
	// AAddr and BAddr are the interface addresses of the Link.A and
	// Link.B routers on the shared subnet.
	AAddr, BAddr netip.Addr
	// Owner is the AS from whose space the subnet is numbered; zero when
	// the subnet is an IXP LAN.
	Owner astopo.ASN
	// IXP is the index of the exchange whose LAN numbers this link, or
	// -1 for point-to-point subnets.
	IXP int
}

// IXPLan describes one exchange's peering LAN.
type IXPLan struct {
	Prefix netip.Prefix
	// OperatorASN is the exchange's route-server ASN; nonzero only when
	// the operator announces the LAN into BGP.
	OperatorASN astopo.ASN
	// Announced reports whether the LAN appears in the global table.
	Announced bool
	// MemberAddr maps member ASes to their address on the LAN (the
	// ground truth used to number links).
	MemberAddr map[astopo.ASN]netip.Addr
	// StaleEntries are PeeringDB "netixlan" rows that attribute an
	// address to the wrong member (operator data-entry errors) — the
	// residual false-positive source that keeps even the paper's final
	// methodology at a nonzero FDR.
	StaleEntries map[netip.Addr]astopo.ASN
}

// Plan is the complete address plan for one generated Internet.
type Plan struct {
	in *topogen.Internet

	// ASPrefix is each AS's block allocation (/16, or /18 at large scale).
	ASPrefix map[astopo.ASN]netip.Prefix
	// Extra are additional announced prefixes: /24 more-specifics for
	// content-heavy ASes, plus overflow link-subnet blocks for hub ASes
	// whose own block ran out of point-to-point subnets.
	Extra map[astopo.ASN][]netip.Prefix
	// Infra maps ASes that number their internal routers from an
	// unannounced infrastructure block (registered in whois only) — a
	// common operational practice that defeats prefix-based IP->AS
	// mapping and motivated the paper's whois fallback (§5).
	Infra map[astopo.ASN]netip.Prefix
	// Lans are the IXP LANs, indexed like Internet.IXPs.
	Lans []IXPLan
	// Links numbers every inter-AS link, keyed by the canonical
	// (smaller ASN, larger ASN) pair.
	Links map[[2]astopo.ASN]LinkNumbering
}

// ixpAnnounceFrac is the fraction of IXP LANs announced into BGP by their
// operator (the §5 artifact that made Cymru resolve member addresses to the
// exchange AS).
const ixpAnnounceFrac = 0.3

// infraFrac is the fraction of non-cloud ASes numbering internal routers
// from unannounced infrastructure space (a /20 per AS carved from
// 100.0.0.0 upward, far from both the per-AS blocks and the IXP LANs).
const infraFrac = 0.35

// Address-plan regions (all bases in uint32 address form):
//
//	 16.0.0.0 .. <100.0.0.0   per-AS blocks, sequential by dense index
//	100.0.0.0 .. <122.0.0.0   unannounced infrastructure /20s
//	130.0.0.0 .. <193.0.0.0   overflow link-subnet blocks for hub ASes
//	193.0.0.0 ..              IXP LANs, /20 each
//
// /16 blocks fit 21,504 ASes below 100.0.0.0; past that Build switches to
// /18s, which hold 86,016 — comfortably above the paper's 69,488.
const (
	asBlockBase   = uint32(16) << 24
	overflowBase  = uint32(130) << 24
	overflowLimit = uint32(193) << 24
	max16ASes     = 21504
	max18ASes     = 86016
)

// pdbStaleFrac is the fraction of PeeringDB netixlan rows attributing an
// exchange address to the wrong member.
const pdbStaleFrac = 0.04

// ixpOperatorASNBase numbers the synthetic exchange route-server ASNs; it
// sits above the topology generator's synthetic AS range.
const ixpOperatorASNBase astopo.ASN = 3000000

// Build allocates the address plan for in, deterministically from the
// topology's seed.
func Build(in *topogen.Internet) (*Plan, error) {
	g := in.Graph
	g.Freeze()
	if g.NumASes() > max18ASes {
		return nil, fmt.Errorf("netdb: %d ASes exceed the /18-per-AS plan capacity (%d)", g.NumASes(), max18ASes)
	}
	// Block size: /16s while they fit below the infrastructure region,
	// /18s for true-scale topologies. Small-scale plans are bit-identical
	// to the historical /16-only layout.
	asBits := 16
	if g.NumASes() > max16ASes {
		asBits = 18
	}
	blockSize := uint32(1) << (32 - asBits)
	rng := rand.New(rand.NewSource(in.Spec.Seed ^ 0x51ab17e))
	p := &Plan{
		in:       in,
		ASPrefix: make(map[astopo.ASN]netip.Prefix, g.NumASes()),
		Extra:    make(map[astopo.ASN][]netip.Prefix),
		Infra:    make(map[astopo.ASN]netip.Prefix),
		Links:    make(map[[2]astopo.ASN]LinkNumbering, g.NumLinks()),
	}

	// Per-AS blocks carved sequentially from 16.0.0.0 upward (dense index
	// order, so deterministic). About a third of non-cloud ASes number
	// their internal routers from an unannounced /20 past 100.0.0.0.
	// Extra /24s sit at the same relative position (200/256 of the way
	// into the block) at every block size.
	extraSlot := 200 * (blockSize >> 8) / 256
	for i, a := range g.ASes() {
		base := asBlockBase + uint32(i)*blockSize
		p.ASPrefix[a] = netip.PrefixFrom(addrFrom(base), asBits)
		if in.ClassAt(i) != topogen.ClassCloud && rng.Float64() < infraFrac {
			infra := uint32(100+i>>12)<<24 | uint32(i&0xfff)<<12
			p.Infra[a] = netip.PrefixFrom(addrFrom(infra), 20)
		}
		// Content networks announce a couple of extra /24s (more
		// specifics), exercising longest-prefix matching.
		if in.ClassAt(i) == topogen.ClassContent && rng.Float64() < 0.5 {
			n := 1 + rng.Intn(2)
			for k := 0; k < n; k++ {
				sub := base | (extraSlot+uint32(k))<<8
				p.Extra[a] = append(p.Extra[a], netip.PrefixFrom(addrFrom(sub), 24))
			}
		}
	}

	// IXP LANs: a /20 each from 193.0.0.0 upward, deliberately outside
	// the per-AS range.
	p.Lans = make([]IXPLan, len(in.IXPs))
	for k, ixp := range in.IXPs {
		base := uint32(193)<<24 | uint32(k)<<12
		lan := IXPLan{
			Prefix:     netip.PrefixFrom(addrFrom(base), 20),
			MemberAddr: make(map[astopo.ASN]netip.Addr, len(ixp.Members)),
		}
		if rng.Float64() < ixpAnnounceFrac {
			lan.Announced = true
			lan.OperatorASN = ixpOperatorASNBase + astopo.ASN(k)
		}
		next := 10
		members := make([]astopo.ASN, 0, len(ixp.Members))
		for _, m := range ixp.Members {
			if _, dup := lan.MemberAddr[m]; dup {
				continue
			}
			lan.MemberAddr[m] = addrFrom(base + uint32(next))
			members = append(members, m)
			next++
		}
		// A small share of PeeringDB rows are stale: the address is
		// recorded against a different member of the same exchange.
		// Members are visited in LAN-numbering order, not map order: the
		// rng draw sequence must be deterministic for equal seeds, or
		// two builds of the same spec diverge (and a snapshot would no
		// longer reproduce a fresh run).
		lan.StaleEntries = make(map[netip.Addr]astopo.ASN)
		if len(ixp.Members) >= 2 {
			for _, m := range members {
				if rng.Float64() < pdbStaleFrac {
					wrong := ixp.Members[rng.Intn(len(ixp.Members))]
					if wrong != m {
						lan.StaleEntries[lan.MemberAddr[m]] = wrong
					}
				}
			}
		}
		p.Lans[k] = lan
	}

	// Shared-IXP lookup for link provenance.
	ixpsOf := make(map[astopo.ASN][]int)
	for k, ixp := range in.IXPs {
		for _, m := range ixp.Members {
			ixpsOf[m] = append(ixpsOf[m], k)
		}
	}
	commonIXP := func(a, b astopo.ASN) int {
		bs := make(map[int]bool, len(ixpsOf[b]))
		for _, k := range ixpsOf[b] {
			bs[k] = true
		}
		for _, k := range ixpsOf[a] {
			if bs[k] {
				return k
			}
		}
		return -1
	}

	// Number every link. Per-owner subnet counters allocate /30-style
	// pairs from the top half of the owner's block, downward. Hub ASes
	// that exhaust it (transit giants at true scale own thousands of
	// customer links) continue in announced overflow blocks, so their
	// link addresses still resolve to them by longest-prefix match — the
	// multi-block numbering real carriers use. Overflow blocks are
	// allocated in link-iteration order, so the layout stays
	// deterministic for equal seeds.
	pairsPerBlock := int(blockSize / 2 / 4)
	pairsPerOverflow := int(blockSize / 4)
	subnetCount := make(map[astopo.ASN]int)
	overflowOf := make(map[astopo.ASN][]uint32)
	nextOverflow := overflowBase
	nextPair := func(owner astopo.ASN) (netip.Addr, netip.Addr, error) {
		k := subnetCount[owner]
		subnetCount[owner]++
		if k < pairsPerBlock {
			off := blockSize - 4 - 4*uint32(k)
			base := prefixBase(p.ASPrefix[owner])
			return addrFrom(base + off + 1), addrFrom(base + off + 2), nil
		}
		k -= pairsPerBlock
		blocks := overflowOf[owner]
		if k/pairsPerOverflow >= len(blocks) {
			if nextOverflow >= overflowLimit {
				return netip.Addr{}, netip.Addr{}, fmt.Errorf("netdb: overflow link-subnet space exhausted at AS%d", owner)
			}
			blocks = append(blocks, nextOverflow)
			overflowOf[owner] = blocks
			p.Extra[owner] = append(p.Extra[owner], netip.PrefixFrom(addrFrom(nextOverflow), asBits))
			nextOverflow += blockSize
		}
		base := blocks[k/pairsPerOverflow]
		off := blockSize - 4 - 4*uint32(k%pairsPerOverflow)
		return addrFrom(base + off + 1), addrFrom(base + off + 2), nil
	}

	for _, l := range g.Links() {
		key := canonKey(l.A, l.B)
		var num LinkNumbering
		num.IXP = -1
		switch l.Rel {
		case astopo.P2C:
			// Provider numbers the subnet.
			a1, a2, err := nextPair(l.A)
			if err != nil {
				return nil, err
			}
			num.Owner, num.AAddr, num.BAddr = l.A, a1, a2
		case astopo.P2P:
			if k := commonIXP(l.A, l.B); k >= 0 && rng.Float64() < 0.8 {
				num.IXP = k
				num.AAddr = p.Lans[k].MemberAddr[l.A]
				num.BAddr = p.Lans[k].MemberAddr[l.B]
				break
			}
			owner := l.A
			if rng.Intn(2) == 1 {
				owner = l.B
			}
			a1, a2, err := nextPair(owner)
			if err != nil {
				return nil, err
			}
			num.Owner = owner
			if owner == l.A {
				num.AAddr, num.BAddr = a1, a2
			} else {
				num.AAddr, num.BAddr = a2, a1
			}
		}
		// Normalize to canonical order: AAddr always belongs to the
		// smaller ASN of the pair.
		if l.A > l.B {
			num.AAddr, num.BAddr = num.BAddr, num.AAddr
		}
		p.Links[key] = num
	}
	return p, nil
}

// Internet returns the topology the plan was built for.
func (p *Plan) Internet() *topogen.Internet { return p.in }

// Bind attaches the plan to a topology. Snapshot decoding reconstructs the
// Internet and the Plan's address maps separately; Bind stitches them back
// together so the plan's accessors see the live topology again.
func (p *Plan) Bind(in *topogen.Internet) { p.in = in }

// LinkAddr returns the interface address of the `side` end of the link
// between a and b, where side refers to the (a, b) ordering as passed (the
// first return is a's interface, the second is b's).
func (p *Plan) LinkAddr(a, b astopo.ASN) (aAddr, bAddr netip.Addr, ok bool) {
	num, found := p.Links[canonKey(a, b)]
	if !found {
		return netip.Addr{}, netip.Addr{}, false
	}
	if a < b {
		return num.AAddr, num.BAddr, true
	}
	return num.BAddr, num.AAddr, true
}

// LinkInfo returns the numbering record for the link between a and b.
func (p *Plan) LinkInfo(a, b astopo.ASN) (LinkNumbering, bool) {
	num, ok := p.Links[canonKey(a, b)]
	return num, ok
}

// InternalAddr returns the i-th internal router address of an AS: from the
// AS's unannounced infrastructure block when it has one, otherwise from the
// bottom of its announced block (away from the link subnets in the top
// half; the capacity scales with the block size).
func (p *Plan) InternalAddr(a astopo.ASN, i int) (netip.Addr, bool) {
	if infra, ok := p.Infra[a]; ok {
		if i < 0 || i >= 0xF00 {
			return netip.Addr{}, false
		}
		return addrFrom(prefixBase(infra) + 1 + uint32(i)), true
	}
	pfx, ok := p.ASPrefix[a]
	if !ok {
		return netip.Addr{}, false
	}
	limit := int(uint32(1)<<(32-pfx.Bits())/2) - 0x1000
	if i < 0 || i >= limit {
		return netip.Addr{}, false
	}
	return addrFrom(prefixBase(pfx) + 0x0100 + uint32(i)), true
}

// AnnouncedPrefixes returns every (prefix, origin ASN) pair visible in the
// simulated global routing table: per-AS /16s, extra /24s, and the minority
// of IXP LANs whose operators announce them.
func (p *Plan) AnnouncedPrefixes() []PrefixOrigin {
	out := make([]PrefixOrigin, 0, len(p.ASPrefix)+len(p.Lans))
	for _, a := range p.in.Graph.ASes() {
		out = append(out, PrefixOrigin{Prefix: p.ASPrefix[a], Origin: a})
		for _, e := range p.Extra[a] {
			out = append(out, PrefixOrigin{Prefix: e, Origin: a})
		}
	}
	for _, lan := range p.Lans {
		if lan.Announced {
			out = append(out, PrefixOrigin{Prefix: lan.Prefix, Origin: lan.OperatorASN})
		}
	}
	return out
}

// PrefixOrigin pairs an announced prefix with its origin AS.
type PrefixOrigin struct {
	Prefix netip.Prefix
	Origin astopo.ASN
}

func canonKey(a, b astopo.ASN) [2]astopo.ASN {
	if a < b {
		return [2]astopo.ASN{a, b}
	}
	return [2]astopo.ASN{b, a}
}

func addrFrom(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

func prefixBase(p netip.Prefix) uint32 {
	b := p.Addr().As4()
	return binary.BigEndian.Uint32(b[:])
}
