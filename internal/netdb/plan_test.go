package netdb

import (
	"net/netip"
	"reflect"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/topogen"
)

func buildPlan(t testing.TB) (*topogen.Internet, *Plan) {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(0.02138))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, p
}

func TestEveryASHasDistinctPrefix(t *testing.T) {
	in, p := buildPlan(t)
	seen := map[string]astopo.ASN{}
	for _, a := range in.Graph.ASes() {
		pfx, ok := p.ASPrefix[a]
		if !ok {
			t.Fatalf("AS%d has no prefix", a)
		}
		if pfx.Bits() != 16 {
			t.Errorf("AS%d prefix %v is not a /16", a, pfx)
		}
		if prev, dup := seen[pfx.String()]; dup {
			t.Errorf("prefix %v shared by AS%d and AS%d", pfx, prev, a)
		}
		seen[pfx.String()] = a
	}
}

func TestEveryLinkNumbered(t *testing.T) {
	in, p := buildPlan(t)
	for _, l := range in.Graph.Links() {
		num, ok := p.LinkInfo(l.A, l.B)
		if !ok {
			t.Fatalf("link %v unnumbered", l)
		}
		if !num.AAddr.IsValid() || !num.BAddr.IsValid() {
			t.Fatalf("link %v has invalid addrs", l)
		}
		if num.AAddr == num.BAddr {
			t.Errorf("link %v: both sides share address %v", l, num.AAddr)
		}
		switch {
		case num.IXP >= 0:
			lan := p.Lans[num.IXP]
			if !lan.Prefix.Contains(num.AAddr) || !lan.Prefix.Contains(num.BAddr) {
				t.Errorf("link %v: IXP addrs outside LAN %v", l, lan.Prefix)
			}
		default:
			if num.Owner == 0 {
				t.Fatalf("link %v: no owner and no IXP", l)
			}
			owner := p.ASPrefix[num.Owner]
			if !owner.Contains(num.AAddr) || !owner.Contains(num.BAddr) {
				t.Errorf("link %v: addrs outside owner AS%d space", l, num.Owner)
			}
		}
		if l.Rel == astopo.P2C && num.IXP < 0 && num.Owner != l.A {
			t.Errorf("p2c link %v: subnet owned by AS%d, want provider AS%d", l, num.Owner, l.A)
		}
	}
}

func TestLinkAddrOrientation(t *testing.T) {
	in, p := buildPlan(t)
	for _, l := range in.Graph.Links()[:200] {
		a1, b1, ok := p.LinkAddr(l.A, l.B)
		if !ok {
			t.Fatal("missing link")
		}
		b2, a2, ok := p.LinkAddr(l.B, l.A)
		if !ok || a1 != a2 || b1 != b2 {
			t.Fatalf("LinkAddr not symmetric for %v: (%v,%v) vs (%v,%v)", l, a1, b1, a2, b2)
		}
	}
	if _, _, ok := p.LinkAddr(1, 2); ok {
		// ASes 1 and 2 are not in the generated graph
		t.Error("nonexistent link resolved")
	}
}

func TestSomeLinksUseIXPLans(t *testing.T) {
	in, p := buildPlan(t)
	nIXP, nP2P := 0, 0
	for _, l := range in.Graph.Links() {
		if l.Rel != astopo.P2P {
			continue
		}
		nP2P++
		if num, _ := p.LinkInfo(l.A, l.B); num.IXP >= 0 {
			nIXP++
		}
	}
	if nIXP == 0 {
		t.Fatal("no p2p links numbered from IXP LANs")
	}
	frac := float64(nIXP) / float64(nP2P)
	if frac < 0.2 {
		t.Errorf("only %.2f of p2p links at IXPs, expected a substantial share", frac)
	}
}

func TestAnnouncedPrefixes(t *testing.T) {
	in, p := buildPlan(t)
	anns := p.AnnouncedPrefixes()
	nLanAnnounced := 0
	for _, lan := range p.Lans {
		if lan.Announced {
			nLanAnnounced++
			if lan.OperatorASN < ixpOperatorASNBase {
				t.Errorf("announced LAN has bad operator ASN %d", lan.OperatorASN)
			}
		}
	}
	if nLanAnnounced == 0 {
		t.Error("no IXP LANs announced; the §5 Cymru artifact cannot occur")
	}
	if nLanAnnounced == len(p.Lans) {
		t.Error("all IXP LANs announced; the unannounced-LAN artifact cannot occur")
	}
	nExtra := 0
	for _, e := range p.Extra {
		nExtra += len(e)
	}
	want := in.Graph.NumASes() + nExtra + nLanAnnounced
	if len(anns) != want {
		t.Errorf("announced %d prefixes, want %d", len(anns), want)
	}
}

func TestInternalAddr(t *testing.T) {
	in, p := buildPlan(t)
	a := in.Clouds["Google"]
	addr, ok := p.InternalAddr(a, 3)
	if !ok {
		t.Fatal("no internal addr")
	}
	if !p.ASPrefix[a].Contains(addr) {
		t.Errorf("internal addr %v outside AS%d prefix %v", addr, a, p.ASPrefix[a])
	}
	if _, ok := p.InternalAddr(a, -1); ok {
		t.Error("negative index accepted")
	}
	if _, ok := p.InternalAddr(9999999, 0); ok {
		t.Error("unknown AS accepted")
	}
}

// TestTrueScalePlan exercises the /18 layout that full-scale topologies
// (more than max16ASes ASes) switch to: distinct blocks below the
// infrastructure region, link subnets contained in the owner's announced
// space — via overflow blocks when a hub's own block runs out — and
// internal addresses that stay clear of the link region.
func TestTrueScalePlan(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a >21k-AS topology")
	}
	in, err := topogen.Generate(topogen.Internet2020(0.32))
	if err != nil {
		t.Fatal(err)
	}
	if n := in.Graph.NumASes(); n <= max16ASes {
		t.Fatalf("scale 0.32 gives %d ASes, need > %d for the /18 path", n, max16ASes)
	}
	p, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]astopo.ASN{}
	for _, a := range in.Graph.ASes() {
		pfx := p.ASPrefix[a]
		if pfx.Bits() != 18 {
			t.Fatalf("AS%d prefix %v is not a /18", a, pfx)
		}
		if prefixBase(pfx) >= uint32(100)<<24 {
			t.Fatalf("AS%d block %v collides with the infrastructure region", a, pfx)
		}
		if prev, dup := seen[pfx.String()]; dup {
			t.Fatalf("prefix %v shared by AS%d and AS%d", pfx, prev, a)
		}
		seen[pfx.String()] = a
	}
	contained := func(owner astopo.ASN, num LinkNumbering) bool {
		if p.ASPrefix[owner].Contains(num.AAddr) && p.ASPrefix[owner].Contains(num.BAddr) {
			return true
		}
		for _, e := range p.Extra[owner] {
			if e.Contains(num.AAddr) && e.Contains(num.BAddr) {
				return true
			}
		}
		return false
	}
	overflowed := false
	for _, l := range in.Graph.Links() {
		num, ok := p.LinkInfo(l.A, l.B)
		if !ok {
			t.Fatalf("link %v unnumbered", l)
		}
		if num.IXP >= 0 {
			continue
		}
		if !contained(num.Owner, num) {
			t.Fatalf("link %v: addrs %v/%v outside owner AS%d announced space", l, num.AAddr, num.BAddr, num.Owner)
		}
		if !p.ASPrefix[num.Owner].Contains(num.AAddr) {
			overflowed = true
		}
	}
	if !overflowed {
		t.Log("no owner exhausted its /18 link region at this scale (overflow path untested here)")
	}
	a := in.Clouds["Google"]
	addr, ok := p.InternalAddr(a, 3)
	if !ok || !p.ASPrefix[a].Contains(addr) {
		t.Fatalf("internal addr %v (ok=%v) outside AS%d /18", addr, ok, a)
	}
	if _, ok := p.InternalAddr(a, 0x1000); ok {
		t.Error("internal index past the /18 capacity accepted")
	}
}

// TestOverflowLinkSubnets drives the overflow allocator deterministically:
// a star topology past the /18 threshold whose hub provider numbers every
// customer link — far more than the 2,048 pairs one /18's link region
// holds. Every address must land in the hub's announced space (own block
// or an overflow block in Extra) and stay pairwise distinct.
func TestOverflowLinkSubnets(t *testing.T) {
	n := max16ASes + 64
	hub := astopo.ASN(500)
	links := make([]astopo.Link, n-1)
	for i := range links {
		links[i] = astopo.Link{A: hub, B: astopo.ASN(1000 + i), Rel: astopo.P2C}
	}
	in := &topogen.Internet{
		Spec:  topogen.Spec{Seed: 42},
		Graph: astopo.FromLinks(links),
		Meta:  &topogen.ASMeta{Class: make([]topogen.ASClass, n)},
	}
	p, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ASPrefix[hub].Bits(); got != 18 {
		t.Fatalf("hub prefix is a /%d, want /18", got)
	}
	if len(p.Extra[hub]) == 0 {
		t.Fatal("hub exhausted no overflow blocks despite >2048 owned links")
	}
	inHubSpace := func(a netip.Addr) bool {
		if p.ASPrefix[hub].Contains(a) {
			return true
		}
		for _, e := range p.Extra[hub] {
			if e.Contains(a) {
				return true
			}
		}
		return false
	}
	seen := make(map[netip.Addr]bool, 2*(n-1))
	for _, l := range links {
		num, ok := p.LinkInfo(l.A, l.B)
		if !ok {
			t.Fatalf("link %v unnumbered", l)
		}
		if num.Owner != hub {
			t.Fatalf("link %v owned by AS%d, want hub", l, num.Owner)
		}
		if !inHubSpace(num.AAddr) || !inHubSpace(num.BAddr) {
			t.Fatalf("link %v addrs %v/%v outside hub announced space", l, num.AAddr, num.BAddr)
		}
		if seen[num.AAddr] || seen[num.BAddr] {
			t.Fatalf("link %v reuses an address (%v or %v)", l, num.AAddr, num.BAddr)
		}
		seen[num.AAddr], seen[num.BAddr] = true, true
	}
	for _, e := range p.Extra[hub] {
		if base := prefixBase(e); base < overflowBase || base >= overflowLimit {
			t.Fatalf("overflow block %v outside the overflow region", e)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	in, err := topogen.Generate(topogen.Internet2020(0.01425))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	for k, v1 := range p1.Links {
		if v2 := p2.Links[k]; v1 != v2 {
			t.Fatalf("nondeterministic numbering for %v: %v vs %v", k, v1, v2)
		}
	}
	// The stale PeeringDB rows draw from the rng per LAN member; the draw
	// order must not depend on map iteration, or equal seeds produce
	// different plans (and snapshots stop reproducing fresh runs).
	if !reflect.DeepEqual(p1.Lans, p2.Lans) {
		t.Fatal("nondeterministic IXP LANs (stale-entry assignment depends on iteration order)")
	}
	if !reflect.DeepEqual(p1.Infra, p2.Infra) || !reflect.DeepEqual(p1.Extra, p2.Extra) {
		t.Fatal("nondeterministic infra/extra prefix assignment")
	}
}
