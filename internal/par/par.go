// Package par provides the minimal parallel-for primitive behind the
// whole-Internet sweeps (ReachabilityAll, RunLeakTrials, AverageResilience).
//
// Work items are claimed through an atomic cursor rather than fed over a
// channel. The feeder-channel shape has a latent deadlock: when every
// worker exits early on an error, an unbuffered `work <- i` send blocks
// forever with nobody left to receive. With a cursor there is no feeder to
// strand — workers pull indexes until the range is exhausted or a failure
// is flagged, and the first error cancels the remaining items.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) across up to `workers` goroutines.
// worker(w) is invoked once per goroutine (on that goroutine) to build its
// item function, giving callers a place to allocate per-worker state such
// as a simulator or scratch mask. The first error stops the sweep: no new
// items are claimed, in-flight items finish, and that error is returned.
// Items may run in any order; with workers <= 1 they run in order on the
// calling goroutine.
func For(workers, n int, worker func(w int) func(i int) error) error {
	return ForCtx(context.Background(), workers, n, worker)
}

// ForCtx is For with cancellation: when ctx is done, no new items are
// claimed, in-flight items finish, and ctx.Err() is returned (unless an
// item error occurred first — item errors take precedence). Item functions
// that want finer-grained cancellation must observe ctx themselves.
func ForCtx(ctx context.Context, workers, n int, worker func(w int) func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn := worker(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := worker(w)
			for !failed.Load() {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
