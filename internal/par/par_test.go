package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForRunsAllItems(t *testing.T) {
	const n = 1000
	seen := make([]atomic.Int32, n)
	err := For(8, n, func(int) func(int) error {
		return func(i int) error {
			seen[i].Add(1)
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("item %d ran %d times, want 1", i, got)
		}
	}
}

func TestForSequentialFallback(t *testing.T) {
	var order []int
	err := For(1, 5, func(int) func(int) error {
		return func(i int) error {
			order = append(order, i)
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}
}

// The deadlock regression: every item fails, so every worker exits on its
// first claim. The call must return the first error instead of hanging the
// way a feeder-channel pool would once all receivers are gone.
func TestForAllItemsFailingReturnsError(t *testing.T) {
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- For(runtime.GOMAXPROCS(0), 10_000, func(int) func(int) error {
			return func(int) error { return boom }
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("For deadlocked when every worker failed")
	}
}

func TestForErrorCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int64
	err := For(4, 100_000, func(int) func(int) error {
		return func(i int) error {
			ran.Add(1)
			if i == 3 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		}
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got == 100_000 {
		t.Error("error did not cancel remaining items")
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	err := For(4, 0, func(int) func(int) error {
		called = true
		return func(int) error { return nil }
	})
	if err != nil || called {
		t.Fatalf("err=%v called=%v, want nil/false", err, called)
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var ran atomic.Int64
	if err := For(64, 3, func(int) func(int) error {
		return func(int) error { ran.Add(1); return nil }
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d items, want 3", ran.Load())
	}
}

func TestForCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForCtx(ctx, 4, 100, func(int) func(int) error {
		return func(int) error {
			ran.Add(1)
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d items ran on a pre-canceled context", got)
	}
}

func TestForCtxStopsClaimingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForCtx(ctx, 4, 10000, func(int) func(int) error {
		return func(int) error {
			if ran.Add(1) == 8 {
				cancel()
			}
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers may finish in-flight items after the cancel, but must not
	// claim the whole range.
	if got := ran.Load(); got > 1000 {
		t.Fatalf("%d items ran after cancel, want an early stop", got)
	}
}

func TestForCtxItemErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForCtx(ctx, 2, 100, func(int) func(int) error {
		return func(i int) error {
			if i == 0 {
				return boom
			}
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want item error", err)
	}
}
