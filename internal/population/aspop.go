package population

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"flatnet/internal/astopo"
)

// This file reads and writes APNIC-style AS population estimate files
// (stats.labs.apnic.net/aspop "Visible ASNs: Customer Populations"),
// the dataset behind the paper's user weighting (§4.3, Figs. 9 and 13).
// The CSV layout is:
//
//	# rank,AS,cc,users,pct-of-internet
//	1,AS4134,CN,340000000,7.5
//
// ASNs may appear with or without the "AS" prefix.

// ASPopRecord is one row of an aspop file.
type ASPopRecord struct {
	Rank  int
	AS    astopo.ASN
	CC    string
	Users float64
	// PctInternet is the share of all Internet users, in percent.
	PctInternet float64
}

// ReadASPop parses an aspop CSV stream.
func ReadASPop(r io.Reader) ([]ASPopRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []ASPopRecord
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("population: aspop line %d: expected 5 fields, got %d", lineno, len(fields))
		}
		rank, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad rank: %v", lineno, err)
		}
		asStr := strings.TrimPrefix(strings.TrimSpace(fields[1]), "AS")
		asn, err := strconv.ParseUint(asStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad ASN %q", lineno, fields[1])
		}
		users, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad users: %v", lineno, err)
		}
		pct, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad percent: %v", lineno, err)
		}
		out = append(out, ASPopRecord{
			Rank: rank, AS: astopo.ASN(asn), CC: strings.TrimSpace(fields[2]),
			Users: users, PctInternet: pct,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("population: reading aspop: %w", err)
	}
	return out, nil
}

// WriteASPop writes records in aspop CSV format, re-ranked by users
// descending.
func WriteASPop(w io.Writer, records []ASPopRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# rank,AS,cc,users,pct-of-internet"); err != nil {
		return err
	}
	sorted := append([]ASPopRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Users != sorted[j].Users {
			return sorted[i].Users > sorted[j].Users
		}
		return sorted[i].AS < sorted[j].AS
	})
	for i, rec := range sorted {
		if _, err := fmt.Fprintf(bw, "%d,AS%d,%s,%.0f,%.4f\n",
			i+1, rec.AS, rec.CC, rec.Users, rec.PctInternet); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Export dumps the model's eyeball populations as aspop records, scaled so
// user counts read like real-world magnitudes (the Share column is what
// analyses consume).
func (m *Model) Export(cc func(astopo.ASN) string) []ASPopRecord {
	const scaleUsers = 4.5e9 // "Internet users" the synthetic world holds
	var out []ASPopRecord
	for i, u := range m.users {
		if u == 0 {
			continue
		}
		a := m.asns[i]
		country := "ZZ"
		if cc != nil {
			country = cc(a)
		}
		out = append(out, ASPopRecord{
			AS:          a,
			CC:          country,
			Users:       u / m.total * scaleUsers,
			PctInternet: 100 * u / m.total,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Users != out[j].Users {
			return out[i].Users > out[j].Users
		}
		return out[i].AS < out[j].AS
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// ModelFromASPop builds a user-population model from parsed aspop records
// (for running the user-weighted analyses on real APNIC data). AS types are
// access for every listed AS and enterprise otherwise; callers needing full
// typing should combine with a CAIDA as2type file via TypeOverrides.
func ModelFromASPop(records []ASPopRecord) *Model {
	sorted := append([]ASPopRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].AS < sorted[j].AS })
	m := &Model{
		asns:  make([]astopo.ASN, 0, len(sorted)),
		types: make([]ASType, 0, len(sorted)),
		users: make([]float64, 0, len(sorted)),
	}
	for _, r := range sorted {
		if n := len(m.asns); n > 0 && m.asns[n-1] == r.AS {
			m.users[n-1] += r.Users // duplicate rows merge, as map writes did
			continue
		}
		m.asns = append(m.asns, r.AS)
		m.types = append(m.types, TypeAccess)
		m.users = append(m.users, r.Users)
	}
	// Sum in record order so the total matches the pre-dense behavior
	// bit-for-bit.
	for _, r := range records {
		m.total += r.Users
	}
	return m
}

// TypeOverrides applies CAIDA as2type labels on top of the model's types.
// Labeled ASes absent from the model are inserted with zero users. The
// model's columns are re-allocated, never written in place, so overrides
// are safe even on a model backed by read-only snapshot memory.
func (m *Model) TypeOverrides(labels map[astopo.ASN]astopo.AS2TypeRecord) {
	var missing []astopo.ASN
	for a := range labels {
		if _, ok := m.index(a); !ok {
			missing = append(missing, a)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	na := make([]astopo.ASN, 0, len(m.asns)+len(missing))
	nt := make([]ASType, 0, cap(na))
	nu := make([]float64, 0, cap(na))
	i, j := 0, 0
	for i < len(m.asns) || j < len(missing) {
		if j >= len(missing) || (i < len(m.asns) && m.asns[i] < missing[j]) {
			na, nt, nu = append(na, m.asns[i]), append(nt, m.types[i]), append(nu, m.users[i])
			i++
		} else {
			na, nt, nu = append(na, missing[j]), append(nt, TypeEnterprise), append(nu, 0)
			j++
		}
	}
	m.asns, m.types, m.users = na, nt, nu
	for a, rec := range labels {
		k, _ := m.index(a)
		switch rec.Type {
		case astopo.TypeLabelContent:
			m.types[k] = TypeContent
		case astopo.TypeLabelEnterprise:
			m.types[k] = TypeEnterprise
		case astopo.TypeLabelTransitAccess:
			if m.users[k] > 0 {
				m.types[k] = TypeAccess // the paper's §4.3 refinement
			} else {
				m.types[k] = TypeTransit
			}
		}
	}
}
