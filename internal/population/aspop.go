package population

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"flatnet/internal/astopo"
)

// This file reads and writes APNIC-style AS population estimate files
// (stats.labs.apnic.net/aspop "Visible ASNs: Customer Populations"),
// the dataset behind the paper's user weighting (§4.3, Figs. 9 and 13).
// The CSV layout is:
//
//	# rank,AS,cc,users,pct-of-internet
//	1,AS4134,CN,340000000,7.5
//
// ASNs may appear with or without the "AS" prefix.

// ASPopRecord is one row of an aspop file.
type ASPopRecord struct {
	Rank  int
	AS    astopo.ASN
	CC    string
	Users float64
	// PctInternet is the share of all Internet users, in percent.
	PctInternet float64
}

// ReadASPop parses an aspop CSV stream.
func ReadASPop(r io.Reader) ([]ASPopRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []ASPopRecord
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("population: aspop line %d: expected 5 fields, got %d", lineno, len(fields))
		}
		rank, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad rank: %v", lineno, err)
		}
		asStr := strings.TrimPrefix(strings.TrimSpace(fields[1]), "AS")
		asn, err := strconv.ParseUint(asStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad ASN %q", lineno, fields[1])
		}
		users, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad users: %v", lineno, err)
		}
		pct, err := strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("population: aspop line %d: bad percent: %v", lineno, err)
		}
		out = append(out, ASPopRecord{
			Rank: rank, AS: astopo.ASN(asn), CC: strings.TrimSpace(fields[2]),
			Users: users, PctInternet: pct,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("population: reading aspop: %w", err)
	}
	return out, nil
}

// WriteASPop writes records in aspop CSV format, re-ranked by users
// descending.
func WriteASPop(w io.Writer, records []ASPopRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# rank,AS,cc,users,pct-of-internet"); err != nil {
		return err
	}
	sorted := append([]ASPopRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Users != sorted[j].Users {
			return sorted[i].Users > sorted[j].Users
		}
		return sorted[i].AS < sorted[j].AS
	})
	for i, rec := range sorted {
		if _, err := fmt.Fprintf(bw, "%d,AS%d,%s,%.0f,%.4f\n",
			i+1, rec.AS, rec.CC, rec.Users, rec.PctInternet); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Export dumps the model's eyeball populations as aspop records, scaled so
// user counts read like real-world magnitudes (the Share column is what
// analyses consume).
func (m *Model) Export(cc func(astopo.ASN) string) []ASPopRecord {
	const scaleUsers = 4.5e9 // "Internet users" the synthetic world holds
	var out []ASPopRecord
	for a, u := range m.users {
		country := "ZZ"
		if cc != nil {
			country = cc(a)
		}
		out = append(out, ASPopRecord{
			AS:          a,
			CC:          country,
			Users:       u / m.total * scaleUsers,
			PctInternet: 100 * u / m.total,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Users != out[j].Users {
			return out[i].Users > out[j].Users
		}
		return out[i].AS < out[j].AS
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// ModelFromASPop builds a user-population model from parsed aspop records
// (for running the user-weighted analyses on real APNIC data). AS types are
// access for every listed AS and enterprise otherwise; callers needing full
// typing should combine with a CAIDA as2type file via TypeOverrides.
func ModelFromASPop(records []ASPopRecord) *Model {
	m := &Model{
		types: make(map[astopo.ASN]ASType, len(records)),
		users: make(map[astopo.ASN]float64, len(records)),
	}
	for _, r := range records {
		m.types[r.AS] = TypeAccess
		m.users[r.AS] = r.Users
		m.total += r.Users
	}
	return m
}

// TypeOverrides applies CAIDA as2type labels on top of the model's types.
func (m *Model) TypeOverrides(labels map[astopo.ASN]astopo.AS2TypeRecord) {
	for a, rec := range labels {
		switch rec.Type {
		case astopo.TypeLabelContent:
			m.types[a] = TypeContent
		case astopo.TypeLabelEnterprise:
			m.types[a] = TypeEnterprise
		case astopo.TypeLabelTransitAccess:
			if m.users[a] > 0 {
				m.types[a] = TypeAccess // the paper's §4.3 refinement
			} else {
				m.types[a] = TypeTransit
			}
		}
	}
}
