package population

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/topogen"
)

const sampleASPop = `# rank,AS,cc,users,pct-of-internet
1,AS4134,CN,340000000,7.5
2,4837,CN,200000000,4.4
3,AS9829,IN,150000000,3.3
`

func TestReadASPop(t *testing.T) {
	recs, err := ReadASPop(strings.NewReader(sampleASPop))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].AS != 4134 || recs[0].CC != "CN" || recs[0].Users != 340000000 {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[1].AS != 4837 {
		t.Error("bare ASN (no AS prefix) not accepted")
	}
}

func TestReadASPopErrors(t *testing.T) {
	cases := []string{
		"1,AS1,US,100\n",      // 4 fields
		"x,AS1,US,100,1\n",    // bad rank
		"1,ASx,US,100,1\n",    // bad ASN
		"1,AS1,US,many,1\n",   // bad users
		"1,AS1,US,100,lots\n", // bad pct
	}
	for _, in := range cases {
		if _, err := ReadASPop(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestASPopRoundTripAndExport(t *testing.T) {
	in, err := topogen.Generate(topogen.Internet2020(0.02138))
	if err != nil {
		t.Fatal(err)
	}
	m := Build(in, 1.1)
	recs := m.Export(nil)
	if len(recs) == 0 {
		t.Fatal("empty export")
	}
	// Ranked by users descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Users > recs[i-1].Users {
			t.Fatal("export not sorted by users")
		}
		if recs[i].Rank != i+1 {
			t.Fatalf("rank %d at position %d", recs[i].Rank, i)
		}
	}
	var pctSum float64
	for _, r := range recs {
		pctSum += r.PctInternet
	}
	if math.Abs(pctSum-100) > 0.1 {
		t.Errorf("percent column sums to %v", pctSum)
	}

	var buf bytes.Buffer
	if err := WriteASPop(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadASPop(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(back), len(recs))
	}
	// Rebuild a model from the wire format: shares must match the
	// original closely (users are written with %.0f precision).
	m2 := ModelFromASPop(back)
	for _, r := range recs[:50] {
		want := m.Share(r.AS)
		got := m2.Share(r.AS)
		if math.Abs(want-got) > 1e-6 {
			t.Errorf("AS%d share %v after round trip, want %v", r.AS, got, want)
		}
	}
}

func TestTypeOverrides(t *testing.T) {
	m := ModelFromASPop([]ASPopRecord{{AS: 10, Users: 100}, {AS: 20, Users: 50}})
	m.TypeOverrides(map[astopo.ASN]astopo.AS2TypeRecord{
		10: {AS: 10, Type: astopo.TypeLabelTransitAccess}, // has users -> access
		20: {AS: 20, Type: astopo.TypeLabelContent},
		30: {AS: 30, Type: astopo.TypeLabelTransitAccess}, // no users -> transit
		40: {AS: 40, Type: astopo.TypeLabelEnterprise},
	})
	if m.Type(10) != TypeAccess {
		t.Errorf("AS10 = %v", m.Type(10))
	}
	if m.Type(20) != TypeContent {
		t.Errorf("AS20 = %v", m.Type(20))
	}
	if m.Type(30) != TypeTransit {
		t.Errorf("AS30 = %v", m.Type(30))
	}
	if m.Type(40) != TypeEnterprise {
		t.Errorf("AS40 = %v", m.Type(40))
	}
}
