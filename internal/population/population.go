// Package population assigns the two per-AS annotations the paper draws
// from external datasets (§4.3): an AS type (content, transit, access, or
// enterprise, following CAIDA's as2type plus the APNIC-user refinement) and
// an estimated Internet user population per AS (APNIC's ad-based estimates).
//
// The synthetic substitute follows the real datasets' shape: only access
// networks serve end users, and per-AS user counts are heavy-tailed (a
// Zipf-like distribution), so a small number of eyeball ASes hold most of
// the population. User mass is additionally proportional to the AS's home
// metro population so geography and population agree.
package population

import (
	"math"
	"math/rand"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/topogen"
)

// ASType is the paper's four-way classification (§4.3).
type ASType uint8

const (
	// TypeContent marks content/hosting networks.
	TypeContent ASType = iota
	// TypeTransit marks transit networks without measurable users.
	TypeTransit
	// TypeAccess marks transit/access networks with APNIC-visible users.
	TypeAccess
	// TypeEnterprise marks enterprise stubs.
	TypeEnterprise
)

func (t ASType) String() string {
	switch t {
	case TypeContent:
		return "content"
	case TypeTransit:
		return "transit"
	case TypeAccess:
		return "access"
	case TypeEnterprise:
		return "enterprise"
	}
	return "unknown"
}

// Model holds the per-AS annotations.
type Model struct {
	types map[astopo.ASN]ASType
	users map[astopo.ASN]float64
	total float64
}

// Build derives a Model from a generated Internet: the paper's rule is
// "CAIDA type transit/access + APNIC users present => access" — here the
// generator's access class gets users, clouds and hypergiant content count
// as content, Tier-1/Tier-2/transit as transit, enterprises as enterprise.
// The Zipf exponent s (≈1.1 matches APNIC's skew) and the rng seed make the
// assignment deterministic per Internet.
func Build(in *topogen.Internet, zipfS float64) *Model {
	m := &Model{
		types: make(map[astopo.ASN]ASType, in.Graph.NumASes()),
		users: make(map[astopo.ASN]float64),
	}
	rng := rand.New(rand.NewSource(in.Spec.Seed ^ 0x9e3779b9))
	var accessASes []astopo.ASN
	for _, a := range in.Graph.ASes() {
		switch in.Class[a] {
		case topogen.ClassAccess:
			m.types[a] = TypeAccess
			accessASes = append(accessASes, a)
		case topogen.ClassContent, topogen.ClassCloud:
			m.types[a] = TypeContent
		case topogen.ClassEnterprise:
			m.types[a] = TypeEnterprise
		default:
			m.types[a] = TypeTransit
		}
	}
	// Zipf ranks shuffled across access ASes, weighted by home-metro
	// population so that a big-metro AS tends to hold more users.
	perm := rng.Perm(len(accessASes))
	cities := geo.Cities()
	for rank, pi := range perm {
		a := accessASes[pi]
		base := 1.0 / math.Pow(float64(rank+1), zipfS)
		metro := 1.0
		if c, ok := in.HomeCity[a]; ok {
			metro = 0.5 + cities[c].PopM/10
		}
		u := base * metro
		m.users[a] = u
		m.total += u
	}
	return m
}

// Entry is one AS's annotations in a Model snapshot. Users is zero for
// ASes without user mass.
type Entry struct {
	AS    astopo.ASN
	Type  ASType
	Users float64
}

// Snapshot returns every AS's annotations sorted by ASN, plus the exact
// user total. The total is returned explicitly rather than recomputed on
// restore: float summation order matters in the last ulp, and Share values
// must survive a snapshot round trip bit-for-bit.
func (m *Model) Snapshot() ([]Entry, float64) {
	entries := make([]Entry, 0, len(m.types))
	for a, t := range m.types {
		entries = append(entries, Entry{AS: a, Type: t, Users: m.users[a]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].AS < entries[j].AS })
	return entries, m.total
}

// Restore rebuilds a Model from snapshot entries and the exact total.
func Restore(entries []Entry, total float64) *Model {
	m := &Model{
		types: make(map[astopo.ASN]ASType, len(entries)),
		users: make(map[astopo.ASN]float64),
		total: total,
	}
	for _, e := range entries {
		m.types[e.AS] = e.Type
		if e.Users > 0 {
			m.users[e.AS] = e.Users
		}
	}
	return m
}

// Type returns the AS's type; unknown ASes are enterprises.
func (m *Model) Type(a astopo.ASN) ASType {
	if t, ok := m.types[a]; ok {
		return t
	}
	return TypeEnterprise
}

// Users returns the AS's user mass (arbitrary units; use Share for
// fractions).
func (m *Model) Users(a astopo.ASN) float64 { return m.users[a] }

// Share returns the AS's fraction of all Internet users.
func (m *Model) Share(a astopo.ASN) float64 {
	if m.total == 0 {
		return 0
	}
	return m.users[a] / m.total
}

// TotalUsers returns the summed user mass.
func (m *Model) TotalUsers() float64 { return m.total }

// IsEyeball reports whether the AS hosts end users.
func (m *Model) IsEyeball(a astopo.ASN) bool { return m.users[a] > 0 }

// WeightsDense returns per-AS user weights indexed by the graph's dense
// index, normalized to sum to 1 — the form bgpsim.Result.DetouredWeight
// consumes.
func (m *Model) WeightsDense(g *astopo.Graph) []float64 {
	g.Freeze()
	w := make([]float64, g.NumASes())
	if m.total == 0 {
		return w
	}
	for a, u := range m.users {
		if i, ok := g.Index(a); ok {
			w[i] = u / m.total
		}
	}
	return w
}

// CountByType tallies the ASes of each type among the given set.
func (m *Model) CountByType(asns []astopo.ASN) map[ASType]int {
	out := make(map[ASType]int, 4)
	for _, a := range asns {
		out[m.Type(a)]++
	}
	return out
}
