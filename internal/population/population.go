// Package population assigns the two per-AS annotations the paper draws
// from external datasets (§4.3): an AS type (content, transit, access, or
// enterprise, following CAIDA's as2type plus the APNIC-user refinement) and
// an estimated Internet user population per AS (APNIC's ad-based estimates).
//
// The synthetic substitute follows the real datasets' shape: only access
// networks serve end users, and per-AS user counts are heavy-tailed (a
// Zipf-like distribution), so a small number of eyeball ASes hold most of
// the population. User mass is additionally proportional to the AS's home
// metro population so geography and population agree.
package population

import (
	"math"
	"math/rand"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/topogen"
)

// ASType is the paper's four-way classification (§4.3).
type ASType uint8

const (
	// TypeContent marks content/hosting networks.
	TypeContent ASType = iota
	// TypeTransit marks transit networks without measurable users.
	TypeTransit
	// TypeAccess marks transit/access networks with APNIC-visible users.
	TypeAccess
	// TypeEnterprise marks enterprise stubs.
	TypeEnterprise
)

func (t ASType) String() string {
	switch t {
	case TypeContent:
		return "content"
	case TypeTransit:
		return "transit"
	case TypeAccess:
		return "access"
	case TypeEnterprise:
		return "enterprise"
	}
	return "unknown"
}

// Model holds the per-AS annotations in dense columns parallel to a sorted
// ASN list (the graph's node order). Lookups are binary searches; no
// pointer-shaped state exists, so a model can be reconstructed in O(1) from
// externally owned (possibly read-only, mmap'd) memory via FromDense.
type Model struct {
	asns  []astopo.ASN // sorted ascending
	types []ASType
	users []float64 // 0 for ASes without user mass
	total float64
}

// Build derives a Model from a generated Internet: the paper's rule is
// "CAIDA type transit/access + APNIC users present => access" — here the
// generator's access class gets users, clouds and hypergiant content count
// as content, Tier-1/Tier-2/transit as transit, enterprises as enterprise.
// The Zipf exponent s (≈1.1 matches APNIC's skew) and the rng seed make the
// assignment deterministic per Internet.
func Build(in *topogen.Internet, zipfS float64) *Model {
	nodes := in.Graph.ASes()
	m := &Model{
		asns:  nodes, // shared with the graph; never mutated
		types: make([]ASType, len(nodes)),
		users: make([]float64, len(nodes)),
	}
	rng := rand.New(rand.NewSource(in.Spec.Seed ^ 0x9e3779b9))
	var accessIdx []int
	for i := range nodes {
		switch in.ClassAt(i) {
		case topogen.ClassAccess:
			m.types[i] = TypeAccess
			accessIdx = append(accessIdx, i)
		case topogen.ClassContent, topogen.ClassCloud:
			m.types[i] = TypeContent
		case topogen.ClassEnterprise:
			m.types[i] = TypeEnterprise
		default:
			m.types[i] = TypeTransit
		}
	}
	// Zipf ranks shuffled across access ASes, weighted by home-metro
	// population so that a big-metro AS tends to hold more users.
	perm := rng.Perm(len(accessIdx))
	cities := geo.Cities()
	for rank, pi := range perm {
		i := accessIdx[pi]
		base := 1.0 / math.Pow(float64(rank+1), zipfS)
		metro := 0.5 + cities[in.HomeCityAt(i)].PopM/10
		u := base * metro
		m.users[i] = u
		m.total += u
	}
	return m
}

// Entry is one AS's annotations in a Model snapshot. Users is zero for
// ASes without user mass.
type Entry struct {
	AS    astopo.ASN
	Type  ASType
	Users float64
}

// Snapshot returns every AS's annotations sorted by ASN, plus the exact
// user total. The total is returned explicitly rather than recomputed on
// restore: float summation order matters in the last ulp, and Share values
// must survive a snapshot round trip bit-for-bit.
func (m *Model) Snapshot() ([]Entry, float64) {
	entries := make([]Entry, len(m.asns))
	for i, a := range m.asns {
		entries[i] = Entry{AS: a, Type: m.types[i], Users: m.users[i]}
	}
	return entries, m.total
}

// Restore rebuilds a Model from snapshot entries and the exact total.
func Restore(entries []Entry, total float64) *Model {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].AS < sorted[j].AS })
	m := &Model{
		asns:  make([]astopo.ASN, len(sorted)),
		types: make([]ASType, len(sorted)),
		users: make([]float64, len(sorted)),
		total: total,
	}
	for i, e := range sorted {
		m.asns[i] = e.AS
		m.types[i] = e.Type
		m.users[i] = e.Users
	}
	return m
}

// Dense returns the model's columns — ASNs sorted ascending with parallel
// types and users — and the exact user total. The slices are shared (and
// possibly read-only); callers must not modify them.
func (m *Model) Dense() (asns []astopo.ASN, types []ASType, users []float64, total float64) {
	return m.asns, m.types, m.users, m.total
}

// FromDense wires a model over externally built columns in O(1), without
// copying. The columns may live in read-only memory (an mmap'd snapshot);
// asns must be sorted ascending and all three slices must have equal
// length.
func FromDense(asns []astopo.ASN, types []ASType, users []float64, total float64) *Model {
	return &Model{asns: asns, types: types, users: users, total: total}
}

func (m *Model) index(a astopo.ASN) (int, bool) {
	lo, hi := 0, len(m.asns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.asns[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(m.asns) && m.asns[lo] == a
}

// Type returns the AS's type; unknown ASes are enterprises.
func (m *Model) Type(a astopo.ASN) ASType {
	if i, ok := m.index(a); ok {
		return m.types[i]
	}
	return TypeEnterprise
}

// Users returns the AS's user mass (arbitrary units; use Share for
// fractions).
func (m *Model) Users(a astopo.ASN) float64 {
	if i, ok := m.index(a); ok {
		return m.users[i]
	}
	return 0
}

// Share returns the AS's fraction of all Internet users.
func (m *Model) Share(a astopo.ASN) float64 {
	if m.total == 0 {
		return 0
	}
	return m.Users(a) / m.total
}

// TotalUsers returns the summed user mass.
func (m *Model) TotalUsers() float64 { return m.total }

// IsEyeball reports whether the AS hosts end users.
func (m *Model) IsEyeball(a astopo.ASN) bool { return m.Users(a) > 0 }

// WeightsDense returns per-AS user weights indexed by the graph's dense
// index, normalized to sum to 1 — the form bgpsim.Result.DetouredWeight
// consumes.
func (m *Model) WeightsDense(g *astopo.Graph) []float64 {
	g.Freeze()
	w := make([]float64, g.NumASes())
	if m.total == 0 {
		return w
	}
	for i, u := range m.users {
		if u == 0 {
			continue
		}
		if gi, ok := g.Index(m.asns[i]); ok {
			w[gi] = u / m.total
		}
	}
	return w
}

// CountByType tallies the ASes of each type among the given set.
func (m *Model) CountByType(asns []astopo.ASN) map[ASType]int {
	out := make(map[ASType]int, 4)
	for _, a := range asns {
		out[m.Type(a)]++
	}
	return out
}
