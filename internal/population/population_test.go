package population

import (
	"math"
	"sort"
	"testing"

	"flatnet/internal/topogen"
)

func buildModel(t *testing.T) (*topogen.Internet, *Model) {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(0.0285))
	if err != nil {
		t.Fatal(err)
	}
	return in, Build(in, 1.1)
}

func TestTypesFollowClasses(t *testing.T) {
	in, m := buildModel(t)
	for i, a := range in.Graph.ASes() {
		got := m.Type(a)
		var want ASType
		switch in.ClassAt(i) {
		case topogen.ClassAccess:
			want = TypeAccess
		case topogen.ClassContent, topogen.ClassCloud:
			want = TypeContent
		case topogen.ClassEnterprise:
			want = TypeEnterprise
		default:
			want = TypeTransit
		}
		if got != want {
			t.Fatalf("AS%d: type %v, want %v (class %v)", a, got, want, in.ClassAt(i))
		}
	}
	if m.Type(4000000000) != TypeEnterprise {
		t.Error("unknown AS should default to enterprise")
	}
}

func TestOnlyAccessHasUsers(t *testing.T) {
	in, m := buildModel(t)
	for _, a := range in.Graph.ASes() {
		if in.ClassOf(a) == topogen.ClassAccess {
			if !m.IsEyeball(a) {
				t.Fatalf("access AS%d has no users", a)
			}
		} else if m.IsEyeball(a) {
			t.Fatalf("non-access AS%d (%v) has users", a, in.ClassOf(a))
		}
	}
}

func TestSharesSumToOne(t *testing.T) {
	in, m := buildModel(t)
	var sum float64
	for _, a := range in.Graph.ASes() {
		sum += m.Share(a)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	w := m.WeightsDense(in.Graph)
	var wsum float64
	for _, v := range w {
		wsum += v
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("dense weights sum to %v", wsum)
	}
}

// The user distribution must be heavy-tailed: the top 10% of eyeball ASes
// hold well over half the users (APNIC's real skew is stronger still).
func TestUserDistributionHeavyTailed(t *testing.T) {
	in, m := buildModel(t)
	var users []float64
	for _, a := range in.Graph.ASes() {
		if u := m.Users(a); u > 0 {
			users = append(users, u)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(users)))
	top := len(users) / 10
	var topSum, total float64
	for i, u := range users {
		total += u
		if i < top {
			topSum += u
		}
	}
	if frac := topSum / total; frac < 0.5 {
		t.Errorf("top 10%% of eyeball ASes hold %.2f of users, want >= 0.5", frac)
	}
}

func TestDeterministic(t *testing.T) {
	in, err := topogen.Generate(topogen.Internet2020(0.0285))
	if err != nil {
		t.Fatal(err)
	}
	m1 := Build(in, 1.1)
	m2 := Build(in, 1.1)
	for _, a := range in.Graph.ASes() {
		if m1.Users(a) != m2.Users(a) {
			t.Fatalf("nondeterministic users for AS%d", a)
		}
	}
}

func TestCountByType(t *testing.T) {
	in, m := buildModel(t)
	counts := m.CountByType(in.Graph.ASes())
	var total int
	for _, n := range counts {
		total += n
	}
	if total != in.Graph.NumASes() {
		t.Errorf("CountByType total %d != %d ASes", total, in.Graph.NumASes())
	}
	if counts[TypeAccess] == 0 || counts[TypeEnterprise] == 0 || counts[TypeTransit] == 0 || counts[TypeContent] == 0 {
		t.Errorf("some type empty: %v", counts)
	}
}
