package rdns

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// This file implements the sc_hoiho-style convention learner (§4.2's
// second method): given router alias groups (hostnames known to belong to
// the same router), learn a regular expression that extracts the location
// token from that network's hostnames.
//
// The key observation hoiho exploits: within one alias group the location
// token is constant (all interfaces of a router sit in one city) while
// interface-specific tokens vary; across groups in different cities the
// location token varies. The learner tokenizes hostnames into delimiter-
// separated fields (and digit/letter runs within fields), then picks the
// field position whose value is constant within groups but diverse across
// groups, emitting an anchored extraction regex.

// tokenize splits a hostname's first label sequence into letter runs,
// keeping positional structure: "ae-1.r02.jfk01" -> ["ae","r","jfk"] with
// positions recorded as (label index, run index).
type tokenPos struct {
	label, run int
}

func letterRuns(label string) []string {
	var runs []string
	cur := strings.Builder{}
	for _, r := range label {
		if r >= 'a' && r <= 'z' {
			cur.WriteRune(r)
		} else if cur.Len() > 0 {
			runs = append(runs, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		runs = append(runs, cur.String())
	}
	return runs
}

func tokensOf(hostname string) map[tokenPos]string {
	out := make(map[tokenPos]string)
	labels := strings.Split(hostname, ".")
	for li, label := range labels {
		for ri, run := range letterRuns(label) {
			out[tokenPos{li, ri}] = run
		}
	}
	return out
}

// LearnConvention infers the location-token position from alias groups of
// hostnames and returns a regex extracting it. It needs at least two alias
// groups in different locations; with fewer groups it fails, mirroring the
// paper's note that sc_hoiho produced no result for ASes with a low number
// of alias groups.
func LearnConvention(groups [][]string) (*regexp.Regexp, error) {
	if len(groups) < 2 {
		return nil, fmt.Errorf("rdns: need >= 2 alias groups, have %d", len(groups))
	}
	// Score each token position: +1 per group where it is constant and
	// non-empty; diversity = number of distinct values across groups.
	constCount := make(map[tokenPos]int)
	values := make(map[tokenPos]map[string]bool)
	for _, group := range groups {
		if len(group) == 0 {
			continue
		}
		first := tokensOf(group[0])
		for pos, val := range first {
			constant := true
			for _, h := range group[1:] {
				if tokensOf(h)[pos] != val {
					constant = false
					break
				}
			}
			if constant {
				constCount[pos]++
				if values[pos] == nil {
					values[pos] = make(map[string]bool)
				}
				values[pos][val] = true
			}
		}
	}
	// Candidates: constant in every group, diverse across groups, and
	// plausible location tokens (3-letter runs).
	type cand struct {
		pos       tokenPos
		diversity int
	}
	var cands []cand
	for pos, n := range constCount {
		if n != len(groups) {
			continue
		}
		sample := ""
		for v := range values[pos] {
			sample = v
			break
		}
		if len(sample) != 3 {
			continue
		}
		cands = append(cands, cand{pos, len(values[pos])})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("rdns: no location-like token position found")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].diversity != cands[j].diversity {
			return cands[i].diversity > cands[j].diversity
		}
		if cands[i].pos.label != cands[j].pos.label {
			return cands[i].pos.label < cands[j].pos.label
		}
		return cands[i].pos.run < cands[j].pos.run
	})
	best := cands[0].pos

	// Build the anchored regex from a template hostname: replace the
	// chosen letter run with a capture group, all other letter runs with
	// [a-z]+, and digit runs with \d+.
	template := groups[0][0]
	return buildRegex(template, best)
}

func buildRegex(hostname string, want tokenPos) (*regexp.Regexp, error) {
	labels := strings.Split(hostname, ".")
	var out []string
	for li, label := range labels {
		var sb strings.Builder
		runIdx := 0
		i := 0
		for i < len(label) {
			c := label[i]
			switch {
			case c >= 'a' && c <= 'z':
				j := i
				for j < len(label) && label[j] >= 'a' && label[j] <= 'z' {
					j++
				}
				if (tokenPos{li, runIdx}) == want {
					sb.WriteString(`([a-z]{3})`)
				} else {
					sb.WriteString(`[a-z]+`)
				}
				runIdx++
				i = j
			case c >= '0' && c <= '9':
				j := i
				for j < len(label) && label[j] >= '0' && label[j] <= '9' {
					j++
				}
				sb.WriteString(`\d+`)
				i = j
			default:
				sb.WriteString(regexp.QuoteMeta(string(c)))
				i++
			}
		}
		out = append(out, sb.String())
	}
	return regexp.Compile("^" + strings.Join(out, `\.`) + "$")
}
