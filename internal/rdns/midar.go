package rdns

import (
	"fmt"
	"net/netip"
	"regexp"

	"flatnet/internal/alias"
	"flatnet/internal/astopo"
)

// ResolveAliasesAndLearn runs the paper's second PoP-extraction method end
// to end (§4.2): MIDAR-style IP-ID alias resolution over a network's router
// interface addresses, then sc_hoiho-style convention learning from the
// recovered alias groups' hostnames.
//
// The probe targets are simulated from the corpus's ground-truth alias
// groups (real routers answer with shared IP-ID counters; package alias
// documents the technique). Networks with too few recovered alias groups
// fail, matching the paper's note that sc_hoiho produced no result for
// several ASes with a low number of alias groups.
func ResolveAliasesAndLearn(corpus *Corpus, asn astopo.ASN, seed int64) (*regexp.Regexp, error) {
	truth := corpus.Aliases[asn]
	if len(truth) == 0 {
		return nil, fmt.Errorf("rdns: AS%d has no responsive router interfaces", asn)
	}
	target, err := alias.NewSimTarget(seed, truth, nil)
	if err != nil {
		return nil, fmt.Errorf("rdns: AS%d: %w", asn, err)
	}
	var addrs []netip.Addr
	for _, g := range truth {
		addrs = append(addrs, g...)
	}
	groups, _ := alias.Resolve(target, addrs, alias.Options{})

	byAddr := make(map[netip.Addr]string, len(corpus.ByAS[asn]))
	for _, rec := range corpus.ByAS[asn] {
		byAddr[rec.Addr] = rec.Hostname
	}
	var hostGroups [][]string
	for _, g := range groups {
		var hg []string
		for _, a := range g {
			if h, ok := byAddr[a]; ok {
				hg = append(hg, h)
			}
		}
		if len(hg) > 0 {
			hostGroups = append(hostGroups, hg)
		}
	}
	return LearnConvention(hostGroups)
}
