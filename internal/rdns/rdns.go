// Package rdns synthesizes and parses router reverse-DNS hostnames, the
// data source behind the paper's PoP-map confirmation (§4.2, Appendix C).
//
// Real operators encode PoP locations in router hostnames (airport codes or
// city abbreviations) under per-network naming conventions — e.g. NTT's
// routers live under gin.ntt.net with an IATA token. The package:
//
//   - synthesizes per-network hostname corpora over a provider's PoP
//     cities, at the per-network rDNS coverage levels of Table 3 (Amazon
//     publishes no rDNS at all; NTT covers ~100%);
//   - extracts locations with hand-written convention regexes (the paper's
//     first method);
//   - learns conventions from alias groups (the sc_hoiho-style second
//     method) and verifies both methods agree.
package rdns

import (
	"fmt"
	"math/rand"
	"net/netip"
	"regexp"
	"strings"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/netdb"
	"flatnet/internal/topogen"
)

// Convention is a network's router naming scheme.
type Convention struct {
	// Suffix is the DNS zone (e.g. "gin.ntt.net").
	Suffix string
	// Pattern renders a hostname from an IATA code, a router index, and
	// an interface index.
	Pattern func(iata string, router, iface int) string
	// Regexp extracts the IATA code from a hostname of this convention
	// (submatch 1) — the "manual inspection" method of §4.2.
	Regexp *regexp.Regexp
}

// conventions gives each named network a distinct hostname structure, so
// that the learner has real work to do.
var conventions = []Convention{
	{
		Suffix:  "gin.%s.net",
		Pattern: func(iata string, r, i int) string { return fmt.Sprintf("ae-%d.r%02d.%s01", i, r, iata) },
		Regexp:  regexp.MustCompile(`^ae-\d+\.r\d+\.([a-z]{3})\d+\.`),
	},
	{
		Suffix:  "core.%s.net",
		Pattern: func(iata string, r, i int) string { return fmt.Sprintf("%dge%d.%s%d", 100, i, iata, r) },
		Regexp:  regexp.MustCompile(`^\d+ge\d+\.([a-z]{3})\d+\.`),
	},
	{
		Suffix:  "bb.%s.net",
		Pattern: func(iata string, r, i int) string { return fmt.Sprintf("%s-b%d-link%d", iata, r, i) },
		Regexp:  regexp.MustCompile(`^([a-z]{3})-b\d+-link\d+\.`),
	},
	{
		Suffix:  "%s.net",
		Pattern: func(iata string, r, i int) string { return fmt.Sprintf("et-%d-0-%d.edge%d.%s", i, r, r, iata) },
		Regexp:  regexp.MustCompile(`^et-\d+-0-\d+\.edge\d+\.([a-z]{3})\.`),
	},
}

// ConventionFor returns the deterministic convention assigned to a network
// (by ASN) with its zone rendered from the network's name.
func ConventionFor(asn astopo.ASN, name string) Convention {
	c := conventions[int(asn)%len(conventions)]
	zone := strings.ToLower(strings.NewReplacer(" ", "", ".", "", "&", "").Replace(name))
	if zone == "" {
		zone = fmt.Sprintf("as%d", asn)
	}
	return Convention{
		Suffix:  fmt.Sprintf(c.Suffix, zone),
		Pattern: c.Pattern,
		Regexp:  c.Regexp,
	}
}

// Record is one PTR record.
type Record struct {
	Addr     netip.Addr
	Hostname string
}

// Corpus holds the synthesized rDNS data for one Internet.
type Corpus struct {
	// ByAS groups records per network.
	ByAS map[astopo.ASN][]Record
	// Aliases groups interface addresses belonging to the same router
	// (MIDAR-style alias-resolution ground truth), per AS.
	Aliases map[astopo.ASN][][]netip.Addr
	// CoveredPoPs records which PoP cities actually received records.
	CoveredPoPs map[astopo.ASN]map[geo.CityID]bool
}

// Table3Coverage reproduces Appendix C's per-network "% rDNS" column: the
// share of a network's PoPs with router hostnames in reverse DNS.
var Table3Coverage = map[string]float64{
	"NTT": 1.00, "HE": 0.991, "AT&T": 0.923, "Tata": 0.904,
	"Google": 0.892, "PCCW": 0.855, "Vodafone": 0.839, "Zayo": 0.833,
	"Sprint": 0.674, "Telxius": 0.667, "Telia": 0.654, "Microsoft": 0.453,
	"It Sparkle": 0.397, "Orange": 0.267, "Amazon": 0.0,
}

// defaultCoverage applies to named networks absent from Table 3 (the paper
// found 73% of PoPs confirmed overall).
const defaultCoverage = 0.73

// Synthesize builds the rDNS corpus for every named network with PoPs.
func Synthesize(plan *netdb.Plan, seed int64) *Corpus {
	in := plan.Internet()
	rng := rand.New(rand.NewSource(seed))
	corpus := &Corpus{
		ByAS:        make(map[astopo.ASN][]Record),
		Aliases:     make(map[astopo.ASN][][]netip.Addr),
		CoveredPoPs: make(map[astopo.ASN]map[geo.CityID]bool),
	}
	cities := geo.Cities()

	// Named networks are the ones with PoP lists; the graph's node order
	// is already sorted by ASN.
	var asns []astopo.ASN
	for i, asn := range in.Graph.ASes() {
		if len(in.PoPsAt(i)) > 0 {
			asns = append(asns, asn)
		}
	}

	for _, asn := range asns {
		pops := in.PoPsOf(asn)
		name := in.NameOf(asn)
		cov, ok := Table3Coverage[name]
		if !ok {
			cov = defaultCoverage
		}
		conv := ConventionFor(asn, name)
		corpus.CoveredPoPs[asn] = make(map[geo.CityID]bool)
		addrIdx := 1000
		for _, pop := range pops {
			if rng.Float64() >= cov {
				continue // this PoP has no rDNS entries
			}
			corpus.CoveredPoPs[asn][pop] = true
			iata := cities[pop].IATA
			routers := 1 + rng.Intn(3)
			for r := 1; r <= routers; r++ {
				var group []netip.Addr
				ifaces := 2 + rng.Intn(3)
				for i := 0; i < ifaces; i++ {
					addr, ok := plan.InternalAddr(asn, addrIdx)
					addrIdx++
					if !ok {
						continue
					}
					host := conv.Pattern(iata, r, i) + "." + conv.Suffix
					corpus.ByAS[asn] = append(corpus.ByAS[asn], Record{Addr: addr, Hostname: host})
					group = append(group, addr)
				}
				if len(group) > 1 {
					corpus.Aliases[asn] = append(corpus.Aliases[asn], group)
				}
			}
		}
	}
	return corpus
}

// ExtractIATA applies a convention regex to a hostname, returning the
// location token.
func ExtractIATA(re *regexp.Regexp, hostname string) (string, bool) {
	m := re.FindStringSubmatch(hostname)
	if m == nil || len(m) < 2 {
		return "", false
	}
	return m[1], true
}

// ConfirmedPoPs runs the §4.2 confirmation: extract location tokens from a
// network's hostnames with the given regex and count how many of its PoP
// cities are confirmed. Returns (confirmed, total PoPs, hostnames seen).
func ConfirmedPoPs(in *topogen.Internet, corpus *Corpus, asn astopo.ASN, re *regexp.Regexp) (confirmed, total, hostnames int) {
	pops := in.PoPsOf(asn)
	total = len(pops)
	records := corpus.ByAS[asn]
	hostnames = len(records)
	found := make(map[string]bool)
	for _, rec := range records {
		if tok, ok := ExtractIATA(re, rec.Hostname); ok {
			found[tok] = true
		}
	}
	cities := geo.Cities()
	for _, pop := range pops {
		if found[cities[pop].IATA] {
			confirmed++
		}
	}
	return confirmed, total, hostnames
}
