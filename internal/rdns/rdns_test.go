package rdns

import (
	"sort"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/netdb"
	"flatnet/internal/topogen"
)

func buildCorpus(t testing.TB) (*topogen.Internet, *netdb.Plan, *Corpus) {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(0.02138))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, plan, Synthesize(plan, 17)
}

func TestAmazonHasNoRDNS(t *testing.T) {
	in, _, corpus := buildCorpus(t)
	amazon := in.Clouds["Amazon"]
	if n := len(corpus.ByAS[amazon]); n != 0 {
		t.Errorf("Amazon has %d rDNS records, want 0 (Table 3)", n)
	}
}

func TestCoverageTracksTable3(t *testing.T) {
	in, _, corpus := buildCorpus(t)
	ntt := astopo.ASN(2914)
	orange := astopo.ASN(5511)
	frac := func(asn astopo.ASN) float64 {
		return float64(len(corpus.CoveredPoPs[asn])) / float64(len(in.PoPsOf(asn)))
	}
	if f := frac(ntt); f < 0.9 {
		t.Errorf("NTT coverage %.2f, want ~1.0", f)
	}
	if f := frac(orange); f > 0.55 {
		t.Errorf("Orange coverage %.2f, want ~0.27", f)
	}
	if frac(ntt) <= frac(orange) {
		t.Error("NTT should out-cover Orange")
	}
}

func TestManualExtraction(t *testing.T) {
	in, _, corpus := buildCorpus(t)
	for _, asn := range []astopo.ASN{2914, 6939, 15169, 1299} {
		name := in.NameOf(asn)
		conv := ConventionFor(asn, name)
		confirmed, total, hostnames := ConfirmedPoPs(in, corpus, asn, conv.Regexp)
		if hostnames == 0 {
			t.Fatalf("%s: no hostnames", name)
		}
		covered := len(corpus.CoveredPoPs[asn])
		if confirmed != covered {
			t.Errorf("%s: confirmed %d PoPs, want %d (all rDNS-covered PoPs)", name, confirmed, covered)
		}
		if total != len(in.PoPsOf(asn)) {
			t.Errorf("%s: total = %d, want %d", name, total, len(in.PoPsOf(asn)))
		}
	}
}

// The learned convention must agree with the manual regex (§4.2: "we had
// identical results for the two methods").
func TestLearnedMatchesManual(t *testing.T) {
	in, _, corpus := buildCorpus(t)
	checked := 0
	for asn, aliasGroups := range corpus.Aliases {
		if len(aliasGroups) < 4 {
			continue
		}
		byAddr := make(map[string]string)
		for _, rec := range corpus.ByAS[asn] {
			byAddr[rec.Addr.String()] = rec.Hostname
		}
		hostGroups := make([][]string, 0, len(aliasGroups))
		for _, g := range aliasGroups {
			var hg []string
			for _, addr := range g {
				if h, ok := byAddr[addr.String()]; ok {
					hg = append(hg, h)
				}
			}
			if len(hg) > 0 {
				hostGroups = append(hostGroups, hg)
			}
		}
		re, err := LearnConvention(hostGroups)
		if err != nil {
			t.Fatalf("%s: learn failed: %v", in.NameOf(asn), err)
		}
		manual := ConventionFor(asn, in.NameOf(asn)).Regexp
		c1, _, _ := ConfirmedPoPs(in, corpus, asn, re)
		c2, _, _ := ConfirmedPoPs(in, corpus, asn, manual)
		if c1 != c2 {
			t.Errorf("%s: learned regex confirms %d PoPs, manual %d", in.NameOf(asn), c1, c2)
		}
		checked++
		if checked >= 8 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no networks checked")
	}
}

func TestLearnConventionFailsWithFewGroups(t *testing.T) {
	if _, err := LearnConvention([][]string{{"a-1.r01.jfk01.gin.x.net"}}); err == nil {
		t.Error("single group accepted")
	}
	if _, err := LearnConvention(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLearnConventionSynthetic(t *testing.T) {
	groups := [][]string{
		{"ae-1.r01.jfk01.gin.ex.net", "ae-2.r01.jfk01.gin.ex.net"},
		{"ae-1.r02.lhr01.gin.ex.net", "ae-9.r02.lhr01.gin.ex.net"},
		{"ae-3.r01.sin02.gin.ex.net", "ae-4.r01.sin02.gin.ex.net"},
	}
	re, err := LearnConvention(groups)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ExtractIATA(re, "ae-7.r05.fra03.gin.ex.net")
	if !ok || got != "fra" {
		t.Errorf("extracted %q,%v, want fra", got, ok)
	}
	// The learned regex must not match a different convention.
	if _, ok := ExtractIATA(re, "100ge3.ams1.core.other.net"); ok {
		t.Error("learned regex matched a foreign convention")
	}
}

// The full §4.2 second method: MIDAR-style alias resolution over simulated
// probe targets, then convention learning — must agree with the manual
// regex, as the paper reports ("identical results for the two methods").
func TestMidarPipelineMatchesManual(t *testing.T) {
	in, _, corpus := buildCorpus(t)
	checked := 0
	asns := make([]astopo.ASN, 0, len(corpus.Aliases))
	for asn := range corpus.Aliases {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		if len(corpus.Aliases[asn]) < 4 {
			continue
		}
		re, err := ResolveAliasesAndLearn(corpus, asn, 99)
		if err != nil {
			t.Fatalf("%s: %v", in.NameOf(asn), err)
		}
		manual := ConventionFor(asn, in.NameOf(asn)).Regexp
		c1, _, _ := ConfirmedPoPs(in, corpus, asn, re)
		c2, _, _ := ConfirmedPoPs(in, corpus, asn, manual)
		if c1 != c2 {
			t.Errorf("%s: midar+hoiho confirms %d PoPs, manual %d", in.NameOf(asn), c1, c2)
		}
		checked++
		if checked >= 12 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no networks checked")
	}
	// Amazon publishes no rDNS: the pipeline must fail cleanly.
	if _, err := ResolveAliasesAndLearn(corpus, in.Clouds["Amazon"], 99); err == nil {
		t.Error("pipeline succeeded for a network with no rDNS")
	}
}
