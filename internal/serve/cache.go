package serve

import (
	"container/list"
	"sync"
)

// lru is a fixed-capacity, mutex-guarded LRU map. Values are whatever the
// caller stores (the result cache stores marshaled response bodies, the
// sweep cache stores *bgpsim.LeakSweep prototypes); eviction is strictly
// least-recently-used on Get/Put order.
type lru struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent; elements hold *lruEntry
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(max int) *lru {
	if max < 1 {
		max = 1
	}
	return &lru{max: max, ll: list.New(), m: make(map[string]*list.Element, max)}
}

// Get returns the cached value and marks it most recently used.
func (c *lru) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
