package serve

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flatnet/internal/astopo"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
)

// usageErr marks a RunCLI failure caused by bad flags or arguments (as
// opposed to a runtime failure), so callers can exit with a usage status.
type usageErr struct{ err error }

func (e *usageErr) Error() string { return e.err.Error() }
func (e *usageErr) Unwrap() error { return e.err }

// IsUsageError reports whether a RunCLI error was a flag or argument
// mistake rather than a runtime failure.
func IsUsageError(err error) bool {
	var ue *usageErr
	return errors.As(err, &ue)
}

// RunCLI is the shared entry point behind `flatnetd` and `flatnet serve`:
// it parses flags, loads or generates the topology once, starts the
// server, and blocks until SIGINT/SIGTERM, then drains in-flight queries.
// Flag errors are returned (ContinueOnError) so both callers can map them
// to a uniform usage exit.
func RunCLI(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	scale := fs.Float64("scale", 0.04987, "topology scale when generating (1.0 = the paper's 69,488 ASes)")
	year := fs.Int("year", 2020, "preset year (when generating; 2015 or 2020)")
	topo := fs.String("topo", "", "CAIDA serial-1/serial-2 relationship file (default: generated preset)")
	snap := fs.String("snapshot", "", "binary snapshot file (see 'flatnet snapshot build'; skips generation)")
	verify := fs.Bool("verify", false, "with -snapshot: checksum every section, including the mmap-served hot arrays, before serving")
	cacheSize := fs.Int("cache", 0, "result cache entries (default 4096)")
	timeout := fs.Duration("timeout", 0, "default per-request deadline (default 5s)")
	maxTimeout := fs.Duration("max-timeout", 0, "upper bound on client-requested deadlines (default 60s)")
	concurrency := fs.Int("concurrency", 0, "max concurrent computations (default GOMAXPROCS)")
	drain := fs.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight queries")
	join := fs.String("join", "", "coordinator base URL to join as a shard worker (syncs the world by snapshot hash when not loaded locally)")
	advertise := fs.String("advertise", "", "externally reachable base URL advertised on join (default http://<bound addr>)")
	snapCache := fs.String("snapshot-cache", "", "directory for snapshots fetched from a coordinator (default <tmp>/flatnet-snapshots)")
	pprofAddr := fs.String("pprof", "", "listen address for net/http/pprof diagnostics (disabled unless set)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &usageErr{err} // the FlagSet already printed the message
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "serve: unexpected argument %q\n", fs.Arg(0))
		return &usageErr{fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))}
	}

	cfg := Config{
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxConcurrent:  *concurrency,
	}
	start := time.Now()
	if *topo != "" && *snap != "" {
		fmt.Fprintln(stderr, "serve: -topo and -snapshot are mutually exclusive")
		return &usageErr{errors.New("serve: -topo and -snapshot are mutually exclusive")}
	}
	httpClient := &http.Client{}
	if *join != "" && *snap == "" && *topo == "" {
		// State sync by content address: ask the coordinator what world it
		// serves, then materialize the exact snapshot bytes (cached across
		// restarts under the sha) instead of regenerating locally. Retries
		// cover the race where the worker starts before the coordinator
		// finishes loading.
		var info cluster.Info
		var ierr error
		for i := 0; i < 40; i++ {
			ictx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			info, ierr = cluster.FetchInfo(ictx, httpClient, *join)
			cancel()
			if ierr == nil {
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		if ierr != nil {
			return fmt.Errorf("serve: cannot reach coordinator %s: %w", *join, ierr)
		}
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		path, serr := cluster.EnsureSnapshot(dctx, httpClient, *join, info, *snapCache)
		cancel()
		if serr != nil {
			return serr
		}
		fmt.Fprintf(stdout, "flatnetd: synced world %.12s… from %s (snapshot %s)\n", info.World, *join, path)
		*snap = path
		*year = info.Year
	}
	if *snap != "" {
		// Zero-copy mmap path first; fall back to the eager legacy decoder
		// for v1 files. The Reader stays open for the daemon's lifetime —
		// the served graph borrows its memory.
		var in *topogen.Internet
		if rd, oerr := snapshot.Open(*snap); oerr == nil {
			if *verify {
				if err := rd.Verify(); err != nil {
					return err
				}
			}
			in = rd.Internet(*year)
		} else {
			world, rerr := snapshot.ReadFile(*snap)
			if rerr != nil {
				return oerr
			}
			in = world.Internets[*year]
		}
		if in == nil {
			return fmt.Errorf("serve: snapshot %s has no %d internet section", *snap, *year)
		}
		cfg.Dataset = core.Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2}
		cfg.Names = in.NameOf
		cfg.World = in
		cfg.SnapshotPath = *snap
	} else if *topo != "" {
		f, err := os.Open(*topo)
		if err != nil {
			return err
		}
		g, err := astopo.ReadRelationships(f)
		f.Close()
		if err != nil {
			return err
		}
		tier1, tier2 := InferTiers(g)
		cfg.Dataset = core.Dataset{Graph: g, Tier1: tier1, Tier2: tier2}
	} else {
		var spec topogen.Spec
		switch *year {
		case 2020:
			spec = topogen.Internet2020(*scale)
		case 2015:
			spec = topogen.Internet2015(*scale)
		default:
			return fmt.Errorf("serve: unknown year %d (want 2015 or 2020)", *year)
		}
		in, err := topogen.Generate(spec)
		if err != nil {
			return err
		}
		cfg.Dataset = core.Dataset{Graph: in.Graph, Tier1: in.Tier1, Tier2: in.Tier2}
		cfg.Names = in.NameOf
		cfg.World = in
		// Generated worlds stay joinable: encode the world as snapshot
		// bytes on first /v1/cluster/snapshot request. Generation and the
		// codec are both deterministic, so every worker that fetches these
		// bytes lands on the identical content address.
		genScale, genYear, genIn := *scale, *year, in
		cfg.SnapshotBytes = func() ([]byte, error) {
			var buf bytes.Buffer
			world := &snapshot.World{Scale: genScale, Internets: map[int]*topogen.Internet{genYear: genIn}}
			if err := snapshot.Write(&buf, world); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}
	}
	cfg.Year = *year

	srv, err := New(cfg)
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "flatnetd: serving %d ASes, %d links (%d Tier-1, %d Tier-2; loaded in %v) on http://%s\n",
		cfg.Dataset.Graph.NumASes(), cfg.Dataset.Graph.NumLinks(),
		len(cfg.Dataset.Tier1), len(cfg.Dataset.Tier2),
		time.Since(start).Round(time.Millisecond), bound)

	if *pprofAddr != "" {
		// Opt-in only: the profiling surface binds a separate listener so
		// the serving port never exposes pprof.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				fmt.Fprintf(stderr, "flatnetd: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "flatnetd: pprof diagnostics on http://%s/debug/pprof/\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + bound.String()
		}
		slots := *concurrency
		if slots <= 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		jr := cluster.JoinRequest{Addr: cluster.CanonicalAddr(adv), World: srv.WorldID(), Slots: slots}
		if err := cluster.JoinRetry(ctx, httpClient, *join, jr, 5*time.Second); err != nil {
			return fmt.Errorf("serve: join %s: %w", *join, err)
		}
		fmt.Fprintf(stdout, "flatnetd: joined coordinator %s as %s (%d slots)\n", *join, jr.Addr, slots)
	}
	<-ctx.Done()
	stop()
	fmt.Fprintln(stdout, "flatnetd: shutting down, draining in-flight queries")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return srv.Shutdown(dctx)
}

// InferTiers derives stand-in Tier-1/Tier-2 exclusion sets for topologies
// loaded from bare relationship files, which carry no tier labels (the
// paper takes these sets from ProbLink/AS-Rank; generated presets define
// them by construction). Tier-1s are provider-free ASes whose customer
// cone covers at least 1% of the graph; Tier-2s are the remaining ASes
// with cones covering at least 0.25%.
func InferTiers(g *astopo.Graph) (tier1, tier2 astopo.ASSet) {
	g.Freeze()
	n := g.NumASes()
	cones := g.ConeSizes()
	t1Min := n / 100
	if t1Min < 2 {
		t1Min = 2
	}
	t2Min := n / 400
	if t2Min < 2 {
		t2Min = 2
	}
	tier1, tier2 = astopo.ASSet{}, astopo.ASSet{}
	for i := 0; i < n; i++ {
		a := g.ASNAt(i)
		switch {
		case len(g.ProvidersOf(i)) == 0 && cones[i] >= t1Min:
			tier1.Add(a)
		case cones[i] >= t2Min:
			tier2.Add(a)
		}
	}
	return tier1, tier2
}
