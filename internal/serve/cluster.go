package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
)

// This file is the serving layer's cluster face, both directions at once:
// every daemon mounts the worker shard endpoints (any flatnetd can compute
// shards), and every daemon carries a coordinator Pool that fans wide
// queries out once workers have joined. The shard handlers compute with
// workers=1 on purpose: one shard request occupies exactly one serving
// slot, so MaxConcurrent is an accurate backpressure bound and a
// multi-core worker scales by slots, not by oversubscription.

// clusterWide is the width (origins or trials) at which a query is worth
// fanning out: below two full bit-parallel words, coordination overhead
// beats the compute.
const clusterWide = 2 * bgpsim.BatchLanes

// ensureSnapshot lazily resolves the world's snapshot identity and, for
// generated or evolved worlds, encodes the bytes once per world.
func (ws *worldState) ensureSnapshot() error {
	ws.snapOnce.Do(func() {
		switch {
		case ws.snapPath != "":
			f, err := os.Open(ws.snapPath)
			if err != nil {
				ws.snapErr = err
				return
			}
			defer f.Close()
			h := sha256.New()
			n, err := io.Copy(h, f)
			if err != nil {
				ws.snapErr = err
				return
			}
			ws.snapSHA = fmt.Sprintf("%x", h.Sum(nil))
			ws.snapSize = n
		case ws.snapGen != nil:
			b, err := ws.snapGen()
			if err != nil {
				ws.snapErr = err
				return
			}
			ws.snapBytes = b
			ws.snapSHA = fmt.Sprintf("%x", sha256.Sum256(b))
			ws.snapSize = int64(len(b))
		}
	})
	return ws.snapErr
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, _ *http.Request) {
	ws := s.w()
	if err := ws.ensureSnapshot(); err != nil {
		s.writeError(w, err)
		return
	}
	g := ws.ds.Graph
	writeJSON(w, http.StatusOK, cluster.Info{
		World:        ws.id,
		SnapshotSHA:  ws.snapSHA,
		SnapshotSize: ws.snapSize,
		Year:         ws.year,
		ASes:         g.NumASes(),
		Links:        g.NumLinks(),
	})
}

func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	if err := ws.ensureSnapshot(); err != nil {
		s.writeError(w, err)
		return
	}
	if ws.snapSHA == "" {
		s.writeError(w, notFoundf("this node serves no snapshot (world loaded from -topo or generated without a snapshot provider)"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-SHA256", ws.snapSHA)
	if ws.snapBytes != nil {
		w.Header().Set("Content-Length", fmt.Sprint(len(ws.snapBytes)))
		_, _ = w.Write(ws.snapBytes)
		return
	}
	http.ServeFile(w, r, ws.snapPath)
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req cluster.JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, badRequestf("bad JSON body: %v", err))
		return
	}
	if req.Addr == "" {
		s.writeError(w, badRequestf("missing worker addr"))
		return
	}
	if req.World == "" {
		s.writeError(w, badRequestf("missing worker world"))
		return
	}
	// RegisterFor checks and inserts under one pool lock, so a worker
	// holding an old world cannot slip in between this handler's check and
	// the registration while /v1/evolve rotates the pool.
	if _, ok := s.pool.RegisterFor(req.Addr, req.Slots, req.World); !ok {
		s.writeError(w, &apiError{Status: http.StatusConflict, Code: "world_mismatch",
			Message: fmt.Sprintf("worker serves world %.12s…, coordinator serves %.12s…; sync the snapshot first", req.World, s.pool.World())})
		return
	}
	writeJSON(w, http.StatusOK, cluster.JoinResponse{Workers: s.pool.NumWorkers()})
}

// handleClusterSweep computes one reachability shard: a dense index range
// (all-AS sweeps) or an explicit origin list (batch queries). Responses
// ride the same result cache as every endpoint, so a coordinator retrying
// a shard this worker already finished pays a lookup, not a propagation.
func (s *Server) handleClusterSweep(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	var req cluster.SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, badRequestf("bad JSON body: %v", err))
		return
	}
	kind, err := core.KindFromString(req.Kind)
	if err != nil {
		s.writeError(w, badRequestf("%v", err))
		return
	}
	if req.Classes {
		// Class-collapsed shard: [Lo, Hi) names equivalence-class ids and
		// the response carries one representative count per class. Class
		// ids are deterministic per world (first appearance in dense-index
		// order), so the coordinator's ids and this worker's ids agree by
		// the same world-hash argument that covers dense index ranges.
		nc := ws.metrics.Classes().NumClasses()
		if req.Lo < 0 || req.Hi > nc || req.Lo >= req.Hi {
			s.writeError(w, badRequestf("class shard range [%d, %d) outside the %d-class index", req.Lo, req.Hi, nc))
			return
		}
		key := fmt.Sprintf("cclass|%d|%d|%d", kind, req.Lo, req.Hi)
		s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
			counts, err := ws.metrics.ClassCountsRangeCtx(ctx, kind, req.Lo, req.Hi, 1)
			if err != nil {
				return nil, err
			}
			return cluster.SweepResponse{Counts: counts}, nil
		})
		return
	}
	if len(req.Origins) > 0 {
		origins := make([]astopo.ASN, len(req.Origins))
		for i, o := range req.Origins {
			origins[i] = astopo.ASN(o)
		}
		key := fmt.Sprintf("cbatch|%d|%s", kind, originsKey(req.Origins))
		s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
			counts, err := ws.metrics.ReachabilityManyN(ctx, origins, kind, 1)
			if err != nil {
				return nil, err
			}
			return cluster.SweepResponse{Counts: counts}, nil
		})
		return
	}
	n := ws.ds.Graph.NumASes()
	if req.Lo < 0 || req.Hi > n || req.Lo >= req.Hi {
		s.writeError(w, badRequestf("shard range [%d, %d) outside the %d-AS graph", req.Lo, req.Hi, n))
		return
	}
	key := fmt.Sprintf("csweep|%d|%d|%d", kind, req.Lo, req.Hi)
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		counts, err := ws.metrics.ReachabilityRangeCtx(ctx, kind, req.Lo, req.Hi, 1)
		if err != nil {
			return nil, err
		}
		return cluster.SweepResponse{Counts: counts}, nil
	})
}

// originsKey renders an origin list compactly for cache keys; the sha256
// keeps huge lists from bloating the LRU's key storage.
func originsKey(origins []uint32) string {
	h := sha256.New()
	var buf [4]byte
	for _, o := range origins {
		buf[0], buf[1], buf[2], buf[3] = byte(o), byte(o>>8), byte(o>>16), byte(o>>24)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%d|%x", len(origins), h.Sum(nil)[:12])
}

// handleClusterLeak replays leakers [Lo, Hi) of a leak batch's
// deterministic sample. The worker re-derives the identical sample from
// (origin, trials, seed) — state sync by determinism, no leaker list on
// the wire.
func (s *Server) handleClusterLeak(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	var req cluster.LeakRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, badRequestf("bad JSON body: %v", err))
		return
	}
	key := fmt.Sprintf("cleak|%d|%s|%v|%d|%d|%d|%d",
		req.Origin, req.Scenario, req.Hijack, req.Trials, req.Seed, req.Lo, req.Hi)
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		fracs, err := s.leakFracsRange(ctx, ws, req.LeakQuery, req.Lo, req.Hi, 1)
		if err != nil {
			return nil, err
		}
		return cluster.LeakResponse{Fracs: fracs}, nil
	})
}

// leakFracsRange computes the detoured fractions of leakers [lo, hi) of
// the deterministic sample for q on the pinned world, with the given
// compute parallelism. Shared by the worker shard endpoint (workers=1) and
// the coordinator's local fallback (workers=0, full speed).
func (s *Server) leakFracsRange(ctx context.Context, ws *worldState, q cluster.LeakQuery, lo, hi, workers int) ([]float64, error) {
	origin := astopo.ASN(q.Origin)
	g := ws.ds.Graph
	if _, ok := g.Index(origin); !ok {
		return nil, notFoundf("AS%d not in the topology", origin)
	}
	scen, ok := scenarioNames[q.Scenario]
	if !ok {
		return nil, badRequestf("unknown scenario %q", q.Scenario)
	}
	proto, err := s.leakSweep(ws, origin, q.Scenario, scen, q.Hijack)
	if err != nil {
		return nil, err
	}
	leakers := bgpsim.SampleLeakers(g, origin, q.Trials, q.Seed)
	if lo < 0 || hi > len(leakers) || lo > hi {
		return nil, badRequestf("leak shard [%d, %d) outside the %d-leaker sample", lo, hi, len(leakers))
	}
	res, err := proto.Clone().TrialsN(ctx, leakers[lo:hi], nil, workers)
	if err != nil {
		return nil, err
	}
	fracs := make([]float64, len(res))
	for i, tr := range res {
		fracs[i] = tr.DetouredFrac
	}
	return fracs, nil
}

// ---- local fallback closures (wired into the Pool at New) ----
//
// Each closure pins the current world at call time. If an evolve lands
// while a fan-out is in flight, the fallback may compute on the successor
// world while workers finished shards on the old one; the handler's
// post-call verifyWorld check catches exactly that case and errors instead
// of caching a mixed result (worlds are monotonic, so the successor is
// always visible to the post-check).

func (s *Server) localSweep(ctx context.Context, kind string, lo, hi int) ([]int, error) {
	k, err := core.KindFromString(kind)
	if err != nil {
		return nil, err
	}
	return s.w().metrics.ReachabilityRangeCtx(ctx, k, lo, hi, 0)
}

func (s *Server) localBatch(ctx context.Context, kind string, origins []uint32) ([]int, error) {
	k, err := core.KindFromString(kind)
	if err != nil {
		return nil, err
	}
	asns := make([]astopo.ASN, len(origins))
	for i, o := range origins {
		asns[i] = astopo.ASN(o)
	}
	return s.w().metrics.ReachabilityManyN(ctx, asns, k, 0)
}

func (s *Server) localLeak(ctx context.Context, q cluster.LeakQuery, lo, hi int) ([]float64, error) {
	return s.leakFracsRange(ctx, s.w(), q, lo, hi, 0)
}

func (s *Server) localClasses(ctx context.Context, kind string, clo, chi int) ([]int, error) {
	k, err := core.KindFromString(kind)
	if err != nil {
		return nil, err
	}
	return s.w().metrics.ClassCountsRangeCtx(ctx, k, clo, chi, 0)
}

// ---- the public full-sweep endpoint ----

type sweepEntry struct {
	AS        astopo.ASN `json:"as"`
	Name      string     `json:"name,omitempty"`
	Reachable int        `json:"reachable"`
	Pct       float64    `json:"pct"`
}

type sweepResponse struct {
	Kind  string       `json:"kind"`
	ASes  int          `json:"ases"`
	Total int          `json:"total"`
	Top   []sweepEntry `json:"top"`
}

// handleSweep answers GET /v1/sweep: reachability of every AS in the
// topology, returning the top-N ranked as Table 1 of the paper ranks
// providers (count desc, ASN asc). With workers joined, the sweep is
// partitioned across the cluster; the merged counts are identical to the
// single-process sweep (disjoint exact-integer ranges), so the response
// body is byte-for-byte the same either way.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	kind, err := parseKind(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	top, err := parseIntParam(r, "top", 20, s.cfg.MaxTop)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := fmt.Sprintf("sweep|%d|%d", kind, top)
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		g := ws.ds.Graph
		n := g.NumASes()
		var counts []int
		if s.pool.Ready() && s.pool.World() == ws.id {
			// With collapse enabled the cluster shards the equivalence
			// classes instead of the ASes: every shard propagates only
			// distinct work, and the coordinator expands the merged
			// per-class vector locally. Expansion is a plain copy, so the
			// counts are byte-identical to the AS-sharded (and to the
			// single-process) sweep.
			if ci := ws.metrics.SweepClasses(); ci != nil {
				var classCounts []int
				classCounts, err = s.pool.ClassCounts(ctx, kind.String(), ci.NumClasses())
				if err == nil {
					counts = make([]int, n)
					ci.Expand(classCounts, counts)
				}
			} else {
				counts, err = s.pool.SweepCounts(ctx, kind.String(), n)
			}
			err = s.verifyWorld(ws, err)
		} else {
			counts, err = ws.metrics.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
		}
		if err != nil {
			return nil, err
		}
		entries := make([]sweepEntry, n)
		total := n - 1
		for i, c := range counts {
			a := g.ASNAt(i)
			entries[i] = sweepEntry{AS: a, Name: ws.nameOf(a), Reachable: c,
				Pct: 100 * float64(c) / float64(total)}
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Reachable != entries[j].Reachable {
				return entries[i].Reachable > entries[j].Reachable
			}
			return entries[i].AS < entries[j].AS
		})
		if top > n {
			top = n
		}
		return sweepResponse{Kind: kind.String(), ASes: n, Total: total, Top: entries[:top]}, nil
	})
}
