package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
)

// This file is the serving layer's cluster face, both directions at once:
// every daemon mounts the worker shard endpoints (any flatnetd can compute
// shards), and every daemon carries a coordinator Pool that fans wide
// queries out once workers have joined. The shard handlers compute with
// workers=1 on purpose: one shard request occupies exactly one serving
// slot, so MaxConcurrent is an accurate backpressure bound and a
// multi-core worker scales by slots, not by oversubscription.

// clusterWide is the width (origins or trials) at which a query is worth
// fanning out: below two full bit-parallel words, coordination overhead
// beats the compute.
const clusterWide = 2 * bgpsim.BatchLanes

// ensureSnapshot lazily resolves the world's snapshot identity and, for
// generated or evolved worlds, encodes the bytes once per world.
func (ws *worldState) ensureSnapshot() error {
	ws.snapOnce.Do(func() {
		switch {
		case ws.snapPath != "":
			f, err := os.Open(ws.snapPath)
			if err != nil {
				ws.snapErr = err
				return
			}
			defer f.Close()
			h := sha256.New()
			n, err := io.Copy(h, f)
			if err != nil {
				ws.snapErr = err
				return
			}
			ws.snapSHA = fmt.Sprintf("%x", h.Sum(nil))
			ws.snapSize = n
		case ws.snapGen != nil:
			b, err := ws.snapGen()
			if err != nil {
				ws.snapErr = err
				return
			}
			ws.snapBytes = b
			ws.snapSHA = fmt.Sprintf("%x", sha256.Sum256(b))
			ws.snapSize = int64(len(b))
		}
	})
	return ws.snapErr
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, _ *http.Request) {
	ws := s.w()
	if err := ws.ensureSnapshot(); err != nil {
		s.writeError(w, err)
		return
	}
	g := ws.ds.Graph
	writeJSON(w, http.StatusOK, cluster.Info{
		World:        ws.id,
		SnapshotSHA:  ws.snapSHA,
		SnapshotSize: ws.snapSize,
		Year:         ws.year,
		ASes:         g.NumASes(),
		Links:        g.NumLinks(),
	})
}

func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	if err := ws.ensureSnapshot(); err != nil {
		s.writeError(w, err)
		return
	}
	if ws.snapSHA == "" {
		s.writeError(w, notFoundf("this node serves no snapshot (world loaded from -topo or generated without a snapshot provider)"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-SHA256", ws.snapSHA)
	if ws.snapBytes != nil {
		w.Header().Set("Content-Length", fmt.Sprint(len(ws.snapBytes)))
		_, _ = w.Write(ws.snapBytes)
		return
	}
	http.ServeFile(w, r, ws.snapPath)
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req cluster.JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, badRequestf("bad JSON body: %v", err))
		return
	}
	if req.Addr == "" {
		s.writeError(w, badRequestf("missing worker addr"))
		return
	}
	if req.World == "" {
		s.writeError(w, badRequestf("missing worker world"))
		return
	}
	// RegisterFor checks and inserts under one pool lock, so a worker
	// holding an old world cannot slip in between this handler's check and
	// the registration while /v1/evolve rotates the pool.
	if _, ok := s.pool.RegisterFor(req.Addr, req.Slots, req.World); !ok {
		s.writeError(w, &apiError{Status: http.StatusConflict, Code: "world_mismatch",
			Message: fmt.Sprintf("worker serves world %.12s…, coordinator serves %.12s…; sync the snapshot first", req.World, s.pool.World())})
		return
	}
	writeJSON(w, http.StatusOK, cluster.JoinResponse{Workers: s.pool.NumWorkers()})
}

// wireScratch recycles encode buffers for binary frames. The cached body
// must be exactly sized (it lives in the LRU), but the encoder wants
// varint headroom; encoding into pooled scratch and copying out gives the
// cache compact bodies and the encoder an allocation-free scratch at its
// high-water size.
var wireScratch = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

func encodeCountsFrame(counts []int) []byte {
	sp := wireScratch.Get().(*[]byte)
	frame := cluster.AppendCounts((*sp)[:0], counts)
	out := append(make([]byte, 0, len(frame)), frame...)
	*sp = frame[:0] // keep the (possibly grown) buffer
	wireScratch.Put(sp)
	return out
}

func encodeFracsFrame(fracs []float64) []byte {
	sp := wireScratch.Get().(*[]byte)
	frame := cluster.AppendFracs((*sp)[:0], fracs)
	out := append(make([]byte, 0, len(frame)), frame...)
	*sp = frame[:0]
	wireScratch.Put(sp)
	return out
}

// countsScratch recycles shard-sized count vectors: a shard's counts exist
// only between compute and encode, so a coordinator fanning sweeps through
// this worker reuses one high-water buffer instead of allocating ~32 KB per
// shard request.
var countsScratch sync.Pool // *[]int

func getCountsBuf(n int) *[]int {
	p, _ := countsScratch.Get().(*[]int)
	if p == nil {
		s := make([]int, n)
		return &s
	}
	if cap(*p) < n {
		*p = make([]int, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

func putCountsBuf(p *[]int) { countsScratch.Put(p) }

// serveCachedCounts serves one counts vector under content negotiation:
// callers that accept the binary wire type get a framed vector, cached
// under its own "|w"-suffixed key so the LRU holds both encodings
// independently; everyone else gets the JSON SweepResponse — the
// compatibility fallback that keeps mixed-version clusters merging.
// compute returns a buffer from getCountsBuf (or any heap slice); it is
// recycled here once the response body is encoded.
func (s *Server) serveCachedCounts(w http.ResponseWriter, r *http.Request, ws *worldState, key string, compute func(ctx context.Context) (*[]int, error)) {
	if cluster.WireAccepted(r.Header) {
		s.stats.wireResponses.Add(1)
		s.serveCachedBody(w, r, ws, key+"|w", cluster.WireContentType, func(ctx context.Context) ([]byte, error) {
			counts, err := compute(ctx)
			if err != nil {
				return nil, err
			}
			frame := encodeCountsFrame(*counts)
			putCountsBuf(counts)
			return frame, nil
		})
		return
	}
	s.serveCachedBody(w, r, ws, key, contentTypeJSON, func(ctx context.Context) ([]byte, error) {
		counts, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(cluster.SweepResponse{Counts: *counts})
		putCountsBuf(counts)
		return body, err
	})
}

// serveCachedFracs is serveCachedCounts for leak fractions.
func (s *Server) serveCachedFracs(w http.ResponseWriter, r *http.Request, ws *worldState, key string, compute func(ctx context.Context) ([]float64, error)) {
	if cluster.WireAccepted(r.Header) {
		s.stats.wireResponses.Add(1)
		s.serveCachedBody(w, r, ws, key+"|w", cluster.WireContentType, func(ctx context.Context) ([]byte, error) {
			fracs, err := compute(ctx)
			if err != nil {
				return nil, err
			}
			return encodeFracsFrame(fracs), nil
		})
		return
	}
	s.serveCachedBody(w, r, ws, key, contentTypeJSON, func(ctx context.Context) ([]byte, error) {
		fracs, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(cluster.LeakResponse{Fracs: fracs})
	})
}

// handleClusterSweep computes one reachability shard: a dense index range
// (all-AS sweeps) or an explicit origin list (batch queries). Responses
// ride the same result cache as every endpoint, so a coordinator retrying
// a shard this worker already finished pays a lookup, not a propagation.
func (s *Server) handleClusterSweep(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	var req cluster.SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, badRequestf("bad JSON body: %v", err))
		return
	}
	kind, err := core.KindFromString(req.Kind)
	if err != nil {
		s.writeError(w, badRequestf("%v", err))
		return
	}
	if len(req.Ranges) > 0 {
		s.handleClusterSweepMulti(w, r, ws, kind, &req)
		return
	}
	if req.Classes {
		// Class-collapsed shard: [Lo, Hi) names equivalence-class ids and
		// the response carries one representative count per class. Class
		// ids are deterministic per world (first appearance in dense-index
		// order), so the coordinator's ids and this worker's ids agree by
		// the same world-hash argument that covers dense index ranges.
		nc := ws.metrics.Classes().NumClasses()
		if req.Lo < 0 || req.Hi > nc || req.Lo >= req.Hi {
			s.writeError(w, badRequestf("class shard range [%d, %d) outside the %d-class index", req.Lo, req.Hi, nc))
			return
		}
		key := fmt.Sprintf("cclass|%d|%d|%d", kind, req.Lo, req.Hi)
		s.serveCachedCounts(w, r, ws, key, func(ctx context.Context) (*[]int, error) {
			counts := getCountsBuf(req.Hi - req.Lo)
			if err := ws.metrics.ClassCountsRangeIntoCtx(ctx, kind, req.Lo, req.Hi, 1, *counts); err != nil {
				putCountsBuf(counts)
				return nil, err
			}
			return counts, nil
		})
		return
	}
	if len(req.Origins) > 0 {
		origins := make([]astopo.ASN, len(req.Origins))
		for i, o := range req.Origins {
			origins[i] = astopo.ASN(o)
		}
		key := fmt.Sprintf("cbatch|%d|%s", kind, originsKey(req.Origins))
		s.serveCachedCounts(w, r, ws, key, func(ctx context.Context) (*[]int, error) {
			counts, err := ws.metrics.ReachabilityManyN(ctx, origins, kind, 1)
			if err != nil {
				return nil, err
			}
			return &counts, nil
		})
		return
	}
	n := ws.ds.Graph.NumASes()
	if req.Lo < 0 || req.Hi > n || req.Lo >= req.Hi {
		s.writeError(w, badRequestf("shard range [%d, %d) outside the %d-AS graph", req.Lo, req.Hi, n))
		return
	}
	key := fmt.Sprintf("csweep|%d|%d|%d", kind, req.Lo, req.Hi)
	s.serveCachedCounts(w, r, ws, key, func(ctx context.Context) (*[]int, error) {
		counts := getCountsBuf(req.Hi - req.Lo)
		if err := ws.metrics.ReachabilityRangeIntoCtx(ctx, kind, req.Lo, req.Hi, 1, *counts); err != nil {
			putCountsBuf(counts)
			return nil, err
		}
		return counts, nil
	})
}

// handleClusterSweepMulti answers a coalesced multi-range shard request —
// several dense-index (or, with Classes, class-id) ranges in one round
// trip, the worker half of the coordinator's streaming merge. The
// response is wire-only: one length-prefixed binary counts frame per
// range, in request order. Each frame is looked up or computed under the
// exact cache key the single-range form uses, so coalesced and
// singly-dispatched coordinators share compute and a retried range is a
// lookup, not a propagation. Coordinators send the multi form only to
// workers that have already answered them a wire frame, so a non-wire
// Accept here is a protocol error, not a fallback case.
func (s *Server) handleClusterSweepMulti(w http.ResponseWriter, r *http.Request, ws *worldState, kind core.Kind, req *cluster.SweepRequest) {
	if !cluster.WireAccepted(r.Header) {
		s.writeError(w, badRequestf("multi-range sweep requests are wire-only; set Accept: %s", cluster.WireContentType))
		return
	}
	if len(req.Origins) > 0 {
		s.writeError(w, badRequestf("multi-range sweep requests take ranges, not origin lists"))
		return
	}
	if len(req.Ranges) > 4096 {
		s.writeError(w, badRequestf("%d ranges in one request; the limit is 4096", len(req.Ranges)))
		return
	}
	n := ws.ds.Graph.NumASes()
	if req.Classes {
		n = ws.metrics.Classes().NumClasses()
	}
	for _, rg := range req.Ranges {
		if rg.Lo < 0 || rg.Hi > n || rg.Lo >= rg.Hi {
			s.writeError(w, badRequestf("shard range [%d, %d) outside [0, %d)", rg.Lo, rg.Hi, n))
			return
		}
	}
	timeout, err := s.timeoutFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	frames := make([][]byte, len(req.Ranges))
	total := 0
	for k, rg := range req.Ranges {
		rg := rg
		var key string
		if req.Classes {
			key = fmt.Sprintf("cclass|%d|%d|%d|w", kind, rg.Lo, rg.Hi)
		} else {
			key = fmt.Sprintf("csweep|%d|%d|%d|w", kind, rg.Lo, rg.Hi)
		}
		frame, err := s.cachedBody(ctx, ws, key, func(ctx context.Context) ([]byte, error) {
			counts := getCountsBuf(rg.Hi - rg.Lo)
			var err error
			if req.Classes {
				err = ws.metrics.ClassCountsRangeIntoCtx(ctx, kind, rg.Lo, rg.Hi, 1, *counts)
			} else {
				err = ws.metrics.ReachabilityRangeIntoCtx(ctx, kind, rg.Lo, rg.Hi, 1, *counts)
			}
			if err != nil {
				putCountsBuf(counts)
				return nil, err
			}
			frame := encodeCountsFrame(*counts)
			putCountsBuf(counts)
			return frame, nil
		})
		if err != nil {
			s.writeError(w, err)
			return
		}
		frames[k] = frame
		total += 4 + len(frame)
	}
	s.stats.wireResponses.Add(1)
	w.Header().Set("Content-Type", cluster.WireContentType)
	w.Header().Set("Content-Length", fmt.Sprint(total))
	w.WriteHeader(http.StatusOK)
	prefix := make([]byte, 0, 4)
	for _, frame := range frames {
		if _, err := w.Write(cluster.AppendFramePrefix(prefix[:0], len(frame))); err != nil {
			return
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
}

// originsKey renders an origin list compactly for cache keys; the sha256
// keeps huge lists from bloating the LRU's key storage.
func originsKey(origins []uint32) string {
	h := sha256.New()
	var buf [4]byte
	for _, o := range origins {
		buf[0], buf[1], buf[2], buf[3] = byte(o), byte(o>>8), byte(o>>16), byte(o>>24)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%d|%x", len(origins), h.Sum(nil)[:12])
}

// handleClusterLeak replays leakers [Lo, Hi) of a leak batch's
// deterministic sample. The worker re-derives the identical sample from
// (origin, trials, seed) — state sync by determinism, no leaker list on
// the wire.
func (s *Server) handleClusterLeak(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	var req cluster.LeakRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, badRequestf("bad JSON body: %v", err))
		return
	}
	key := fmt.Sprintf("cleak|%d|%s|%v|%d|%d|%d|%d",
		req.Origin, req.Scenario, req.Hijack, req.Trials, req.Seed, req.Lo, req.Hi)
	s.serveCachedFracs(w, r, ws, key, func(ctx context.Context) ([]float64, error) {
		return s.leakFracsRange(ctx, ws, req.LeakQuery, req.Lo, req.Hi, 1)
	})
}

// leakFracsRange computes the detoured fractions of leakers [lo, hi) of
// the deterministic sample for q on the pinned world, with the given
// compute parallelism. Shared by the worker shard endpoint (workers=1) and
// the coordinator's local fallback (workers=0, full speed).
func (s *Server) leakFracsRange(ctx context.Context, ws *worldState, q cluster.LeakQuery, lo, hi, workers int) ([]float64, error) {
	origin := astopo.ASN(q.Origin)
	g := ws.ds.Graph
	if _, ok := g.Index(origin); !ok {
		return nil, notFoundf("AS%d not in the topology", origin)
	}
	scen, ok := scenarioNames[q.Scenario]
	if !ok {
		return nil, badRequestf("unknown scenario %q", q.Scenario)
	}
	proto, err := s.leakSweep(ws, origin, q.Scenario, scen, q.Hijack)
	if err != nil {
		return nil, err
	}
	leakers := bgpsim.SampleLeakers(g, origin, q.Trials, q.Seed)
	if lo < 0 || hi > len(leakers) || lo > hi {
		return nil, badRequestf("leak shard [%d, %d) outside the %d-leaker sample", lo, hi, len(leakers))
	}
	res, err := proto.Clone().TrialsN(ctx, leakers[lo:hi], nil, workers)
	if err != nil {
		return nil, err
	}
	fracs := make([]float64, len(res))
	for i, tr := range res {
		fracs[i] = tr.DetouredFrac
	}
	return fracs, nil
}

// ---- local fallback closures (wired into the Pool at New) ----
//
// Each closure pins the current world at call time. If an evolve lands
// while a fan-out is in flight, the fallback may compute on the successor
// world while workers finished shards on the old one; the handler's
// post-call verifyWorld check catches exactly that case and errors instead
// of caching a mixed result (worlds are monotonic, so the successor is
// always visible to the post-check).

func (s *Server) localSweep(ctx context.Context, kind string, lo, hi int) ([]int, error) {
	k, err := core.KindFromString(kind)
	if err != nil {
		return nil, err
	}
	return s.w().metrics.ReachabilityRangeCtx(ctx, k, lo, hi, 0)
}

func (s *Server) localBatch(ctx context.Context, kind string, origins []uint32) ([]int, error) {
	k, err := core.KindFromString(kind)
	if err != nil {
		return nil, err
	}
	asns := make([]astopo.ASN, len(origins))
	for i, o := range origins {
		asns[i] = astopo.ASN(o)
	}
	return s.w().metrics.ReachabilityManyN(ctx, asns, k, 0)
}

func (s *Server) localLeak(ctx context.Context, q cluster.LeakQuery, lo, hi int) ([]float64, error) {
	return s.leakFracsRange(ctx, s.w(), q, lo, hi, 0)
}

func (s *Server) localClasses(ctx context.Context, kind string, clo, chi int) ([]int, error) {
	k, err := core.KindFromString(kind)
	if err != nil {
		return nil, err
	}
	return s.w().metrics.ClassCountsRangeCtx(ctx, k, clo, chi, 0)
}

// ---- the public full-sweep endpoint ----

type sweepEntry struct {
	AS        astopo.ASN `json:"as"`
	Name      string     `json:"name,omitempty"`
	Reachable int        `json:"reachable"`
	Pct       float64    `json:"pct"`
}

type sweepResponse struct {
	Kind  string       `json:"kind"`
	ASes  int          `json:"ases"`
	Total int          `json:"total"`
	Top   []sweepEntry `json:"top"`
}

// sweepAllCounts computes the full per-AS reachability vector in dense
// graph-index order: partitioned across the cluster when workers are
// joined (class-collapsed when the world has a class index), in-process
// otherwise. Both routes produce byte-identical counts — disjoint exact-
// integer ranges computed by the same engine.
func (s *Server) sweepAllCounts(ctx context.Context, ws *worldState, kind core.Kind) ([]int, error) {
	n := ws.ds.Graph.NumASes()
	if s.pool.Ready() && s.pool.World() == ws.id {
		var counts []int
		var err error
		// With collapse enabled the cluster shards the equivalence
		// classes instead of the ASes: every shard propagates only
		// distinct work, and the coordinator expands the merged
		// per-class vector locally. Expansion is a plain copy, so the
		// counts are byte-identical to the AS-sharded (and to the
		// single-process) sweep.
		if ci := ws.metrics.SweepClasses(); ci != nil {
			var classCounts []int
			classCounts, err = s.pool.ClassCounts(ctx, kind.String(), ci.NumClasses())
			if err == nil {
				counts = make([]int, n)
				ci.Expand(classCounts, counts)
			}
		} else {
			counts, err = s.pool.SweepCounts(ctx, kind.String(), n)
		}
		if err = s.verifyWorld(ws, err); err != nil {
			return nil, err
		}
		return counts, nil
	}
	return ws.metrics.ReachabilityRangeCtx(ctx, kind, 0, n, 0)
}

// handleSweep answers GET /v1/sweep: reachability of every AS in the
// topology, returning the top-N ranked as Table 1 of the paper ranks
// providers (count desc, ASN asc). With workers joined, the sweep is
// partitioned across the cluster; the merged counts are identical to the
// single-process sweep (disjoint exact-integer ranges), so the response
// body is byte-for-byte the same either way.
//
// Clients that accept the binary wire type opt into the full per-AS
// vector instead of the ranked top-N: a counts frame in dense graph-index
// order, the bulk form downstream tooling asks for when it wants every AS
// without ~70k JSON objects.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	kind, err := parseKind(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if cluster.WireAccepted(r.Header) {
		s.stats.wireResponses.Add(1)
		key := fmt.Sprintf("sweep|%d|w", kind)
		s.serveCachedBody(w, r, ws, key, cluster.WireContentType, func(ctx context.Context) ([]byte, error) {
			counts, err := s.sweepAllCounts(ctx, ws, kind)
			if err != nil {
				return nil, err
			}
			return encodeCountsFrame(counts), nil
		})
		return
	}
	top, err := parseIntParam(r, "top", 20, s.cfg.MaxTop)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := fmt.Sprintf("sweep|%d|%d", kind, top)
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		g := ws.ds.Graph
		n := g.NumASes()
		counts, err := s.sweepAllCounts(ctx, ws, kind)
		if err != nil {
			return nil, err
		}
		entries := make([]sweepEntry, n)
		total := n - 1
		for i, c := range counts {
			a := g.ASNAt(i)
			entries[i] = sweepEntry{AS: a, Name: ws.nameOf(a), Reachable: c,
				Pct: 100 * float64(c) / float64(total)}
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Reachable != entries[j].Reachable {
				return entries[i].Reachable > entries[j].Reachable
			}
			return entries[i].AS < entries[j].AS
		})
		if top > n {
			top = n
		}
		return sweepResponse{Kind: kind.String(), ASes: n, Total: total, Top: entries[:top]}, nil
	})
}
