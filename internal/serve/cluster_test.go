package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
)

// generatedWorld is the shared cluster-test topology: big enough
// (~1500 ASes) that a sweep splits into dozens of one-block shards, built
// once because generation plus core.New dominates test wall-clock.
var (
	genOnce sync.Once
	genIn   *topogen.Internet
)

func generatedWorld(t *testing.T) (core.Dataset, *topogen.Internet) {
	t.Helper()
	genOnce.Do(func() {
		in, err := topogen.Generate(topogen.Internet2020(0.02138))
		if err != nil {
			panic(err)
		}
		genIn = in
	})
	return core.Dataset{Graph: genIn.Graph, Tier1: genIn.Tier1, Tier2: genIn.Tier2}, genIn
}

// startServer builds a Server over the generated world and binds it to a
// real loopback port (cluster traffic is real HTTP, not recorders).
func startServer(t *testing.T, mut func(*Config)) (*Server, string) {
	t.Helper()
	ds, in := generatedWorld(t)
	cfg := Config{Dataset: ds, Names: in.NameOf}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + addr.String()
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func joinWorker(t *testing.T, coordURL string, w *Server, workerURL string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := cluster.Join(ctx, http.DefaultClient, coordURL,
		cluster.JoinRequest{Addr: workerURL, World: w.WorldID(), Slots: 1})
	if err != nil {
		t.Fatalf("join %s -> %s: %v", workerURL, coordURL, err)
	}
}

// TestClusterSmoke is the end-to-end equivalence gate: a coordinator with
// two joined workers must answer the Table-1-style sweep byte-for-byte
// identically to a single process over the same world. CI runs exactly
// this test (with -race) as the cluster smoke job.
func TestClusterSmoke(t *testing.T) {
	coord, coordURL := startServer(t, func(c *Config) {
		c.Cluster = cluster.PoolConfig{ShardBlocks: 1}
	})
	w1, w1URL := startServer(t, nil)
	w2, w2URL := startServer(t, nil)
	joinWorker(t, coordURL, w1, w1URL)
	joinWorker(t, coordURL, w2, w2URL)
	if !coord.Pool().Ready() {
		t.Fatal("pool not ready after two joins")
	}

	single, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	const query = "/v1/sweep?kind=hierarchy-free&top=20"
	wantRec := get(t, single.Handler(), query)
	if wantRec.Code != http.StatusOK {
		t.Fatalf("single-process sweep: status %d, body %s", wantRec.Code, wantRec.Body)
	}
	status, got := httpGet(t, coordURL+query)
	if status != http.StatusOK {
		t.Fatalf("cluster sweep: status %d, body %s", status, got)
	}
	if !bytes.Equal(got, wantRec.Body.Bytes()) {
		t.Fatalf("cluster sweep differs from single process:\ncluster: %s\nsingle:  %s", got, wantRec.Body.Bytes())
	}
	st := coord.Pool().StatsSnapshot()
	if st.RemoteShards == 0 {
		t.Fatal("sweep did not fan out (remote shards = 0); the cluster path never ran")
	}
	for _, w := range st.Workers {
		if w.Shards == 0 {
			t.Fatalf("worker %s computed no shards", w.Addr)
		}
	}

	// /v1/stats surfaces the cluster section with per-worker gauges.
	status, sb := httpGet(t, coordURL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	var stats struct {
		World   string         `json:"world"`
		Cluster *cluster.Stats `json:"cluster"`
	}
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.World != coord.WorldID() {
		t.Fatalf("stats world = %q, want %q", stats.World, coord.WorldID())
	}
	if stats.Cluster == nil || len(stats.Cluster.Workers) != 2 {
		t.Fatalf("stats cluster section missing or wrong size: %s", sb)
	}
}

func mustDataset(t *testing.T) core.Dataset {
	t.Helper()
	ds, _ := generatedWorld(t)
	return ds
}

// TestClusterWorkerDeathMidSweep kills one worker after its first shard
// response. The coordinator must retry the lost shards on the healthy
// peer and still produce the single-process answer — the golden
// equivalence under partial failure.
func TestClusterWorkerDeathMidSweep(t *testing.T) {
	coord, _ := startServer(t, func(c *Config) {
		c.Cluster = cluster.PoolConfig{ShardBlocks: 1}
	})
	victim, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	vh := victim.Handler()
	var dead atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, "killed", http.StatusInternalServerError)
			return
		}
		vh.ServeHTTP(w, r)
		if r.URL.Path == cluster.PathSweep {
			dead.Store(true) // die right after the first shard response
		}
	}))
	defer proxy.Close()
	_, healthyURL := startServer(t, nil)
	coord.Pool().Register(proxy.URL, 1)
	coord.Pool().Register(healthyURL, 1)

	single, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	const query = "/v1/sweep?kind=provider-free&top=50"
	want := get(t, single.Handler(), query)
	got := get(t, coord.Handler(), query)
	if got.Code != http.StatusOK {
		t.Fatalf("cluster sweep with dying worker: status %d, body %s", got.Code, got.Body)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatal("sweep result diverged from single process after worker death")
	}
	st := coord.Pool().StatsSnapshot()
	if !dead.Load() {
		t.Fatal("victim never served a shard; test exercised nothing")
	}
	if st.Retries == 0 {
		t.Fatalf("worker died mid-sweep but retries = 0 (stats: %+v)", st)
	}
	for _, w := range st.Workers {
		if w.Addr == cluster.CanonicalAddr(proxy.URL) && w.Healthy {
			t.Fatal("dead worker still marked healthy")
		}
	}
}

// TestClusterLeakAndBatchMatchSingleProcess routes the two other wide
// query shapes — leak-trial batches and explicit origin lists — through
// a live cluster and diffs the bodies against a single process.
func TestClusterLeakAndBatchMatchSingleProcess(t *testing.T) {
	coord, coordURL := startServer(t, func(c *Config) {
		c.Cluster = cluster.PoolConfig{ShardBlocks: 1}
	})
	w1, w1URL := startServer(t, nil)
	w2, w2URL := startServer(t, nil)
	joinWorker(t, coordURL, w1, w1URL)
	joinWorker(t, coordURL, w2, w2URL)

	single, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	ds := mustDataset(t)
	origin := ds.Graph.ASNAt(0)

	leakQuery := fmt.Sprintf("/v1/leak?as=%d&scenario=announce-all&trials=192&seed=7", origin)
	want := get(t, single.Handler(), leakQuery)
	if want.Code != http.StatusOK {
		t.Fatalf("single leak: status %d, body %s", want.Code, want.Body)
	}
	status, got := httpGet(t, coordURL+leakQuery)
	if status != http.StatusOK {
		t.Fatalf("cluster leak: status %d, body %s", status, got)
	}
	if !bytes.Equal(got, want.Body.Bytes()) {
		t.Fatalf("cluster leak differs:\ncluster: %s\nsingle:  %s", got, want.Body.Bytes())
	}

	var asList []string
	for i := 0; i < 192; i++ {
		asList = append(asList, fmt.Sprint(ds.Graph.ASNAt(i)))
	}
	batchQuery := "/v1/batch?kind=tier1-free&as=" + strings.Join(asList, ",")
	want = get(t, single.Handler(), batchQuery)
	if want.Code != http.StatusOK {
		t.Fatalf("single batch: status %d", want.Code)
	}
	status, got = httpGet(t, coordURL+batchQuery)
	if status != http.StatusOK {
		t.Fatalf("cluster batch: status %d, body %s", status, got)
	}
	if !bytes.Equal(got, want.Body.Bytes()) {
		t.Fatal("cluster batch differs from single process")
	}
	if st := coord.Pool().StatsSnapshot(); st.RemoteShards == 0 {
		t.Fatal("leak/batch queries never fanned out")
	}
}

// TestClusterMixedWireVersions runs one sweep through a cluster of one
// modern worker (negotiates the binary wire via Accept) and one legacy
// worker — a real worker behind a proxy that strips the Accept header, so
// it never sees the wire offer and always answers JSON, exactly how a
// pre-wire flatnetd behaves. The merged response must be byte-identical
// to single process, with shards merged from BOTH encodings.
func TestClusterMixedWireVersions(t *testing.T) {
	coord, coordURL := startServer(t, func(c *Config) {
		c.Cluster = cluster.PoolConfig{ShardBlocks: 1}
	})
	w1, w1URL := startServer(t, nil)
	joinWorker(t, coordURL, w1, w1URL)

	legacy, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	lh := legacy.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		lh.ServeHTTP(w, r)
	}))
	defer proxy.Close()
	coord.Pool().Register(proxy.URL, 1)

	single, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	const query = "/v1/sweep?kind=hierarchy-free&top=20"
	want := get(t, single.Handler(), query)
	if want.Code != http.StatusOK {
		t.Fatalf("single-process sweep: status %d, body %s", want.Code, want.Body)
	}
	status, got := httpGet(t, coordURL+query)
	if status != http.StatusOK {
		t.Fatalf("mixed-version sweep: status %d, body %s", status, got)
	}
	if !bytes.Equal(got, want.Body.Bytes()) {
		t.Fatal("mixed JSON/binary cluster sweep diverged from single process")
	}
	st := coord.Pool().StatsSnapshot()
	if st.WireShards == 0 {
		t.Fatalf("no shard arrived as a binary frame; negotiation with the modern worker failed (stats %+v)", st)
	}
	if st.JSONShards == 0 {
		t.Fatalf("no shard arrived as JSON; the legacy worker was never exercised (stats %+v)", st)
	}
	if st.WireBytes <= 0 || st.WireSaved <= 0 {
		t.Fatalf("wire byte gauges not populated: bytes=%d saved=%d", st.WireBytes, st.WireSaved)
	}
}

// TestClusterCoalescedSweepMatchesSingleProcess: with a single worker the
// coordinator learns wire capability on the first shard response and
// coalesces the rest of the sweep into multi-range requests against the
// real worker handler — and the merged answer must stay byte-identical to
// the single process, with the multi gauge confirming the path ran.
func TestClusterCoalescedSweepMatchesSingleProcess(t *testing.T) {
	coord, coordURL := startServer(t, func(c *Config) {
		c.Cluster = cluster.PoolConfig{ShardBlocks: 1}
	})
	w1, w1URL := startServer(t, nil)
	joinWorker(t, coordURL, w1, w1URL)

	single, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf})
	if err != nil {
		t.Fatal(err)
	}
	const query = "/v1/sweep?kind=hierarchy-free&top=25"
	want := get(t, single.Handler(), query)
	if want.Code != http.StatusOK {
		t.Fatalf("single-process sweep: status %d, body %s", want.Code, want.Body)
	}
	status, got := httpGet(t, coordURL+query)
	if status != http.StatusOK {
		t.Fatalf("cluster sweep: status %d, body %s", status, got)
	}
	if !bytes.Equal(got, want.Body.Bytes()) {
		t.Fatal("coalesced cluster sweep diverged from single process")
	}
	st := coord.Pool().StatsSnapshot()
	if st.MultiBatches == 0 {
		t.Fatalf("sweep sent no coalesced multi-range requests (stats %+v)", st)
	}
	if st.WireShards == 0 || st.JSONShards != 0 {
		t.Fatalf("wire/json shards = %d/%d; every shard should ride the wire", st.WireShards, st.JSONShards)
	}
}

// TestSweepBinaryOptIn: a client that accepts the wire content type gets
// the full per-AS counts vector from GET /v1/sweep as a binary frame, in
// dense graph-index order, matching the engine's counts exactly.
func TestSweepBinaryOptIn(t *testing.T) {
	s := testServer(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/sweep?kind=hierarchy-free", nil)
	req.Header.Set("Accept", cluster.WireContentType)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary sweep: status %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != cluster.WireContentType {
		t.Fatalf("binary sweep Content-Type = %q, want %q", ct, cluster.WireContentType)
	}
	ws := s.w()
	n := ws.ds.Graph.NumASes()
	got := make([]int, n)
	if err := cluster.DecodeCountsInto(got, rec.Body.Bytes()); err != nil {
		t.Fatalf("response is not a valid counts frame: %v", err)
	}
	want, err := ws.metrics.ReachabilityRangeCtx(context.Background(), core.HierarchyFree, 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("binary sweep counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestJoinRejectsWorldMismatch: a worker serving a different world must
// be refused with 409, never silently mixed into the pool.
func TestJoinRejectsWorldMismatch(t *testing.T) {
	s := testServer(t, nil) // fixture world
	body, _ := json.Marshal(cluster.JoinRequest{Addr: "http://127.0.0.1:1", World: "deadbeef", Slots: 1})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, cluster.PathJoin, bytes.NewReader(body)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("mismatched join: status %d, want 409 (body %s)", rec.Code, rec.Body)
	}
	if s.Pool().NumWorkers() != 0 {
		t.Fatal("mismatched worker was registered anyway")
	}

	body, _ = json.Marshal(cluster.JoinRequest{Addr: "http://127.0.0.1:1", World: s.WorldID(), Slots: 1})
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, cluster.PathJoin, bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("matching join: status %d, body %s", rec.Code, rec.Body)
	}
	if s.Pool().NumWorkers() != 1 {
		t.Fatal("matching worker not registered")
	}
}

// TestSnapshotSyncByContentAddress exercises the full worker state-sync
// path: discover the coordinator's world, download the snapshot it
// advertises, verify the hash, mmap it, and confirm the loaded world
// lands on the coordinator's exact content address.
func TestSnapshotSyncByContentAddress(t *testing.T) {
	_, in := generatedWorld(t)
	coord, coordURL := startServer(t, func(c *Config) {
		c.SnapshotBytes = func() ([]byte, error) {
			var buf bytes.Buffer
			world := &snapshot.World{Scale: 0.02138, Internets: map[int]*topogen.Internet{2020: in}}
			if err := snapshot.Write(&buf, world); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := cluster.FetchInfo(ctx, http.DefaultClient, coordURL)
	if err != nil {
		t.Fatal(err)
	}
	if info.World != coord.WorldID() {
		t.Fatalf("info world %q != server world %q", info.World, coord.WorldID())
	}
	if info.SnapshotSHA == "" || info.SnapshotSize == 0 {
		t.Fatalf("coordinator advertises no snapshot: %+v", info)
	}
	dir := t.TempDir()
	path, err := cluster.EnsureSnapshot(ctx, http.DefaultClient, coordURL, info, dir)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	win := rd.Internet(info.Year)
	if win == nil {
		t.Fatalf("fetched snapshot has no %d section", info.Year)
	}
	if h := cluster.DatasetHash(win.Graph, win.Tier1, win.Tier2); h != coord.WorldID() {
		t.Fatalf("fetched world hash %.12s… != coordinator %.12s…; state sync is broken", h, coord.WorldID())
	}
	// Second call must hit the content-addressed cache, not re-download.
	again, err := cluster.EnsureSnapshot(ctx, http.DefaultClient, coordURL, info, dir)
	if err != nil || again != path {
		t.Fatalf("cache miss on second EnsureSnapshot: path %q err %v", again, err)
	}
}

// TestResultCacheKeyedByWorld pins satellite fix #3: two servers over
// different worlds must never share result-cache keys, and entries land
// under the world-prefixed key only.
func TestResultCacheKeyedByWorld(t *testing.T) {
	a := testServer(t, nil)
	ds, _ := generatedWorld(t)
	b, err := New(Config{Dataset: ds})
	if err != nil {
		t.Fatal(err)
	}
	if a.WorldID() == b.WorldID() {
		t.Fatal("distinct datasets produced the same world hash")
	}
	if a.w().key == b.w().key {
		t.Fatal("distinct worlds share a cache-key prefix")
	}
	rec := get(t, a.Handler(), "/v1/reach?as=100&kind=full")
	if rec.Code != http.StatusOK {
		t.Fatalf("reach: status %d", rec.Code)
	}
	if _, ok := a.cache.Get(a.w().key + "reach|100|0"); !ok {
		t.Fatal("result not cached under the world-prefixed key")
	}
	if _, ok := a.cache.Get("reach|100|0"); ok {
		t.Fatal("result cached under the bare (world-less) key — cross-world collisions possible")
	}
}

// TestSaturationReturns429 drives the coordinator past MaxQueries and
// expects load shedding with Retry-After, not queueing.
func TestSaturationReturns429(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		select {
		case blocked <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-r.Context().Done():
		}
		http.Error(w, "too late", http.StatusInternalServerError)
	}))
	defer slow.Close()
	defer close(release)

	// MaxConcurrent must exceed MaxQueries so the pool's admission gate —
	// not the local compute semaphore — is what the second query hits.
	coord, err := New(Config{Dataset: mustDataset(t), Names: genIn.NameOf, MaxConcurrent: 4,
		Cluster: cluster.PoolConfig{MaxQueries: 1, ShardBlocks: 64}})
	if err != nil {
		t.Fatal(err)
	}
	coord.Pool().Register(slow.URL, 1)

	go func() {
		// First sweep occupies the only admission slot, stuck on the
		// blocked worker until release.
		rec := httptest.NewRecorder()
		coord.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sweep?kind=full&timeout=30s", nil))
	}()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("first sweep never reached the worker")
	}
	rec := get(t, coord.Handler(), "/v1/sweep?kind=provider-free")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second sweep: status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code != "saturated" {
		t.Fatalf("shed body = %s (err %v), want code \"saturated\"", rec.Body, err)
	}
	if st := coord.Pool().StatsSnapshot(); st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Shed)
	}
}
