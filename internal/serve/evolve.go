package serve

// POST /v1/evolve: walk the served world one step along the timeline by
// applying a delta snapshot (see internal/snapshot/delta.go). The request
// body is a delta file verbatim. Evolution is fail-closed end to end —
// the delta's recorded base hash must match the served world, applying
// must succeed, and the produced world's hash must match the delta's
// recorded result hash — and atomic: queries either see the old world or
// the new one, never a mixture, because every handler pins the world
// pointer once and every cache key carries the world's hash prefix.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
)

// maxDeltaBody bounds the evolve request body; growth deltas are a few MB
// even at scale 1.0, so 64 MiB is generous without inviting abuse.
const maxDeltaBody = 64 << 20

// errWorldEvolved reports that the world rotated while a cluster fan-out
// was in flight, so the merged result may mix topologies and is discarded
// instead of cached. Worlds are monotonic — the pool never returns to a
// previous content address — so a post-fan-out world check that still
// matches proves every merged shard (and any local fallback) computed on
// the pinned world.
var errWorldEvolved = &apiError{Status: http.StatusConflict, Code: "world_evolved",
	Message: "the world evolved while the query was in flight; retry"}

// verifyWorld is the post-fan-out check: err passes through untouched, a
// clean result is kept only if the pool still serves the world the request
// pinned.
func (s *Server) verifyWorld(ws *worldState, err error) error {
	if err == nil && s.pool.World() != ws.id {
		return errWorldEvolved
	}
	return err
}

type evolveResponse struct {
	FromWorld string `json:"from_world"`
	ToWorld   string `json:"to_world"`
	FromYear  int    `json:"from_year"`
	ToYear    int    `json:"to_year"`

	ASes         int `json:"ases"`
	Links        int `json:"links"`
	NewASes      int `json:"new_ases"`
	AddedLinks   int `json:"added_links"`
	RemovedLinks int `json:"removed_links"`
}

func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxDeltaBody))
	if err != nil {
		s.writeError(w, badRequestf("reading delta body: %v", err))
		return
	}
	d, err := snapshot.DecodeDelta(raw)
	if err != nil {
		s.writeError(w, badRequestf("%v", err))
		return
	}
	// One evolution at a time: the load → apply → swap sequence below must
	// not interleave with another, or the second would apply to a world
	// that is no longer served.
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	ws := s.w()
	if ws.in == nil {
		s.writeError(w, &apiError{Status: http.StatusConflict, Code: "not_evolvable",
			Message: "this world was loaded from a bare relationship file and carries no generation lineage; serve a snapshot or generated world to evolve"})
		return
	}
	if d.BaseHash != ws.id {
		s.writeError(w, &apiError{Status: http.StatusConflict, Code: "world_mismatch",
			Message: fmt.Sprintf("delta applies to world %.12s…, this server serves %.12s…", d.BaseHash, ws.id)})
		return
	}
	next, err := topogen.ApplyDelta(ws.in, d.Growth)
	if err != nil {
		s.writeError(w, &apiError{Status: http.StatusUnprocessableEntity, Code: "apply_failed",
			Message: fmt.Sprintf("applying delta %d→%d: %v", d.FromYear, d.ToYear, err)})
		return
	}
	nextID := cluster.DatasetHash(next.Graph, next.Tier1, next.Tier2)
	if nextID != d.ResultHash {
		// Fail closed: the delta promised a world it did not produce. The
		// served world is untouched.
		s.writeError(w, &apiError{Status: http.StatusUnprocessableEntity, Code: "result_mismatch",
			Message: fmt.Sprintf("applied delta produced world %.12s…, but the delta promised %.12s…", nextID, d.ResultHash)})
		return
	}
	ds := core.Dataset{Graph: next.Graph, Tier1: next.Tier1, Tier2: next.Tier2}
	// The evolved world exists only in memory, so it advertises freshly
	// encoded snapshot bytes: workers re-join by syncing those, exactly as
	// they would bootstrap from a generated world.
	snapGen := func() ([]byte, error) {
		var buf bytes.Buffer
		err := snapshot.Write(&buf, &snapshot.World{
			Scale:     d.Scale,
			Internets: map[int]*topogen.Internet{d.ToYear: next},
		})
		return buf.Bytes(), err
	}
	nextWS := newWorldState(ds, next.NameOf, next, d.ToYear, "", snapGen)
	// Rotate the pool first, then publish: a fan-out admitted on the old
	// world either finds its workers already dropped (and falls back
	// locally, where verifyWorld discards the result) or completes on
	// workers that still hold the old world — consistent either way.
	s.pool.SetWorld(nextWS.id)
	s.world.Store(nextWS)
	s.stats.evolves.Add(1)
	writeJSON(w, http.StatusOK, evolveResponse{
		FromWorld: ws.id, ToWorld: nextWS.id,
		FromYear: d.FromYear, ToYear: d.ToYear,
		ASes: next.Graph.NumASes(), Links: next.Graph.NumLinks(),
		NewASes: len(d.Growth.NewASes), AddedLinks: len(d.Growth.AddedLinks),
		RemovedLinks: len(d.Growth.RemovedLinks),
	})
}
