package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/snapshot"
	"flatnet/internal/topogen"
)

// The evolve tests share one adjacent-year pair: the 2016 timeline world,
// the 2016→2017 growth delta (encoded with real world hashes), and the
// 2017 world it produces. Built once — GenerateYear dominates wall-clock.
const evolveTestScale = 0.012

var (
	evOnce  sync.Once
	evBase  *topogen.Internet
	evNext  *topogen.Internet
	evDelta []byte
)

func evolveFixture(t *testing.T) (*topogen.Internet, *topogen.Internet, []byte) {
	t.Helper()
	evOnce.Do(func() {
		base, err := topogen.GenerateYear(2016, evolveTestScale)
		if err != nil {
			panic(err)
		}
		g, err := topogen.EvolveStep(base, 2017, evolveTestScale)
		if err != nil {
			panic(err)
		}
		next, err := topogen.ApplyDelta(base, g)
		if err != nil {
			panic(err)
		}
		d := &snapshot.Delta{
			FromYear: g.FromYear, ToYear: g.ToYear, Scale: g.Scale,
			BaseHash:   cluster.DatasetHash(base.Graph, base.Tier1, base.Tier2),
			ResultHash: cluster.DatasetHash(next.Graph, next.Tier1, next.Tier2),
			Growth:     g,
		}
		var buf bytes.Buffer
		if err := snapshot.EncodeDelta(&buf, d); err != nil {
			panic(err)
		}
		evBase, evNext, evDelta = base, next, buf.Bytes()
	})
	return evBase, evNext, evDelta
}

func evolveServer(t *testing.T) *Server {
	t.Helper()
	base, _, _ := evolveFixture(t)
	s, err := New(Config{World: base, Year: 2016})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postEvolve(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/evolve", bytes.NewReader(body)))
	return rec
}

func TestEvolveSwapsWorld(t *testing.T) {
	base, next, delta := evolveFixture(t)
	s := evolveServer(t)
	h := s.Handler()
	baseID := cluster.DatasetHash(base.Graph, base.Tier1, base.Tier2)
	nextID := cluster.DatasetHash(next.Graph, next.Tier1, next.Tier2)

	rec := postEvolve(t, h, delta)
	if rec.Code != http.StatusOK {
		t.Fatalf("evolve: status %d, body %s", rec.Code, rec.Body)
	}
	var resp struct {
		FromWorld string `json:"from_world"`
		ToWorld   string `json:"to_world"`
		FromYear  int    `json:"from_year"`
		ToYear    int    `json:"to_year"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FromWorld != baseID || resp.ToWorld != nextID {
		t.Fatalf("evolve lineage %.12s→%.12s, want %.12s→%.12s", resp.FromWorld, resp.ToWorld, baseID, nextID)
	}
	if resp.FromYear != 2016 || resp.ToYear != 2017 {
		t.Fatalf("evolve years %d→%d, want 2016→2017", resp.FromYear, resp.ToYear)
	}
	if s.WorldID() != nextID {
		t.Fatalf("served world %.12s, want evolved %.12s", s.WorldID(), nextID)
	}
	if s.pool.World() != nextID {
		t.Fatal("cluster pool did not rotate onto the evolved world")
	}

	// Stats advertise the evolved world and year.
	srec := get(t, h, "/v1/stats")
	var stats statsResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.World != nextID || stats.Year != 2017 || stats.Evolves != 1 {
		t.Fatalf("stats world=%.12s year=%d evolves=%d, want evolved world, 2017, 1", stats.World, stats.Year, stats.Evolves)
	}
	if stats.ASes != next.Graph.NumASes() || stats.Links != next.Graph.NumLinks() {
		t.Fatalf("stats %d ASes %d links, want %d/%d", stats.ASes, stats.Links, next.Graph.NumASes(), next.Graph.NumLinks())
	}

	// The same delta no longer applies: its base is not the served world.
	rec = postEvolve(t, h, delta)
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "world_mismatch") {
		t.Fatalf("re-evolve: status %d, body %s, want 409 world_mismatch", rec.Code, rec.Body)
	}

	// A worker that synced the old world can no longer join.
	jb, _ := json.Marshal(cluster.JoinRequest{Addr: "http://127.0.0.1:1", World: baseID, Slots: 1})
	jrec := httptest.NewRecorder()
	h.ServeHTTP(jrec, httptest.NewRequest(http.MethodPost, cluster.PathJoin, bytes.NewReader(jb)))
	if jrec.Code != http.StatusConflict {
		t.Fatalf("stale-world join: status %d, want 409", jrec.Code)
	}
}

func TestEvolveRejectsGarbage(t *testing.T) {
	s := evolveServer(t)
	rec := postEvolve(t, s.Handler(), []byte("not a delta file"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", rec.Code)
	}
}

func TestEvolveNotEvolvable(t *testing.T) {
	// A server over a bare dataset (no generation lineage) refuses to
	// evolve even when the delta is well-formed.
	_, _, delta := evolveFixture(t)
	s := testServer(t, nil)
	rec := postEvolve(t, s.Handler(), delta)
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "not_evolvable") {
		t.Fatalf("bare-dataset evolve: status %d, body %s, want 409 not_evolvable", rec.Code, rec.Body)
	}
}

func TestEvolveResultMismatchFailsClosed(t *testing.T) {
	base, _, _ := evolveFixture(t)
	g, err := topogen.EvolveStep(base, 2017, evolveTestScale)
	if err != nil {
		t.Fatal(err)
	}
	d := &snapshot.Delta{
		FromYear: g.FromYear, ToYear: g.ToYear, Scale: g.Scale,
		BaseHash:   cluster.DatasetHash(base.Graph, base.Tier1, base.Tier2),
		ResultHash: strings.Repeat("00", 32), // a world the delta cannot produce
		Growth:     g,
	}
	var buf bytes.Buffer
	if err := snapshot.EncodeDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	s := evolveServer(t)
	before := s.WorldID()
	rec := postEvolve(t, s.Handler(), buf.Bytes())
	if rec.Code != http.StatusUnprocessableEntity || !strings.Contains(rec.Body.String(), "result_mismatch") {
		t.Fatalf("tampered result hash: status %d, body %s, want 422 result_mismatch", rec.Code, rec.Body)
	}
	if s.WorldID() != before {
		t.Fatal("failed evolve mutated the served world")
	}
}

// TestEvolveNoStaleCacheHits hammers /v1/reach while the world evolves
// underneath it. Every response must be internally consistent — exactly
// the base world's answer or the evolved world's answer, never a blend or
// a stale replay — and once the evolve has returned, fresh queries must
// answer from the evolved world. Run under -race this also exercises the
// worldState swap for data races.
func TestEvolveNoStaleCacheHits(t *testing.T) {
	base, next, delta := evolveFixture(t)

	// Find an AS present in both worlds whose hierarchy-free count
	// differs, so a stale answer is distinguishable from a fresh one.
	mBase := core.New(core.Dataset{Graph: base.Graph, Tier1: base.Tier1, Tier2: base.Tier2})
	mNext := core.New(core.Dataset{Graph: next.Graph, Tier1: next.Tier1, Tier2: next.Tier2})
	var probe astopo.ASN
	var vBase, vNext int
	found := false
	for i := 0; i < base.Graph.NumASes() && !found; i++ {
		a := base.Graph.ASNAt(i)
		if _, ok := next.Graph.Index(a); !ok {
			continue
		}
		b, err := mBase.Reachability(a, core.HierarchyFree)
		if err != nil {
			t.Fatal(err)
		}
		n, err := mNext.Reachability(a, core.HierarchyFree)
		if err != nil {
			t.Fatal(err)
		}
		if b != n {
			probe, vBase, vNext, found = a, b, n, true
		}
	}
	if !found {
		t.Fatal("no AS distinguishes the two worlds")
	}

	s := evolveServer(t)
	h := s.Handler()
	url := fmt.Sprintf("/v1/reach?as=%d", probe)

	// Seed the base world's cache entry so the stale-replay path is armed.
	if rec := get(t, h, url); rec.Code != http.StatusOK {
		t.Fatalf("seed query: status %d", rec.Code)
	}

	const readers = 8
	stop := make(chan struct{})
	errs := make(chan string, 256)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				if rec.Code != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("reach status %d: %s", rec.Code, rec.Body.String()):
					default:
					}
					return
				}
				var resp reachResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					select {
					case errs <- err.Error():
					default:
					}
					return
				}
				if resp.Reachable != vBase && resp.Reachable != vNext {
					select {
					case errs <- fmt.Sprintf("reach %d is neither base %d nor evolved %d", resp.Reachable, vBase, vNext):
					default:
					}
					return
				}
			}
		}()
	}

	rec := postEvolve(t, h, delta)
	if rec.Code != http.StatusOK {
		t.Fatalf("evolve under load: status %d, body %s", rec.Code, rec.Body)
	}
	// The evolve has returned: from here on, every fresh query must see
	// the evolved world (the old cache entry is unreachable behind the
	// rotated key prefix).
	for i := 0; i < 4; i++ {
		frec := get(t, h, url)
		if frec.Code != http.StatusOK {
			t.Fatalf("post-evolve query: status %d", frec.Code)
		}
		var resp reachResponse
		if err := json.Unmarshal(frec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Reachable != vNext {
			t.Fatalf("post-evolve reach %d, want evolved world's %d (stale cache hit)", resp.Reachable, vNext)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
