package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
)

// apiError is a structured, client-visible error: every non-200 response
// body is {"error":{"code":..., "message":...}}.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func badRequestf(format string, args ...any) error {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) error {
	return &apiError{Status: http.StatusNotFound, Code: "not_found", Message: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is nginx's convention for a client that went
// away before the response; Go has no named constant for it.
const statusClientClosedRequest = 499

// writeError maps an error to its HTTP shape: structured apiErrors keep
// their status, deadline expiry becomes 504, client disconnect 499, and
// anything else is a 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
	case errors.Is(err, cluster.ErrSaturated):
		// Load shedding: the coordinator refuses fan-outs beyond its
		// admission bound instead of queueing them into timeout.
		w.Header().Set("Retry-After", "1")
		ae = &apiError{Status: http.StatusTooManyRequests, Code: "saturated",
			Message: "cluster worker pool is saturated; retry shortly"}
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.deadlines.Add(1)
		ae = &apiError{Status: http.StatusGatewayTimeout, Code: "deadline_exceeded",
			Message: "query exceeded its deadline and was cancelled"}
	case errors.Is(err, context.Canceled):
		ae = &apiError{Status: statusClientClosedRequest, Code: "canceled",
			Message: "client closed the request"}
	default:
		ae = &apiError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	writeJSON(w, ae.Status, map[string]*apiError{"error": ae})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failure"}}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, status, b)
}

const contentTypeJSON = "application/json"

func writeBody(w http.ResponseWriter, status int, body []byte) {
	writeBodyAs(w, status, contentTypeJSON, body)
}

// writeBodyAs writes a response body under an explicit content type. JSON
// bodies get the customary trailing newline; binary wire frames must not —
// the frame's fail-closed decoder rejects trailing bytes.
func writeBodyAs(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	_, _ = w.Write(body)
	if contentType == contentTypeJSON {
		_, _ = w.Write([]byte{'\n'})
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/reach", s.handleReach)
	mux.HandleFunc("GET /v1/reliance", s.handleReliance)
	mux.HandleFunc("GET /v1/leak", s.handleLeak)
	mux.HandleFunc("GET /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/evolve", s.handleEvolve)
	mux.HandleFunc("GET "+cluster.PathInfo, s.handleClusterInfo)
	mux.HandleFunc("GET "+cluster.PathSnapshot, s.handleClusterSnapshot)
	mux.HandleFunc("POST "+cluster.PathJoin, s.handleClusterJoin)
	mux.HandleFunc("POST "+cluster.PathSweep, s.handleClusterSweep)
	mux.HandleFunc("POST "+cluster.PathLeak, s.handleClusterLeak)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// ---- parameter parsing ----

// parseAS resolves the required `as` query parameter against the pinned
// world's graph.
func parseAS(ws *worldState, r *http.Request) (astopo.ASN, error) {
	raw := r.URL.Query().Get("as")
	if raw == "" {
		return 0, badRequestf("missing required parameter 'as'")
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, badRequestf("bad ASN %q", raw)
	}
	a := astopo.ASN(v)
	if _, ok := ws.ds.Graph.Index(a); !ok {
		return 0, notFoundf("AS%d not in the topology", a)
	}
	return a, nil
}

func parseKind(r *http.Request) (core.Kind, error) {
	raw := r.URL.Query().Get("kind")
	if raw == "" {
		return core.HierarchyFree, nil
	}
	k, err := core.KindFromString(raw)
	if err != nil {
		return 0, badRequestf("%v", err)
	}
	return k, nil
}

var scenarioNames = map[string]bgpsim.LeakScenario{
	"announce-all": bgpsim.AnnounceAll,
	"lock-t1":      bgpsim.AnnounceAllLockT1,
	"lock-t1t2":    bgpsim.AnnounceAllLockT1T2,
	"lock-all":     bgpsim.AnnounceAllLockAll,
	"hierarchy":    bgpsim.AnnounceHierarchy,
}

func parseScenario(r *http.Request) (string, bgpsim.LeakScenario, error) {
	raw := r.URL.Query().Get("scenario")
	if raw == "" {
		raw = "announce-all"
	}
	scen, ok := scenarioNames[raw]
	if !ok {
		names := make([]string, 0, len(scenarioNames))
		for n := range scenarioNames {
			names = append(names, n)
		}
		sort.Strings(names)
		return "", 0, badRequestf("unknown scenario %q (want one of %s)", raw, strings.Join(names, ", "))
	}
	return raw, scen, nil
}

func parseIntParam(r *http.Request, name string, def, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, badRequestf("parameter %q must be a positive integer, got %q", name, raw)
	}
	if v > max {
		return 0, badRequestf("parameter %q is %d, above the limit of %d", name, v, max)
	}
	return v, nil
}

// ---- endpoints ----

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsResponse struct {
	ASes       int     `json:"ases"`
	Links      int     `json:"links"`
	Tier1      int     `json:"tier1"`
	Tier2      int     `json:"tier2"`
	UptimeSecs float64 `json:"uptime_secs"`

	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	Coalesced    int64 `json:"coalesced"`
	Computations int64 `json:"computations"`
	Deadlines    int64 `json:"deadlines_exceeded"`
	Inflight     int64 `json:"inflight"`
	Shed         int64 `json:"shed"`
	Evolves      int64 `json:"evolves"`
	// WireResponses counts responses this daemon served as binary wire
	// frames; the coordinator-side byte savings live under Cluster.
	WireResponses int64 `json:"wire_responses"`

	// Class-collapse gauges: Classes is the number of origin equivalence
	// classes of the served world (0 when FLATNET_NO_CLASS_COLLAPSE
	// disables collapse), CollapseRatio is ASes per class (the sweep-work
	// reduction factor; 1 when disabled), and SweepWords is the configured
	// multi-word block width of the bit-parallel engines.
	Classes       int     `json:"classes"`
	CollapseRatio float64 `json:"collapse_ratio"`
	SweepWords    int     `json:"sweep_words"`

	// World is the served dataset's content address and Year the timeline
	// year it represents; Cluster appears once workers have registered
	// (per-worker in-flight gauges included).
	World   string         `json:"world"`
	Year    int            `json:"year"`
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ws := s.w()
	g := ws.ds.Graph
	cs := s.pool.StatsSnapshot()
	resp := statsResponse{
		ASes:          g.NumASes(),
		Links:         g.NumLinks(),
		Tier1:         len(ws.ds.Tier1),
		Tier2:         len(ws.ds.Tier2),
		UptimeSecs:    time.Since(s.started).Seconds(),
		Requests:      s.stats.requests.Load(),
		CacheHits:     s.stats.cacheHits.Load(),
		CacheMisses:   s.stats.cacheMisses.Load(),
		CacheEntries:  s.cache.Len(),
		Coalesced:     s.stats.coalesced.Load(),
		Computations:  s.stats.computations.Load(),
		Deadlines:     s.stats.deadlines.Load(),
		Inflight:      s.stats.inflight.Load(),
		Shed:          cs.Shed,
		Evolves:       s.stats.evolves.Load(),
		WireResponses: s.stats.wireResponses.Load(),
		World:         ws.id,
		Year:          ws.year,
	}
	resp.Classes, resp.CollapseRatio, resp.SweepWords = ws.metrics.ClassStats()
	if len(cs.Workers) > 0 {
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

type reachResponse struct {
	AS        astopo.ASN `json:"as"`
	Name      string     `json:"name,omitempty"`
	Kind      string     `json:"kind"`
	Reachable int        `json:"reachable"`
	Total     int        `json:"total"`
	Pct       float64    `json:"pct"`
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	origin, err := parseAS(ws, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	kind, err := parseKind(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := fmt.Sprintf("reach|%d|%d", origin, kind)
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		n, err := s.reachCount(ctx, ws, origin, kind)
		if err != nil {
			return nil, err
		}
		total := ws.ds.Graph.NumASes() - 1
		return reachResponse{
			AS: origin, Name: ws.nameOf(origin), Kind: kind.String(),
			Reachable: n, Total: total, Pct: 100 * float64(n) / float64(total),
		}, nil
	})
}

// reachCount computes reach(origin, kind) with class-level result reuse:
// every member of one origin equivalence class has the identical count, so
// the count is cached once per (world, class, kind) — a cold query for an
// AS whose classmate was already asked costs a cache lookup instead of a
// propagation. Disabled (plain per-origin compute) when the collapse
// escape hatch is set.
func (s *Server) reachCount(ctx context.Context, ws *worldState, origin astopo.ASN, kind core.Kind) (int, error) {
	var ckey string
	if ci := ws.metrics.SweepClasses(); ci != nil {
		if oi, ok := ws.ds.Graph.Index(origin); ok {
			ckey = fmt.Sprintf("%sccount|%d|%d", ws.key, ci.ClassOf(oi), kind)
			if v, ok := s.cache.Get(ckey); ok {
				s.stats.cacheHits.Add(1)
				return v.(int), nil
			}
		}
	}
	n, err := ws.metrics.ReachabilityCtx(ctx, origin, kind)
	if err == nil && ckey != "" {
		s.cache.Put(ckey, n)
	}
	return n, err
}

type relianceEntry struct {
	AS    astopo.ASN `json:"as"`
	Name  string     `json:"name,omitempty"`
	Value float64    `json:"value"`
}

type relianceResponse struct {
	AS   astopo.ASN      `json:"as"`
	Name string          `json:"name,omitempty"`
	Kind string          `json:"kind"`
	Top  []relianceEntry `json:"top"`
}

func (s *Server) handleReliance(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	origin, err := parseAS(ws, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	kind, err := parseKind(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	top, err := parseIntParam(r, "top", 10, s.cfg.MaxTop)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := fmt.Sprintf("reliance|%d|%d|%d", origin, kind, top)
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		entries, err := ws.metrics.TopRelianceCtx(ctx, origin, kind, top)
		if err != nil {
			return nil, err
		}
		out := relianceResponse{AS: origin, Name: ws.nameOf(origin), Kind: kind.String(),
			Top: make([]relianceEntry, len(entries))}
		for i, e := range entries {
			out.Top[i] = relianceEntry{AS: e.AS, Name: ws.nameOf(e.AS), Value: e.Value}
		}
		return out, nil
	})
}

type leakResponse struct {
	AS          astopo.ASN `json:"as"`
	Name        string     `json:"name,omitempty"`
	Scenario    string     `json:"scenario"`
	Hijack      bool       `json:"hijack"`
	Trials      int        `json:"trials"`
	Seed        int64      `json:"seed"`
	MeanDetour  float64    `json:"mean_detour"`
	P95Detour   float64    `json:"p95_detour"`
	WorstDetour float64    `json:"worst_detour"`
}

func (s *Server) handleLeak(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	origin, err := parseAS(ws, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	scenName, scen, err := parseScenario(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	trials, err := parseIntParam(r, "trials", 200, s.cfg.MaxTrials)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hijack := r.URL.Query().Get("hijack") == "true"
	seed := int64(origin)
	if raw := r.URL.Query().Get("seed"); raw != "" {
		seed, err = strconv.ParseInt(raw, 10, 64)
		if err != nil {
			s.writeError(w, badRequestf("bad seed %q", raw))
			return
		}
	}
	key := fmt.Sprintf("leak|%d|%s|%v|%d|%d", origin, scenName, hijack, trials, seed)
	q := cluster.LeakQuery{Origin: uint32(origin), Scenario: scenName, Hijack: hijack, Trials: trials, Seed: seed}
	_ = scen // validated by parseScenario; leakFracsRange re-resolves by name
	s.serveCached(w, r, ws, key, func(ctx context.Context) (any, error) {
		g := ws.ds.Graph
		leakers := bgpsim.SampleLeakers(g, origin, trials, seed)
		// The fractions come back in deterministic sample order either
		// way — partitioned across the cluster or replayed locally through
		// pooled bit-parallel BatchLeak engines — so the aggregates below
		// sum the same floats in the same order and the response body is
		// identical whichever path ran.
		var fracs []float64
		var err error
		if s.pool.Ready() && s.pool.World() == ws.id && len(leakers) >= clusterWide {
			fracs, err = s.pool.LeakFracs(ctx, q, len(leakers))
			err = s.verifyWorld(ws, err)
		} else {
			fracs, err = s.leakFracsRange(ctx, ws, q, 0, len(leakers), 0)
		}
		if err != nil {
			return nil, err
		}
		var mean, worst float64
		for _, f := range fracs {
			mean += f
			if f > worst {
				worst = f
			}
		}
		if len(fracs) > 0 {
			mean /= float64(len(fracs))
		}
		n := len(fracs)
		sort.Float64s(fracs)
		var p95 float64
		if len(fracs) > 0 {
			p95 = fracs[int(0.95*float64(len(fracs)-1))]
		}
		return leakResponse{
			AS: origin, Name: ws.nameOf(origin), Scenario: scenName, Hijack: hijack,
			Trials: n, Seed: seed, MeanDetour: mean, P95Detour: p95, WorstDetour: worst,
		}, nil
	})
}

// leakSweep returns the cached leak-free pre-pass prototype for one
// (world, origin, scenario, hijack) configuration, building it on first
// use. The key is world-prefixed like the result cache: a sweep holds O(V)
// state tied to one topology and must never outlive an evolve. A racing
// build for the same key is benign — both sweeps are equivalent and the
// later Put wins — so no lock is held across the O(V+E) pre-pass.
func (s *Server) leakSweep(ws *worldState, origin astopo.ASN, scenName string, scen bgpsim.LeakScenario, hijack bool) (*bgpsim.LeakSweep, error) {
	key := fmt.Sprintf("%s%d|%s|%v", ws.key, origin, scenName, hijack)
	if v, ok := s.sweeps.Get(key); ok {
		return v.(*bgpsim.LeakSweep), nil
	}
	ds := ws.ds
	cfg := bgpsim.ScenarioConfig(ds.Graph, origin, ds.Tier1, ds.Tier2, scen)
	cfg.Hijack = hijack
	sw, err := bgpsim.NewLeakSweep(ds.Graph, cfg)
	if err != nil {
		return nil, err
	}
	// Dedup replayed leakers by origin equivalence class (weighted trials
	// apply a per-classmate correction; clones inherit the index). Nil
	// under the collapse escape hatch.
	sw.SetClasses(ws.metrics.SweepClasses())
	s.sweeps.Put(key, sw)
	return sw, nil
}

type batchRequest struct {
	AS   []astopo.ASN `json:"as"`
	Kind string       `json:"kind"`
}

type batchResult struct {
	AS        astopo.ASN `json:"as"`
	Reachable int        `json:"reachable"`
}

type batchResponse struct {
	Kind    string        `json:"kind"`
	Total   int           `json:"total"`
	Engine  string        `json:"engine"`
	Results []batchResult `json:"results"`
}

// handleBatch answers multi-origin reachability. Requests of at least
// bgpsim.BatchLanes origins ride the bit-parallel batch engine; narrower
// ones take the scalar path (see core.ReachabilityMany).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ws := s.w()
	var origins []astopo.ASN
	var kind core.Kind
	if r.Method == http.MethodPost {
		var req batchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, badRequestf("bad JSON body: %v", err))
			return
		}
		origins = req.AS
		if req.Kind == "" {
			kind = core.HierarchyFree
		} else {
			k, err := core.KindFromString(req.Kind)
			if err != nil {
				s.writeError(w, badRequestf("%v", err))
				return
			}
			kind = k
		}
	} else {
		raw := r.URL.Query().Get("as")
		if raw == "" {
			s.writeError(w, badRequestf("missing required parameter 'as' (comma-separated ASN list)"))
			return
		}
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
			if err != nil {
				s.writeError(w, badRequestf("bad ASN %q in 'as' list", part))
				return
			}
			origins = append(origins, astopo.ASN(v))
		}
		k, err := parseKind(r)
		if err != nil {
			s.writeError(w, err)
			return
		}
		kind = k
	}
	if len(origins) == 0 {
		s.writeError(w, badRequestf("empty origin list"))
		return
	}
	if len(origins) > s.cfg.MaxBatch {
		s.writeError(w, badRequestf("%d origins exceed the per-request limit of %d", len(origins), s.cfg.MaxBatch))
		return
	}
	g := ws.ds.Graph
	for _, o := range origins {
		if _, ok := g.Index(o); !ok {
			s.writeError(w, notFoundf("AS%d not in the topology", o))
			return
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch|%d", kind)
	for _, o := range origins {
		fmt.Fprintf(&sb, "|%d", o)
	}
	// The engine label describes the compute width, not where it ran: a
	// cluster-partitioned batch still rides the bit-parallel engine on
	// each worker, so the response body stays identical either way.
	engine := "scalar"
	if len(origins) >= bgpsim.BatchLanes {
		engine = "batch"
	}
	s.serveCached(w, r, ws, sb.String(), func(ctx context.Context) (any, error) {
		var counts []int
		var err error
		if s.pool.Ready() && s.pool.World() == ws.id && len(origins) >= clusterWide {
			raw := make([]uint32, len(origins))
			for i, o := range origins {
				raw[i] = uint32(o)
			}
			counts, err = s.pool.BatchCounts(ctx, raw, kind.String())
			err = s.verifyWorld(ws, err)
		} else {
			counts, err = ws.metrics.ReachabilityMany(ctx, origins, kind)
		}
		if err != nil {
			return nil, err
		}
		out := batchResponse{Kind: kind.String(), Total: g.NumASes() - 1, Engine: engine,
			Results: make([]batchResult, len(origins))}
		for i, o := range origins {
			out.Results[i] = batchResult{AS: o, Reachable: counts[i]}
		}
		return out, nil
	})
}
