package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/core"
)

// decodeErr pulls the structured error out of a non-200 response body.
func decodeErr(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("non-JSON error body %q: %v", rec.Body, err)
	}
	return body.Error.Code
}

func TestHealthz(t *testing.T) {
	rec := get(t, testServer(t, nil).Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("body = %q", rec.Body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	get(t, h, "/v1/reach?as=100") // one computation to count

	rec := get(t, h, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ASes != 8 || st.Tier1 != 2 || st.Tier2 != 1 {
		t.Errorf("topology stats = %d ASes, %d tier1, %d tier2; want 8/2/1", st.ASes, st.Tier1, st.Tier2)
	}
	// One reach computation fills two entries: the response body plus the
	// per-(class, kind) count that classmate queries reuse. With collapse
	// disabled only the body entry exists and the gauges read zero classes.
	wantEntries, wantClasses := 2, true
	if os.Getenv("FLATNET_NO_CLASS_COLLAPSE") != "" {
		wantEntries, wantClasses = 1, false
	}
	if st.Requests < 1 || st.Computations != 1 || st.CacheEntries != wantEntries {
		t.Errorf("counters = %+v", st)
	}
	if (st.Classes > 0) != wantClasses || st.CollapseRatio < 1 || st.SweepWords < 1 {
		t.Errorf("class gauges = %d classes, ratio %.2f, %d words", st.Classes, st.CollapseRatio, st.SweepWords)
	}
}

func TestReachValidation(t *testing.T) {
	h := testServer(t, nil).Handler()
	cases := []struct {
		url    string
		status int
		code   string
	}{
		{"/v1/reach", http.StatusBadRequest, "bad_request"},         // missing as
		{"/v1/reach?as=nope", http.StatusBadRequest, "bad_request"}, // non-numeric
		{"/v1/reach?as=999", http.StatusNotFound, "not_found"},      // not in graph
		{"/v1/reach?as=100&kind=bogus", http.StatusBadRequest, "bad_request"},
		{"/v1/reach?as=100&timeout=later", http.StatusBadRequest, "bad_request"},
		{"/v1/reach?as=100&timeout=-1s", http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		rec := get(t, h, c.url)
		if rec.Code != c.status {
			t.Errorf("%s: status = %d, want %d (body %s)", c.url, rec.Code, c.status, rec.Body)
			continue
		}
		if code := decodeErr(t, rec); code != c.code {
			t.Errorf("%s: error code = %q, want %q", c.url, code, c.code)
		}
	}
}

func TestReachValues(t *testing.T) {
	h := testServer(t, nil).Handler()
	for _, c := range []struct {
		kind string
		want int
	}{
		{"full", 7},           // everyone
		{"hierarchy-free", 2}, // only directly peered user ISPs 4 and 5
	} {
		rec := get(t, h, "/v1/reach?as=100&kind="+c.kind)
		if rec.Code != http.StatusOK {
			t.Fatalf("kind %s: status %d, body %s", c.kind, rec.Code, rec.Body)
		}
		var resp reachResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Reachable != c.want || resp.Total != 7 {
			t.Errorf("kind %s: reachable = %d/%d, want %d/7", c.kind, resp.Reachable, resp.Total, c.want)
		}
	}
}

func TestRelianceEndpoint(t *testing.T) {
	h := testServer(t, nil).Handler()
	rec := get(t, h, "/v1/reliance?as=100&kind=full&top=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp relianceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Top) == 0 || len(resp.Top) > 3 {
		t.Fatalf("top = %v, want 1..3 entries", resp.Top)
	}
	// Removing peer AS 2 strands both 2 and its customer 6; every other
	// failure strands at most one AS, so 2 leads the ranking.
	if resp.Top[0].AS != 2 {
		t.Errorf("top reliance = AS%d, want AS2", resp.Top[0].AS)
	}

	if rec := get(t, h, "/v1/reliance?as=100&top=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("top=0: status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/reliance?as=100&top=100000"); rec.Code != http.StatusBadRequest {
		t.Errorf("top above limit: status = %d, want 400", rec.Code)
	}
}

func TestLeakEndpoint(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	rec := get(t, h, "/v1/leak?as=100&scenario=announce-all&trials=4&seed=7")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp leakResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trials <= 0 || resp.Trials > 4 {
		t.Errorf("trials = %d, want 1..4", resp.Trials)
	}
	if resp.Seed != 7 || resp.Scenario != "announce-all" {
		t.Errorf("echoed params = %+v", resp)
	}
	if resp.WorstDetour < resp.P95Detour || resp.P95Detour < 0 {
		t.Errorf("detour stats out of order: %+v", resp)
	}
	if s.sweeps.Len() != 1 {
		t.Errorf("sweep prototype cache has %d entries, want 1", s.sweeps.Len())
	}

	if rec := get(t, h, "/v1/leak?as=100&scenario=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown scenario: status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/leak?as=100&seed=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad seed: status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/leak?as=100&trials=999999"); rec.Code != http.StatusBadRequest {
		t.Errorf("trials above limit: status = %d, want 400", rec.Code)
	}
}

func TestBatchGet(t *testing.T) {
	h := testServer(t, nil).Handler()
	rec := get(t, h, "/v1/batch?as=100,1,2&kind=full")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Engine != "scalar" {
		t.Errorf("engine = %q, want scalar for 3 origins", resp.Engine)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %v", resp.Results)
	}
	// Each count must match the single-origin endpoint's answer.
	for _, br := range resp.Results {
		one := get(t, h, fmt.Sprintf("/v1/reach?as=%d&kind=full", br.AS))
		var single reachResponse
		if err := json.Unmarshal(one.Body.Bytes(), &single); err != nil {
			t.Fatal(err)
		}
		if br.Reachable != single.Reachable {
			t.Errorf("AS%d: batch %d != single %d", br.AS, br.Reachable, single.Reachable)
		}
	}

	if rec := get(t, h, "/v1/batch"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing list: status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/batch?as=1,nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ASN in list: status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/batch?as=1,999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown origin: status = %d, want 404", rec.Code)
	}
}

func TestBatchPostWideRequestUsesBatchEngine(t *testing.T) {
	// A star: provider 1 over enough stub customers that the origin list
	// crosses BatchLanes and must ride the bit-parallel engine.
	g := astopo.NewGraph(0, 0)
	nStubs := bgpsim.BatchLanes + 6
	origins := make([]astopo.ASN, 0, nStubs)
	for i := 0; i < nStubs; i++ {
		stub := astopo.ASN(1000 + i)
		if err := g.AddLink(1, stub, astopo.P2C); err != nil {
			t.Fatal(err)
		}
		origins = append(origins, stub)
	}
	s, err := New(Config{Dataset: core.Dataset{Graph: g, Tier1: astopo.NewASSet(1)}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	body, _ := json.Marshal(batchRequest{AS: origins, Kind: "full"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(string(body))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Engine != "batch" {
		t.Errorf("engine = %q, want batch for %d origins", resp.Engine, nStubs)
	}
	if len(resp.Results) != nStubs {
		t.Fatalf("got %d results, want %d", len(resp.Results), nStubs)
	}
	// Every stub reaches the provider and, via provider-down export, every
	// sibling: the whole graph minus itself.
	want := g.NumASes() - 1
	for _, br := range resp.Results {
		if br.Reachable != want {
			t.Errorf("AS%d: reachable = %d, want %d", br.AS, br.Reachable, want)
		}
	}
}

func TestBatchPostValidation(t *testing.T) {
	h := testServer(t, nil).Handler()
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body)))
		return rec
	}
	if rec := post(`not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", rec.Code)
	}
	if rec := post(`{"as":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty list: status = %d, want 400", rec.Code)
	}
	if rec := post(`{"as":[100],"kind":"bogus"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad kind: status = %d, want 400", rec.Code)
	}
}

func TestBatchCapEnforced(t *testing.T) {
	h := testServer(t, func(c *Config) { c.MaxBatch = 2 }).Handler()
	rec := get(t, h, "/v1/batch?as=100,1,2")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("over-cap batch: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testServer(t, nil).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reach?as=100", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/reach: status = %d, want 405", rec.Code)
	}
}
