// Package serve is the query layer over the paper's metrics: a
// long-running HTTP/JSON service answering per-AS reachability, reliance,
// and route-leak-resilience questions against an immutable world state —
// the batch artifacts of packages core and bgpsim, reshaped for
// interactive, many-client serving.
//
// Worlds are immutable but replaceable: POST /v1/evolve swaps the served
// world for its successor by applying a delta snapshot (see worldState),
// so a long-running daemon can walk a timeline without restarting.
//
// The shared per-world state (the frozen graph, the Metrics tier masks,
// one LeakSweep pre-pass per leak configuration) is computed once; every
// request then pays only for its own propagation, bounded by:
//
//   - an LRU result cache keyed by the full query, so repeated queries are
//     served without recomputing;
//   - singleflight coalescing, so a thundering herd on one key computes
//     once and everyone shares the result;
//   - a bounded worker pool, so concurrent distinct queries cannot
//     oversubscribe the CPU;
//   - per-request deadlines threaded as contexts into the simulators,
//     which abort propagation between distance buckets (HTTP 504);
//   - graceful shutdown that stops accepting connections and drains
//     in-flight queries.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flatnet/internal/astopo"
	"flatnet/internal/cluster"
	"flatnet/internal/core"
	"flatnet/internal/topogen"
)

// Config parameterizes a Server. The zero value of every limit picks the
// documented default.
type Config struct {
	// Dataset is the topology plus tier sets the metrics run over. When
	// zero and World is set, it is derived from World.
	Dataset core.Dataset
	// Names optionally resolves ASNs to display names (topogen's NameOf).
	Names func(astopo.ASN) string
	// World, when set, is the full generated world behind Dataset (graph
	// plus annotations and IXP memberships). It is what makes the server
	// evolvable: /v1/evolve applies growth deltas with topogen.ApplyDelta,
	// which needs the generation lineage, not just the frozen graph.
	// Servers built from bare relationship files leave it nil and reject
	// evolution.
	World *topogen.Internet

	// CacheSize bounds the result cache, in entries (default 4096).
	CacheSize int
	// SweepCacheSize bounds the per-config LeakSweep pre-pass cache
	// (default 64; each entry holds O(V) snapshot state).
	SweepCacheSize int
	// DefaultTimeout is the per-request deadline when the query does not
	// set one (default 5s); MaxTimeout clamps client-requested deadlines
	// (default 60s).
	DefaultTimeout, MaxTimeout time.Duration
	// MaxConcurrent bounds simultaneously computing requests (default
	// GOMAXPROCS); excess requests queue until a worker or their deadline
	// frees them.
	MaxConcurrent int
	// MaxTrials caps the trials parameter of /v1/leak (default 2000).
	MaxTrials int
	// MaxBatch caps the origins of one /v1/batch request (default 4096).
	MaxBatch int
	// MaxTop caps the top parameter of /v1/reliance (default 1000).
	MaxTop int

	// Year is the preset year this server's world represents; workers that
	// fetch the snapshot open it at this section (default 2020, the
	// paper's measurement year).
	Year int
	// SnapshotPath, when set, is the v2 snapshot file this world was
	// loaded from; /v1/cluster/snapshot serves it and /v1/cluster/info
	// advertises its sha256 so joining workers can sync by content
	// address.
	SnapshotPath string
	// SnapshotBytes, when set, lazily encodes the served world as v2
	// snapshot bytes — how generated (non-snapshot) worlds stay joinable.
	// Ignored when SnapshotPath is set.
	SnapshotBytes func() ([]byte, error)
	// Cluster tunes the coordinator's worker pool (zero value = defaults);
	// the World field is overwritten with the dataset's content address.
	Cluster cluster.PoolConfig
}

func (c *Config) fillDefaults() {
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.SweepCacheSize <= 0 {
		c.SweepCacheSize = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 2000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxTop <= 0 {
		c.MaxTop = 1000
	}
	if c.Year <= 0 {
		c.Year = 2020
	}
}

// worldState is everything derived from one topology: the frozen dataset,
// its metrics, its content address, and its snapshot identity. It is
// immutable once published — requests pin the pointer once and compute
// against a consistent world even while /v1/evolve swaps in a successor.
// The id prefix baked into every cache key is what rotates the result
// cache on evolve: old entries become unreachable rather than stale.
type worldState struct {
	ds      core.Dataset
	metrics *core.Metrics
	names   func(astopo.ASN) string
	// in is the generation lineage (annotations, IXPs) behind ds; nil for
	// worlds loaded from bare relationship files, which cannot evolve.
	in   *topogen.Internet
	year int

	// id is the dataset's content address (cluster.DatasetHash); key is
	// its short prefix baked into every result-cache key, so cached bodies
	// can never leak across worlds (a daemon swapped onto a new snapshot
	// or evolved onto the next year must never replay stale answers).
	id  string
	key string

	// Snapshot identity, lazily resolved per world: the file's sha256
	// (snapPath) or in-memory encoded bytes (snapGen). Evolved worlds set
	// snapGen so the cluster stays joinable by content address.
	snapPath  string
	snapGen   func() ([]byte, error)
	snapOnce  sync.Once
	snapSHA   string
	snapSize  int64
	snapBytes []byte
	snapErr   error
}

func (ws *worldState) nameOf(a astopo.ASN) string {
	if ws.names == nil {
		return ""
	}
	return ws.names(a)
}

// newWorldState freezes one topology into a servable world.
func newWorldState(ds core.Dataset, names func(astopo.ASN) string, in *topogen.Internet,
	year int, snapPath string, snapGen func() ([]byte, error)) *worldState {
	ws := &worldState{
		ds:       ds,
		metrics:  core.New(ds),
		names:    names,
		in:       in,
		year:     year,
		snapPath: snapPath,
		snapGen:  snapGen,
	}
	ws.id = cluster.DatasetHash(ds.Graph, ds.Tier1, ds.Tier2)
	ws.key = ws.id[:16] + "|"
	return ws
}

// Server answers metric queries over the current world state. It is safe
// for concurrent use; the world is an atomically swapped immutable value,
// and all other mutable state is behind the cache, the flight group, and
// atomic counters.
type Server struct {
	cfg     Config
	cache   *lru // world-prefixed query key -> marshaled response body ([]byte)
	sweeps  *lru // world-prefixed leak config key -> *bgpsim.LeakSweep prototype
	flights flightGroup
	sem     chan struct{} // worker-pool slots
	httpSrv *http.Server
	started time.Time

	// world is the currently served world. Handlers load it exactly once
	// per request and use that snapshot throughout, so a concurrent evolve
	// never mixes two topologies inside one response. evolveMu serializes
	// evolutions (load -> apply -> swap must not interleave).
	world    atomic.Pointer[worldState]
	evolveMu sync.Mutex

	// pool is the cluster coordinator state. Always present (the health
	// prober starts only when a worker registers), so the handlers can
	// route any sufficiently wide query through it once Ready.
	pool *cluster.Pool

	stats struct {
		requests     atomic.Int64
		cacheHits    atomic.Int64
		cacheMisses  atomic.Int64
		coalesced    atomic.Int64
		computations atomic.Int64
		deadlines    atomic.Int64
		inflight     atomic.Int64
		evolves      atomic.Int64
		// wireResponses counts responses served as binary wire frames
		// (negotiated via Accept) rather than JSON.
		wireResponses atomic.Int64
	}

	// slowdown, when non-nil, runs at the start of every leader
	// computation. Tests use it to hold computations open so coalescing,
	// deadline, and drain behavior can be observed deterministically.
	slowdown func()
}

// w returns the currently served world. Callers must load it once and use
// the returned pointer for the whole request.
func (s *Server) w() *worldState { return s.world.Load() }

// New builds a Server over cfg, precomputing the shared per-world state
// (frozen graph, tier base masks). The graph must be non-empty.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.Dataset.Graph == nil && cfg.World != nil {
		cfg.Dataset = core.Dataset{Graph: cfg.World.Graph, Tier1: cfg.World.Tier1, Tier2: cfg.World.Tier2}
	}
	if cfg.Names == nil && cfg.World != nil {
		cfg.Names = cfg.World.NameOf
	}
	if cfg.Dataset.Graph == nil || cfg.Dataset.Graph.NumASes() == 0 {
		return nil, errors.New("serve: empty topology")
	}
	s := &Server{
		cfg:     cfg,
		cache:   newLRU(cfg.CacheSize),
		sweeps:  newLRU(cfg.SweepCacheSize),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		started: time.Now(),
	}
	ws := newWorldState(cfg.Dataset, cfg.Names, cfg.World, cfg.Year, cfg.SnapshotPath, cfg.SnapshotBytes)
	s.world.Store(ws)
	pc := cfg.Cluster
	pc.World = ws.id
	pc.LocalSweep = s.localSweep
	pc.LocalBatch = s.localBatch
	pc.LocalLeak = s.localLeak
	pc.LocalClasses = s.localClasses
	s.pool = cluster.NewPool(pc)
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// WorldID returns the currently served dataset's content address.
func (s *Server) WorldID() string { return s.w().id }

// Pool exposes the cluster coordinator state (worker registry/dispatcher).
func (s *Server) Pool() *cluster.Pool { return s.pool }

// Metrics exposes the current world's metrics (shared, concurrent-safe).
func (s *Server) Metrics() *core.Metrics { return s.w().metrics }

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0"). Use Shutdown to stop.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		// ErrServerClosed is the normal Shutdown signal; anything else
		// surfaces on the next request as a connection error.
		_ = s.httpSrv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Shutdown stops accepting new connections and blocks until in-flight
// requests drain or ctx expires — the graceful half of the serving
// contract.
func (s *Server) Shutdown(ctx context.Context) error {
	s.pool.Close()
	return s.httpSrv.Shutdown(ctx)
}

// timeoutFor resolves the effective deadline for a request: the `timeout`
// query parameter when present (clamped to MaxTimeout), DefaultTimeout
// otherwise.
func (s *Server) timeoutFor(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, badRequestf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, badRequestf("timeout must be positive, got %q", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// serveCached is the shared request path of every cacheable JSON endpoint:
// result-cache lookup, then singleflight-coalesced computation under the
// worker pool and the request deadline, then cache fill.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, ws *worldState, key string, compute func(ctx context.Context) (any, error)) {
	s.serveCachedBody(w, r, ws, key, contentTypeJSON, func(ctx context.Context) ([]byte, error) {
		v, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(v)
	})
}

// serveCachedBody is serveCached one level down: the compute closure
// produces the exact response body bytes (any encoding), and contentType
// names them. Binary-negotiated endpoints cache their encoded frames here
// under a key distinct from the JSON variant's, so the LRU holds both
// encodings independently.
func (s *Server) serveCachedBody(w http.ResponseWriter, r *http.Request, ws *worldState, key, contentType string, compute func(ctx context.Context) ([]byte, error)) {
	timeout, err := s.timeoutFor(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	body, err := s.cachedBody(ctx, ws, key, compute)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeBodyAs(w, http.StatusOK, contentType, body)
}

// cachedBody is the cache-or-compute core of serveCachedBody, separate so
// handlers that assemble one response from several cached bodies (the
// multi-range shard endpoint) can reuse it: world-prefixed LRU lookup,
// single-flight coalescing, and the serving-slot semaphore around compute.
func (s *Server) cachedBody(ctx context.Context, ws *worldState, key string, compute func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	// Every key is world-prefixed: a cache (or a coalesced flight) keyed
	// by query alone would be wrong the moment two worlds exist — shard
	// requests from different coordinators, a daemon swapped onto a new
	// snapshot, or an evolved world. Evolution rotates the prefix, so old
	// entries become unreachable and age out of the LRU.
	key = ws.key + key
	if b, ok := s.cache.Get(key); ok {
		s.stats.cacheHits.Add(1)
		return b.([]byte), nil
	}
	s.stats.cacheMisses.Add(1)
	body, coalesced, err := s.flights.Do(ctx, key, func() ([]byte, error) {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.sem }()
		s.stats.inflight.Add(1)
		defer s.stats.inflight.Add(-1)
		if s.slowdown != nil {
			s.slowdown()
		}
		s.stats.computations.Add(1)
		b, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	if coalesced {
		s.stats.coalesced.Add(1)
	}
	return body, err
}
