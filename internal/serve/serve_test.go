package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
)

// fixtureDataset is the Fig.-1-style topology used across the repo's
// tests: cloud 100 with Tier-1 provider 1, peerings with Tier-1 2, Tier-2
// 3, and user ISPs 4 and 5; ISP 6 behind Tier-1 2, ISP 7 behind Tier-2 3.
func fixtureDataset(t *testing.T) core.Dataset {
	t.Helper()
	g := astopo.NewGraph(0, 0)
	for _, l := range []struct {
		a, b astopo.ASN
		r    astopo.Rel
	}{
		{1, 100, astopo.P2C},
		{100, 2, astopo.P2P},
		{100, 3, astopo.P2P},
		{100, 4, astopo.P2P},
		{100, 5, astopo.P2P},
		{2, 6, astopo.P2C},
		{3, 7, astopo.P2C},
		{1, 2, astopo.P2P},
	} {
		if err := g.AddLink(l.a, l.b, l.r); err != nil {
			t.Fatal(err)
		}
	}
	return core.Dataset{Graph: g, Tier1: astopo.NewASSet(1, 2), Tier2: astopo.NewASSet(3)}
}

func testServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{Dataset: fixtureDataset(t)}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func TestCacheHitServesRepeatedQuery(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	first := get(t, h, "/v1/reach?as=100&kind=hierarchy-free")
	if first.Code != http.StatusOK {
		t.Fatalf("first query: status %d, body %s", first.Code, first.Body)
	}
	if hits, misses := s.stats.cacheHits.Load(), s.stats.cacheMisses.Load(); hits != 0 || misses != 1 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/1", hits, misses)
	}

	second := get(t, h, "/v1/reach?as=100&kind=hierarchy-free")
	if second.Code != http.StatusOK {
		t.Fatalf("second query: status %d", second.Code)
	}
	if hits := s.stats.cacheHits.Load(); hits != 1 {
		t.Fatalf("after second query: cache hits = %d, want 1", hits)
	}
	if comps := s.stats.computations.Load(); comps != 1 {
		t.Fatalf("computations = %d, want 1 (second query must be served from cache)", comps)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatalf("cached body differs: %q vs %q", first.Body, second.Body)
	}
}

func TestCoalescingComputesOnce(t *testing.T) {
	const concurrent = 8
	s := testServer(t, nil)
	h := s.Handler()

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slowdown = func() {
		once.Do(func() { close(started) })
		<-release
	}

	var wg sync.WaitGroup
	codes := make([]int, concurrent)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := get(t, h, "/v1/reach?as=100&kind=full")
			codes[i] = rec.Code
		}()
	}
	launch(0)
	<-started // the leader is inside its computation, holding the key
	for i := 1; i < concurrent; i++ {
		launch(i)
	}
	// Release only after every follower has joined the in-flight call.
	deadline := time.Now().Add(5 * time.Second)
	for s.flights.Joined(s.w().key+"reach|100|0") < concurrent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined", s.flights.Joined(s.w().key+"reach|100|0"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d", i, c)
		}
	}
	if comps := s.stats.computations.Load(); comps != 1 {
		t.Errorf("computations = %d, want exactly 1 for %d concurrent identical queries", comps, concurrent)
	}
	if co := s.stats.coalesced.Load(); co != concurrent-1 {
		t.Errorf("coalesced = %d, want %d", co, concurrent-1)
	}
}

func TestDeadlineExceededReturns504(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()
	before := runtime.NumGoroutine()

	rec := get(t, h, "/v1/reach?as=100&timeout=1ns")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body)
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "deadline_exceeded" {
		t.Errorf("error code = %q, want deadline_exceeded", body.Error.Code)
	}
	if n := s.stats.deadlines.Load(); n != 1 {
		t.Errorf("deadline counter = %d, want 1", n)
	}

	// A timed-out query must not leak its goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after timed-out queries", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the same query without the deadline still computes fine.
	rec = get(t, h, "/v1/reach?as=100")
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up query: status %d, body %s", rec.Code, rec.Body)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s := testServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slowdown = func() {
		once.Do(func() { close(started) })
		<-release
	}

	resp := make(chan int, 1)
	go func() {
		r, err := http.Get(fmt.Sprintf("http://%s/v1/reach?as=100", addr))
		if err != nil {
			resp <- -1
			return
		}
		r.Body.Close()
		resp <- r.StatusCode
	}()
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight query, not cut it off.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) while a query was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if code := <-resp; code != http.StatusOK {
		t.Fatalf("in-flight query got status %d during graceful shutdown, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server accepted a connection after Shutdown")
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", 3) // evicts b (a was refreshed by the Get above)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Error("c lost")
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Error("Put did not refresh the value")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestFlightGroupJoinerHonorsOwnContext(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = g.Do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("x"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, coalesced, err := g.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if !coalesced {
		t.Error("second caller should have coalesced")
	}
	if err != context.DeadlineExceeded {
		t.Errorf("joiner err = %v, want DeadlineExceeded", err)
	}
	close(release)
}

func TestInferTiers(t *testing.T) {
	// Provider-free clique {1,2} on top; 3 is a transit AS under 1 with a
	// cone of 4; everything else is a stub with a unit cone.
	g := astopo.NewGraph(0, 0)
	for _, l := range []struct {
		a, b astopo.ASN
		r    astopo.Rel
	}{
		{1, 2, astopo.P2P},
		{1, 3, astopo.P2C},
		{3, 7, astopo.P2C},
		{3, 8, astopo.P2C},
		{3, 9, astopo.P2C},
		{2, 6, astopo.P2C},
		{1, 10, astopo.P2C},
	} {
		if err := g.AddLink(l.a, l.b, l.r); err != nil {
			t.Fatal(err)
		}
	}
	tier1, tier2 := InferTiers(g)
	if !tier1.Has(1) || !tier1.Has(2) {
		t.Errorf("tier1 = %v, want {1,2}", tier1.Slice())
	}
	if tier1.Has(3) {
		t.Error("AS 3 has a provider and must not be Tier-1")
	}
	if !tier2.Has(3) {
		t.Errorf("tier2 = %v, want 3 included", tier2.Slice())
	}
	if tier1.Has(7) || tier2.Has(7) {
		t.Error("stub AS 7 classified into a tier")
	}
}
