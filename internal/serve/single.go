package serve

import "flatnet/internal/single"

// flightGroup coalesces concurrent computations of the same cache key; the
// generic implementation lives in internal/single so the experiments
// environment can share it.
type flightGroup = single.Group[string, []byte]
