package serve

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent computations of the same key: the first
// caller (the leader) runs fn, every concurrent caller with the same key
// blocks on the leader's result instead of recomputing — the standard
// singleflight shape, reimplemented here because the repo takes no
// external dependencies.
//
// Cancellation semantics: the leader computes under its own request
// context, so its deadline governs the shared computation. A joiner whose
// own context expires first unblocks with its context's error while the
// computation keeps running for the others.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when the leader finishes
	val  []byte
	err  error
	dups int // joiners so far, guarded by the group mutex
}

// Do returns the result of fn for key, running fn at most once across
// concurrent callers. coalesced reports whether this caller joined another
// caller's in-flight computation rather than leading its own.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: panic in computation: %v", r)
			}
		}()
		c.val, c.err = fn()
	}()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// joined reports how many callers have coalesced onto key's in-flight
// computation so far (0 when the key is not in flight). Tests use it to
// release a held leader only once every concurrent request has joined.
func (g *flightGroup) joined(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}
