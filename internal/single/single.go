// Package single provides in-process call coalescing ("singleflight"): the
// first caller of a key runs the computation, every concurrent caller of the
// same key blocks on that one result instead of recomputing. The repo takes
// no external dependencies, so this is a small generic reimplementation of
// the standard pattern, shared by the serve cache and the experiments
// environment.
//
// A key is forgotten as soon as its computation finishes, so results —
// including errors — are never memoized here. Callers that want caching
// layer their own map on top and only store successes; a failed build is
// retried by whichever caller asks next.
package single

import (
	"context"
	"fmt"
	"sync"
)

// Group coalesces concurrent computations keyed by K.
//
// Cancellation semantics: the leader computes under its own context, so its
// deadline governs the shared computation. A joiner whose own context
// expires first unblocks with its context's error while the computation
// keeps running for the others.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

type call[V any] struct {
	done chan struct{} // closed when the leader finishes
	val  V
	err  error
	dups int // joiners so far, guarded by the group mutex
}

// Do returns the result of fn for key, running fn at most once across
// concurrent callers. coalesced reports whether this caller joined another
// caller's in-flight computation rather than leading its own.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (val V, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("single: panic in computation: %v", r)
			}
		}()
		c.val, c.err = fn()
	}()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Joined reports how many callers have coalesced onto key's in-flight
// computation so far (0 when the key is not in flight). Tests use it to
// release a held leader only once every concurrent caller has joined.
func (g *Group[K, V]) Joined(key K) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}
