package single

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesce holds a leader open until every follower has joined, then
// checks fn ran exactly once and all callers saw the leader's value.
func TestCoalesce(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const followers = 8
	results := make([]int, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, coalesced, err := g.Do(context.Background(), "k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || coalesced {
			t.Errorf("leader: v=%d coalesced=%v err=%v", v, coalesced, err)
		}
		results[0] = v
	}()
	<-started
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, coalesced, err := g.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil || !coalesced {
				t.Errorf("follower %d: coalesced=%v err=%v", i, coalesced, err)
			}
			results[i+1] = v
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Joined("k") < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers joined", g.Joined("k"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
}

// TestErrorNotMemoized checks a failed computation is retried by the next
// caller rather than pinned.
func TestErrorNotMemoized(t *testing.T) {
	var g Group[string, string]
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func() (string, error) { return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want boom", err)
	}
	v, coalesced, err := g.Do(context.Background(), "k", func() (string, error) { return "ok", nil })
	if err != nil || coalesced || v != "ok" {
		t.Fatalf("retry: v=%q coalesced=%v err=%v", v, coalesced, err)
	}
}

// TestJoinerContextCancel checks a joiner with an expired context unblocks
// immediately while the leader keeps computing.
func TestJoinerContextCancel(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		if v != 7 || err != nil {
			t.Errorf("leader: v=%d err=%v", v, err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, coalesced, err := g.Do(ctx, "k", func() (int, error) { return -1, nil })
	if !coalesced || !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner: coalesced=%v err=%v, want coalesced canceled", coalesced, err)
	}
	close(release)
	<-leaderDone
}

// TestDistinctKeysRunIndependently checks two keys can be in flight at once:
// neither blocks the other.
func TestDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, int]
	aStarted := make(chan struct{})
	bDone := make(chan struct{})
	go func() {
		g.Do(context.Background(), 1, func() (int, error) {
			close(aStarted)
			<-bDone // key 1 finishes only after key 2 completed
			return 1, nil
		})
	}()
	<-aStarted
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := g.Do(context.Background(), 2, func() (int, error) { return 2, nil })
		if v != 2 || err != nil {
			t.Errorf("key 2: v=%d err=%v", v, err)
		}
		close(bDone)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key 2 blocked behind key 1's in-flight computation")
	}
}

// TestPanicBecomesError checks a panicking computation surfaces as an error
// to every caller instead of crashing the process.
func TestPanicBecomesError(t *testing.T) {
	var g Group[string, int]
	_, _, err := g.Do(context.Background(), "k", func() (int, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}
