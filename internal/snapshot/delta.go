package snapshot

// Delta snapshots: instead of persisting a full world for every year of a
// timeline, adjacent years are stored as one base world plus a chain of
// growth deltas (topogen.GrowthDelta). A delta file reuses the v2
// container — magic, version, scale, CRC-guarded section table — with a
// single sectDelta section, so the existing sniffing, integrity, and
// info-labelling machinery applies unchanged. Applying the delta is
// deterministic (topogen.ApplyDelta), and the recorded base/result world
// hashes make application fail closed: a delta never silently lands on
// the wrong world or yields a world other than the one it promised.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/topogen"
)

// ErrIsDelta marks an attempt to open a delta snapshot as a world
// snapshot. Callers distinguish it with errors.Is and route the file to
// ReadDelta instead.
var ErrIsDelta = errors.New("snapshot: file is a delta, not a world")

// Delta is a stored growth step between two adjacent worlds.
type Delta struct {
	// FromYear/ToYear and Scale identify the step; they duplicate the
	// growth payload's own fields so mismatches are detectable.
	FromYear, ToYear int
	Scale            float64
	// BaseHash and ResultHash are the world hashes (cluster.DatasetHash)
	// of the world the delta applies to and the world it must produce.
	// The codec treats them as opaque strings; appliers enforce them.
	BaseHash, ResultHash string
	// Growth is the structural change set.
	Growth *topogen.GrowthDelta
}

// DeltaInfo is the cheap, payload-free view of a delta file's lineage, as
// surfaced by ReadInfo.
type DeltaInfo struct {
	FromYear, ToYear     int
	BaseHash, ResultHash string
}

// EncodeDelta writes d to w as a single-section v2 snapshot file.
func EncodeDelta(w io.Writer, d *Delta) error {
	if !hostLE {
		return fmt.Errorf("snapshot: v2 format requires a little-endian host")
	}
	if d.Growth == nil {
		return fmt.Errorf("snapshot: delta has no growth payload")
	}
	if d.FromYear != d.Growth.FromYear || d.ToYear != d.Growth.ToYear || d.Scale != d.Growth.Scale {
		return fmt.Errorf("snapshot: delta header %d→%d@%g disagrees with growth payload %d→%d@%g",
			d.FromYear, d.ToYear, d.Scale, d.Growth.FromYear, d.Growth.ToYear, d.Growth.Scale)
	}
	e := &enc{b: new(bytes.Buffer)}
	// Lineage first, so ReadInfo can peek it from the payload front.
	e.u32(uint32(d.FromYear))
	e.u32(uint32(d.ToYear))
	e.str(d.BaseHash)
	e.str(d.ResultHash)
	e.f64(d.Scale)
	g := d.Growth
	e.u32(uint32(len(g.NewASes)))
	for _, a := range g.NewASes {
		e.asn(a.ASN)
		e.u8(uint8(a.Class))
		e.i32(int32(a.Home))
	}
	encodeLinks := func(links []astopo.Link) {
		e.u32(uint32(len(links)))
		for _, l := range links {
			e.asn(l.A)
			e.asn(l.B)
			e.u8(uint8(l.Rel))
		}
	}
	encodeLinks(g.RemovedLinks)
	encodeLinks(g.AddedLinks)
	e.u32(uint32(len(g.IXPJoins)))
	for _, j := range g.IXPJoins {
		e.i32(j.IXP)
		e.asn(j.Member)
	}
	e.u32(uint32(len(g.NewIXPs)))
	for _, x := range g.NewIXPs {
		e.i32(int32(x.City))
		e.u32(uint32(len(x.Members)))
		for _, m := range x.Members {
			e.asn(m)
		}
	}
	payload := e.b.Bytes()

	headerEnd := uint64(v2HeaderLen + v2EntryLen + 4)
	off := (headerEnd + 7) &^ 7
	header := make([]byte, off)
	copy(header, magic[:])
	binary.LittleEndian.PutUint32(header[8:], Version)
	binary.LittleEndian.PutUint64(header[12:], math.Float64bits(d.Scale))
	binary.LittleEndian.PutUint32(header[20:], 1)
	ent := header[v2HeaderLen:]
	binary.LittleEndian.PutUint32(ent[0:], uint32(sectDelta))
	binary.LittleEndian.PutUint32(ent[4:], uint32(d.ToYear))
	binary.LittleEndian.PutUint64(ent[8:], off)
	binary.LittleEndian.PutUint64(ent[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(ent[24:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(header[headerEnd-4:], crc32.ChecksumIEEE(header[:headerEnd-4]))

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteDeltaFile writes the delta atomically (tmp + rename), mirroring
// WriteFile.
func WriteDeltaFile(path string, d *Delta) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := EncodeDelta(f, d); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadDeltaFile reads and decodes the delta snapshot at path.
func ReadDeltaFile(path string) (*Delta, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeDelta(raw)
}

// DecodeDelta decodes a delta snapshot, failing closed on anything
// unexpected: wrong magic or version, a section table that is not exactly
// one delta section, checksum mismatches, truncation, or trailing bytes.
func DecodeDelta(raw []byte) (*Delta, error) {
	if !hostLE {
		return nil, fmt.Errorf("snapshot: v2 format requires a little-endian host")
	}
	if v, err := sniffVersion(raw); err != nil {
		return nil, err
	} else if v != Version {
		return nil, fmt.Errorf("snapshot: version %d file cannot carry a delta", v)
	}
	headerEnd := v2HeaderLen + v2EntryLen + 4
	if len(raw) < headerEnd {
		return nil, fmt.Errorf("snapshot: truncated delta: %d bytes", len(raw))
	}
	if n := binary.LittleEndian.Uint32(raw[20:24]); n != 1 {
		return nil, fmt.Errorf("snapshot: delta file must hold exactly one section, has %d", n)
	}
	if got, want := crc32.ChecksumIEEE(raw[:headerEnd-4]), binary.LittleEndian.Uint32(raw[headerEnd-4:headerEnd]); got != want {
		return nil, fmt.Errorf("snapshot: header checksum mismatch: computed %#x, stored %#x", got, want)
	}
	ent := raw[v2HeaderLen:]
	kind := sectKind(binary.LittleEndian.Uint32(ent[0:]))
	year := int(binary.LittleEndian.Uint32(ent[4:]))
	off := binary.LittleEndian.Uint64(ent[8:])
	length := binary.LittleEndian.Uint64(ent[16:])
	crc := binary.LittleEndian.Uint32(ent[24:])
	if kind != sectDelta {
		return nil, fmt.Errorf("snapshot: file is a %s snapshot, not a delta", kind)
	}
	if off%8 != 0 || off < uint64(headerEnd) || off > uint64(len(raw)) || length > uint64(len(raw))-off {
		return nil, fmt.Errorf("snapshot: delta section spans [%d,%d) outside file of %d bytes", off, off+length, len(raw))
	}
	for _, b := range raw[headerEnd:off] {
		if b != 0 {
			return nil, fmt.Errorf("snapshot: nonzero padding before delta section")
		}
	}
	if off+length != uint64(len(raw)) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after delta section", uint64(len(raw))-(off+length))
	}
	payload := raw[off : off+length]
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("snapshot: delta section checksum mismatch: computed %#x, stored %#x", got, crc)
	}

	d := &dec{buf: payload}
	out := &Delta{Growth: &topogen.GrowthDelta{}}
	out.FromYear = int(d.u32())
	out.ToYear = int(d.u32())
	out.BaseHash = d.str()
	out.ResultHash = d.str()
	out.Scale = d.f64()
	g := out.Growth
	g.FromYear, g.ToYear, g.Scale = out.FromYear, out.ToYear, out.Scale
	if n := d.count(); n > 0 {
		g.NewASes = make([]topogen.NewAS, n)
		for i := range g.NewASes {
			g.NewASes[i].ASN = d.asn()
			g.NewASes[i].Class = topogen.ASClass(d.u8())
			g.NewASes[i].Home = geo.CityID(d.i32())
		}
	}
	decodeLinks := func() []astopo.Link {
		n := d.count()
		if n == 0 {
			return nil
		}
		links := make([]astopo.Link, n)
		for i := range links {
			links[i].A = d.asn()
			links[i].B = d.asn()
			links[i].Rel = astopo.Rel(d.u8())
		}
		return links
	}
	g.RemovedLinks = decodeLinks()
	g.AddedLinks = decodeLinks()
	if n := d.count(); n > 0 {
		g.IXPJoins = make([]topogen.IXPJoin, n)
		for i := range g.IXPJoins {
			g.IXPJoins[i].IXP = d.i32()
			g.IXPJoins[i].Member = d.asn()
		}
	}
	if n := d.count(); n > 0 {
		g.NewIXPs = make([]topogen.NewIXP, n)
		for i := range g.NewIXPs {
			g.NewIXPs[i].City = geo.CityID(d.i32())
			m := d.count()
			g.NewIXPs[i].Members = make([]astopo.ASN, m)
			for j := range g.NewIXPs[i].Members {
				g.NewIXPs[i].Members[j] = d.asn()
			}
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: delta payload: %w", d.err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("snapshot: delta payload: %d trailing bytes", len(d.buf)-d.off)
	}
	if year != out.ToYear {
		return nil, fmt.Errorf("snapshot: delta payload years %d→%d disagree with table year %d", out.FromYear, out.ToYear, year)
	}
	if out.FromYear >= out.ToYear {
		return nil, fmt.Errorf("snapshot: delta years %d→%d are not increasing", out.FromYear, out.ToYear)
	}
	if s := math.Float64frombits(binary.LittleEndian.Uint64(raw[12:20])); s != out.Scale {
		return nil, fmt.Errorf("snapshot: delta payload scale %g disagrees with header scale %g", out.Scale, s)
	}
	return out, nil
}
