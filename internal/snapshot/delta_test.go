package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flatnet/internal/cluster"
	"flatnet/internal/topogen"
)

const deltaTestScale = 0.012

// buildDelta generates an adjacent-year pair and the Delta connecting
// them, with real world hashes.
func buildDelta(t testing.TB) (*topogen.Internet, *Delta) {
	t.Helper()
	base, err := topogen.GenerateYear(2016, deltaTestScale)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topogen.EvolveStep(base, 2017, deltaTestScale)
	if err != nil {
		t.Fatal(err)
	}
	next, err := topogen.ApplyDelta(base, g)
	if err != nil {
		t.Fatal(err)
	}
	return base, &Delta{
		FromYear:   g.FromYear,
		ToYear:     g.ToYear,
		Scale:      g.Scale,
		BaseHash:   cluster.DatasetHash(base.Graph, base.Tier1, base.Tier2),
		ResultHash: cluster.DatasetHash(next.Graph, next.Tier1, next.Tier2),
		Growth:     g,
	}
}

func encodeDeltaBytes(t testing.TB, d *Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeltaRoundTrip(t *testing.T) {
	base, want := buildDelta(t)
	raw := encodeDeltaBytes(t, want)
	got, err := DecodeDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("decoded delta differs from encoded")
	}
	// The decoded growth must still apply and produce the promised world.
	next, err := topogen.ApplyDelta(base, got.Growth)
	if err != nil {
		t.Fatal(err)
	}
	if h := cluster.DatasetHash(next.Graph, next.Tier1, next.Tier2); h != got.ResultHash {
		t.Fatalf("applied world hash %s != recorded result hash %s", h[:16], got.ResultHash[:16])
	}
	// Two encodes are byte-identical (determinism).
	if !bytes.Equal(raw, encodeDeltaBytes(t, want)) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDeltaFileRoundTrip(t *testing.T) {
	_, want := buildDelta(t)
	path := filepath.Join(t.TempDir(), "step.snapd")
	if err := WriteDeltaFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip differs")
	}
}

func TestDeltaInfoLineage(t *testing.T) {
	_, d := buildDelta(t)
	raw := encodeDeltaBytes(t, d)
	info, err := ReadInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Delta == nil {
		t.Fatal("ReadInfo on a delta file reported no lineage")
	}
	if info.Delta.FromYear != d.FromYear || info.Delta.ToYear != d.ToYear {
		t.Fatalf("lineage years %d→%d, want %d→%d", info.Delta.FromYear, info.Delta.ToYear, d.FromYear, d.ToYear)
	}
	if info.Delta.BaseHash != d.BaseHash || info.Delta.ResultHash != d.ResultHash {
		t.Fatal("lineage hashes differ from encoded")
	}
	if len(info.Sections) != 1 || info.Sections[0].Label != "delta" {
		t.Fatalf("sections = %+v, want one delta section", info.Sections)
	}
}

func TestDeltaFailsClosed(t *testing.T) {
	_, d := buildDelta(t)
	raw := encodeDeltaBytes(t, d)

	t.Run("world reader rejects delta", func(t *testing.T) {
		if _, err := Decode(raw); !errors.Is(err, ErrIsDelta) {
			t.Fatalf("Decode on delta: %v, want ErrIsDelta", err)
		}
		path := filepath.Join(t.TempDir(), "step.snapd")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); !errors.Is(err, ErrIsDelta) {
			t.Fatalf("Open on delta: %v, want ErrIsDelta", err)
		}
	})
	t.Run("delta reader rejects world", func(t *testing.T) {
		world := encode(t, buildWorld(t))
		if _, err := DecodeDelta(world); err == nil || !strings.Contains(err.Error(), "delta") {
			t.Fatalf("DecodeDelta on world snapshot: %v", err)
		}
	})
	t.Run("payload corruption", func(t *testing.T) {
		bad := bytes.Clone(raw)
		bad[len(bad)-5] ^= 0xff
		if _, err := DecodeDelta(bad); err == nil {
			t.Fatal("corrupted payload decoded")
		}
	})
	t.Run("header corruption", func(t *testing.T) {
		bad := bytes.Clone(raw)
		bad[v2HeaderLen+2] ^= 0xff
		if _, err := DecodeDelta(bad); err == nil {
			t.Fatal("corrupted header decoded")
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{4, 23, v2HeaderLen + 3, len(raw) / 2, len(raw) - 1} {
			if _, err := DecodeDelta(raw[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := DecodeDelta(append(bytes.Clone(raw), 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("mispaired header", func(t *testing.T) {
		bad := *d
		bad.FromYear = 2019
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, &bad); err == nil {
			t.Fatal("encode accepted header/payload year mismatch")
		}
	})
}

// FuzzDeltaDecode mirrors FuzzSnapshotDecode for the delta codec: never
// panic, never hang, errors for everything but a valid delta.
func FuzzDeltaDecode(f *testing.F) {
	_, d := buildDelta(f)
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, d); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	for _, off := range []int{0, 9, 21, 25, 40, len(raw) / 2, len(raw) - 3} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0xff
		f.Add(bad)
	}
	f.Add(raw[:24])
	f.Add(raw[:len(raw)/3])
	f.Fuzz(func(t *testing.T, b []byte) {
		if d, err := DecodeDelta(b); err == nil && d == nil {
			t.Fatal("DecodeDelta returned neither delta nor error")
		}
		if info, err := ReadInfo(bytes.NewReader(b)); err == nil && info == nil {
			t.Fatal("ReadInfo returned neither info nor error")
		}
	})
}
