package snapshot

import (
	"bytes"
	"os"
	"testing"
)

// FuzzSnapshotDecode throws arbitrary bytes at the version dispatcher, both
// decoders, and the info reader. The contract under fuzz is purely "never
// panic, never hang": a valid world decodes, everything else must come back
// as an error. Seeds cover both format versions plus systematic one-byte
// corruptions and truncations of a valid v2 file.
func FuzzSnapshotDecode(f *testing.F) {
	raw := encode(f, buildWorld(f))
	f.Add(raw)
	if legacy, err := os.ReadFile("testdata/v1-mini.snap"); err == nil {
		f.Add(legacy)
	}
	for _, off := range []int{0, 9, 21, 30, 40, len(raw) / 2, len(raw) - 3} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0xff
		f.Add(bad)
	}
	f.Add(raw[:24])
	f.Add(raw[:len(raw)/3])
	f.Fuzz(func(t *testing.T, b []byte) {
		if w, err := Decode(b); err == nil && w == nil {
			t.Fatal("Decode returned neither world nor error")
		}
		if info, err := ReadInfo(bytes.NewReader(b)); err == nil && info == nil {
			t.Fatal("ReadInfo returned neither info nor error")
		}
	})
}
