package snapshot

// The version 1 format: a single concatenated stream of length-prefixed
// sections guarded by one trailing whole-file CRC, with every value —
// including the topology adjacency — decoded and copied eagerly. Old
// snapshot files on disk still load through this path; new files are
// written in the v2 aligned format only (see v2.go).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// decodeV1 decodes the legacy v1 stream: whole-file CRC, then every section
// decoded eagerly.
func decodeV1(raw []byte) (*World, error) {
	const trailer = 4
	headerLen := len(magic) + 4 + 8 + 4
	if len(raw) < headerLen+trailer {
		return nil, fmt.Errorf("snapshot: truncated: %d bytes", len(raw))
	}
	body, sum := raw[:len(raw)-trailer], raw[len(raw)-trailer:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(sum); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch: computed %#x, stored %#x", got, want)
	}
	d := &dec{buf: body}
	var m [8]byte
	d.bytes(m[:])
	d.u32() // version, checked by the dispatcher
	world := &World{
		Scale:     d.f64(),
		Internets: make(map[int]*topogen.Internet),
		Pops:      make(map[int]*population.Model),
		Plans:     make(map[int]*netdb.Plan),
		RDNS:      make(map[int]*rdns.Corpus),
		Traces:    make(map[TraceKey][][]tracesim.Traceroute),
	}
	nsect := int(d.u32())
	for i := 0; i < nsect && d.err == nil; i++ {
		kind := Kind(d.u32())
		length := d.u64()
		if length > uint64(len(d.buf)-d.off) {
			return nil, fmt.Errorf("snapshot: section %d (%s) length %d exceeds remaining %d bytes",
				i, kind, length, len(d.buf)-d.off)
		}
		sd := &dec{buf: d.buf[d.off : d.off+int(length)]}
		d.off += int(length)
		switch kind {
		case KindInternet:
			year, in := decodeInternetV1(sd)
			if sd.ok() {
				world.Internets[year] = in
			}
		case KindPopulation:
			year, pop := decodePopulationV1(sd)
			if sd.ok() {
				world.Pops[year] = pop
			}
		case KindPlan:
			year, plan := decodePlan(sd)
			if sd.ok() {
				world.Plans[year] = plan
			}
		case KindRDNS:
			year, c := decodeRDNS(sd)
			if sd.ok() {
				world.RDNS[year] = c
			}
		case KindTraces:
			key, tr := decodeTraces(sd)
			if sd.ok() {
				world.Traces[key] = tr
			}
		default:
			return nil, fmt.Errorf("snapshot: unknown section kind %d", uint32(kind))
		}
		if sd.err != nil {
			return nil, fmt.Errorf("snapshot: section %d (%s): %w", i, kind, sd.err)
		}
		if sd.off != len(sd.buf) {
			return nil, fmt.Errorf("snapshot: section %d (%s): %d trailing bytes", i, kind, len(sd.buf)-sd.off)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %w", d.err)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last section", len(d.buf)-d.off)
	}
	for year, plan := range world.Plans {
		in, ok := world.Internets[year]
		if !ok {
			return nil, fmt.Errorf("snapshot: plan for year %d has no internet section", year)
		}
		plan.Bind(in)
	}
	return world, nil
}

// readInfoV1 labels the sections of a legacy v1 stream, whose header has
// already been consumed.
func readInfoV1(r io.Reader, info *Info, nsect int) (*Info, error) {
	for i := 0; i < nsect; i++ {
		var sh [12]byte
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return nil, fmt.Errorf("snapshot: reading section %d header: %w", i, err)
		}
		si := SectionInfo{
			Kind:   Kind(binary.LittleEndian.Uint32(sh[:4])),
			Length: binary.LittleEndian.Uint64(sh[4:12]),
		}
		si.Label = si.Kind.String()
		switch si.Kind {
		case KindInternet, KindPopulation, KindPlan, KindRDNS, KindTraces:
		default:
			return nil, fmt.Errorf("snapshot: unknown section kind %d", uint32(si.Kind))
		}
		// Peek the label fields from the front of the payload, then skip
		// the rest.
		labelLen := 4 // year
		if si.Kind == KindTraces {
			labelLen = int(si.Length) // bounded below; cloud length is inside
		}
		if uint64(labelLen) > si.Length {
			return nil, fmt.Errorf("snapshot: section %d (%s) too short for label", i, si.Kind)
		}
		if si.Kind == KindTraces {
			// year + cloud string header + nVMs: read just enough.
			var front [8]byte
			if _, err := io.ReadFull(r, front[:]); err != nil {
				return nil, fmt.Errorf("snapshot: section %d label: %w", i, err)
			}
			si.Year = int(binary.LittleEndian.Uint32(front[:4]))
			cloudLen := int(binary.LittleEndian.Uint32(front[4:8]))
			if uint64(8+cloudLen+4) > si.Length {
				return nil, fmt.Errorf("snapshot: section %d (%s) too short for label", i, si.Kind)
			}
			name := make([]byte, cloudLen+4)
			if _, err := io.ReadFull(r, name); err != nil {
				return nil, fmt.Errorf("snapshot: section %d label: %w", i, err)
			}
			si.Cloud = string(name[:cloudLen])
			si.VMs = int(binary.LittleEndian.Uint32(name[cloudLen:]))
			if _, err := io.CopyN(io.Discard, r, int64(si.Length)-int64(8+cloudLen+4)); err != nil {
				return nil, fmt.Errorf("snapshot: skipping section %d: %w", i, err)
			}
		} else {
			var front [4]byte
			if _, err := io.ReadFull(r, front[:]); err != nil {
				return nil, fmt.Errorf("snapshot: section %d label: %w", i, err)
			}
			si.Year = int(binary.LittleEndian.Uint32(front[:4]))
			if _, err := io.CopyN(io.Discard, r, int64(si.Length)-4); err != nil {
				return nil, fmt.Errorf("snapshot: skipping section %d: %w", i, err)
			}
		}
		info.Sections = append(info.Sections, si)
	}
	return info, nil
}

// decodeInternetV1 decodes a v1 internet section: spec, link list (CSR is
// rebuilt by Freeze — link order fully determines it, so dense indexes
// match the encoded graph's), tier sets, and map-form annotations, which
// are converted to the dense ASMeta table the rest of the system now uses.
func decodeInternetV1(d *dec) (int, *topogen.Internet) {
	year := int(d.u32())
	in := &topogen.Internet{}
	sp := &in.Spec
	decodeSpec(d, sp)
	nLinks := d.count()
	links := make([]astopo.Link, nLinks)
	for i := range links {
		links[i].A = d.asn()
		links[i].B = d.asn()
		links[i].Rel = astopo.Rel(d.u8())
	}
	if d.err != nil {
		return year, nil
	}
	in.Graph = astopo.FromLinks(links)
	in.Graph.Freeze()
	in.Tier1 = decodeASSet(d)
	in.Tier2 = decodeASSet(d)
	in.Clouds = decodeNamedASNs(d)
	in.Hypergiants = decodeNamedASNs(d)
	nClass := d.count()
	class := make(map[astopo.ASN]topogen.ASClass, nClass)
	for i := 0; i < nClass; i++ {
		a := d.asn()
		class[a] = topogen.ASClass(d.u8())
	}
	nName := d.count()
	name := make(map[astopo.ASN]string, nName)
	for i := 0; i < nName; i++ {
		a := d.asn()
		name[a] = d.str()
	}
	nHome := d.count()
	home := make(map[astopo.ASN]geo.CityID, nHome)
	for i := 0; i < nHome; i++ {
		a := d.asn()
		home[a] = geo.CityID(d.i32())
	}
	nPoPs := d.count()
	pops := make(map[astopo.ASN][]geo.CityID, nPoPs)
	for i := 0; i < nPoPs; i++ {
		a := d.asn()
		m := d.count()
		cities := make([]geo.CityID, m)
		for j := range cities {
			cities[j] = geo.CityID(d.i32())
		}
		pops[a] = cities
	}
	nIXP := d.count()
	in.IXPs = make([]topogen.IXP, nIXP)
	for i := range in.IXPs {
		in.IXPs[i].City = geo.CityID(d.i32())
		m := d.count()
		members := make([]astopo.ASN, m)
		for j := range members {
			members[j] = d.asn()
		}
		in.IXPs[i].Members = members
	}
	if d.err != nil {
		return year, nil
	}
	in.Meta = topogen.NewASMeta(in.Graph, class, name, home, pops)
	return year, in
}

// decodePopulationV1 decodes a v1 entry-list population section.
func decodePopulationV1(d *dec) (int, *population.Model) {
	year := int(d.u32())
	n := d.count()
	entries := make([]population.Entry, n)
	for i := range entries {
		entries[i].AS = d.asn()
		entries[i].Type = population.ASType(d.u8())
		entries[i].Users = d.f64()
	}
	total := d.f64()
	if d.err != nil {
		return year, nil
	}
	return year, population.Restore(entries, total)
}
